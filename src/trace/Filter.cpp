//===- trace/Filter.cpp - Trace projection for focused debugging -----------===//

#include "trace/Filter.h"

#include <algorithm>
#include <cassert>

using namespace perfplay;

Trace perfplay::filterTraceByLocks(const Trace &Tr,
                                   const std::vector<LockId> &KeepLocks) {
  std::vector<bool> Keep(Tr.Locks.size(), false);
  for (LockId L : KeepLocks) {
    assert(L < Tr.Locks.size() && "unknown lock");
    Keep[L] = true;
  }

  Trace Out;
  Out.Locks = Tr.Locks;
  Out.Sites = Tr.Sites;
  // Lock/site entries carry pooled name ids, so the projection must
  // carry the pool those ids index.
  Out.Names = Tr.Names;

  // Per-thread surviving CS index (for the schedule rewrite): maps the
  // original per-thread CS index to the new one, or InvalidId.
  std::vector<std::vector<uint32_t>> IndexMap(Tr.Threads.size());

  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    ThreadTrace Thread;
    uint32_t NewIndex = 0;
    for (const Event &E : Tr.Threads[T].Events) {
      switch (E.Kind) {
      case EventKind::LockAcquire:
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
      case EventKind::TryAcquire:
        if (!isSectionOpen(E)) {
          // A failed trylock opens no section; it survives iff its
          // lock does.
          if (Keep[E.Lock])
            Thread.Events.push_back(E);
          break;
        }
        if (Keep[E.Lock]) {
          IndexMap[T].push_back(NewIndex++);
          Thread.Events.push_back(E);
        } else {
          IndexMap[T].push_back(InvalidId);
        }
        break;
      case EventKind::LockRelease:
        if (Keep[E.Lock])
          Thread.Events.push_back(E);
        break;
      default:
        Thread.Events.push_back(E);
        break;
      }
    }
    Out.Threads.push_back(std::move(Thread));
  }

  // Filter the recorded schedule onto surviving sections.
  if (!Tr.LockSchedule.empty()) {
    Out.LockSchedule.assign(Out.Locks.size(), {});
    for (LockId L = 0; L != Tr.LockSchedule.size(); ++L) {
      if (!Keep[L])
        continue;
      for (const CsRef &Ref : Tr.LockSchedule[L]) {
        uint32_t NewIndex = IndexMap[Ref.Thread][Ref.Index];
        if (NewIndex != InvalidId)
          Out.LockSchedule[L].push_back(CsRef{Ref.Thread, NewIndex});
      }
    }
  }

  Out.buildCsIndex();
  return Out;
}

Trace perfplay::sliceTraceByEvents(const Trace &Tr,
                                   const std::vector<size_t> &EventBound) {
  assert(EventBound.size() == Tr.Threads.size() &&
         "one bound per thread expected");

  Trace Out;
  Out.Locks = Tr.Locks;
  Out.Sites = Tr.Sites;
  // Lock/site entries carry pooled name ids, so the projection must
  // carry the pool those ids index.
  Out.Names = Tr.Names;

  std::vector<std::vector<uint32_t>> IndexMap(Tr.Threads.size());

  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    const auto &Events = Tr.Threads[T].Events;
    size_t Bound = std::min(EventBound[T], Events.size());
    ThreadTrace Thread;
    std::vector<LockId> Open;
    uint32_t NewIndex = 0;
    for (size_t I = 0; I != Bound; ++I) {
      const Event &E = Events[I];
      switch (E.Kind) {
      case EventKind::ThreadEnd:
        continue; // Re-appended below.
      case EventKind::LockAcquire:
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
      case EventKind::TryAcquire:
        if (isSectionOpen(E)) {
          Open.push_back(E.Lock);
          IndexMap[T].push_back(NewIndex++);
        }
        break;
      case EventKind::LockRelease:
        assert(!Open.empty() && "unbalanced release in slice source");
        Open.pop_back();
        break;
      default:
        break;
      }
      Thread.Events.push_back(E);
    }
    // Map any unsurveyed sections of this thread to "dropped".
    for (size_t I = Bound; I != Events.size(); ++I)
      if (isSectionOpen(Events[I]))
        IndexMap[T].push_back(InvalidId);
    // Close still-open sections (innermost first) and end the thread.
    while (!Open.empty()) {
      Thread.Events.push_back(Event::lockRelease(Open.back()));
      Open.pop_back();
    }
    if (Thread.Events.empty() ||
        Thread.Events.front().Kind != EventKind::ThreadStart)
      Thread.Events.insert(Thread.Events.begin(), Event::threadStart());
    Thread.Events.push_back(Event::threadEnd());
    Out.Threads.push_back(std::move(Thread));
  }

  if (!Tr.LockSchedule.empty()) {
    Out.LockSchedule.assign(Out.Locks.size(), {});
    for (LockId L = 0; L != Tr.LockSchedule.size(); ++L)
      for (const CsRef &Ref : Tr.LockSchedule[L]) {
        if (Ref.Index >= IndexMap[Ref.Thread].size())
          continue;
        uint32_t NewIndex = IndexMap[Ref.Thread][Ref.Index];
        if (NewIndex != InvalidId)
          Out.LockSchedule[L].push_back(CsRef{Ref.Thread, NewIndex});
      }
  }

  Out.buildCsIndex();
  return Out;
}
