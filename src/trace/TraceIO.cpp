//===- trace/TraceIO.cpp - Trace (de)serialization -------------------------===//

#include "trace/TraceIO.h"

#include "support/MappedFile.h"
#include "trace/TraceV3.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <sstream>

using namespace perfplay;

//===----------------------------------------------------------------------===//
// Text format
//===----------------------------------------------------------------------===//

static const char *TextMagic = "perfplay-trace-v1";

/// Escapes whitespace and '%' so names and paths stay single tokens.
static std::string escapeToken(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == ' ')
      Out += "%20";
    else if (C == '\t')
      Out += "%09";
    else if (C == '\n')
      Out += "%0A";
    else if (C == '%')
      Out += "%25";
    else
      Out += C;
  }
  if (Out.empty())
    Out = "%00"; // Empty-string sentinel keeps token counts stable.
  return Out;
}

static int hexDigit(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

static std::string unescapeToken(const std::string &S) {
  if (S == "%00")
    return "";
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I != S.size(); ++I) {
    if (S[I] == '%' && I + 2 < S.size()) {
      int Hi = hexDigit(S[I + 1]), Lo = hexDigit(S[I + 2]);
      if (Hi >= 0 && Lo >= 0) {
        Out += static_cast<char>(Hi * 16 + Lo);
        I += 2;
        continue;
      }
    }
    Out += S[I];
  }
  return Out;
}

std::string perfplay::writeTraceText(const Trace &Tr) {
  std::ostringstream OS;
  OS << TextMagic << "\n";

  OS << "locks " << Tr.Locks.size() << "\n";
  for (const auto &L : Tr.Locks)
    OS << "lock " << (L.IsSpin ? 1 : 0) << " "
       << escapeToken(Tr.Names.str(L.Name)) << "\n";

  OS << "sites " << Tr.Sites.size() << "\n";
  for (const auto &S : Tr.Sites)
    OS << "site " << S.BeginLine << " " << S.EndLine << " "
       << escapeToken(Tr.Names.str(S.File)) << " "
       << escapeToken(Tr.Names.str(S.Function)) << "\n";

  OS << "locksets " << Tr.Locksets.size() << "\n";
  for (const auto &LS : Tr.Locksets) {
    OS << "lockset " << LS.Entries.size();
    for (const auto &E : LS.Entries)
      OS << " " << E.Lock << ":"
         << (E.SourceCs == InvalidId ? -1
                                     : static_cast<int64_t>(E.SourceCs));
    OS << "\n";
  }

  OS << "constraints " << Tr.Constraints.size() << "\n";
  for (const auto &C : Tr.Constraints)
    OS << "constraint " << C.Before << " " << C.After << "\n";

  OS << "schedule " << Tr.LockSchedule.size() << "\n";
  for (size_t L = 0; L != Tr.LockSchedule.size(); ++L) {
    OS << "sched " << L << " " << Tr.LockSchedule[L].size();
    for (const CsRef &R : Tr.LockSchedule[L])
      OS << " " << R.Thread << ":" << R.Index;
    OS << "\n";
  }

  OS << "threads " << Tr.Threads.size() << "\n";
  for (const auto &T : Tr.Threads) {
    OS << "thread " << T.Events.size() << "\n";
    for (const Event &E : T.Events) {
      switch (E.Kind) {
      case EventKind::ThreadStart:
        OS << "ts\n";
        break;
      case EventKind::ThreadEnd:
        OS << "te\n";
        break;
      case EventKind::LockAcquire:
        OS << "acq " << E.Lock << " "
           << (E.Site == InvalidId ? -1 : static_cast<int64_t>(E.Site))
           << " "
           << (E.Lockset == InvalidId ? -1
                                      : static_cast<int64_t>(E.Lockset))
           << "\n";
        break;
      case EventKind::LockRelease:
        OS << "rel " << E.Lock << "\n";
        break;
      case EventKind::Read:
        OS << "rd " << E.Addr << " " << E.Value << "\n";
        break;
      case EventKind::Write:
        OS << "wr " << E.Addr << " " << E.Value << " "
           << static_cast<unsigned>(E.Op) << "\n";
        break;
      case EventKind::Compute:
        OS << "comp " << E.Cost << "\n";
        break;
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
        OS << (E.Kind == EventKind::RwAcquireRead ? "rwa " : "rww ")
           << E.Lock << " "
           << (E.Site == InvalidId ? -1 : static_cast<int64_t>(E.Site))
           << " "
           << (E.Lockset == InvalidId ? -1
                                      : static_cast<int64_t>(E.Lockset))
           << "\n";
        break;
      case EventKind::TryAcquire:
        OS << "try " << E.Lock << " "
           << (E.Site == InvalidId ? -1 : static_cast<int64_t>(E.Site))
           << " "
           << (E.Lockset == InvalidId ? -1
                                      : static_cast<int64_t>(E.Lockset))
           << " " << static_cast<unsigned>(E.Mode) << " "
           << (E.TrySucceeded ? 1 : 0) << "\n";
        break;
      case EventKind::CondWait:
        OS << "cwait " << E.Lock << " "
           << (E.Site == InvalidId ? -1 : static_cast<int64_t>(E.Site))
           << "\n";
        break;
      case EventKind::CondSignal:
        OS << "csig " << E.Lock << "\n";
        break;
      case EventKind::CondBroadcast:
        OS << "cbro " << E.Lock << "\n";
        break;
      }
    }
  }
  OS << "end\n";
  return OS.str();
}

namespace {

/// Minimal line/token cursor over the text format.
class TextCursor {
public:
  explicit TextCursor(const std::string &Text) : In(Text) {}

  /// Reads the next non-empty line into the token stream.
  bool nextLine(std::string &Err) {
    std::string Line;
    while (std::getline(In, Line)) {
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      ++LineNo;
      Tokens.str(Line);
      Tokens.clear();
      return true;
    }
    Err = "unexpected end of trace text";
    return false;
  }

  bool word(std::string &Out, std::string &Err) {
    if (Tokens >> Out)
      return true;
    Err = "line " + std::to_string(LineNo) + ": missing token";
    return false;
  }

  bool expect(const char *Keyword, std::string &Err) {
    std::string W;
    if (!word(W, Err))
      return false;
    if (W != Keyword) {
      Err = "line " + std::to_string(LineNo) + ": expected '" + Keyword +
            "', got '" + W + "'";
      return false;
    }
    return true;
  }

  bool integer(int64_t &Out, std::string &Err) {
    std::string W;
    if (!word(W, Err))
      return false;
    errno = 0;
    char *End = nullptr;
    long long V = std::strtoll(W.c_str(), &End, 10);
    if (End == W.c_str() || *End != '\0' || errno == ERANGE) {
      Err = "line " + std::to_string(LineNo) + ": bad integer '" + W + "'";
      return false;
    }
    Out = V;
    return true;
  }

  bool unsignedInt(uint64_t &Out, std::string &Err) {
    int64_t V;
    if (!integer(V, Err))
      return false;
    if (V < 0) {
      Err = "line " + std::to_string(LineNo) + ": negative count";
      return false;
    }
    Out = static_cast<uint64_t>(V);
    return true;
  }

  /// Parses "a:b" pairs where a,b may be -1 meaning InvalidId.
  bool idPair(uint32_t &A, uint32_t &B, std::string &Err) {
    std::string W;
    if (!word(W, Err))
      return false;
    size_t Colon = W.find(':');
    if (Colon == std::string::npos) {
      Err = "line " + std::to_string(LineNo) + ": expected 'a:b' pair";
      return false;
    }
    auto parseOne = [&](const std::string &S, uint32_t &Out) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(S.c_str(), &End, 10);
      if (End == S.c_str() || *End != '\0' || errno == ERANGE)
        return false;
      Out = V < 0 ? InvalidId : static_cast<uint32_t>(V);
      return true;
    };
    if (!parseOne(W.substr(0, Colon), A) ||
        !parseOne(W.substr(Colon + 1), B)) {
      Err = "line " + std::to_string(LineNo) + ": bad pair '" + W + "'";
      return false;
    }
    return true;
  }

  unsigned line() const { return LineNo; }

private:
  std::istringstream In;
  std::istringstream Tokens;
  unsigned LineNo = 0;
};

} // namespace

bool perfplay::parseTraceText(const std::string &Text, Trace &Out,
                              std::string &Err) {
  Out = Trace();
  TextCursor C(Text);

  if (!C.nextLine(Err))
    return false;
  std::string Magic;
  if (!C.word(Magic, Err))
    return false;
  if (Magic != TextMagic) {
    Err = "not a perfplay trace (bad magic '" + Magic + "')";
    return false;
  }

  uint64_t N;
  // Locks.
  if (!C.nextLine(Err) || !C.expect("locks", Err) || !C.unsignedInt(N, Err))
    return false;
  for (uint64_t I = 0; I != N; ++I) {
    if (!C.nextLine(Err) || !C.expect("lock", Err))
      return false;
    uint64_t Spin;
    std::string Name;
    if (!C.unsignedInt(Spin, Err) || !C.word(Name, Err))
      return false;
    LockInfo Info;
    Info.IsSpin = Spin != 0;
    Info.Name = Out.Names.intern(unescapeToken(Name));
    Out.Locks.push_back(Info);
  }

  // Sites.
  if (!C.nextLine(Err) || !C.expect("sites", Err) || !C.unsignedInt(N, Err))
    return false;
  for (uint64_t I = 0; I != N; ++I) {
    if (!C.nextLine(Err) || !C.expect("site", Err))
      return false;
    uint64_t Begin, End;
    std::string File, Function;
    if (!C.unsignedInt(Begin, Err) || !C.unsignedInt(End, Err) ||
        !C.word(File, Err) || !C.word(Function, Err))
      return false;
    CodeSite S;
    S.BeginLine = static_cast<uint32_t>(Begin);
    S.EndLine = static_cast<uint32_t>(End);
    S.File = Out.Names.intern(unescapeToken(File));
    S.Function = Out.Names.intern(unescapeToken(Function));
    Out.Sites.push_back(S);
  }

  // Locksets.
  if (!C.nextLine(Err) || !C.expect("locksets", Err) ||
      !C.unsignedInt(N, Err))
    return false;
  for (uint64_t I = 0; I != N; ++I) {
    if (!C.nextLine(Err) || !C.expect("lockset", Err))
      return false;
    uint64_t K;
    if (!C.unsignedInt(K, Err))
      return false;
    Lockset LS;
    for (uint64_t J = 0; J != K; ++J) {
      LocksetEntry E;
      if (!C.idPair(E.Lock, E.SourceCs, Err))
        return false;
      LS.Entries.push_back(E);
    }
    Out.Locksets.push_back(std::move(LS));
  }

  // Constraints.
  if (!C.nextLine(Err) || !C.expect("constraints", Err) ||
      !C.unsignedInt(N, Err))
    return false;
  for (uint64_t I = 0; I != N; ++I) {
    if (!C.nextLine(Err) || !C.expect("constraint", Err))
      return false;
    uint64_t Before, After;
    if (!C.unsignedInt(Before, Err) || !C.unsignedInt(After, Err))
      return false;
    Out.Constraints.push_back(
        OrderConstraint{static_cast<uint32_t>(Before),
                        static_cast<uint32_t>(After)});
  }

  // Schedule.
  if (!C.nextLine(Err) || !C.expect("schedule", Err) ||
      !C.unsignedInt(N, Err))
    return false;
  // Every per-lock order needs its own "sched" line of >= 9 chars, so
  // a count beyond input-length/9 is forged — reject it before the
  // resize allocates proportionally to it.
  if (N > Text.size() / 9) {
    Err = "schedule count exceeds input size";
    return false;
  }
  Out.LockSchedule.resize(N);
  for (uint64_t I = 0; I != N; ++I) {
    if (!C.nextLine(Err) || !C.expect("sched", Err))
      return false;
    uint64_t LockIdx, K;
    if (!C.unsignedInt(LockIdx, Err) || !C.unsignedInt(K, Err))
      return false;
    if (LockIdx >= Out.LockSchedule.size()) {
      Err = "line " + std::to_string(C.line()) + ": sched lock out of range";
      return false;
    }
    auto &Order = Out.LockSchedule[LockIdx];
    for (uint64_t J = 0; J != K; ++J) {
      CsRef R;
      if (!C.idPair(R.Thread, R.Index, Err))
        return false;
      Order.push_back(R);
    }
  }

  // Threads.
  if (!C.nextLine(Err) || !C.expect("threads", Err) ||
      !C.unsignedInt(N, Err))
    return false;
  for (uint64_t T = 0; T != N; ++T) {
    if (!C.nextLine(Err) || !C.expect("thread", Err))
      return false;
    uint64_t NumEvents;
    if (!C.unsignedInt(NumEvents, Err))
      return false;
    // The shortest event line ("ts\n") is 3 chars; a count the input
    // cannot possibly hold must not size the reserve below — and the
    // reserve itself is clamped by the in-memory event size so even an
    // accepted count cannot allocate a multiple of the input.
    if (NumEvents > Text.size() / 3) {
      Err = "event count exceeds input size";
      return false;
    }
    ThreadTrace TT;
    TT.Events.reserve(std::min<size_t>(
        NumEvents, Text.size() / sizeof(Event) + 1));
    for (uint64_t I = 0; I != NumEvents; ++I) {
      if (!C.nextLine(Err))
        return false;
      std::string Kind;
      if (!C.word(Kind, Err))
        return false;
      if (Kind == "ts") {
        TT.Events.push_back(Event::threadStart());
      } else if (Kind == "te") {
        TT.Events.push_back(Event::threadEnd());
      } else if (Kind == "acq") {
        int64_t Lock, Site, LS;
        if (!C.integer(Lock, Err) || !C.integer(Site, Err) ||
            !C.integer(LS, Err))
          return false;
        TT.Events.push_back(Event::lockAcquire(
            static_cast<LockId>(Lock),
            Site < 0 ? InvalidId : static_cast<CodeSiteId>(Site),
            LS < 0 ? InvalidId : static_cast<LocksetId>(LS)));
      } else if (Kind == "rel") {
        int64_t Lock;
        if (!C.integer(Lock, Err))
          return false;
        TT.Events.push_back(Event::lockRelease(static_cast<LockId>(Lock)));
      } else if (Kind == "rd") {
        uint64_t Addr, Value;
        if (!C.unsignedInt(Addr, Err) || !C.unsignedInt(Value, Err))
          return false;
        TT.Events.push_back(Event::read(Addr, Value));
      } else if (Kind == "wr") {
        uint64_t Addr, Value, Op;
        if (!C.unsignedInt(Addr, Err) || !C.unsignedInt(Value, Err) ||
            !C.unsignedInt(Op, Err))
          return false;
        if (Op > static_cast<uint64_t>(WriteOpKind::Xor)) {
          Err = "line " + std::to_string(C.line()) + ": bad write op";
          return false;
        }
        TT.Events.push_back(
            Event::write(Addr, Value, static_cast<WriteOpKind>(Op)));
      } else if (Kind == "comp") {
        uint64_t Cost;
        if (!C.unsignedInt(Cost, Err))
          return false;
        TT.Events.push_back(Event::compute(Cost));
      } else if (Kind == "rwa" || Kind == "rww") {
        int64_t Lock, Site, LS;
        if (!C.integer(Lock, Err) || !C.integer(Site, Err) ||
            !C.integer(LS, Err))
          return false;
        CodeSiteId S = Site < 0 ? InvalidId : static_cast<CodeSiteId>(Site);
        LocksetId L = LS < 0 ? InvalidId : static_cast<LocksetId>(LS);
        TT.Events.push_back(
            Kind == "rwa"
                ? Event::rwAcquireRead(static_cast<LockId>(Lock), S, L)
                : Event::rwAcquireWrite(static_cast<LockId>(Lock), S, L));
      } else if (Kind == "try") {
        int64_t Lock, Site, LS;
        uint64_t Mode, Ok;
        if (!C.integer(Lock, Err) || !C.integer(Site, Err) ||
            !C.integer(LS, Err) || !C.unsignedInt(Mode, Err) ||
            !C.unsignedInt(Ok, Err))
          return false;
        if (Mode > static_cast<uint64_t>(AcquireMode::Shared)) {
          Err = "line " + std::to_string(C.line()) + ": bad acquire mode";
          return false;
        }
        if (Ok > 1) {
          Err = "line " + std::to_string(C.line()) + ": bad try flag";
          return false;
        }
        TT.Events.push_back(Event::tryAcquire(
            static_cast<LockId>(Lock),
            Site < 0 ? InvalidId : static_cast<CodeSiteId>(Site), Ok != 0,
            static_cast<AcquireMode>(Mode),
            LS < 0 ? InvalidId : static_cast<LocksetId>(LS)));
      } else if (Kind == "cwait") {
        int64_t Cond, Site;
        if (!C.integer(Cond, Err) || !C.integer(Site, Err))
          return false;
        TT.Events.push_back(Event::condWait(
            static_cast<LockId>(Cond),
            Site < 0 ? InvalidId : static_cast<CodeSiteId>(Site)));
      } else if (Kind == "csig") {
        int64_t Cond;
        if (!C.integer(Cond, Err))
          return false;
        TT.Events.push_back(Event::condSignal(static_cast<LockId>(Cond)));
      } else if (Kind == "cbro") {
        int64_t Cond;
        if (!C.integer(Cond, Err))
          return false;
        TT.Events.push_back(Event::condBroadcast(static_cast<LockId>(Cond)));
      } else {
        Err = "line " + std::to_string(C.line()) + ": unknown event '" +
              Kind + "'";
        return false;
      }
    }
    Out.Threads.push_back(std::move(TT));
  }

  if (!C.nextLine(Err) || !C.expect("end", Err))
    return false;

  Out.buildCsIndex();
  std::string Invalid = Out.validate();
  if (!Invalid.empty()) {
    Err = "parsed trace fails validation: " + Invalid;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Binary format
//===----------------------------------------------------------------------===//

static const char BinaryMagic[8] = {'P', 'F', 'P', 'L', 'T', 'R', 'C', '1'};

namespace {

class ByteWriter {
public:
  void u8(uint8_t V) { Bytes.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Bytes.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Cursor over a borrowed byte buffer — typically a read-only file
/// mapping, so every accessor bounds-checks before touching memory and
/// nothing here allocates.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  size_t remaining() const { return Size - Pos; }

  /// True when a table of \p N entries, each occupying at least
  /// \p MinEntryBytes on disk, can still fit in the unread suffix.
  /// The guard every table loop runs before trusting an on-disk count:
  /// a hostile 12-byte file must not drive a multi-gigabyte resize.
  bool countFits(uint64_t N, size_t MinEntryBytes) const {
    return N <= remaining() / MinEntryBytes;
  }

  bool u8(uint8_t &V) {
    if (remaining() < 1)
      return false;
    V = Data[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (remaining() < 4)
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return true;
  }
  bool u64(uint64_t &V) {
    if (remaining() < 8)
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return true;
  }
  /// Reads a length-prefixed string as a view into the borrowed
  /// buffer.  The caller decides whether to copy it (owned interning)
  /// or keep the view (borrowed interning into a pinned mapping).
  bool str(std::string_view &S) {
    uint32_t Len;
    if (!u32(Len) || Len > remaining())
      return false;
    S = std::string_view(reinterpret_cast<const char *>(Data) + Pos, Len);
    Pos += Len;
    return true;
  }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

} // namespace

std::vector<uint8_t> perfplay::writeTraceBinary(const Trace &Tr) {
  ByteWriter W;
  for (char C : BinaryMagic)
    W.u8(static_cast<uint8_t>(C));

  W.u32(static_cast<uint32_t>(Tr.Locks.size()));
  for (const auto &L : Tr.Locks) {
    W.u8(L.IsSpin ? 1 : 0);
    W.str(Tr.Names.str(L.Name));
  }

  W.u32(static_cast<uint32_t>(Tr.Sites.size()));
  for (const auto &S : Tr.Sites) {
    W.u32(S.BeginLine);
    W.u32(S.EndLine);
    W.str(Tr.Names.str(S.File));
    W.str(Tr.Names.str(S.Function));
  }

  W.u32(static_cast<uint32_t>(Tr.Locksets.size()));
  for (const auto &LS : Tr.Locksets) {
    W.u32(static_cast<uint32_t>(LS.Entries.size()));
    for (const auto &E : LS.Entries) {
      W.u32(E.Lock);
      W.u32(E.SourceCs);
    }
  }

  W.u32(static_cast<uint32_t>(Tr.Constraints.size()));
  for (const auto &C : Tr.Constraints) {
    W.u32(C.Before);
    W.u32(C.After);
  }

  W.u32(static_cast<uint32_t>(Tr.LockSchedule.size()));
  for (const auto &Order : Tr.LockSchedule) {
    W.u32(static_cast<uint32_t>(Order.size()));
    for (const CsRef &R : Order) {
      W.u32(R.Thread);
      W.u32(R.Index);
    }
  }

  W.u32(static_cast<uint32_t>(Tr.Threads.size()));
  for (const auto &T : Tr.Threads) {
    W.u32(static_cast<uint32_t>(T.Events.size()));
    for (const Event &E : T.Events) {
      W.u8(static_cast<uint8_t>(E.Kind));
      switch (E.Kind) {
      case EventKind::ThreadStart:
      case EventKind::ThreadEnd:
        break;
      case EventKind::LockAcquire:
        W.u32(E.Lock);
        W.u32(E.Site);
        W.u32(E.Lockset);
        break;
      case EventKind::LockRelease:
        W.u32(E.Lock);
        break;
      case EventKind::Read:
        W.u64(E.Addr);
        W.u64(E.Value);
        break;
      case EventKind::Write:
        W.u64(E.Addr);
        W.u64(E.Value);
        W.u8(static_cast<uint8_t>(E.Op));
        break;
      case EventKind::Compute:
        W.u64(E.Cost);
        break;
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
        W.u32(E.Lock);
        W.u32(E.Site);
        W.u32(E.Lockset);
        break;
      case EventKind::TryAcquire:
        W.u32(E.Lock);
        W.u32(E.Site);
        W.u32(E.Lockset);
        W.u8(static_cast<uint8_t>(E.Mode));
        W.u8(E.TrySucceeded ? 1 : 0);
        break;
      case EventKind::CondWait:
        W.u32(E.Lock);
        W.u32(E.Site);
        break;
      case EventKind::CondSignal:
      case EventKind::CondBroadcast:
        W.u32(E.Lock);
        break;
      }
    }
  }
  return W.take();
}

bool perfplay::parseTraceBinary(const uint8_t *Data, size_t Size,
                                Trace &Out, std::string &Err,
                                NameStorage Names) {
  Out = Trace();
  ByteReader R(Data, Size);
  auto fail = [&](const char *Msg) {
    Err = Msg;
    return false;
  };
  // One funnel for every name read: owned interning copies the view
  // into the pool's arena; borrowed interning keeps it pointing into
  // \p Data (the mmap the caller pins), making the parse copy-free.
  auto internName = [&](std::string_view S) {
    return Names == NameStorage::Borrowed ? Out.Names.internBorrowed(S)
                                          : Out.Names.intern(S);
  };

  for (char C : BinaryMagic) {
    uint8_t B;
    if (!R.u8(B) || B != static_cast<uint8_t>(C))
      return fail("not a perfplay binary trace (bad magic)");
  }

  // Every table below validates its on-disk count against the unread
  // byte budget (using each entry's minimum encoded size) before any
  // container is sized.  Corrupt or hostile headers therefore fail
  // with a typed "count exceeds file size" diagnostic instead of
  // triggering an allocation proportional to the forged count — peak
  // memory stays bounded by the real file size.

  uint32_t N;
  if (!R.u32(N))
    return fail("truncated lock table");
  if (!R.countFits(N, 5)) // u8 spin + u32 name length
    return fail("lock table count exceeds file size");
  Out.Locks.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    LockInfo L;
    uint8_t Spin;
    std::string_view Name;
    if (!R.u8(Spin) || !R.str(Name))
      return fail("truncated lock entry");
    L.IsSpin = Spin != 0;
    L.Name = internName(Name);
    Out.Locks.push_back(L);
  }

  if (!R.u32(N))
    return fail("truncated site table");
  if (!R.countFits(N, 16)) // two u32 lines + two u32 string lengths
    return fail("site table count exceeds file size");
  Out.Sites.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    CodeSite S;
    std::string_view File, Function;
    if (!R.u32(S.BeginLine) || !R.u32(S.EndLine) || !R.str(File) ||
        !R.str(Function))
      return fail("truncated site entry");
    S.File = internName(File);
    S.Function = internName(Function);
    Out.Sites.push_back(S);
  }

  if (!R.u32(N))
    return fail("truncated lockset table");
  if (!R.countFits(N, 4)) // u32 entry count per lockset
    return fail("lockset table count exceeds file size");
  Out.Locksets.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t K;
    if (!R.u32(K))
      return fail("truncated lockset");
    if (!R.countFits(K, 8)) // u32 lock + u32 source section
      return fail("lockset entry count exceeds file size");
    Lockset LS;
    LS.Entries.reserve(K);
    for (uint32_t J = 0; J != K; ++J) {
      LocksetEntry E;
      if (!R.u32(E.Lock) || !R.u32(E.SourceCs))
        return fail("truncated lockset entry");
      LS.Entries.push_back(E);
    }
    Out.Locksets.push_back(std::move(LS));
  }

  if (!R.u32(N))
    return fail("truncated constraint table");
  if (!R.countFits(N, 8)) // u32 before + u32 after
    return fail("constraint table count exceeds file size");
  Out.Constraints.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    OrderConstraint C;
    if (!R.u32(C.Before) || !R.u32(C.After))
      return fail("truncated constraint");
    Out.Constraints.push_back(C);
  }

  if (!R.u32(N))
    return fail("truncated schedule");
  if (!R.countFits(N, 4)) // u32 entry count per per-lock order
    return fail("schedule count exceeds file size");
  Out.LockSchedule.resize(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t K;
    if (!R.u32(K))
      return fail("truncated schedule order");
    if (!R.countFits(K, 8)) // u32 thread + u32 index
      return fail("schedule entry count exceeds file size");
    Out.LockSchedule[I].reserve(K);
    for (uint32_t J = 0; J != K; ++J) {
      CsRef Ref;
      if (!R.u32(Ref.Thread) || !R.u32(Ref.Index))
        return fail("truncated schedule entry");
      Out.LockSchedule[I].push_back(Ref);
    }
  }

  if (!R.u32(N))
    return fail("truncated thread table");
  if (!R.countFits(N, 4)) // u32 event count per thread
    return fail("thread table count exceeds file size");
  Out.Threads.reserve(N);
  for (uint32_t T = 0; T != N; ++T) {
    uint32_t NumEvents;
    if (!R.u32(NumEvents))
      return fail("truncated thread header");
    if (!R.countFits(NumEvents, 1)) // u8 kind tag per event
      return fail("event count exceeds file size");
    ThreadTrace TT;
    // The count check above uses the 1-byte on-disk minimum
    // (ThreadStart/End are bare tags), but events occupy sizeof(Event)
    // in memory — clamp the reserve so a dense forged count cannot
    // multiply the file size; oversized legitimate threads just grow
    // geometrically past the hint.
    TT.Events.reserve(std::min<size_t>(
        NumEvents, R.remaining() / sizeof(Event) + 1));
    for (uint32_t I = 0; I != NumEvents; ++I) {
      uint8_t KindByte;
      if (!R.u8(KindByte))
        return fail("truncated event");
      if (KindByte > static_cast<uint8_t>(EventKind::CondBroadcast))
        return fail("unknown event kind");
      Event E;
      E.Kind = static_cast<EventKind>(KindByte);
      switch (E.Kind) {
      case EventKind::ThreadStart:
      case EventKind::ThreadEnd:
        break;
      case EventKind::LockAcquire:
        if (!R.u32(E.Lock) || !R.u32(E.Site) || !R.u32(E.Lockset))
          return fail("truncated acquire");
        break;
      case EventKind::LockRelease:
        if (!R.u32(E.Lock))
          return fail("truncated release");
        break;
      case EventKind::Read:
        if (!R.u64(E.Addr) || !R.u64(E.Value))
          return fail("truncated read");
        break;
      case EventKind::Write: {
        uint8_t Op;
        if (!R.u64(E.Addr) || !R.u64(E.Value) || !R.u8(Op))
          return fail("truncated write");
        if (Op > static_cast<uint8_t>(WriteOpKind::Xor))
          return fail("unknown write op");
        E.Op = static_cast<WriteOpKind>(Op);
        break;
      }
      case EventKind::Compute:
        if (!R.u64(E.Cost))
          return fail("truncated compute");
        break;
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
        if (!R.u32(E.Lock) || !R.u32(E.Site) || !R.u32(E.Lockset))
          return fail("truncated rwlock acquire");
        E.Mode = E.Kind == EventKind::RwAcquireRead ? AcquireMode::Shared
                                                    : AcquireMode::Exclusive;
        break;
      case EventKind::TryAcquire: {
        uint8_t Mode, Ok;
        if (!R.u32(E.Lock) || !R.u32(E.Site) || !R.u32(E.Lockset) ||
            !R.u8(Mode) || !R.u8(Ok))
          return fail("truncated trylock");
        if (Mode > static_cast<uint8_t>(AcquireMode::Shared))
          return fail("unknown acquire mode");
        if (Ok > 1)
          return fail("bad trylock flag");
        E.Mode = static_cast<AcquireMode>(Mode);
        E.TrySucceeded = Ok != 0;
        break;
      }
      case EventKind::CondWait:
        if (!R.u32(E.Lock) || !R.u32(E.Site))
          return fail("truncated condition wait");
        break;
      case EventKind::CondSignal:
      case EventKind::CondBroadcast:
        if (!R.u32(E.Lock))
          return fail("truncated condition signal");
        break;
      }
      TT.Events.push_back(E);
    }
    Out.Threads.push_back(std::move(TT));
  }

  Out.buildCsIndex();
  std::string Invalid = Out.validate();
  if (!Invalid.empty()) {
    Err = "parsed trace fails validation: " + Invalid;
    return false;
  }
  return true;
}

bool perfplay::parseTraceBinary(const std::vector<uint8_t> &Bytes,
                                Trace &Out, std::string &Err) {
  return parseTraceBinary(Bytes.data(), Bytes.size(), Out, Err);
}

/// The binary header's magic is not valid text-format prose, so the
/// first eight bytes decide the format unambiguously.
static bool hasBinaryMagic(const uint8_t *Data, size_t Size) {
  return Size >= sizeof(BinaryMagic) &&
         std::memcmp(Data, BinaryMagic, sizeof(BinaryMagic)) == 0;
}

bool perfplay::parseTraceBuffer(const uint8_t *Data, size_t Size,
                                Trace &Out, std::string &Err) {
  if (hasBinaryMagic(Data, Size))
    return parseTraceBinary(Data, Size, Out, Err);
  if (hasTraceV3Magic(Data, Size))
    return parseTraceV3(Data, Size, Out, Err);
  // The line parser tokenizes out of a string; one copy, text only.
  std::string Text;
  if (Size != 0)
    Text.assign(reinterpret_cast<const char *>(Data), Size);
  return parseTraceText(Text, Out, Err);
}

//===----------------------------------------------------------------------===//
// File helpers
//===----------------------------------------------------------------------===//

bool perfplay::saveTrace(const Trace &Tr, const std::string &Path,
                         std::string &Err, TraceFormat Format) {
  if (Format == TraceFormat::V3)
    return saveTraceV3(Tr, Path, Err);
  const char *Data;
  size_t Size;
  std::string Text;
  std::vector<uint8_t> Bytes;
  if (Format == TraceFormat::Binary) {
    Bytes = writeTraceBinary(Tr);
    Data = reinterpret_cast<const char *>(Bytes.data());
    Size = Bytes.size();
  } else {
    Text = writeTraceText(Tr);
    Data = Text.data();
    Size = Text.size();
  }
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Data, 1, Size, F);
  std::fclose(F);
  if (Written != Size) {
    Err = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

/// The legacy copying loader: stream the file through stdio into the
/// container its parser wants.
static bool loadTraceStream(const std::string &Path, Trace &Out,
                            std::string &Err,
                            TraceLoadInfo *Info = nullptr) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open '" + Path + "' for reading";
    return false;
  }
  // Format sniffing: neither binary magic is valid text-format prose,
  // so the first eight bytes decide unambiguously.  Sniffing before
  // slurping lets each path read straight into the container its
  // parser wants — no whole-file copy.
  uint8_t Head[sizeof(BinaryMagic)];
  size_t HeadLen = std::fread(Head, 1, sizeof(Head), F);
  bool Binary = HeadLen == sizeof(BinaryMagic) &&
                std::memcmp(Head, BinaryMagic, sizeof(BinaryMagic)) == 0;
  bool V3 = hasTraceV3Magic(Head, HeadLen);

  char Buf[1 << 16];
  if (Binary || V3) {
    std::vector<uint8_t> Bytes(Head, Head + HeadLen);
    for (;;) {
      size_t N = std::fread(Buf, 1, sizeof(Buf), F);
      Bytes.insert(Bytes.end(), Buf, Buf + N);
      if (N < sizeof(Buf))
        break;
    }
    std::fclose(F);
    if (Info)
      Info->Format = V3 ? TraceFormat::V3 : TraceFormat::Binary;
    if (V3)
      return parseTraceV3(Bytes.data(), Bytes.size(), Out, Err);
    return parseTraceBinary(Bytes, Out, Err);
  }
  std::string Text(reinterpret_cast<const char *>(Head), HeadLen);
  for (;;) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Text.append(Buf, N);
    if (N < sizeof(Buf))
      break;
  }
  std::fclose(F);
  if (Info)
    Info->Format = TraceFormat::Text;
  return parseTraceText(Text, Out, Err);
}

bool perfplay::loadTraceKeepMapping(const std::string &Path, Trace &Out,
                                    std::string &Err, MappedFile &File,
                                    TraceLoadMode Mode, NameStorage Names,
                                    TraceLoadInfo *Info) {
  File.close();
  if (Info)
    *Info = TraceLoadInfo();
  auto downgrade = [&](std::string Reason) {
    if (Info)
      Info->MmapDowngradeReason = std::move(Reason);
    return loadTraceStream(Path, Out, Err, Info);
  };
  if (Mode == TraceLoadMode::Stream)
    // Explicitly requested; not a downgrade.
    return loadTraceStream(Path, Out, Err, Info);
  // Auto streams anything unmappable — pipes and FIFOs must not have
  // their read end consumed by a doomed map attempt, and platforms
  // without mmap gain nothing from the fallback's extra copy.
  if (Mode == TraceLoadMode::Auto && !MappedFile::isMappablePath(Path)) {
    switch (MappedFile::classifyPath(Path)) {
    case MappedFile::PathKind::Other:
      return downgrade("not a regular file (pipe, FIFO, or device)");
    case MappedFile::PathKind::Missing:
      return downgrade("file cannot be stat'ed");
    case MappedFile::PathKind::Regular:
      return downgrade("platform build has no mmap support");
    }
  }
  // Explicit Mmap on an existing non-regular source is rejected up
  // front: opening a pipe can block and consumes its read end, and a
  // misleading empty-input parse error would follow.  Missing files
  // fall through so open() reports them.
  if (Mode == TraceLoadMode::Mmap && MappedFile::supportsMapping() &&
      MappedFile::classifyPath(Path) == MappedFile::PathKind::Other) {
    Err = "cannot mmap '" + Path +
          "': not a regular file (use the stream loader)";
    return false;
  }
  // Map the file and parse in place — binary traces come straight out
  // of the page cache with no intermediate byte-vector copy.  The
  // Trace owns its storage; the caller decides whether the mapping
  // outlives this call.
  bool Opened = File.open(Path, Err);
  if (!Opened || File.size() == 0) {
    // Some network/FUSE mounts refuse mmap on regular files; Auto
    // keeps those working by dropping to the stdio loader.  Explicit
    // Mmap stays strict.
    std::string OpenErr = Err;
    File.close();
    if (Mode == TraceLoadMode::Auto)
      return downgrade(Opened ? "file is empty (nothing to map)"
                              : "mmap open failed: " + OpenErr);
    if (!Opened)
      return false;
  }
  const bool Binary = hasBinaryMagic(File.data(), File.size());
  const bool V3 = hasTraceV3Magic(File.data(), File.size());
  if (Binary || V3) {
    // Borrowed names are only safe when the bytes live past this call:
    // a real mmap the caller pins.  The read-fallback buffer inside
    // File would also survive, but callers (Engine::openSessionFromFile)
    // deliberately drop non-mmap views to avoid keeping a second full
    // copy of the file alive — so borrow only from a genuine mapping.
    NameStorage Effective = Names == NameStorage::Borrowed && File.isMapped()
                                ? NameStorage::Borrowed
                                : NameStorage::Owned;
    if (Info) {
      Info->Format = V3 ? TraceFormat::V3 : TraceFormat::Binary;
      Info->UsedMmap = File.isMapped();
      Info->BorrowedNames = Effective == NameStorage::Borrowed;
      if (!File.isMapped())
        Info->MmapDowngradeReason =
            "platform build has no mmap support (read fallback)";
    }
    if (V3) {
      V3ParseOptions Opts;
      Opts.Names = Effective;
      return parseTraceV3(File.data(), File.size(), Out, Err, Opts);
    }
    return parseTraceBinary(File.data(), File.size(), Out, Err, Effective);
  }
  // Text parses out of its own string copy, so there is nothing the
  // caller could ever borrow from the mapping — release it now rather
  // than letting a session pin a whole text file for no benefit.
  std::string Text;
  if (File.size() != 0)
    Text.assign(reinterpret_cast<const char *>(File.data()), File.size());
  const bool WasMapped = File.isMapped();
  File.close();
  if (Info) {
    Info->Format = TraceFormat::Text;
    Info->UsedMmap = WasMapped;
  }
  return parseTraceText(Text, Out, Err);
}

bool perfplay::loadTrace(const std::string &Path, Trace &Out,
                         std::string &Err, TraceLoadMode Mode) {
  MappedFile File;
  return loadTraceKeepMapping(Path, Out, Err, File, Mode);
}

Expected<Trace> perfplay::readTraceFile(const std::string &Path,
                                        TraceLoadMode Mode) {
  Trace Out;
  std::string Err;
  if (!loadTrace(Path, Out, Err, Mode))
    return PipelineError(ErrorCode::TraceIOFailed, std::move(Err));
  return Out;
}
