//===- trace/Summary.h - Trace statistics -------------------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics over a trace: event breakdown, per-lock
/// acquisition counts, and critical-section size distribution.  Used
/// by the CLI's `stats` subcommand and handy when calibrating workload
/// models against Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_SUMMARY_H
#define PERFPLAY_TRACE_SUMMARY_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace perfplay {

/// Per-lock usage numbers.
struct LockSummary {
  LockId Lock = InvalidId;
  uint64_t Acquisitions = 0;
  /// Distinct threads that acquired the lock.
  unsigned Threads = 0;
  bool IsSpin = false;
};

/// Whole-trace statistics.
struct TraceSummary {
  unsigned NumThreads = 0;
  size_t NumEvents = 0;
  size_t NumCriticalSections = 0;
  uint64_t NumReads = 0;
  uint64_t NumWrites = 0;
  uint64_t NumComputeEvents = 0;
  /// Per-kind event histogram, indexed by EventKind's underlying
  /// value (ThreadStart .. CondBroadcast).
  uint64_t KindCounts[NumEventKinds] = {};
  /// Reader-side rwlock acquisitions (RwAcquireRead events).
  uint64_t RwReadAcquires = 0;
  /// Writer-side rwlock acquisitions (RwAcquireWrite events).
  uint64_t RwWriteAcquires = 0;
  /// Successful trylock attempts (each opened a critical section).
  uint64_t TrySuccesses = 0;
  /// Failed trylock attempts (contention evidence without a section).
  uint64_t TryFailures = 0;
  /// Condition-variable waits and signals (broadcast counts as
  /// signal).
  uint64_t CondWaits = 0;
  uint64_t CondSignals = 0;
  /// Total recorded computation (virtual ns).
  TimeNs TotalComputeNs = 0;
  /// Computation inside critical sections (by innermost containment).
  TimeNs InCsComputeNs = 0;
  /// Maximum lock-nesting depth observed.
  unsigned MaxNesting = 0;
  /// Per-lock rows, sorted by acquisitions descending.
  std::vector<LockSummary> Locks;

  /// Fraction of computation spent inside critical sections.
  double inCsFraction() const {
    return TotalComputeNs == 0
               ? 0.0
               : static_cast<double>(InCsComputeNs) /
                     static_cast<double>(TotalComputeNs);
  }
};

/// Computes the summary of \p Tr.
TraceSummary summarizeTrace(const Trace &Tr);

/// Renders \p Summary as text (lock table truncated to \p MaxLocks
/// rows).
std::string renderSummary(const Trace &Tr, const TraceSummary &Summary,
                          unsigned MaxLocks = 10);

} // namespace perfplay

#endif // PERFPLAY_TRACE_SUMMARY_H
