//===- trace/TraceIO.h - Trace (de)serialization -----------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace persistence in two formats: a line-oriented text format for
/// human inspection and goldens, and a compact binary format for large
/// recordings.  Both round-trip every field including transformed-trace
/// side tables (locksets, constraints, lock schedule).
///
/// The paper separates trace loading and format conversion from the
/// measured replay time (Section 6.1); keeping I/O in its own module
/// mirrors that separation.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_TRACEIO_H
#define PERFPLAY_TRACE_TRACEIO_H

#include "support/Expected.h"
#include "trace/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace perfplay {

/// Serializes \p Tr into the text format.
std::string writeTraceText(const Trace &Tr);

/// Parses the text format.  On failure returns false and sets \p Err.
bool parseTraceText(const std::string &Text, Trace &Out, std::string &Err);

/// Serializes \p Tr into the binary format.
std::vector<uint8_t> writeTraceBinary(const Trace &Tr);

/// How a parser stores the names it reads into the Trace's string pool
/// (trace/Trace.h, support/StringPool.h).
enum class NameStorage {
  /// Copy each distinct name once into the pool's arena.  The parsed
  /// Trace owns all of its storage; safe for any input buffer.
  Owned,
  /// Intern `string_view`s pointing straight into the input buffer —
  /// zero per-name heap copies.  The caller guarantees the buffer
  /// outlives the Trace (Engine::openSessionFromFile pins the file
  /// mapping in the session for exactly this purpose).  Only the
  /// binary parser can borrow; the text parser unescapes into the
  /// arena regardless.
  Borrowed,
};

/// Parses the binary format from a borrowed buffer — the zero-copy
/// entry point: \p Data may point into a read-only file mapping
/// (support/MappedFile.h) and is never modified or retained.  With
/// NameStorage::Owned (the default) the parsed Trace owns all of its
/// storage; with NameStorage::Borrowed lock/site names stay
/// `string_view`s into \p Data, eliminating every per-name copy, and
/// \p Data must outlive the Trace.  Every table count in the header is
/// validated against the remaining byte budget before anything is
/// allocated, so a truncated or hostile file fails with a "count
/// exceeds file size" diagnostic instead of attempting a
/// multi-gigabyte allocation.  On failure returns false and sets
/// \p Err.
bool parseTraceBinary(const uint8_t *Data, size_t Size, Trace &Out,
                      std::string &Err,
                      NameStorage Names = NameStorage::Owned);

/// Parses the binary format.  On failure returns false and sets \p Err.
bool parseTraceBinary(const std::vector<uint8_t> &Bytes, Trace &Out,
                      std::string &Err);

/// Parses \p Data as either trace format, sniffing by magic bytes.
/// Binary traces parse straight out of the borrowed buffer; text
/// traces are copied once into the line parser's working string.
bool parseTraceBuffer(const uint8_t *Data, size_t Size, Trace &Out,
                      std::string &Err);

/// On-disk trace encodings.
enum class TraceFormat {
  /// Line-oriented, human-readable; slow to parse at scale.
  Text,
  /// Compact little-endian binary for production-scale traces.
  Binary,
  /// Chunked delta-varint binary (trace/TraceV3.h): parallel full
  /// load and bounded-memory streaming via the footer's chunk
  /// directory.
  V3,
};

/// Writes \p Tr to \p Path in \p Format.  Returns false on I/O error.
/// All formats are recognized back by loadTrace.
bool saveTrace(const Trace &Tr, const std::string &Path, std::string &Err,
               TraceFormat Format = TraceFormat::Text);

/// How loadTrace brings a file's bytes into memory.
enum class TraceLoadMode {
  /// Memory-map when the platform supports it (zero-copy for binary
  /// traces), otherwise stream.  The default.
  Auto,
  /// Memory-map unconditionally (read-fallback on platforms without
  /// mmap).  Text traces still pay one copy into the line parser.
  Mmap,
  /// Stream the file into an owned buffer with stdio — the legacy
  /// copying path.
  Stream,
};

/// Reads a trace from \p Path, auto-detecting the format by its magic
/// bytes (binary header vs. the text banner).  Under Auto/Mmap the
/// binary parser runs directly over the file mapping, so
/// production-scale traces never make the intermediate whole-file
/// byte-vector copy; the mapping is released before returning (the
/// Trace owns its storage).
bool loadTrace(const std::string &Path, Trace &Out, std::string &Err,
               TraceLoadMode Mode = TraceLoadMode::Auto);

/// Typed-error variant of loadTrace for the staged Engine API: the
/// parsed trace, or a PipelineError with ErrorCode::TraceIOFailed
/// carrying the loader diagnostic.
Expected<Trace> readTraceFile(const std::string &Path,
                              TraceLoadMode Mode = TraceLoadMode::Auto);

class MappedFile;

/// How a load was actually served.  The interesting field is
/// MmapDowngradeReason: Auto mode silently falls back from the
/// zero-copy mmap path to the copying stream loader in several cases
/// (pipes, empty files, mounts that refuse mmap), and until this
/// struct existed the only symptom was a slower load — `perfplay stats
/// --verbose` now surfaces it.
struct TraceLoadInfo {
  /// Format detected by magic bytes.
  TraceFormat Format = TraceFormat::Text;
  /// True when the parse ran directly over a memory mapping (not the
  /// stream loader or the read fallback).
  bool UsedMmap = false;
  /// True when lock/site names borrow from the caller-pinned mapping.
  bool BorrowedNames = false;
  /// Why the zero-copy mmap path was not used, empty when it was (or
  /// when the caller explicitly asked for the stream loader).
  std::string MmapDowngradeReason;
};

/// loadTrace with the mapping handed to the caller: when the zero-copy
/// path served the load, \p File is left open over the source bytes so
/// the caller can pin it (Engine::openSessionFromFile keeps it for the
/// session's lifetime); when the stream path served it (Stream mode,
/// or Auto over something unmappable), \p File ends closed.  This is
/// the single home of the mode policy — loadTrace wraps it with a
/// throwaway mapping.
///
/// \p Names selects the string storage of a binary parse served by a
/// real mmap: NameStorage::Borrowed makes lock/site names point
/// straight into the mapping (zero per-name copies) and REQUIRES the
/// caller to keep \p File open for the Trace's lifetime.  Loads that
/// end with \p File closed (stream fallback, text input, read-fallback
/// platforms) always intern owned names, whatever \p Names says.
///
/// \p Info, when non-null, receives how the load was served (format,
/// mmap vs stream, and the downgrade reason when Auto fell back).
bool loadTraceKeepMapping(const std::string &Path, Trace &Out,
                          std::string &Err, MappedFile &File,
                          TraceLoadMode Mode = TraceLoadMode::Auto,
                          NameStorage Names = NameStorage::Owned,
                          TraceLoadInfo *Info = nullptr);

} // namespace perfplay

#endif // PERFPLAY_TRACE_TRACEIO_H
