//===- trace/TraceIO.h - Trace (de)serialization -----------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace persistence in two formats: a line-oriented text format for
/// human inspection and goldens, and a compact binary format for large
/// recordings.  Both round-trip every field including transformed-trace
/// side tables (locksets, constraints, lock schedule).
///
/// The paper separates trace loading and format conversion from the
/// measured replay time (Section 6.1); keeping I/O in its own module
/// mirrors that separation.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_TRACEIO_H
#define PERFPLAY_TRACE_TRACEIO_H

#include "support/Expected.h"
#include "trace/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace perfplay {

/// Serializes \p Tr into the text format.
std::string writeTraceText(const Trace &Tr);

/// Parses the text format.  On failure returns false and sets \p Err.
bool parseTraceText(const std::string &Text, Trace &Out, std::string &Err);

/// Serializes \p Tr into the binary format.
std::vector<uint8_t> writeTraceBinary(const Trace &Tr);

/// Parses the binary format from a borrowed buffer — the zero-copy
/// entry point: \p Data may point into a read-only file mapping
/// (support/MappedFile.h) and is never modified or retained; the
/// parsed Trace owns all of its storage.  Every table count in the
/// header is validated against the remaining byte budget before
/// anything is allocated, so a truncated or hostile file fails with a
/// "count exceeds file size" diagnostic instead of attempting a
/// multi-gigabyte allocation.  On failure returns false and sets
/// \p Err.
bool parseTraceBinary(const uint8_t *Data, size_t Size, Trace &Out,
                      std::string &Err);

/// Parses the binary format.  On failure returns false and sets \p Err.
bool parseTraceBinary(const std::vector<uint8_t> &Bytes, Trace &Out,
                      std::string &Err);

/// Parses \p Data as either trace format, sniffing by magic bytes.
/// Binary traces parse straight out of the borrowed buffer; text
/// traces are copied once into the line parser's working string.
bool parseTraceBuffer(const uint8_t *Data, size_t Size, Trace &Out,
                      std::string &Err);

/// On-disk trace encodings.
enum class TraceFormat {
  /// Line-oriented, human-readable; slow to parse at scale.
  Text,
  /// Compact little-endian binary for production-scale traces.
  Binary,
};

/// Writes \p Tr to \p Path in \p Format.  Returns false on I/O error.
/// Both formats are recognized back by loadTrace.
bool saveTrace(const Trace &Tr, const std::string &Path, std::string &Err,
               TraceFormat Format = TraceFormat::Text);

/// How loadTrace brings a file's bytes into memory.
enum class TraceLoadMode {
  /// Memory-map when the platform supports it (zero-copy for binary
  /// traces), otherwise stream.  The default.
  Auto,
  /// Memory-map unconditionally (read-fallback on platforms without
  /// mmap).  Text traces still pay one copy into the line parser.
  Mmap,
  /// Stream the file into an owned buffer with stdio — the legacy
  /// copying path.
  Stream,
};

/// Reads a trace from \p Path, auto-detecting the format by its magic
/// bytes (binary header vs. the text banner).  Under Auto/Mmap the
/// binary parser runs directly over the file mapping, so
/// production-scale traces never make the intermediate whole-file
/// byte-vector copy; the mapping is released before returning (the
/// Trace owns its storage).
bool loadTrace(const std::string &Path, Trace &Out, std::string &Err,
               TraceLoadMode Mode = TraceLoadMode::Auto);

/// Typed-error variant of loadTrace for the staged Engine API: the
/// parsed trace, or a PipelineError with ErrorCode::TraceIOFailed
/// carrying the loader diagnostic.
Expected<Trace> readTraceFile(const std::string &Path,
                              TraceLoadMode Mode = TraceLoadMode::Auto);

class MappedFile;

/// loadTrace with the mapping handed to the caller: when the zero-copy
/// path served the load, \p File is left open over the source bytes so
/// the caller can pin it (Engine::openSessionFromFile keeps it for the
/// session's lifetime); when the stream path served it (Stream mode,
/// or Auto over something unmappable), \p File ends closed.  This is
/// the single home of the mode policy — loadTrace wraps it with a
/// throwaway mapping.
bool loadTraceKeepMapping(const std::string &Path, Trace &Out,
                          std::string &Err, MappedFile &File,
                          TraceLoadMode Mode = TraceLoadMode::Auto);

} // namespace perfplay

#endif // PERFPLAY_TRACE_TRACEIO_H
