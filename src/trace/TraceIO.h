//===- trace/TraceIO.h - Trace (de)serialization -----------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace persistence in two formats: a line-oriented text format for
/// human inspection and goldens, and a compact binary format for large
/// recordings.  Both round-trip every field including transformed-trace
/// side tables (locksets, constraints, lock schedule).
///
/// The paper separates trace loading and format conversion from the
/// measured replay time (Section 6.1); keeping I/O in its own module
/// mirrors that separation.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_TRACEIO_H
#define PERFPLAY_TRACE_TRACEIO_H

#include "trace/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace perfplay {

/// Serializes \p Tr into the text format.
std::string writeTraceText(const Trace &Tr);

/// Parses the text format.  On failure returns false and sets \p Err.
bool parseTraceText(const std::string &Text, Trace &Out, std::string &Err);

/// Serializes \p Tr into the binary format.
std::vector<uint8_t> writeTraceBinary(const Trace &Tr);

/// Parses the binary format.  On failure returns false and sets \p Err.
bool parseTraceBinary(const std::vector<uint8_t> &Bytes, Trace &Out,
                      std::string &Err);

/// On-disk trace encodings.
enum class TraceFormat {
  /// Line-oriented, human-readable; slow to parse at scale.
  Text,
  /// Compact little-endian binary for production-scale traces.
  Binary,
};

/// Writes \p Tr to \p Path in \p Format.  Returns false on I/O error.
/// Both formats are recognized back by loadTrace.
bool saveTrace(const Trace &Tr, const std::string &Path, std::string &Err,
               TraceFormat Format = TraceFormat::Text);

/// Reads a trace from \p Path, auto-detecting the format by its magic
/// bytes (binary header vs. the text banner).
bool loadTrace(const std::string &Path, Trace &Out, std::string &Err);

} // namespace perfplay

#endif // PERFPLAY_TRACE_TRACEIO_H
