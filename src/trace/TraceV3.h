//===- trace/TraceV3.h - Chunked binary trace format v3 ---------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary trace format v3: fixed-size self-describing chunks with
/// delta-varint event payloads and per-chunk string-table deltas, plus
/// a chunk directory in the footer so readers can seek without
/// scanning.  The layout is modeled on T-espresso's slot-buffered
/// tracefile (fixed-size slots, per-slot record counts, commit
/// counters) and exists for the two consumers the flat v1 encoding
/// cannot serve:
///
///  - **parallel full load**: chunks decode concurrently on
///    support/ThreadPool into disjoint per-thread event spans stitched
///    in file order (parseTraceV3), and
///  - **out-of-core streaming**: WindowedReader decodes one chunk at a
///    time through a reusable buffer, so resident memory is bounded by
///    the chunk size — not the trace size — while the accumulated
///    side tables (locks, sites, names, schedule) stay available.
///
/// The normative byte-level specification lives in
/// docs/TRACE_FORMAT.md; this header is the API.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_TRACEV3_H
#define PERFPLAY_TRACE_TRACEV3_H

#include "trace/TraceIO.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace perfplay {

namespace detail {
struct V3TableState;
} // namespace detail

/// Default target for the encoded size of one chunk.  Large enough
/// that per-chunk headers and directory entries are noise, small
/// enough that a production-scale trace yields hundreds of chunks for
/// the parallel loader and that WindowedReader's resident buffer stays
/// tiny.
inline constexpr size_t DefaultV3ChunkBytes = 256 * 1024;

/// True when \p Data starts with the v3 magic ("PFPLTRC3").
bool hasTraceV3Magic(const uint8_t *Data, size_t Size);

/// Streaming v3 writer.  Feeds sequential bytes to a caller-supplied
/// sink, buffering only the chunk under construction plus the
/// directory (40 bytes per finished chunk) — so a corpus far larger
/// than memory can be written chunk-at-a-time without ever
/// materializing a Trace (the out-of-core bench does exactly that).
///
/// Protocol: register the lock/site tables (addLock/addSite, ids are
/// assigned densely in call order), then emit each thread's events in
/// program order between beginThread calls, then finish().  A chunk
/// holds events of exactly one thread; switching threads or exceeding
/// the target chunk size flushes.  Each lock/site is serialized as a
/// string-table delta inside the chunk that references it first;
/// entries no chunk references land in the remainder tables of the
/// side-table section.
///
/// Not thread-safe; one writer per file.
class TraceV3Writer {
public:
  /// Sink receiving the file's bytes in order.  Returns false on I/O
  /// failure, which poisons the writer (finish() will fail).
  using Sink = std::function<bool(const void *Data, size_t Size)>;

  explicit TraceV3Writer(Sink Out,
                         size_t TargetChunkBytes = DefaultV3ChunkBytes);

  /// Registers the next lock (dense ids in call order).  Must precede
  /// any event referencing it.
  uint32_t addLock(bool IsSpin, std::string_view Name);

  /// Registers the next code site (dense ids in call order).
  uint32_t addSite(uint32_t BeginLine, uint32_t EndLine,
                   std::string_view File, std::string_view Function);

  /// Subsequent append() calls emit events of \p Thread.  Flushes the
  /// current chunk when the thread changes.  Threads may be revisited,
  /// but each thread's events must arrive in program order overall.
  void beginThread(uint32_t Thread);

  /// Appends one event to the current thread's stream.
  void append(const Event &E);

  /// Side tables of transformed traces; empty by default.  Must be set
  /// before finish().
  void setSideTables(const std::vector<Lockset> &Locksets,
                     const std::vector<OrderConstraint> &Constraints,
                     const std::vector<std::vector<CsRef>> &Schedule);

  /// Total thread count written to the footer.  Defaults to the
  /// highest thread passed to beginThread() plus one; a whole-trace
  /// writer sets it explicitly so trailing event-less threads survive
  /// the round trip.
  void setNumThreads(uint32_t N);

  /// Flushes the last chunk, writes remainder tables, side tables,
  /// the chunk directory, and the footer.  Returns false (with
  /// \p Err set) if any sink write failed.  The writer is dead
  /// afterwards.
  bool finish(std::string &Err);

  /// Bytes handed to the sink so far.
  uint64_t bytesWritten() const { return Offset; }

private:
  struct DirEntry {
    uint64_t Offset = 0;
    uint32_t ByteSize = 0;
    uint32_t Thread = 0;
    uint32_t EventCount = 0;
    uint32_t AcquireCount = 0;
    uint64_t FirstTs = 0;
    uint64_t LastTs = 0;
  };
  struct PendingLock {
    bool IsSpin = false;
    std::string Name;
    bool Emitted = false;
  };
  struct PendingSite {
    uint32_t BeginLine = 0;
    uint32_t EndLine = 0;
    std::string File;
    std::string Function;
    bool Emitted = false;
  };

  void referenceLock(uint32_t Id);
  void referenceSite(uint32_t Id);
  void flushChunk();
  bool write(const void *Data, size_t Size);

  Sink Out;
  size_t TargetChunkBytes;
  bool SinkFailed = false;
  uint64_t Offset = 0;

  std::vector<PendingLock> Locks;
  std::vector<PendingSite> Sites;
  std::vector<Lockset> Locksets;
  std::vector<OrderConstraint> Constraints;
  std::vector<std::vector<CsRef>> Schedule;
  std::vector<DirEntry> Directory;
  uint32_t NumThreads = 0;
  bool NumThreadsExplicit = false;
  uint64_t TotalEvents = 0;
  /// Whether any rwlock/trylock/condvar event was appended; selects
  /// the 3.1 end magic so mutex-only traces stay byte-identical 3.0.
  bool SawExtended = false;

  // Chunk under construction.
  bool ChunkOpen = false;
  uint32_t CurThread = 0;
  std::vector<uint8_t> CurEvents;
  std::vector<uint32_t> CurNewLocks;
  std::vector<uint32_t> CurNewSites;
  uint32_t CurEventCount = 0;
  uint32_t CurAcquireCount = 0;
  uint64_t CurFirstTs = 0;
  uint64_t CurLastTs = 0;
  uint64_t PrevAddr = 0;

  /// Per-thread cumulative virtual time (sum of Compute costs), so a
  /// revisited thread's next chunk continues its timestamp line.
  std::vector<uint64_t> ThreadTs;
};

/// Serializes \p Tr into one in-memory v3 byte image (header, chunks,
/// side tables, directory, footer).  The streaming counterpart is
/// TraceV3Writer.
std::vector<uint8_t> writeTraceV3(const Trace &Tr,
                                  size_t TargetChunkBytes =
                                      DefaultV3ChunkBytes);

/// Parallel-parse knobs for parseTraceV3.
struct V3ParseOptions {
  /// String storage of the parsed trace; Borrowed requires \p Data to
  /// outlive it (same contract as parseTraceBinary).
  NameStorage Names = NameStorage::Owned;
  /// Workers decoding chunks concurrently; 0 = one per hardware
  /// thread, 1 = fully serial (no pool constructed).
  unsigned NumThreads = 0;
};

/// Parses a v3 byte image.  The footer directory drives a serial
/// pre-pass (chunk headers, string-table deltas, side tables — all
/// byte-budget validated before any allocation) that sizes every
/// per-thread event vector exactly; chunks then decode concurrently
/// into disjoint spans, and the critical-section index is installed
/// from the directory's decode-verified per-chunk acquire counts
/// instead of an O(events) rescan.  On failure returns false and sets
/// \p Err.
bool parseTraceV3(const uint8_t *Data, size_t Size, Trace &Out,
                  std::string &Err, const V3ParseOptions &Opts = {});

/// Out-of-core v3 reader: streams chunks in file order through one
/// reusable buffer using plain stdio (never mmap), so peak resident
/// memory is bounded by the largest chunk plus the accumulated side
/// tables — the property the out-of-core bench gates with
/// `windowed_peak_rss_ratio`.  Lock/site tables grow as each chunk's
/// deltas apply; every entry an event references is guaranteed
/// defined by the time the event is handed out (deltas precede first
/// reference by construction), and the transformed-trace side tables
/// plus remainder entries are loaded eagerly by open().
class WindowedReader {
public:
  WindowedReader();
  ~WindowedReader();

  WindowedReader(const WindowedReader &) = delete;
  WindowedReader &operator=(const WindowedReader &) = delete;

  /// Opens \p Path, validating footer, directory, and side tables.
  /// On failure returns false with \p Err set and the reader closed.
  bool open(const std::string &Path, std::string &Err);

  void close();

  bool isOpen() const { return File != nullptr; }

  /// Shared tables accumulated so far: Locks/Sites/Names fill in as
  /// chunks stream; Locksets/Constraints/LockSchedule are complete
  /// from open().  Threads stays empty — events only ever live in the
  /// per-chunk buffer.
  const Trace &tables() const { return Tables; }

  uint32_t numThreads() const { return FooterNumThreads; }
  uint32_t numChunks() const {
    return static_cast<uint32_t>(Directory.size());
  }
  uint64_t totalEvents() const { return FooterTotalEvents; }

  /// One decoded chunk.  Events/FirstTs/LastTs describe a contiguous
  /// span of \p Thread's stream; spans of the same thread arrive in
  /// program order.
  struct Chunk {
    uint32_t Thread = 0;
    uint64_t FirstTs = 0;
    uint64_t LastTs = 0;
    std::vector<Event> Events;
  };

  /// Decodes the next chunk into \p Buf (whose Events vector is
  /// reused across calls).  Returns false at end of trace with \p Err
  /// empty, or on error with \p Err set.
  bool next(Chunk &Buf, std::string &Err);

  /// Restarts streaming from the first chunk (tables stay valid).
  void rewind() { NextChunk = 0; }

private:
  struct DirEntry {
    uint64_t Offset;
    uint32_t ByteSize;
    uint32_t Thread;
    uint32_t EventCount;
    uint32_t AcquireCount;
    uint64_t FirstTs;
    uint64_t LastTs;
  };

  std::FILE *File = nullptr;
  uint64_t FileSize = 0;
  Trace Tables;
  /// Which lock/site table slots have been defined so far (delta
  /// bookkeeping shared with the full parser; opaque here).
  std::unique_ptr<detail::V3TableState> ReaderTables;
  std::vector<DirEntry> Directory;
  /// Deltas already applied up to this chunk index; chunks at or past
  /// it still carry undigested deltas.
  size_t DeltasAppliedBelow = 0;
  size_t NextChunk = 0;
  uint32_t FooterNumThreads = 0;
  uint64_t FooterTotalEvents = 0;
  /// Minor format version from the footer's end magic; gates which
  /// event kinds the chunk decoder accepts.
  uint8_t FooterMinor = 0;
  std::vector<uint8_t> ChunkBuf;
};

/// Writes \p Tr to \p Path in v3 via the streaming writer.  Returns
/// false on I/O error.  (saveTrace with TraceFormat::V3 forwards
/// here.)
bool saveTraceV3(const Trace &Tr, const std::string &Path,
                 std::string &Err,
                 size_t TargetChunkBytes = DefaultV3ChunkBytes);

} // namespace perfplay

#endif // PERFPLAY_TRACE_TRACEV3_H
