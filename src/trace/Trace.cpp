//===- trace/Trace.cpp - Recorded execution trace --------------------------===//

#include "trace/Trace.h"

#include "support/ThreadPool.h"

#include <cassert>
#include <string>
#include <vector>

using namespace perfplay;

size_t Trace::numEvents() const {
  size_t N = 0;
  for (const auto &T : Threads)
    N += T.Events.size();
  return N;
}

size_t Trace::numCriticalSections() const {
  size_t N = 0;
  for (const auto &T : Threads)
    for (const auto &E : T.Events)
      if (isSectionOpen(E))
        ++N;
  return N;
}

uint32_t Trace::numCriticalSections(ThreadId T) const {
  assert(T < Threads.size() && "thread out of range");
  uint32_t N = 0;
  for (const auto &E : Threads[T].Events)
    if (isSectionOpen(E))
      ++N;
  return N;
}

void Trace::buildCsIndex() {
  CsCount.assign(Threads.size(), 0);
  for (size_t T = 0; T != Threads.size(); ++T)
    CsCount[T] = numCriticalSections(static_cast<ThreadId>(T));
  CsPrefix.assign(Threads.size() + 1, 0);
  for (size_t T = 0; T != Threads.size(); ++T)
    CsPrefix[T + 1] = CsPrefix[T] + CsCount[T];
}

void Trace::installCsIndex(std::vector<uint32_t> CountPerThread) {
  assert(CountPerThread.size() == Threads.size() &&
         "one count per thread required");
  CsCount = std::move(CountPerThread);
  CsPrefix.assign(Threads.size() + 1, 0);
  for (size_t T = 0; T != Threads.size(); ++T)
    CsPrefix[T + 1] = CsPrefix[T] + CsCount[T];
}

uint32_t Trace::globalCsId(CsRef Ref) const {
  assert(!CsPrefix.empty() && "buildCsIndex() not called");
  assert(Ref.Thread < Threads.size() && "thread out of range");
  assert(Ref.Index < CsCount[Ref.Thread] && "CS index out of range");
  return CsPrefix[Ref.Thread] + Ref.Index;
}

CsRef Trace::csRefOf(uint32_t GlobalId) const {
  assert(!CsPrefix.empty() && "buildCsIndex() not called");
  assert(GlobalId < CsPrefix.back() && "global CS id out of range");
  // Threads are few; a linear scan is fine and avoids binary-search
  // subtleties with empty threads.
  for (size_t T = 0; T + 1 != CsPrefix.size(); ++T)
    if (GlobalId < CsPrefix[T + 1])
      return CsRef{static_cast<ThreadId>(T), GlobalId - CsPrefix[T]};
  assert(false && "unreachable: id covered by assert above");
  return CsRef();
}

/// The per-thread structural half of validate(): framing, LIFO lock
/// nesting, and table references of one thread's stream.  Independent
/// of every other thread, which is what lets validate(ThreadPool*)
/// fan the walks out.  \p CsCount receives the thread's critical-
/// section count (valid only when the walk passed).
std::string Trace::validateThread(size_t T, uint32_t &OutCs) const {
  auto err = [](const std::string &Msg) { return Msg; };
  OutCs = 0;
  const auto &Events = Threads[T].Events;
  const std::string Where = "thread " + std::to_string(T) + ": ";
  if (Events.empty())
    return err(Where + "empty event stream");
  if (Events.front().Kind != EventKind::ThreadStart)
    return err(Where + "does not begin with ThreadStart");
  if (Events.back().Kind != EventKind::ThreadEnd)
    return err(Where + "does not end with ThreadEnd");

  std::vector<LockId> HeldStack;
  for (size_t I = 0; I != Events.size(); ++I) {
    const Event &E = Events[I];
    const std::string At = Where + "event " + std::to_string(I) + ": ";
    switch (E.Kind) {
    case EventKind::ThreadStart:
      if (I != 0)
        return err(At + "ThreadStart not first");
      break;
    case EventKind::ThreadEnd:
      if (I + 1 != Events.size())
        return err(At + "ThreadEnd not last");
      if (!HeldStack.empty())
        return err(At + "thread ends holding a lock");
      break;
    case EventKind::LockAcquire:
    case EventKind::RwAcquireRead:
    case EventKind::RwAcquireWrite:
    case EventKind::TryAcquire:
      if (E.Lock >= Locks.size())
        return err(At + "acquire of unknown lock");
      if (E.Site != InvalidId && E.Site >= Sites.size())
        return err(At + "unknown code site");
      if (E.Lockset != InvalidId && E.Lockset >= Locksets.size())
        return err(At + "unknown lockset");
      // A failed trylock opens nothing; every other acquire (and a
      // successful try) opens a critical section.
      if (isSectionOpen(E)) {
        HeldStack.push_back(E.Lock);
        ++OutCs;
      }
      break;
    case EventKind::LockRelease:
      if (E.Lock >= Locks.size())
        return err(At + "release of unknown lock");
      if (HeldStack.empty() || HeldStack.back() != E.Lock)
        return err(At + "release does not match innermost held lock");
      HeldStack.pop_back();
      break;
    case EventKind::CondWait:
      if (E.Lock >= Locks.size())
        return err(At + "wait on unknown condition variable");
      if (E.Site != InvalidId && E.Site >= Sites.size())
        return err(At + "unknown code site");
      break;
    case EventKind::CondSignal:
    case EventKind::CondBroadcast:
      if (E.Lock >= Locks.size())
        return err(At + "signal of unknown condition variable");
      break;
    case EventKind::Read:
    case EventKind::Write:
    case EventKind::Compute:
      break;
    }
  }
  return std::string();
}

std::string Trace::validate() const { return validate(nullptr); }

std::string Trace::validate(ThreadPool *Pool) const {
  auto err = [](const std::string &Msg) { return Msg; };

  // Pooled-name integrity: a name handle is either the "unnamed"
  // sentinel or resolves inside this trace's pool.
  for (const LockInfo &L : Locks)
    if (L.Name != InvalidStringId && L.Name >= Names.size())
      return err("lock name not in string pool");
  for (const CodeSite &S : Sites) {
    if (S.File != InvalidStringId && S.File >= Names.size())
      return err("code site file not in string pool");
    if (S.Function != InvalidStringId && S.Function >= Names.size())
      return err("code site function not in string pool");
  }

  std::vector<uint32_t> CsPerThread(Threads.size(), 0);
  if (Pool && Pool->size() > 1 && Threads.size() > 1) {
    // Each walk touches only its own thread's slots, so no locking is
    // needed; the serial scan below picks the lowest-numbered failing
    // thread, matching the serial walk's first-error semantics.
    std::vector<std::string> ThreadErrs(Threads.size());
    Pool->parallelFor(Threads.size(), [&](size_t T) {
      ThreadErrs[T] = validateThread(T, CsPerThread[T]);
    });
    for (const std::string &E : ThreadErrs)
      if (!E.empty())
        return E;
  } else {
    for (size_t T = 0; T != Threads.size(); ++T) {
      std::string E = validateThread(T, CsPerThread[T]);
      if (!E.empty())
        return E;
    }
  }
  size_t TotalCs = 0;
  for (uint32_t N : CsPerThread)
    TotalCs += N;

  for (const auto &LS : Locksets)
    for (const auto &Entry : LS.Entries) {
      if (Entry.Lock >= Locks.size())
        return err("lockset references unknown lock");
      if (Entry.SourceCs != InvalidId && Entry.SourceCs >= TotalCs)
        return err("lockset references unknown source critical section");
    }

  for (const auto &C : Constraints) {
    if (C.Before >= TotalCs || C.After >= TotalCs)
      return err("constraint references unknown critical section");
    if (C.Before == C.After)
      return err("constraint orders a critical section against itself");
  }

  if (!LockSchedule.empty() && LockSchedule.size() != Locks.size())
    return err("lock schedule size does not match lock table");
  for (size_t L = 0; L != LockSchedule.size(); ++L)
    for (const CsRef &Ref : LockSchedule[L]) {
      if (Ref.Thread >= Threads.size())
        return err("lock schedule references unknown thread");
      if (Ref.Index >= CsPerThread[Ref.Thread])
        return err("lock schedule references unknown critical section");
    }

  return std::string();
}
