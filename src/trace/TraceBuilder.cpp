//===- trace/TraceBuilder.cpp - Convenient trace construction -------------===//

#include "trace/TraceBuilder.h"

#include <cassert>

using namespace perfplay;

LockId TraceBuilder::addLock(std::string Name, bool IsSpin) {
  assert(!Finished && "builder already finished");
  LockInfo Info;
  Info.Name = Result.Names.intern(Name);
  Info.IsSpin = IsSpin;
  Result.Locks.push_back(Info);
  return static_cast<LockId>(Result.Locks.size() - 1);
}

CodeSiteId TraceBuilder::addSite(std::string File, std::string Function,
                                 uint32_t BeginLine, uint32_t EndLine) {
  assert(!Finished && "builder already finished");
  assert(BeginLine <= EndLine && "inverted code region");
  CodeSite Site;
  Site.File = Result.Names.intern(File);
  Site.Function = Result.Names.intern(Function);
  Site.BeginLine = BeginLine;
  Site.EndLine = EndLine;
  Result.Sites.push_back(Site);
  return static_cast<CodeSiteId>(Result.Sites.size() - 1);
}

ThreadId TraceBuilder::addThread() {
  assert(!Finished && "builder already finished");
  Result.Threads.emplace_back();
  Result.Threads.back().Events.push_back(Event::threadStart());
  HeldStacks.emplace_back();
  return static_cast<ThreadId>(Result.Threads.size() - 1);
}

void TraceBuilder::beginCs(ThreadId T, LockId Lock, CodeSiteId Site) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert(Lock < Result.Locks.size() && "unknown lock");
  assert((Site == InvalidId || Site < Result.Sites.size()) &&
         "unknown code site");
  Result.Threads[T].Events.push_back(Event::lockAcquire(Lock, Site));
  HeldStacks[T].push_back(Lock);
}

void TraceBuilder::endCs(ThreadId T) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert(!HeldStacks[T].empty() && "no open critical section");
  LockId Lock = HeldStacks[T].back();
  HeldStacks[T].pop_back();
  Result.Threads[T].Events.push_back(Event::lockRelease(Lock));
}

void TraceBuilder::beginCsShared(ThreadId T, LockId Lock, CodeSiteId Site) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert(Lock < Result.Locks.size() && "unknown lock");
  assert((Site == InvalidId || Site < Result.Sites.size()) &&
         "unknown code site");
  Result.Threads[T].Events.push_back(Event::rwAcquireRead(Lock, Site));
  HeldStacks[T].push_back(Lock);
}

void TraceBuilder::beginCsWrite(ThreadId T, LockId Lock, CodeSiteId Site) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert(Lock < Result.Locks.size() && "unknown lock");
  assert((Site == InvalidId || Site < Result.Sites.size()) &&
         "unknown code site");
  Result.Threads[T].Events.push_back(Event::rwAcquireWrite(Lock, Site));
  HeldStacks[T].push_back(Lock);
}

bool TraceBuilder::tryCs(ThreadId T, LockId Lock, CodeSiteId Site,
                         bool Succeeded, AcquireMode Mode) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert(Lock < Result.Locks.size() && "unknown lock");
  assert((Site == InvalidId || Site < Result.Sites.size()) &&
         "unknown code site");
  Result.Threads[T].Events.push_back(
      Event::tryAcquire(Lock, Site, Succeeded, Mode));
  if (Succeeded)
    HeldStacks[T].push_back(Lock);
  return Succeeded;
}

void TraceBuilder::condWait(ThreadId T, LockId Cond, CodeSiteId Site) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert(Cond < Result.Locks.size() && "unknown condition variable");
  assert((Site == InvalidId || Site < Result.Sites.size()) &&
         "unknown code site");
  Result.Threads[T].Events.push_back(Event::condWait(Cond, Site));
}

void TraceBuilder::condSignal(ThreadId T, LockId Cond) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert(Cond < Result.Locks.size() && "unknown condition variable");
  Result.Threads[T].Events.push_back(Event::condSignal(Cond));
}

void TraceBuilder::condBroadcast(ThreadId T, LockId Cond) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert(Cond < Result.Locks.size() && "unknown condition variable");
  Result.Threads[T].Events.push_back(Event::condBroadcast(Cond));
}

void TraceBuilder::read(ThreadId T, AddrId Addr, uint64_t Value,
                        bool AllowUnlocked) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert((AllowUnlocked || !HeldStacks[T].empty()) &&
         "shared read outside any critical section");
  (void)AllowUnlocked;
  Result.Threads[T].Events.push_back(Event::read(Addr, Value));
}

void TraceBuilder::write(ThreadId T, AddrId Addr, uint64_t Value,
                         WriteOpKind Op, bool AllowUnlocked) {
  assert(T < Result.Threads.size() && "unknown thread");
  assert((AllowUnlocked || !HeldStacks[T].empty()) &&
         "shared write outside any critical section");
  (void)AllowUnlocked;
  Result.Threads[T].Events.push_back(Event::write(Addr, Value, Op));
}

void TraceBuilder::compute(ThreadId T, TimeNs Cost) {
  assert(T < Result.Threads.size() && "unknown thread");
  Result.Threads[T].Events.push_back(Event::compute(Cost));
}

unsigned TraceBuilder::openDepth(ThreadId T) const {
  assert(T < HeldStacks.size() && "unknown thread");
  return static_cast<unsigned>(HeldStacks[T].size());
}

Trace TraceBuilder::finish() {
  assert(!Finished && "builder already finished");
  Finished = true;
  for (size_t T = 0; T != Result.Threads.size(); ++T) {
    assert(HeldStacks[T].empty() && "thread finishes holding a lock");
    Result.Threads[T].Events.push_back(Event::threadEnd());
  }
  Result.buildCsIndex();
  return std::move(Result);
}
