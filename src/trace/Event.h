//===- trace/Event.h - Trace event model ------------------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recorded event vocabulary.  A PerfPlay trace stores, per thread,
/// the sequence of synchronization operations (lock acquire/release),
/// shared-memory accesses inside critical sections, and the computation
/// between them collapsed into Compute(cost) events — the paper's
/// "selective recording" (Section 5.1): everything that is not needed to
/// re-evaluate ULCP timing is recorded only as its observed duration.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_EVENT_H
#define PERFPLAY_TRACE_EVENT_H

#include <cstddef>
#include <cstdint>
#include <limits>

namespace perfplay {

using ThreadId = uint32_t;
using LockId = uint32_t;
using AddrId = uint64_t;
using CodeSiteId = uint32_t;
using LocksetId = uint32_t;
using TimeNs = uint64_t;

/// Sentinel for "no value" across the 32-bit id types.
inline constexpr uint32_t InvalidId = std::numeric_limits<uint32_t>::max();

/// Kinds of recorded events.
enum class EventKind : uint8_t {
  /// Thread became runnable.  Always the first event of a thread.
  ThreadStart,
  /// Thread finished.  Always the last event of a thread.
  ThreadEnd,
  /// Lock acquisition.  Carries the lock, the code site of the critical
  /// section it opens and, in transformed traces, a lockset id.
  LockAcquire,
  /// Lock release, closing the innermost critical section on this lock.
  LockRelease,
  /// Shared-memory read inside a critical section.  Carries the address
  /// and the value observed in the recorded run (used by the reversed
  /// replay that separates benign ULCPs from true contention).
  Read,
  /// Shared-memory write inside a critical section.  Carries the
  /// address, the operand and the write operator.
  Write,
  /// Computation of the given duration with no shared interaction.
  Compute,
  /// Reader-side rwlock acquisition (pthread_rwlock_rdlock).  Opens a
  /// critical section in AcquireMode::Shared: multiple readers hold
  /// the lock concurrently, and reader-reader pairs are ULCP-free by
  /// construction (the new static rule of ROADMAP item 3).
  RwAcquireRead,
  /// Writer-side rwlock acquisition (pthread_rwlock_wrlock).  Opens an
  /// exclusive critical section — pairs like a plain LockAcquire.
  RwAcquireWrite,
  /// Trylock attempt (pthread_mutex_trylock / rwlock_try*lock).
  /// Carries the lock, site, acquire mode and a success flag: a
  /// successful try opens a critical section exactly like the
  /// corresponding blocking acquire; a failed try opens nothing but
  /// still witnesses real contention on the lock (the failure edge
  /// detectors count without creating a section).
  TryAcquire,
  /// Condition-variable wait (pthread_cond_wait).  Carries the condvar
  /// (registered in the lock table) and the code site.  The protecting
  /// mutex's release / re-acquire around the sleep stays explicit in
  /// the trace; this event only marks the ordering edge.
  CondWait,
  /// Condition-variable signal (pthread_cond_signal).
  CondSignal,
  /// Condition-variable broadcast (pthread_cond_broadcast).
  CondBroadcast,
};

/// Number of EventKind enumerators (histogram sizing).
inline constexpr size_t NumEventKinds =
    static_cast<size_t>(EventKind::CondBroadcast) + 1;

/// Acquisition mode of a section-opening event.
enum class AcquireMode : uint8_t {
  /// Mutual exclusion: one holder at a time (mutex, rwlock writer).
  Exclusive,
  /// Shared: concurrent holders allowed (rwlock reader).
  Shared,
};

/// Returns "exclusive" or "shared".
const char *acquireModeName(AcquireMode Mode);

/// Write operators for the abstract memory machine.
///
/// The reversed replay (Section 3.1) distinguishes benign ULCPs (e.g.
/// redundant writes or disjoint bit manipulation) from true conflicts by
/// re-executing two critical sections in swapped order and comparing the
/// resulting memory.  Modeling writes as operators rather than opaque
/// stores makes commutativity observable.
enum class WriteOpKind : uint8_t {
  /// *Addr = Value.
  Store,
  /// *Addr += Value.
  Add,
  /// *Addr |= Value.
  Or,
  /// *Addr &= Value.
  And,
  /// *Addr ^= Value.
  Xor,
};

/// Returns a short mnemonic ("store", "add", ...) for \p Op.
const char *writeOpName(WriteOpKind Op);

/// One recorded event.  Fields beyond Kind are meaningful only for the
/// kinds documented on each member.
struct Event {
  EventKind Kind = EventKind::Compute;
  /// Write operator (Write only).
  WriteOpKind Op = WriteOpKind::Store;
  /// Acquisition mode (section-opening kinds).  RwAcquireRead is
  /// always Shared, LockAcquire / RwAcquireWrite always Exclusive;
  /// TryAcquire carries whichever mode was attempted.
  AcquireMode Mode = AcquireMode::Exclusive;
  /// Whether a TryAcquire obtained the lock (TryAcquire only).
  bool TrySucceeded = false;
  /// Code site opening the critical section (section-opening kinds and
  /// CondWait).
  CodeSiteId Site = InvalidId;
  /// Lock operated on (acquire/release kinds), or the condvar id for
  /// CondWait / CondSignal / CondBroadcast (condvars live in the lock
  /// table).
  LockId Lock = InvalidId;
  /// Lockset id in transformed traces (section-opening kinds only);
  /// InvalidId in recorded traces, meaning "acquire exactly {Lock}".
  LocksetId Lockset = InvalidId;
  /// Accessed address (Read / Write).
  AddrId Addr = 0;
  /// Write operand, or value observed by a Read in the recorded run.
  uint64_t Value = 0;
  /// Duration in virtual nanoseconds (Compute only).
  TimeNs Cost = 0;

  /// Convenience constructors for each kind.
  static Event threadStart();
  static Event threadEnd();
  static Event lockAcquire(LockId Lock, CodeSiteId Site,
                           LocksetId Lockset = InvalidId);
  static Event lockRelease(LockId Lock);
  static Event read(AddrId Addr, uint64_t Value = 0);
  static Event write(AddrId Addr, uint64_t Value,
                     WriteOpKind Op = WriteOpKind::Store);
  static Event compute(TimeNs Cost);
  static Event rwAcquireRead(LockId Lock, CodeSiteId Site,
                             LocksetId Lockset = InvalidId);
  static Event rwAcquireWrite(LockId Lock, CodeSiteId Site,
                              LocksetId Lockset = InvalidId);
  static Event tryAcquire(LockId Lock, CodeSiteId Site, bool Succeeded,
                          AcquireMode Mode = AcquireMode::Exclusive,
                          LocksetId Lockset = InvalidId);
  static Event condWait(LockId Cond, CodeSiteId Site);
  static Event condSignal(LockId Cond);
  static Event condBroadcast(LockId Cond);
};

/// True iff \p E opens a critical section: a blocking acquire (mutex
/// or either rwlock side) or a successful trylock.  Every consumer
/// that pairs acquires with releases — CS indexing, validation,
/// replay, per-thread acquire ordinals — must use this predicate so
/// global CS ids stay consistent across the whole stack.
inline bool isSectionOpen(const Event &E) {
  switch (E.Kind) {
  case EventKind::LockAcquire:
  case EventKind::RwAcquireRead:
  case EventKind::RwAcquireWrite:
    return true;
  case EventKind::TryAcquire:
    return E.TrySucceeded;
  default:
    return false;
  }
}

/// Acquisition mode of a section-opening event (Exclusive for plain
/// mutex acquires).
inline AcquireMode acquireModeOf(const Event &E) {
  return E.Kind == EventKind::RwAcquireRead ? AcquireMode::Shared : E.Mode;
}

/// Returns a short mnemonic for \p Kind ("acq", "rel", "rd", "wr", ...).
const char *eventKindName(EventKind Kind);

} // namespace perfplay

#endif // PERFPLAY_TRACE_EVENT_H
