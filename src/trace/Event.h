//===- trace/Event.h - Trace event model ------------------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recorded event vocabulary.  A PerfPlay trace stores, per thread,
/// the sequence of synchronization operations (lock acquire/release),
/// shared-memory accesses inside critical sections, and the computation
/// between them collapsed into Compute(cost) events — the paper's
/// "selective recording" (Section 5.1): everything that is not needed to
/// re-evaluate ULCP timing is recorded only as its observed duration.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_EVENT_H
#define PERFPLAY_TRACE_EVENT_H

#include <cstdint>
#include <limits>

namespace perfplay {

using ThreadId = uint32_t;
using LockId = uint32_t;
using AddrId = uint64_t;
using CodeSiteId = uint32_t;
using LocksetId = uint32_t;
using TimeNs = uint64_t;

/// Sentinel for "no value" across the 32-bit id types.
inline constexpr uint32_t InvalidId = std::numeric_limits<uint32_t>::max();

/// Kinds of recorded events.
enum class EventKind : uint8_t {
  /// Thread became runnable.  Always the first event of a thread.
  ThreadStart,
  /// Thread finished.  Always the last event of a thread.
  ThreadEnd,
  /// Lock acquisition.  Carries the lock, the code site of the critical
  /// section it opens and, in transformed traces, a lockset id.
  LockAcquire,
  /// Lock release, closing the innermost critical section on this lock.
  LockRelease,
  /// Shared-memory read inside a critical section.  Carries the address
  /// and the value observed in the recorded run (used by the reversed
  /// replay that separates benign ULCPs from true contention).
  Read,
  /// Shared-memory write inside a critical section.  Carries the
  /// address, the operand and the write operator.
  Write,
  /// Computation of the given duration with no shared interaction.
  Compute,
};

/// Write operators for the abstract memory machine.
///
/// The reversed replay (Section 3.1) distinguishes benign ULCPs (e.g.
/// redundant writes or disjoint bit manipulation) from true conflicts by
/// re-executing two critical sections in swapped order and comparing the
/// resulting memory.  Modeling writes as operators rather than opaque
/// stores makes commutativity observable.
enum class WriteOpKind : uint8_t {
  /// *Addr = Value.
  Store,
  /// *Addr += Value.
  Add,
  /// *Addr |= Value.
  Or,
  /// *Addr &= Value.
  And,
  /// *Addr ^= Value.
  Xor,
};

/// Returns a short mnemonic ("store", "add", ...) for \p Op.
const char *writeOpName(WriteOpKind Op);

/// One recorded event.  Fields beyond Kind are meaningful only for the
/// kinds documented on each member.
struct Event {
  EventKind Kind = EventKind::Compute;
  /// Write operator (Write only).
  WriteOpKind Op = WriteOpKind::Store;
  /// Code site opening the critical section (LockAcquire only).
  CodeSiteId Site = InvalidId;
  /// Lock operated on (LockAcquire / LockRelease).
  LockId Lock = InvalidId;
  /// Lockset id in transformed traces (LockAcquire only); InvalidId in
  /// recorded traces, meaning "acquire exactly {Lock}".
  LocksetId Lockset = InvalidId;
  /// Accessed address (Read / Write).
  AddrId Addr = 0;
  /// Write operand, or value observed by a Read in the recorded run.
  uint64_t Value = 0;
  /// Duration in virtual nanoseconds (Compute only).
  TimeNs Cost = 0;

  /// Convenience constructors for each kind.
  static Event threadStart();
  static Event threadEnd();
  static Event lockAcquire(LockId Lock, CodeSiteId Site,
                           LocksetId Lockset = InvalidId);
  static Event lockRelease(LockId Lock);
  static Event read(AddrId Addr, uint64_t Value = 0);
  static Event write(AddrId Addr, uint64_t Value,
                     WriteOpKind Op = WriteOpKind::Store);
  static Event compute(TimeNs Cost);
};

/// Returns a short mnemonic for \p Kind ("acq", "rel", "rd", "wr", ...).
const char *eventKindName(EventKind Kind);

} // namespace perfplay

#endif // PERFPLAY_TRACE_EVENT_H
