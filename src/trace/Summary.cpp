//===- trace/Summary.cpp - Trace statistics ----------------------------------===//

#include "trace/Summary.h"

#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace perfplay;

TraceSummary perfplay::summarizeTrace(const Trace &Tr) {
  TraceSummary S;
  S.NumThreads = Tr.numThreads();

  std::vector<uint64_t> Acquisitions(Tr.Locks.size(), 0);
  std::vector<std::set<ThreadId>> Users(Tr.Locks.size());

  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    unsigned Depth = 0;
    for (const Event &E : Tr.Threads[T].Events) {
      ++S.NumEvents;
      ++S.KindCounts[static_cast<size_t>(E.Kind)];
      switch (E.Kind) {
      case EventKind::LockAcquire:
        ++S.NumCriticalSections;
        ++Acquisitions[E.Lock];
        Users[E.Lock].insert(T);
        ++Depth;
        S.MaxNesting = std::max(S.MaxNesting, Depth);
        break;
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
        ++S.NumCriticalSections;
        ++Acquisitions[E.Lock];
        Users[E.Lock].insert(T);
        ++Depth;
        S.MaxNesting = std::max(S.MaxNesting, Depth);
        if (E.Kind == EventKind::RwAcquireRead)
          ++S.RwReadAcquires;
        else
          ++S.RwWriteAcquires;
        break;
      case EventKind::TryAcquire:
        if (E.TrySucceeded) {
          ++S.TrySuccesses;
          ++S.NumCriticalSections;
          ++Acquisitions[E.Lock];
          Users[E.Lock].insert(T);
          ++Depth;
          S.MaxNesting = std::max(S.MaxNesting, Depth);
        } else {
          ++S.TryFailures;
        }
        break;
      case EventKind::CondWait:
        ++S.CondWaits;
        break;
      case EventKind::CondSignal:
      case EventKind::CondBroadcast:
        ++S.CondSignals;
        break;
      case EventKind::LockRelease:
        --Depth;
        break;
      case EventKind::Read:
        ++S.NumReads;
        break;
      case EventKind::Write:
        ++S.NumWrites;
        break;
      case EventKind::Compute:
        ++S.NumComputeEvents;
        S.TotalComputeNs += E.Cost;
        if (Depth > 0)
          S.InCsComputeNs += E.Cost;
        break;
      case EventKind::ThreadStart:
      case EventKind::ThreadEnd:
        break;
      }
    }
  }

  for (LockId L = 0; L != Tr.Locks.size(); ++L) {
    LockSummary Row;
    Row.Lock = L;
    Row.Acquisitions = Acquisitions[L];
    Row.Threads = static_cast<unsigned>(Users[L].size());
    Row.IsSpin = Tr.Locks[L].IsSpin;
    S.Locks.push_back(Row);
  }
  std::stable_sort(S.Locks.begin(), S.Locks.end(),
                   [](const LockSummary &A, const LockSummary &B) {
                     return A.Acquisitions > B.Acquisitions;
                   });
  return S;
}

std::string perfplay::renderSummary(const Trace &Tr,
                                    const TraceSummary &S,
                                    unsigned MaxLocks) {
  std::ostringstream OS;
  OS << "threads: " << S.NumThreads << ", events: " << S.NumEvents
     << ", critical sections: " << S.NumCriticalSections << "\n";
  OS << "reads: " << S.NumReads << ", writes: " << S.NumWrites
     << ", max nesting: " << S.MaxNesting << "\n";
  OS << "computation: " << formatNs(S.TotalComputeNs) << " total, "
     << formatPercent(S.inCsFraction()) << " inside critical sections\n";

  Table Hist;
  Hist.addRow({"kind", "count"});
  for (size_t K = 0; K != NumEventKinds; ++K) {
    if (S.KindCounts[K] == 0)
      continue;
    Hist.addRow({eventKindName(static_cast<EventKind>(K)),
                 std::to_string(S.KindCounts[K])});
  }
  OS << "\nevent kinds:\n" << Hist.render();
  if (S.RwReadAcquires + S.RwWriteAcquires != 0)
    OS << "rwlock acquires: " << S.RwReadAcquires << " read, "
       << S.RwWriteAcquires << " write\n";
  if (S.TrySuccesses + S.TryFailures != 0)
    OS << "trylock attempts: " << S.TrySuccesses << " succeeded, "
       << S.TryFailures << " failed\n";
  if (S.CondWaits + S.CondSignals != 0)
    OS << "condvar: " << S.CondWaits << " waits, " << S.CondSignals
       << " signals\n";

  Table T;
  T.addRow({"lock", "acquisitions", "threads", "spin"});
  unsigned Shown = 0;
  for (const LockSummary &Row : S.Locks) {
    if (Row.Acquisitions == 0 || Shown++ == MaxLocks)
      break;
    T.addRow({std::string(Tr.lockName(Row.Lock)),
              std::to_string(Row.Acquisitions),
              std::to_string(Row.Threads), Row.IsSpin ? "yes" : "no"});
  }
  if (T.numRows() > 1)
    OS << "\nhottest locks:\n" << T.render();
  return OS.str();
}
