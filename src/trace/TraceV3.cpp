//===- trace/TraceV3.cpp - Chunked binary trace format v3 ------------------===//
//
// On-disk layout (normative spec: docs/TRACE_FORMAT.md):
//
//   [0, 8)                 head magic "PFPLTRC3"
//   [8, SideOff)           chunks, back to back
//   [SideOff, DirOff)      remainder lock/site entries + side tables
//   [DirOff, Size - 48)    chunk directory (40 bytes per chunk)
//   [Size - 48, Size)      footer, ending in "PFPLEND3" (minor 3.0,
//                          mutex-only vocabulary) or "PFPLEN31"
//                          (minor 3.1, rwlock/trylock/condvar kinds)
//
// Every count is validated against the byte budget that must contain
// it before any container is sized (the v1 parser's hostile-input
// discipline), varints are capped at 10 bytes, and the directory is
// cross-checked against the decoded streams (event counts, acquire
// counts, first/last timestamps), which is what makes it trustworthy
// enough to drive the parallel loader's span layout and the O(threads)
// critical-section index installation.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceV3.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>

using namespace perfplay;

static const char V3Magic[8] = {'P', 'F', 'P', 'L', 'T', 'R', 'C', '3'};
static const char V3EndMagic[8] = {'P', 'F', 'P', 'L', 'E', 'N', 'D', '3'};
/// End magic of minor version 3.1, which extends the event vocabulary
/// with rwlock/trylock/condvar kinds.  The writer emits it only when
/// such an event actually appears, so mutex-only traces stay
/// byte-identical to 3.0 and remain readable by 3.0-only consumers.
static const char V3EndMagicV31[8] = {'P', 'F', 'P', 'L', 'E', 'N', '3', '1'};

static constexpr size_t V3FooterSize = 48;
static constexpr size_t V3DirEntrySize = 40;
static constexpr size_t V3ChunkHeaderSize = 36;
/// Minimum encoded size of a lock delta/remainder entry: u32 id +
/// u8 spin + u32 name length.
static constexpr size_t V3LockEntryMin = 9;
/// Minimum encoded size of a site entry: u32 id + two u32 lines + two
/// u32 string lengths.
static constexpr size_t V3SiteEntryMin = 20;

bool perfplay::hasTraceV3Magic(const uint8_t *Data, size_t Size) {
  return Size >= sizeof(V3Magic) &&
         std::memcmp(Data, V3Magic, sizeof(V3Magic)) == 0;
}

//===----------------------------------------------------------------------===//
// Primitive codecs
//===----------------------------------------------------------------------===//

namespace {

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putStr(std::vector<uint8_t> &Out, std::string_view S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

/// LEB128 unsigned varint; at most 10 bytes for a full uint64_t.
void putUvarint(std::vector<uint8_t> &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Out.push_back(static_cast<uint8_t>(V));
}

/// Zigzag maps small signed deltas to small unsigned varints.
uint64_t zigzagEncode(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

int64_t zigzagDecode(uint64_t V) {
  return static_cast<int64_t>((V >> 1) ^ (~(V & 1) + 1));
}

/// Id coding for the event stream: InvalidId becomes 0 so the common
/// "no lockset" case costs one byte; real ids shift up by one.
uint64_t uid(uint32_t Id) {
  return Id == InvalidId ? 0 : static_cast<uint64_t>(Id) + 1;
}

enum class VarintStatus { Ok, Truncated, Overrun };

/// Bounds-checked little-endian cursor over a borrowed byte range —
/// the v3 counterpart of TraceIO.cpp's ByteReader, plus varints.
class V3Cursor {
public:
  V3Cursor(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  size_t remaining() const { return Size - Pos; }
  size_t pos() const { return Pos; }

  /// True when a table of \p N entries, each at least \p MinEntryBytes
  /// on disk, can still fit in the unread suffix — the guard run
  /// before trusting any on-disk count.
  bool countFits(uint64_t N, size_t MinEntryBytes) const {
    return N <= remaining() / MinEntryBytes;
  }

  bool u8(uint8_t &V) {
    if (remaining() < 1)
      return false;
    V = Data[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (remaining() < 4)
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return true;
  }
  bool u64(uint64_t &V) {
    if (remaining() < 8)
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return true;
  }
  bool str(std::string_view &S) {
    uint32_t Len;
    if (!u32(Len) || Len > remaining())
      return false;
    S = std::string_view(reinterpret_cast<const char *>(Data) + Pos, Len);
    Pos += Len;
    return true;
  }

  /// Decodes one LEB128 varint, refusing to read past the range or
  /// past the 10-byte cap (a hostile run of continuation bytes must
  /// fail as an overrun, not spin or overflow).
  VarintStatus uvarint(uint64_t &V) {
    V = 0;
    unsigned Shift = 0;
    for (unsigned I = 0; I != 10; ++I) {
      if (remaining() == 0)
        return VarintStatus::Truncated;
      uint8_t B = Data[Pos++];
      if (I == 9 && B > 1)
        return VarintStatus::Overrun; // 10th byte holds only bit 63.
      V |= static_cast<uint64_t>(B & 0x7F) << Shift;
      if (!(B & 0x80))
        return VarintStatus::Ok;
      Shift += 7;
    }
    return VarintStatus::Overrun;
  }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Shared on-disk structures
//===----------------------------------------------------------------------===//

struct V3Footer {
  uint64_t SideOff = 0;
  uint64_t DirOff = 0;
  uint32_t NumChunks = 0;
  uint32_t NumThreads = 0;
  uint32_t NumLocks = 0;
  uint32_t NumSites = 0;
  uint64_t TotalEvents = 0;
  /// Minor format version, selected by the end magic: 0 for the
  /// original mutex-only vocabulary, 1 when rwlock/trylock/condvar
  /// kinds may appear in the event streams.
  uint8_t Minor = 0;
};

struct V3DirEntry {
  uint64_t Offset = 0;
  uint32_t ByteSize = 0;
  uint32_t Thread = 0;
  uint32_t EventCount = 0;
  uint32_t AcquireCount = 0;
  uint64_t FirstTs = 0;
  uint64_t LastTs = 0;
};

struct V3ChunkHeader {
  uint32_t Thread = 0;
  uint32_t EventCount = 0;
  uint64_t FirstTs = 0;
  uint64_t LastTs = 0;
  uint32_t NewLocks = 0;
  uint32_t NewSites = 0;
  uint32_t EventBytes = 0;
};

/// Directory-derived aggregates: exact per-thread event/acquire totals
/// and each chunk's start index inside its thread's final event
/// vector.  Cheap (O(chunks)) and — because the decoders re-verify
/// every entry against the actual stream — trustworthy enough to size
/// spans and install the critical-section index without rescans.
struct V3DirStats {
  std::vector<uint64_t> PerThreadEvents;
  std::vector<uint64_t> PerThreadAcquires;
  std::vector<uint64_t> SpanStart;
};

bool parseFooter(const uint8_t *FooterBytes, uint64_t FileSize,
                 V3Footer &F, std::string &Err) {
  V3Cursor C(FooterBytes, V3FooterSize);
  C.u64(F.SideOff);
  C.u64(F.DirOff);
  C.u32(F.NumChunks);
  C.u32(F.NumThreads);
  C.u32(F.NumLocks);
  C.u32(F.NumSites);
  C.u64(F.TotalEvents);
  const uint8_t *EndMagic =
      FooterBytes + V3FooterSize - sizeof(V3EndMagic);
  if (std::memcmp(EndMagic, V3EndMagic, sizeof(V3EndMagic)) == 0) {
    F.Minor = 0;
  } else if (std::memcmp(EndMagic, V3EndMagicV31,
                         sizeof(V3EndMagicV31)) == 0) {
    F.Minor = 1;
  } else {
    Err = "bad v3 footer magic";
    return false;
  }
  const uint64_t DirEnd = FileSize - V3FooterSize;
  if (F.SideOff < sizeof(V3Magic) || F.SideOff > F.DirOff ||
      F.DirOff > DirEnd) {
    Err = "bad v3 section offsets";
    return false;
  }
  if (DirEnd - F.DirOff !=
      static_cast<uint64_t>(F.NumChunks) * V3DirEntrySize) {
    Err = "bad v3 directory offset";
    return false;
  }
  // A valid thread owns at least one chunk (its stream holds at least
  // ThreadStart/ThreadEnd), so the chunk count — itself pinned to the
  // directory's real byte size above — bounds the thread count; a
  // forged thread count must not size the thread table.
  if (F.NumThreads > F.NumChunks && F.NumThreads != 0) {
    Err = "thread count exceeds chunk count";
    return false;
  }
  // Each lock/site definition occupies its minimum entry size
  // somewhere in the file; each event occupies at least its kind tag.
  if (F.NumLocks > FileSize / V3LockEntryMin) {
    Err = "lock table count exceeds file size";
    return false;
  }
  if (F.NumSites > FileSize / V3SiteEntryMin) {
    Err = "site table count exceeds file size";
    return false;
  }
  if (F.TotalEvents > FileSize) {
    Err = "event count exceeds file size";
    return false;
  }
  return true;
}

bool parseDirectory(const uint8_t *DirBytes, const V3Footer &F,
                    std::vector<V3DirEntry> &Out, V3DirStats &Stats,
                    std::string &Err) {
  Out.clear();
  Out.reserve(F.NumChunks);
  Stats.PerThreadEvents.assign(F.NumThreads, 0);
  Stats.PerThreadAcquires.assign(F.NumThreads, 0);
  Stats.SpanStart.assign(F.NumChunks, 0);
  std::vector<uint64_t> ThreadTs(F.NumThreads, 0);
  V3Cursor C(DirBytes,
             static_cast<size_t>(F.NumChunks) * V3DirEntrySize);
  uint64_t TotalEvents = 0;
  for (uint32_t I = 0; I != F.NumChunks; ++I) {
    V3DirEntry E;
    C.u64(E.Offset);
    C.u32(E.ByteSize);
    C.u32(E.Thread);
    C.u32(E.EventCount);
    C.u32(E.AcquireCount);
    C.u64(E.FirstTs);
    C.u64(E.LastTs);
    std::string Where = "chunk " + std::to_string(I) + ": ";
    if (E.Offset < sizeof(V3Magic) || E.ByteSize < V3ChunkHeaderSize ||
        E.Offset + E.ByteSize < E.Offset ||
        E.Offset + E.ByteSize > F.SideOff) {
      Err = Where + "directory entry out of bounds";
      return false;
    }
    if (E.Thread >= F.NumThreads) {
      Err = Where + "directory thread out of range";
      return false;
    }
    // Every event costs at least its one-byte kind tag inside the
    // chunk, so a per-chunk count beyond the chunk's byte size is
    // forged — reject before it can size any span.
    if (E.EventCount > E.ByteSize) {
      Err = Where + "event count exceeds chunk size";
      return false;
    }
    if (E.AcquireCount > E.EventCount) {
      Err = Where + "acquire count exceeds event count";
      return false;
    }
    if (E.FirstTs != ThreadTs[E.Thread] || E.LastTs < E.FirstTs) {
      Err = Where + "timestamp discontinuity in directory";
      return false;
    }
    ThreadTs[E.Thread] = E.LastTs;
    Stats.SpanStart[I] = Stats.PerThreadEvents[E.Thread];
    Stats.PerThreadEvents[E.Thread] += E.EventCount;
    Stats.PerThreadAcquires[E.Thread] += E.AcquireCount;
    TotalEvents += E.EventCount;
    Out.push_back(E);
  }
  if (TotalEvents != F.TotalEvents) {
    Err = "directory event total disagrees with footer";
    return false;
  }
  return true;
}

bool readChunkHeader(V3Cursor &C, V3ChunkHeader &H, std::string &Err) {
  if (!C.u32(H.Thread) || !C.u32(H.EventCount) || !C.u64(H.FirstTs) ||
      !C.u64(H.LastTs) || !C.u32(H.NewLocks) || !C.u32(H.NewSites) ||
      !C.u32(H.EventBytes)) {
    Err = "truncated chunk header";
    return false;
  }
  return true;
}

bool headerMatchesDirectory(const V3ChunkHeader &H, const V3DirEntry &D) {
  return H.Thread == D.Thread && H.EventCount == D.EventCount &&
         H.FirstTs == D.FirstTs && H.LastTs == D.LastTs;
}

} // namespace

/// Shared table state the chunk deltas and remainder entries fill in.
struct perfplay::detail::V3TableState {
  Trace *Tr = nullptr;
  std::vector<uint8_t> LockDefined;
  std::vector<uint8_t> SiteDefined;
  uint32_t LocksDefined = 0;
  uint32_t SitesDefined = 0;
  NameStorage Names = NameStorage::Owned;

  StringId intern(std::string_view S) {
    return Names == NameStorage::Borrowed ? Tr->Names.internBorrowed(S)
                                          : Tr->Names.intern(S);
  }

  bool defineLock(uint32_t Id, uint8_t Spin, std::string_view Name,
                  std::string &Err) {
    if (Id >= Tr->Locks.size()) {
      Err = "lock definition id out of range";
      return false;
    }
    if (LockDefined[Id]) {
      Err = "duplicate lock definition";
      return false;
    }
    LockDefined[Id] = 1;
    ++LocksDefined;
    Tr->Locks[Id].IsSpin = Spin != 0;
    Tr->Locks[Id].Name = intern(Name);
    return true;
  }

  bool defineSite(uint32_t Id, uint32_t Begin, uint32_t End,
                  std::string_view File, std::string_view Function,
                  std::string &Err) {
    if (Id >= Tr->Sites.size()) {
      Err = "site definition id out of range";
      return false;
    }
    if (SiteDefined[Id]) {
      Err = "duplicate site definition";
      return false;
    }
    SiteDefined[Id] = 1;
    ++SitesDefined;
    Tr->Sites[Id].BeginLine = Begin;
    Tr->Sites[Id].EndLine = End;
    Tr->Sites[Id].File = intern(File);
    Tr->Sites[Id].Function = intern(Function);
    return true;
  }
};

namespace {

/// Parses one chunk's string-table delta entries.  With \p Apply false
/// the entries are walked (and bounds-checked) but not re-defined —
/// WindowedReader::rewind() replays chunks whose deltas were already
/// digested.
bool applyChunkDeltas(V3Cursor &C, const V3ChunkHeader &H,
                      detail::V3TableState &Tables, bool Apply,
                      std::string &Err) {
  if (!C.countFits(H.NewLocks, V3LockEntryMin)) {
    Err = "lock delta count exceeds chunk size";
    return false;
  }
  for (uint32_t I = 0; I != H.NewLocks; ++I) {
    uint32_t Id;
    uint8_t Spin;
    std::string_view Name;
    if (!C.u32(Id) || !C.u8(Spin) || !C.str(Name)) {
      Err = "truncated lock delta";
      return false;
    }
    if (Apply && !Tables.defineLock(Id, Spin, Name, Err))
      return false;
  }
  if (!C.countFits(H.NewSites, V3SiteEntryMin)) {
    Err = "site delta count exceeds chunk size";
    return false;
  }
  for (uint32_t I = 0; I != H.NewSites; ++I) {
    uint32_t Id, Begin, End;
    std::string_view File, Function;
    if (!C.u32(Id) || !C.u32(Begin) || !C.u32(End) || !C.str(File) ||
        !C.str(Function)) {
      Err = "truncated site delta";
      return false;
    }
    if (Apply && !Tables.defineSite(Id, Begin, End, File, Function, Err))
      return false;
  }
  return true;
}

/// Decodes \p H.EventCount delta-varint events from exactly
/// \p H.EventBytes bytes into \p Out (caller-sized to EventCount).
/// Re-derives the chunk's last timestamp and acquire count from the
/// stream and refuses any disagreement with the header/directory —
/// the verification that lets the directory stand in for an O(events)
/// rescan elsewhere.
bool decodeEventStream(const uint8_t *Bytes, size_t Size,
                       const V3ChunkHeader &H, uint32_t ExpectedAcquires,
                       uint8_t Minor, Event *Out, std::string &Err) {
  V3Cursor C(Bytes, Size);
  // 3.0 streams carry only the original mutex vocabulary; the extended
  // kinds are legal input iff the footer declared minor version 1.
  const uint8_t MaxKind = static_cast<uint8_t>(
      Minor == 0 ? EventKind::Compute : EventKind::CondBroadcast);
  uint64_t Ts = H.FirstTs;
  uint64_t PrevAddr = 0;
  uint32_t Acquires = 0;
  auto varint = [&](uint64_t &V, const char *What) {
    switch (C.uvarint(V)) {
    case VarintStatus::Ok:
      return true;
    case VarintStatus::Truncated:
      Err = std::string("truncated ") + What;
      return false;
    case VarintStatus::Overrun:
      Err = std::string("varint overrun in ") + What;
      return false;
    }
    return false;
  };
  auto eventId = [&](uint32_t &Id, const char *What) {
    uint64_t V;
    if (!varint(V, What))
      return false;
    if (V > 0x100000000ull) {
      Err = std::string("event id out of range in ") + What;
      return false;
    }
    Id = V == 0 ? InvalidId : static_cast<uint32_t>(V - 1);
    return true;
  };
  auto addr = [&](uint64_t &A, const char *What) {
    uint64_t Z;
    if (!varint(Z, What))
      return false;
    A = PrevAddr + static_cast<uint64_t>(zigzagDecode(Z));
    PrevAddr = A;
    return true;
  };

  for (uint32_t I = 0; I != H.EventCount; ++I) {
    uint8_t KindByte;
    if (!C.u8(KindByte)) {
      Err = "truncated event";
      return false;
    }
    if (KindByte > MaxKind) {
      Err = "unknown event kind";
      return false;
    }
    Event E;
    E.Kind = static_cast<EventKind>(KindByte);
    switch (E.Kind) {
    case EventKind::ThreadStart:
    case EventKind::ThreadEnd:
      break;
    case EventKind::LockAcquire:
      if (!eventId(E.Lock, "acquire") || !eventId(E.Site, "acquire") ||
          !eventId(E.Lockset, "acquire"))
        return false;
      ++Acquires;
      break;
    case EventKind::LockRelease:
      if (!eventId(E.Lock, "release"))
        return false;
      break;
    case EventKind::Read:
      if (!addr(E.Addr, "read") || !varint(E.Value, "read"))
        return false;
      break;
    case EventKind::Write: {
      uint8_t Op;
      if (!addr(E.Addr, "write") || !varint(E.Value, "write") ||
          !C.u8(Op)) {
        Err = "truncated write";
        return false;
      }
      if (Op > static_cast<uint8_t>(WriteOpKind::Xor)) {
        Err = "unknown write op";
        return false;
      }
      E.Op = static_cast<WriteOpKind>(Op);
      break;
    }
    case EventKind::Compute:
      if (!varint(E.Cost, "compute"))
        return false;
      Ts += E.Cost;
      break;
    case EventKind::RwAcquireRead:
    case EventKind::RwAcquireWrite:
      if (!eventId(E.Lock, "rwlock acquire") ||
          !eventId(E.Site, "rwlock acquire") ||
          !eventId(E.Lockset, "rwlock acquire"))
        return false;
      E.Mode = E.Kind == EventKind::RwAcquireRead ? AcquireMode::Shared
                                                  : AcquireMode::Exclusive;
      ++Acquires;
      break;
    case EventKind::TryAcquire: {
      uint8_t Mode, Ok;
      if (!eventId(E.Lock, "trylock") || !eventId(E.Site, "trylock") ||
          !eventId(E.Lockset, "trylock"))
        return false;
      if (!C.u8(Mode) || !C.u8(Ok)) {
        Err = "truncated trylock";
        return false;
      }
      if (Mode > static_cast<uint8_t>(AcquireMode::Shared)) {
        Err = "unknown acquire mode";
        return false;
      }
      if (Ok > 1) {
        Err = "bad trylock flag";
        return false;
      }
      E.Mode = static_cast<AcquireMode>(Mode);
      E.TrySucceeded = Ok != 0;
      // Only a successful try opens a critical section, so only it
      // participates in the directory's acquire accounting.
      if (E.TrySucceeded)
        ++Acquires;
      break;
    }
    case EventKind::CondWait:
      if (!eventId(E.Lock, "condition wait") ||
          !eventId(E.Site, "condition wait"))
        return false;
      break;
    case EventKind::CondSignal:
    case EventKind::CondBroadcast:
      if (!eventId(E.Lock, "condition signal"))
        return false;
      break;
    }
    Out[I] = E;
  }
  if (C.remaining() != 0) {
    Err = "chunk event stream size mismatch";
    return false;
  }
  if (Ts != H.LastTs) {
    Err = "chunk timestamp disagrees with header";
    return false;
  }
  if (Acquires != ExpectedAcquires) {
    Err = "chunk acquire count disagrees with directory";
    return false;
  }
  return true;
}

/// Parses the side-table section: remainder lock/site entries, then
/// the transformed-trace tables in the v1 order.
bool parseSideTables(V3Cursor &C, detail::V3TableState &Tables,
                     std::string &Err) {
  Trace &Tr = *Tables.Tr;
  uint32_t N;

  if (!C.u32(N)) {
    Err = "truncated remainder lock table";
    return false;
  }
  if (!C.countFits(N, V3LockEntryMin)) {
    Err = "remainder lock count exceeds file size";
    return false;
  }
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t Id;
    uint8_t Spin;
    std::string_view Name;
    if (!C.u32(Id) || !C.u8(Spin) || !C.str(Name)) {
      Err = "truncated remainder lock";
      return false;
    }
    if (!Tables.defineLock(Id, Spin, Name, Err))
      return false;
  }

  if (!C.u32(N)) {
    Err = "truncated remainder site table";
    return false;
  }
  if (!C.countFits(N, V3SiteEntryMin)) {
    Err = "remainder site count exceeds file size";
    return false;
  }
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t Id, Begin, End;
    std::string_view File, Function;
    if (!C.u32(Id) || !C.u32(Begin) || !C.u32(End) || !C.str(File) ||
        !C.str(Function)) {
      Err = "truncated remainder site";
      return false;
    }
    if (!Tables.defineSite(Id, Begin, End, File, Function, Err))
      return false;
  }

  if (!C.u32(N)) {
    Err = "truncated lockset table";
    return false;
  }
  if (!C.countFits(N, 4)) {
    Err = "lockset table count exceeds file size";
    return false;
  }
  Tr.Locksets.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t K;
    if (!C.u32(K)) {
      Err = "truncated lockset";
      return false;
    }
    if (!C.countFits(K, 8)) {
      Err = "lockset entry count exceeds file size";
      return false;
    }
    Lockset LS;
    LS.Entries.reserve(K);
    for (uint32_t J = 0; J != K; ++J) {
      LocksetEntry E;
      if (!C.u32(E.Lock) || !C.u32(E.SourceCs)) {
        Err = "truncated lockset entry";
        return false;
      }
      LS.Entries.push_back(E);
    }
    Tr.Locksets.push_back(std::move(LS));
  }

  if (!C.u32(N)) {
    Err = "truncated constraint table";
    return false;
  }
  if (!C.countFits(N, 8)) {
    Err = "constraint table count exceeds file size";
    return false;
  }
  Tr.Constraints.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    OrderConstraint OC;
    if (!C.u32(OC.Before) || !C.u32(OC.After)) {
      Err = "truncated constraint";
      return false;
    }
    Tr.Constraints.push_back(OC);
  }

  if (!C.u32(N)) {
    Err = "truncated schedule";
    return false;
  }
  if (!C.countFits(N, 4)) {
    Err = "schedule count exceeds file size";
    return false;
  }
  Tr.LockSchedule.resize(N);
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t K;
    if (!C.u32(K)) {
      Err = "truncated schedule order";
      return false;
    }
    if (!C.countFits(K, 8)) {
      Err = "schedule entry count exceeds file size";
      return false;
    }
    Tr.LockSchedule[I].reserve(K);
    for (uint32_t J = 0; J != K; ++J) {
      CsRef Ref;
      if (!C.u32(Ref.Thread) || !C.u32(Ref.Index)) {
        Err = "truncated schedule entry";
        return false;
      }
      Tr.LockSchedule[I].push_back(Ref);
    }
  }

  if (C.remaining() != 0) {
    Err = "trailing bytes in side-table section";
    return false;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// TraceV3Writer
//===----------------------------------------------------------------------===//

TraceV3Writer::TraceV3Writer(Sink OutSink, size_t TargetBytes)
    : Out(std::move(OutSink)),
      TargetChunkBytes(std::max<size_t>(TargetBytes, 1024)) {
  write(V3Magic, sizeof(V3Magic));
}

bool TraceV3Writer::write(const void *Data, size_t Size) {
  if (SinkFailed)
    return false;
  if (!Out(Data, Size)) {
    SinkFailed = true;
    return false;
  }
  Offset += Size;
  return true;
}

uint32_t TraceV3Writer::addLock(bool IsSpin, std::string_view Name) {
  Locks.push_back(PendingLock{IsSpin, std::string(Name), false});
  return static_cast<uint32_t>(Locks.size() - 1);
}

uint32_t TraceV3Writer::addSite(uint32_t BeginLine, uint32_t EndLine,
                                std::string_view File,
                                std::string_view Function) {
  Sites.push_back(PendingSite{BeginLine, EndLine, std::string(File),
                              std::string(Function), false});
  return static_cast<uint32_t>(Sites.size() - 1);
}

void TraceV3Writer::setSideTables(
    const std::vector<Lockset> &TheLocksets,
    const std::vector<OrderConstraint> &TheConstraints,
    const std::vector<std::vector<CsRef>> &TheSchedule) {
  Locksets = TheLocksets;
  Constraints = TheConstraints;
  Schedule = TheSchedule;
}

void TraceV3Writer::setNumThreads(uint32_t N) {
  NumThreads = N;
  NumThreadsExplicit = true;
}

void TraceV3Writer::beginThread(uint32_t Thread) {
  if (ChunkOpen && CurThread != Thread)
    flushChunk();
  CurThread = Thread;
  if (!NumThreadsExplicit && Thread + 1 > NumThreads)
    NumThreads = Thread + 1;
  if (ThreadTs.size() <= Thread)
    ThreadTs.resize(Thread + 1, 0);
}

void TraceV3Writer::referenceLock(uint32_t Id) {
  if (Id < Locks.size() && !Locks[Id].Emitted) {
    Locks[Id].Emitted = true;
    CurNewLocks.push_back(Id);
  }
}

void TraceV3Writer::referenceSite(uint32_t Id) {
  if (Id < Sites.size() && !Sites[Id].Emitted) {
    Sites[Id].Emitted = true;
    CurNewSites.push_back(Id);
  }
}

void TraceV3Writer::append(const Event &E) {
  if (!ChunkOpen) {
    ChunkOpen = true;
    CurEvents.clear();
    CurNewLocks.clear();
    CurNewSites.clear();
    CurEventCount = 0;
    CurAcquireCount = 0;
    CurFirstTs = ThreadTs[CurThread];
    PrevAddr = 0;
  }
  CurEvents.push_back(static_cast<uint8_t>(E.Kind));
  switch (E.Kind) {
  case EventKind::ThreadStart:
  case EventKind::ThreadEnd:
    break;
  case EventKind::LockAcquire:
    referenceLock(E.Lock);
    if (E.Site != InvalidId)
      referenceSite(E.Site);
    putUvarint(CurEvents, uid(E.Lock));
    putUvarint(CurEvents, uid(E.Site));
    putUvarint(CurEvents, uid(E.Lockset));
    ++CurAcquireCount;
    break;
  case EventKind::LockRelease:
    referenceLock(E.Lock);
    putUvarint(CurEvents, uid(E.Lock));
    break;
  case EventKind::Read:
    putUvarint(CurEvents,
               zigzagEncode(static_cast<int64_t>(E.Addr - PrevAddr)));
    PrevAddr = E.Addr;
    putUvarint(CurEvents, E.Value);
    break;
  case EventKind::Write:
    putUvarint(CurEvents,
               zigzagEncode(static_cast<int64_t>(E.Addr - PrevAddr)));
    PrevAddr = E.Addr;
    putUvarint(CurEvents, E.Value);
    CurEvents.push_back(static_cast<uint8_t>(E.Op));
    break;
  case EventKind::Compute:
    putUvarint(CurEvents, E.Cost);
    ThreadTs[CurThread] += E.Cost;
    break;
  case EventKind::RwAcquireRead:
  case EventKind::RwAcquireWrite:
    referenceLock(E.Lock);
    if (E.Site != InvalidId)
      referenceSite(E.Site);
    putUvarint(CurEvents, uid(E.Lock));
    putUvarint(CurEvents, uid(E.Site));
    putUvarint(CurEvents, uid(E.Lockset));
    ++CurAcquireCount;
    SawExtended = true;
    break;
  case EventKind::TryAcquire:
    referenceLock(E.Lock);
    if (E.Site != InvalidId)
      referenceSite(E.Site);
    putUvarint(CurEvents, uid(E.Lock));
    putUvarint(CurEvents, uid(E.Site));
    putUvarint(CurEvents, uid(E.Lockset));
    CurEvents.push_back(static_cast<uint8_t>(E.Mode));
    CurEvents.push_back(E.TrySucceeded ? 1 : 0);
    if (E.TrySucceeded)
      ++CurAcquireCount;
    SawExtended = true;
    break;
  case EventKind::CondWait:
    referenceLock(E.Lock);
    if (E.Site != InvalidId)
      referenceSite(E.Site);
    putUvarint(CurEvents, uid(E.Lock));
    putUvarint(CurEvents, uid(E.Site));
    SawExtended = true;
    break;
  case EventKind::CondSignal:
  case EventKind::CondBroadcast:
    referenceLock(E.Lock);
    putUvarint(CurEvents, uid(E.Lock));
    SawExtended = true;
    break;
  }
  ++CurEventCount;
  if (CurEvents.size() >= TargetChunkBytes)
    flushChunk();
}

void TraceV3Writer::flushChunk() {
  if (!ChunkOpen)
    return;
  ChunkOpen = false;
  CurLastTs = ThreadTs[CurThread];

  std::vector<uint8_t> Chunk;
  Chunk.reserve(V3ChunkHeaderSize + CurEvents.size() + 64);
  putU32(Chunk, CurThread);
  putU32(Chunk, CurEventCount);
  putU64(Chunk, CurFirstTs);
  putU64(Chunk, CurLastTs);
  putU32(Chunk, static_cast<uint32_t>(CurNewLocks.size()));
  putU32(Chunk, static_cast<uint32_t>(CurNewSites.size()));
  putU32(Chunk, static_cast<uint32_t>(CurEvents.size()));
  for (uint32_t Id : CurNewLocks) {
    putU32(Chunk, Id);
    Chunk.push_back(Locks[Id].IsSpin ? 1 : 0);
    putStr(Chunk, Locks[Id].Name);
  }
  for (uint32_t Id : CurNewSites) {
    putU32(Chunk, Id);
    putU32(Chunk, Sites[Id].BeginLine);
    putU32(Chunk, Sites[Id].EndLine);
    putStr(Chunk, Sites[Id].File);
    putStr(Chunk, Sites[Id].Function);
  }
  Chunk.insert(Chunk.end(), CurEvents.begin(), CurEvents.end());

  DirEntry D;
  D.Offset = Offset;
  D.ByteSize = static_cast<uint32_t>(Chunk.size());
  D.Thread = CurThread;
  D.EventCount = CurEventCount;
  D.AcquireCount = CurAcquireCount;
  D.FirstTs = CurFirstTs;
  D.LastTs = CurLastTs;
  Directory.push_back(D);
  TotalEvents += CurEventCount;
  write(Chunk.data(), Chunk.size());
}

bool TraceV3Writer::finish(std::string &Err) {
  flushChunk();

  const uint64_t SideOff = Offset;
  std::vector<uint8_t> Side;
  uint32_t RemLocks = 0, RemSites = 0;
  for (const PendingLock &L : Locks)
    RemLocks += L.Emitted ? 0 : 1;
  for (const PendingSite &S : Sites)
    RemSites += S.Emitted ? 0 : 1;
  putU32(Side, RemLocks);
  for (uint32_t Id = 0; Id != Locks.size(); ++Id) {
    if (Locks[Id].Emitted)
      continue;
    putU32(Side, Id);
    Side.push_back(Locks[Id].IsSpin ? 1 : 0);
    putStr(Side, Locks[Id].Name);
  }
  putU32(Side, RemSites);
  for (uint32_t Id = 0; Id != Sites.size(); ++Id) {
    if (Sites[Id].Emitted)
      continue;
    putU32(Side, Id);
    putU32(Side, Sites[Id].BeginLine);
    putU32(Side, Sites[Id].EndLine);
    putStr(Side, Sites[Id].File);
    putStr(Side, Sites[Id].Function);
  }
  putU32(Side, static_cast<uint32_t>(Locksets.size()));
  for (const Lockset &LS : Locksets) {
    putU32(Side, static_cast<uint32_t>(LS.Entries.size()));
    for (const LocksetEntry &E : LS.Entries) {
      putU32(Side, E.Lock);
      putU32(Side, E.SourceCs);
    }
  }
  putU32(Side, static_cast<uint32_t>(Constraints.size()));
  for (const OrderConstraint &C : Constraints) {
    putU32(Side, C.Before);
    putU32(Side, C.After);
  }
  putU32(Side, static_cast<uint32_t>(Schedule.size()));
  for (const auto &Order : Schedule) {
    putU32(Side, static_cast<uint32_t>(Order.size()));
    for (const CsRef &R : Order) {
      putU32(Side, R.Thread);
      putU32(Side, R.Index);
    }
  }
  write(Side.data(), Side.size());

  const uint64_t DirOff = Offset;
  std::vector<uint8_t> Dir;
  Dir.reserve(Directory.size() * V3DirEntrySize);
  for (const DirEntry &D : Directory) {
    putU64(Dir, D.Offset);
    putU32(Dir, D.ByteSize);
    putU32(Dir, D.Thread);
    putU32(Dir, D.EventCount);
    putU32(Dir, D.AcquireCount);
    putU64(Dir, D.FirstTs);
    putU64(Dir, D.LastTs);
  }
  write(Dir.data(), Dir.size());

  std::vector<uint8_t> Footer;
  Footer.reserve(V3FooterSize);
  putU64(Footer, SideOff);
  putU64(Footer, DirOff);
  putU32(Footer, static_cast<uint32_t>(Directory.size()));
  putU32(Footer, NumThreads);
  putU32(Footer, static_cast<uint32_t>(Locks.size()));
  putU32(Footer, static_cast<uint32_t>(Sites.size()));
  putU64(Footer, TotalEvents);
  // The end magic doubles as the minor-version tag: only a trace that
  // actually used the extended vocabulary claims 3.1, so mutex-only
  // output is byte-for-byte a 3.0 file.
  const char *EndMagic = SawExtended ? V3EndMagicV31 : V3EndMagic;
  Footer.insert(Footer.end(), EndMagic, EndMagic + sizeof(V3EndMagic));
  write(Footer.data(), Footer.size());

  if (SinkFailed) {
    Err = "trace sink write failed";
    return false;
  }
  return true;
}

std::vector<uint8_t> perfplay::writeTraceV3(const Trace &Tr,
                                            size_t TargetChunkBytes) {
  std::vector<uint8_t> Bytes;
  TraceV3Writer W(
      [&](const void *Data, size_t Size) {
        const uint8_t *P = static_cast<const uint8_t *>(Data);
        Bytes.insert(Bytes.end(), P, P + Size);
        return true;
      },
      TargetChunkBytes);
  for (const LockInfo &L : Tr.Locks)
    W.addLock(L.IsSpin, Tr.Names.str(L.Name));
  for (const CodeSite &S : Tr.Sites)
    W.addSite(S.BeginLine, S.EndLine, Tr.Names.str(S.File),
              Tr.Names.str(S.Function));
  W.setSideTables(Tr.Locksets, Tr.Constraints, Tr.LockSchedule);
  W.setNumThreads(static_cast<uint32_t>(Tr.Threads.size()));
  for (uint32_t T = 0; T != Tr.Threads.size(); ++T) {
    W.beginThread(T);
    for (const Event &E : Tr.Threads[T].Events)
      W.append(E);
  }
  std::string Err;
  bool Ok = W.finish(Err);
  assert(Ok && "in-memory sink cannot fail");
  (void)Ok;
  return Bytes;
}

bool perfplay::saveTraceV3(const Trace &Tr, const std::string &Path,
                           std::string &Err, size_t TargetChunkBytes) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  TraceV3Writer W(
      [&](const void *Data, size_t Size) {
        return std::fwrite(Data, 1, Size, F) == Size;
      },
      TargetChunkBytes);
  for (const LockInfo &L : Tr.Locks)
    W.addLock(L.IsSpin, Tr.Names.str(L.Name));
  for (const CodeSite &S : Tr.Sites)
    W.addSite(S.BeginLine, S.EndLine, Tr.Names.str(S.File),
              Tr.Names.str(S.Function));
  W.setSideTables(Tr.Locksets, Tr.Constraints, Tr.LockSchedule);
  W.setNumThreads(static_cast<uint32_t>(Tr.Threads.size()));
  for (uint32_t T = 0; T != Tr.Threads.size(); ++T) {
    W.beginThread(T);
    for (const Event &E : Tr.Threads[T].Events)
      W.append(E);
  }
  bool Ok = W.finish(Err);
  if (std::fclose(F) != 0 && Ok) {
    Err = "short write to '" + Path + "'";
    Ok = false;
  }
  if (!Ok && Err.empty())
    Err = "short write to '" + Path + "'";
  return Ok;
}

//===----------------------------------------------------------------------===//
// parseTraceV3 — parallel full load
//===----------------------------------------------------------------------===//

bool perfplay::parseTraceV3(const uint8_t *Data, size_t Size, Trace &Out,
                            std::string &Err, const V3ParseOptions &Opts) {
  Out = Trace();
  auto fail = [&](std::string Msg) {
    Err = std::move(Msg);
    return false;
  };

  if (!hasTraceV3Magic(Data, Size))
    return fail("not a perfplay v3 trace (bad magic)");
  if (Size < sizeof(V3Magic) + V3FooterSize)
    return fail("truncated v3 trace");

  V3Footer F;
  if (!parseFooter(Data + Size - V3FooterSize, Size, F, Err))
    return false;

  std::vector<V3DirEntry> Directory;
  V3DirStats Stats;
  if (!parseDirectory(Data + F.DirOff, F, Directory, Stats, Err))
    return false;

  detail::V3TableState Tables;
  Tables.Tr = &Out;
  Tables.Names = Opts.Names;
  Out.Locks.resize(F.NumLocks);
  Out.Sites.resize(F.NumSites);
  Tables.LockDefined.assign(F.NumLocks, 0);
  Tables.SiteDefined.assign(F.NumSites, 0);

  // Serial pre-pass: chunk headers and string-table deltas.  Bounded
  // by header and name bytes, not event bytes — the (dominant) event
  // streams are only located here and decoded in parallel below.
  std::vector<V3ChunkHeader> Headers(Directory.size());
  std::vector<uint64_t> EventsOffset(Directory.size(), 0);
  for (size_t I = 0; I != Directory.size(); ++I) {
    const V3DirEntry &D = Directory[I];
    std::string Where = "chunk " + std::to_string(I) + ": ";
    V3Cursor C(Data + D.Offset, D.ByteSize);
    if (!readChunkHeader(C, Headers[I], Err))
      return fail(Where + Err);
    if (!headerMatchesDirectory(Headers[I], D))
      return fail(Where + "chunk header disagrees with directory");
    if (!applyChunkDeltas(C, Headers[I], Tables, /*Apply=*/true, Err))
      return fail(Where + Err);
    if (C.remaining() != Headers[I].EventBytes)
      return fail(Where + "chunk event stream size mismatch");
    EventsOffset[I] = D.Offset + C.pos();
  }

  if (F.DirOff - F.SideOff > Size)
    return fail("bad v3 section offsets");
  V3Cursor SideCursor(Data + F.SideOff,
                      static_cast<size_t>(F.DirOff - F.SideOff));
  if (!parseSideTables(SideCursor, Tables, Err))
    return false;
  if (Tables.LocksDefined != F.NumLocks)
    return fail("missing lock definition");
  if (Tables.SitesDefined != F.NumSites)
    return fail("missing site definition");

  // Per-thread critical-section counts from the (decode-verified)
  // directory; global ids are u32, so the total must fit.
  uint64_t TotalAcquires = 0;
  std::vector<uint32_t> CsPerThread(F.NumThreads, 0);
  for (uint32_t T = 0; T != F.NumThreads; ++T) {
    TotalAcquires += Stats.PerThreadAcquires[T];
    if (Stats.PerThreadAcquires[T] > InvalidId)
      return fail("critical section count overflow");
    CsPerThread[T] = static_cast<uint32_t>(Stats.PerThreadAcquires[T]);
  }
  if (TotalAcquires > InvalidId)
    return fail("critical section count overflow");

  Out.Threads.resize(F.NumThreads);

  // Concurrent chunk decode into disjoint spans.  Each worker writes
  // only Events[SpanStart, SpanStart + EventCount) of its chunk's
  // thread and its own error slot, so no locking is needed; the
  // per-thread vector fills (value-initialization is a real cost at
  // scale) are spread over the same pool first.
  const unsigned Workers =
      ThreadPool::resolveThreadCount(Opts.NumThreads, Directory.size());
  std::vector<std::string> ChunkErrs(Directory.size());
  auto sizeThread = [&](size_t T) {
    Out.Threads[T].Events.resize(Stats.PerThreadEvents[T]);
  };
  auto decodeChunk = [&](size_t I) {
    const V3DirEntry &D = Directory[I];
    Event *Span =
        Out.Threads[D.Thread].Events.data() + Stats.SpanStart[I];
    decodeEventStream(Data + EventsOffset[I], Headers[I].EventBytes,
                      Headers[I], D.AcquireCount, F.Minor, Span,
                      ChunkErrs[I]);
  };

  std::unique_ptr<ThreadPool> Pool;
  if (Workers > 1)
    Pool = std::make_unique<ThreadPool>(Workers);
  if (Pool) {
    Pool->parallelFor(F.NumThreads, sizeThread);
    Pool->parallelFor(Directory.size(), decodeChunk);
  } else {
    for (uint32_t T = 0; T != F.NumThreads; ++T)
      sizeThread(T);
    for (size_t I = 0; I != Directory.size(); ++I)
      decodeChunk(I);
  }
  for (size_t I = 0; I != ChunkErrs.size(); ++I)
    if (!ChunkErrs[I].empty())
      return fail("chunk " + std::to_string(I) + ": " + ChunkErrs[I]);

  // The directory's acquire counts were just verified against every
  // decoded stream, so the index installs in O(threads) instead of
  // buildCsIndex()'s O(events) rescan.
  Out.installCsIndex(std::move(CsPerThread));
  std::string Invalid = Out.validate(Pool.get());
  if (!Invalid.empty())
    return fail("parsed trace fails validation: " + Invalid);
  return true;
}

//===----------------------------------------------------------------------===//
// WindowedReader — out-of-core streaming
//===----------------------------------------------------------------------===//

WindowedReader::WindowedReader() = default;

WindowedReader::~WindowedReader() { close(); }

void WindowedReader::close() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  Tables = Trace();
  Directory.clear();
  DeltasAppliedBelow = 0;
  NextChunk = 0;
  FooterNumThreads = 0;
  FooterTotalEvents = 0;
  FooterMinor = 0;
  ChunkBuf.clear();
  ChunkBuf.shrink_to_fit();
  ReaderTables.reset();
}

namespace {
/// Reads exactly [Off, Off + Len) from \p F into \p Buf.
bool readRange(std::FILE *F, uint64_t Off, size_t Len,
               std::vector<uint8_t> &Buf) {
  Buf.resize(Len);
  if (std::fseek(F, static_cast<long>(Off), SEEK_SET) != 0)
    return false;
  return Len == 0 || std::fread(Buf.data(), 1, Len, F) == Len;
}
} // namespace

bool WindowedReader::open(const std::string &Path, std::string &Err) {
  close();
  auto fail = [&](std::string Msg) {
    Err = std::move(Msg);
    close();
    return false;
  };

  File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return fail("cannot open '" + Path + "' for reading");
  if (std::fseek(File, 0, SEEK_END) != 0)
    return fail("cannot seek '" + Path + "'");
  long End = std::ftell(File);
  if (End < 0)
    return fail("cannot seek '" + Path + "'");
  FileSize = static_cast<uint64_t>(End);
  if (FileSize < sizeof(V3Magic) + V3FooterSize)
    return fail("truncated v3 trace");

  std::vector<uint8_t> Buf;
  if (!readRange(File, 0, sizeof(V3Magic), Buf))
    return fail("cannot read '" + Path + "'");
  if (!hasTraceV3Magic(Buf.data(), Buf.size()))
    return fail("not a perfplay v3 trace (bad magic)");

  V3Footer F;
  if (!readRange(File, FileSize - V3FooterSize, V3FooterSize, Buf))
    return fail("cannot read v3 footer");
  if (!parseFooter(Buf.data(), FileSize, F, Err)) {
    std::string Msg = Err;
    return fail(Msg);
  }
  FooterNumThreads = F.NumThreads;
  FooterTotalEvents = F.TotalEvents;
  FooterMinor = F.Minor;

  std::vector<V3DirEntry> Dir;
  V3DirStats Stats;
  if (!readRange(File, F.DirOff,
                 static_cast<size_t>(F.NumChunks) * V3DirEntrySize, Buf))
    return fail("cannot read v3 directory");
  if (!parseDirectory(Buf.data(), F, Dir, Stats, Err)) {
    std::string Msg = Err;
    return fail(Msg);
  }
  Directory.reserve(Dir.size());
  for (const V3DirEntry &E : Dir)
    Directory.push_back(DirEntry{E.Offset, E.ByteSize, E.Thread,
                                 E.EventCount, E.AcquireCount, E.FirstTs,
                                 E.LastTs});

  ReaderTables = std::make_unique<detail::V3TableState>();
  ReaderTables->Tr = &Tables;
  ReaderTables->Names = NameStorage::Owned;
  Tables.Locks.resize(F.NumLocks);
  Tables.Sites.resize(F.NumSites);
  ReaderTables->LockDefined.assign(F.NumLocks, 0);
  ReaderTables->SiteDefined.assign(F.NumSites, 0);

  if (!readRange(File, F.SideOff,
                 static_cast<size_t>(F.DirOff - F.SideOff), Buf))
    return fail("cannot read v3 side tables");
  V3Cursor SideCursor(Buf.data(), Buf.size());
  if (!parseSideTables(SideCursor, *ReaderTables, Err)) {
    std::string Msg = Err;
    return fail(Msg);
  }
  // The streaming consumer trusts the schedule's references before it
  // has seen every thread's stream; the directory's per-thread acquire
  // totals make the check possible up front.
  for (const auto &Order : Tables.LockSchedule)
    for (const CsRef &Ref : Order) {
      if (Ref.Thread >= F.NumThreads ||
          Ref.Index >= Stats.PerThreadAcquires[Ref.Thread])
        return fail("lock schedule references unknown critical section");
    }
  if (!Tables.LockSchedule.empty() &&
      Tables.LockSchedule.size() != Tables.Locks.size())
    return fail("lock schedule size does not match lock table");

  return true;
}

bool WindowedReader::next(Chunk &Buf, std::string &Err) {
  Err.clear();
  if (!File) {
    Err = "windowed reader is not open";
    return false;
  }
  if (NextChunk == Directory.size())
    return false;

  const size_t I = NextChunk;
  const DirEntry &D = Directory[I];
  std::string Where = "chunk " + std::to_string(I) + ": ";
  if (!readRange(File, D.Offset, D.ByteSize, ChunkBuf)) {
    Err = Where + "cannot read chunk";
    return false;
  }
  V3Cursor C(ChunkBuf.data(), ChunkBuf.size());
  V3ChunkHeader H;
  if (!readChunkHeader(C, H, Err)) {
    Err = Where + Err;
    return false;
  }
  V3DirEntry DE{D.Offset, D.ByteSize, D.Thread, D.EventCount,
                D.AcquireCount, D.FirstTs, D.LastTs};
  if (!headerMatchesDirectory(H, DE)) {
    Err = Where + "chunk header disagrees with directory";
    return false;
  }
  const bool Apply = I >= DeltasAppliedBelow;
  if (!applyChunkDeltas(C, H, *ReaderTables, Apply, Err)) {
    Err = Where + Err;
    return false;
  }
  if (Apply)
    DeltasAppliedBelow = I + 1;
  if (C.remaining() != H.EventBytes) {
    Err = Where + "chunk event stream size mismatch";
    return false;
  }

  Buf.Thread = H.Thread;
  Buf.FirstTs = H.FirstTs;
  Buf.LastTs = H.LastTs;
  Buf.Events.resize(H.EventCount);
  if (!decodeEventStream(ChunkBuf.data() + C.pos(), H.EventBytes, H,
                         D.AcquireCount, FooterMinor, Buf.Events.data(),
                         Err)) {
    Err = Where + Err;
    return false;
  }
  ++NextChunk;
  return true;
}
