//===- trace/Filter.h - Trace projection for focused debugging --*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 5.1's checkpoint support exists "for programmers to focus on
/// a smaller code region".  These projections produce a focused
/// sub-trace while keeping it well-formed for replay:
///
///  - filterTraceByLocks: keep only the critical sections of a set of
///    locks; other sections' lock operations become plain computation
///    (their bodies are preserved so timing stays realistic).
///  - sliceTraceByEvents: keep each thread's prefix up to a per-thread
///    event bound (a checkpoint), closing still-open sections.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_FILTER_H
#define PERFPLAY_TRACE_FILTER_H

#include "trace/Trace.h"

#include <vector>

namespace perfplay {

/// Projects \p Tr onto \p KeepLocks (sorted not required): acquires and
/// releases of other locks are dropped, their shared accesses kept
/// (they execute outside critical sections afterwards), computation is
/// untouched.  The grant schedule is filtered accordingly.  Lockset
/// side tables are not carried over (filter before transforming).
Trace filterTraceByLocks(const Trace &Tr,
                         const std::vector<LockId> &KeepLocks);

/// Truncates each thread to its first \p EventBound[thread] events
/// (ThreadStart included; pass the recorder's checkpoint EventIndex).
/// Sections still open at the bound are closed immediately; the grant
/// schedule is filtered to surviving critical sections.
Trace sliceTraceByEvents(const Trace &Tr,
                         const std::vector<size_t> &EventBound);

} // namespace perfplay

#endif // PERFPLAY_TRACE_FILTER_H
