//===- trace/Event.cpp - Trace event model --------------------------------===//

#include "trace/Event.h"

using namespace perfplay;

Event Event::threadStart() {
  Event E;
  E.Kind = EventKind::ThreadStart;
  return E;
}

Event Event::threadEnd() {
  Event E;
  E.Kind = EventKind::ThreadEnd;
  return E;
}

Event Event::lockAcquire(LockId Lock, CodeSiteId Site, LocksetId Lockset) {
  Event E;
  E.Kind = EventKind::LockAcquire;
  E.Lock = Lock;
  E.Site = Site;
  E.Lockset = Lockset;
  return E;
}

Event Event::lockRelease(LockId Lock) {
  Event E;
  E.Kind = EventKind::LockRelease;
  E.Lock = Lock;
  return E;
}

Event Event::read(AddrId Addr, uint64_t Value) {
  Event E;
  E.Kind = EventKind::Read;
  E.Addr = Addr;
  E.Value = Value;
  return E;
}

Event Event::write(AddrId Addr, uint64_t Value, WriteOpKind Op) {
  Event E;
  E.Kind = EventKind::Write;
  E.Addr = Addr;
  E.Value = Value;
  E.Op = Op;
  return E;
}

Event Event::compute(TimeNs Cost) {
  Event E;
  E.Kind = EventKind::Compute;
  E.Cost = Cost;
  return E;
}

const char *perfplay::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::ThreadStart:
    return "start";
  case EventKind::ThreadEnd:
    return "end";
  case EventKind::LockAcquire:
    return "acq";
  case EventKind::LockRelease:
    return "rel";
  case EventKind::Read:
    return "rd";
  case EventKind::Write:
    return "wr";
  case EventKind::Compute:
    return "comp";
  }
  return "?";
}

const char *perfplay::writeOpName(WriteOpKind Op) {
  switch (Op) {
  case WriteOpKind::Store:
    return "store";
  case WriteOpKind::Add:
    return "add";
  case WriteOpKind::Or:
    return "or";
  case WriteOpKind::And:
    return "and";
  case WriteOpKind::Xor:
    return "xor";
  }
  return "?";
}
