//===- trace/Event.cpp - Trace event model --------------------------------===//

#include "trace/Event.h"

using namespace perfplay;

Event Event::threadStart() {
  Event E;
  E.Kind = EventKind::ThreadStart;
  return E;
}

Event Event::threadEnd() {
  Event E;
  E.Kind = EventKind::ThreadEnd;
  return E;
}

Event Event::lockAcquire(LockId Lock, CodeSiteId Site, LocksetId Lockset) {
  Event E;
  E.Kind = EventKind::LockAcquire;
  E.Lock = Lock;
  E.Site = Site;
  E.Lockset = Lockset;
  return E;
}

Event Event::lockRelease(LockId Lock) {
  Event E;
  E.Kind = EventKind::LockRelease;
  E.Lock = Lock;
  return E;
}

Event Event::read(AddrId Addr, uint64_t Value) {
  Event E;
  E.Kind = EventKind::Read;
  E.Addr = Addr;
  E.Value = Value;
  return E;
}

Event Event::write(AddrId Addr, uint64_t Value, WriteOpKind Op) {
  Event E;
  E.Kind = EventKind::Write;
  E.Addr = Addr;
  E.Value = Value;
  E.Op = Op;
  return E;
}

Event Event::compute(TimeNs Cost) {
  Event E;
  E.Kind = EventKind::Compute;
  E.Cost = Cost;
  return E;
}

Event Event::rwAcquireRead(LockId Lock, CodeSiteId Site,
                           LocksetId Lockset) {
  Event E;
  E.Kind = EventKind::RwAcquireRead;
  E.Mode = AcquireMode::Shared;
  E.Lock = Lock;
  E.Site = Site;
  E.Lockset = Lockset;
  return E;
}

Event Event::rwAcquireWrite(LockId Lock, CodeSiteId Site,
                            LocksetId Lockset) {
  Event E;
  E.Kind = EventKind::RwAcquireWrite;
  E.Mode = AcquireMode::Exclusive;
  E.Lock = Lock;
  E.Site = Site;
  E.Lockset = Lockset;
  return E;
}

Event Event::tryAcquire(LockId Lock, CodeSiteId Site, bool Succeeded,
                        AcquireMode Mode, LocksetId Lockset) {
  Event E;
  E.Kind = EventKind::TryAcquire;
  E.Mode = Mode;
  E.TrySucceeded = Succeeded;
  E.Lock = Lock;
  E.Site = Site;
  E.Lockset = Lockset;
  return E;
}

Event Event::condWait(LockId Cond, CodeSiteId Site) {
  Event E;
  E.Kind = EventKind::CondWait;
  E.Lock = Cond;
  E.Site = Site;
  return E;
}

Event Event::condSignal(LockId Cond) {
  Event E;
  E.Kind = EventKind::CondSignal;
  E.Lock = Cond;
  return E;
}

Event Event::condBroadcast(LockId Cond) {
  Event E;
  E.Kind = EventKind::CondBroadcast;
  E.Lock = Cond;
  return E;
}

// Exhaustive on purpose (no default): adding an EventKind without a
// mnemonic must fail the -Werror build, not silently print "?".
const char *perfplay::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::ThreadStart:
    return "start";
  case EventKind::ThreadEnd:
    return "end";
  case EventKind::LockAcquire:
    return "acq";
  case EventKind::LockRelease:
    return "rel";
  case EventKind::Read:
    return "rd";
  case EventKind::Write:
    return "wr";
  case EventKind::Compute:
    return "comp";
  case EventKind::RwAcquireRead:
    return "rwa";
  case EventKind::RwAcquireWrite:
    return "rww";
  case EventKind::TryAcquire:
    return "try";
  case EventKind::CondWait:
    return "cwait";
  case EventKind::CondSignal:
    return "csig";
  case EventKind::CondBroadcast:
    return "cbro";
  }
  return "?";
}

const char *perfplay::acquireModeName(AcquireMode Mode) {
  switch (Mode) {
  case AcquireMode::Exclusive:
    return "exclusive";
  case AcquireMode::Shared:
    return "shared";
  }
  return "?";
}

const char *perfplay::writeOpName(WriteOpKind Op) {
  switch (Op) {
  case WriteOpKind::Store:
    return "store";
  case WriteOpKind::Add:
    return "add";
  case WriteOpKind::Or:
    return "or";
  case WriteOpKind::And:
    return "and";
  case WriteOpKind::Xor:
    return "xor";
  }
  return "?";
}
