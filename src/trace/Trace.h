//===- trace/Trace.h - Recorded execution trace ------------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Trace container: per-thread event streams plus the side tables a
/// replay needs — code sites, lock metadata, the recorded per-lock grant
/// schedule that ELSC enforces (Section 5.2), and, for transformed
/// traces, lockset definitions (RULE 3) and partial-order constraints
/// (RULE 2).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_TRACE_H
#define PERFPLAY_TRACE_TRACE_H

#include "support/StringPool.h"
#include "trace/Event.h"

#include <string>
#include <string_view>
#include <vector>

namespace perfplay {

class ThreadPool;

/// Static source location of a critical section's code region.  Names
/// are pooled: File/Function are handles into the owning
/// Trace::Names interner (Trace::siteFile / Trace::siteFunction
/// resolve them), so comparing two sites' names is an integer compare
/// and parsing a site allocates no per-name storage.
struct CodeSite {
  StringId File = InvalidStringId;
  StringId Function = InvalidStringId;
  uint32_t BeginLine = 0;
  uint32_t EndLine = 0;
};

/// Metadata of one lock.  Spin locks burn CPU while waiting (the paper's
/// "resource wasting"); blocking locks idle.  Name is a handle into the
/// owning Trace::Names pool (resolve with Trace::lockName).
struct LockInfo {
  StringId Name = InvalidStringId;
  bool IsSpin = false;
};

/// Reference to the \p Index-th critical section (in program order) of
/// thread \p Thread.  Nested critical sections are numbered by their
/// opening LockAcquire.
struct CsRef {
  ThreadId Thread = InvalidId;
  uint32_t Index = InvalidId;

  bool valid() const { return Thread != InvalidId; }
  bool operator==(const CsRef &RHS) const {
    return Thread == RHS.Thread && Index == RHS.Index;
  }
};

/// One lock inside a lockset, remembering which critical section the
/// lock protects against.  The dynamic locking strategy (Figure 9) skips
/// acquiring Lock once SourceCs has finished at replay time.
struct LocksetEntry {
  LockId Lock = InvalidId;
  /// Global id of the source critical section contributing this lock,
  /// or InvalidId for the node's own auxiliary lock.
  uint32_t SourceCs = InvalidId;
};

/// RULE 3 lockset: the set of locks a transformed critical section must
/// hold.  Two transformed critical sections are mutually exclusive iff
/// their locksets intersect (RULE 4).  An empty lockset encodes a
/// removed lock/unlock pair (null-locks and standalone nodes).
struct Lockset {
  std::vector<LocksetEntry> Entries;
};

/// RULE 2 constraint: the critical section \p Before must be granted its
/// lock(s) no later than \p After, preserving the original partial order
/// of causal-edge nodes.  Ids are global critical-section ids (see
/// Trace::globalCsId).
struct OrderConstraint {
  uint32_t Before = InvalidId;
  uint32_t After = InvalidId;
};

/// Event stream of one thread.
struct ThreadTrace {
  std::vector<Event> Events;
};

/// A recorded (or transformed) execution trace.
///
/// Thread ids are dense indices into Threads.  Global critical-section
/// ids enumerate critical sections thread-major: all of thread 0's
/// critical sections first (in program order), then thread 1's, etc.
class Trace {
public:
  std::vector<ThreadTrace> Threads;
  std::vector<CodeSite> Sites;
  std::vector<LockInfo> Locks;

  /// The interner backing every name in this trace (lock names, site
  /// files/functions).  Views handed out by the accessors below point
  /// into the pool's arena — or, for traces parsed in borrowed mode,
  /// straight into the memory-mapped trace file the session pins — and
  /// stay valid when the Trace is moved.  Copying a Trace re-owns all
  /// names (see support/StringPool.h).
  StringPool Names;

  /// Interns \p S into this trace's pool (owned storage).
  StringId intern(std::string_view S) { return Names.intern(S); }

  /// Resolves a pooled name; InvalidStringId yields "".
  std::string_view name(StringId Id) const { return Names.str(Id); }

  /// Name of lock \p L.
  std::string_view lockName(LockId L) const {
    return Names.str(Locks[L].Name);
  }

  /// Source file of code site \p S.
  std::string_view siteFile(CodeSiteId S) const {
    return Names.str(Sites[S].File);
  }

  /// Function of code site \p S.
  std::string_view siteFunction(CodeSiteId S) const {
    return Names.str(Sites[S].Function);
  }

  /// Transformed-trace side tables (empty in freshly recorded traces).
  std::vector<Lockset> Locksets;
  std::vector<OrderConstraint> Constraints;

  /// Recorded grant schedule: for each lock, the order in which critical
  /// sections were granted that lock in the recorded run.  This is the
  /// total order ELSC re-enforces on every replay.
  std::vector<std::vector<CsRef>> LockSchedule;

  /// Number of threads.
  unsigned numThreads() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// Total number of events across all threads.
  size_t numEvents() const;

  /// Total number of critical sections (section-opening events: mutex
  /// and rwlock acquires plus successful trylocks; see isSectionOpen).
  size_t numCriticalSections() const;

  /// Number of critical sections in thread \p T.
  uint32_t numCriticalSections(ThreadId T) const;

  /// Maps (thread, per-thread CS index) to a dense global CS id.
  /// Requires buildCsIndex() to have been called after the last
  /// mutation of Threads.
  uint32_t globalCsId(CsRef Ref) const;

  /// Inverse of globalCsId().
  CsRef csRefOf(uint32_t GlobalId) const;

  /// (Re)computes the per-thread CS counts backing globalCsId().
  void buildCsIndex();

  /// Installs the per-thread CS counts backing globalCsId() from
  /// counts the caller already has, skipping buildCsIndex()'s
  /// O(events) rescan.  The parallel v3 loader aggregates these from
  /// the chunk directory's per-chunk acquire counts, each verified
  /// against the decoded stream — so the index is exact, at O(threads)
  /// cost.  \p CountPerThread must have one entry per thread.
  void installCsIndex(std::vector<uint32_t> CountPerThread);

  /// Structural validation: every thread stream starts with ThreadStart,
  /// ends with ThreadEnd, lock acquire/release nest properly (LIFO per
  /// thread), released locks were held, referenced sites/locks/locksets
  /// exist, and constraints reference existing critical sections.
  ///
  /// \returns an empty string when valid, otherwise a diagnostic.
  std::string validate() const;

  /// validate() with the independent per-thread structural walks spread
  /// over \p Pool (cross-table checks stay serial).  The reported
  /// diagnostic is deterministic — the lowest-numbered failing thread
  /// wins, exactly as in the serial walk.  A null pool (or a pool of
  /// one) degrades to validate().
  std::string validate(ThreadPool *Pool) const;

private:
  /// Per-thread half of validate(); returns a diagnostic or "" and
  /// reports the thread's critical-section count through \p OutCs.
  std::string validateThread(size_t T, uint32_t &OutCs) const;

  /// Prefix sums of per-thread CS counts; CsPrefix[T] is the global id
  /// of thread T's first critical section.
  std::vector<uint32_t> CsPrefix;
  std::vector<uint32_t> CsCount;
};

} // namespace perfplay

#endif // PERFPLAY_TRACE_TRACE_H
