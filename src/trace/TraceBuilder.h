//===- trace/TraceBuilder.h - Convenient trace construction -----*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent construction of traces for tests, examples and the synthetic
/// workload generators.  The builder tracks per-thread lock nesting so
/// misuse (unbalanced release, dangling hold at thread end) is caught at
/// construction time instead of by Trace::validate() later.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRACE_TRACEBUILDER_H
#define PERFPLAY_TRACE_TRACEBUILDER_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace perfplay {

/// Builds a Trace incrementally.
///
/// Typical usage:
/// \code
///   TraceBuilder B;
///   LockId Mu = B.addLock("mu");
///   CodeSiteId Site = B.addSite("fil0fil.cc", "fil_flush", 5473, 5592);
///   ThreadId T0 = B.addThread();
///   B.beginCs(T0, Mu, Site);
///   B.read(T0, /*Addr=*/1);
///   B.compute(T0, /*Cost=*/500);
///   B.endCs(T0);
///   Trace Tr = B.finish();
/// \endcode
class TraceBuilder {
public:
  /// Registers a lock and returns its id.
  LockId addLock(std::string Name, bool IsSpin = false);

  /// Registers a code site and returns its id.
  CodeSiteId addSite(std::string File, std::string Function,
                     uint32_t BeginLine, uint32_t EndLine);

  /// Adds a thread (emitting its ThreadStart) and returns its id.
  ThreadId addThread();

  /// Opens a critical section on \p Lock at \p Site.
  void beginCs(ThreadId T, LockId Lock, CodeSiteId Site = InvalidId);

  /// Opens a reader-side (shared) rwlock critical section.  Closed by
  /// endCs() like any other section.
  void beginCsShared(ThreadId T, LockId Lock, CodeSiteId Site = InvalidId);

  /// Opens a writer-side (exclusive) rwlock critical section.
  void beginCsWrite(ThreadId T, LockId Lock, CodeSiteId Site = InvalidId);

  /// Records a trylock attempt.  A successful try opens a critical
  /// section (close with endCs()); a failed try emits only the failure
  /// event.  Returns \p Succeeded for fluent use.
  bool tryCs(ThreadId T, LockId Lock, CodeSiteId Site, bool Succeeded,
             AcquireMode Mode = AcquireMode::Exclusive);

  /// Records a condition-variable wait on \p Cond (registered via
  /// addLock — condvars live in the lock table).
  void condWait(ThreadId T, LockId Cond, CodeSiteId Site = InvalidId);

  /// Records a condition-variable signal.
  void condSignal(ThreadId T, LockId Cond);

  /// Records a condition-variable broadcast.
  void condBroadcast(ThreadId T, LockId Cond);

  /// Closes the innermost critical section of \p T.
  void endCs(ThreadId T);

  /// Emits a shared read.  Must be inside at least one critical section
  /// unless \p AllowUnlocked (races outside locks are not this paper's
  /// subject, but tests construct them deliberately).
  void read(ThreadId T, AddrId Addr, uint64_t Value = 0,
            bool AllowUnlocked = false);

  /// Emits a shared write.
  void write(ThreadId T, AddrId Addr, uint64_t Value,
             WriteOpKind Op = WriteOpKind::Store, bool AllowUnlocked = false);

  /// Emits computation of \p Cost virtual nanoseconds.
  void compute(ThreadId T, TimeNs Cost);

  /// Number of open critical sections on thread \p T.
  unsigned openDepth(ThreadId T) const;

  /// Finalizes every thread with ThreadEnd and returns the trace with
  /// its CS index built.  The builder must not be reused afterwards.
  Trace finish();

private:
  Trace Result;
  /// Stack of (lock) currently held, per thread.
  std::vector<std::vector<LockId>> HeldStacks;
  bool Finished = false;
};

} // namespace perfplay

#endif // PERFPLAY_TRACE_TRACEBUILDER_H
