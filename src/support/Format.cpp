//===- support/Format.cpp - Small value formatting helpers ----------------===//

#include "support/Format.h"

#include <cstdio>

using namespace perfplay;

std::string perfplay::formatDouble(double Value, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string perfplay::formatPercent(double Fraction, unsigned Decimals) {
  return formatDouble(Fraction * 100.0, Decimals) + "%";
}

std::string perfplay::formatNs(uint64_t Ns) {
  char Buf[64];
  if (Ns < 1000) {
    std::snprintf(Buf, sizeof(Buf), "%lluns",
                  static_cast<unsigned long long>(Ns));
  } else if (Ns < 1000ULL * 1000) {
    std::snprintf(Buf, sizeof(Buf), "%.2fus", Ns / 1e3);
  } else if (Ns < 1000ULL * 1000 * 1000) {
    std::snprintf(Buf, sizeof(Buf), "%.2fms", Ns / 1e6);
  } else {
    std::snprintf(Buf, sizeof(Buf), "%.2fs", Ns / 1e9);
  }
  return Buf;
}
