//===- support/Rng.cpp - Deterministic pseudo-random generation ----------===//

#include "support/Rng.h"

#include <cassert>

using namespace perfplay;

uint64_t perfplay::splitMix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

Rng::Rng(uint64_t Seed) {
  // Expand the single seed into four nonzero state words.
  uint64_t S = Seed;
  for (auto &Word : State) {
    S = splitMix64(S);
    Word = S | 1; // Guarantee the all-zero state is unreachable.
  }
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow(0) is meaningless");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t Sample = next();
    if (Sample >= Threshold)
      return Sample % Bound;
  }
}

uint64_t Rng::nextInRange(uint64_t Lo, uint64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + nextBelow(Hi - Lo + 1);
}

double Rng::nextDouble() {
  // 53 high-quality bits into the double mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

unsigned Rng::nextWeighted(const double *Weights, unsigned N) {
  assert(N > 0 && "need at least one weight");
  double Total = 0.0;
  for (unsigned I = 0; I != N; ++I) {
    assert(Weights[I] >= 0.0 && "negative weight");
    Total += Weights[I];
  }
  assert(Total > 0.0 && "weights must not all be zero");
  double Pick = nextDouble() * Total;
  double Acc = 0.0;
  for (unsigned I = 0; I != N; ++I) {
    Acc += Weights[I];
    if (Pick < Acc)
      return I;
  }
  return N - 1; // Floating-point slack: attribute to the last bucket.
}
