//===- support/Interval.cpp - Source line-range arithmetic ----------------===//

#include "support/Interval.h"

#include <algorithm>
#include <cassert>

using namespace perfplay;

bool perfplay::overlaps(const LineInterval &A, const LineInterval &B) {
  if (A.empty() || B.empty())
    return false;
  return A.Begin <= B.End && B.Begin <= A.End;
}

LineInterval perfplay::intersect(const LineInterval &A,
                                 const LineInterval &B) {
  if (!overlaps(A, B))
    return LineInterval();
  return LineInterval(std::max(A.Begin, B.Begin), std::min(A.End, B.End));
}

LineInterval perfplay::unite(const LineInterval &A, const LineInterval &B) {
  assert(!(A.empty() && B.empty()) && "uniting two empty intervals");
  if (A.empty())
    return B;
  if (B.empty())
    return A;
  return LineInterval(std::min(A.Begin, B.Begin), std::max(A.End, B.End));
}
