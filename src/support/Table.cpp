//===- support/Table.cpp - Plain-text table rendering ---------------------===//

#include "support/Table.h"

#include <algorithm>

using namespace perfplay;

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string Table::render() const {
  if (Rows.empty())
    return "";

  size_t NumCols = 0;
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<size_t> Widths(NumCols, 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto renderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C != NumCols; ++C) {
      const std::string Cell = C < Row.size() ? Row[C] : "";
      Line += Cell;
      if (C + 1 != NumCols)
        Line += std::string(Widths[C] - Cell.size() + 2, ' ');
    }
    // Trim trailing padding.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Line += '\n';
    return Line;
  };

  std::string Out = renderRow(Rows.front());
  size_t RuleWidth = 0;
  for (size_t C = 0; C != NumCols; ++C)
    RuleWidth += Widths[C] + (C + 1 != NumCols ? 2 : 0);
  Out += std::string(RuleWidth, '-') + "\n";
  for (size_t R = 1; R < Rows.size(); ++R)
    Out += renderRow(Rows[R]);
  return Out;
}
