//===- support/ThreadPool.cpp - Fork-join worker pool -----------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace perfplay;

unsigned ThreadPool::resolveThreadCount(unsigned Requested,
                                        size_t NumItems) {
  unsigned N = Requested;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  // Hard ceiling: a wrapped/absurd request (e.g. -1 cast to unsigned)
  // must not translate into thousands of OS threads.
  N = std::min(N, 256u);
  N = static_cast<unsigned>(std::min<size_t>(N, std::max<size_t>(NumItems, 1)));
  return std::max(N, 1u);
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  NumWorkers = resolveThreadCount(NumThreads, static_cast<size_t>(-1));
  Workers.reserve(NumWorkers - 1);
  for (unsigned I = 1; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Guard(Mu);
    Stopping = true;
  }
  StartCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(size_t)> *Fn;
    size_t Items;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      StartCv.wait(Lock, [&] {
        return Stopping || Generation != SeenGeneration;
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
      Fn = Job;
      Items = JobItems;
    }
    for (size_t I = NextItem.fetch_add(1); I < Items;
         I = NextItem.fetch_add(1))
      (*Fn)(I);
    {
      std::lock_guard<std::mutex> Guard(Mu);
      if (--ActiveWorkers == 0)
        DoneCv.notify_all();
    }
  }
}

void ThreadPool::parallelFor(size_t NumItems,
                             const std::function<void(size_t)> &Fn) {
  if (NumItems == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I != NumItems; ++I)
      Fn(I);
    return;
  }
  {
    std::lock_guard<std::mutex> Guard(Mu);
    Job = &Fn;
    JobItems = NumItems;
    NextItem.store(0);
    ActiveWorkers = static_cast<unsigned>(Workers.size());
    ++Generation;
  }
  StartCv.notify_all();
  // The caller is worker 0.
  for (size_t I = NextItem.fetch_add(1); I < NumItems;
       I = NextItem.fetch_add(1))
    Fn(I);
  std::unique_lock<std::mutex> Lock(Mu);
  DoneCv.wait(Lock, [&] { return ActiveWorkers == 0; });
  Job = nullptr;
}
