//===- support/ThreadPool.cpp - Fork-join worker pool -----------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace perfplay;

unsigned ThreadPool::resolveThreadCount(unsigned Requested,
                                        size_t NumItems) {
  unsigned N = Requested;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  // Hard ceiling: a wrapped/absurd request (e.g. -1 cast to unsigned)
  // must not translate into thousands of OS threads.
  N = std::min(N, 256u);
  N = static_cast<unsigned>(std::min<size_t>(N, std::max<size_t>(NumItems, 1)));
  return std::max(N, 1u);
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  NumWorkers = resolveThreadCount(NumThreads, static_cast<size_t>(-1));
  Workers.reserve(NumWorkers - 1);
  for (unsigned I = 1; I != NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock Guard(Mu);
    Stopping = true;
  }
  StartCv.notifyAll();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(size_t)> *Fn;
    size_t Items;
    {
      MutexLock Lock(Mu);
      while (!Stopping && Generation == SeenGeneration)
        StartCv.wait(Mu);
      if (Stopping)
        return;
      SeenGeneration = Generation;
      Fn = Job;
      Items = JobItems;
    }
    for (size_t I = NextItem.fetch_add(1); I < Items;
         I = NextItem.fetch_add(1))
      (*Fn)(I);
    {
      MutexLock Guard(Mu);
      if (--ActiveWorkers == 0)
        DoneCv.notifyAll();
    }
  }
}

void ThreadPool::parallelFor(size_t NumItems,
                             const std::function<void(size_t)> &Fn) {
  if (NumItems == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I != NumItems; ++I)
      Fn(I);
    return;
  }
  {
    MutexLock Guard(Mu);
    Job = &Fn;
    JobItems = NumItems;
    NextItem.store(0);
    ActiveWorkers = static_cast<unsigned>(Workers.size());
    ++Generation;
  }
  StartCv.notifyAll();
  // The caller is worker 0.
  for (size_t I = NextItem.fetch_add(1); I < NumItems;
       I = NextItem.fetch_add(1))
    Fn(I);
  MutexLock Lock(Mu);
  while (ActiveWorkers != 0)
    DoneCv.wait(Mu);
  Job = nullptr;
}
