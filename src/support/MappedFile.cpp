//===- support/MappedFile.cpp - Read-only memory-mapped file ----------------===//

#include "support/MappedFile.h"

#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PERFPLAY_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PERFPLAY_HAVE_MMAP 0
#endif

using namespace perfplay;

bool MappedFile::supportsMapping() { return PERFPLAY_HAVE_MMAP != 0; }

MappedFile::PathKind MappedFile::classifyPath(const std::string &Path) {
#if PERFPLAY_HAVE_MMAP
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0)
    return PathKind::Missing;
  return S_ISREG(St.st_mode) ? PathKind::Regular : PathKind::Other;
#else
  // No stat portability guarantee: report Other so Auto-mode loaders
  // take the stream path, which this build's open() mimics anyway.
  (void)Path;
  return PathKind::Other;
#endif
}

MappedFile &MappedFile::operator=(MappedFile &&Other) noexcept {
  if (this == &Other)
    return *this;
  close();
  Fallback = std::move(Other.Fallback);
  Data = Other.Data;
  Size = Other.Size;
  Mapped = Other.Mapped;
  Other.Data = nullptr;
  Other.Size = 0;
  Other.Mapped = false;
  Other.Fallback.clear();
  return *this;
}

void MappedFile::close() {
#if PERFPLAY_HAVE_MMAP
  if (Mapped)
    ::munmap(const_cast<uint8_t *>(Data), Size);
#endif
  Data = nullptr;
  Size = 0;
  Mapped = false;
  Fallback.clear();
  Fallback.shrink_to_fit();
}

#if !PERFPLAY_HAVE_MMAP
/// Reads \p Path into \p Out in one pass (the no-mmap fallback).
static bool readWhole(const std::string &Path, std::vector<uint8_t> &Out,
                      std::string &Err) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open '" + Path + "' for reading";
    return false;
  }
  char Buf[1 << 16];
  for (;;) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Out.insert(Out.end(), Buf, Buf + N);
    if (N < sizeof(Buf))
      break;
  }
  bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadError) {
    Err = "read error on '" + Path + "'";
    Out.clear();
    return false;
  }
  return true;
}
#endif

bool MappedFile::open(const std::string &Path, std::string &Err) {
  close();
#if PERFPLAY_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    Err = "cannot open '" + Path + "' for reading";
    return false;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0 || St.st_size < 0) {
    ::close(Fd);
    Err = "cannot stat '" + Path + "'";
    return false;
  }
  if (St.st_size == 0) {
    // mmap rejects zero-length mappings; an empty view needs no map.
    ::close(Fd);
    return true;
  }
  void *Map = ::mmap(nullptr, static_cast<size_t>(St.st_size), PROT_READ,
                     MAP_PRIVATE, Fd, 0);
  ::close(Fd); // The mapping holds its own reference to the file.
  if (Map == MAP_FAILED) {
    Err = "cannot mmap '" + Path + "'";
    return false;
  }
  Data = static_cast<const uint8_t *>(Map);
  Size = static_cast<size_t>(St.st_size);
  Mapped = true;
#if defined(MADV_SEQUENTIAL)
  // Parsers walk the file front to back; tell the kernel to read ahead.
  ::madvise(Map, Size, MADV_SEQUENTIAL);
#endif
  return true;
#else
  if (!readWhole(Path, Fallback, Err))
    return false;
  Data = Fallback.data();
  Size = Fallback.size();
  return true;
#endif
}
