//===- support/Stats.cpp - Running sample statistics ---------------------===//

#include "support/Stats.h"

#include <cmath>

using namespace perfplay;

void RunningStats::add(double Sample) {
  if (Count == 0) {
    Min = Max = Sample;
  } else {
    if (Sample < Min)
      Min = Sample;
    if (Sample > Max)
      Max = Sample;
  }
  ++Count;
  double Delta = Sample - Mean;
  Mean += Delta / static_cast<double>(Count);
  M2 += Delta * (Sample - Mean);
}

double RunningStats::variance() const {
  if (Count < 2)
    return 0.0;
  return M2 / static_cast<double>(Count - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
