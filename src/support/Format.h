//===- support/Format.h - Small value formatting helpers --------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers shared by reports and benches: durations in
/// virtual nanoseconds, percentages, and fixed-precision doubles.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_FORMAT_H
#define PERFPLAY_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace perfplay {

/// Formats \p Ns as a human-readable duration ("312ns", "4.25us",
/// "1.50ms", "2.00s").
std::string formatNs(uint64_t Ns);

/// Formats \p Fraction (0.051) as a percentage string ("5.1%").
std::string formatPercent(double Fraction, unsigned Decimals = 1);

/// Formats \p Value with a fixed number of decimals.
std::string formatDouble(double Value, unsigned Decimals = 2);

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_FORMAT_H
