//===- support/Expected.h - Typed pipeline errors ----------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed error handling for the staged pipeline API: an error-code enum
/// covering every stage's failure modes, a small `PipelineError` carrier
/// pairing the code with a human-readable diagnostic, and `Expected<T>`
/// — a value-or-error sum type (with `T&` and `void` specializations)
/// that stage methods return instead of bare `std::string` errors.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_EXPECTED_H
#define PERFPLAY_SUPPORT_EXPECTED_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace perfplay {

/// Everything that can go wrong in the record → detect → transform →
/// replay → report pipeline, one code per distinguishable failure mode.
enum class ErrorCode : uint8_t {
  /// No error (PipelineError's default; never carried by a failed
  /// Expected).
  Success = 0,
  /// Trace::validate() rejected the input trace.
  InvalidTrace,
  /// The ORIG-S recording run that installs the grant schedule failed.
  RecordingFailed,
  /// A timing replay of the original trace failed (e.g. an enforced-
  /// order deadlock).
  OriginalReplayFailed,
  /// A timing replay of the transformed (ULCP-free) trace failed.
  TransformedReplayFailed,
  /// An Engine::analyzeBatch() item failed (placeholder while the
  /// batch runs; finished items carry the failing stage's own code).
  BatchItemFailed,
  /// The requested stage cannot run under the session's options (e.g.
  /// report() over a detection configured with Sink/CountsOnly, which
  /// discards the per-pair list the report needs).
  IncompatibleOptions,
  /// A trace file could not be read or parsed (readTraceFile /
  /// Engine::openSessionFromFile): missing file, I/O error, bad magic,
  /// or a corrupt/truncated body.  The message carries the loader's
  /// diagnostic.
  TraceIOFailed,
  /// A `perfplay serve` wire-protocol failure: malformed frame, an
  /// oversized length prefix, an unknown request type, or a socket
  /// error between client and daemon (serve/Protocol.h).
  ProtocolError,
  /// The serve daemon's admission control rejected the request because
  /// its connection queue was full; the client should back off and
  /// retry (serve/Server.h).
  ServerOverloaded,
};

/// Returns a stable identifier for \p Code ("invalid-trace", ...).
const char *errorCodeName(ErrorCode Code);

/// One pipeline failure: the machine-readable code plus the diagnostic
/// the legacy string-based API used to return.
struct PipelineError {
  ErrorCode Code = ErrorCode::Success;
  std::string Message;

  PipelineError() = default;
  PipelineError(ErrorCode Code, std::string Message)
      : Code(Code), Message(std::move(Message)) {}

  bool isSuccess() const { return Code == ErrorCode::Success; }
};

/// Value-or-error: holds either a successfully computed T or the
/// PipelineError that prevented computing it.
///
/// Accessors follow one contract across all three specializations:
/// `ok()` / `operator bool` test for success, `*`/`->`/`value()`
/// require success, `error()`/`message()` require failure, and
/// `code()` is always callable (ErrorCode::Success when ok).
template <typename T> class Expected {
public:
  /// Success: wraps the computed value.
  Expected(T Value) : Storage(std::move(Value)) {}
  /// Failure: wraps the error (which must carry a non-Success code).
  Expected(PipelineError Err) : Storage(std::move(Err)) {
    assert(!error().isSuccess() && "error-state Expected needs a code");
  }

  /// True when a value is present.
  bool ok() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return ok(); }

  T &operator*() {
    assert(ok());
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(ok());
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }
  const T &value() const { return **this; }

  const PipelineError &error() const {
    assert(!ok());
    return std::get<PipelineError>(Storage);
  }
  ErrorCode code() const { return ok() ? ErrorCode::Success : error().Code; }
  const std::string &message() const { return error().Message; }

private:
  std::variant<T, PipelineError> Storage;
};

/// Reference specialization: stage accessors hand out references to
/// session-owned cached intermediates without copying them.
template <typename T> class Expected<T &> {
public:
  Expected(T &Value) : Ptr(&Value) {}
  Expected(PipelineError Err) : Err(std::move(Err)) {
    assert(!this->Err.isSuccess() && "error-state Expected needs a code");
  }

  bool ok() const { return Ptr != nullptr; }
  explicit operator bool() const { return ok(); }

  T &operator*() const {
    assert(ok());
    return *Ptr;
  }
  T *operator->() const { return &**this; }
  T &value() const { return **this; }

  const PipelineError &error() const {
    assert(!ok());
    return Err;
  }
  ErrorCode code() const { return ok() ? ErrorCode::Success : Err.Code; }
  const std::string &message() const { return error().Message; }

private:
  T *Ptr = nullptr;
  PipelineError Err;
};

/// Success-or-error for stages with no value payload.
template <> class Expected<void> {
public:
  Expected() = default;
  Expected(PipelineError Err) : Err(std::move(Err)) {
    assert(!this->Err.isSuccess() && "error-state Expected needs a code");
  }

  bool ok() const { return Err.isSuccess(); }
  explicit operator bool() const { return ok(); }

  const PipelineError &error() const {
    assert(!ok());
    return Err;
  }
  ErrorCode code() const { return Err.Code; }
  const std::string &message() const { return error().Message; }

private:
  PipelineError Err;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_EXPECTED_H
