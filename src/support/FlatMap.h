//===- support/FlatMap.h - Open-addressing hash map -------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal open-addressing (linear probing) hash map for integral
/// keys, used where std::map's node allocations dominate — the
/// reversed-replay MemoryImage runs millions of load/apply operations
/// per detection pass.  Insert-only (no erase), contiguous storage,
/// power-of-two capacity.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_FLATMAP_H
#define PERFPLAY_SUPPORT_FLATMAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace perfplay {

/// SplitMix64 finalizer: a cheap, well-mixed hash for integral keys.
inline uint64_t hashInteger(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Insert-only open-addressing hash map from an integral \p KeyT to
/// \p ValueT.  Equality is content equality (key sets and their values),
/// independent of insertion order.
template <typename KeyT, typename ValueT> class FlatMap {
public:
  size_t size() const { return NumUsed; }
  bool empty() const { return NumUsed == 0; }

  /// Pointer to the value of \p Key, or nullptr when absent.
  const ValueT *find(KeyT Key) const {
    if (Slots.empty())
      return nullptr;
    size_t I = slotOf(Key);
    while (Slots[I].Used) {
      if (Slots[I].Key == Key)
        return &Slots[I].Value;
      I = (I + 1) & (Slots.size() - 1);
    }
    return nullptr;
  }

  /// Reference to the value of \p Key, default-constructed on first use.
  ValueT &operator[](KeyT Key) {
    growIfNeeded();
    size_t I = slotOf(Key);
    while (Slots[I].Used) {
      if (Slots[I].Key == Key)
        return Slots[I].Value;
      I = (I + 1) & (Slots.size() - 1);
    }
    Slots[I].Used = true;
    Slots[I].Key = Key;
    Slots[I].Value = ValueT();
    ++NumUsed;
    return Slots[I].Value;
  }

  /// Inserts {Key, Value} if absent.  Returns true when newly inserted.
  bool insert(KeyT Key, ValueT Value) {
    growIfNeeded();
    size_t I = slotOf(Key);
    while (Slots[I].Used) {
      if (Slots[I].Key == Key)
        return false;
      I = (I + 1) & (Slots.size() - 1);
    }
    Slots[I].Used = true;
    Slots[I].Key = Key;
    Slots[I].Value = Value;
    ++NumUsed;
    return true;
  }

  /// Calls Fn(Key, Value) for every entry, in unspecified order.
  template <typename Fn> void forEach(Fn F) const {
    for (const Slot &S : Slots)
      if (S.Used)
        F(S.Key, S.Value);
  }

  bool operator==(const FlatMap &RHS) const {
    if (NumUsed != RHS.NumUsed)
      return false;
    for (const Slot &S : Slots) {
      if (!S.Used)
        continue;
      const ValueT *Other = RHS.find(S.Key);
      if (!Other || !(*Other == S.Value))
        return false;
    }
    return true;
  }

  bool operator!=(const FlatMap &RHS) const { return !(*this == RHS); }

private:
  struct Slot {
    KeyT Key = KeyT();
    ValueT Value = ValueT();
    bool Used = false;
  };

  size_t slotOf(KeyT Key) const {
    return static_cast<size_t>(hashInteger(static_cast<uint64_t>(Key))) &
           (Slots.size() - 1);
  }

  void growIfNeeded() {
    if (Slots.empty())
      rehash(16);
    else if (NumUsed * 4 >= Slots.size() * 3)
      rehash(Slots.size() * 2);
  }

  void rehash(size_t NewCapacity) {
    std::vector<Slot> Old;
    Old.swap(Slots);
    Slots.resize(NewCapacity);
    for (Slot &S : Old) {
      if (!S.Used)
        continue;
      size_t I = slotOf(S.Key);
      while (Slots[I].Used)
        I = (I + 1) & (Slots.size() - 1);
      Slots[I] = std::move(S);
    }
  }

  std::vector<Slot> Slots;
  size_t NumUsed = 0;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_FLATMAP_H
