//===- support/Rng.h - Deterministic pseudo-random generation ---*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable pseudo-random number generation used by the
/// workload generators and the ORIG-S replay scheduler.  Every consumer of
/// randomness in PerfPlay takes an explicit seed so that traces, replays
/// and benchmarks are reproducible run-to-run.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_RNG_H
#define PERFPLAY_SUPPORT_RNG_H

#include <cstdint>

namespace perfplay {

/// Mixes a 64-bit value through the SplitMix64 finalizer.
///
/// Useful as a stateless hash for deterministic tie-breaking (e.g. the
/// ORIG-S scheduler hashes (seed, lock, arrival) to break grant ties).
uint64_t splitMix64(uint64_t X);

/// Small, fast, deterministic PRNG (xoshiro256** 1.0).
///
/// Not cryptographic; chosen for speed, quality and a tiny state that can
/// be seeded from a single 64-bit value via SplitMix64 expansion.
class Rng {
public:
  explicit Rng(uint64_t Seed);

  /// Returns the next raw 64-bit sample.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound).  \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive.  Requires Lo <= Hi.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

  /// Samples an index in [0, N) according to non-negative weights.
  ///
  /// \p Weights points at \p N weights; their sum must be positive.
  unsigned nextWeighted(const double *Weights, unsigned N);

private:
  uint64_t State[4];
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_RNG_H
