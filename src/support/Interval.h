//===- support/Interval.h - Source line-range arithmetic --------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed integer intervals over source line numbers.  Algorithm 2 (ULCP
/// fusion) asks whether two code regions share code (the paper's binary
/// operator "sqcap") and conflates them when they do ("sqcup"); both are
/// interval operations once a code region is reduced to a file id plus a
/// line range.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_INTERVAL_H
#define PERFPLAY_SUPPORT_INTERVAL_H

#include <cstdint>

namespace perfplay {

/// A closed interval [Begin, End] of source lines.  Begin > End encodes
/// the empty interval.
struct LineInterval {
  uint32_t Begin = 1;
  uint32_t End = 0;

  LineInterval() = default;
  LineInterval(uint32_t Begin, uint32_t End) : Begin(Begin), End(End) {}

  bool empty() const { return Begin > End; }

  /// Number of lines covered; 0 when empty.
  uint32_t size() const { return empty() ? 0 : End - Begin + 1; }

  bool contains(uint32_t Line) const { return Begin <= Line && Line <= End; }

  bool operator==(const LineInterval &RHS) const {
    return (empty() && RHS.empty()) ||
           (Begin == RHS.Begin && End == RHS.End);
  }
};

/// Returns true if the intervals share at least one line (the paper's
/// "involve the shared region of the code").
bool overlaps(const LineInterval &A, const LineInterval &B);

/// Intersection; empty when disjoint.
LineInterval intersect(const LineInterval &A, const LineInterval &B);

/// Smallest interval covering both inputs (the paper's conflation).
/// Requires at least one input to be non-empty.
LineInterval unite(const LineInterval &A, const LineInterval &B);

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_INTERVAL_H
