//===- support/MappedFile.h - Read-only memory-mapped file -------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An RAII read-only view of a file's bytes.  On POSIX systems the
/// file is mmap'd (zero-copy: the parser reads straight out of the
/// page cache, and the kernel drops clean pages under memory
/// pressure); elsewhere the file is read into an owned buffer, so
/// callers get the same data()/size() contract everywhere.
///
/// Production-scale binary traces are the motivating consumer: the
/// borrowed-buffer parseTraceBinary overload (trace/TraceIO.h) walks
/// the mapping directly, skipping the whole-file std::vector copy the
/// stream loader makes.
///
/// Caveat inherent to mmap: if another process truncates the file
/// while a mapping is live, touching pages past the new end raises
/// SIGBUS (a crash, not a parse error).  Callers loading files that
/// may be rewritten in place concurrently should prefer the stream
/// path (TraceLoadMode::Stream / --no-mmap), which degrades to a
/// typed parse error instead.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_MAPPEDFILE_H
#define PERFPLAY_SUPPORT_MAPPEDFILE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace perfplay {

/// Read-only bytes of one file, memory-mapped when the platform
/// supports it.  Movable, not copyable; the view dies with the object.
class MappedFile {
public:
  MappedFile() = default;
  ~MappedFile() { close(); }

  MappedFile(MappedFile &&Other) noexcept { *this = std::move(Other); }
  MappedFile &operator=(MappedFile &&Other) noexcept;
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;

  /// True when this build maps files instead of reading them.
  static bool supportsMapping();

  /// What \p Path names, for mapping purposes.
  enum class PathKind {
    /// stat() failed — let open() produce the diagnostic.
    Missing,
    /// A regular file; mapping works.
    Regular,
    /// Exists but cannot be usefully mapped (pipe, FIFO, device).
    /// Opening one of these can block and consumes a pipe's read end,
    /// so loaders must not even attempt it.
    Other,
  };
  static PathKind classifyPath(const std::string &Path);

  /// True when \p Path names something the platform can usefully mmap
  /// (a regular file on a POSIX build).  Pipes, FIFOs, and devices
  /// report false so Auto-mode loaders stream them instead of
  /// consuming their read end on a doomed map attempt.
  static bool isMappablePath(const std::string &Path) {
    return classifyPath(Path) == PathKind::Regular;
  }

  /// Opens \p Path and makes its bytes addressable.  On failure
  /// returns false, sets \p Err, and leaves the object closed.
  /// Reopening an already-open object closes the previous view first.
  bool open(const std::string &Path, std::string &Err);

  /// Releases the mapping (or fallback buffer).  Idempotent.
  void close();

  /// First byte of the file; nullptr when closed or the file is empty.
  const uint8_t *data() const { return Data; }
  size_t size() const { return Size; }

  /// True when data() points into a real mmap (not the read fallback).
  bool isMapped() const { return Mapped; }

private:
  const uint8_t *Data = nullptr;
  size_t Size = 0;
  bool Mapped = false;
  /// Owns the bytes on platforms without mmap (and for empty files).
  std::vector<uint8_t> Fallback;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_MAPPEDFILE_H
