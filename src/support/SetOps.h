//===- support/SetOps.h - Sorted-vector set operations ----------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set operations over sorted, de-duplicated vectors.  PerfPlay keeps
/// read/write sets and locksets as sorted vectors (cache-friendly, cheap
/// intersection), the representation Algorithm 1 and RULE 4 need.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_SETOPS_H
#define PERFPLAY_SUPPORT_SETOPS_H

#include <vector>

namespace perfplay {

/// Returns true if the sorted ranges \p A and \p B share an element.
template <typename T>
bool sortedIntersects(const std::vector<T> &A, const std::vector<T> &B) {
  auto I = A.begin(), J = B.begin();
  while (I != A.end() && J != B.end()) {
    if (*I < *J)
      ++I;
    else if (*J < *I)
      ++J;
    else
      return true;
  }
  return false;
}

/// Returns the intersection of the sorted ranges \p A and \p B.
template <typename T>
std::vector<T> sortedIntersection(const std::vector<T> &A,
                                  const std::vector<T> &B) {
  std::vector<T> Out;
  auto I = A.begin(), J = B.begin();
  while (I != A.end() && J != B.end()) {
    if (*I < *J) {
      ++I;
    } else if (*J < *I) {
      ++J;
    } else {
      Out.push_back(*I);
      ++I;
      ++J;
    }
  }
  return Out;
}

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_SETOPS_H
