//===- support/SetOps.h - Sorted-vector set operations ----------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set operations over sorted, de-duplicated vectors.  PerfPlay keeps
/// read/write sets and locksets as sorted vectors (cache-friendly, cheap
/// intersection), the representation Algorithm 1 and RULE 4 need.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_SETOPS_H
#define PERFPLAY_SUPPORT_SETOPS_H

#include <algorithm>
#include <cstddef>
#include <vector>

namespace perfplay {

namespace detail {

/// Intersection test for skewed sizes: every element of \p Small is
/// located in \p Large by exponential (galloping) probing from the last
/// position, so the cost is O(|Small| * log(gap)) instead of
/// O(|Small| + |Large|).
///
/// Loop invariants (audited; pinned by SetOpsTest's adversarial
/// regression cases and the fuzz cross-check against
/// std::set_intersection):
///
///  * At the top of each Small iteration, every element of Large
///    before \c Lo is `< Val` — established for the first iteration by
///    `Lo == begin` and re-established for the next, strictly larger
///    (or, with duplicates, equal) value because \c Lo finishes each
///    iteration at `lower_bound(Val)`, so a duplicate of a missing
///    value re-probes an empty window rather than a stale one.
///  * Inside the widening loop, `*Hi < Val` holds whenever \c Lo is
///    advanced to `Hi + 1`, and the probe distance is clamped to the
///    remaining tail (`min(Step, Remain)`), so the final widening step
///    can never overshoot `Large.end()`.
///  * The early `return false` on `Lo == Large.end()` is sound: it is
///    reached only when every remaining element of Large is `< Val`,
///    and Small being sorted ascending means no later value can be
///    smaller.
template <typename T>
bool gallopingIntersects(const std::vector<T> &Small,
                         const std::vector<T> &Large) {
  auto Lo = Large.begin();
  for (const T &Val : Small) {
    // Exponentially widen [Lo, Hi) until *Hi >= Val (or Hi hits end);
    // elements before Lo are known to be < Val.
    size_t Step = 1;
    auto Hi = Lo;
    while (Hi != Large.end() && *Hi < Val) {
      Lo = Hi + 1;
      size_t Remain = static_cast<size_t>(Large.end() - Lo);
      Hi = Lo + std::min(Step, Remain);
      Step <<= 1;
    }
    // [Lo, Hi) is the window with everything before Lo < Val and
    // (when Hi != end) *Hi >= Val; lower_bound leaves Lo at the first
    // element >= Val, which doubles as the start for the next value.
    Lo = std::lower_bound(Lo, Hi, Val);
    if (Lo == Large.end())
      return false;
    if (!(Val < *Lo))
      return true;
  }
  return false;
}

} // namespace detail

/// Returns true if the sorted ranges \p A and \p B share an element.
/// Skewed inputs (read/write sets of a tiny section against a huge one)
/// take a galloping early-exit path; balanced inputs use a linear merge.
template <typename T>
bool sortedIntersects(const std::vector<T> &A, const std::vector<T> &B) {
  if (A.empty() || B.empty())
    return false;
  // Disjoint value ranges cannot intersect.
  if (A.back() < B.front() || B.back() < A.front())
    return false;
  if (A.size() * 8 < B.size())
    return detail::gallopingIntersects(A, B);
  if (B.size() * 8 < A.size())
    return detail::gallopingIntersects(B, A);
  auto I = A.begin(), J = B.begin();
  while (I != A.end() && J != B.end()) {
    if (*I < *J)
      ++I;
    else if (*J < *I)
      ++J;
    else
      return true;
  }
  return false;
}

/// Returns the intersection of the sorted ranges \p A and \p B.
/// Duplicate semantics match std::set_intersection: a value occurring
/// m times in \p A and n times in \p B appears min(m, n) times.
template <typename T>
std::vector<T> sortedIntersection(const std::vector<T> &A,
                                  const std::vector<T> &B) {
  std::vector<T> Out;
  auto I = A.begin(), J = B.begin();
  while (I != A.end() && J != B.end()) {
    if (*I < *J) {
      ++I;
    } else if (*J < *I) {
      ++J;
    } else {
      Out.push_back(*I);
      ++I;
      ++J;
    }
  }
  return Out;
}

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_SETOPS_H
