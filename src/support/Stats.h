//===- support/Stats.h - Running sample statistics --------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming sample statistics (Welford accumulation) used to summarize
/// repeated replays: Figure 13's error bars are the stddev over ten
/// replays of the same trace under each enforcement scheme.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_STATS_H
#define PERFPLAY_SUPPORT_STATS_H

#include <cstdint>

namespace perfplay {

/// Accumulates mean / variance / min / max over a stream of samples.
class RunningStats {
public:
  /// Folds one sample into the accumulator.
  void add(double Sample);

  /// Number of samples seen so far.
  uint64_t count() const { return Count; }

  /// Arithmetic mean; 0 when empty.
  double mean() const { return Count ? Mean : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Smallest sample; 0 when empty.
  double min() const { return Count ? Min : 0.0; }

  /// Largest sample; 0 when empty.
  double max() const { return Count ? Max : 0.0; }

  /// Max - min, the spread drawn as the error bar in Figure 13.
  double range() const { return Count ? Max - Min : 0.0; }

private:
  uint64_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_STATS_H
