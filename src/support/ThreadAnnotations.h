//===- support/ThreadAnnotations.h - Clang TSA-annotated locks --*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capability-annotated synchronization primitives for Clang Thread
/// Safety Analysis (-Wthread-safety), plus the attribute macros the
/// rest of the codebase uses to declare its locking contracts.
///
/// Every mutex, condition variable and lock guard in the concurrent
/// layers (support/ThreadPool, the detect verdict cache, core/Engine
/// batch fan-out, runtime/Recorder) goes through these wrappers so the
/// clang CI lane can prove, at compile time, that
///
///  * every GUARDED_BY member is only touched with its mutex held,
///  * every REQUIRES function is only called with the right locks,
///  * scoped guards release exactly what they acquired.
///
/// On GCC (or any compiler without the attributes) the macros expand
/// to nothing and the wrappers compile down to the underlying std
/// primitives — zero overhead, identical behavior.
///
/// Conventions (enforced in review + the clang -Werror lane):
///  * Data members protected by a lock carry GUARDED_BY(TheMutex).
///  * Functions expecting a lock held carry REQUIRES(TheMutex).
///  * Public entry points that take a lock internally carry
///    EXCLUDES(TheMutex) so self-deadlock is a compile error.
///  * The rare deliberate exemptions (e.g. a serial-mode fast path
///    that provably has no second thread) are marked
///    NO_THREAD_SAFETY_ANALYSIS with a comment justifying them.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_THREADANNOTATIONS_H
#define PERFPLAY_SUPPORT_THREADANNOTATIONS_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// -- Attribute macros --------------------------------------------------------
//
// The standard Clang Thread Safety Analysis vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).  Guarded by
// __has_attribute so GCC, MSVC and older clangs compile them away.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PERFPLAY_TSA(x) __attribute__((x))
#endif
#endif
#ifndef PERFPLAY_TSA
#define PERFPLAY_TSA(x) // no-op outside clang
#endif

/// Declares a class to be a lockable capability ("mutex" by role).
#define CAPABILITY(x) PERFPLAY_TSA(capability(x))
/// Declares an RAII class whose lifetime holds a capability.
#define SCOPED_CAPABILITY PERFPLAY_TSA(scoped_lockable)
/// Data member readable/writable only with \p x held.
#define GUARDED_BY(x) PERFPLAY_TSA(guarded_by(x))
/// Pointer member whose pointee is protected by \p x.
#define PT_GUARDED_BY(x) PERFPLAY_TSA(pt_guarded_by(x))
/// Lock-ordering edges: this capability is acquired before/after the
/// listed ones, so an inversion is a compile-time diagnostic.
#define ACQUIRED_BEFORE(...) PERFPLAY_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PERFPLAY_TSA(acquired_after(__VA_ARGS__))
/// Caller must hold the listed capabilities (exclusively / shared).
#define REQUIRES(...) PERFPLAY_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...)                                                 \
  PERFPLAY_TSA(requires_shared_capability(__VA_ARGS__))
/// Function acquires the listed capabilities and returns holding them.
#define ACQUIRE(...) PERFPLAY_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) PERFPLAY_TSA(acquire_shared_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define RELEASE(...) PERFPLAY_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) PERFPLAY_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) PERFPLAY_TSA(release_generic_capability(__VA_ARGS__))
/// Function attempts the acquisition; first argument is the success
/// return value.
#define TRY_ACQUIRE(...) PERFPLAY_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...)                                              \
  PERFPLAY_TSA(try_acquire_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the listed capabilities (self-deadlock guard
/// for entry points that acquire them internally).
#define EXCLUDES(...) PERFPLAY_TSA(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held; teaches the analysis
/// a fact it cannot derive (e.g. after an adopt).
#define ASSERT_CAPABILITY(x) PERFPLAY_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) PERFPLAY_TSA(assert_shared_capability(x))
/// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) PERFPLAY_TSA(lock_returned(x))
/// Opt-out for deliberate, documented exemptions only.
#define NO_THREAD_SAFETY_ANALYSIS PERFPLAY_TSA(no_thread_safety_analysis)

namespace perfplay {

/// An annotated std::mutex.  Prefer MutexLock over manual
/// lock()/unlock() pairs; the manual form exists for adoption into
/// std guards and for the analysis-visible primitives themselves.
class CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() ACQUIRE() { Mu.lock(); }
  void unlock() RELEASE() { Mu.unlock(); }
  bool tryLock() TRY_ACQUIRE(true) { return Mu.try_lock(); }

  /// Declares (to the analysis and to readers) that the calling
  /// context holds this mutex when that fact arrived through a channel
  /// the analysis cannot see.  Compiles to nothing.
  void assertHeld() const ASSERT_CAPABILITY(this) {}

private:
  friend class CondVar;
  std::mutex Mu;
};

/// An annotated std::shared_mutex (reader/writer capability).  No
/// current subsystem needs one, but the serve daemon's shared caches
/// (ROADMAP item 1) will; providing it here keeps "every lock is born
/// annotated" true when they land.
class CAPABILITY("shared_mutex") SharedMutex {
public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex &) = delete;
  SharedMutex &operator=(const SharedMutex &) = delete;

  void lock() ACQUIRE() { Mu.lock(); }
  void unlock() RELEASE() { Mu.unlock(); }
  bool tryLock() TRY_ACQUIRE(true) { return Mu.try_lock(); }

  void lockShared() ACQUIRE_SHARED() { Mu.lock_shared(); }
  void unlockShared() RELEASE_SHARED() { Mu.unlock_shared(); }
  bool tryLockShared() TRY_ACQUIRE_SHARED(true) {
    return Mu.try_lock_shared();
  }

  void assertHeld() const ASSERT_CAPABILITY(this) {}
  void assertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

private:
  std::shared_mutex Mu;
};

/// RAII exclusive lock over a Mutex — the annotated replacement for
/// std::lock_guard<std::mutex> (which the analysis cannot see
/// through).
class SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) ACQUIRE(M) : M(M) { M.lock(); }
  ~MutexLock() RELEASE() { M.unlock(); }

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  Mutex &M;
};

/// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY SharedMutexReadLock {
public:
  explicit SharedMutexReadLock(SharedMutex &M) ACQUIRE_SHARED(M) : M(M) {
    M.lockShared();
  }
  ~SharedMutexReadLock() RELEASE_GENERIC() { M.unlockShared(); }

  SharedMutexReadLock(const SharedMutexReadLock &) = delete;
  SharedMutexReadLock &operator=(const SharedMutexReadLock &) = delete;

private:
  SharedMutex &M;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY SharedMutexWriteLock {
public:
  explicit SharedMutexWriteLock(SharedMutex &M) ACQUIRE(M) : M(M) {
    M.lock();
  }
  ~SharedMutexWriteLock() RELEASE() { M.unlock(); }

  SharedMutexWriteLock(const SharedMutexWriteLock &) = delete;
  SharedMutexWriteLock &operator=(const SharedMutexWriteLock &) = delete;

private:
  SharedMutex &M;
};

/// An annotated condition variable over Mutex.
///
/// wait() takes the Mutex it atomically releases/reacquires and is
/// REQUIRES-annotated, so waiting without the lock held is a compile
/// error.  There is deliberately no predicate overload: the idiomatic
/// caller shape is an explicit
///
///   MutexLock Lock(Mu);
///   while (!condition)        // condition reads GUARDED_BY(Mu) state
///     Cv.wait(Mu);
///
/// loop, which keeps the predicate's guarded reads inside a scope the
/// analysis verifies (a predicate lambda would be analyzed as an
/// unannotated function and reported as unguarded access).
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  /// Blocks until notified.  \p M must be held; it is released for
  /// the duration of the sleep and held again on return (which the
  /// analysis models as "still held across the call" — the transient
  /// release is invisible to it, exactly like std::condition_variable).
  void wait(Mutex &M) REQUIRES(M) {
    std::unique_lock<std::mutex> Inner(M.Mu, std::adopt_lock);
    Cv.wait(Inner);
    Inner.release(); // Ownership stays with the caller's guard.
  }

  /// Blocks until notified or \p Timeout elapses, whichever comes
  /// first (the record-flusher's periodic-drain idiom: sleep one
  /// interval, wake early on shutdown).  Same locking contract as
  /// wait(); spurious wakeups are possible, so callers re-check their
  /// guarded condition either way.
  void waitFor(Mutex &M, std::chrono::milliseconds Timeout) REQUIRES(M) {
    std::unique_lock<std::mutex> Inner(M.Mu, std::adopt_lock);
    Cv.wait_for(Inner, Timeout);
    Inner.release(); // Ownership stays with the caller's guard.
  }

  void notifyOne() { Cv.notify_one(); }
  void notifyAll() { Cv.notify_all(); }

private:
  std::condition_variable Cv;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_THREADANNOTATIONS_H
