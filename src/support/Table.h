//===- support/Table.h - Plain-text table rendering -------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text table rendering.  Every bench binary
/// regenerates one of the paper's tables or figure series as rows; this
/// helper keeps their output uniform and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_TABLE_H
#define PERFPLAY_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace perfplay {

/// Accumulates rows of string cells and renders them with columns padded
/// to the widest cell.  The first added row is treated as the header and
/// is separated from the body by a dashed rule.
class Table {
public:
  /// Appends one row.  Rows may have differing cell counts; rendering
  /// pads to the widest row.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table; each line ends with '\n'.
  std::string render() const;

  /// Number of rows added so far (header included).
  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_TABLE_H
