//===- support/AddrSet.cpp - Chunked bitmap address sets -------------------===//

#include "support/AddrSet.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace perfplay;

size_t AddrSet::findChunk(uint64_t Key) const {
  auto It = std::lower_bound(Keys.begin(), Keys.end(), Key);
  if (It == Keys.end() || *It != Key)
    return Keys.size();
  return static_cast<size_t>(It - Keys.begin());
}

void AddrSet::promote(Block &B) {
  assert(!B.IsBitmap && "already a bitmap");
  uint64_t Words[WordsPerChunk] = {};
  for (unsigned I = 0; I != B.Count; ++I)
    Words[B.Small[I] >> 6] |= 1ull << (B.Small[I] & 63);
  std::memcpy(B.Words, Words, sizeof(Words));
  B.IsBitmap = true;
}

void AddrSet::demote(Block &B) {
  assert(B.IsBitmap && B.Count <= SmallMax && "bitmap too dense to demote");
  uint16_t Small[SmallMax];
  unsigned N = 0;
  for (unsigned W = 0; W != WordsPerChunk; ++W) {
    uint64_t Word = B.Words[W];
    while (Word != 0) {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
      Small[N++] = static_cast<uint16_t>(64 * W + Bit);
      Word &= Word - 1;
    }
  }
  assert(N == B.Count && "bitmap population out of sync");
  std::memcpy(B.Small, Small, N * sizeof(uint16_t));
  B.IsBitmap = false;
}

bool AddrSet::blockContains(const Block &B, uint16_t Off) {
  if (B.IsBitmap)
    return (B.Words[Off >> 6] & (1ull << (Off & 63))) != 0;
  const uint16_t *End = B.Small + B.Count;
  const uint16_t *It = std::lower_bound(B.Small, End, Off);
  return It != End && *It == Off;
}

bool AddrSet::contains(Value V) const {
  size_t C = findChunk(V >> ChunkShift);
  if (C == Keys.size())
    return false;
  return blockContains(Blocks[C], static_cast<uint16_t>(V & (ChunkSize - 1)));
}

bool AddrSet::insert(Value V) {
  const uint64_t Key = V >> ChunkShift;
  const uint16_t Off = static_cast<uint16_t>(V & (ChunkSize - 1));
  auto It = std::lower_bound(Keys.begin(), Keys.end(), Key);
  size_t C = static_cast<size_t>(It - Keys.begin());
  if (It == Keys.end() || *It != Key) {
    Keys.insert(It, Key);
    Blocks.insert(Blocks.begin() + static_cast<ptrdiff_t>(C), Block());
  }
  Block &B = Blocks[C];
  if (B.IsBitmap) {
    uint64_t &Word = B.Words[Off >> 6];
    const uint64_t Bit = 1ull << (Off & 63);
    if (Word & Bit)
      return false;
    Word |= Bit;
  } else {
    uint16_t *End = B.Small + B.Count;
    uint16_t *Pos = std::lower_bound(B.Small, End, Off);
    if (Pos != End && *Pos == Off)
      return false;
    if (B.Count == SmallMax) {
      promote(B);
      B.Words[Off >> 6] |= 1ull << (Off & 63);
    } else {
      std::memmove(Pos + 1, Pos,
                   static_cast<size_t>(End - Pos) * sizeof(uint16_t));
      *Pos = Off;
    }
  }
  ++B.Count;
  ++NumValues;
  Digest |= digestBit(V);
  return true;
}

bool AddrSet::erase(Value V) {
  size_t C = findChunk(V >> ChunkShift);
  if (C == Keys.size())
    return false;
  const uint16_t Off = static_cast<uint16_t>(V & (ChunkSize - 1));
  Block &B = Blocks[C];
  if (B.IsBitmap) {
    uint64_t &Word = B.Words[Off >> 6];
    const uint64_t Bit = 1ull << (Off & 63);
    if (!(Word & Bit))
      return false;
    Word &= ~Bit;
    --B.Count;
    if (B.Count <= DemoteAt)
      demote(B);
  } else {
    uint16_t *End = B.Small + B.Count;
    uint16_t *Pos = std::lower_bound(B.Small, End, Off);
    if (Pos == End || *Pos != Off)
      return false;
    std::memmove(Pos, Pos + 1,
                 static_cast<size_t>(End - Pos - 1) * sizeof(uint16_t));
    --B.Count;
  }
  --NumValues;
  // Digest bits are shared between members; keep the superset.
  if (B.Count == 0) {
    Keys.erase(Keys.begin() + static_cast<ptrdiff_t>(C));
    Blocks.erase(Blocks.begin() + static_cast<ptrdiff_t>(C));
  }
  return true;
}

void AddrSet::clear() {
  Keys.clear();
  Blocks.clear();
  NumValues = 0;
  Digest = 0;
}

AddrSet AddrSet::fromSorted(const std::vector<Value> &Sorted) {
  AddrSet Set;
  size_t I = 0;
  const size_t N = Sorted.size();
  while (I != N) {
    const uint64_t Key = Sorted[I] >> ChunkShift;
    // [I, RunEnd): the members of this chunk, still possibly with
    // duplicates.
    size_t RunEnd = I;
    while (RunEnd != N && (Sorted[RunEnd] >> ChunkShift) == Key)
      ++RunEnd;
    assert((Set.Keys.empty() || Set.Keys.back() < Key) &&
           "fromSorted requires ascending input");
    Set.Keys.push_back(Key);
    Set.Blocks.emplace_back();
    Block &B = Set.Blocks.back();
    // Fill small first; promote mid-run if the chunk turns out dense.
    for (size_t J = I; J != RunEnd; ++J) {
      const uint16_t Off =
          static_cast<uint16_t>(Sorted[J] & (ChunkSize - 1));
      if (!B.IsBitmap) {
        if (B.Count != 0 && B.Small[B.Count - 1] == Off)
          continue; // Duplicate in the input.
        if (B.Count == SmallMax) {
          promote(B);
        } else {
          B.Small[B.Count++] = Off;
          ++Set.NumValues;
          Set.Digest |= digestBit(Sorted[J]);
          continue;
        }
      }
      uint64_t &Word = B.Words[Off >> 6];
      const uint64_t Bit = 1ull << (Off & 63);
      if (Word & Bit)
        continue; // Duplicate in the input.
      Word |= Bit;
      ++B.Count;
      ++Set.NumValues;
      Set.Digest |= digestBit(Sorted[J]);
    }
    I = RunEnd;
  }
  return Set;
}

bool AddrSet::blocksIntersect(const Block &A, const Block &B) {
  if (A.IsBitmap && B.IsBitmap) {
    // Word-parallel AND; accumulating into one OR keeps the loop
    // branch-free so the compiler vectorizes it.
    uint64_t Any = 0;
    for (unsigned W = 0; W != WordsPerChunk; ++W)
      Any |= A.Words[W] & B.Words[W];
    return Any != 0;
  }
  if (!A.IsBitmap && !B.IsBitmap) {
    unsigned I = 0, J = 0;
    while (I != A.Count && J != B.Count) {
      if (A.Small[I] < B.Small[J])
        ++I;
      else if (B.Small[J] < A.Small[I])
        ++J;
      else
        return true;
    }
    return false;
  }
  const Block &Probe = A.IsBitmap ? B : A; // The small block.
  const Block &Map = A.IsBitmap ? A : B;   // The bitmap.
  for (unsigned I = 0; I != Probe.Count; ++I)
    if (Map.Words[Probe.Small[I] >> 6] & (1ull << (Probe.Small[I] & 63)))
      return true;
  return false;
}

size_t AddrSet::blocksIntersectCount(const Block &A, const Block &B) {
  size_t N = 0;
  if (A.IsBitmap && B.IsBitmap) {
    for (unsigned W = 0; W != WordsPerChunk; ++W)
      N += static_cast<size_t>(
          __builtin_popcountll(A.Words[W] & B.Words[W]));
    return N;
  }
  if (!A.IsBitmap && !B.IsBitmap) {
    unsigned I = 0, J = 0;
    while (I != A.Count && J != B.Count) {
      if (A.Small[I] < B.Small[J]) {
        ++I;
      } else if (B.Small[J] < A.Small[I]) {
        ++J;
      } else {
        ++N;
        ++I;
        ++J;
      }
    }
    return N;
  }
  const Block &Probe = A.IsBitmap ? B : A;
  const Block &Map = A.IsBitmap ? A : B;
  for (unsigned I = 0; I != Probe.Count; ++I)
    if (Map.Words[Probe.Small[I] >> 6] & (1ull << (Probe.Small[I] & 63)))
      ++N;
  return N;
}

bool AddrSet::intersects(const AddrSet &RHS) const {
  if (empty() || RHS.empty())
    return false;
  // O(1) rejection: a shared value sets the same digest bit in both.
  if ((Digest & RHS.Digest) == 0)
    return false;
  size_t I = 0, J = 0;
  while (I != Keys.size() && J != RHS.Keys.size()) {
    if (Keys[I] < RHS.Keys[J]) {
      ++I;
    } else if (RHS.Keys[J] < Keys[I]) {
      ++J;
    } else {
      if (blocksIntersect(Blocks[I], RHS.Blocks[J]))
        return true;
      ++I;
      ++J;
    }
  }
  return false;
}

size_t AddrSet::intersectCount(const AddrSet &RHS) const {
  if (empty() || RHS.empty() || (Digest & RHS.Digest) == 0)
    return 0;
  size_t N = 0;
  size_t I = 0, J = 0;
  while (I != Keys.size() && J != RHS.Keys.size()) {
    if (Keys[I] < RHS.Keys[J]) {
      ++I;
    } else if (RHS.Keys[J] < Keys[I]) {
      ++J;
    } else {
      N += blocksIntersectCount(Blocks[I], RHS.Blocks[J]);
      ++I;
      ++J;
    }
  }
  return N;
}

std::vector<AddrSet::Value> AddrSet::toSorted() const {
  std::vector<Value> Out;
  Out.reserve(NumValues);
  forEach([&](Value V) { Out.push_back(V); });
  return Out;
}

AddrSet::Stats AddrSet::stats() const {
  Stats S;
  for (const Block &B : Blocks)
    (B.IsBitmap ? S.BitmapBlocks : S.SmallBlocks) += 1;
  return S;
}

bool AddrSet::operator==(const AddrSet &RHS) const {
  if (NumValues != RHS.NumValues || Keys != RHS.Keys)
    return false;
  for (size_t C = 0; C != Blocks.size(); ++C) {
    const Block &A = Blocks[C];
    const Block &B = RHS.Blocks[C];
    if (A.Count != B.Count)
      return false;
    if (A.IsBitmap == B.IsBitmap) {
      if (A.IsBitmap) {
        if (std::memcmp(A.Words, B.Words, sizeof(A.Words)) != 0)
          return false;
      } else if (std::memcmp(A.Small, B.Small,
                             A.Count * sizeof(uint16_t)) != 0) {
        return false;
      }
    } else {
      // Mixed shapes (possible after erase-driven demotion on one
      // side): compare memberships.
      const Block &Small = A.IsBitmap ? B : A;
      const Block &Map = A.IsBitmap ? A : B;
      for (unsigned I = 0; I != Small.Count; ++I)
        if (!blockContains(Map, Small.Small[I]))
          return false;
    }
  }
  return true;
}
