//===- support/AddrSet.h - Chunked bitmap address sets ----------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-level chunked bitmap set over 64-bit values, built for the
/// detection phase's read/write-set intersections (Algorithm 1 / RULE
/// 4).  The value space is split into 1024-value chunks addressed by a
/// sorted vector of chunk keys; each chunk stores its members either as
/// a small sorted array of 10-bit offsets or, past a density threshold,
/// as a 1024-bit bitmap whose intersection is a word-parallel uint64
/// AND loop the compiler auto-vectorizes.  A 64-bit membership digest
/// rejects most disjoint pairs in O(1) before any block is walked.
///
/// Compared to the sorted-vector sets of support/SetOps.h, an
/// `intersects` over two wide dense sets costs O(values / 64) word ANDs
/// instead of O(values) element comparisons, and sets that populate
/// different chunks intersect in O(chunks) key comparisons regardless
/// of how many values each chunk holds.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_ADDRSET_H
#define PERFPLAY_SUPPORT_ADDRSET_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace perfplay {

/// Sorted-chunk bitmap set over `uint64_t` values (addresses, lock
/// ids).  Insertion-ordered building is supported, but the cheapest
/// construction is \ref fromSorted over an already sorted,
/// de-duplicated vector — the form critical-section read/write sets
/// and locksets are canonicalized into anyway.
///
/// Determinism: the set is a pure value container.  Iteration
/// (\ref forEach, \ref toSorted) is always in ascending value order,
/// and \ref intersects / \ref intersectCount agree exactly with the
/// sorted-vector ground truth (`sortedIntersects`), which the
/// detection pipeline exploits to keep `SetRepr::Sorted` and
/// `SetRepr::Bitset` verdicts byte-identical.
class AddrSet {
public:
  /// Element type.  AddrId and LockId both convert losslessly.
  using Value = uint64_t;

  /// log2 of the chunk width: each chunk covers 1024 consecutive
  /// values, i.e. one 1024-bit bitmap (16 uint64 words).
  static constexpr unsigned ChunkShift = 10;
  /// Values per chunk (1024).
  static constexpr unsigned ChunkSize = 1u << ChunkShift;
  /// uint64 words per bitmap block (16).
  static constexpr unsigned WordsPerChunk = ChunkSize / 64;
  /// Maximum population of a small sorted-array block.  Inserting the
  /// (SmallMax+1)-th member of a chunk promotes it to a bitmap block;
  /// erasing a bitmap block down to \ref DemoteAt members demotes it
  /// back (the gap is hysteresis: a set oscillating around the
  /// boundary must not rewrite its block on every mutation).
  /// 64 two-byte offsets occupy exactly the 128 bytes of the bitmap
  /// they alias in the block union, so promotion never grows a block.
  static constexpr unsigned SmallMax = 64;
  /// Bitmap population at or below which \ref erase demotes the block
  /// back to the small sorted-array form.
  static constexpr unsigned DemoteAt = SmallMax / 2;

  AddrSet() = default;

  /// Builds a set from a sorted vector.  Duplicates are tolerated
  /// (inserted once); this is the O(n) bulk-construction path used by
  /// CsIndex for the canonicalized read/write sets.
  static AddrSet fromSorted(const std::vector<Value> &Sorted);

  /// Inserts \p V.  Returns true if it was newly inserted.  A small
  /// block holding SmallMax members auto-promotes to a bitmap.
  bool insert(Value V);

  /// Erases \p V.  Returns true if it was present.  A bitmap block
  /// whose population drops to \ref DemoteAt demotes back to a small
  /// block; an emptied chunk is removed entirely.  The digest is
  /// *not* shrunk (see \ref digest).
  bool erase(Value V);

  /// Membership test: two binary searches (chunk key, then offset) or
  /// one bit probe.
  bool contains(Value V) const;

  /// Number of values in the set.
  size_t size() const { return NumValues; }
  bool empty() const { return NumValues == 0; }

  /// Number of populated chunks.  `size() / chunkCount()` is the mean
  /// chunk occupancy — the density signal SetRepr::Auto uses to decide
  /// whether the word-parallel walk beats the sorted-vector merge.
  size_t chunkCount() const { return Keys.size(); }

  /// Removes every value.
  void clear();

  /// 64-bit membership digest (a one-hash Bloom filter): every member
  /// sets one digest bit, so `(a.digest() & b.digest()) == 0` proves
  /// the sets disjoint without touching any block.  The digest is a
  /// conservative superset after \ref erase (bits are never cleared,
  /// since other members may share them); it is exact for sets built
  /// by insertion only.
  uint64_t digest() const { return Digest; }

  /// True if the sets share at least one value.  O(1) digest
  /// rejection, then a merge over the sorted chunk keys; only chunks
  /// present in both sets compare blocks (word-parallel AND for
  /// bitmap×bitmap).
  bool intersects(const AddrSet &RHS) const;

  /// Number of shared values.  Same walk as \ref intersects with
  /// popcounts instead of early exit.
  size_t intersectCount(const AddrSet &RHS) const;

  /// Invokes \p F(Value) for every member in ascending order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t C = 0; C != Keys.size(); ++C) {
      const Value Base = Keys[C] << ChunkShift;
      const Block &B = Blocks[C];
      if (!B.IsBitmap) {
        for (unsigned I = 0; I != B.Count; ++I)
          F(Base + B.Small[I]);
      } else {
        for (unsigned W = 0; W != WordsPerChunk; ++W) {
          uint64_t Word = B.Words[W];
          while (Word != 0) {
            unsigned Bit = static_cast<unsigned>(__builtin_ctzll(Word));
            F(Base + 64 * W + Bit);
            Word &= Word - 1;
          }
        }
      }
    }
  }

  /// The members as a sorted, de-duplicated vector.
  std::vector<Value> toSorted() const;

  /// Block-shape counters (introspection for tests and benchmarks).
  struct Stats {
    size_t SmallBlocks = 0;
    size_t BitmapBlocks = 0;
  };
  Stats stats() const;

  bool operator==(const AddrSet &RHS) const;
  bool operator!=(const AddrSet &RHS) const { return !(*this == RHS); }

private:
  /// One chunk: either a sorted array of up to SmallMax 10-bit offsets
  /// or a 1024-bit bitmap.  The union makes both forms 128 bytes, so
  /// promotion/demotion rewrites the block in place.
  struct Block {
    uint16_t Count = 0;
    bool IsBitmap = false;
    union {
      uint16_t Small[SmallMax];
      uint64_t Words[WordsPerChunk];
    };
    Block() : Small{} {}
  };

  static bool blocksIntersect(const Block &A, const Block &B);
  static size_t blocksIntersectCount(const Block &A, const Block &B);
  static bool blockContains(const Block &B, uint16_t Off);

  /// Digest bit for \p V: top 6 bits of a Fibonacci-hash mix, so
  /// nearby addresses (the common case: consecutive heap offsets)
  /// spread over the whole digest.
  static uint64_t digestBit(Value V) {
    return 1ull << ((V * 0x9E3779B97F4A7C15ull) >> 58);
  }

  /// Index of the chunk holding key \p Key, or Keys.size() if absent.
  size_t findChunk(uint64_t Key) const;

  /// Rewrites small block \p B as a bitmap (Count unchanged).
  static void promote(Block &B);
  /// Rewrites bitmap block \p B as a small block; requires
  /// B.Count <= SmallMax.
  static void demote(Block &B);

  std::vector<uint64_t> Keys; ///< Sorted chunk keys.
  std::vector<Block> Blocks;  ///< Parallel to Keys.
  size_t NumValues = 0;
  uint64_t Digest = 0;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_ADDRSET_H
