//===- support/StringPool.cpp - Arena-backed string interner ---------------===//

#include "support/StringPool.h"

#include <cstring>

using namespace perfplay;

/// Arena block size.  Large enough that symbol-heavy traces allocate a
/// handful of blocks, small enough that a near-empty pool stays cheap.
static constexpr size_t ChunkSize = 1 << 16;

std::string_view StringPool::copyToArena(std::string_view S) {
  if (S.empty())
    return std::string_view();
  if (S.size() > ChunkCap - ChunkUsed) {
    size_t Cap = S.size() > ChunkSize ? S.size() : ChunkSize;
    Chunks.push_back(std::make_unique<char[]>(Cap));
    ChunkCap = Cap;
    ChunkUsed = 0;
  }
  char *Dst = Chunks.back().get() + ChunkUsed;
  std::memcpy(Dst, S.data(), S.size());
  ChunkUsed += S.size();
  return std::string_view(Dst, S.size());
}

StringId StringPool::insert(std::string_view S, bool Borrow) {
  auto It = Index.find(S);
  if (It != Index.end())
    return It->second;
  std::string_view Stored = Borrow ? S : copyToArena(S);
  StringId Id = static_cast<StringId>(Strings.size());
  Strings.push_back(Stored);
  Index.emplace(Stored, Id);
  if (Borrow) {
    Accounting.BorrowedBytes += S.size();
    ++Accounting.NumBorrowed;
  } else {
    Accounting.OwnedBytes += S.size();
    ++Accounting.NumOwned;
  }
  return Id;
}

void StringPool::copyFrom(const StringPool &Other) {
  // Deep copy preserving ids: every string — borrowed or owned in the
  // source — is re-owned by this pool's arena, so the copy carries no
  // lifetime dependency on the source's backing buffers.
  Strings.reserve(Other.Strings.size());
  Index.reserve(Other.Strings.size());
  for (std::string_view S : Other.Strings) {
    std::string_view Stored = copyToArena(S);
    StringId Id = static_cast<StringId>(Strings.size());
    Strings.push_back(Stored);
    Index.emplace(Stored, Id);
    Accounting.OwnedBytes += S.size();
    ++Accounting.NumOwned;
  }
}
