//===- support/StringPool.h - Arena-backed string interner ------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An arena-backed string interner handing out stable integer handles.
///
/// Symbol-heavy traces (the paper's Table 1 / Table 2 workloads, where
/// every lock and callsite carries a name) used to pay one
/// `std::string` heap allocation per name per parse.  The pool
/// collapses that: each distinct string is stored once and referred to
/// everywhere by a dense `StringId`, so
///
///  - name *equality* is an integer compare (the detector's dedup path
///    and the recorder's site lookup never touch characters),
///  - name *storage* is one arena, freed wholesale with the pool,
///  - and in *borrowed* mode a string is not copied at all: the pool
///    records a `std::string_view` into caller-owned bytes — the
///    zero-copy trace parse interns views pointing straight into the
///    `support/MappedFile` mapping that the session pins
///    (`Engine::openSessionFromFile`).
///
/// Interning is content-based: `intern()` and `internBorrowed()` return
/// the same id for equal strings regardless of how the first occurrence
/// was stored.  Handed-out `std::string_view`s point into heap chunks
/// (or the caller's borrowed buffer), so they remain valid when the
/// pool — or a `Trace` owning it — is moved.
///
/// Copying a pool deep-copies every string into the copy's own arena
/// (borrowed strings become owned), so a copied `Trace` — e.g. the
/// transformed trace `transformTrace` builds — never extends the
/// lifetime requirements of the original's backing buffer.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_STRINGPOOL_H
#define PERFPLAY_SUPPORT_STRINGPOOL_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace perfplay {

/// Dense handle of one interned string; indexes the pool that produced
/// it.  Ids are assigned in first-intern order, starting at 0.
using StringId = uint32_t;

/// Sentinel for "no string" (e.g. a default-constructed LockInfo).
inline constexpr StringId InvalidStringId = 0xFFFFFFFFu;

/// Arena-backed string interner.  Movable and copyable (copies re-own
/// every string); not thread-safe — one pool belongs to one Trace.
class StringPool {
public:
  StringPool() = default;

  // Moves must reset the source's arena cursor: with defaulted moves
  // the source's Chunks vector empties but ChunkUsed/ChunkCap would
  // keep their old values, so a later intern() on the moved-from pool
  // would take the "fits in current chunk" path and dereference
  // Chunks.back() on an empty vector.
  StringPool(StringPool &&Other) noexcept
      : Strings(std::move(Other.Strings)), Index(std::move(Other.Index)),
        Chunks(std::move(Other.Chunks)), ChunkUsed(Other.ChunkUsed),
        ChunkCap(Other.ChunkCap), Accounting(Other.Accounting) {
    Other.reset();
  }
  StringPool &operator=(StringPool &&Other) noexcept {
    if (this != &Other) {
      Strings = std::move(Other.Strings);
      Index = std::move(Other.Index);
      Chunks = std::move(Other.Chunks);
      ChunkUsed = Other.ChunkUsed;
      ChunkCap = Other.ChunkCap;
      Accounting = Other.Accounting;
      Other.reset();
    }
    return *this;
  }

  StringPool(const StringPool &Other) { copyFrom(Other); }
  StringPool &operator=(const StringPool &Other) {
    if (this != &Other) {
      *this = StringPool();
      copyFrom(Other);
    }
    return *this;
  }

  /// Interns \p S with owned storage: the first occurrence is copied
  /// into the pool's arena.  Returns the id of the (possibly
  /// pre-existing) entry with this content.
  StringId intern(std::string_view S) { return insert(S, /*Borrow=*/false); }

  /// Interns \p S with borrowed storage: the first occurrence stores
  /// the view as-is, copying nothing.  The caller guarantees the
  /// pointed-to bytes outlive the pool (the mmap-parse path pins the
  /// file mapping in the session for exactly this reason).  Content
  /// already interned — owned or borrowed — is returned unchanged.
  StringId internBorrowed(std::string_view S) {
    return insert(S, /*Borrow=*/true);
  }

  /// The string behind \p Id.  InvalidStringId (and any out-of-range
  /// id) resolves to the empty view, so renderers need no special
  /// casing for unnamed entries.
  std::string_view str(StringId Id) const {
    return Id < Strings.size() ? Strings[Id] : std::string_view();
  }

  /// Number of distinct strings interned.
  uint32_t size() const { return static_cast<uint32_t>(Strings.size()); }

  bool empty() const { return Strings.empty(); }

  /// Storage accounting, used by the ingest bench to assert the
  /// zero-copy property: a borrowed-mode parse must report
  /// OwnedBytes == 0 (no per-name heap copy was made).
  struct Stats {
    /// Bytes copied into the arena (owned strings only).
    size_t OwnedBytes = 0;
    /// Bytes referenced in caller-owned buffers (borrowed strings).
    size_t BorrowedBytes = 0;
    uint32_t NumOwned = 0;
    uint32_t NumBorrowed = 0;
  };
  Stats stats() const { return Accounting; }

private:
  /// Returns the pool to its freshly-constructed state (used on the
  /// source of a move so it remains safely usable).
  void reset() {
    Strings.clear();
    Index.clear();
    Chunks.clear();
    ChunkUsed = 0;
    ChunkCap = 0;
    Accounting = Stats();
  }

  StringId insert(std::string_view S, bool Borrow);

  /// Copies \p S into the arena and returns the stable view.
  std::string_view copyToArena(std::string_view S);

  void copyFrom(const StringPool &Other);

  /// Id-indexed views: into Chunks for owned strings, into the
  /// caller's buffer for borrowed ones.
  std::vector<std::string_view> Strings;
  /// Content -> id; keys view the same storage as Strings.
  std::unordered_map<std::string_view, StringId> Index;
  /// Arena blocks.  unique_ptr-held so views stay valid across pool
  /// moves and vector growth.
  std::vector<std::unique_ptr<char[]>> Chunks;
  size_t ChunkUsed = 0;
  size_t ChunkCap = 0;
  Stats Accounting;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_STRINGPOOL_H
