//===- support/ThreadPool.h - Fork-join worker pool --------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fork-join worker pool shared by Engine::analyzeBatch and the
/// parallel ULCP detector.  One pool owns N-1 background threads; the
/// calling thread participates as worker 0, so a pool of size 1 runs
/// everything inline with no thread ever spawned.  parallelFor hands out
/// items via an atomic counter (dynamic load balancing) and blocks until
/// every item completed, which keeps the caller free to merge results
/// deterministically afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_THREADPOOL_H
#define PERFPLAY_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace perfplay {

/// Fork-join pool.  Construction spawns size()-1 threads which idle
/// until parallelFor is called; destruction joins them.  parallelFor
/// calls must not be nested or issued concurrently from several threads.
class ThreadPool {
public:
  /// A pool of \p NumThreads workers (including the calling thread).
  /// 0 means one per hardware thread.
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total workers, calling thread included.  Always >= 1.
  unsigned size() const { return NumWorkers; }

  /// Runs \p Fn(Index) for every Index in [0, NumItems), spread
  /// dynamically over the pool plus the calling thread.  Returns when
  /// all items finished.
  void parallelFor(size_t NumItems, const std::function<void(size_t)> &Fn);

  /// Resolves a user-facing thread-count knob: 0 = one per hardware
  /// thread (at least 1), capped at 256 (absurd requests must not
  /// spawn thousands of OS threads) and by \p NumItems so small inputs
  /// never spawn idle workers.
  static unsigned resolveThreadCount(unsigned Requested, size_t NumItems);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::mutex Mu;
  std::condition_variable StartCv;
  std::condition_variable DoneCv;
  /// Current job; valid while ActiveWorkers != 0.
  const std::function<void(size_t)> *Job = nullptr;
  size_t JobItems = 0;
  std::atomic<size_t> NextItem{0};
  /// Incremented per parallelFor call; wakes idle workers exactly once
  /// per job.
  uint64_t Generation = 0;
  unsigned ActiveWorkers = 0;
  bool Stopping = false;
  unsigned NumWorkers = 1;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_THREADPOOL_H
