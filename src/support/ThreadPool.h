//===- support/ThreadPool.h - Fork-join worker pool --------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fork-join worker pool shared by Engine::analyzeBatch and the
/// parallel ULCP detector.  One pool owns N-1 background threads; the
/// calling thread participates as worker 0, so a pool of size 1 runs
/// everything inline with no thread ever spawned.  parallelFor hands out
/// items via an atomic counter (dynamic load balancing) and blocks until
/// every item completed, which keeps the caller free to merge results
/// deterministically afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SUPPORT_THREADPOOL_H
#define PERFPLAY_SUPPORT_THREADPOOL_H

#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace perfplay {

/// Fork-join pool.  Construction spawns size()-1 threads which idle
/// until parallelFor is called; destruction joins them.  parallelFor
/// calls must not be nested or issued concurrently from several threads.
class ThreadPool {
public:
  /// A pool of \p NumThreads workers (including the calling thread).
  /// 0 means one per hardware thread.
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total workers, calling thread included.  Always >= 1.
  unsigned size() const { return NumWorkers; }

  /// Runs \p Fn(Index) for every Index in [0, NumItems), spread
  /// dynamically over the pool plus the calling thread.  Returns when
  /// all items finished.  EXCLUDES(Mu) makes calling this from inside
  /// a job (which would self-deadlock on the pool lock) a compile
  /// error in the clang -Wthread-safety lane.
  void parallelFor(size_t NumItems, const std::function<void(size_t)> &Fn)
      EXCLUDES(Mu);

  /// Resolves a user-facing thread-count knob: 0 = one per hardware
  /// thread (at least 1), capped at 256 (absurd requests must not
  /// spawn thousands of OS threads) and by \p NumItems so small inputs
  /// never spawn idle workers.
  static unsigned resolveThreadCount(unsigned Requested, size_t NumItems);

private:
  void workerLoop() EXCLUDES(Mu);

  std::vector<std::thread> Workers;
  /// Guards every job-handoff field below; StartCv/DoneCv wait on it.
  /// Leaf lock: nothing else is ever acquired while it is held.
  Mutex Mu;
  /// Signaled once per parallelFor call (and on shutdown) to wake idle
  /// workers.
  CondVar StartCv;
  /// Signaled by the last worker finishing a job.
  CondVar DoneCv;
  /// Current job; valid while ActiveWorkers != 0.
  const std::function<void(size_t)> *Job GUARDED_BY(Mu) = nullptr;
  size_t JobItems GUARDED_BY(Mu) = 0;
  /// Work-distribution counter: deliberately *not* guarded — workers
  /// claim items with fetch_add outside the lock.
  std::atomic<size_t> NextItem{0};
  /// Incremented per parallelFor call; wakes idle workers exactly once
  /// per job.
  uint64_t Generation GUARDED_BY(Mu) = 0;
  unsigned ActiveWorkers GUARDED_BY(Mu) = 0;
  bool Stopping GUARDED_BY(Mu) = false;
  unsigned NumWorkers = 1;
};

} // namespace perfplay

#endif // PERFPLAY_SUPPORT_THREADPOOL_H
