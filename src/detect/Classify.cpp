//===- detect/Classify.cpp - Algorithm 1: ULCP identification --------------===//

#include "detect/Classify.h"

#include "support/SetOps.h"

using namespace perfplay;

UlcpKind perfplay::classifyPairStatic(const CriticalSection &C1,
                                      const CriticalSection &C2) {
  // Line 1: a pair is a null-lock when either section touches no shared
  // memory at all.
  if ((C1.readsEmpty() && C1.writesEmpty()) ||
      (C2.readsEmpty() && C2.writesEmpty()))
    return UlcpKind::NullLock;

  // Line 3: read-read when neither section writes.
  if (C1.writesEmpty() && C2.writesEmpty())
    return UlcpKind::ReadRead;

  // Line 5: disjoint-write when no read-write, write-read or
  // write-write intersection exists.
  if (!sortedIntersects(C1.Reads, C2.Writes) &&
      !sortedIntersects(C1.Writes, C2.Reads) &&
      !sortedIntersects(C1.Writes, C2.Writes))
    return UlcpKind::DisjointWrite;

  // Line 8: statically conflicting; the reversed replay decides whether
  // the conflict is benign.
  return UlcpKind::TrueContention;
}

UlcpKind perfplay::classifyPair(const Trace &Tr, const MemoryImage &Initial,
                                const CriticalSection &C1,
                                const CriticalSection &C2) {
  UlcpKind Static = classifyPairStatic(C1, C2);
  if (Static != UlcpKind::TrueContention)
    return Static;
  if (isBenignPair(Tr, Initial, C1, C2))
    return UlcpKind::Benign;
  return UlcpKind::TrueContention;
}
