//===- detect/Classify.cpp - Algorithm 1: ULCP identification --------------===//

#include "detect/Classify.h"

#include "support/SetOps.h"

using namespace perfplay;

namespace {

/// Both sets small enough that the sorted-vector merge's constant
/// factor beats the chunk-header walk.  Either path is correct; Auto
/// uses this threshold to pick.  Kept equal to the CsIndex gate that
/// decides whether a section derives AddrSet mirrors at all, so every
/// intersection Auto routes to the bitmap path has built sets.
constexpr size_t AutoSortedMax = CriticalSection::TinySetMax;

/// Mean chunk occupancy at which the bitmap walk pays for its
/// per-chunk overhead.  Benchmarked on the wide-set corpus: dense
/// interleaved sets (512/chunk) run >100x faster word-parallel, while
/// strided sparse sets (8/chunk) are ~1.4x slower than the plain
/// merge, so Auto routes on density.
constexpr size_t AutoDenseOccupancy = 16;

bool isDense(const AddrSet &S) {
  return S.size() >= AutoDenseOccupancy * S.chunkCount();
}

/// One read/write-set intersection in the representation \p Repr
/// selects.  \p AV/\p BV are the sorted vectors, \p AS/\p BS their
/// AddrSet mirrors.
bool reprIntersects(const std::vector<AddrId> &AV, const AddrSet &AS,
                    const std::vector<AddrId> &BV, const AddrSet &BS,
                    SetRepr Repr) {
  switch (Repr) {
  case SetRepr::Sorted:
    return sortedIntersects(AV, BV);
  case SetRepr::Bitset:
    return AS.intersects(BS);
  case SetRepr::Auto:
    // Tiny sets: the merge's constant factor wins (and sortedIntersects
    // already early-exits on disjoint value ranges).  Otherwise take
    // the word-parallel path when at least one side is chunk-dense;
    // two genuinely sparse wide sets merge fastest as vectors.
    if (AV.size() <= AutoSortedMax && BV.size() <= AutoSortedMax)
      return sortedIntersects(AV, BV);
    if (isDense(AS) || isDense(BS))
      return AS.intersects(BS);
    return sortedIntersects(AV, BV);
  }
  return sortedIntersects(AV, BV);
}

/// True when one section waited on a condvar the other signaled: the
/// pair is causally ordered by the condition variable, so the lock
/// contention between them is load-bearing — never an ULCP.
bool condOrdered(const CriticalSection &C1, const CriticalSection &C2) {
  auto intersects = [](const std::vector<LockId> &A,
                       const std::vector<LockId> &B) {
    size_t I = 0, J = 0;
    while (I != A.size() && J != B.size()) {
      if (A[I] < B[J])
        ++I;
      else if (B[J] < A[I])
        ++J;
      else
        return true;
    }
    return false;
  };
  return intersects(C1.CondWaits, C2.CondSignals) ||
         intersects(C2.CondWaits, C1.CondSignals);
}

} // namespace

UlcpKind perfplay::classifyPairStatic(const CriticalSection &C1,
                                      const CriticalSection &C2,
                                      SetRepr Repr) {
  // A wait/signal edge between the sections means their ordering is
  // semantically required; report true contention without looking at
  // memory (and classifyPair skips the reversed replay, which would
  // wrongly call a value-commuting but causally ordered pair benign).
  if (condOrdered(C1, C2))
    return UlcpKind::TrueContention;

  // Two reader-side (Shared-mode) sections on the same rwlock never
  // exclude each other — the pair is ULCP-free by construction,
  // regardless of what the sections read.
  if (C1.Mode == AcquireMode::Shared && C2.Mode == AcquireMode::Shared)
    return UlcpKind::ReadRead;

  // Line 1: a pair is a null-lock when either section touches no shared
  // memory at all.
  if ((C1.readsEmpty() && C1.writesEmpty()) ||
      (C2.readsEmpty() && C2.writesEmpty()))
    return UlcpKind::NullLock;

  // Line 3: read-read when neither section writes.
  if (C1.writesEmpty() && C2.writesEmpty())
    return UlcpKind::ReadRead;

  // A hand-built section without derived AddrSets cannot take the
  // bitset path; results are identical either way.
  if (Repr != SetRepr::Sorted && !(C1.setsBuilt() && C2.setsBuilt()))
    Repr = SetRepr::Sorted;

  // Line 5: disjoint-write when no read-write, write-read or
  // write-write intersection exists.
  if (!reprIntersects(C1.Reads, C1.ReadSet, C2.Writes, C2.WriteSet, Repr) &&
      !reprIntersects(C1.Writes, C1.WriteSet, C2.Reads, C2.ReadSet, Repr) &&
      !reprIntersects(C1.Writes, C1.WriteSet, C2.Writes, C2.WriteSet, Repr))
    return UlcpKind::DisjointWrite;

  // Line 8: statically conflicting; the reversed replay decides whether
  // the conflict is benign.
  return UlcpKind::TrueContention;
}

UlcpKind perfplay::classifyPair(const Trace &Tr, const MemoryImage &Initial,
                                const CriticalSection &C1,
                                const CriticalSection &C2, SetRepr Repr) {
  UlcpKind Static = classifyPairStatic(C1, C2, Repr);
  if (Static != UlcpKind::TrueContention)
    return Static;
  // A condvar wait/signal edge is a semantic ordering: the reversed
  // replay could find the swapped execution value-identical and call
  // the pair benign, but reordering it would still break the program.
  if (condOrdered(C1, C2))
    return UlcpKind::TrueContention;
  if (isBenignPair(Tr, Initial, C1, C2))
    return UlcpKind::Benign;
  return UlcpKind::TrueContention;
}
