//===- detect/WindowedDetect.h - Bounded-memory ULCP detection --*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-core ULCP detection: a WindowedDetector consumes a trace as a
/// stream of per-thread event windows (any sizes, any interleaving, as
/// long as each thread's events arrive in program order) and produces a
/// DetectResult **bit-identical** to running detectUlcps over the whole
/// trace — same pairs in the same order, same counts, same stats —
/// without ever materializing the event streams.
///
/// What makes that possible is the same observation the dedup cache
/// exploits (detect/SectionKey.h): classification only sees a critical
/// section through its signature — lock, site, and the ordered stream
/// of shared accesses (read addresses; write address/operator/operand)
/// between acquire and release.  Recorded read *values* are fed from
/// the memory image, never from the section, so two sections with equal
/// signatures are interchangeable in every verdict.  The detector
/// therefore keeps, per distinct signature, one **representative**
/// copy of the section's events in a small arena trace, and per dynamic
/// section only three words of metadata (lock, signature key, thread —
/// the global id is derived).  Everything else streams through and is
/// dropped at the window boundary:
///
///  - still-open critical sections carry across windows as per-thread
///    stacks of buffered events (bounded by the widest section, not the
///    trace),
///  - the whole-trace initial memory image (MemoryImage::initialOf,
///    which the reversed replay seeds from) is folded incrementally:
///    per address, the candidate first access of the lowest-numbered
///    accessing thread — exactly the winner of the serial thread-major
///    scan,
///  - finish() rebuilds the per-lock pairing order (grant schedule when
///    present, global-id order otherwise) from the metadata alone and
///    replays detectUlcps' serial pair enumeration, classifying each
///    distinct signature pair once against the representatives.
///
/// Peak memory is O(open sections + distinct signatures + addresses +
/// 12 bytes per dynamic section) — the out-of-core ingest bench gates
/// it at < 25% of the trace file's size.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DETECT_WINDOWEDDETECT_H
#define PERFPLAY_DETECT_WINDOWEDDETECT_H

#include "detect/CriticalSection.h"
#include "detect/Detector.h"
#include "support/FlatMap.h"
#include "trace/Trace.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace perfplay {

/// Streaming ULCP detector with whole-trace verdict parity.
///
/// Protocol: construct with the detection options, feed every thread's
/// event stream through addEvents() in program order (windows of
/// different threads may interleave arbitrarily; a window may split a
/// critical section — it stays open on the thread's stack), then call
/// finish() with the trace's side tables.  Single-threaded; options
/// requesting detection workers (DetectOptions::NumThreads) are
/// accepted but classification runs serially — the result is identical
/// by detectUlcps' determinism guarantee.
class WindowedDetector {
public:
  explicit WindowedDetector(DetectOptions Opts);
  ~WindowedDetector();

  WindowedDetector(const WindowedDetector &) = delete;
  WindowedDetector &operator=(const WindowedDetector &) = delete;

  /// Feeds \p N events of thread \p T (the next window of its stream).
  /// Returns false on a structural error (release without acquire,
  /// mismatched release lock) with \p Err set; the detector is dead
  /// afterwards.
  bool addEvents(ThreadId T, const Event *Events, size_t N,
                 std::string &Err);

  /// Ends the stream and runs the pair enumeration.  \p Tables supplies
  /// the lock table (pairing iterates lock ids) and the recorded grant
  /// schedule when the trace carries one — pass the full trace, or a
  /// WindowedReader's tables() (whose Threads are empty; events were
  /// already streamed).  On success fills \p Out with the DetectResult
  /// detectUlcps would produce on the whole trace; on failure returns
  /// false with \p Err set.
  bool finish(const Trace &Tables, DetectResult &Out, std::string &Err);

  /// Dynamic critical sections closed so far.
  uint64_t numSections() const { return TotalSections; }

  /// Distinct section signatures interned so far (== representative
  /// sections retained in the arena).
  uint32_t numSignatures() const { return NumKeys; }

  /// Events currently buffered on open-section stacks — the carry
  /// across the active window boundary.
  uint64_t openEvents() const { return OpenEvents; }

  /// High-water mark of openEvents() over the whole stream.
  uint64_t peakOpenEvents() const { return PeakOpenEvents; }

private:
  struct SignatureMap;

  /// One still-open critical section on a thread's stack, buffering its
  /// events (acquire through release, nested sections included
  /// verbatim) until the close decides whether they become a
  /// representative.
  struct OpenSection {
    uint32_t PerThreadIdx = 0;
    LockId Lock = InvalidId;
    CodeSiteId Site = InvalidId;
    /// Acquisition mode of the opening event (Shared for rwlock
    /// readers); part of the signature and the representative.
    AcquireMode Mode = AcquireMode::Exclusive;
    std::vector<Event> Buf;
  };

  struct ThreadState {
    std::vector<OpenSection> Stack;
    /// Per closed-or-open section, in per-thread (acquire) order:
    /// the acquired lock, and the signature key (filled at close).
    std::vector<LockId> Locks;
    std::vector<uint32_t> KeyIds;
  };

  /// Candidate seed for the incremental initial image: the first
  /// access to an address by its lowest-numbered accessing thread.
  struct FirstAccess {
    uint32_t Thread = 0;
    uint8_t IsRead = 0;
    uint64_t Value = 0;
  };

  ThreadState &stateOf(ThreadId T);
  void noteAccess(ThreadId T, const Event &E);
  /// Interns the closed section's signature (creating a representative
  /// on first sight) and returns its key id.
  uint32_t closeSection(OpenSection &&Top);

  DetectOptions Opts;
  std::string StreamErr;

  std::vector<ThreadState> Threads;
  uint64_t TotalSections = 0;
  uint64_t OpenEvents = 0;
  uint64_t PeakOpenEvents = 0;

  /// Signature -> dense key id (pimpl: the map's key type is internal).
  std::unique_ptr<SignatureMap> Signatures;
  uint32_t NumKeys = 0;
  /// One representative CriticalSection per key, with its events in
  /// ArenaTr.Threads[0].
  Trace ArenaTr;
  std::vector<CriticalSection> Reps;

  /// Incremental MemoryImage::initialOf state (only maintained when
  /// the options request the reversed replay).
  FlatMap<AddrId, FirstAccess> First;

  /// Failed trylock attempts per lock, folded as the stream arrives
  /// (the lock table is unknown until finish(), hence a map).
  FlatMap<LockId, uint64_t> TryFails;
};

} // namespace perfplay

#endif // PERFPLAY_DETECT_WINDOWEDDETECT_H
