//===- detect/Ulcp.cpp - ULCP pair model -----------------------------------===//

#include "detect/Ulcp.h"

using namespace perfplay;

const char *perfplay::ulcpKindName(UlcpKind Kind) {
  switch (Kind) {
  case UlcpKind::NullLock:
    return "NL";
  case UlcpKind::ReadRead:
    return "RR";
  case UlcpKind::DisjointWrite:
    return "DW";
  case UlcpKind::Benign:
    return "Benign";
  case UlcpKind::TrueContention:
    return "TLCP";
  }
  return "?";
}

void UlcpCounts::add(UlcpKind Kind) {
  switch (Kind) {
  case UlcpKind::NullLock:
    ++NullLock;
    break;
  case UlcpKind::ReadRead:
    ++ReadRead;
    break;
  case UlcpKind::DisjointWrite:
    ++DisjointWrite;
    break;
  case UlcpKind::Benign:
    ++Benign;
    break;
  case UlcpKind::TrueContention:
    ++TrueContention;
    break;
  }
}
