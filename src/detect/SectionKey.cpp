//===- detect/SectionKey.cpp - Canonical critical-section keys --------------===//

#include "detect/SectionKey.h"

#include "support/FlatMap.h"

#include <unordered_map>

using namespace perfplay;

namespace {

/// Full signature of one section, compared verbatim on hash collision.
struct Signature {
  std::vector<uint64_t> Words;

  bool operator==(const Signature &RHS) const { return Words == RHS.Words; }
};

struct SignatureHash {
  size_t operator()(const Signature &S) const {
    uint64_t H = 0x2545f4914f6cdd1dULL;
    for (uint64_t W : S.Words)
      H = hashInteger(H ^ W);
    return static_cast<size_t>(H);
  }
};

Signature signatureOf(const Trace &Tr, const CriticalSection &Cs) {
  Signature Sig;
  const auto &Events = Tr.Threads[Cs.Ref.Thread].Events;
  Sig.Words.reserve(2 + (Cs.ReleaseIdx - Cs.AcquireIdx) * 2);
  Sig.Words.push_back(Cs.Lock);
  Sig.Words.push_back(Cs.Site);
  // Shared-mode (rwlock reader) sections classify differently from
  // exclusive ones at identical bodies, so the mode is part of the
  // key.  The marker is emitted only for Shared so mutex-only
  // signatures stay word-identical to the pre-rwlock format.
  if (Cs.Mode == AcquireMode::Shared)
    Sig.Words.push_back(5);
  for (size_t I = Cs.AcquireIdx + 1; I != Cs.ReleaseIdx; ++I) {
    const Event &E = Events[I];
    if (E.Kind == EventKind::Read) {
      Sig.Words.push_back(1);
      Sig.Words.push_back(E.Addr);
    } else if (E.Kind == EventKind::Write) {
      Sig.Words.push_back(2 | (static_cast<uint64_t>(E.Op) << 8));
      Sig.Words.push_back(E.Addr);
      Sig.Words.push_back(E.Value);
    } else if (E.Kind == EventKind::CondWait) {
      Sig.Words.push_back(3);
      Sig.Words.push_back(E.Lock);
    } else if (E.Kind == EventKind::CondSignal ||
               E.Kind == EventKind::CondBroadcast) {
      Sig.Words.push_back(4);
      Sig.Words.push_back(E.Lock);
    }
    // Nested acquire/release and Compute events are invisible to both
    // Algorithm 1 and the reversed replay.
  }
  return Sig;
}

} // namespace

SectionKeyTable perfplay::internSectionKeys(const Trace &Tr,
                                            const CsIndex &Index) {
  SectionKeyTable Table;
  Table.KeyOf.resize(Index.size());
  std::unordered_map<Signature, uint32_t, SignatureHash> Interned;
  Interned.reserve(Index.size());
  for (const CriticalSection &Cs : Index.all()) {
    Signature Sig = signatureOf(Tr, Cs);
    auto It = Interned.emplace(std::move(Sig), Table.NumKeys);
    if (It.second)
      ++Table.NumKeys;
    Table.KeyOf[Cs.GlobalId] = It.first->second;
  }
  return Table;
}
