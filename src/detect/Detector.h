//===- detect/Detector.h - Whole-trace ULCP detection -----------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-trace ULCP detection: enumerate pairs of critical sections
/// protected by the same lock across threads, classify each (Algorithm
/// 1 + reversed replay), and summarize per-category counts (the rows of
/// Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DETECT_DETECTOR_H
#define PERFPLAY_DETECT_DETECTOR_H

#include "detect/Classify.h"
#include "detect/CriticalSection.h"
#include "detect/Ulcp.h"
#include "trace/Trace.h"

#include <vector>

namespace perfplay {

/// Pair-enumeration strategy.
enum class PairModeKind {
  /// Every cross-thread pair of same-lock critical sections, in the
  /// per-lock order.  This is the paper's counting mode: pairs are the
  /// basic representation and complex combinations decompose into
  /// pairs, so counts can exceed the number of dynamic acquisitions.
  AllCrossThread,
  /// Only pairs adjacent in the per-lock grant order whose sections are
  /// on different threads — the contentions that actually serialized
  /// the recorded execution.
  AdjacentCrossThread,
};

/// Detection options.
struct DetectOptions {
  PairModeKind PairMode = PairModeKind::AllCrossThread;
  /// Refine conflicting pairs via reversed replay.  When false, every
  /// statically conflicting pair counts as TrueContention.
  bool UseReversedReplay = true;
  /// Pairs whose sections are farther apart than this in the per-lock
  /// order are skipped in AllCrossThread mode (0 = unlimited).  Bounds
  /// the quadratic blow-up on lock-intensive traces.
  unsigned MaxPairDistance = 0;
};

/// Detection output: every classified pair plus totals.
struct DetectResult {
  std::vector<UlcpPair> Pairs;
  UlcpCounts Counts;

  /// Only the unnecessary pairs (everything but TrueContention).
  std::vector<UlcpPair> unnecessaryPairs() const;
};

/// Runs detection over \p Index (built from \p Tr).
DetectResult detectUlcps(const Trace &Tr, const CsIndex &Index,
                         const DetectOptions &Opts = DetectOptions());

} // namespace perfplay

#endif // PERFPLAY_DETECT_DETECTOR_H
