//===- detect/Detector.h - Whole-trace ULCP detection -----------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-trace ULCP detection: enumerate pairs of critical sections
/// protected by the same lock across threads, classify each (Algorithm
/// 1 + reversed replay), and summarize per-category counts (the rows of
/// Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DETECT_DETECTOR_H
#define PERFPLAY_DETECT_DETECTOR_H

#include "detect/Classify.h"
#include "detect/CriticalSection.h"
#include "detect/Ulcp.h"
#include "trace/Trace.h"

#include <functional>
#include <vector>

namespace perfplay {

/// Pair-enumeration strategy.
enum class PairModeKind {
  /// Every cross-thread pair of same-lock critical sections, in the
  /// per-lock order.  This is the paper's counting mode: pairs are the
  /// basic representation and complex combinations decompose into
  /// pairs, so counts can exceed the number of dynamic acquisitions.
  AllCrossThread,
  /// Only pairs adjacent in the per-lock grant order whose sections are
  /// on different threads — the contentions that actually serialized
  /// the recorded execution.
  AdjacentCrossThread,
};

/// Detection options.
struct DetectOptions {
  /// Streaming pair consumer (see Sink below).
  using PairSink = std::function<void(const UlcpPair &)>;

  PairModeKind PairMode = PairModeKind::AllCrossThread;
  /// Refine conflicting pairs via reversed replay.  When false, every
  /// statically conflicting pair counts as TrueContention.
  bool UseReversedReplay = true;
  /// Pairs whose sections are farther apart than this in the per-lock
  /// order are skipped in AllCrossThread mode (0 = unlimited).  Bounds
  /// the quadratic blow-up on lock-intensive traces.
  unsigned MaxPairDistance = 0;
  /// Worker threads for pair classification: 1 = serial, 0 = one per
  /// hardware thread.  Any value produces Pairs/Counts bit-identical
  /// to the serial enumeration (pairs are merged back in serial order).
  unsigned NumThreads = 1;
  /// Classify each distinct canonical key pair (detect/SectionKey.h:
  /// lock, site, value signature) once and reuse the verdict for every
  /// dynamic pair with the same keys — the Table 2 grouping applied to
  /// detection cost.  Verdicts are per-pair deterministic, so results
  /// are identical with or without dedup.
  bool DedupPairs = true;
  /// Read/write-set representation Algorithm 1 intersects (see
  /// detect/Classify.h).  Auto picks the chunked bitmap
  /// (support/AddrSet.h: digest rejection + word-parallel AND) for
  /// wide sets and the sorted vectors for tiny ones; Sorted pins the
  /// PR 2 galloping path, Bitset pins the bitmap path.  Verdicts are
  /// byte-identical across all three — this knob only moves time.
  SetRepr Repr = SetRepr::Auto;
  /// When set, every classified pair is delivered here — in the serial
  /// enumeration order, from the thread that called detectUlcps —
  /// instead of being materialized in DetectResult::Pairs.  Lets
  /// AllCrossThread detection over lock-heavy traces run in O(1) pair
  /// memory.  A sink installed in an Engine's default options is
  /// shared by every Engine::analyzeBatch worker (one concurrent
  /// detection per trace), so it must be thread-safe in that setting.
  PairSink Sink;
  /// Accumulate only DetectResult::Counts; Pairs stays empty.  (A Sink,
  /// when also set, still receives every pair.)
  bool CountsOnly = false;
};

/// Side statistics of one detection run (for benchmarks and tuning;
/// not part of the bit-identical result surface).
struct DetectStats {
  /// Distinct canonical section keys (0 when dedup was off).
  uint64_t NumSectionKeys = 0;
  /// Pair classifications actually computed.  With dedup this is at
  /// most the number of distinct key pairs (parallel racing may
  /// recompute a key pair; the verdict is identical either way).
  uint64_t NumClassified = 0;
};

/// Detection output: every classified pair plus totals.
struct DetectResult {
  /// Classified pairs in per-lock enumeration order.  Empty when the
  /// run used a Sink or CountsOnly.
  std::vector<UlcpPair> Pairs;
  UlcpCounts Counts;
  DetectStats Stats;
  /// Failed trylock attempts per lock (sized to the trace's lock
  /// table): contention edges witnessed on the lock without any
  /// critical section opening, so they participate in per-lock
  /// contention accounting but never in pair classification.
  std::vector<uint64_t> TryFailPerLock;
  /// Total failed trylock attempts across all locks.
  uint64_t TryFailEdges = 0;

  /// Only the unnecessary pairs (everything but TrueContention).
  std::vector<UlcpPair> unnecessaryPairs() const;
};

/// Runs detection over \p Index (built from \p Tr).
DetectResult detectUlcps(const Trace &Tr, const CsIndex &Index,
                         const DetectOptions &Opts = DetectOptions());

} // namespace perfplay

#endif // PERFPLAY_DETECT_DETECTOR_H
