//===- detect/SectionKey.h - Canonical critical-section keys ----*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical (interned) keys over critical sections: two sections get
/// the same key iff they are indistinguishable to pair classification —
/// same lock, same code site, and the same value signature (the ordered
/// stream of shared-memory operations between acquire and release,
/// which determines both the Algorithm-1 read/write sets and the
/// reversed-replay outcome).  This is the code analogue of the paper's
/// Table 2 grouping: dynamic pair counts are quadratic, but distinct
/// key pairs are few, so the detector classifies each key pair once and
/// reuses the verdict.
///
/// Signatures are pure integers end to end: the lock and site words are
/// table ids whose *names* live in the trace's string pool
/// (support/StringPool.h), so no string is hashed or compared anywhere
/// in the dedup hot path — name equality collapsed to id equality the
/// moment the parser interned the tables.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DETECT_SECTIONKEY_H
#define PERFPLAY_DETECT_SECTIONKEY_H

#include "detect/CriticalSection.h"
#include "trace/Trace.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace perfplay {

/// Interned section keys for one trace: KeyOf[GlobalId] is a dense id
/// in [0, numKeys) identifying the section's equivalence class.
struct SectionKeyTable {
  std::vector<uint32_t> KeyOf;
  uint32_t NumKeys = 0;

  /// Packs the key pair {A, B} order-independently (classification is
  /// symmetric in the two sections) into one 64-bit verdict-cache key.
  static uint64_t pairKey(uint32_t A, uint32_t B) {
    if (A > B)
      std::swap(A, B);
    return (static_cast<uint64_t>(A) << 32) | B;
  }
};

/// Interns every critical section of \p Index.
///
/// The signature covers (Lock, Site) plus each Read's address and each
/// Write's (address, operand, operator).  Read *values* are excluded on
/// purpose: the reversed replay feeds reads from the memory image, not
/// from the recorded value, so they cannot influence a verdict — and
/// excluding them merges more dynamic sections into one key.
SectionKeyTable internSectionKeys(const Trace &Tr, const CsIndex &Index);

} // namespace perfplay

#endif // PERFPLAY_DETECT_SECTIONKEY_H
