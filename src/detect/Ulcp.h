//===- detect/Ulcp.h - ULCP pair model ---------------------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Unnecessary Lock Contention Pair (ULCP) vocabulary: the four
/// categories of Section 2.1 plus true lock contention (the paper's
/// TLCP), and the pair record flowing from detection through
/// transformation into the performance report.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DETECT_ULCP_H
#define PERFPLAY_DETECT_ULCP_H

#include "trace/Event.h"

#include <cstdint>

namespace perfplay {

/// Classification of a pair of critical sections protected by the same
/// lock (Section 2.1).
enum class UlcpKind : uint8_t {
  /// No shared access in at least one section (Figure 3's if-branch).
  NullLock,
  /// Only reads on shared data in both sections (Figure 4).
  ReadRead,
  /// Disjoint updated locations, at least one write (pointer-alias
  /// style updates of different objects).
  DisjointWrite,
  /// Conflicting accesses whose interleavings produce identical results
  /// (redundant writes, commutative read-modify-writes); established by
  /// reversed replay.
  Benign,
  /// Real data conflict: a True Lock Contention Pair, not a ULCP.
  TrueContention,
};

/// Returns the paper's abbreviation for \p Kind ("NL", "RR", "DW",
/// "Benign", "TLCP").
const char *ulcpKindName(UlcpKind Kind);

/// True for the four unnecessary categories, false for TrueContention.
inline bool isUnnecessary(UlcpKind Kind) {
  return Kind != UlcpKind::TrueContention;
}

/// One classified pair.  First precedes Second in the per-lock pairing
/// order; both are global critical-section ids.
struct UlcpPair {
  uint32_t First = InvalidId;
  uint32_t Second = InvalidId;
  UlcpKind Kind = UlcpKind::TrueContention;
};

/// Per-category totals (the columns of Table 1).
struct UlcpCounts {
  uint64_t NullLock = 0;
  uint64_t ReadRead = 0;
  uint64_t DisjointWrite = 0;
  uint64_t Benign = 0;
  uint64_t TrueContention = 0;

  uint64_t totalUnnecessary() const {
    return NullLock + ReadRead + DisjointWrite + Benign;
  }

  uint64_t total() const { return totalUnnecessary() + TrueContention; }

  /// Increments the bucket for \p Kind.
  void add(UlcpKind Kind);
};

} // namespace perfplay

#endif // PERFPLAY_DETECT_ULCP_H
