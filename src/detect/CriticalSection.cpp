//===- detect/CriticalSection.cpp - Critical-section extraction -----------===//

#include "detect/CriticalSection.h"

#include <algorithm>
#include <cassert>

using namespace perfplay;

template <typename T> static void sortUnique(std::vector<T> &V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
}

CsIndex CsIndex::build(const Trace &Tr) {
  CsIndex Index;
  Index.TryFailPerLock.assign(Tr.Locks.size(), 0);

  // First pass: create one record per section-opening event, in
  // global-id order, and fill read/write sets for every enclosing open
  // section.
  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    const auto &Events = Tr.Threads[T].Events;
    std::vector<size_t> OpenStack; // Indices into Index.Sections.
    uint32_t NextIndex = 0;
    // Records for this thread are appended in acquire order, which is
    // exactly the global-id order within the thread.
    for (size_t I = 0; I != Events.size(); ++I) {
      const Event &E = Events[I];
      switch (E.Kind) {
      case EventKind::LockAcquire:
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
      case EventKind::TryAcquire: {
        if (!isSectionOpen(E)) {
          // A failed trylock opens nothing but is a witnessed
          // contention edge on the lock.
          ++Index.TryFailPerLock[E.Lock];
          break;
        }
        CriticalSection Cs;
        Cs.Ref = CsRef{T, NextIndex++};
        Cs.Lock = E.Lock;
        Cs.Site = E.Site;
        Cs.Mode = acquireModeOf(E);
        Cs.AcquireIdx = I;
        Cs.Depth = static_cast<unsigned>(OpenStack.size());
        Index.Sections.push_back(std::move(Cs));
        OpenStack.push_back(Index.Sections.size() - 1);
        break;
      }
      case EventKind::LockRelease: {
        assert(!OpenStack.empty() && "release without acquire; validate "
                                     "the trace first");
        CriticalSection &Cs = Index.Sections[OpenStack.back()];
        assert(Cs.Lock == E.Lock && "mismatched release");
        Cs.ReleaseIdx = I;
        OpenStack.pop_back();
        break;
      }
      case EventKind::Read:
        for (size_t Open : OpenStack)
          Index.Sections[Open].Reads.push_back(E.Addr);
        break;
      case EventKind::Write:
        for (size_t Open : OpenStack)
          Index.Sections[Open].Writes.push_back(E.Addr);
        break;
      case EventKind::Compute:
        for (size_t Open : OpenStack)
          Index.Sections[Open].InnerCost += E.Cost;
        break;
      case EventKind::CondWait:
        for (size_t Open : OpenStack)
          Index.Sections[Open].CondWaits.push_back(E.Lock);
        break;
      case EventKind::CondSignal:
      case EventKind::CondBroadcast:
        for (size_t Open : OpenStack)
          Index.Sections[Open].CondSignals.push_back(E.Lock);
        break;
      case EventKind::ThreadStart:
      case EventKind::ThreadEnd:
        break;
      }
    }
    assert(OpenStack.empty() && "unbalanced critical sections");
  }

  // Sections were appended thread-major in acquire order, which is the
  // global-id enumeration; record the ids and canonicalize the sets.
  for (size_t I = 0; I != Index.Sections.size(); ++I) {
    CriticalSection &Cs = Index.Sections[I];
    Cs.GlobalId = Tr.globalCsId(Cs.Ref);
    assert(Cs.GlobalId == I && "global-id enumeration mismatch");
    sortUnique(Cs.Reads);
    sortUnique(Cs.Writes);
    sortUnique(Cs.CondWaits);
    sortUnique(Cs.CondSignals);
    // The bitset form is derived once here so every downstream
    // intersection (classification, restricted replay images) can take
    // the word-parallel path without re-canonicalizing.  Tiny sections
    // skip it: SetRepr::Auto routes them to the sorted merge anyway,
    // and the bitset path falls back per pair via setsBuilt().
    if (Cs.Reads.size() > CriticalSection::TinySetMax ||
        Cs.Writes.size() > CriticalSection::TinySetMax)
      Cs.buildSets();
  }

  // Per-lock pairing order.
  Index.PerLock.assign(Tr.Locks.size(), {});
  if (!Tr.LockSchedule.empty()) {
    for (LockId L = 0; L != Tr.LockSchedule.size(); ++L)
      for (const CsRef &Ref : Tr.LockSchedule[L])
        Index.PerLock[L].push_back(Tr.globalCsId(Ref));
  } else {
    for (const CriticalSection &Cs : Index.Sections)
      Index.PerLock[Cs.Lock].push_back(Cs.GlobalId);
  }
  return Index;
}
