//===- detect/ReversedReplay.h - Benign-vs-TLCP discrimination --*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reversed-replay check of Section 3.1: a conflicting pair of
/// critical sections is *benign* (redundant writes, disjoint bit
/// manipulation, commutative updates) if replaying the two sections in
/// both orders produces the same result.  "Result" is the final shared
/// memory over the touched addresses plus the values every read
/// observes, evaluated on an abstract memory machine seeded from the
/// recorded trace.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DETECT_REVERSEDREPLAY_H
#define PERFPLAY_DETECT_REVERSEDREPLAY_H

#include "detect/CriticalSection.h"
#include "support/AddrSet.h"
#include "support/FlatMap.h"
#include "trace/Trace.h"

#include <vector>

namespace perfplay {

/// Abstract shared-memory image: address -> value.  Addresses absent
/// from the map read as zero.  Backed by an open-addressing flat hash
/// (support/FlatMap.h) — the image is copied and probed once per
/// replayed pair, which made std::map's node allocations the detection
/// hot spot.
class MemoryImage {
public:
  /// Builds the initial image of \p Tr: every address whose first
  /// dynamic access in some thread is a read is seeded with that read's
  /// recorded value.  (A write-before-read address needs no seed.)
  static MemoryImage initialOf(const Trace &Tr);

  uint64_t load(AddrId Addr) const;

  /// Applies \p Op with \p Operand at \p Addr.
  void apply(AddrId Addr, uint64_t Operand, WriteOpKind Op);

  /// Copies \p Src's entries at \p Addrs into this image (addresses
  /// absent from \p Src stay absent).  Used to build the per-pair
  /// restricted image isBenignPair replays over.
  void seedFrom(const MemoryImage &Src, const std::vector<AddrId> &Addrs);

  /// Same, over the chunked-bitmap address set the critical sections
  /// already carry (CriticalSection::ReadSet/WriteSet) — the
  /// restricted-image path of isBenignPair seeds from these without
  /// touching the sorted vectors.
  void seedFrom(const MemoryImage &Src, const AddrSet &Addrs);

  /// Content equality: same address set with the same values (the
  /// std::map semantics the reversed replay always relied on — both
  /// orders write the same address set, so key sets coincide).
  bool operator==(const MemoryImage &RHS) const {
    return Cells == RHS.Cells;
  }

private:
  FlatMap<AddrId, uint64_t> Cells;
};

/// Outcome of running memory events of critical sections in one order.
struct ReplayOutcome {
  MemoryImage Final;
  /// Values observed by reads, in execution order.
  std::vector<uint64_t> ReadValues;

  bool operator==(const ReplayOutcome &RHS) const {
    return Final == RHS.Final && ReadValues == RHS.ReadValues;
  }
};

/// Executes the memory events (reads/writes) of \p Sections'
/// event ranges, in the given order, starting from \p Initial.
ReplayOutcome replaySections(const Trace &Tr, MemoryImage Initial,
                             const std::vector<const CriticalSection *>
                                 &Sections);

/// Returns true if executing \p A then \p B produces the same outcome as
/// \p B then \p A from the trace's initial memory image — i.e. the
/// conflict is benign.  \p Initial is the image from
/// MemoryImage::initialOf (hoisted by callers classifying many pairs).
bool isBenignPair(const Trace &Tr, const MemoryImage &Initial,
                  const CriticalSection &A, const CriticalSection &B);

} // namespace perfplay

#endif // PERFPLAY_DETECT_REVERSEDREPLAY_H
