//===- detect/CriticalSection.h - Critical-section extraction ---*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of critical sections from a trace, together with their
/// shadow-memory state: the sets of shared reads (C.Srd) and shared
/// writes (C.Swr) the paper's Algorithm 1 intersects.  Nested critical
/// sections are supported; an access made while several locks are held
/// belongs to every enclosing critical section.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DETECT_CRITICALSECTION_H
#define PERFPLAY_DETECT_CRITICALSECTION_H

#include "support/AddrSet.h"
#include "trace/Trace.h"

#include <vector>

namespace perfplay {

/// One critical section with its shadow-memory summary.
struct CriticalSection {
  /// Sections whose read and write sets are both at most this wide
  /// are never intersected through AddrSet — SetRepr::Auto routes
  /// them to the sorted merge, whose constant factor wins — so
  /// CsIndex::build skips deriving their bitmap mirrors entirely
  /// (saving two allocations and ~300 bytes per tiny section on
  /// lock-heavy traces with millions of small sections).
  static constexpr size_t TinySetMax = 32;
  /// Thread and per-thread index (numbered by opening acquire).
  CsRef Ref;
  /// Dense id across the whole trace (Trace::globalCsId).
  uint32_t GlobalId = InvalidId;
  LockId Lock = InvalidId;
  CodeSiteId Site = InvalidId;
  /// Acquisition mode of the opening event: Shared for rwlock readers
  /// (two Shared sections on the same lock never exclude each other,
  /// so reader-reader pairs are ULCP-free by construction), Exclusive
  /// for everything else.
  AcquireMode Mode = AcquireMode::Exclusive;
  /// Indices of the acquire / matching release in the thread stream.
  size_t AcquireIdx = 0;
  size_t ReleaseIdx = 0;
  /// Lock-nesting depth of the acquire (0 = outermost).
  unsigned Depth = 0;
  /// Sorted, de-duplicated condvar ids this section waited on /
  /// signaled (broadcast counts as signal).  A wait in one section and
  /// the matching signal in another orders the two sections causally —
  /// such pairs are true contention, never ULCPs, and skip replay.
  std::vector<LockId> CondWaits;
  std::vector<LockId> CondSignals;
  /// Sorted, de-duplicated shared addresses read / written between the
  /// acquire and its matching release (nested sections included).
  std::vector<AddrId> Reads;
  std::vector<AddrId> Writes;
  /// Chunked-bitmap form of Reads/Writes (support/AddrSet.h), built
  /// once per section by CsIndex::build (or \ref buildSets) and used
  /// by the word-parallel intersection path of Algorithm 1
  /// (`SetRepr::Bitset`/`Auto`).  The sorted vectors above stay the
  /// canonical representation the frozen PipelineResult surface and
  /// `SetRepr::Sorted` consume.
  AddrSet ReadSet;
  AddrSet WriteSet;
  /// Total Compute cost between acquire and release.
  TimeNs InnerCost = 0;

  bool readsEmpty() const { return Reads.empty(); }
  bool writesEmpty() const { return Writes.empty(); }

  /// (Re)derives ReadSet/WriteSet from the sorted Reads/Writes
  /// vectors.  Call after populating the vectors on a hand-built
  /// section; CsIndex::build does it for every section wider than
  /// \ref TinySetMax.  Invariant: any later mutation of Reads/Writes
  /// stales the mirrors — re-call buildSets() (or clear the sets)
  /// afterwards, since \ref setsBuilt can only compare sizes.
  void buildSets() {
    ReadSet = AddrSet::fromSorted(Reads);
    WriteSet = AddrSet::fromSorted(Writes);
  }

  /// True when ReadSet/WriteSet mirror Reads/Writes.  The bitset
  /// classification path falls back to the sorted vectors when a
  /// section never built its mirrors (tiny sections, hand-built
  /// sections).  This is a size comparison, not a content check: it
  /// cannot detect a same-length rewrite of the vectors after
  /// \ref buildSets (see the invariant there).
  bool setsBuilt() const {
    return ReadSet.size() == Reads.size() &&
           WriteSet.size() == Writes.size();
  }
};

/// All critical sections of a trace, indexed by global id, plus the
/// per-lock order used when pairing them.
class CsIndex {
public:
  /// Extracts every critical section of \p Tr.  The per-lock order is
  /// taken from Tr.LockSchedule when present (the recorded grant order);
  /// otherwise it falls back to global-id order, which is only
  /// meaningful for single-threaded or hand-built traces.
  static CsIndex build(const Trace &Tr);

  const std::vector<CriticalSection> &all() const { return Sections; }

  const CriticalSection &byGlobalId(uint32_t Id) const {
    return Sections[Id];
  }

  size_t size() const { return Sections.size(); }

  /// Global CS ids protected by \p Lock, in pairing order.
  const std::vector<uint32_t> &sectionsOfLock(LockId Lock) const {
    return PerLock[Lock];
  }

  unsigned numLocks() const {
    return static_cast<unsigned>(PerLock.size());
  }

  /// Failed trylock attempts per lock: contention witnessed on the
  /// lock without a critical section ever opening.  Sized numLocks().
  const std::vector<uint64_t> &tryFailPerLock() const {
    return TryFailPerLock;
  }

  /// Total failed trylock attempts across all locks.
  uint64_t tryFailEdges() const {
    uint64_t N = 0;
    for (uint64_t C : TryFailPerLock)
      N += C;
    return N;
  }

private:
  std::vector<CriticalSection> Sections;
  std::vector<std::vector<uint32_t>> PerLock;
  std::vector<uint64_t> TryFailPerLock;
};

} // namespace perfplay

#endif // PERFPLAY_DETECT_CRITICALSECTION_H
