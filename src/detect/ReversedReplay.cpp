//===- detect/ReversedReplay.cpp - Benign-vs-TLCP discrimination ----------===//

#include "detect/ReversedReplay.h"

#include <cassert>

using namespace perfplay;

MemoryImage MemoryImage::initialOf(const Trace &Tr) {
  MemoryImage Image;
  FlatMap<AddrId, uint8_t> Decided;
  // Scan threads in order; the first dynamic access per address decides
  // its seed.  Only a read seed matters: if the first access is a write,
  // the value before it is unobservable inside critical sections.
  for (const auto &T : Tr.Threads)
    for (const Event &E : T.Events) {
      if (E.Kind == EventKind::Read) {
        if (Decided.insert(E.Addr, 1))
          Image.Cells[E.Addr] = E.Value;
      } else if (E.Kind == EventKind::Write) {
        Decided.insert(E.Addr, 1);
      }
    }
  return Image;
}

uint64_t MemoryImage::load(AddrId Addr) const {
  const uint64_t *V = Cells.find(Addr);
  return V ? *V : 0;
}

void MemoryImage::seedFrom(const MemoryImage &Src,
                           const std::vector<AddrId> &Addrs) {
  for (AddrId Addr : Addrs)
    if (const uint64_t *V = Src.Cells.find(Addr))
      Cells.insert(Addr, *V);
}

void MemoryImage::seedFrom(const MemoryImage &Src, const AddrSet &Addrs) {
  Addrs.forEach([&](uint64_t Addr) {
    if (const uint64_t *V = Src.Cells.find(Addr))
      Cells.insert(Addr, *V);
  });
}

void MemoryImage::apply(AddrId Addr, uint64_t Operand, WriteOpKind Op) {
  uint64_t &Cell = Cells[Addr];
  switch (Op) {
  case WriteOpKind::Store:
    Cell = Operand;
    break;
  case WriteOpKind::Add:
    Cell += Operand;
    break;
  case WriteOpKind::Or:
    Cell |= Operand;
    break;
  case WriteOpKind::And:
    Cell &= Operand;
    break;
  case WriteOpKind::Xor:
    Cell ^= Operand;
    break;
  }
}

ReplayOutcome perfplay::replaySections(
    const Trace &Tr, MemoryImage Initial,
    const std::vector<const CriticalSection *> &Sections) {
  ReplayOutcome Out;
  Out.Final = std::move(Initial);
  for (const CriticalSection *Cs : Sections) {
    const auto &Events = Tr.Threads[Cs->Ref.Thread].Events;
    assert(Cs->ReleaseIdx > Cs->AcquireIdx && "section not closed");
    for (size_t I = Cs->AcquireIdx + 1; I != Cs->ReleaseIdx; ++I) {
      const Event &E = Events[I];
      if (E.Kind == EventKind::Read)
        Out.ReadValues.push_back(Out.Final.load(E.Addr));
      else if (E.Kind == EventKind::Write)
        Out.Final.apply(E.Addr, E.Value, E.Op);
    }
  }
  return Out;
}

bool perfplay::isBenignPair(const Trace &Tr, const MemoryImage &Initial,
                            const CriticalSection &A,
                            const CriticalSection &B) {
  // The replays below only ever touch the pair's own read/write sets,
  // and addresses outside them evolve identically in both orders, so
  // the whole-trace image can be restricted to the pair's addresses.
  // This turns the per-pair cost from O(trace addresses) — the image is
  // copied per replay — into O(|A| + |B|).  Sections built by CsIndex
  // carry their address sets in chunked-bitmap form; hand-built ones
  // seed from the sorted vectors.
  MemoryImage Restricted;
  if (A.setsBuilt() && B.setsBuilt()) {
    for (const AddrSet *Set :
         {&A.ReadSet, &A.WriteSet, &B.ReadSet, &B.WriteSet})
      Restricted.seedFrom(Initial, *Set);
  } else {
    for (const std::vector<AddrId> *Set :
         {&A.Reads, &A.Writes, &B.Reads, &B.Writes})
      Restricted.seedFrom(Initial, *Set);
  }

  // A pair is benign iff the two execution orders are observationally
  // equivalent: the final memory agrees, and each section reads the
  // same values whether it runs before or after the other.
  ReplayOutcome Forward = replaySections(Tr, Restricted, {&A, &B});
  ReplayOutcome Reversed = replaySections(Tr, Restricted, {&B, &A});
  if (!(Forward.Final == Reversed.Final))
    return false;

  ReplayOutcome AFirst = replaySections(Tr, Restricted, {&A});
  ReplayOutcome BFirst = replaySections(Tr, Restricted, {&B});
  ReplayOutcome ASecond = replaySections(Tr, BFirst.Final, {&A});
  if (AFirst.ReadValues != ASecond.ReadValues)
    return false;
  ReplayOutcome BSecond = replaySections(Tr, AFirst.Final, {&B});
  return BFirst.ReadValues == BSecond.ReadValues;
}
