//===- detect/ReversedReplay.cpp - Benign-vs-TLCP discrimination ----------===//

#include "detect/ReversedReplay.h"

#include <cassert>
#include <set>

using namespace perfplay;

MemoryImage MemoryImage::initialOf(const Trace &Tr) {
  MemoryImage Image;
  std::set<AddrId> Decided;
  // Scan threads in order; the first dynamic access per address decides
  // its seed.  Only a read seed matters: if the first access is a write,
  // the value before it is unobservable inside critical sections.
  for (const auto &T : Tr.Threads)
    for (const Event &E : T.Events) {
      if (E.Kind == EventKind::Read) {
        if (Decided.insert(E.Addr).second)
          Image.Cells[E.Addr] = E.Value;
      } else if (E.Kind == EventKind::Write) {
        Decided.insert(E.Addr);
      }
    }
  return Image;
}

uint64_t MemoryImage::load(AddrId Addr) const {
  auto It = Cells.find(Addr);
  return It == Cells.end() ? 0 : It->second;
}

void MemoryImage::apply(AddrId Addr, uint64_t Operand, WriteOpKind Op) {
  uint64_t &Cell = Cells[Addr];
  switch (Op) {
  case WriteOpKind::Store:
    Cell = Operand;
    break;
  case WriteOpKind::Add:
    Cell += Operand;
    break;
  case WriteOpKind::Or:
    Cell |= Operand;
    break;
  case WriteOpKind::And:
    Cell &= Operand;
    break;
  case WriteOpKind::Xor:
    Cell ^= Operand;
    break;
  }
}

ReplayOutcome perfplay::replaySections(
    const Trace &Tr, MemoryImage Initial,
    const std::vector<const CriticalSection *> &Sections) {
  ReplayOutcome Out;
  Out.Final = std::move(Initial);
  for (const CriticalSection *Cs : Sections) {
    const auto &Events = Tr.Threads[Cs->Ref.Thread].Events;
    assert(Cs->ReleaseIdx > Cs->AcquireIdx && "section not closed");
    for (size_t I = Cs->AcquireIdx + 1; I != Cs->ReleaseIdx; ++I) {
      const Event &E = Events[I];
      if (E.Kind == EventKind::Read)
        Out.ReadValues.push_back(Out.Final.load(E.Addr));
      else if (E.Kind == EventKind::Write)
        Out.Final.apply(E.Addr, E.Value, E.Op);
    }
  }
  return Out;
}

bool perfplay::isBenignPair(const Trace &Tr, const MemoryImage &Initial,
                            const CriticalSection &A,
                            const CriticalSection &B) {
  // A pair is benign iff the two execution orders are observationally
  // equivalent: the final memory agrees, and each section reads the
  // same values whether it runs before or after the other.
  ReplayOutcome Forward = replaySections(Tr, Initial, {&A, &B});
  ReplayOutcome Reversed = replaySections(Tr, Initial, {&B, &A});
  if (!(Forward.Final == Reversed.Final))
    return false;

  ReplayOutcome AFirst = replaySections(Tr, Initial, {&A});
  ReplayOutcome BFirst = replaySections(Tr, Initial, {&B});
  ReplayOutcome ASecond = replaySections(Tr, BFirst.Final, {&A});
  if (AFirst.ReadValues != ASecond.ReadValues)
    return false;
  ReplayOutcome BSecond = replaySections(Tr, AFirst.Final, {&B});
  return BFirst.ReadValues == BSecond.ReadValues;
}
