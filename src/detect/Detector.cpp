//===- detect/Detector.cpp - Whole-trace ULCP detection --------------------===//

#include "detect/Detector.h"

using namespace perfplay;

std::vector<UlcpPair> DetectResult::unnecessaryPairs() const {
  std::vector<UlcpPair> Out;
  for (const UlcpPair &P : Pairs)
    if (isUnnecessary(P.Kind))
      Out.push_back(P);
  return Out;
}

DetectResult perfplay::detectUlcps(const Trace &Tr, const CsIndex &Index,
                                   const DetectOptions &Opts) {
  DetectResult Result;
  MemoryImage Initial = MemoryImage::initialOf(Tr);

  for (LockId L = 0; L != Index.numLocks(); ++L) {
    const std::vector<uint32_t> &Order = Index.sectionsOfLock(L);
    for (size_t I = 0; I != Order.size(); ++I) {
      const CriticalSection &C1 = Index.byGlobalId(Order[I]);
      size_t Limit = Order.size();
      if (Opts.PairMode == PairModeKind::AdjacentCrossThread)
        Limit = std::min(Limit, I + 2);
      else if (Opts.MaxPairDistance != 0)
        Limit = std::min(Limit, I + 1 + Opts.MaxPairDistance);
      for (size_t J = I + 1; J < Limit; ++J) {
        const CriticalSection &C2 = Index.byGlobalId(Order[J]);
        if (C1.Ref.Thread == C2.Ref.Thread)
          continue;
        UlcpPair Pair;
        Pair.First = C1.GlobalId;
        Pair.Second = C2.GlobalId;
        Pair.Kind = Opts.UseReversedReplay
                        ? classifyPair(Tr, Initial, C1, C2)
                        : classifyPairStatic(C1, C2);
        Result.Counts.add(Pair.Kind);
        Result.Pairs.push_back(Pair);
      }
    }
  }
  return Result;
}
