//===- detect/Detector.cpp - Whole-trace ULCP detection --------------------===//
//
// The hot path of the pipeline.  Three independent accelerations over
// the straightforward nested loop, all preserving the serial pair
// order and verdicts bit-for-bit:
//
//  * Dedup: sections are interned into canonical keys (SectionKey.h)
//    and each distinct key pair is classified once — the paper's
//    Table 2 observation that dynamic pairs massively duplicate a few
//    static patterns, turned into a verdict cache.
//  * Parallelism: the outer (lock, first-section) iterations are
//    classified by a ThreadPool in blocks; each block's pairs are then
//    emitted serially in task order, so output order and Counts match
//    the single-threaded loop exactly.
//  * Streaming: with a Sink (or CountsOnly) the O(n^2) Pairs vector is
//    never materialized; memory is bounded by one block of pairs.
//
//===----------------------------------------------------------------------===//

#include "detect/Detector.h"

#include "detect/SectionKey.h"
#include "support/FlatMap.h"
#include "support/ThreadAnnotations.h"
#include "support/ThreadPool.h"

#include <array>
#include <atomic>
#include <cassert>

using namespace perfplay;

std::vector<UlcpPair> DetectResult::unnecessaryPairs() const {
  std::vector<UlcpPair> Out;
  for (const UlcpPair &P : Pairs)
    if (isUnnecessary(P.Kind))
      Out.push_back(P);
  return Out;
}

namespace {

/// One outer iteration of the pair loop: all pairs whose first section
/// is at position I of lock L's per-lock order.
struct PairTask {
  LockId Lock = InvalidId;
  uint32_t First = 0;
};

/// Verdict cache keyed by SectionKeyTable::pairKey, striped over 64
/// mutex shards so concurrent workers rarely contend (cache hits are
/// the dedup hot path).  The classification itself (the expensive
/// reversed replay) runs outside any lock; two workers may race to
/// classify the same key pair — both compute the same verdict, so the
/// cache stays deterministic.  Serial runs skip the mutexes entirely.
class VerdictCache {
public:
  explicit VerdictCache(bool Concurrent) : Concurrent(Concurrent) {}

  bool lookup(uint64_t Key, UlcpKind &Out) const {
    const Shard &S = shardOf(Key);
    if (!Concurrent)
      return findSerial(S, Key, Out);
    MutexLock Guard(S.Mu);
    return find(S, Key, Out);
  }

  void insert(uint64_t Key, UlcpKind Verdict) {
    Shard &S = shardOf(Key);
    if (!Concurrent) {
      insertSerial(S, Key, Verdict);
      return;
    }
    MutexLock Guard(S.Mu);
    S.Map.insert(Key, Verdict);
  }

private:
  struct Shard {
    mutable Mutex Mu;
    FlatMap<uint64_t, UlcpKind> Map GUARDED_BY(Mu);
  };

  static bool find(const Shard &S, uint64_t Key, UlcpKind &Out)
      REQUIRES(S.Mu) {
    const UlcpKind *V = S.Map.find(Key);
    if (!V)
      return false;
    Out = *V;
    return true;
  }

  // Serial fast path: detectUlcps resolved to one thread, so no other
  // thread can ever observe the shard and taking the (uncontended)
  // mutex would only tax the dedup hot loop.  This is the one
  // deliberate thread-safety-analysis exemption in the detector; it is
  // sound exactly because Concurrent is immutable after construction
  // and false means the whole cache is confined to the calling thread.
  bool findSerial(const Shard &S, uint64_t Key,
                  UlcpKind &Out) const NO_THREAD_SAFETY_ANALYSIS {
    assert(!Concurrent && "serial path used by a concurrent cache");
    const UlcpKind *V = S.Map.find(Key);
    if (!V)
      return false;
    Out = *V;
    return true;
  }

  void insertSerial(Shard &S, uint64_t Key,
                    UlcpKind Verdict) NO_THREAD_SAFETY_ANALYSIS {
    assert(!Concurrent && "serial path used by a concurrent cache");
    S.Map.insert(Key, Verdict);
  }

  const Shard &shardOf(uint64_t Key) const {
    return Shards[hashInteger(Key) & (Shards.size() - 1)];
  }
  Shard &shardOf(uint64_t Key) {
    return Shards[hashInteger(Key) & (Shards.size() - 1)];
  }

  const bool Concurrent;
  std::array<Shard, 64> Shards;
};

/// Shared, read-only classification context plus the dedup cache.
struct DetectContext {
  const Trace &Tr;
  const CsIndex &Index;
  const DetectOptions &Opts;
  const MemoryImage Initial;
  SectionKeyTable Keys;
  VerdictCache Cache;
  std::atomic<uint64_t> NumClassified{0};

  DetectContext(const Trace &Tr, const CsIndex &Index,
                const DetectOptions &Opts, bool Concurrent)
      : Tr(Tr), Index(Index), Opts(Opts),
        // Static-only runs never replay, so skip the O(trace events)
        // initial-image scan entirely.
        Initial(Opts.UseReversedReplay ? MemoryImage::initialOf(Tr)
                                       : MemoryImage()),
        Cache(Concurrent) {
    if (Opts.DedupPairs)
      Keys = internSectionKeys(Tr, Index);
  }

  UlcpKind classify(const CriticalSection &C1, const CriticalSection &C2) {
    if (!Opts.DedupPairs)
      return classifyUncached(C1, C2);
    uint64_t Key = SectionKeyTable::pairKey(Keys.KeyOf[C1.GlobalId],
                                            Keys.KeyOf[C2.GlobalId]);
    UlcpKind Verdict;
    if (Cache.lookup(Key, Verdict))
      return Verdict;
    Verdict = classifyUncached(C1, C2);
    Cache.insert(Key, Verdict);
    return Verdict;
  }

  /// Upper bound (exclusive) of the inner pair loop for first-section
  /// position \p I of a lock with \p OrderSize sections.
  size_t pairLimit(size_t I, size_t OrderSize) const {
    size_t Limit = OrderSize;
    if (Opts.PairMode == PairModeKind::AdjacentCrossThread)
      Limit = std::min(Limit, I + 2);
    else if (Opts.MaxPairDistance != 0)
      Limit = std::min(Limit, I + 1 + Opts.MaxPairDistance);
    return Limit;
  }

  /// Classifies every pair of \p Task, appending to \p Out.
  void runTask(const PairTask &Task, std::vector<UlcpPair> &Out) {
    const std::vector<uint32_t> &Order = Index.sectionsOfLock(Task.Lock);
    const size_t I = Task.First;
    const CriticalSection &C1 = Index.byGlobalId(Order[I]);
    const size_t Limit = pairLimit(I, Order.size());
    for (size_t J = I + 1; J < Limit; ++J) {
      const CriticalSection &C2 = Index.byGlobalId(Order[J]);
      if (C1.Ref.Thread == C2.Ref.Thread)
        continue;
      UlcpPair Pair;
      Pair.First = C1.GlobalId;
      Pair.Second = C2.GlobalId;
      Pair.Kind = classify(C1, C2);
      Out.push_back(Pair);
    }
  }

private:
  UlcpKind classifyUncached(const CriticalSection &C1,
                            const CriticalSection &C2) {
    NumClassified.fetch_add(1, std::memory_order_relaxed);
    return Opts.UseReversedReplay
               ? classifyPair(Tr, Initial, C1, C2, Opts.Repr)
               : classifyPairStatic(C1, C2, Opts.Repr);
  }
};

} // namespace

DetectResult perfplay::detectUlcps(const Trace &Tr, const CsIndex &Index,
                                   const DetectOptions &Opts) {
  DetectResult Result;

  // Outer iterations in serial order; each is one unit of parallel work.
  std::vector<PairTask> Tasks;
  for (LockId L = 0; L != Index.numLocks(); ++L) {
    size_t OrderSize = Index.sectionsOfLock(L).size();
    for (size_t I = 0; I + 1 < OrderSize; ++I)
      Tasks.push_back(PairTask{L, static_cast<uint32_t>(I)});
  }

  unsigned NumThreads =
      ThreadPool::resolveThreadCount(Opts.NumThreads, Tasks.size());
  DetectContext Ctx(Tr, Index, Opts, /*Concurrent=*/NumThreads > 1);

  // Pairs flow through one serial emission point regardless of how
  // they were classified, so ordering, Counts, Sink invocations and
  // the Pairs vector are identical across thread counts.
  auto Emit = [&](const UlcpPair &Pair) {
    Result.Counts.add(Pair.Kind);
    if (Opts.Sink)
      Opts.Sink(Pair);
    if (!Opts.Sink && !Opts.CountsOnly)
      Result.Pairs.push_back(Pair);
  };
  if (NumThreads <= 1) {
    std::vector<UlcpPair> Scratch;
    for (const PairTask &Task : Tasks) {
      Scratch.clear();
      Ctx.runTask(Task, Scratch);
      for (const UlcpPair &Pair : Scratch)
        Emit(Pair);
    }
  } else {
    ThreadPool Pool(NumThreads);
    // Classify in blocks of tasks: workers fill per-task buffers, then
    // the calling thread drains the block in task order.  Block-sized
    // buffering keeps streaming (Sink/CountsOnly) memory bounded while
    // preserving the serial emission order.
    const size_t BlockTasks = std::max<size_t>(64, 16 * NumThreads);
    // Task buffers persist across blocks so their capacity is reused.
    std::vector<std::vector<UlcpPair>> Block(
        std::min(BlockTasks, Tasks.size()));
    for (size_t Begin = 0; Begin < Tasks.size(); Begin += BlockTasks) {
      const size_t End = std::min(Tasks.size(), Begin + BlockTasks);
      for (size_t K = 0; K != End - Begin; ++K)
        Block[K].clear();
      Pool.parallelFor(End - Begin, [&](size_t K) {
        Ctx.runTask(Tasks[Begin + K], Block[K]);
      });
      for (size_t K = 0; K != End - Begin; ++K)
        for (const UlcpPair &Pair : Block[K])
          Emit(Pair);
    }
  }

  Result.Stats.NumSectionKeys = Ctx.Keys.NumKeys;
  Result.Stats.NumClassified =
      Ctx.NumClassified.load(std::memory_order_relaxed);
  Result.TryFailPerLock = Index.tryFailPerLock();
  Result.TryFailEdges = Index.tryFailEdges();
  return Result;
}
