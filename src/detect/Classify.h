//===- detect/Classify.h - Algorithm 1: ULCP identification -----*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 1: classify a pair of critical sections
/// protected by the same lock by intersecting their shadow-memory
/// read/write sets.  Pairs that conflict statically are refined by the
/// reversed replay into Benign or TrueContention.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DETECT_CLASSIFY_H
#define PERFPLAY_DETECT_CLASSIFY_H

#include "detect/CriticalSection.h"
#include "detect/ReversedReplay.h"
#include "detect/Ulcp.h"

namespace perfplay {

/// Which read/write-set representation Algorithm 1 intersects.  Every
/// representation produces byte-identical verdicts (asserted by tests
/// and the detection benchmark); the choice is purely a speed lever.
enum class SetRepr {
  /// Pick per pair: the chunked bitmap for wide sets, the sorted
  /// vectors when both sets are tiny (where the galloping merge's
  /// constant factor wins).  The default.
  Auto,
  /// Always intersect the sorted vectors (support/SetOps.h): linear
  /// merge, galloping on skewed sizes.  The PR 2 path, kept selectable
  /// for parity testing and as the fallback for hand-built sections.
  Sorted,
  /// Always intersect the chunked bitmaps (support/AddrSet.h):
  /// O(1) digest rejection, then word-parallel uint64 AND loops.
  /// Falls back to Sorted for sections whose AddrSets were never
  /// built (CriticalSection::setsBuilt() is false).
  Bitset,
};

/// Algorithm 1, lines 1-8: classification by read/write set
/// intersection only.  Returns TrueContention for statically
/// conflicting pairs (which a caller may refine with isBenignPair).
/// \p Repr selects the set representation intersected; verdicts do
/// not depend on it.
UlcpKind classifyPairStatic(const CriticalSection &C1,
                            const CriticalSection &C2,
                            SetRepr Repr = SetRepr::Auto);

/// Full classification: Algorithm 1 plus the reversed-replay
/// refinement of conflicting pairs into Benign / TrueContention.
UlcpKind classifyPair(const Trace &Tr, const MemoryImage &Initial,
                      const CriticalSection &C1,
                      const CriticalSection &C2,
                      SetRepr Repr = SetRepr::Auto);

} // namespace perfplay

#endif // PERFPLAY_DETECT_CLASSIFY_H
