//===- detect/Classify.h - Algorithm 1: ULCP identification -----*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Algorithm 1: classify a pair of critical sections
/// protected by the same lock by intersecting their shadow-memory
/// read/write sets.  Pairs that conflict statically are refined by the
/// reversed replay into Benign or TrueContention.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DETECT_CLASSIFY_H
#define PERFPLAY_DETECT_CLASSIFY_H

#include "detect/CriticalSection.h"
#include "detect/ReversedReplay.h"
#include "detect/Ulcp.h"

namespace perfplay {

/// Algorithm 1, lines 1-8: classification by read/write set
/// intersection only.  Returns TrueContention for statically
/// conflicting pairs (which a caller may refine with isBenignPair).
UlcpKind classifyPairStatic(const CriticalSection &C1,
                            const CriticalSection &C2);

/// Full classification: Algorithm 1 plus the reversed-replay
/// refinement of conflicting pairs into Benign / TrueContention.
UlcpKind classifyPair(const Trace &Tr, const MemoryImage &Initial,
                      const CriticalSection &C1,
                      const CriticalSection &C2);

} // namespace perfplay

#endif // PERFPLAY_DETECT_CLASSIFY_H
