//===- detect/WindowedDetect.cpp - Bounded-memory ULCP detection ----------===//
//
// Parity with detectUlcps is the whole contract, so every piece of
// this file mirrors a specific piece of the whole-trace path:
//
//  - signatures reproduce detect/SectionKey.cpp's word scheme, so the
//    signature partition (and with it Stats.NumSectionKeys) matches
//    internSectionKeys exactly,
//  - the incremental first-access fold reproduces the thread-major
//    scan of MemoryImage::initialOf (lowest accessing thread wins;
//    within a thread, program order),
//  - global ids are derived from per-thread acquire ordinals exactly
//    as Trace::globalCsId numbers them, and the per-lock order follows
//    CsIndex::build (grant schedule when present, global-id order
//    otherwise),
//  - finish() replays detectUlcps' serial enumeration: locks
//    ascending, first position ascending, second position ascending,
//    same-thread pairs skipped, the same pairLimit cut, and the same
//    Counts / Sink / Pairs emission rules.
//
//===----------------------------------------------------------------------===//

#include "detect/WindowedDetect.h"

#include "detect/Classify.h"
#include "detect/ReversedReplay.h"
#include "detect/SectionKey.h"

#include <algorithm>
#include <unordered_map>

using namespace perfplay;

namespace {

/// Full signature of one section; must stay word-for-word identical to
/// the anonymous Signature of detect/SectionKey.cpp so the two paths
/// intern the same partition.
struct Signature {
  std::vector<uint64_t> Words;

  bool operator==(const Signature &RHS) const { return Words == RHS.Words; }
};

struct SignatureHash {
  size_t operator()(const Signature &S) const {
    uint64_t H = 0x2545f4914f6cdd1dULL;
    for (uint64_t W : S.Words)
      H = hashInteger(H ^ W);
    return static_cast<size_t>(H);
  }
};

/// Signature over a buffered section: \p Buf holds the verbatim event
/// stream [acquire .. release]; the walk covers the exclusive interior,
/// mirroring signatureOf's (AcquireIdx, ReleaseIdx) range.
Signature signatureOfBuffer(LockId Lock, CodeSiteId Site,
                            AcquireMode Mode,
                            const std::vector<Event> &Buf) {
  Signature Sig;
  Sig.Words.reserve(2 + (Buf.size() - 2) * 2);
  Sig.Words.push_back(Lock);
  Sig.Words.push_back(Site);
  if (Mode == AcquireMode::Shared)
    Sig.Words.push_back(5);
  for (size_t I = 1; I + 1 < Buf.size(); ++I) {
    const Event &E = Buf[I];
    if (E.Kind == EventKind::Read) {
      Sig.Words.push_back(1);
      Sig.Words.push_back(E.Addr);
    } else if (E.Kind == EventKind::Write) {
      Sig.Words.push_back(2 | (static_cast<uint64_t>(E.Op) << 8));
      Sig.Words.push_back(E.Addr);
      Sig.Words.push_back(E.Value);
    } else if (E.Kind == EventKind::CondWait) {
      Sig.Words.push_back(3);
      Sig.Words.push_back(E.Lock);
    } else if (E.Kind == EventKind::CondSignal ||
               E.Kind == EventKind::CondBroadcast) {
      Sig.Words.push_back(4);
      Sig.Words.push_back(E.Lock);
    }
  }
  return Sig;
}

template <typename T> void sortUnique(std::vector<T> &V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
}

} // namespace

struct WindowedDetector::SignatureMap {
  std::unordered_map<Signature, uint32_t, SignatureHash> Interned;
};

WindowedDetector::WindowedDetector(DetectOptions Opts)
    : Opts(std::move(Opts)), Signatures(std::make_unique<SignatureMap>()) {
  ArenaTr.Threads.resize(1);
}

WindowedDetector::~WindowedDetector() = default;

WindowedDetector::ThreadState &WindowedDetector::stateOf(ThreadId T) {
  if (T >= Threads.size())
    Threads.resize(T + 1);
  return Threads[T];
}

void WindowedDetector::noteAccess(ThreadId T, const Event &E) {
  // Thread-major first-access fold: an existing candidate from the
  // same or a lower thread was recorded earlier in that thread's
  // program order and wins; a candidate from a higher thread loses to
  // this one regardless of arrival order.
  const FirstAccess *Existing = First.find(E.Addr);
  if (Existing && Existing->Thread <= T)
    return;
  FirstAccess FA;
  FA.Thread = T;
  FA.IsRead = E.Kind == EventKind::Read ? 1 : 0;
  FA.Value = E.Value;
  First[E.Addr] = FA;
}

uint32_t WindowedDetector::closeSection(OpenSection &&Top) {
  ++TotalSections;
  OpenEvents -= Top.Buf.size();
  Signature Sig = signatureOfBuffer(Top.Lock, Top.Site, Top.Mode, Top.Buf);
  auto It = Signatures->Interned.emplace(std::move(Sig), NumKeys);
  uint32_t Key = It.first->second;
  if (It.second) {
    ++NumKeys;
    // New signature: retain this section as the class representative.
    // Its events move into the arena verbatim, so the replay walks the
    // exact recorded access sequence (nested sections included).
    std::vector<Event> &Arena = ArenaTr.Threads[0].Events;
    size_t Start = Arena.size();
    Arena.insert(Arena.end(), Top.Buf.begin(), Top.Buf.end());
    CriticalSection Rep;
    Rep.Ref = CsRef{0, Key};
    Rep.GlobalId = Key;
    Rep.Lock = Top.Lock;
    Rep.Site = Top.Site;
    Rep.Mode = Top.Mode;
    Rep.AcquireIdx = Start;
    Rep.ReleaseIdx = Start + Top.Buf.size() - 1;
    for (size_t I = Rep.AcquireIdx + 1; I != Rep.ReleaseIdx; ++I) {
      const Event &E = Arena[I];
      if (E.Kind == EventKind::Read)
        Rep.Reads.push_back(E.Addr);
      else if (E.Kind == EventKind::Write)
        Rep.Writes.push_back(E.Addr);
      else if (E.Kind == EventKind::CondWait)
        Rep.CondWaits.push_back(E.Lock);
      else if (E.Kind == EventKind::CondSignal ||
               E.Kind == EventKind::CondBroadcast)
        Rep.CondSignals.push_back(E.Lock);
    }
    sortUnique(Rep.Reads);
    sortUnique(Rep.Writes);
    sortUnique(Rep.CondWaits);
    sortUnique(Rep.CondSignals);
    // Same gate as CsIndex::build: only sections wide enough for the
    // word-parallel intersection path carry bitmap mirrors.
    if (Rep.Reads.size() > CriticalSection::TinySetMax ||
        Rep.Writes.size() > CriticalSection::TinySetMax)
      Rep.buildSets();
    Reps.push_back(std::move(Rep));
  }
  return Key;
}

bool WindowedDetector::addEvents(ThreadId T, const Event *Events, size_t N,
                                 std::string &Err) {
  if (!StreamErr.empty()) {
    Err = StreamErr;
    return false;
  }
  ThreadState &TS = stateOf(T);
  const bool TrackInitial = Opts.UseReversedReplay;
  for (size_t I = 0; I != N; ++I) {
    const Event &E = Events[I];
    if (TrackInitial &&
        (E.Kind == EventKind::Read || E.Kind == EventKind::Write))
      noteAccess(T, E);
    // Every open section's range includes this event (nested sections
    // belong to each enclosing one, as in CsIndex::build).
    for (OpenSection &Open : TS.Stack)
      Open.Buf.push_back(E);
    OpenEvents += TS.Stack.size();

    if (isSectionOpen(E)) {
      OpenSection Open;
      Open.PerThreadIdx = static_cast<uint32_t>(TS.Locks.size());
      Open.Lock = E.Lock;
      Open.Site = E.Site;
      Open.Mode = acquireModeOf(E);
      Open.Buf.push_back(E);
      ++OpenEvents;
      TS.Stack.push_back(std::move(Open));
      TS.Locks.push_back(E.Lock);
      TS.KeyIds.push_back(InvalidId);
    } else if (E.Kind == EventKind::TryAcquire) {
      // A failed trylock (isSectionOpen is false) opens nothing; fold
      // it into the per-lock failure counts finish() emits.
      ++TryFails[E.Lock];
    } else if (E.Kind == EventKind::LockRelease) {
      if (TS.Stack.empty()) {
        StreamErr = "windowed detection: lock release without matching "
                    "acquire in thread " +
                    std::to_string(T);
        Err = StreamErr;
        return false;
      }
      OpenSection Top = std::move(TS.Stack.back());
      TS.Stack.pop_back();
      if (Top.Lock != E.Lock) {
        StreamErr = "windowed detection: mismatched lock release in "
                    "thread " +
                    std::to_string(T);
        Err = StreamErr;
        return false;
      }
      // The enclosing-sections loop above already appended the release
      // into Top.Buf (it was still on the stack), so the buffer is the
      // complete [acquire .. release] range.
      uint32_t Idx = Top.PerThreadIdx;
      TS.KeyIds[Idx] = closeSection(std::move(Top));
    }
    if (OpenEvents > PeakOpenEvents)
      PeakOpenEvents = OpenEvents;
  }
  return true;
}

bool WindowedDetector::finish(const Trace &Tables, DetectResult &Out,
                              std::string &Err) {
  if (!StreamErr.empty()) {
    Err = StreamErr;
    return false;
  }
  for (size_t T = 0; T != Threads.size(); ++T)
    if (!Threads[T].Stack.empty()) {
      Err = "windowed detection: critical section still open at end of "
            "trace in thread " +
            std::to_string(T);
      return false;
    }

  const size_t NumLocks = Tables.Locks.size();
  for (const ThreadState &TS : Threads)
    for (LockId L : TS.Locks)
      if (L == InvalidId || L >= NumLocks) {
        Err = "windowed detection: acquire references undefined lock";
        return false;
      }
  bool BadTryLock = false;
  TryFails.forEach([&](LockId L, const uint64_t &) {
    if (L == InvalidId || L >= NumLocks)
      BadTryLock = true;
  });
  if (BadTryLock) {
    Err = "windowed detection: trylock references undefined lock";
    return false;
  }

  // Global ids: thread-major acquire ordinals (Trace::globalCsId).
  std::vector<uint64_t> Prefix(Threads.size() + 1, 0);
  for (size_t T = 0; T != Threads.size(); ++T)
    Prefix[T + 1] = Prefix[T] + Threads[T].Locks.size();
  if (Prefix.back() > InvalidId) {
    Err = "windowed detection: too many critical sections";
    return false;
  }
  const uint32_t Total = static_cast<uint32_t>(Prefix.back());

  // Flatten the per-thread metadata into global-id-indexed arrays and
  // build the per-lock pairing order (mirroring CsIndex::build) in one
  // pass, releasing each thread's vectors as they are consumed.  The
  // incremental release matters: holding both representations across
  // the whole build would put the per-section high-water mark at 20
  // bytes instead of ~12+, which is most of the out-of-core bench's
  // RSS budget.  The detector cannot accept further events afterwards
  // (finish ends the stream).
  std::vector<uint32_t> SecThread(Total), SecKey(Total);
  std::vector<std::vector<uint32_t>> PerLock(NumLocks);
  const bool UseSchedule = !Tables.LockSchedule.empty();
  if (UseSchedule) {
    if (Tables.LockSchedule.size() > NumLocks) {
      Err = "windowed detection: lock schedule exceeds lock table";
      return false;
    }
    for (LockId L = 0; L != Tables.LockSchedule.size(); ++L)
      for (const CsRef &Ref : Tables.LockSchedule[L]) {
        if (Ref.Thread >= Threads.size() ||
            Ref.Index >= Threads[Ref.Thread].Locks.size()) {
          Err = "windowed detection: lock schedule references a missing "
                "critical section";
          return false;
        }
        PerLock[L].push_back(
            static_cast<uint32_t>(Prefix[Ref.Thread] + Ref.Index));
      }
  }
  for (size_t T = 0; T != Threads.size(); ++T) {
    ThreadState &TS = Threads[T];
    for (size_t I = 0; I != TS.Locks.size(); ++I) {
      uint32_t Gid = static_cast<uint32_t>(Prefix[T] + I);
      SecThread[Gid] = static_cast<uint32_t>(T);
      SecKey[Gid] = TS.KeyIds[I];
      // Thread-major appending is exactly global-id order.
      if (!UseSchedule)
        PerLock[TS.Locks[I]].push_back(Gid);
    }
    TS.Locks = std::vector<LockId>();
    TS.KeyIds = std::vector<uint32_t>();
  }

  // Initial image: materialize the winning read seeds (the fold kept
  // exactly the accesses MemoryImage::initialOf's scan would decide
  // on; a Store apply reproduces its Cells[Addr] = Value insert).
  MemoryImage Initial;
  if (Opts.UseReversedReplay)
    First.forEach([&](AddrId Addr, const FirstAccess &FA) {
      if (FA.IsRead)
        Initial.apply(Addr, FA.Value, WriteOpKind::Store);
    });

  // Serial pair enumeration, emission, and dedup — detectUlcps' exact
  // order with representatives standing in for the dynamic sections.
  uint64_t NumClassified = 0;
  FlatMap<uint64_t, UlcpKind> Cache;
  auto classifyKeys = [&](uint32_t KA, uint32_t KB) {
    uint64_t Key = SectionKeyTable::pairKey(KA, KB);
    if (Opts.DedupPairs) {
      if (const UlcpKind *V = Cache.find(Key))
        return *V;
    }
    ++NumClassified;
    const CriticalSection &C1 = Reps[KA];
    const CriticalSection &C2 = Reps[KB];
    UlcpKind Verdict =
        Opts.UseReversedReplay
            ? classifyPair(ArenaTr, Initial, C1, C2, Opts.Repr)
            : classifyPairStatic(C1, C2, Opts.Repr);
    if (Opts.DedupPairs)
      Cache.insert(Key, Verdict);
    return Verdict;
  };
  auto pairLimit = [&](size_t I, size_t OrderSize) {
    size_t Limit = OrderSize;
    if (Opts.PairMode == PairModeKind::AdjacentCrossThread)
      Limit = std::min(Limit, I + 2);
    else if (Opts.MaxPairDistance != 0)
      Limit = std::min(Limit, I + 1 + Opts.MaxPairDistance);
    return Limit;
  };
  auto emit = [&](const UlcpPair &Pair) {
    Out.Counts.add(Pair.Kind);
    if (Opts.Sink)
      Opts.Sink(Pair);
    if (!Opts.Sink && !Opts.CountsOnly)
      Out.Pairs.push_back(Pair);
  };

  Out = DetectResult();
  for (LockId L = 0; L != NumLocks; ++L) {
    const std::vector<uint32_t> &Order = PerLock[L];
    for (size_t I = 0; I + 1 < Order.size(); ++I) {
      const uint32_t G1 = Order[I];
      const size_t Limit = pairLimit(I, Order.size());
      for (size_t J = I + 1; J < Limit; ++J) {
        const uint32_t G2 = Order[J];
        if (SecThread[G1] == SecThread[G2])
          continue;
        UlcpPair Pair;
        Pair.First = G1;
        Pair.Second = G2;
        Pair.Kind = classifyKeys(SecKey[G1], SecKey[G2]);
        emit(Pair);
      }
    }
  }

  Out.Stats.NumSectionKeys = Opts.DedupPairs ? NumKeys : 0;
  Out.Stats.NumClassified = NumClassified;
  Out.TryFailPerLock.assign(NumLocks, 0);
  Out.TryFailEdges = 0;
  TryFails.forEach([&](LockId L, const uint64_t &N) {
    Out.TryFailPerLock[L] = N;
    Out.TryFailEdges += N;
  });
  return true;
}
