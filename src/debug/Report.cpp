//===- debug/Report.cpp - Performance debugging report ---------------------===//

#include "debug/Report.h"

#include "debug/UlcpDelta.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace perfplay;

double PerfDebugReport::normalizedDegradation() const {
  if (OriginalTime == 0)
    return 0.0;
  return static_cast<double>(Tpd) / static_cast<double>(OriginalTime);
}

double PerfDebugReport::normalizedCpuWastePerThread() const {
  if (OriginalTime == 0 || NumThreads == 0)
    return 0.0;
  double PerThread =
      static_cast<double>(Trw) / static_cast<double>(NumThreads);
  return PerThread / static_cast<double>(OriginalTime);
}

PerfDebugReport perfplay::buildReport(
    const Trace &Tr, const CsIndex &Index,
    const std::vector<UlcpPair> &UnnecessaryPairs,
    const ReplayResult &Original, const ReplayResult &UlcpFree) {
  assert(Original.ok() && UlcpFree.ok() && "replays must have succeeded");

  PerfDebugReport Report;
  Report.OriginalTime = Original.TotalTime;
  Report.UlcpFreeTime = UlcpFree.TotalTime;
  Report.Tpd = static_cast<int64_t>(Original.TotalTime) -
               static_cast<int64_t>(UlcpFree.TotalTime);
  Report.SpinWaitOriginal = Original.SpinWaitNs;
  Report.SpinWaitUlcpFree = UlcpFree.SpinWaitNs;
  Report.NumThreads = static_cast<unsigned>(Tr.numThreads());

  std::vector<int64_t> Deltas =
      ulcpImprovements(Original, UlcpFree, UnnecessaryPairs);
  for (int64_t D : Deltas)
    Report.SumDelta += D;
  // Resource wasting: the paper computes Trw = sum(dT) - Tpd — benefit
  // that does not shorten the critical path.  Our replayer can also
  // measure the waste directly as the spin-wait CPU the transformation
  // eliminates (the paper's canonical waste: spin-lock polling off the
  // critical path); take the stronger of the two signals.
  int64_t OffPath = Report.SumDelta - Report.Tpd;
  int64_t SpinSaved = static_cast<int64_t>(Original.SpinWaitNs) -
                      static_cast<int64_t>(UlcpFree.SpinWaitNs);
  Report.Trw = std::max({OffPath, SpinSaved, int64_t(0)});

  Report.Groups = fuseUlcps(Tr, Index, UnnecessaryPairs, Deltas);
  rankUlcpGroups(Report.Groups);
  return Report;
}

std::string perfplay::renderReport(const PerfDebugReport &Report) {
  std::ostringstream OS;
  OS << "PerfPlay ULCP performance report\n";
  OS << "  original replay time : " << formatNs(Report.OriginalTime)
     << "\n";
  OS << "  ULCP-free replay time: " << formatNs(Report.UlcpFreeTime)
     << "\n";
  OS << "  performance degradation (Tpd): "
     << formatNs(Report.Tpd < 0 ? 0 : static_cast<TimeNs>(Report.Tpd))
     << " (" << formatPercent(Report.normalizedDegradation()) << ")\n";
  OS << "  resource wasting (Trw): "
     << formatNs(static_cast<TimeNs>(Report.Trw))
     << " (per-thread "
     << formatPercent(Report.normalizedCpuWastePerThread()) << ")\n";
  OS << "  grouped ULCP code regions: " << Report.Groups.size() << "\n\n";

  Table T;
  T.addRow({"#", "P", "dT", "pairs", "region 1", "region 2"});
  unsigned Rank = 1;
  for (const FusedUlcp &G : Report.Groups) {
    auto regionStr = [](const CodeRegion &R) {
      return R.File + ":" + std::to_string(R.Lines.Begin) + "-" +
             std::to_string(R.Lines.End);
    };
    T.addRow({std::to_string(Rank++), formatPercent(G.P),
              formatNs(static_cast<TimeNs>(G.DeltaNs < 0 ? 0 : G.DeltaNs)),
              std::to_string(G.PairCount), regionStr(G.CR1),
              regionStr(G.CR2)});
  }
  OS << T.render();
  if (!Report.Groups.empty())
    OS << "\nrecommendation: fix the code regions of group #1 first ("
       << formatPercent(Report.Groups.front().P)
       << " of the total ULCP optimization opportunity)\n";
  return OS.str();
}
