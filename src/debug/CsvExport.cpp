//===- debug/CsvExport.cpp - CSV export of analysis results ------------------===//

#include "debug/CsvExport.h"

#include "support/Format.h"

#include <sstream>

using namespace perfplay;

std::string perfplay::csvEscape(const std::string &Field) {
  bool Needs = Field.find_first_of(",\"\n") != std::string::npos;
  if (!Needs)
    return Field;
  std::string Out = "\"";
  for (char C : Field) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

std::string perfplay::detectionToCsv(const DetectResult &Detection) {
  std::ostringstream OS;
  OS << "first,second,kind\n";
  for (const UlcpPair &P : Detection.Pairs)
    OS << P.First << "," << P.Second << "," << ulcpKindName(P.Kind)
       << "\n";
  return OS.str();
}

std::string perfplay::reportToCsv(const PerfDebugReport &Report) {
  std::ostringstream OS;
  OS << "rank,p,delta_ns,pairs,file1,begin1,end1,file2,begin2,end2\n";
  unsigned Rank = 1;
  for (const FusedUlcp &G : Report.Groups) {
    OS << Rank++ << "," << formatDouble(G.P, 6) << "," << G.DeltaNs
       << "," << G.PairCount << "," << csvEscape(G.CR1.File) << ","
       << G.CR1.Lines.Begin << "," << G.CR1.Lines.End << ","
       << csvEscape(G.CR2.File) << "," << G.CR2.Lines.Begin << ","
       << G.CR2.Lines.End << "\n";
  }
  return OS.str();
}
