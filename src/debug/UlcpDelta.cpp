//===- debug/UlcpDelta.cpp - Equation 1: per-ULCP improvement --------------===//

#include "debug/UlcpDelta.h"

#include <algorithm>
#include <cassert>

using namespace perfplay;

UlcpTimestamps perfplay::ulcpTimestamps(const ReplayResult &R,
                                        const UlcpPair &P) {
  assert(P.First < R.Sections.size() && P.Second < R.Sections.size() &&
         "pair references unknown sections");
  const CsTiming &A = R.Sections[P.First];
  const CsTiming &B = R.Sections[P.Second];
  UlcpTimestamps TS;
  TS.Time1 = A.PrecursorStart == NeverNs ? 0 : A.PrecursorStart;
  // A successor segment that never reached another sync point ends at
  // the section's release.
  TS.Time2 = A.SuccessorEnd != NeverNs ? A.SuccessorEnd : A.Released;
  TS.Time3 = B.SuccessorEnd != NeverNs ? B.SuccessorEnd : B.Released;
  if (TS.Time2 == NeverNs)
    TS.Time2 = 0;
  if (TS.Time3 == NeverNs)
    TS.Time3 = 0;
  return TS;
}

int64_t perfplay::ulcpImprovement(const ReplayResult &Original,
                                  const ReplayResult &Free,
                                  const UlcpPair &P) {
  // Figure 10 measures the serialization the pair itself caused: the
  // second section arrived while the first held the lock and received
  // it directly at the first's release.  Pairs without that direct
  // handoff contributed no contention of their own (any serialization
  // they suffered is attributed to the pair that actually blocked
  // them), keeping the per-pair sum linear instead of quadratic.
  const CsTiming &A = Original.Sections[P.First];
  const CsTiming &B = Original.Sections[P.Second];
  bool Contended = B.Arrival != NeverNs && A.Released != NeverNs &&
                   B.Arrival < A.Released && B.Granted != NeverNs &&
                   B.Granted == A.Released;
  if (!Contended)
    return 0;

  UlcpTimestamps Before = ulcpTimestamps(Original, P);
  UlcpTimestamps After = ulcpTimestamps(Free, P);
  int64_t DeltaMax =
      static_cast<int64_t>(std::max(Before.Time2, Before.Time3)) -
      static_cast<int64_t>(std::max(After.Time2, After.Time3));
  int64_t DeltaTime1 = static_cast<int64_t>(Before.Time1) -
                       static_cast<int64_t>(After.Time1);
  int64_t Delta = DeltaMax - DeltaTime1;
  return Delta < 0 ? 0 : Delta;
}

std::vector<int64_t>
perfplay::ulcpImprovements(const ReplayResult &Original,
                           const ReplayResult &Free,
                           const std::vector<UlcpPair> &Pairs) {
  std::vector<int64_t> Out;
  Out.reserve(Pairs.size());
  for (const UlcpPair &P : Pairs)
    Out.push_back(ulcpImprovement(Original, Free, P));
  return Out;
}
