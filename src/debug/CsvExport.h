//===- debug/CsvExport.h - CSV export of analysis results --------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV rendering of detection results and the final report, for
/// plotting the paper's figures from this reproduction's outputs.
/// Fields containing commas/quotes/newlines are quoted per RFC 4180.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DEBUG_CSVEXPORT_H
#define PERFPLAY_DEBUG_CSVEXPORT_H

#include "debug/Report.h"
#include "detect/Detector.h"

#include <string>

namespace perfplay {

/// Escapes one CSV field per RFC 4180.
std::string csvEscape(const std::string &Field);

/// Detection pairs as CSV: first,second,kind.
std::string detectionToCsv(const DetectResult &Detection);

/// Report groups as CSV: rank,p,delta_ns,pairs,file1,lines1,file2,lines2.
std::string reportToCsv(const PerfDebugReport &Report);

} // namespace perfplay

#endif // PERFPLAY_DEBUG_CSVEXPORT_H
