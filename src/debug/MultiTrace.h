//===- debug/MultiTrace.h - Multi-trace aggregation -------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.7 notes that PERFPLAY "can be extended to multiple
/// traces": a single trace only witnesses one input/schedule, so a
/// code region's opportunity should be judged across several recorded
/// runs.  This module merges per-run reports: groups whose code
/// regions coincide across runs are combined (accumulating their
/// improvements), Equation 2 is re-normalized over the union, and a
/// region is annotated with the number of runs that exhibited it —
/// regions that appear in every run are safer recommendations than
/// input-specific ones.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DEBUG_MULTITRACE_H
#define PERFPLAY_DEBUG_MULTITRACE_H

#include "debug/Report.h"

#include <vector>

namespace perfplay {

/// One fused group aggregated across runs.
struct AggregatedUlcp {
  FusedUlcp Group;
  /// Number of runs in which this code-region pair appeared.
  unsigned RunsSeen = 0;
};

/// Aggregate of several per-run reports.
struct AggregatedReport {
  unsigned NumRuns = 0;
  /// Runs that never produced a report (failed batch items); set by
  /// Engine-level aggregation, zero when aggregating reports directly.
  unsigned NumFailed = 0;
  /// Mean normalized degradation across runs.
  double MeanDegradation = 0.0;
  /// Mean normalized CPU waste per thread across runs.
  double MeanCpuWastePerThread = 0.0;
  /// Region groups merged across runs, ranked by Equation 2 over the
  /// aggregated improvements (ties broken toward regions seen in more
  /// runs — stable opportunities first).
  std::vector<AggregatedUlcp> Groups;
};

/// Merges \p Reports (each from one recorded run of the same program).
AggregatedReport aggregateReports(
    const std::vector<PerfDebugReport> &Reports);

/// Renders the aggregate as text.
std::string renderAggregatedReport(const AggregatedReport &Report);

} // namespace perfplay

#endif // PERFPLAY_DEBUG_MULTITRACE_H
