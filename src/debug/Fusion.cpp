//===- debug/Fusion.cpp - Algorithm 2: ULCP fusion --------------------------===//

#include "debug/Fusion.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

using namespace perfplay;

bool perfplay::regionsOverlap(const CodeRegion &A, const CodeRegion &B) {
  return A.File == B.File && overlaps(A.Lines, B.Lines);
}

CodeRegion perfplay::conflateRegions(const CodeRegion &A,
                                     const CodeRegion &B) {
  assert(regionsOverlap(A, B) && "conflating disjoint regions");
  CodeRegion Out;
  Out.File = A.File;
  Out.Lines = unite(A.Lines, B.Lines);
  return Out;
}

CodeRegion perfplay::regionOfSection(const Trace &Tr,
                                     const CriticalSection &Cs) {
  CodeRegion Region;
  if (Cs.Site == InvalidId) {
    // Sections without a site fuse only with themselves; synthesize a
    // per-lock pseudo-file so unrelated sections stay apart.
    Region.File = "<unknown:" + std::string(Tr.lockName(Cs.Lock)) + ">";
    Region.Lines = LineInterval(1, 1);
    return Region;
  }
  // CodeRegion materializes the pooled name: reports are part of the
  // frozen PipelineResult surface and must outlive the trace (and any
  // mmap its pool borrows from).
  const CodeSite &Site = Tr.Sites[Cs.Site];
  Region.File = std::string(Tr.siteFile(Cs.Site));
  Region.Lines = LineInterval(Site.BeginLine, Site.EndLine);
  return Region;
}

bool perfplay::fuseUlcpGroups(FusedUlcp &A, const FusedUlcp &B) {
  // Algorithm 2, lines 1-4: matching orientation.
  if (regionsOverlap(A.CR1, B.CR1) && regionsOverlap(A.CR2, B.CR2)) {
    A.CR1 = conflateRegions(A.CR1, B.CR1);
    A.CR2 = conflateRegions(A.CR2, B.CR2);
  } else if (regionsOverlap(A.CR1, B.CR2) &&
             regionsOverlap(A.CR2, B.CR1)) {
    // Lines 5-8: swapped orientation (also covers nested locks).
    A.CR1 = conflateRegions(A.CR1, B.CR2);
    A.CR2 = conflateRegions(A.CR2, B.CR1);
  } else {
    return false; // Lines 9-10: not mergeable.
  }
  A.DeltaNs += B.DeltaNs;
  A.PairCount += B.PairCount;
  return true;
}

std::vector<FusedUlcp>
perfplay::fuseUlcps(const Trace &Tr, const CsIndex &Index,
                    const std::vector<UlcpPair> &Pairs,
                    const std::vector<int64_t> &Deltas) {
  assert(Pairs.size() == Deltas.size() &&
         "one improvement per pair expected");

  std::vector<FusedUlcp> Groups;
  for (size_t I = 0; I != Pairs.size(); ++I) {
    FusedUlcp Fresh;
    Fresh.CR1 = regionOfSection(Tr, Index.byGlobalId(Pairs[I].First));
    Fresh.CR2 = regionOfSection(Tr, Index.byGlobalId(Pairs[I].Second));
    Fresh.DeltaNs = Deltas[I];
    Fresh.PairCount = 1;

    bool Absorbed = false;
    for (FusedUlcp &G : Groups)
      if (fuseUlcpGroups(G, Fresh)) {
        Absorbed = true;
        break;
      }
    if (!Absorbed)
      Groups.push_back(std::move(Fresh));
  }

  // Conflation can widen regions and enable further merges; iterate to
  // a fixpoint ("the final state of the ULCP group is that any two
  // ULCPs can not be fused further").
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Groups.size() && !Changed; ++I)
      for (size_t J = I + 1; J < Groups.size(); ++J)
        if (fuseUlcpGroups(Groups[I], Groups[J])) {
          Groups.erase(Groups.begin() + static_cast<ptrdiff_t>(J));
          Changed = true;
          break;
        }
  }
  return Groups;
}

void perfplay::rankUlcpGroups(std::vector<FusedUlcp> &Groups) {
  int64_t Total = 0;
  for (const FusedUlcp &G : Groups)
    Total += G.DeltaNs;
  for (FusedUlcp &G : Groups)
    G.P = Total > 0 ? static_cast<double>(G.DeltaNs) /
                          static_cast<double>(Total)
                    : 0.0;
  std::stable_sort(Groups.begin(), Groups.end(),
                   [](const FusedUlcp &A, const FusedUlcp &B) {
                     if (A.P != B.P)
                       return A.P > B.P;
                     if (A.PairCount != B.PairCount)
                       return A.PairCount > B.PairCount;
                     if (A.CR1.File != B.CR1.File)
                       return A.CR1.File < B.CR1.File;
                     return A.CR1.Lines.Begin < B.CR1.Lines.Begin;
                   });
}
