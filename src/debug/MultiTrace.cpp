//===- debug/MultiTrace.cpp - Multi-trace aggregation -----------------------===//

#include "debug/MultiTrace.h"

#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <sstream>

using namespace perfplay;

AggregatedReport perfplay::aggregateReports(
    const std::vector<PerfDebugReport> &Reports) {
  AggregatedReport Out;
  Out.NumRuns = static_cast<unsigned>(Reports.size());
  if (Reports.empty())
    return Out;

  double SumDeg = 0.0, SumWaste = 0.0;
  for (const PerfDebugReport &R : Reports) {
    SumDeg += R.normalizedDegradation();
    SumWaste += R.normalizedCpuWastePerThread();
  }
  SumDeg /= static_cast<double>(Reports.size());
  SumWaste /= static_cast<double>(Reports.size());
  Out.MeanDegradation = SumDeg;
  Out.MeanCpuWastePerThread = SumWaste;

  // Merge groups across runs with the same Algorithm-2 operators; a
  // run contributes at most one sighting per aggregated group.
  for (const PerfDebugReport &R : Reports) {
    std::vector<bool> Counted(Out.Groups.size(), false);
    for (const FusedUlcp &G : R.Groups) {
      bool Absorbed = false;
      for (size_t I = 0; I != Out.Groups.size(); ++I) {
        FusedUlcp Candidate = G;
        if (fuseUlcpGroups(Out.Groups[I].Group, Candidate)) {
          if (!Counted[I]) {
            ++Out.Groups[I].RunsSeen;
            Counted[I] = true;
          }
          Absorbed = true;
          break;
        }
      }
      if (!Absorbed) {
        AggregatedUlcp Fresh;
        Fresh.Group = G;
        Fresh.RunsSeen = 1;
        Out.Groups.push_back(std::move(Fresh));
        Counted.push_back(true);
      }
    }
  }

  // Re-normalize Equation 2 over the union and rank; stability (runs
  // seen) breaks ties.
  int64_t Total = 0;
  for (const AggregatedUlcp &G : Out.Groups)
    Total += G.Group.DeltaNs;
  for (AggregatedUlcp &G : Out.Groups)
    G.Group.P = Total > 0 ? static_cast<double>(G.Group.DeltaNs) /
                                static_cast<double>(Total)
                          : 0.0;
  std::stable_sort(Out.Groups.begin(), Out.Groups.end(),
                   [](const AggregatedUlcp &A, const AggregatedUlcp &B) {
                     if (A.Group.P != B.Group.P)
                       return A.Group.P > B.Group.P;
                     if (A.RunsSeen != B.RunsSeen)
                       return A.RunsSeen > B.RunsSeen;
                     return A.Group.PairCount > B.Group.PairCount;
                   });
  return Out;
}

std::string perfplay::renderAggregatedReport(
    const AggregatedReport &Report) {
  std::ostringstream OS;
  OS << "PerfPlay aggregated ULCP report (" << Report.NumRuns
     << " runs)\n";
  if (Report.NumFailed != 0)
    OS << "  " << Report.NumFailed << " further run(s) failed and are"
       << " excluded\n";
  OS << "  mean degradation: " << formatPercent(Report.MeanDegradation)
     << ", mean CPU waste/thread: "
     << formatPercent(Report.MeanCpuWastePerThread) << "\n\n";
  Table T;
  T.addRow({"#", "P", "dT", "pairs", "runs", "region 1", "region 2"});
  unsigned Rank = 1;
  for (const AggregatedUlcp &G : Report.Groups) {
    auto regionStr = [](const CodeRegion &R) {
      return R.File + ":" + std::to_string(R.Lines.Begin) + "-" +
             std::to_string(R.Lines.End);
    };
    T.addRow({std::to_string(Rank++), formatPercent(G.Group.P),
              formatNs(static_cast<TimeNs>(
                  G.Group.DeltaNs < 0 ? 0 : G.Group.DeltaNs)),
              std::to_string(G.Group.PairCount),
              std::to_string(G.RunsSeen) + "/" +
                  std::to_string(Report.NumRuns),
              regionStr(G.Group.CR1), regionStr(G.Group.CR2)});
  }
  OS << T.render();
  return OS.str();
}
