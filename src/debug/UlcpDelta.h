//===- debug/UlcpDelta.h - Equation 1: per-ULCP improvement -----*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Equation 1 of Section 4.1: the performance improvement of one ULCP
/// is
///
///   dT_ULCP = dMAX{Time2, Time3} - dTime1
///
/// where Time1 is the start of the first section's precursor segment,
/// Time2/Time3 are the ends of the two sections' successor segments
/// (Figure 10), and the d-operator is the before-minus-after difference
/// between the original replay and the ULCP-free replay.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DEBUG_ULCPDELTA_H
#define PERFPLAY_DEBUG_ULCPDELTA_H

#include "detect/Ulcp.h"
#include "sim/ReplayResult.h"

#include <cstdint>
#include <vector>

namespace perfplay {

/// The three labeled timestamps of a ULCP in one replay (Figure 10).
struct UlcpTimestamps {
  TimeNs Time1 = 0;
  TimeNs Time2 = 0;
  TimeNs Time3 = 0;
};

/// Extracts Time1/2/3 of pair \p P from replay \p R.
UlcpTimestamps ulcpTimestamps(const ReplayResult &R, const UlcpPair &P);

/// Equation 1: improvement of \p P between the original replay
/// \p Original and the ULCP-free replay \p Free, in virtual ns.
/// Negative values (transformation did not help this pair) are
/// clamped to zero, matching the paper's accumulation of benefits.
int64_t ulcpImprovement(const ReplayResult &Original,
                        const ReplayResult &Free, const UlcpPair &P);

/// Convenience: Equation 1 over a batch of pairs.
std::vector<int64_t> ulcpImprovements(const ReplayResult &Original,
                                      const ReplayResult &Free,
                                      const std::vector<UlcpPair> &Pairs);

} // namespace perfplay

#endif // PERFPLAY_DEBUG_ULCPDELTA_H
