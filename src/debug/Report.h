//===- debug/Report.h - Performance debugging report ------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end product of PERFPLAY: per-code-region optimization
/// opportunities ranked by Equation 2, plus the whole-program metrics
/// of Section 6.3 — performance degradation Tpd = Tut - Tuft and
/// resource wasting Trw = sum(dT_ULCP) - Tpd.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_DEBUG_REPORT_H
#define PERFPLAY_DEBUG_REPORT_H

#include "debug/Fusion.h"
#include "sim/ReplayResult.h"

#include <string>
#include <vector>

namespace perfplay {

/// Whole-program ULCP performance report.
struct PerfDebugReport {
  /// Replayed completion time of the original trace (Tut).
  TimeNs OriginalTime = 0;
  /// Replayed completion time of the ULCP-free trace (Tuft).
  TimeNs UlcpFreeTime = 0;
  /// Performance degradation Tpd = Tut - Tuft (>= 0 when the
  /// transformation helps).
  int64_t Tpd = 0;
  /// Sum of per-ULCP improvements (Equation 1) over all pairs.
  int64_t SumDelta = 0;
  /// Resource wasting Trw = SumDelta - Tpd: benefit burned off the
  /// critical path (e.g. spin cycles), per Section 6.3.
  int64_t Trw = 0;
  /// Direct spin-wait accounting from the two replays (our simulator
  /// can measure what the paper infers).
  TimeNs SpinWaitOriginal = 0;
  TimeNs SpinWaitUlcpFree = 0;
  unsigned NumThreads = 0;

  /// Fused, ranked groups (Equation 2).  Groups.front() is the
  /// paper's ULCP_1 recommendation.
  std::vector<FusedUlcp> Groups;

  /// Tpd normalized by the original time (Figure 14's "performance
  /// degradation" bar).
  double normalizedDegradation() const;
  /// Per-thread CPU wasting normalized by the original time (Figure
  /// 14's "CPU time wasting per thread" bar): (Trw / Nthread) / Tut.
  double normalizedCpuWastePerThread() const;
};

/// Builds the report from detection + the two replays.
PerfDebugReport buildReport(const Trace &Tr, const CsIndex &Index,
                            const std::vector<UlcpPair> &UnnecessaryPairs,
                            const ReplayResult &Original,
                            const ReplayResult &UlcpFree);

/// Renders the report as human-readable text (the "list of potential
/// optimization benefits" of Figure 5).
std::string renderReport(const PerfDebugReport &Report);

} // namespace perfplay

#endif // PERFPLAY_DEBUG_REPORT_H
