//===- serve/TraceCache.cpp - Shared trace/result LRU for serve -------------===//

#include "serve/TraceCache.h"

#include "support/MappedFile.h"
#include "trace/TraceIO.h"

using namespace perfplay;
using namespace perfplay::serve;

uint64_t perfplay::serve::hashBytes(const uint8_t *Data, size_t Size) {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  for (size_t I = 0; I != Size; ++I) {
    H ^= Data[I];
    H *= 1099511628211ull; // FNV prime
  }
  return H;
}

Expected<Trace> TraceCache::getTrace(const std::string &Path,
                                     uint64_t &HashOut, bool &FromCache,
                                     bool Bypass) {
  // Map (or read) the file and hash its contents.  Admission is the
  // mmap + one linear hash pass; the mapping dies with this call, so
  // the parse interns owned names.
  MappedFile File;
  std::string Err;
  if (!File.open(Path, Err))
    return PipelineError(ErrorCode::TraceIOFailed, std::move(Err));
  HashOut = hashBytes(File.data(), File.size());
  return getTraceBytes(File.data(), File.size(), HashOut, Path, FromCache,
                       Bypass);
}

Expected<Trace> TraceCache::getTraceBytes(const uint8_t *Data, size_t Size,
                                          uint64_t Hash,
                                          const std::string &Diag,
                                          bool &FromCache, bool Bypass) {
  FromCache = false;

  auto parse = [&]() -> Expected<Trace> {
    Trace Tr;
    std::string ParseErr;
    bool Ok = Parser ? Parser(Data, Size, Tr, ParseErr)
                     : parseTraceBuffer(Data, Size, Tr, ParseErr);
    if (!Ok)
      return PipelineError(ErrorCode::TraceIOFailed,
                           Diag + ": " + ParseErr);
    return Tr;
  };

  if (Bypass || BudgetBytes == 0)
    return parse();

  for (;;) {
    // Hit path: shared lock only; recency goes through the atomic
    // clock so concurrent hits never serialize on the writer path.
    {
      SharedMutexReadLock Lock(CacheMu);
      auto It = Traces.find(Hash);
      if (It != Traces.end()) {
        It->second->LastUse.store(bumpClock(), std::memory_order_relaxed);
        TraceHits.fetch_add(1, std::memory_order_relaxed);
        FromCache = true;
        return Trace(*It->second->Tr);
      }
    }

    // Miss: claim the parse, or wait for whoever already claimed it
    // and re-check the cache.  FlightMu is a leaf — CacheMu is not
    // held here and is not taken while FlightMu is held.
    {
      MutexLock Lock(FlightMu);
      if (InFlight.count(Hash)) {
        while (InFlight.count(Hash))
          FlightCv.wait(FlightMu);
        continue; // The parser finished (or failed) — re-check.
      }
      InFlight.insert(Hash);
    }
    break;
  }

  TraceMisses.fetch_add(1, std::memory_order_relaxed);
  Expected<Trace> Parsed = parse(); // no locks held

  if (Parsed) {
    auto Entry = std::make_unique<TraceEntry>();
    Entry->Tr = std::make_shared<const Trace>(*Parsed);
    Entry->Charge = Size;
    Entry->LastUse.store(bumpClock(), std::memory_order_relaxed);
    SharedMutexWriteLock Lock(CacheMu);
    auto &Slot = Traces[Hash];
    if (!Slot) { // A Bypass racer cannot exist, but stay idempotent.
      TotalBytes += Entry->Charge;
      Slot = std::move(Entry);
      evictToBudget();
    }
  }

  {
    MutexLock Lock(FlightMu);
    InFlight.erase(Hash);
  }
  FlightCv.notifyAll();
  return Parsed;
}

bool TraceCache::lookupResult(uint64_t Hash, uint64_t OptionsFp,
                              ResultSummary &Out) {
  if (BudgetBytes == 0) {
    ResultMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  SharedMutexReadLock Lock(CacheMu);
  auto It = Results.find({Hash, OptionsFp});
  if (It == Results.end()) {
    ResultMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  It->second->LastUse.store(bumpClock(), std::memory_order_relaxed);
  ResultHits.fetch_add(1, std::memory_order_relaxed);
  Out = It->second->Sum;
  return true;
}

void TraceCache::storeResult(uint64_t Hash, uint64_t OptionsFp,
                             const ResultSummary &Sum) {
  if (BudgetBytes == 0)
    return;
  auto Entry = std::make_unique<ResultEntry>();
  Entry->Sum = Sum;
  Entry->Charge = sizeof(ResultEntry) + 2 * sizeof(uint64_t);
  Entry->LastUse.store(bumpClock(), std::memory_order_relaxed);
  SharedMutexWriteLock Lock(CacheMu);
  auto &Slot = Results[{Hash, OptionsFp}];
  if (!Slot) {
    TotalBytes += Entry->Charge;
    Slot = std::move(Entry);
    evictToBudget();
  }
}

void TraceCache::evictToBudget() {
  while (TotalBytes > BudgetBytes) {
    // Scan both maps for the globally least-recently-used entry.  The
    // maps are small (bounded by the budget) and eviction runs under
    // the exclusive lock, so the linear scan beats maintaining an
    // intrusive LRU list that every shared-lock hit would mutate.
    uint64_t OldestUse = ~0ull;
    auto OldestTrace = Traces.end();
    auto OldestResult = Results.end();
    for (auto It = Traces.begin(); It != Traces.end(); ++It) {
      uint64_t Use = It->second->LastUse.load(std::memory_order_relaxed);
      if (Use < OldestUse) {
        OldestUse = Use;
        OldestTrace = It;
        OldestResult = Results.end();
      }
    }
    for (auto It = Results.begin(); It != Results.end(); ++It) {
      uint64_t Use = It->second->LastUse.load(std::memory_order_relaxed);
      if (Use < OldestUse) {
        OldestUse = Use;
        OldestResult = It;
        OldestTrace = Traces.end();
      }
    }
    if (OldestResult != Results.end()) {
      TotalBytes -= OldestResult->second->Charge;
      Results.erase(OldestResult);
    } else if (OldestTrace != Traces.end()) {
      TotalBytes -= OldestTrace->second->Charge;
      Traces.erase(OldestTrace);
    } else {
      break; // Both maps empty; nothing left to shed.
    }
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

void TraceCache::fillStats(ServeStats &Stats) const {
  Stats.TraceCacheHits = TraceHits.load(std::memory_order_relaxed);
  Stats.TraceCacheMisses = TraceMisses.load(std::memory_order_relaxed);
  Stats.ResultCacheHits = ResultHits.load(std::memory_order_relaxed);
  Stats.ResultCacheMisses = ResultMisses.load(std::memory_order_relaxed);
  Stats.CacheEvictions = Evictions.load(std::memory_order_relaxed);
  SharedMutexReadLock Lock(CacheMu);
  Stats.CachedTraces = Traces.size();
  Stats.CachedResults = Results.size();
  Stats.CacheBytes = TotalBytes;
}
