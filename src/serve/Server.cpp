//===- serve/Server.cpp - The perfplay serve daemon -------------------------===//

#include "serve/Server.h"

#include "support/MappedFile.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace perfplay;
using namespace perfplay::serve;

namespace {

/// How long blocking waits (accept poll, worker connection poll) sleep
/// between checks of the stop flag.
constexpr int StopPollMs = 100;

constexpr size_t LatencyRingSize = 1024;

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Eng(Opts.Pipeline),
      Cache(Opts.CacheBudgetBytes) {
  Limits.MaxFrameBytes = Opts.MaxFrameBytes;
  Workers = Opts.NumWorkers ? Opts.NumWorkers
                            : std::max(1u, std::thread::hardware_concurrency());
  // Fair share: workers x per-request detect threads never exceeds the
  // machine — the same budget rule the batch fan-out applies.
  DetectThreads =
      Engine::cappedDetectThreads(Opts.Pipeline.Detect.NumThreads, Workers);
  Eng.options().Detect.NumThreads = DetectThreads;
  LatencyRing.resize(LatencyRingSize, 0);
}

Server::~Server() { stop(); }

Expected<void> Server::start() {
  if (Started.exchange(true))
    return PipelineError(ErrorCode::ProtocolError, "server already started");

  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return PipelineError(ErrorCode::ProtocolError,
                         "bad socket path: " + Opts.SocketPath);
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ::unlink(Opts.SocketPath.c_str()); // Stale socket from a dead daemon.
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return PipelineError(ErrorCode::ProtocolError,
                         std::string("socket: ") + std::strerror(errno));
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, static_cast<int>(Opts.MaxQueueDepth) + 16) != 0) {
    std::string Msg = "bind/listen " + Opts.SocketPath + ": " +
                      std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return PipelineError(ErrorCode::ProtocolError, std::move(Msg));
  }

  AcceptThread = std::thread([this] { acceptLoop(); });
  WorkerThreads.reserve(Workers);
  for (unsigned I = 0; I != Workers; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  return Expected<void>();
}

void Server::stop() {
  Stopping.store(true);
  QueueCv.notifyAll();
  joinAll();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Opts.SocketPath.c_str());
  }
}

void Server::wait() { joinAll(); }

void Server::joinAll() {
  if (AcceptThread.joinable())
    AcceptThread.join();
  for (std::thread &T : WorkerThreads)
    if (T.joinable())
      T.join();
}

void Server::acceptLoop() {
  while (!Stopping.load()) {
    struct pollfd Pfd = {ListenFd, POLLIN, 0};
    int Rc = ::poll(&Pfd, 1, StopPollMs);
    if (Rc <= 0)
      continue; // Timeout (re-check the stop flag) or EINTR.
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;

    bool Shed = false;
    {
      MutexLock Lock(QueueMu);
      if (Queue.size() >= Opts.MaxQueueDepth)
        Shed = true;
      else
        Queue.push_back(Fd);
    }
    if (Shed) {
      // Admission control: answer with the typed overload error and
      // close instead of queueing unboundedly.
      RequestsRejected.fetch_add(1, std::memory_order_relaxed);
      std::string Err;
      writeFrame(Fd, FrameType::ErrorResponse,
                 encodeError(ErrorCode::ServerOverloaded,
                             "connection queue full; retry later"),
                 Err);
      ::close(Fd);
    } else {
      QueueCv.notifyOne();
    }
  }
}

int Server::popConnection() {
  MutexLock Lock(QueueMu);
  while (Queue.empty() && !Stopping.load())
    QueueCv.wait(QueueMu);
  if (Queue.empty())
    return -1; // Stopping and drained.
  int Fd = Queue.front();
  Queue.pop_front();
  return Fd;
}

void Server::workerLoop() {
  for (;;) {
    int Fd = popConnection();
    if (Fd < 0)
      return;
    serveConnection(Fd);
    ::close(Fd);
  }
}

void Server::serveConnection(int Fd) {
  int IdleMs = 0;
  for (;;) {
    // Wait for the next frame in StopPollMs slices so shutdown and the
    // idle timeout are both honored between requests; once bytes are
    // ready readFrame itself blocks only for the (already in-flight)
    // frame body.
    struct pollfd Pfd = {Fd, POLLIN, 0};
    int Rc = ::poll(&Pfd, 1, StopPollMs);
    if (Rc < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    if (Rc == 0) {
      if (Stopping.load())
        return; // Drained: between frames, nothing in flight.
      IdleMs += StopPollMs;
      if (Opts.IdleTimeoutMs > 0 && IdleMs >= Opts.IdleTimeoutMs)
        return;
      continue;
    }
    IdleMs = 0;

    Frame Request;
    std::string Err;
    int ReadRc = readFrame(Fd, Request, Limits, Err);
    if (ReadRc == 0)
      return; // Clean EOF: the client is done.
    if (ReadRc < 0) {
      // Unframable stream (oversized prefix, truncation, socket
      // error): drop the connection; the daemon keeps serving.
      ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    switch (Request.Type) {
    case FrameType::AnalyzeRequest: {
      AnalyzeRequest Req;
      if (!decodeAnalyzeRequest(Request.Payload.data(),
                                Request.Payload.size(), Req, Err)) {
        ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
        writeFrame(Fd, FrameType::ErrorResponse,
                   encodeError(ErrorCode::ProtocolError, Err), Err);
        break; // Still framable — keep the connection.
      }
      uint64_t T0 = nowMicros();
      Expected<ResultSummary> SumOr = handleAnalyze(Req);
      recordLatency(nowMicros() - T0);
      if (SumOr) {
        RequestsServed.fetch_add(1, std::memory_order_relaxed);
        writeFrame(Fd, FrameType::ResultResponse,
                   encodeResultSummary(*SumOr), Err);
      } else {
        RequestsFailed.fetch_add(1, std::memory_order_relaxed);
        writeFrame(Fd, FrameType::ErrorResponse,
                   encodeError(SumOr.error().Code, SumOr.error().Message),
                   Err);
      }
      break;
    }
    case FrameType::StatsRequest:
      writeFrame(Fd, FrameType::StatsResponse, encodeServeStats(stats()),
                 Err);
      break;
    case FrameType::ShutdownRequest:
      // Acknowledge with the final counters, then flip the stop flag.
      // Joining happens in stop()/wait() on the main thread.
      writeFrame(Fd, FrameType::StatsResponse, encodeServeStats(stats()),
                 Err);
      Stopping.store(true);
      QueueCv.notifyAll();
      return;
    default:
      ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      writeFrame(Fd, FrameType::ErrorResponse,
                 encodeError(ErrorCode::ProtocolError,
                             "unknown request type"),
                 Err);
      break;
    }
  }
}

Expected<ResultSummary> Server::handleAnalyze(const AnalyzeRequest &Req) {
  // Map + hash once; the hash keys both caches.
  MappedFile File;
  std::string Err;
  if (!File.open(Req.Path, Err))
    return PipelineError(ErrorCode::TraceIOFailed, std::move(Err));
  uint64_t Hash = hashBytes(File.data(), File.size());
  // The options fingerprint is the verdict-changing option subset the
  // wire exposes — today exactly PairMode.
  uint64_t Fp = Req.PairMode;
  bool Bypass = Req.NoCache != 0;

  ResultSummary Sum;
  if (!Bypass && Cache.lookupResult(Hash, Fp, Sum)) {
    Sum.FromResultCache = 1;
    Sum.FromTraceCache = 1;
    return Sum;
  }

  bool TraceFromCache = false;
  Expected<Trace> TrOr = Cache.getTraceBytes(
      File.data(), File.size(), Hash, Req.Path, TraceFromCache, Bypass);
  if (!TrOr)
    return TrOr.error();

  Engine E = Eng; // Cheap: options + callback.
  E.options().Detect.PairMode = Req.PairMode
                                    ? PairModeKind::AllCrossThread
                                    : PairModeKind::AdjacentCrossThread;
  Expected<PipelineResult> ResultOr = E.analyzeTrace(std::move(*TrOr));
  if (!ResultOr)
    return ResultOr.error();

  Sum = summarizeResult(*ResultOr);
  Sum.FromTraceCache = TraceFromCache ? 1 : 0;
  if (!Bypass)
    Cache.storeResult(Hash, Fp, Sum);
  return Sum;
}

void Server::recordLatency(uint64_t Micros) {
  MutexLock Lock(LatencyMu);
  LatencyRing[LatencyNext] = Micros;
  LatencyNext = (LatencyNext + 1) % LatencyRing.size();
  LatencyCount = std::min(LatencyCount + 1, LatencyRing.size());
}

ServeStats Server::stats() const {
  ServeStats S;
  S.RequestsServed = RequestsServed.load(std::memory_order_relaxed);
  S.RequestsFailed = RequestsFailed.load(std::memory_order_relaxed);
  S.ProtocolErrors = ProtocolErrors.load(std::memory_order_relaxed);
  S.RequestsRejected = RequestsRejected.load(std::memory_order_relaxed);
  Cache.fillStats(S);
  {
    MutexLock Lock(QueueMu);
    S.QueueDepth = Queue.size();
  }
  {
    MutexLock Lock(LatencyMu);
    size_t N = LatencyCount;
    if (N > 0) {
      std::vector<uint64_t> Sorted(LatencyRing.begin(),
                                   LatencyRing.begin() +
                                       static_cast<long>(N));
      std::sort(Sorted.begin(), Sorted.end());
      S.P50Micros = Sorted[N / 2];
      S.P99Micros = Sorted[std::min(N - 1, (N * 99) / 100)];
    }
  }
  return S;
}
