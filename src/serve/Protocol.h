//===- serve/Protocol.h - Serve daemon wire protocol -------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `perfplay serve` wire protocol: a small length-prefixed framed
/// request/response format over a unix-domain stream socket, plus the
/// blocking client the CLI, tests, and benches use to speak it.
///
/// Every frame is
///
///   u32 PayloadLen (LE) | u8 Type | PayloadLen payload bytes
///
/// PayloadLen counts payload bytes only (not the 5-byte header) and is
/// validated against FrameLimits::MaxFrameBytes *before* any payload
/// allocation, so a hostile length prefix can never drive memory past
/// the frame budget — the same count-vs-budget discipline the binary
/// trace parser applies (docs/TRACE_FORMAT.md).  Inside a payload,
/// every embedded length (e.g. a path) is validated against the bytes
/// actually present.
///
/// Requests:  Analyze (trace path + the options the daemon honors),
///            Stats (health/counters), Shutdown (drain and exit).
/// Responses: Result (the bit-identical verdict/counter summary),
///            Stats, Error (typed ErrorCode + diagnostic).
///
/// A malformed frame is answered with an Error response when the
/// stream is still framable (unknown type, bad payload) and with a
/// dropped connection when it is not (oversized prefix, truncation) —
/// the daemon itself keeps serving either way
/// (tests/ServeProtocolTest.cpp is the hostile corpus).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SERVE_PROTOCOL_H
#define PERFPLAY_SERVE_PROTOCOL_H

#include "core/AnalysisSession.h"
#include "support/Expected.h"

#include <cstdint>
#include <string>
#include <vector>

namespace perfplay {
namespace serve {

/// Frame type tags.  Requests and responses share the one namespace so
/// a frame is self-describing on either side of the socket.
enum class FrameType : uint8_t {
  /// Request: analyze the trace at a path (payload: AnalyzeRequest).
  AnalyzeRequest = 1,
  /// Request: return the daemon's counters (empty payload).
  StatsRequest = 2,
  /// Request: drain in-flight work and stop accepting (empty payload).
  ShutdownRequest = 3,
  /// Response: a finished analysis (payload: ResultSummary).
  ResultResponse = 16,
  /// Response: daemon counters (payload: ServeStats).
  StatsResponse = 17,
  /// Response: a typed failure (payload: u8 code + u32 len + message).
  ErrorResponse = 18,
};

/// Per-connection frame budgets.  MaxFrameBytes bounds every
/// allocation a frame can cause; the default is generous for paths
/// and summaries (both are tiny) while keeping a hostile 4 GiB length
/// prefix unsatisfiable.
struct FrameLimits {
  uint32_t MaxFrameBytes = 1 << 20; // 1 MiB
};

/// One decoded frame header + payload.
struct Frame {
  FrameType Type = FrameType::ErrorResponse;
  std::vector<uint8_t> Payload;
};

/// An analysis request: the trace path (the daemon mmaps it — admission
/// is near-free) and the option subset that changes verdicts.  Thread
/// counts are deliberately absent: the daemon owns its fair-share
/// budget (Engine::cappedDetectThreads over the worker count) and a
/// client must not be able to oversubscribe the machine.
struct AnalyzeRequest {
  /// Pair enumeration mode: 0 = adjacent (default), 1 = all
  /// cross-thread pairs.
  uint8_t PairMode = 0;
  /// Skip the trace/result caches for this request (bench cold-path
  /// control; also lets a client force re-reading a changed file).
  uint8_t NoCache = 0;
  std::string Path;
};

/// The response summary of one analysis: exactly the counters that are
/// bit-identical for a given trace + options no matter how detection
/// was parallelized, so daemon-vs-Engine parity is a field-for-field
/// comparison (asserted by tests/ServeTest.cpp and the serve bench).
struct ResultSummary {
  // Detection (Table 1 columns + extended-vocabulary edges).
  uint64_t NullLock = 0;
  uint64_t ReadRead = 0;
  uint64_t DisjointWrite = 0;
  uint64_t Benign = 0;
  uint64_t TrueContention = 0;
  uint64_t TryFailEdges = 0;
  // Transformation.
  uint64_t TopologyEdges = 0;
  uint64_t NumAuxLocks = 0;
  uint64_t NumStandalone = 0;
  // Replays (both under the engine's configured scheme/seed).
  uint64_t OriginalTotalTime = 0;
  uint64_t UlcpFreeTotalTime = 0;
  /// 1 when this response was served from the daemon's result cache
  /// without re-running the pipeline.
  uint8_t FromResultCache = 0;
  /// 1 when the parsed trace was reused from the daemon's trace cache
  /// (no re-parse; implied by FromResultCache).
  uint8_t FromTraceCache = 0;

  /// Parity comparison: every pipeline-determined field, ignoring the
  /// cache provenance flags.
  bool sameVerdicts(const ResultSummary &O) const {
    return NullLock == O.NullLock && ReadRead == O.ReadRead &&
           DisjointWrite == O.DisjointWrite && Benign == O.Benign &&
           TrueContention == O.TrueContention &&
           TryFailEdges == O.TryFailEdges &&
           TopologyEdges == O.TopologyEdges &&
           NumAuxLocks == O.NumAuxLocks &&
           NumStandalone == O.NumStandalone &&
           OriginalTotalTime == O.OriginalTotalTime &&
           UlcpFreeTotalTime == O.UlcpFreeTotalTime;
  }
};

/// Builds the ResultSummary of \p R (the parity-comparable projection
/// of a PipelineResult).
ResultSummary summarizeResult(const PipelineResult &R);

/// The daemon's health/metrics counters (the STATS response).  All
/// monotonic except QueueDepth and the latency percentiles, which are
/// point-in-time.
struct ServeStats {
  uint64_t RequestsServed = 0;
  uint64_t RequestsFailed = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t RequestsRejected = 0; // admission control (queue full)
  uint64_t TraceCacheHits = 0;
  uint64_t TraceCacheMisses = 0;
  uint64_t ResultCacheHits = 0;
  uint64_t ResultCacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t CachedTraces = 0;   // point-in-time
  uint64_t CachedResults = 0;  // point-in-time
  uint64_t CacheBytes = 0;     // point-in-time
  uint64_t QueueDepth = 0;     // point-in-time
  uint64_t P50Micros = 0;      // over the recent-latency window
  uint64_t P99Micros = 0;
};

// -- Frame encoding ----------------------------------------------------------

/// Appends the 5-byte header + \p Payload to \p Out.
void encodeFrame(FrameType Type, const std::vector<uint8_t> &Payload,
                 std::vector<uint8_t> &Out);

/// Payload encoders (header-less; pair with encodeFrame).
std::vector<uint8_t> encodeAnalyzeRequest(const AnalyzeRequest &Req);
std::vector<uint8_t> encodeResultSummary(const ResultSummary &Sum);
std::vector<uint8_t> encodeServeStats(const ServeStats &Stats);
std::vector<uint8_t> encodeError(ErrorCode Code, const std::string &Msg);

/// Payload decoders.  Every embedded length is checked against the
/// bytes present; failure returns false with a diagnostic in \p Err
/// and leaves the output untouched or partially written (callers
/// treat any false as a protocol error).
bool decodeAnalyzeRequest(const uint8_t *Data, size_t Size,
                          AnalyzeRequest &Out, std::string &Err);
bool decodeResultSummary(const uint8_t *Data, size_t Size,
                         ResultSummary &Out, std::string &Err);
bool decodeServeStats(const uint8_t *Data, size_t Size, ServeStats &Out,
                      std::string &Err);
bool decodeError(const uint8_t *Data, size_t Size, ErrorCode &Code,
                 std::string &Msg, std::string &Err);

// -- Framed socket I/O -------------------------------------------------------

/// Reads one frame from \p Fd.  Returns 1 on success, 0 on clean EOF
/// before any header byte (the peer is done), and -1 on error — a
/// truncated header/payload, an oversized length prefix (checked
/// against \p Limits before any allocation), or a socket failure —
/// with the diagnostic in \p Err.  \p IdleTimeoutMs bounds how long to
/// wait for the *first* byte (0 = forever); a peer that goes silent
/// mid-frame fails after the same timeout.
int readFrame(int Fd, Frame &Out, const FrameLimits &Limits,
              std::string &Err, int IdleTimeoutMs = 0);

/// Writes one frame to \p Fd (MSG_NOSIGNAL — a disconnected peer is a
/// false return, never a SIGPIPE).  Partial writes are retried.
bool writeFrame(int Fd, FrameType Type, const std::vector<uint8_t> &Payload,
                std::string &Err);

// -- Client ------------------------------------------------------------------

/// A blocking client over one daemon connection.  Not thread-safe —
/// one connection per thread (the daemon multiplexes across
/// connections, not within one).  Used by `perfplay client`, the
/// integration tests, and bench_micro_serve_throughput.
class ServeClient {
public:
  ServeClient() = default;
  ~ServeClient();
  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;
  ServeClient(ServeClient &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }

  /// Connects to the daemon's unix socket at \p SocketPath.
  Expected<void> connect(const std::string &SocketPath);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Round-trips one analysis request.  Daemon-side failures come back
  /// as their typed ErrorCode; local socket failures as
  /// ErrorCode::ProtocolError.
  Expected<ResultSummary> analyze(const AnalyzeRequest &Req);

  /// Fetches the daemon's counters.
  Expected<ServeStats> stats();

  /// Asks the daemon to drain and exit.  The daemon acknowledges with
  /// a StatsResponse (its final counters) before closing.
  Expected<ServeStats> shutdown();

  /// Raw escape hatch for the hostile-protocol tests: sends \p Bytes
  /// verbatim.
  bool sendRaw(const std::vector<uint8_t> &Bytes);

  /// Reads one response frame (hostile-protocol tests).
  int readRaw(Frame &Out, std::string &Err, int IdleTimeoutMs = 0);

private:
  Expected<Frame> roundTrip(FrameType Type,
                            const std::vector<uint8_t> &Payload);

  int Fd = -1;
  FrameLimits Limits;
};

} // namespace serve
} // namespace perfplay

#endif // PERFPLAY_SERVE_PROTOCOL_H
