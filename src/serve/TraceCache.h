//===- serve/TraceCache.h - Shared trace/result LRU for serve ----*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve daemon's shared cache: a content-hash-keyed LRU of parsed
/// Traces and finished analysis summaries, shared across every request
/// the daemon serves.  Two structural guarantees:
///
///  * **Exactly-once parse per content hash.**  Concurrent misses on
///    the same content coordinate through an in-flight set (FlightMu +
///    FlightCv): one thread parses, the rest wait and take the cached
///    copy.  tests/ConcurrencyStressTest.cpp hammers this from N
///    threads and asserts the parser ran once per distinct content.
///
///  * **Bounded memory.**  Every entry is charged against a byte
///    budget (a trace costs its file size — the mmap-era proxy for its
///    in-memory footprint — a result its summary size); inserts evict
///    least-recently-used entries until the total fits.
///
/// Locking (both locks are leaves; they are never held together):
///  * CacheMu (SharedMutex) guards the two maps.  Lookups take it
///    shared and record recency through a per-entry atomic clock, so
///    the hot hit path never serializes readers; inserts/evictions
///    take it exclusive.
///  * FlightMu (Mutex) + FlightCv guard only the in-flight hash set.
///    Parsing itself runs with no lock held.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SERVE_TRACECACHE_H
#define PERFPLAY_SERVE_TRACECACHE_H

#include "serve/Protocol.h"
#include "support/ThreadAnnotations.h"
#include "trace/Trace.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

namespace perfplay {
namespace serve {

/// FNV-1a over \p Size bytes — the content hash keying both caches.
uint64_t hashBytes(const uint8_t *Data, size_t Size);

/// The daemon's shared trace + result cache.  Thread-safe; one
/// instance per server, hit from every worker.
class TraceCache {
public:
  /// \p BudgetBytes bounds the summed charge of cached traces and
  /// results (0 = cache nothing).  An entry larger than the whole
  /// budget is evicted by the very next insert, so the cache degrades
  /// to pass-through rather than blowing the bound.
  explicit TraceCache(size_t BudgetBytes) : BudgetBytes(BudgetBytes) {}

  /// Reads the file at \p Path, content-hashes it, and returns the
  /// parsed trace — from the cache when the same bytes were parsed
  /// before, otherwise parsing exactly once even under concurrent
  /// misses.  \p HashOut receives the content hash (the result-cache
  /// key); \p FromCache reports whether a re-parse was avoided.  With
  /// \p Bypass the caches are neither consulted nor populated (the
  /// bench's cold-path control).  Returned traces are copies — the
  /// caller owns its storage outright (Trace copies re-own pooled
  /// names) and the cached original can be evicted at any time.
  Expected<Trace> getTrace(const std::string &Path, uint64_t &HashOut,
                           bool &FromCache, bool Bypass = false)
      EXCLUDES(CacheMu, FlightMu);

  /// The bytes-level core of getTrace, for callers that already mapped
  /// and hashed the content (the server does, to probe the result
  /// cache before parsing): returns the trace for \p Hash, parsing
  /// \p Data exactly once per distinct hash even under concurrent
  /// misses.  \p Diag names the source in parse diagnostics.
  Expected<Trace> getTraceBytes(const uint8_t *Data, size_t Size,
                                uint64_t Hash, const std::string &Diag,
                                bool &FromCache, bool Bypass = false)
      EXCLUDES(CacheMu, FlightMu);

  /// Looks up the finished summary for (content hash, options
  /// fingerprint).  True on hit (recency bumped).
  bool lookupResult(uint64_t Hash, uint64_t OptionsFp, ResultSummary &Out)
      EXCLUDES(CacheMu);

  /// Caches \p Sum under (hash, fingerprint), evicting to budget.
  void storeResult(uint64_t Hash, uint64_t OptionsFp,
                   const ResultSummary &Sum) EXCLUDES(CacheMu);

  /// Copies the cache's counters into the corresponding \p Stats
  /// fields (the STATS response; everything else in ServeStats belongs
  /// to the server).
  void fillStats(ServeStats &Stats) const EXCLUDES(CacheMu);

  /// Test seam: replaces the file-bytes parser (default:
  /// parseTraceBuffer).  The concurrency stress test injects a
  /// counting parser to assert exactly-once semantics.  Not
  /// thread-safe — install before sharing the cache.
  using ParseFn = std::function<bool(const uint8_t *Data, size_t Size,
                                     Trace &Out, std::string &Err)>;
  void setParserForTesting(ParseFn Fn) { Parser = std::move(Fn); }

private:
  struct TraceEntry {
    std::shared_ptr<const Trace> Tr;
    size_t Charge = 0;
    std::atomic<uint64_t> LastUse{0};
  };
  struct ResultEntry {
    ResultSummary Sum;
    size_t Charge = 0;
    std::atomic<uint64_t> LastUse{0};
  };

  /// Evicts least-recently-used entries (across both maps) until the
  /// summed charge fits the budget.
  void evictToBudget() REQUIRES(CacheMu);

  uint64_t bumpClock() { return Clock.fetch_add(1) + 1; }

  const size_t BudgetBytes;
  ParseFn Parser; // empty = parseTraceBuffer

  /// Recency clock; entries stamp their LastUse from it on every hit,
  /// which is why hits only need the shared lock.
  std::atomic<uint64_t> Clock{0};

  mutable SharedMutex CacheMu;
  std::map<uint64_t, std::unique_ptr<TraceEntry>> Traces GUARDED_BY(CacheMu);
  std::map<std::pair<uint64_t, uint64_t>, std::unique_ptr<ResultEntry>>
      Results GUARDED_BY(CacheMu);
  size_t TotalBytes GUARDED_BY(CacheMu) = 0;

  /// In-flight parse coordination.  Strictly a leaf: never acquired
  /// with CacheMu held (and vice versa).
  Mutex FlightMu;
  CondVar FlightCv;
  std::set<uint64_t> InFlight GUARDED_BY(FlightMu);

  // Monotonic counters (atomic — readable without any lock).
  std::atomic<uint64_t> TraceHits{0};
  std::atomic<uint64_t> TraceMisses{0};
  std::atomic<uint64_t> ResultHits{0};
  std::atomic<uint64_t> ResultMisses{0};
  std::atomic<uint64_t> Evictions{0};
};

} // namespace serve
} // namespace perfplay

#endif // PERFPLAY_SERVE_TRACECACHE_H
