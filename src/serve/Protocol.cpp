//===- serve/Protocol.cpp - Serve daemon wire protocol ----------------------===//

#include "serve/Protocol.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace perfplay;
using namespace perfplay::serve;

namespace {

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// Bounds-checked little-endian cursor: every get* fails (returns
/// false) instead of reading past Size, so a hostile payload can never
/// overrun the frame buffer.
struct Cursor {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;

  bool getU8(uint8_t &V) {
    if (Pos + 1 > Size)
      return false;
    V = Data[Pos++];
    return true;
  }
  bool getU32(uint32_t &V) {
    if (Pos + 4 > Size)
      return false;
    V = static_cast<uint32_t>(Data[Pos]) |
        static_cast<uint32_t>(Data[Pos + 1]) << 8 |
        static_cast<uint32_t>(Data[Pos + 2]) << 16 |
        static_cast<uint32_t>(Data[Pos + 3]) << 24;
    Pos += 4;
    return true;
  }
  bool getU64(uint64_t &V) {
    V = 0;
    if (Pos + 8 > Size)
      return false;
    for (unsigned I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return true;
  }
  bool getString(std::string &S, uint32_t Len) {
    if (Pos + Len > Size)
      return false;
    S.assign(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return true;
  }
};

/// Reads exactly \p Len bytes.  Returns 1 on success, 0 on EOF before
/// the first byte, -1 on error/timeout/mid-read EOF.  \p TimeoutMs
/// bounds each poll wait (0 = block forever).
int readFull(int Fd, uint8_t *Buf, size_t Len, std::string &Err,
             int TimeoutMs) {
  size_t Got = 0;
  while (Got < Len) {
    if (TimeoutMs > 0) {
      struct pollfd Pfd = {Fd, POLLIN, 0};
      int PollRc = ::poll(&Pfd, 1, TimeoutMs);
      if (PollRc == 0) {
        Err = "read timed out";
        return -1;
      }
      if (PollRc < 0) {
        if (errno == EINTR)
          continue;
        Err = std::string("poll: ") + std::strerror(errno);
        return -1;
      }
    }
    ssize_t N = ::recv(Fd, Buf + Got, Len - Got, 0);
    if (N == 0) {
      if (Got == 0)
        return 0;
      Err = "connection closed mid-frame";
      return -1;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("recv: ") + std::strerror(errno);
      return -1;
    }
    Got += static_cast<size_t>(N);
  }
  return 1;
}

} // namespace

ResultSummary perfplay::serve::summarizeResult(const PipelineResult &R) {
  ResultSummary S;
  S.NullLock = R.Detection.Counts.NullLock;
  S.ReadRead = R.Detection.Counts.ReadRead;
  S.DisjointWrite = R.Detection.Counts.DisjointWrite;
  S.Benign = R.Detection.Counts.Benign;
  S.TrueContention = R.Detection.Counts.TrueContention;
  S.TryFailEdges = R.Detection.TryFailEdges;
  S.TopologyEdges = R.Transformation.Topology.numEdges();
  S.NumAuxLocks = R.Transformation.NumAuxLocks;
  S.NumStandalone = R.Transformation.NumStandalone;
  S.OriginalTotalTime = R.Original.TotalTime;
  S.UlcpFreeTotalTime = R.UlcpFree.TotalTime;
  return S;
}

void perfplay::serve::encodeFrame(FrameType Type,
                                  const std::vector<uint8_t> &Payload,
                                  std::vector<uint8_t> &Out) {
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  Out.push_back(static_cast<uint8_t>(Type));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

std::vector<uint8_t>
perfplay::serve::encodeAnalyzeRequest(const AnalyzeRequest &Req) {
  std::vector<uint8_t> P;
  P.push_back(Req.PairMode);
  P.push_back(Req.NoCache);
  putU32(P, static_cast<uint32_t>(Req.Path.size()));
  P.insert(P.end(), Req.Path.begin(), Req.Path.end());
  return P;
}

bool perfplay::serve::decodeAnalyzeRequest(const uint8_t *Data, size_t Size,
                                           AnalyzeRequest &Out,
                                           std::string &Err) {
  Cursor C{Data, Size};
  uint32_t PathLen = 0;
  if (!C.getU8(Out.PairMode) || !C.getU8(Out.NoCache) ||
      !C.getU32(PathLen)) {
    Err = "analyze request truncated";
    return false;
  }
  if (Out.PairMode > 1) {
    Err = "analyze request: bad pair mode";
    return false;
  }
  // The embedded length is validated against the bytes actually in the
  // frame — a hostile PathLen cannot allocate past the payload.
  if (!C.getString(Out.Path, PathLen)) {
    Err = "analyze request: path length exceeds payload";
    return false;
  }
  if (C.Pos != Size) {
    Err = "analyze request: trailing bytes";
    return false;
  }
  return true;
}

std::vector<uint8_t>
perfplay::serve::encodeResultSummary(const ResultSummary &Sum) {
  std::vector<uint8_t> P;
  for (uint64_t V :
       {Sum.NullLock, Sum.ReadRead, Sum.DisjointWrite, Sum.Benign,
        Sum.TrueContention, Sum.TryFailEdges, Sum.TopologyEdges,
        Sum.NumAuxLocks, Sum.NumStandalone, Sum.OriginalTotalTime,
        Sum.UlcpFreeTotalTime})
    putU64(P, V);
  P.push_back(Sum.FromResultCache);
  P.push_back(Sum.FromTraceCache);
  return P;
}

bool perfplay::serve::decodeResultSummary(const uint8_t *Data, size_t Size,
                                          ResultSummary &Out,
                                          std::string &Err) {
  Cursor C{Data, Size};
  uint64_t *Fields[] = {
      &Out.NullLock,      &Out.ReadRead,     &Out.DisjointWrite,
      &Out.Benign,        &Out.TrueContention, &Out.TryFailEdges,
      &Out.TopologyEdges, &Out.NumAuxLocks,  &Out.NumStandalone,
      &Out.OriginalTotalTime, &Out.UlcpFreeTotalTime};
  for (uint64_t *F : Fields)
    if (!C.getU64(*F)) {
      Err = "result summary truncated";
      return false;
    }
  if (!C.getU8(Out.FromResultCache) || !C.getU8(Out.FromTraceCache) ||
      C.Pos != Size) {
    Err = "result summary malformed";
    return false;
  }
  return true;
}

std::vector<uint8_t>
perfplay::serve::encodeServeStats(const ServeStats &Stats) {
  std::vector<uint8_t> P;
  for (uint64_t V :
       {Stats.RequestsServed, Stats.RequestsFailed, Stats.ProtocolErrors,
        Stats.RequestsRejected, Stats.TraceCacheHits,
        Stats.TraceCacheMisses, Stats.ResultCacheHits,
        Stats.ResultCacheMisses, Stats.CacheEvictions, Stats.CachedTraces,
        Stats.CachedResults, Stats.CacheBytes, Stats.QueueDepth,
        Stats.P50Micros, Stats.P99Micros})
    putU64(P, V);
  return P;
}

bool perfplay::serve::decodeServeStats(const uint8_t *Data, size_t Size,
                                       ServeStats &Out, std::string &Err) {
  Cursor C{Data, Size};
  uint64_t *Fields[] = {
      &Out.RequestsServed,   &Out.RequestsFailed, &Out.ProtocolErrors,
      &Out.RequestsRejected, &Out.TraceCacheHits, &Out.TraceCacheMisses,
      &Out.ResultCacheHits,  &Out.ResultCacheMisses, &Out.CacheEvictions,
      &Out.CachedTraces,     &Out.CachedResults,  &Out.CacheBytes,
      &Out.QueueDepth,       &Out.P50Micros,      &Out.P99Micros};
  for (uint64_t *F : Fields)
    if (!C.getU64(*F)) {
      Err = "stats payload truncated";
      return false;
    }
  if (C.Pos != Size) {
    Err = "stats payload: trailing bytes";
    return false;
  }
  return true;
}

std::vector<uint8_t> perfplay::serve::encodeError(ErrorCode Code,
                                                  const std::string &Msg) {
  std::vector<uint8_t> P;
  P.push_back(static_cast<uint8_t>(Code));
  putU32(P, static_cast<uint32_t>(Msg.size()));
  P.insert(P.end(), Msg.begin(), Msg.end());
  return P;
}

bool perfplay::serve::decodeError(const uint8_t *Data, size_t Size,
                                  ErrorCode &Code, std::string &Msg,
                                  std::string &Err) {
  Cursor C{Data, Size};
  uint8_t Raw = 0;
  uint32_t Len = 0;
  if (!C.getU8(Raw) || !C.getU32(Len) || !C.getString(Msg, Len) ||
      C.Pos != Size) {
    Err = "error payload malformed";
    return false;
  }
  Code = static_cast<ErrorCode>(Raw);
  return true;
}

int perfplay::serve::readFrame(int Fd, Frame &Out, const FrameLimits &Limits,
                               std::string &Err, int IdleTimeoutMs) {
  uint8_t Header[5];
  int Rc = readFull(Fd, Header, sizeof(Header), Err, IdleTimeoutMs);
  if (Rc <= 0)
    return Rc;
  uint32_t Len = static_cast<uint32_t>(Header[0]) |
                 static_cast<uint32_t>(Header[1]) << 8 |
                 static_cast<uint32_t>(Header[2]) << 16 |
                 static_cast<uint32_t>(Header[3]) << 24;
  // The budget check precedes the allocation: a 4 GiB length prefix
  // costs the daemon nothing but this comparison.
  if (Len > Limits.MaxFrameBytes) {
    Err = "frame length " + std::to_string(Len) +
          " exceeds the frame budget (" +
          std::to_string(Limits.MaxFrameBytes) + ")";
    return -1;
  }
  Out.Type = static_cast<FrameType>(Header[4]);
  Out.Payload.resize(Len);
  if (Len > 0 &&
      readFull(Fd, Out.Payload.data(), Len, Err, IdleTimeoutMs) != 1) {
    if (Err.empty())
      Err = "connection closed mid-frame";
    return -1;
  }
  return 1;
}

bool perfplay::serve::writeFrame(int Fd, FrameType Type,
                                 const std::vector<uint8_t> &Payload,
                                 std::string &Err) {
  std::vector<uint8_t> Bytes;
  Bytes.reserve(5 + Payload.size());
  encodeFrame(Type, Payload, Bytes);
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

// -- ServeClient -------------------------------------------------------------

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Expected<void> ServeClient::connect(const std::string &SocketPath) {
  close();
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path))
    return PipelineError(ErrorCode::ProtocolError,
                         "socket path too long: " + SocketPath);
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return PipelineError(ErrorCode::ProtocolError,
                         std::string("socket: ") + std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    std::string Msg = "connect " + SocketPath + ": " + std::strerror(errno);
    close();
    return PipelineError(ErrorCode::ProtocolError, std::move(Msg));
  }
  return Expected<void>();
}

Expected<Frame> ServeClient::roundTrip(FrameType Type,
                                       const std::vector<uint8_t> &Payload) {
  if (Fd < 0)
    return PipelineError(ErrorCode::ProtocolError, "client not connected");
  std::string Err;
  if (!writeFrame(Fd, Type, Payload, Err))
    return PipelineError(ErrorCode::ProtocolError, std::move(Err));
  Frame Response;
  int Rc = readFrame(Fd, Response, Limits, Err);
  if (Rc == 0)
    return PipelineError(ErrorCode::ProtocolError,
                         "daemon closed the connection");
  if (Rc < 0)
    return PipelineError(ErrorCode::ProtocolError, std::move(Err));
  if (Response.Type == FrameType::ErrorResponse) {
    ErrorCode Code = ErrorCode::ProtocolError;
    std::string Msg;
    if (!decodeError(Response.Payload.data(), Response.Payload.size(), Code,
                     Msg, Err))
      return PipelineError(ErrorCode::ProtocolError, std::move(Err));
    return PipelineError(Code, std::move(Msg));
  }
  return Response;
}

Expected<ResultSummary> ServeClient::analyze(const AnalyzeRequest &Req) {
  Expected<Frame> FrameOr =
      roundTrip(FrameType::AnalyzeRequest, encodeAnalyzeRequest(Req));
  if (!FrameOr)
    return FrameOr.error();
  if (FrameOr->Type != FrameType::ResultResponse)
    return PipelineError(ErrorCode::ProtocolError,
                         "unexpected response type");
  ResultSummary Sum;
  std::string Err;
  if (!decodeResultSummary(FrameOr->Payload.data(), FrameOr->Payload.size(),
                           Sum, Err))
    return PipelineError(ErrorCode::ProtocolError, std::move(Err));
  return Sum;
}

static Expected<ServeStats> expectStats(Expected<Frame> FrameOr) {
  if (!FrameOr)
    return FrameOr.error();
  if (FrameOr->Type != FrameType::StatsResponse)
    return PipelineError(ErrorCode::ProtocolError,
                         "unexpected response type");
  ServeStats Stats;
  std::string Err;
  if (!decodeServeStats(FrameOr->Payload.data(), FrameOr->Payload.size(),
                        Stats, Err))
    return PipelineError(ErrorCode::ProtocolError, std::move(Err));
  return Stats;
}

Expected<ServeStats> ServeClient::stats() {
  return expectStats(roundTrip(FrameType::StatsRequest, {}));
}

Expected<ServeStats> ServeClient::shutdown() {
  return expectStats(roundTrip(FrameType::ShutdownRequest, {}));
}

bool ServeClient::sendRaw(const std::vector<uint8_t> &Bytes) {
  if (Fd < 0)
    return false;
  size_t Sent = 0;
  while (Sent < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

int ServeClient::readRaw(Frame &Out, std::string &Err, int IdleTimeoutMs) {
  if (Fd < 0) {
    Err = "client not connected";
    return -1;
  }
  return readFrame(Fd, Out, Limits, Err, IdleTimeoutMs);
}
