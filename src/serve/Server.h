//===- serve/Server.h - The perfplay serve daemon ----------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident analysis daemon behind `perfplay serve`: a warm Engine
/// plus the shared TraceCache, multiplexed over a unix-domain socket.
///
/// Structure:
///  * one accept thread owns the listen socket and feeds accepted
///    connections into a bounded queue — admission control: when the
///    queue is full the connection is answered with
///    ErrorCode::ServerOverloaded and closed instead of queued, so
///    load shedding is explicit and a burst can't grow memory;
///  * N worker threads pop connections and serve frames until the peer
///    closes (or misbehaves: an unframable stream drops the
///    connection, a merely malformed request gets a typed Error frame
///    and the connection lives on);
///  * fair-share scheduling reuses the batch math — every request's
///    detection runs with Engine::cappedDetectThreads(requested,
///    NumWorkers) threads, so workers x detect-threads never exceeds
///    the machine and one huge trace can't starve the rest.
///
/// Locking (every serve lock is a leaf — see docs/ARCHITECTURE.md):
///  * QueueMu (Mutex) + QueueCv guard the connection queue;
///  * LatencyMu (Mutex) guards the recent-latency ring (p50/p99);
///  * the TraceCache's own CacheMu/FlightMu guard the caches.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SERVE_SERVER_H
#define PERFPLAY_SERVE_SERVER_H

#include "core/Engine.h"
#include "serve/Protocol.h"
#include "serve/TraceCache.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

namespace perfplay {
namespace serve {

/// Daemon configuration.
struct ServerOptions {
  /// Filesystem path of the unix-domain listen socket.  A stale socket
  /// file is unlinked on start.
  std::string SocketPath;
  /// Worker threads serving connections (0 = one per hardware thread).
  unsigned NumWorkers = 0;
  /// Byte budget shared by the trace + result caches (0 disables
  /// caching; the daemon still serves correctly, just cold).
  size_t CacheBudgetBytes = 64u << 20;
  /// Per-frame allocation bound (Protocol.h FrameLimits).
  uint32_t MaxFrameBytes = 1u << 20;
  /// Accepted connections waiting for a worker beyond which new
  /// connections are shed with ServerOverloaded.
  unsigned MaxQueueDepth = 64;
  /// Drop a connection idle for this long between frames
  /// (milliseconds; 0 = never).
  int IdleTimeoutMs = 0;
  /// Pipeline defaults for every analysis.  Detect.NumThreads is the
  /// *requested* budget; the daemon caps it per-worker
  /// (cappedDetectThreads) at start.
  PipelineOptions Pipeline;
};

/// The daemon.  start() spawns the accept + worker threads and
/// returns; wait() blocks until a ShutdownRequest (or stop()) drains
/// the daemon.  start/stop/wait are main-thread calls — the daemon's
/// own threads never touch them (a ShutdownRequest only flips the
/// stop flag; joining happens in stop()/wait()).
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and spawns the threads.  Fails with
  /// ErrorCode::ProtocolError when the socket can't be created.
  Expected<void> start() EXCLUDES(QueueMu);

  /// Drains and joins: stops accepting, wakes every worker, lets
  /// in-flight requests finish, closes idle connections, joins all
  /// threads, and unlinks the socket.  Idempotent.
  void stop() EXCLUDES(QueueMu);

  /// Blocks until the daemon stopped (ShutdownRequest or stop()).
  void wait();

  /// True once a ShutdownRequest (or stop()) was seen.
  bool stopping() const { return Stopping.load(); }

  /// Point-in-time counters (same data the STATS frame carries).
  ServeStats stats() const EXCLUDES(QueueMu, LatencyMu);

  const ServerOptions &options() const { return Opts; }

  /// The resolved worker-thread count (NumWorkers, or one per hardware
  /// thread when 0 was requested).
  unsigned workers() const { return Workers; }

  /// The per-request detection thread budget the daemon resolved at
  /// construction (cappedDetectThreads over the worker count).
  unsigned detectThreadsPerRequest() const { return DetectThreads; }

private:
  void acceptLoop() EXCLUDES(QueueMu);
  void workerLoop() EXCLUDES(QueueMu);

  /// Serves one connection until EOF, protocol failure, idle timeout,
  /// or shutdown.
  void serveConnection(int Fd);

  /// Handles one Analyze frame; returns the response summary or the
  /// typed error to send back.
  Expected<ResultSummary> handleAnalyze(const AnalyzeRequest &Req);

  void recordLatency(uint64_t Micros) EXCLUDES(LatencyMu);

  /// Pops the next queued connection; -1 when stopping with an empty
  /// queue.
  int popConnection() EXCLUDES(QueueMu);

  void joinAll();

  ServerOptions Opts;
  Engine Eng;
  TraceCache Cache;
  FrameLimits Limits;
  unsigned Workers = 1;
  unsigned DetectThreads = 1;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Started{false};

  std::thread AcceptThread;
  std::vector<std::thread> WorkerThreads;

  mutable Mutex QueueMu; // mutable: stats() is logically const
  CondVar QueueCv;
  std::deque<int> Queue GUARDED_BY(QueueMu);

  mutable Mutex LatencyMu;
  /// Fixed-size ring of recent request latencies (microseconds);
  /// p50/p99 are computed over whatever it currently holds.
  std::vector<uint64_t> LatencyRing GUARDED_BY(LatencyMu);
  size_t LatencyNext GUARDED_BY(LatencyMu) = 0;
  size_t LatencyCount GUARDED_BY(LatencyMu) = 0;

  std::atomic<uint64_t> RequestsServed{0};
  std::atomic<uint64_t> RequestsFailed{0};
  std::atomic<uint64_t> ProtocolErrors{0};
  std::atomic<uint64_t> RequestsRejected{0};
};

} // namespace serve
} // namespace perfplay

#endif // PERFPLAY_SERVE_SERVER_H
