//===- transform/RaceCheck.cpp - Theorem 1 race reporting ------------------===//

#include "transform/RaceCheck.h"

#include "detect/Classify.h"
#include "support/AddrSet.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <tuple>

using namespace perfplay;

namespace {

/// One shared access with its protection context.
struct AccessRecord {
  ThreadId Thread;
  AddrId Addr;
  bool IsWrite;
  /// Enclosing critical sections, outermost first (empty if unlocked).
  std::vector<uint32_t> Enclosing;
};

} // namespace

/// Reachability over program order + causal edges + constraints,
/// computed as a simple transitive closure (bit matrix).  Trace sizes
/// fed through the race check are pipeline-bounded.
static std::vector<std::vector<bool>>
computeHappensBefore(const Trace &Tr, const TopologyGraph &Topo) {
  size_t N = Tr.numCriticalSections();
  std::vector<std::vector<bool>> Reach(N, std::vector<bool>(N, false));
  auto addEdge = [&](uint32_t A, uint32_t B) { Reach[A][B] = true; };

  // Program order within each thread.
  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    uint32_t Count = Tr.numCriticalSections(T);
    for (uint32_t I = 0; I + 1 < Count; ++I)
      addEdge(Tr.globalCsId(CsRef{T, I}), Tr.globalCsId(CsRef{T, I + 1}));
  }
  for (const TopologyEdge &E : Topo.edges())
    addEdge(E.From, E.To);
  for (const OrderConstraint &C : Tr.Constraints)
    addEdge(C.Before, C.After);

  // Floyd-Warshall style closure.
  for (size_t K = 0; K != N; ++K)
    for (size_t I = 0; I != N; ++I) {
      if (!Reach[I][K])
        continue;
      for (size_t J = 0; J != N; ++J)
        if (Reach[K][J])
          Reach[I][J] = true;
    }
  return Reach;
}

/// Sorted lock ids of a section's lockset in the transformed trace.
static std::vector<LockId> locksetLocks(const Trace &Tr, uint32_t Cs) {
  std::vector<LockId> Out;
  CsRef Ref = Tr.csRefOf(Cs);
  uint32_t Index = 0;
  for (const Event &E : Tr.Threads[Ref.Thread].Events)
    if (isSectionOpen(E)) {
      if (Index++ != Ref.Index)
        continue;
      if (E.Lockset == InvalidId) {
        Out.push_back(E.Lock);
      } else {
        for (const LocksetEntry &Entry : Tr.Locksets[E.Lockset].Entries)
          Out.push_back(Entry.Lock);
      }
      break;
    }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<RaceReport> perfplay::checkRaces(const Trace &Transformed,
                                             const CsIndex &Index,
                                             const TopologyGraph &Topology) {
  const Trace &Tr = Transformed;

  // Collect every shared access with its enclosing sections.
  std::vector<AccessRecord> Accesses;
  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    std::vector<uint32_t> Open;
    uint32_t NextIndex = 0;
    for (const Event &E : Tr.Threads[T].Events) {
      switch (E.Kind) {
      case EventKind::LockAcquire:
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
      case EventKind::TryAcquire:
        // A failed trylock opens no section.
        if (isSectionOpen(E))
          Open.push_back(Tr.globalCsId(CsRef{T, NextIndex++}));
        break;
      case EventKind::LockRelease:
        assert(!Open.empty() && "unbalanced release");
        Open.pop_back();
        break;
      case EventKind::Read:
      case EventKind::Write:
        Accesses.push_back(
            AccessRecord{T, E.Addr, E.Kind == EventKind::Write, Open});
        break;
      default:
        break;
      }
    }
  }

  std::vector<std::vector<bool>> Reach =
      computeHappensBefore(Tr, Topology);

  // Lockset cache per section, in chunked-bitmap form: the all-pairs
  // protectedPair probe below is intersection-bound, and the AddrSet
  // digest rejects the common disjoint-lockset case in O(1).
  size_t NumCs = Tr.numCriticalSections();
  std::vector<AddrSet> Locksets(NumCs);
  std::vector<bool> LocksetKnown(NumCs, false);
  auto locksOf = [&](uint32_t Cs) -> const AddrSet & {
    if (!LocksetKnown[Cs]) {
      for (LockId L : locksetLocks(Tr, Cs))
        Locksets[Cs].insert(L);
      LocksetKnown[Cs] = true;
    }
    return Locksets[Cs];
  };

  auto ordered = [&](const AccessRecord &A, const AccessRecord &B) {
    for (uint32_t CsA : A.Enclosing)
      for (uint32_t CsB : B.Enclosing)
        if (Reach[CsA][CsB] || Reach[CsB][CsA])
          return true;
    return false;
  };

  auto protectedPair = [&](const AccessRecord &A, const AccessRecord &B) {
    for (uint32_t CsA : A.Enclosing)
      for (uint32_t CsB : B.Enclosing)
        if (locksOf(CsA).intersects(locksOf(CsB)))
          return true;
    return false;
  };

  // Theorem 1 tolerates *benign* interleavings (redundant writes,
  // commutative updates): a conflicting but order-insensitive pair of
  // sections was parallelized on purpose and is not a race.
  MemoryImage Initial = MemoryImage::initialOf(Tr);
  auto benignSections = [&](uint32_t CsA, uint32_t CsB) {
    if (CsA == InvalidId || CsB == InvalidId)
      return false;
    return classifyPair(Tr, Initial, Index.byGlobalId(CsA),
                        Index.byGlobalId(CsB)) != UlcpKind::TrueContention;
  };

  std::vector<RaceReport> Races;
  std::set<std::tuple<uint32_t, uint32_t, AddrId>> Seen;
  for (size_t I = 0; I != Accesses.size(); ++I) {
    const AccessRecord &A = Accesses[I];
    for (size_t J = I + 1; J != Accesses.size(); ++J) {
      const AccessRecord &B = Accesses[J];
      if (A.Thread == B.Thread || A.Addr != B.Addr)
        continue;
      if (!A.IsWrite && !B.IsWrite)
        continue;
      if (protectedPair(A, B) || ordered(A, B))
        continue;
      uint32_t CsA = A.Enclosing.empty() ? InvalidId : A.Enclosing.back();
      uint32_t CsB = B.Enclosing.empty() ? InvalidId : B.Enclosing.back();
      uint32_t Lo = std::min(CsA, CsB), Hi = std::max(CsA, CsB);
      if (!Seen.insert({Lo, Hi, A.Addr}).second)
        continue;
      if (benignSections(CsA, CsB))
        continue;
      Races.push_back(RaceReport{A.Addr, A.Thread, B.Thread, CsA, CsB});
    }
  }
  return Races;
}
