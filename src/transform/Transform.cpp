//===- transform/Transform.cpp - ULCP trace transformation -----------------===//

#include "transform/Transform.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <string>

using namespace perfplay;

TransformResult perfplay::transformTrace(const Trace &Tr,
                                         const CsIndex &Index) {
  TransformResult Result;
  Result.Transformed = Tr;
  Trace &Out = Result.Transformed;
  Result.Topology = buildTopology(Tr, Index);
  const TopologyGraph &Topo = Result.Topology;
  size_t NumCs = Index.size();

  // RULE 3, part 1: a fresh auxiliary lock per node with outdegree.
  // Auxiliary locks inherit the spin-ness of the original lock so the
  // resource-wasting accounting stays comparable.
  Result.AuxLockOfCs.assign(NumCs, InvalidId);
  for (uint32_t Cs = 0; Cs != NumCs; ++Cs) {
    if (Topo.outDegree(Cs) == 0)
      continue;
    const CriticalSection &Section = Index.byGlobalId(Cs);
    LockInfo Aux;
    Aux.Name = Out.intern("@L" + std::to_string(Section.Ref.Thread) + "_" +
                          std::to_string(Section.Ref.Index));
    Aux.IsSpin = Tr.Locks[Section.Lock].IsSpin;
    Out.Locks.push_back(Aux);
    Result.AuxLockOfCs[Cs] = static_cast<LockId>(Out.Locks.size() - 1);
    ++Result.NumAuxLocks;
  }

  // RULE 3, part 2: build each node's lockset — its own auxiliary lock
  // plus the auxiliary lock of every causal source.  Standalone nodes
  // (which subsumes all null-locks: a section with empty read/write
  // sets can never truly contend) get an empty lockset, i.e. their
  // lock/unlock pair is removed.
  std::vector<LocksetId> LocksetOfCs(NumCs, InvalidId);
  for (uint32_t Cs = 0; Cs != NumCs; ++Cs) {
    Lockset LS;
    if (Result.AuxLockOfCs[Cs] != InvalidId)
      LS.Entries.push_back(LocksetEntry{Result.AuxLockOfCs[Cs], InvalidId});
    for (uint32_t Pred : Topo.predecessors(Cs)) {
      assert(Result.AuxLockOfCs[Pred] != InvalidId &&
             "causal source must have an auxiliary lock");
      LS.Entries.push_back(LocksetEntry{Result.AuxLockOfCs[Pred], Pred});
    }
    if (LS.Entries.empty())
      ++Result.NumStandalone;
    Out.Locksets.push_back(std::move(LS));
    LocksetOfCs[Cs] = static_cast<LocksetId>(Out.Locksets.size() - 1);
  }

  // Annotate every section-opening acquire (mutex, rwlock, successful
  // trylock) with its lockset.
  for (ThreadId T = 0; T != Out.Threads.size(); ++T) {
    uint32_t NextIndex = 0;
    for (Event &E : Out.Threads[T].Events)
      if (isSectionOpen(E)) {
        uint32_t Cs = Tr.globalCsId(CsRef{T, NextIndex++});
        E.Lockset = LocksetOfCs[Cs];
      }
  }

  // RULE 2: preserve the original partial order.  Two sources feed the
  // constraint set: (a) every causal edge itself (the true-contention
  // order must survive, and the dynamic locking strategy relies on a
  // source being granted before its targets); (b) for each original
  // lock, the chain of causal-edge nodes in the recorded grant order.
  std::set<std::pair<uint32_t, uint32_t>> Emitted;
  auto addConstraint = [&](uint32_t Before, uint32_t After) {
    if (Before == After)
      return;
    if (Emitted.insert({Before, After}).second)
      Out.Constraints.push_back(OrderConstraint{Before, After});
  };
  for (const TopologyEdge &E : Topo.edges())
    addConstraint(E.From, E.To);
  for (LockId L = 0; L != Index.numLocks(); ++L) {
    const std::vector<uint32_t> &Order = Index.sectionsOfLock(L);
    uint32_t PrevCausal = InvalidId;
    for (uint32_t Cs : Order) {
      if (Topo.isStandalone(Cs))
        continue;
      if (PrevCausal != InvalidId)
        addConstraint(PrevCausal, Cs);
      PrevCausal = Cs;
    }
  }

  // Keep the recorded schedule aligned with the (grown) lock table;
  // auxiliary locks have no recorded order — RULE 2 constraints carry
  // the ordering for the transformed replay.
  if (!Out.LockSchedule.empty())
    Out.LockSchedule.resize(Out.Locks.size());

  Out.buildCsIndex();
  return Result;
}
