//===- transform/Transform.h - ULCP trace transformation --------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3's four-rule trace transformation: from a recorded trace
/// with ULCPs to a semantically-preserving ULCP-free trace.
///
///  - RULE 1 builds the causal topology (transform/Topology.h).
///  - RULE 2 pins the partial order of causal-edge nodes per lock, so
///    repeated replays of the transformed trace are stable.
///  - RULE 3 re-synchronizes: each node with outdegree receives a fresh
///    auxiliary lock (@L...); each node with indegree adds its source
///    nodes' auxiliary locks to its lockset.  Null-locks and standalone
///    nodes lose their lock/unlock operations entirely (encoded as an
///    empty lockset).
///  - RULE 4 (mutual exclusion iff locksets intersect) is enforced by
///    the replayer on the lockset tables this pass emits.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRANSFORM_TRANSFORM_H
#define PERFPLAY_TRANSFORM_TRANSFORM_H

#include "detect/CriticalSection.h"
#include "trace/Trace.h"
#include "transform/Topology.h"

#include <vector>

namespace perfplay {

/// Outcome of the four-rule transformation.
struct TransformResult {
  /// The ULCP-free trace: same threads/events with per-acquire lockset
  /// annotations, auxiliary locks appended to the lock table, and RULE
  /// 2 constraints installed.
  Trace Transformed;
  /// The RULE 1 causal topology (nodes = global CS ids).
  TopologyGraph Topology;
  /// Auxiliary lock given to each node with outdegree (InvalidId for
  /// the rest).  Index = global CS id.
  std::vector<LockId> AuxLockOfCs;
  /// Number of standalone nodes whose lock operations were removed.
  uint64_t NumStandalone = 0;
  /// Number of auxiliary locks created.
  uint64_t NumAuxLocks = 0;

  TransformResult() : Topology(0) {}
};

/// Runs RULE 1-4 over \p Tr (whose critical sections are \p Index).
TransformResult transformTrace(const Trace &Tr, const CsIndex &Index);

} // namespace perfplay

#endif // PERFPLAY_TRANSFORM_TRANSFORM_H
