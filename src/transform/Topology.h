//===- transform/Topology.h - Causal-order topology (RULE 1) ----*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The causal-order topology of Section 3: nodes are critical sections,
/// causal edges connect true lock contention pairs.  RULE 1 builds the
/// ULCP-free topology by sequential searching: each critical section
/// establishes a causal edge to its *first* matched TLCP in every other
/// thread; the ULCPs skipped over become non-causal (removable).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRANSFORM_TOPOLOGY_H
#define PERFPLAY_TRANSFORM_TOPOLOGY_H

#include "detect/CriticalSection.h"
#include "trace/Trace.h"

#include <vector>

namespace perfplay {

/// A causal edge: critical section From contends truly with To and must
/// happen before it.
struct TopologyEdge {
  uint32_t From = InvalidId;
  uint32_t To = InvalidId;

  bool operator==(const TopologyEdge &RHS) const {
    return From == RHS.From && To == RHS.To;
  }
};

/// The causal-order topology over a trace's critical sections.
class TopologyGraph {
public:
  explicit TopologyGraph(size_t NumNodes) : NumNodes(NumNodes) {
    OutEdges.resize(NumNodes);
    InEdges.resize(NumNodes);
  }

  void addEdge(uint32_t From, uint32_t To);

  size_t numNodes() const { return NumNodes; }
  size_t numEdges() const { return Edges.size(); }
  const std::vector<TopologyEdge> &edges() const { return Edges; }

  /// Successors of \p Node (targets of its causal edges).
  const std::vector<uint32_t> &successors(uint32_t Node) const {
    return OutEdges[Node];
  }
  /// Predecessors of \p Node (sources of causal edges into it).
  const std::vector<uint32_t> &predecessors(uint32_t Node) const {
    return InEdges[Node];
  }

  unsigned outDegree(uint32_t Node) const {
    return static_cast<unsigned>(OutEdges[Node].size());
  }
  unsigned inDegree(uint32_t Node) const {
    return static_cast<unsigned>(InEdges[Node].size());
  }

  /// A standalone node has no causal edges at all; RULE 3 removes its
  /// lock/unlock operations entirely.
  bool isStandalone(uint32_t Node) const {
    return outDegree(Node) == 0 && inDegree(Node) == 0;
  }

private:
  size_t NumNodes;
  std::vector<TopologyEdge> Edges;
  std::vector<std::vector<uint32_t>> OutEdges;
  std::vector<std::vector<uint32_t>> InEdges;
};

/// RULE 1: builds the ULCP-free causal topology of \p Tr.
///
/// For every critical section A (in per-lock recorded order), and for
/// every other thread U, scan U's same-lock critical sections that
/// follow A in the recorded order; the first that classifies as a true
/// contention pair with A receives a causal edge A -> B.  ULCPs passed
/// over on the way carry no edge.
TopologyGraph buildTopology(const Trace &Tr, const CsIndex &Index);

} // namespace perfplay

#endif // PERFPLAY_TRANSFORM_TOPOLOGY_H
