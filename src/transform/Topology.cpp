//===- transform/Topology.cpp - Causal-order topology (RULE 1) -------------===//

#include "transform/Topology.h"

#include "detect/Classify.h"

#include <cassert>
#include <set>

using namespace perfplay;

void TopologyGraph::addEdge(uint32_t From, uint32_t To) {
  assert(From < NumNodes && To < NumNodes && "edge endpoint out of range");
  assert(From != To && "self edge");
  Edges.push_back(TopologyEdge{From, To});
  OutEdges[From].push_back(To);
  InEdges[To].push_back(From);
}

TopologyGraph perfplay::buildTopology(const Trace &Tr,
                                      const CsIndex &Index) {
  TopologyGraph Graph(Index.size());
  MemoryImage Initial = MemoryImage::initialOf(Tr);

  for (LockId L = 0; L != Index.numLocks(); ++L) {
    const std::vector<uint32_t> &Order = Index.sectionsOfLock(L);
    for (size_t I = 0; I != Order.size(); ++I) {
      const CriticalSection &A = Index.byGlobalId(Order[I]);
      // Sequential searching: in every other thread, the first later
      // same-lock section that truly contends with A gets a causal
      // edge; matching stops for that thread.
      std::set<ThreadId> Matched;
      for (size_t J = I + 1; J != Order.size(); ++J) {
        const CriticalSection &B = Index.byGlobalId(Order[J]);
        if (B.Ref.Thread == A.Ref.Thread)
          continue;
        if (Matched.count(B.Ref.Thread))
          continue;
        if (classifyPair(Tr, Initial, A, B) == UlcpKind::TrueContention) {
          Graph.addEdge(A.GlobalId, B.GlobalId);
          Matched.insert(B.Ref.Thread);
        }
      }
    }
  }
  return Graph;
}
