//===- transform/RaceCheck.h - Theorem 1 race reporting ---------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Theorem 1 says the transformed trace either preserves the original
/// program semantics or *reports the data races* that make the newly
/// exposed parallelism unsafe.  This pass finds conflicting shared
/// accesses that the transformation left unordered and unprotected:
/// accesses on different threads to the same address (at least one
/// write) whose enclosing critical sections have disjoint locksets and
/// are not ordered by program order, causal edges or RULE 2
/// constraints.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_TRANSFORM_RACECHECK_H
#define PERFPLAY_TRANSFORM_RACECHECK_H

#include "detect/CriticalSection.h"
#include "trace/Trace.h"
#include "transform/Topology.h"

#include <vector>

namespace perfplay {

/// One reported race.
struct RaceReport {
  AddrId Addr = 0;
  ThreadId ThreadA = InvalidId;
  ThreadId ThreadB = InvalidId;
  /// Innermost enclosing critical sections (InvalidId if the access is
  /// outside any critical section).
  uint32_t CsA = InvalidId;
  uint32_t CsB = InvalidId;
};

/// Scans the transformed trace \p Transformed (with \p Topology from
/// the transformation and \p Index built from the *original* trace,
/// whose critical-section numbering it shares) and returns the races
/// the transformation would expose.  Duplicate (CsA, CsB, Addr)
/// combinations are reported once.
std::vector<RaceReport> checkRaces(const Trace &Transformed,
                                   const CsIndex &Index,
                                   const TopologyGraph &Topology);

} // namespace perfplay

#endif // PERFPLAY_TRANSFORM_RACECHECK_H
