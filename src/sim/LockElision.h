//===- sim/LockElision.h - Speculative lock elision baseline ----*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper argues against (Sections 2.2 and 7.1):
/// speculative lock elision (Rajwar/Goodman-style) executes critical
/// sections without taking the lock and aborts on data conflicts.  It
/// removes ULCP serialization *at runtime* — but pays aborts and
/// rollbacks, suffers false aborts from hardware limitations, and
/// gives the programmer no debugging information.
///
/// This simulator models that trade-off on our traces:
///  - sections run speculatively (no lock-wait),
///  - two temporally-overlapping same-lock sections abort the
///    later-started one when their read/write sets truly conflict
///    (the hardware cannot recognize benign conflicts: redundant
///    writes abort too),
///  - each section additionally suffers a seeded false abort with
///    probability FalseAbortRate,
///  - an abort rolls the section back (its body re-executes plus an
///    abort penalty); after MaxRetries aborts the section falls back
///    to the real lock, serializing behind the lock's other fallbacks.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SIM_LOCKELISION_H
#define PERFPLAY_SIM_LOCKELISION_H

#include "detect/CriticalSection.h"
#include "sim/CostModel.h"
#include "trace/Trace.h"

#include <cstdint>
#include <vector>

namespace perfplay {

/// Lock-elision simulation parameters.
struct LockElisionOptions {
  /// Cycles lost per abort beyond re-executing the section body.
  TimeNs AbortPenalty = 150;
  /// Probability of a capacity/interrupt-style false abort per
  /// speculative attempt (the paper cites these as a practical
  /// limitation of hardware LE).
  double FalseAbortRate = 0.02;
  /// Aborts after which the section gives up and takes the real lock.
  unsigned MaxRetries = 2;
  uint64_t Seed = 1;
  CostModel Costs;
};

/// Lock-elision simulation outcome.
struct LockElisionResult {
  TimeNs TotalTime = 0;
  std::vector<TimeNs> ThreadFinish;
  /// Conflict aborts (real data conflicts detected during speculation).
  uint64_t ConflictAborts = 0;
  /// False aborts (hardware limitations).
  uint64_t FalseAborts = 0;
  /// Sections that exhausted their retries and took the lock.
  uint64_t Fallbacks = 0;
  /// Virtual time burned re-executing aborted sections.
  TimeNs WastedNs = 0;
};

/// Simulates lock elision over \p Tr.  \p Index must be built from
/// \p Tr.  Deterministic for a fixed seed.
LockElisionResult simulateLockElision(
    const Trace &Tr, const CsIndex &Index,
    const LockElisionOptions &Opts = LockElisionOptions());

/// HTM-style speculation parameters.  Unlike the SLE model's flat
/// false-abort rate, hardware transactional memory aborts
/// deterministically when a section's read+write footprint overflows
/// the transactional buffers, and a capacity abort is not worth
/// retrying — the section goes straight to the lock fallback.
struct HtmOptions {
  /// Distinct addresses (read set + write set) the hardware can track
  /// per transaction; larger footprints take a capacity abort.
  unsigned Capacity = 64;
  /// Cycles lost per abort beyond re-executing the section body.
  TimeNs AbortPenalty = 120;
  /// Conflict aborts after which the section takes the real lock.
  unsigned MaxRetries = 3;
  /// Probability a transaction is killed by an interrupt/context
  /// switch per attempt (retryable, unlike capacity).
  double InterruptAbortRate = 0.0;
  uint64_t Seed = 1;
  CostModel Costs;
};

/// HTM simulation outcome.
struct HtmResult {
  TimeNs TotalTime = 0;
  std::vector<TimeNs> ThreadFinish;
  /// Aborts from true data conflicts between overlapping transactions.
  uint64_t ConflictAborts = 0;
  /// Deterministic aborts from footprints exceeding Capacity.
  uint64_t CapacityAborts = 0;
  /// Retryable aborts from simulated interrupts.
  uint64_t InterruptAborts = 0;
  /// Sections that gave up speculation and took the lock.
  uint64_t Fallbacks = 0;
  /// Virtual time burned re-executing aborted transactions.
  TimeNs WastedNs = 0;
};

/// Simulates HTM-style speculation (restricted transactional memory
/// with a lock fallback) over \p Tr.  \p Index must be built from
/// \p Tr.  Deterministic for a fixed seed.
HtmResult simulateHtm(const Trace &Tr, const CsIndex &Index,
                      const HtmOptions &Opts = HtmOptions());

} // namespace perfplay

#endif // PERFPLAY_SIM_LOCKELISION_H
