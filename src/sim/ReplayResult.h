//===- sim/ReplayResult.h - Replay outputs -----------------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replay outputs: completion times, per-critical-section timestamps
/// (the Time1/Time2/Time3 labels of Figure 10 that feed Equation 1),
/// and the waiting/bookkeeping accounting behind the paper's resource
/// wasting and lockset-overhead numbers.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SIM_REPLAYRESULT_H
#define PERFPLAY_SIM_REPLAYRESULT_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace perfplay {

/// Sentinel for "never happened".
inline constexpr TimeNs NeverNs = ~static_cast<TimeNs>(0);

/// Virtual timestamps of one critical section in one replay.
struct CsTiming {
  /// Start of the precursor segment (previous sync point on the
  /// thread); Figure 10's Time1 for a pair's first section.
  TimeNs PrecursorStart = NeverNs;
  /// Thread reached the acquire and began waiting.
  TimeNs Arrival = NeverNs;
  /// Lock(s) granted.
  TimeNs Granted = NeverNs;
  /// Lock(s) released.
  TimeNs Released = NeverNs;
  /// End of the successor segment (next sync point after the release);
  /// Figure 10's Time2/Time3.
  TimeNs SuccessorEnd = NeverNs;

  /// Lock-waiting duration of this section.
  TimeNs waitNs() const {
    return Granted == NeverNs || Arrival == NeverNs ? 0 : Granted - Arrival;
  }
};

/// Result of one replay.
struct ReplayResult {
  /// Empty on success; otherwise a diagnostic (e.g. enforced-order
  /// deadlock) and the other fields are partial.
  std::string Error;

  /// Completion time: max over thread finish times.
  TimeNs TotalTime = 0;
  std::vector<TimeNs> ThreadFinish;

  /// Per-critical-section timestamps, indexed by global CS id.
  std::vector<CsTiming> Sections;

  /// Total CPU burned in spin-waits (the paper's resource wasting).
  TimeNs SpinWaitNs = 0;
  /// Total blocked (idle) waiting.
  TimeNs IdleWaitNs = 0;
  /// Per-thread spin-wait totals.
  std::vector<TimeNs> ThreadSpinWaitNs;
  /// Virtual time charged to lockset bookkeeping (Table 3 numerator).
  TimeNs LocksetOverheadNs = 0;
  /// Locks actually acquired through locksets (DLS reduces this).
  uint64_t LocksetLocksAcquired = 0;
  /// Times the engine had to break an enforced-order stall to make
  /// progress (only possible under SYNC-S order inversions).
  uint64_t OrderBreaks = 0;

  /// Per-lock grant order observed in this replay; installing this into
  /// Trace::LockSchedule is the "recording" step ELSC-S replays later
  /// enforce.
  std::vector<std::vector<CsRef>> GrantSchedule;

  bool ok() const { return Error.empty(); }
};

} // namespace perfplay

#endif // PERFPLAY_SIM_REPLAYRESULT_H
