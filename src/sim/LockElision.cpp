//===- sim/LockElision.cpp - Speculative lock elision baseline --------------===//

#include "sim/LockElision.h"

#include "detect/Classify.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>

using namespace perfplay;

namespace {

/// Per-section speculation bookkeeping.
struct Speculation {
  /// Tentative [start, end) interval under pure speculation with the
  /// thread's current shift applied.
  TimeNs Start = 0;
  TimeNs End = 0;
  unsigned Aborts = 0;
  bool FellBack = false;
};

/// Body cost of a section (compute + memory + condvar traffic between
/// acquire/release; a failed interior trylock pays its failure cost).
TimeNs bodyCost(const Trace &Tr, const CriticalSection &Cs,
                const CostModel &Costs) {
  TimeNs Total = 0;
  const auto &Events = Tr.Threads[Cs.Ref.Thread].Events;
  for (size_t I = Cs.AcquireIdx + 1; I != Cs.ReleaseIdx; ++I) {
    const Event &E = Events[I];
    if (E.Kind == EventKind::Compute)
      Total += E.Cost;
    else if (E.Kind == EventKind::Read || E.Kind == EventKind::Write)
      Total += Costs.MemAccess;
    else if (E.Kind == EventKind::TryAcquire && !E.TrySucceeded)
      Total += Costs.TryLockFail;
    else if (E.Kind == EventKind::CondWait)
      Total += Costs.CondWait;
    else if (E.Kind == EventKind::CondSignal ||
             E.Kind == EventKind::CondBroadcast)
      Total += Costs.CondSignal;
  }
  return Total;
}

/// Pass 1 of both speculation models: contention-free solo execution —
/// every acquire succeeds immediately, so each thread's timeline has no
/// lock waits.  Fills per-section tentative intervals and per-thread
/// finish times.
void soloSpeculate(const Trace &Tr, const CostModel &Costs,
                   std::vector<Speculation> &Specs,
                   std::vector<TimeNs> &ThreadFinish) {
  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    TimeNs Clock = 0;
    uint32_t NextIndex = 0;
    std::vector<uint32_t> Open;
    for (const Event &E : Tr.Threads[T].Events) {
      switch (E.Kind) {
      case EventKind::Compute:
        Clock += E.Cost;
        break;
      case EventKind::Read:
      case EventKind::Write:
        Clock += Costs.MemAccess;
        break;
      case EventKind::LockAcquire:
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
      case EventKind::TryAcquire: {
        if (!isSectionOpen(E)) {
          Clock += Costs.TryLockFail;
          break;
        }
        uint32_t Cs = Tr.globalCsId(CsRef{T, NextIndex++});
        Specs[Cs].Start = Clock;
        Open.push_back(Cs);
        break;
      }
      case EventKind::LockRelease:
        assert(!Open.empty() && "unbalanced release");
        Specs[Open.back()].End = Clock;
        Open.pop_back();
        break;
      case EventKind::CondWait:
        Clock += Costs.CondWait;
        break;
      case EventKind::CondSignal:
      case EventKind::CondBroadcast:
        Clock += Costs.CondSignal;
        break;
      case EventKind::ThreadStart:
      case EventKind::ThreadEnd:
        break;
      }
    }
    ThreadFinish[T] = Clock;
  }
}

} // namespace

LockElisionResult perfplay::simulateLockElision(
    const Trace &Tr, const CsIndex &Index,
    const LockElisionOptions &Opts) {
  LockElisionResult Result;
  Result.ThreadFinish.assign(Tr.numThreads(), 0);

  // Pass 1: speculative solo execution — every acquire succeeds
  // immediately, so each thread's timeline is contention-free.
  std::vector<Speculation> Specs(Index.size());
  soloSpeculate(Tr, Opts.Costs, Specs, Result.ThreadFinish);

  // Pass 2: conflict resolution per lock in start order.  An abort
  // re-executes the section (body + penalty), shifting everything
  // later on its thread; retries exhausted -> take the real lock and
  // serialize behind the lock's previous fallback.
  MemoryImage Initial = MemoryImage::initialOf(Tr);
  Rng R(Opts.Seed);
  std::vector<TimeNs> Shift(Tr.numThreads(), 0);
  std::vector<TimeNs> LockFreeAt(Tr.Locks.size(), 0);

  for (LockId L = 0; L != Index.numLocks(); ++L) {
    std::vector<uint32_t> Order = Index.sectionsOfLock(L);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t A, uint32_t B) {
                       return Specs[A].Start < Specs[B].Start;
                     });
    for (size_t I = 0; I != Order.size(); ++I) {
      uint32_t Cs = Order[I];
      const CriticalSection &Section = Index.byGlobalId(Cs);
      ThreadId T = Section.Ref.Thread;
      TimeNs Start = Specs[Cs].Start + Shift[T];
      TimeNs End = Specs[Cs].End + Shift[T];
      TimeNs Body = bodyCost(Tr, Section, Opts.Costs);

      for (unsigned Attempt = 0;; ++Attempt) {
        // Find a conflicting earlier section still running at Start.
        bool Conflict = false;
        for (size_t J = 0; J != I && !Conflict; ++J) {
          uint32_t Other = Order[J];
          const CriticalSection &OtherSec = Index.byGlobalId(Other);
          if (OtherSec.Ref.Thread == T)
            continue;
          TimeNs OtherEnd = Specs[Other].End + Shift[OtherSec.Ref.Thread];
          if (OtherEnd <= Start)
            continue; // Finished before we started.
          // Hardware conflict detection is set-based: benign conflicts
          // abort too (only truly disjoint sections co-exist).
          Conflict = classifyPairStatic(OtherSec, Section) ==
                     UlcpKind::TrueContention;
        }
        bool FalseAbort = !Conflict && R.nextBool(Opts.FalseAbortRate);
        if (!Conflict && !FalseAbort)
          break; // Commit.

        if (Conflict)
          ++Result.ConflictAborts;
        else
          ++Result.FalseAborts;
        ++Specs[Cs].Aborts;
        TimeNs Redo = Body + Opts.AbortPenalty;
        Result.WastedNs += Redo;
        Shift[T] += Redo;
        Start += Redo;
        End += Redo;

        if (Attempt + 1 >= Opts.MaxRetries) {
          // Fall back to the real lock: wait until the lock's previous
          // fallback released it.
          ++Result.Fallbacks;
          Specs[Cs].FellBack = true;
          TimeNs Grant = std::max(Start, LockFreeAt[L]);
          TimeNs Wait = Grant - Start;
          Shift[T] += Wait + Opts.Costs.LockAcquire +
                      Opts.Costs.LockRelease;
          Start = Grant;
          End = Grant + Body + Opts.Costs.LockAcquire +
                Opts.Costs.LockRelease;
          LockFreeAt[L] = End;
          break;
        }
      }
      Specs[Cs].Start = Start - Shift[T];
      Specs[Cs].End = End - Shift[T];
    }
  }
  (void)Initial;

  Result.TotalTime = 0;
  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    Result.ThreadFinish[T] += Shift[T];
    Result.TotalTime = std::max(Result.TotalTime, Result.ThreadFinish[T]);
  }
  return Result;
}

HtmResult perfplay::simulateHtm(const Trace &Tr, const CsIndex &Index,
                                const HtmOptions &Opts) {
  HtmResult Result;
  Result.ThreadFinish.assign(Tr.numThreads(), 0);

  // Pass 1: contention-free solo execution, shared with SLE.
  std::vector<Speculation> Specs(Index.size());
  soloSpeculate(Tr, Opts.Costs, Specs, Result.ThreadFinish);

  // Pass 2: transactional conflict resolution per lock in start order.
  // Conflicts and interrupts abort-and-retry like SLE; a footprint
  // larger than the transactional buffers aborts deterministically, so
  // retrying is futile — one wasted attempt, then the lock fallback.
  Rng R(Opts.Seed);
  std::vector<TimeNs> Shift(Tr.numThreads(), 0);
  std::vector<TimeNs> LockFreeAt(Tr.Locks.size(), 0);

  for (LockId L = 0; L != Index.numLocks(); ++L) {
    std::vector<uint32_t> Order = Index.sectionsOfLock(L);
    std::stable_sort(Order.begin(), Order.end(),
                     [&](uint32_t A, uint32_t B) {
                       return Specs[A].Start < Specs[B].Start;
                     });
    for (size_t I = 0; I != Order.size(); ++I) {
      uint32_t Cs = Order[I];
      const CriticalSection &Section = Index.byGlobalId(Cs);
      ThreadId T = Section.Ref.Thread;
      TimeNs Start = Specs[Cs].Start + Shift[T];
      TimeNs End = Specs[Cs].End + Shift[T];
      TimeNs Body = bodyCost(Tr, Section, Opts.Costs);
      const bool Overflows =
          Section.Reads.size() + Section.Writes.size() > Opts.Capacity;

      for (unsigned Attempt = 0;; ++Attempt) {
        bool Conflict = false;
        if (!Overflows) {
          for (size_t J = 0; J != I && !Conflict; ++J) {
            uint32_t Other = Order[J];
            const CriticalSection &OtherSec = Index.byGlobalId(Other);
            if (OtherSec.Ref.Thread == T)
              continue;
            TimeNs OtherEnd =
                Specs[Other].End + Shift[OtherSec.Ref.Thread];
            if (OtherEnd <= Start)
              continue; // Committed before we started.
            // Cache-line conflict detection is set-based: benign
            // conflicts abort too; only truly disjoint (or read-read)
            // transactions co-exist.
            Conflict = classifyPairStatic(OtherSec, Section) ==
                       UlcpKind::TrueContention;
          }
        }
        bool Interrupt = !Overflows && !Conflict &&
                         R.nextBool(Opts.InterruptAbortRate);
        if (!Overflows && !Conflict && !Interrupt)
          break; // Commit.

        if (Overflows)
          ++Result.CapacityAborts;
        else if (Conflict)
          ++Result.ConflictAborts;
        else
          ++Result.InterruptAborts;
        ++Specs[Cs].Aborts;
        TimeNs Redo = Body + Opts.AbortPenalty;
        Result.WastedNs += Redo;
        Shift[T] += Redo;
        Start += Redo;
        End += Redo;

        if (Overflows || Attempt + 1 >= Opts.MaxRetries) {
          // Lock fallback: serialize behind the lock's previous
          // fallback, paying the real acquire/release.
          ++Result.Fallbacks;
          Specs[Cs].FellBack = true;
          TimeNs Grant = std::max(Start, LockFreeAt[L]);
          TimeNs Wait = Grant - Start;
          Shift[T] += Wait + Opts.Costs.LockAcquire +
                      Opts.Costs.LockRelease;
          Start = Grant;
          End = Grant + Body + Opts.Costs.LockAcquire +
                Opts.Costs.LockRelease;
          LockFreeAt[L] = End;
          break;
        }
      }
      Specs[Cs].Start = Start - Shift[T];
      Specs[Cs].End = End - Shift[T];
    }
  }

  Result.TotalTime = 0;
  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    Result.ThreadFinish[T] += Shift[T];
    Result.TotalTime = std::max(Result.TotalTime, Result.ThreadFinish[T]);
  }
  return Result;
}
