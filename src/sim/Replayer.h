//===- sim/Replayer.h - Deterministic trace replay ----------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay engine: a discrete-event simulator that re-executes a
/// trace on virtual multicore time under one of the four enforcement
/// schemes (ORIG-S / ELSC-S / SYNC-S / MEM-S, Section 6.1), honoring
/// transformed-trace locksets (RULE 3/4), the dynamic locking strategy
/// (Figure 9) and RULE 2 partial-order constraints.
///
/// Scheme semantics:
///  - ORIG-S: locks go to the earliest arrival; computation durations
///    receive seed-dependent scheduling jitter.  Nondeterministic
///    across seeds — the large error bars of Figure 13.
///  - ELSC-S: every lock is granted in the trace's recorded order
///    (Trace::LockSchedule); no jitter.  Deterministic, and adds no
///    waiting beyond the recorded interleaving.
///  - SYNC-S: locks are granted in an input-derived order (sorted by
///    each section's no-contention arrival time), regardless of the
///    recorded schedule — Kendo's input-driven determinism, which
///    inserts waits whenever that order disagrees with arrivals.
///  - MEM-S: SYNC-S-style determinism plus a global total order over
///    all shared accesses (derived from an ELSC pre-replay), charging a
///    serialization latency per access — PinPlay/CoreDet-style.
///
/// For transformed traces (non-empty Trace::Locksets), the per-lock
/// recorded order no longer applies (auxiliary locks are fresh); RULE 2
/// constraints carry the required ordering and grants otherwise go to
/// the earliest arrival with deterministic tie-breaking.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SIM_REPLAYER_H
#define PERFPLAY_SIM_REPLAYER_H

#include "sim/ReplayOptions.h"
#include "sim/ReplayResult.h"
#include "trace/Trace.h"

#include <vector>

namespace perfplay {

/// Replays \p Tr under \p Opts and returns the timing outcome.
ReplayResult replayTrace(const Trace &Tr,
                         const ReplayOptions &Opts = ReplayOptions());

/// Per-critical-section arrival times when each thread runs alone
/// (no contention, immediate grants).  Index = global CS id.  This is
/// the input-derived ordering key SYNC-S enforces.
std::vector<TimeNs> computeSoloArrivals(const Trace &Tr,
                                        const CostModel &Costs);

/// "Recording" step for generated traces: replays \p Tr once under
/// ORIG-S with \p Seed and installs the observed per-lock grant order
/// as Tr.LockSchedule — the schedule ELSC-S will enforce on replays.
/// Returns the recording run's result.
ReplayResult recordGrantSchedule(Trace &Tr, uint64_t Seed,
                                 const CostModel &Costs = CostModel());

} // namespace perfplay

#endif // PERFPLAY_SIM_REPLAYER_H
