//===- sim/Timeline.cpp - Textual replay timelines --------------------------===//

#include "sim/Timeline.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <vector>

using namespace perfplay;

namespace {

/// Activity codes ordered by display precedence (higher wins a bucket).
enum class LaneState : uint8_t {
  Done = 0,     // '.'
  Compute = 1,  // '='
  IdleWait = 2, // '-'
  SpinWait = 3, // 'w'
  Critical = 4, // '#'
};

char laneChar(LaneState S) {
  switch (S) {
  case LaneState::Done:
    return '.';
  case LaneState::Compute:
    return '=';
  case LaneState::IdleWait:
    return '-';
  case LaneState::SpinWait:
    return 'w';
  case LaneState::Critical:
    return '#';
  }
  return '?';
}

} // namespace

std::string perfplay::renderTimeline(const Trace &Tr,
                                     const ReplayResult &R,
                                     unsigned Width) {
  assert(Width > 0 && "need at least one bucket");
  std::ostringstream OS;
  if (R.TotalTime == 0) {
    for (ThreadId T = 0; T != Tr.numThreads(); ++T)
      OS << "T" << T << " |" << std::string(Width, '.') << "|\n";
    return OS.str();
  }

  TimeNs BucketNs = std::max<TimeNs>(R.TotalTime / Width, 1);

  // Paint per-thread lanes: default Compute up to the thread's finish,
  // then overlay waits and critical sections from the CS timings.
  std::vector<std::vector<LaneState>> Lanes(
      Tr.numThreads(), std::vector<LaneState>(Width, LaneState::Done));
  auto bucketOf = [&](TimeNs T) {
    return std::min<size_t>(static_cast<size_t>(T / BucketNs), Width - 1);
  };
  auto paint = [&](ThreadId T, TimeNs From, TimeNs To, LaneState S) {
    if (From >= To)
      return;
    for (size_t I = bucketOf(From); I <= bucketOf(To - 1); ++I)
      if (static_cast<uint8_t>(S) >
          static_cast<uint8_t>(Lanes[T][I]))
        Lanes[T][I] = S;
  };

  for (ThreadId T = 0; T != Tr.numThreads(); ++T)
    paint(T, 0, R.ThreadFinish[T], LaneState::Compute);

  for (uint32_t Cs = 0; Cs != R.Sections.size(); ++Cs) {
    const CsTiming &S = R.Sections[Cs];
    if (S.Granted == NeverNs)
      continue;
    CsRef Ref = Tr.csRefOf(Cs);
    bool Spin = false;
    // Waiting style follows the section's lock (spin locks burn CPU).
    uint32_t Index = 0;
    for (const Event &E : Tr.Threads[Ref.Thread].Events)
      if (isSectionOpen(E)) {
        if (Index++ == Ref.Index) {
          Spin = Tr.Locks[E.Lock].IsSpin;
          break;
        }
      }
    if (S.Arrival != NeverNs)
      paint(Ref.Thread, S.Arrival, S.Granted,
            Spin ? LaneState::SpinWait : LaneState::IdleWait);
    if (S.Released != NeverNs)
      paint(Ref.Thread, S.Granted, S.Released, LaneState::Critical);
  }

  for (ThreadId T = 0; T != Tr.numThreads(); ++T) {
    OS << "T" << T << " |";
    for (LaneState S : Lanes[T])
      OS << laneChar(S);
    OS << "|\n";
  }
  OS << "      '=' compute  '#' critical section  'w' spin-wait  "
        "'-' blocked  '.' done\n";
  return OS.str();
}
