//===- sim/CostModel.h - Virtual-time cost model -----------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Virtual-time costs charged by the replay simulator.  The paper's
/// replayer re-executes the recorded binary; ours advances virtual
/// clocks, so the primitive costs of the machine (lock handoff, shared
/// access, lockset bookkeeping) are explicit parameters.  Defaults
/// approximate an x86 server-class part: tens of nanoseconds for an
/// uncontended lock operation, a handful for a cached shared access.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SIM_COSTMODEL_H
#define PERFPLAY_SIM_COSTMODEL_H

#include "trace/Event.h"

namespace perfplay {

/// Primitive costs in virtual nanoseconds.
struct CostModel {
  /// Acquiring one (uncontended) lock.
  TimeNs LockAcquire = 25;
  /// Releasing one lock.
  TimeNs LockRelease = 15;
  /// One shared read or write.
  TimeNs MemAccess = 6;
  /// Extra serialization latency per shared access under MEM-S, which
  /// funnels every access through a global total order (the PinPlay /
  /// CoreDet style enforcement the paper reports as a 2x-20x slowdown).
  TimeNs MemSerialize = 40;
  /// Per-lock lockset bookkeeping charged at each transformed-trace
  /// acquire (RULE 3/4) when the full lockset is maintained (no DLS):
  /// every source lock participates in the mutex-relation work.
  TimeNs LocksetMaintain = 30;
  /// Per-kept-lock upkeep under the dynamic locking strategy: the
  /// pruned set is small and needs only its own bookkeeping.
  TimeNs LocksetMaintainDls = 10;
  /// Per-entry END-flag check DLS performs while pruning (Figure 9's
  /// initialization loop) — a cheap boolean load per source.
  TimeNs LocksetEndCheck = 2;
  /// A trylock attempt that fails: the atomic compare-exchange and the
  /// caller's fallback branch, with no handoff or queueing.
  TimeNs TryLockFail = 20;
  /// Parking and unparking around a condition-variable wait (the
  /// sleep itself is modeled by the replay's ordering, not a cost).
  TimeNs CondWait = 50;
  /// Signaling / broadcasting a condition variable.
  TimeNs CondSignal = 10;
};

} // namespace perfplay

#endif // PERFPLAY_SIM_COSTMODEL_H
