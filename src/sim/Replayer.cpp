//===- sim/Replayer.cpp - Deterministic trace replay -----------------------===//

#include "sim/Replayer.h"

#include "support/Rng.h"

#include <algorithm>
#include <cassert>

using namespace perfplay;

namespace {

/// The discrete-event replay engine.  See Replayer.h for semantics.
class Engine {
public:
  Engine(const Trace &Tr, const ReplayOptions &Opts);

  /// When true, per-access completion times are captured into MemTimes
  /// (used by the MEM-S pre-replay to derive the global access order).
  bool CaptureMemTimes = false;
  /// Per-thread, per-access completion times (filled when capturing).
  std::vector<std::vector<TimeNs>> MemTimes;
  /// Global access order to enforce: (thread, per-thread access index).
  std::vector<std::pair<ThreadId, size_t>> MemOrder;

  ReplayResult run();

private:
  enum class StatusKind { Running, WaitAcquire, WaitMem, Done };

  struct ThreadState {
    size_t PC = 0;
    TimeNs Clock = 0;
    StatusKind Status = StatusKind::Running;
    uint32_t NextCsIndex = 0;
    /// Open critical sections (global ids), innermost last.
    std::vector<uint32_t> OpenCs;
    /// Pending acquire (valid while WaitAcquire).
    uint32_t PendingCs = InvalidId;
    std::vector<LockId> PendingLocks;
    bool PendingHasLockset = false;
    /// Lockset id of the pending acquire (InvalidId = plain {Lock});
    /// kept so the dynamic locking strategy can re-evaluate END flags
    /// as other threads' releases become known.
    LocksetId PendingLockset = InvalidId;
    /// Whether the pending acquire is reader-side (rwlock Shared
    /// mode): shared grants coexist with other shared holders and
    /// only exclude exclusive ones.
    bool PendingShared = false;
    TimeNs Arrival = 0;
    /// End of the last sync point; precursor-segment start of the next
    /// critical section.
    TimeNs LastSyncEnd = 0;
    /// Next shared-access index on this thread.
    size_t MemIdx = 0;
    /// Released sections whose successor segment is still running.
    std::vector<uint32_t> AwaitSuccessor;
  };

  struct LockState {
    bool Held = false;
    ThreadId Holder = InvalidId;
    TimeNs FreeAt = 0;
    /// Current reader-side holders; an exclusive grant needs both
    /// !Held and Shared == 0.
    uint32_t Shared = 0;
    /// Latest reader-side release so far; the earliest instant a
    /// writer can be granted after readers drain.
    TimeNs SharedFreeAt = 0;
    size_t Cursor = 0; // Into EnforcedOrder (granted entries skipped).
  };

  /// A grant candidate found by the selection scan.
  struct Candidate {
    bool IsMem = false;
    ThreadId Thread = InvalidId;
    TimeNs Time = 0;
    uint64_t TieBreak = 0;
    bool Valid = false;
  };

  const Trace &Tr;
  ReplayOptions Opts;
  ReplayResult Result;

  std::vector<ThreadState> Threads;
  std::vector<LockState> Locks;
  /// Per-lock enforced grant order (global CS ids); empty = none.
  std::vector<std::vector<uint32_t>> EnforcedOrder;
  /// Per-CS grant / release times (NeverNs until they happen).
  std::vector<TimeNs> GrantTime;
  std::vector<TimeNs> ReleaseTime;
  /// Locks actually acquired by each granted CS (for its release).
  std::vector<std::vector<LockId>> AcquiredLocks;
  /// Whether each granted CS holds its locks in Shared mode (rwlock
  /// reader); drives the release path's bookkeeping.
  std::vector<uint8_t> SharedCs;
  /// RULE 2 predecessors per CS.
  std::vector<std::vector<uint32_t>> Preds;
  /// MEM-S cursor state.
  size_t MemCursor = 0;
  TimeNs MemFreeAt = 0;

  bool memSerialized() const {
    return Opts.Schedule == ScheduleKind::MemS && !CaptureMemTimes;
  }

  bool lockOrderEnforced() const {
    // Recorded per-lock order only applies to untransformed traces; in
    // transformed traces ordering is carried by RULE 2 constraints.
    if (!Tr.Locksets.empty())
      return false;
    return Opts.Schedule != ScheduleKind::OrigS;
  }

  TimeNs jitteredCost(ThreadId T, size_t PC, TimeNs Cost) const;
  void resolvePendingLocks(ThreadState &TS, const Event &E, uint32_t Cs);
  void refreshPendingLocks(ThreadState &TS);
  void flushSuccessors(ThreadState &TS, TimeNs Now);
  void advanceThread(ThreadId T);
  Candidate scanAcquires(bool IgnoreOrder) const;
  Candidate scanMem() const;
  void grantAcquire(ThreadId T, TimeNs When);
  void grantMem(ThreadId T, TimeNs When);
  uint32_t orderHead(LockId L) const;
};

} // namespace

Engine::Engine(const Trace &Tr, const ReplayOptions &Opts)
    : Tr(Tr), Opts(Opts) {
  size_t NumCs = Tr.numCriticalSections();
  Threads.resize(Tr.numThreads());
  Locks.resize(Tr.Locks.size());
  GrantTime.assign(NumCs, NeverNs);
  ReleaseTime.assign(NumCs, NeverNs);
  AcquiredLocks.resize(NumCs);
  SharedCs.assign(NumCs, 0);
  Preds.resize(NumCs);
  for (const OrderConstraint &C : Tr.Constraints)
    Preds[C.After].push_back(C.Before);

  Result.Sections.resize(NumCs);
  Result.ThreadFinish.assign(Tr.numThreads(), 0);
  Result.ThreadSpinWaitNs.assign(Tr.numThreads(), 0);
  Result.GrantSchedule.assign(Tr.Locks.size(), {});
  MemTimes.resize(Tr.numThreads());

  // Build the enforced per-lock order for the chosen scheme.
  EnforcedOrder.assign(Tr.Locks.size(), {});
  if (lockOrderEnforced()) {
    if (Opts.Schedule == ScheduleKind::ElscS ||
        Opts.Schedule == ScheduleKind::MemS) {
      // ELSC: exactly the recorded schedule.  MEM-S piggybacks on it so
      // the enforced memory order (derived from an ELSC pre-replay)
      // can never contradict the lock order.
      for (LockId L = 0; L != Tr.LockSchedule.size(); ++L)
        for (const CsRef &Ref : Tr.LockSchedule[L])
          EnforcedOrder[L].push_back(Tr.globalCsId(Ref));
    } else {
      assert(Opts.Schedule == ScheduleKind::SyncS && "covered above");
      // SYNC-S: input-derived deterministic order — sort each lock's
      // sections by their no-contention (solo) arrival time.
      std::vector<TimeNs> Solo = computeSoloArrivals(Tr, Opts.Costs);
      std::vector<std::vector<uint32_t>> ByLock(Tr.Locks.size());
      for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
        uint32_t Index = 0;
        for (const Event &E : Tr.Threads[T].Events)
          if (isSectionOpen(E)) {
            uint32_t Id = Tr.globalCsId(CsRef{T, Index++});
            ByLock[E.Lock].push_back(Id);
          }
      }
      for (LockId L = 0; L != ByLock.size(); ++L) {
        auto &Order = ByLock[L];
        std::stable_sort(Order.begin(), Order.end(),
                         [&](uint32_t A, uint32_t B) {
                           if (Solo[A] != Solo[B])
                             return Solo[A] < Solo[B];
                           return A < B;
                         });
        EnforcedOrder[L] = std::move(Order);
      }
    }
  }
}

TimeNs Engine::jitteredCost(ThreadId T, size_t PC, TimeNs Cost) const {
  if (Opts.Schedule != ScheduleKind::OrigS || Opts.OrigJitter <= 0.0)
    return Cost;
  uint64_t H = splitMix64(Opts.Seed ^ (static_cast<uint64_t>(T) << 40) ^
                          static_cast<uint64_t>(PC));
  double U = static_cast<double>(H >> 11) * 0x1.0p-53; // [0, 1)
  double Factor = 1.0 + Opts.OrigJitter * (2.0 * U - 1.0);
  double Scaled = static_cast<double>(Cost) * Factor;
  return Scaled <= 0.0 ? 0 : static_cast<TimeNs>(Scaled + 0.5);
}

void Engine::resolvePendingLocks(ThreadState &TS, const Event &E,
                                 uint32_t Cs) {
  TS.PendingHasLockset = E.Lockset != InvalidId;
  TS.PendingLockset = E.Lockset;
  TS.PendingCs = Cs;
  if (E.Lockset == InvalidId) {
    TS.PendingLocks.assign(1, E.Lock);
    return;
  }
  refreshPendingLocks(TS);
}

void Engine::refreshPendingLocks(ThreadState &TS) {
  if (TS.PendingLockset == InvalidId)
    return;
  TS.PendingLocks.clear();
  for (const LocksetEntry &Entry : Tr.Locksets[TS.PendingLockset].Entries) {
    // Dynamic locking strategy (Figure 9): a lock contributed by a
    // source section that already finished (END flag set) by this
    // thread's arrival is skipped.  Re-evaluated on every scheduler
    // round: releases on other threads become known as the simulation
    // commits grants in virtual-time order.
    if (Opts.UseDynamicLocking && Entry.SourceCs != InvalidId &&
        ReleaseTime[Entry.SourceCs] != NeverNs &&
        ReleaseTime[Entry.SourceCs] <= TS.Arrival)
      continue;
    TS.PendingLocks.push_back(Entry.Lock);
  }
  std::sort(TS.PendingLocks.begin(), TS.PendingLocks.end());
  TS.PendingLocks.erase(
      std::unique(TS.PendingLocks.begin(), TS.PendingLocks.end()),
      TS.PendingLocks.end());
}

void Engine::flushSuccessors(ThreadState &TS, TimeNs Now) {
  for (uint32_t Cs : TS.AwaitSuccessor)
    Result.Sections[Cs].SuccessorEnd = Now;
  TS.AwaitSuccessor.clear();
}

void Engine::advanceThread(ThreadId T) {
  ThreadState &TS = Threads[T];
  const auto &Events = Tr.Threads[T].Events;
  for (;;) {
    assert(TS.PC < Events.size() && "ran past ThreadEnd");
    const Event &E = Events[TS.PC];
    switch (E.Kind) {
    case EventKind::ThreadStart:
      ++TS.PC;
      continue;

    case EventKind::Compute:
      TS.Clock += jitteredCost(T, TS.PC, E.Cost);
      ++TS.PC;
      continue;

    case EventKind::Read:
    case EventKind::Write:
      if (memSerialized()) {
        TS.Status = StatusKind::WaitMem;
        TS.Arrival = TS.Clock;
        return;
      }
      TS.Clock += Opts.Costs.MemAccess;
      if (CaptureMemTimes)
        MemTimes[T].push_back(TS.Clock);
      ++TS.MemIdx;
      ++TS.PC;
      continue;

    case EventKind::LockAcquire:
    case EventKind::RwAcquireRead:
    case EventKind::RwAcquireWrite:
    case EventKind::TryAcquire: {
      if (!isSectionOpen(E)) {
        // Failed trylock: the recorded run paid the compare-exchange
        // and took its fallback path — no blocking, no section.
        TS.Clock += Opts.Costs.TryLockFail;
        ++TS.PC;
        continue;
      }
      uint32_t Cs = Tr.globalCsId(CsRef{T, TS.NextCsIndex});
      ++TS.NextCsIndex;
      CsTiming &Timing = Result.Sections[Cs];
      Timing.PrecursorStart = TS.LastSyncEnd;
      TS.Arrival = TS.Clock;
      TS.PendingShared = acquireModeOf(E) == AcquireMode::Shared;
      resolvePendingLocks(TS, E, Cs);
      if (TS.PendingLocks.empty()) {
        // Removed lock/unlock pair (null-lock or standalone node): the
        // section proceeds immediately.  It still bounds the
        // surrounding segments so Equation 1's Time2/Time3 labels stay
        // comparable between the original and ULCP-free replays.
        flushSuccessors(TS, TS.Clock);
        Timing.Arrival = TS.Clock;
        Timing.Granted = TS.Clock;
        GrantTime[Cs] = TS.Clock;
        TS.OpenCs.push_back(Cs);
        TS.LastSyncEnd = TS.Clock;
        ++TS.PC;
        continue;
      }
      Timing.Arrival = TS.Clock;
      TS.Status = StatusKind::WaitAcquire;
      flushSuccessors(TS, TS.Clock);
      return;
    }

    case EventKind::LockRelease: {
      assert(!TS.OpenCs.empty() && "release without acquire");
      uint32_t Cs = TS.OpenCs.back();
      TS.OpenCs.pop_back();
      // A lockset is released as one operation: all locks become free
      // at the same instant (the section's release time), so RULE 4
      // mutual exclusion spans the full [Granted, Released] window.
      if (!AcquiredLocks[Cs].empty())
        TS.Clock += Opts.Costs.LockRelease;
      if (SharedCs[Cs]) {
        for (LockId L : AcquiredLocks[Cs]) {
          assert(Locks[L].Shared > 0 &&
                 "releasing a shared lock with no readers");
          --Locks[L].Shared;
          Locks[L].SharedFreeAt =
              std::max(Locks[L].SharedFreeAt, TS.Clock);
        }
      } else {
        for (LockId L : AcquiredLocks[Cs]) {
          assert(Locks[L].Held && Locks[L].Holder == T &&
                 "releasing a lock this thread does not hold");
          Locks[L].Held = false;
          Locks[L].Holder = InvalidId;
          Locks[L].FreeAt = TS.Clock;
        }
      }
      ReleaseTime[Cs] = TS.Clock;
      Result.Sections[Cs].Released = TS.Clock;
      TS.LastSyncEnd = TS.Clock;
      TS.AwaitSuccessor.push_back(Cs);
      ++TS.PC;
      continue;
    }

    case EventKind::CondWait:
      // The paired mutex release / re-acquire around the sleep is
      // explicit in the trace; this event charges only the park cost.
      TS.Clock += Opts.Costs.CondWait;
      ++TS.PC;
      continue;

    case EventKind::CondSignal:
    case EventKind::CondBroadcast:
      TS.Clock += Opts.Costs.CondSignal;
      ++TS.PC;
      continue;

    case EventKind::ThreadEnd:
      flushSuccessors(TS, TS.Clock);
      TS.Status = StatusKind::Done;
      Result.ThreadFinish[T] = TS.Clock;
      return;
    }
  }
}

uint32_t Engine::orderHead(LockId L) const {
  const auto &Order = EnforcedOrder[L];
  size_t Cursor = Locks[L].Cursor;
  while (Cursor < Order.size() && GrantTime[Order[Cursor]] != NeverNs)
    ++Cursor;
  // Mutation-free scan; the cursor is advanced for real in grantAcquire.
  return Cursor < Order.size() ? Order[Cursor] : InvalidId;
}

Engine::Candidate Engine::scanAcquires(bool IgnoreOrder) const {
  Candidate Best;
  for (ThreadId T = 0; T != Threads.size(); ++T) {
    const ThreadState &TS = Threads[T];
    if (TS.Status != StatusKind::WaitAcquire)
      continue;
    TimeNs When = TS.Arrival;
    bool Feasible = true;
    for (LockId L : TS.PendingLocks) {
      // An exclusive holder blocks everyone; reader-side holders block
      // only exclusive waiters (shared grants coexist with them).
      if (Locks[L].Held ||
          (!TS.PendingShared && Locks[L].Shared != 0)) {
        Feasible = false;
        break;
      }
      When = std::max(When, Locks[L].FreeAt);
      if (!TS.PendingShared)
        When = std::max(When, Locks[L].SharedFreeAt);
      if (!IgnoreOrder && !EnforcedOrder[L].empty()) {
        uint32_t Head = orderHead(L);
        if (Head != InvalidId && Head != TS.PendingCs) {
          Feasible = false;
          break;
        }
      }
    }
    if (!Feasible)
      continue;
    for (uint32_t Pre : Preds[TS.PendingCs]) {
      if (GrantTime[Pre] == NeverNs) {
        Feasible = false;
        break;
      }
      When = std::max(When, GrantTime[Pre]);
    }
    if (!Feasible)
      continue;
    uint64_t Tie = Opts.Schedule == ScheduleKind::OrigS
                       ? splitMix64(Opts.Seed ^ (uint64_t(T) << 32) ^
                                    TS.PendingCs)
                       : T;
    if (!Best.Valid || When < Best.Time ||
        (When == Best.Time && Tie < Best.TieBreak)) {
      Best.Valid = true;
      Best.IsMem = false;
      Best.Thread = T;
      Best.Time = When;
      Best.TieBreak = Tie;
    }
  }
  return Best;
}

Engine::Candidate Engine::scanMem() const {
  Candidate Best;
  if (!memSerialized() || MemCursor >= MemOrder.size())
    return Best;
  auto [T, Idx] = MemOrder[MemCursor];
  const ThreadState &TS = Threads[T];
  if (TS.Status != StatusKind::WaitMem || TS.MemIdx != Idx)
    return Best;
  Best.Valid = true;
  Best.IsMem = true;
  Best.Thread = T;
  Best.Time = std::max(TS.Arrival, MemFreeAt);
  return Best;
}

void Engine::grantAcquire(ThreadId T, TimeNs When) {
  ThreadState &TS = Threads[T];
  uint32_t Cs = TS.PendingCs;
  TimeNs Waited = When - TS.Arrival;
  bool Spin = false;
  for (LockId L : TS.PendingLocks)
    Spin |= Tr.Locks[L].IsSpin;
  if (Spin) {
    Result.SpinWaitNs += Waited;
    Result.ThreadSpinWaitNs[T] += Waited;
  } else {
    Result.IdleWaitNs += Waited;
  }

  TS.Clock = When;
  // The lockset is acquired as one synchronization operation; its
  // per-lock bookkeeping is the lockset-maintenance cost below.
  if (!TS.PendingLocks.empty())
    TS.Clock += Opts.Costs.LockAcquire;
  for (LockId L : TS.PendingLocks) {
    LockState &LS = Locks[L];
    assert(!LS.Held && "granting a held lock");
    if (TS.PendingShared) {
      ++LS.Shared;
    } else {
      assert(LS.Shared == 0 && "exclusive grant with readers inside");
      LS.Held = true;
      LS.Holder = T;
    }
    // Advance the enforced-order cursor past this grant (and any
    // entries granted earlier through other paths).
    const auto &Order = EnforcedOrder[L];
    Result.GrantSchedule[L].push_back(Tr.csRefOf(Cs));
    while (LS.Cursor < Order.size() &&
           (Order[LS.Cursor] == Cs || GrantTime[Order[LS.Cursor]] != NeverNs))
      ++LS.Cursor;
  }
  if (TS.PendingHasLockset) {
    TimeNs Overhead;
    if (Opts.UseDynamicLocking) {
      size_t Entries = Tr.Locksets[TS.PendingLockset].Entries.size();
      Overhead = Opts.Costs.LocksetMaintainDls * TS.PendingLocks.size() +
                 Opts.Costs.LocksetEndCheck * Entries;
    } else {
      Overhead = Opts.Costs.LocksetMaintain * TS.PendingLocks.size();
    }
    TS.Clock += Overhead;
    Result.LocksetOverheadNs += Overhead;
    Result.LocksetLocksAcquired += TS.PendingLocks.size();
  }

  GrantTime[Cs] = When;
  Result.Sections[Cs].Granted = When;
  AcquiredLocks[Cs] = TS.PendingLocks;
  SharedCs[Cs] = TS.PendingShared ? 1 : 0;
  TS.OpenCs.push_back(Cs);
  TS.LastSyncEnd = TS.Clock;
  TS.Status = StatusKind::Running;
  TS.PendingCs = InvalidId;
  TS.PendingLocks.clear();
  ++TS.PC;
  advanceThread(T);
}

void Engine::grantMem(ThreadId T, TimeNs When) {
  ThreadState &TS = Threads[T];
  Result.IdleWaitNs += When - TS.Arrival;
  TS.Clock = When + Opts.Costs.MemAccess + Opts.Costs.MemSerialize;
  MemFreeAt = TS.Clock;
  ++MemCursor;
  ++TS.MemIdx;
  ++TS.PC;
  TS.Status = StatusKind::Running;
  advanceThread(T);
}

ReplayResult Engine::run() {
  for (ThreadId T = 0; T != Threads.size(); ++T)
    advanceThread(T);

  for (;;) {
    bool AnyWaiting = false;
    for (const ThreadState &TS : Threads)
      AnyWaiting |= TS.Status != StatusKind::Done;
    if (!AnyWaiting)
      break;

    // Re-evaluate DLS END flags now that more releases are known.
    for (ThreadState &TS : Threads)
      if (TS.Status == StatusKind::WaitAcquire)
        refreshPendingLocks(TS);

    Candidate Acq = scanAcquires(/*IgnoreOrder=*/false);
    Candidate Mem = scanMem();
    Candidate Pick;
    if (Acq.Valid && Mem.Valid)
      Pick = Mem.Time <= Acq.Time ? Mem : Acq;
    else if (Acq.Valid)
      Pick = Acq;
    else if (Mem.Valid)
      Pick = Mem;

    if (!Pick.Valid) {
      // Every waiter is stalled.  Under SYNC-S an input-derived order
      // can be inconsistent with nested-lock arrival order; break the
      // stall by ignoring order constraints once, as Kendo's runtime
      // effectively does when it commits a lock to the next waiter.
      if (Opts.Schedule == ScheduleKind::SyncS) {
        Candidate Fallback = scanAcquires(/*IgnoreOrder=*/true);
        if (Fallback.Valid) {
          ++Result.OrderBreaks;
          grantAcquire(Fallback.Thread, Fallback.Time);
          continue;
        }
      }
      Result.Error = "replay deadlock: no grantable waiter";
      return Result;
    }

    if (Pick.IsMem)
      grantMem(Pick.Thread, Pick.Time);
    else
      grantAcquire(Pick.Thread, Pick.Time);
  }

  Result.TotalTime = 0;
  for (TimeNs Finish : Result.ThreadFinish)
    Result.TotalTime = std::max(Result.TotalTime, Finish);
  return Result;
}

std::vector<TimeNs> perfplay::computeSoloArrivals(const Trace &Tr,
                                                  const CostModel &Costs) {
  std::vector<TimeNs> Solo(Tr.numCriticalSections(), 0);
  for (ThreadId T = 0; T != Tr.Threads.size(); ++T) {
    TimeNs Clock = 0;
    uint32_t Index = 0;
    for (const Event &E : Tr.Threads[T].Events) {
      switch (E.Kind) {
      case EventKind::Compute:
        Clock += E.Cost;
        break;
      case EventKind::Read:
      case EventKind::Write:
        Clock += Costs.MemAccess;
        break;
      case EventKind::LockAcquire:
      case EventKind::RwAcquireRead:
      case EventKind::RwAcquireWrite:
      case EventKind::TryAcquire:
        if (isSectionOpen(E)) {
          Solo[Tr.globalCsId(CsRef{T, Index++})] = Clock;
          Clock += Costs.LockAcquire;
        } else {
          Clock += Costs.TryLockFail;
        }
        break;
      case EventKind::LockRelease:
        Clock += Costs.LockRelease;
        break;
      case EventKind::CondWait:
        Clock += Costs.CondWait;
        break;
      case EventKind::CondSignal:
      case EventKind::CondBroadcast:
        Clock += Costs.CondSignal;
        break;
      case EventKind::ThreadStart:
      case EventKind::ThreadEnd:
        break;
      }
    }
  }
  return Solo;
}

ReplayResult perfplay::replayTrace(const Trace &Tr,
                                   const ReplayOptions &Opts) {
  if (Opts.Schedule != ScheduleKind::MemS) {
    Engine E(Tr, Opts);
    return E.run();
  }
  // MEM-S: derive the global shared-access order from a deterministic
  // ELSC pre-replay, then enforce it.
  ReplayOptions PreOpts = Opts;
  PreOpts.Schedule = ScheduleKind::ElscS;
  Engine Pre(Tr, PreOpts);
  Pre.CaptureMemTimes = true;
  ReplayResult PreResult = Pre.run();
  if (!PreResult.ok())
    return PreResult;

  std::vector<std::pair<TimeNs, std::pair<ThreadId, size_t>>> Ordered;
  for (ThreadId T = 0; T != Pre.MemTimes.size(); ++T)
    for (size_t I = 0; I != Pre.MemTimes[T].size(); ++I)
      Ordered.push_back({Pre.MemTimes[T][I], {T, I}});
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first < B.first;
              return A.second < B.second;
            });

  Engine E(Tr, Opts);
  E.MemOrder.reserve(Ordered.size());
  for (const auto &Entry : Ordered)
    E.MemOrder.push_back(Entry.second);
  return E.run();
}

ReplayResult perfplay::recordGrantSchedule(Trace &Tr, uint64_t Seed,
                                           const CostModel &Costs) {
  ReplayOptions Opts;
  Opts.Schedule = ScheduleKind::OrigS;
  Opts.Seed = Seed;
  Opts.Costs = Costs;
  ReplayResult Result = replayTrace(Tr, Opts);
  if (Result.ok())
    Tr.LockSchedule = Result.GrantSchedule;
  return Result;
}
