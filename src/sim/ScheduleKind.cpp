//===- sim/ScheduleKind.cpp - Scheme names ----------------------------------===//

#include "sim/ReplayOptions.h"

using namespace perfplay;

const char *perfplay::scheduleKindName(ScheduleKind Kind) {
  switch (Kind) {
  case ScheduleKind::OrigS:
    return "ORIG-S";
  case ScheduleKind::ElscS:
    return "ELSC-S";
  case ScheduleKind::SyncS:
    return "SYNC-S";
  case ScheduleKind::MemS:
    return "MEM-S";
  }
  return "?";
}

bool perfplay::parseScheduleKind(const std::string &Name,
                                 ScheduleKind &Kind) {
  if (Name == "orig" || Name == "ORIG-S")
    Kind = ScheduleKind::OrigS;
  else if (Name == "elsc" || Name == "ELSC-S")
    Kind = ScheduleKind::ElscS;
  else if (Name == "sync" || Name == "SYNC-S")
    Kind = ScheduleKind::SyncS;
  else if (Name == "mem" || Name == "MEM-S")
    Kind = ScheduleKind::MemS;
  else
    return false;
  return true;
}
