//===- sim/ScheduleKind.cpp - Scheme names ----------------------------------===//

#include "sim/ReplayOptions.h"

using namespace perfplay;

const char *perfplay::scheduleKindName(ScheduleKind Kind) {
  switch (Kind) {
  case ScheduleKind::OrigS:
    return "ORIG-S";
  case ScheduleKind::ElscS:
    return "ELSC-S";
  case ScheduleKind::SyncS:
    return "SYNC-S";
  case ScheduleKind::MemS:
    return "MEM-S";
  }
  return "?";
}
