//===- sim/ReplayOptions.h - Replay configuration ----------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replay configuration: the four schedule-enforcement schemes of
/// Section 6.1 plus the dynamic locking strategy switch and the seed
/// that drives ORIG-S nondeterminism.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SIM_REPLAYOPTIONS_H
#define PERFPLAY_SIM_REPLAYOPTIONS_H

#include "sim/CostModel.h"

#include <cstdint>
#include <string>

namespace perfplay {

/// The replay schedule-enforcement schemes compared in Figure 13.
enum class ScheduleKind : uint8_t {
  /// No enforcement: locks go to the earliest arrival, scheduling noise
  /// perturbs computation.  Nondeterministic across seeds.
  OrigS,
  /// Enforced locking serialization constraint (the paper's
  /// contribution): every lock is granted in exactly the recorded
  /// order, reproducing the recorded interleaving with no added waits.
  ElscS,
  /// Kendo-style synchronization-based determinism: locks are granted
  /// in an input-derived deterministic order regardless of the recorded
  /// schedule, inserting waits whenever that order disagrees with
  /// arrival order.
  SyncS,
  /// PinPlay/CoreDet-style memory-based determinism: SYNC-S lock
  /// enforcement plus a global total order over all shared accesses.
  MemS,
};

/// Returns the paper's name for \p Kind ("ORIG-S", "ELSC-S", ...).
const char *scheduleKindName(ScheduleKind Kind);

/// Parses a scheme name — the CLI short forms ("orig", "elsc", "sync",
/// "mem") or the paper names ("ORIG-S", ...).  Returns true and sets
/// \p Kind on success.
bool parseScheduleKind(const std::string &Name, ScheduleKind &Kind);

/// Replay configuration.
struct ReplayOptions {
  ScheduleKind Schedule = ScheduleKind::ElscS;
  /// Seed for ORIG-S scheduling noise and tie-breaking.  Enforced
  /// schemes ignore it (their replays are bit-identical by design).
  uint64_t Seed = 1;
  /// Enable the dynamic locking strategy (Figure 9): locks contributed
  /// by already-finished source sections are skipped at grant time.
  bool UseDynamicLocking = true;
  /// Relative amplitude of ORIG-S computation jitter (0.05 = +/-5%).
  double OrigJitter = 0.05;
  CostModel Costs;
  /// Memory budget for an AnalysisSession's per-{transformed, scheme,
  /// seed} ReplayResult cache: the maximum number of cached results
  /// before least-recently-used entries are evicted (0 = unbounded).
  /// Sessions clamp the bound to >= 2 so one original + one
  /// transformed replay — what report() and run() revisit — always
  /// survive.  References returned by replay()/replayTransformed() are
  /// valid until their entry is evicted.
  size_t ReplayCacheCapacity = 32;
};

} // namespace perfplay

#endif // PERFPLAY_SIM_REPLAYOPTIONS_H
