//===- sim/Timeline.h - Textual replay timelines -----------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a replay as one text lane per thread (a Gantt strip), the
/// quickest way to *see* serialization disappear between the original
/// and ULCP-free replays:
///
///   T0 |====####=====####............|
///   T1 |===wwww####======####........|
///
///   '=' computing   '#' inside a critical section
///   'w' spin-waiting  '-' blocked (idle)   '.' finished
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_SIM_TIMELINE_H
#define PERFPLAY_SIM_TIMELINE_H

#include "sim/ReplayResult.h"
#include "trace/Trace.h"

#include <string>

namespace perfplay {

/// Renders \p R (a replay of \p Tr) as per-thread lanes of \p Width
/// buckets.  Each bucket shows the dominant activity of its time span.
std::string renderTimeline(const Trace &Tr, const ReplayResult &R,
                           unsigned Width = 72);

} // namespace perfplay

#endif // PERFPLAY_SIM_TIMELINE_H
