//===- record/Preload.h - LD_PRELOAD recording runtime ---------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RecordRuntime glues the recorder together: the producer-side hooks
/// the interposition shim (record/PreloadShim.cpp) calls after each
/// real pthread operation, the per-thread ring registry, the lock/site
/// address-interning tables (record/RingBuffer.h), and the background
/// flusher thread that periodically drains every ring into the
/// streaming v3.1 translator (record/Flusher.h).
///
/// The class is instantiable: the preload shim owns one global
/// instance configured from the environment, while the in-process
/// differential and stress tests drive instances directly — same code
/// path, no subprocess required — which is what lets the ring/flusher
/// pipeline run under the plain/ASan/TSan ctest lanes where LD_PRELOAD
/// interposition is unavailable (TSan's own interceptors shadow the
/// shim).
///
/// Lock hierarchy (all annotated, see docs/ARCHITECTURE.md):
///   FlushMu — serializes the flusher (drain loop, finalize) and the
///             stop flag; acquired before RegistryMu when the drain
///             loop snapshots the thread list.
///   RegistryMu — leaf; guards the thread-state list only.  Producer
///             hooks take it exactly once per thread (registration).
/// The hook fast path takes no locks at all: TLS lookup, lock-free
/// interning, SPSC push.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_RECORD_PRELOAD_H
#define PERFPLAY_RECORD_PRELOAD_H

#include "record/Flusher.h"
#include "record/RingBuffer.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <pthread.h>
#include <string>
#include <vector>

namespace perfplay {
namespace record {

/// Recorder configuration.  The shim fills it from PERFPLAY_* env
/// vars; tests construct it directly.
struct RecordOptions {
  /// Final trace path.  Written as `<OutPath>.tmp` and renamed on a
  /// clean finalize.
  std::string OutPath;
  /// Optional key/value stats sidecar (the CLI wrapper reads it back).
  std::string StatsPath;
  /// Records per per-thread ring (rounded up to a power of two).
  size_t RingCapacity = 1u << 14;
  /// Lock / site interning-table capacities.
  size_t LockTableCapacity = 1u << 14;
  size_t SiteTableCapacity = 1u << 14;
  /// Target encoded chunk size for the v3 writer.
  size_t ChunkBytes = DefaultV3ChunkBytes;
  /// Background drain period.
  unsigned FlushIntervalMs = 5;
  /// Run at the start of the flusher thread; the shim uses it to set
  /// its thread-local reentrancy guard so the flusher's own locking is
  /// never recorded.
  std::function<void()> FlusherThreadInit;
};

/// What a recording run produced; written to the stats sidecar and
/// printed by `perfplay record`.
struct RecordSummary {
  bool Ok = false;
  std::string Error;
  std::string OutPath;
  uint32_t Threads = 0;
  /// Hook invocations that tried to record (== Records + Drops).
  uint64_t Attempts = 0;
  /// RawRecords that reached the flusher.
  uint64_t Records = 0;
  /// Records refused by a full ring or full registry — bounded loss,
  /// never a stall (the acceptance gate requires 0 at default sizes).
  uint64_t Drops = 0;
  uint64_t TraceEvents = 0;
  uint64_t Sections = 0;
  uint64_t SynthesizedReleases = 0;
  uint64_t UnmatchedReleases = 0;
};

/// The recorder runtime.  Producer hooks are safe from any thread and
/// lock-free after the thread's first call; finalize() (idempotent)
/// stops the flusher, drains every ring one last time and closes the
/// trace.  Threads should be quiescent by then — stragglers' records
/// after the final drain are lost with the process.
class RecordRuntime {
public:
  explicit RecordRuntime(const RecordOptions &Opts);
  ~RecordRuntime();

  RecordRuntime(const RecordRuntime &) = delete;
  RecordRuntime &operator=(const RecordRuntime &) = delete;

  /// CLOCK_MONOTONIC in nanoseconds.
  static uint64_t nowNs();

  // -- Producer hooks (call after the real operation succeeded) -----
  void mutexAcquired(uintptr_t M, void *Site, uint64_t T0, uint64_t T1);
  void rwAcquired(uintptr_t L, bool Shared, void *Site, uint64_t T0,
                  uint64_t T1);
  void tryAcquire(uintptr_t L, bool Shared, bool Succeeded, void *Site,
                  uint64_t T0, uint64_t T1);
  void released(uintptr_t L, bool Rwlock, uint64_t Ts);
  void condWaited(uintptr_t C, uintptr_t M, void *Site, uint64_t T0,
                  uint64_t T1);
  void condSignaled(uintptr_t C, bool Broadcast, uint64_t Ts);

  /// Stops the flusher, drains, frames threads, writes the footer and
  /// renames the trace into place.  Idempotent; later calls return the
  /// first result.  Also writes the stats sidecar when configured.
  RecordSummary finalize() EXCLUDES(FlushMu, RegistryMu);

  // -- fork() support (wired to pthread_atfork by the shim) ----------
  void prepareFork() ACQUIRE(FlushMu, RegistryMu);
  void parentAfterFork() RELEASE(FlushMu, RegistryMu);
  /// Re-initializes in the child: fresh rings and a fresh flusher
  /// writing to `<OutPath>.fork.<pid>`; sections the forking thread
  /// held across fork() surface as UnmatchedReleases in the child.
  void childAfterFork() RELEASE(FlushMu, RegistryMu);

  const RecordOptions &options() const { return Opts; }

private:
  /// The calling thread's state; registers on first use.  Null once
  /// finalized (hooks become no-ops).
  ThreadState *self() EXCLUDES(RegistryMu);
  void push(ThreadState &TS, const RawRecord &R);
  void startFlusherThread();
  void drainAllLocked() REQUIRES(FlushMu) EXCLUDES(RegistryMu);
  void flusherMain();
  static void *flusherTrampoline(void *Self);
  static void tlsDestructor(void *P);

  RecordOptions Opts;
  AddrTable Locks;
  AddrTable Sites;

  Mutex RegistryMu;
  std::vector<std::unique_ptr<ThreadState>> Threads GUARDED_BY(RegistryMu);
  /// Pre-fork thread states of the parent, kept alive in the child so
  /// finalize's teardown stays leak-free under LeakSanitizer.
  std::vector<std::unique_ptr<ThreadState>> Graveyard GUARDED_BY(RegistryMu);
  pthread_key_t TlsKey;

  Mutex FlushMu;
  CondVar FlushCv;
  bool StopFlusher GUARDED_BY(FlushMu) = false;
  std::unique_ptr<TraceFlusher> Flusher GUARDED_BY(FlushMu);

  pthread_t FlushThread;
  bool FlushThreadRunning = false;

  std::atomic<bool> Finalized{false};
  Mutex SummaryMu;
  RecordSummary Summary GUARDED_BY(SummaryMu);
};

} // namespace record
} // namespace perfplay

#endif // PERFPLAY_RECORD_PRELOAD_H
