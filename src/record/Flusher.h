//===- record/Flusher.h - RawRecord → TraceV3Writer translator -*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-consumer half of the LD_PRELOAD recorder: translates the
/// RawRecords drained from every thread's ring into structurally valid
/// per-thread Event streams and feeds them straight into a streaming
/// TraceV3Writer (v3.1 chunked format) — no in-memory Trace is ever
/// materialized, so recording scales with the chunk size, not the
/// trace size.
///
/// The translator owns everything Trace::validate() demands that raw
/// pthread streams do not guarantee:
///
///  * ThreadStart / ThreadEnd framing is synthesized (lazily on a
///    thread's first record; at finalize for threads that never pushed
///    a ThreadEnd — e.g. the main thread).
///  * Strict LIFO nesting: a non-LIFO unlock (hand-over-hand locking)
///    is fixed up by synthesizing releases of the sections stacked
///    above it and re-opening them afterwards, counted in
///    SynthesizedReleases so the distortion is visible.
///  * Releases of locks with no recorded open (taken before recording
///    started, or whose open record was dropped) are suppressed and
///    counted in UnmatchedReleases — never emitted, never deadlocked.
///  * The cond-wait dance mirrors runtime/Instrument.h's
///    RecordingCondition: CondWait inside the open section, then
///    release, then re-acquire with no compute charged for the sleep.
///
/// Threading: TraceFlusher itself takes no locks — RecordRuntime
/// serializes every call (background drain loop and finalize) under
/// its flush mutex; see Preload.h for the hierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_RECORD_FLUSHER_H
#define PERFPLAY_RECORD_FLUSHER_H

#include "record/RingBuffer.h"
#include "trace/TraceV3.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace perfplay {
namespace record {

/// Translation counters, folded into RecordSummary at finalize.
struct FlushStats {
  /// RawRecords drained and translated.
  uint64_t Records = 0;
  /// Events appended to the v3 stream (including synthesized ones).
  uint64_t TraceEvents = 0;
  /// Critical sections opened.
  uint64_t Sections = 0;
  /// Releases synthesized for LIFO fixups and threads that ended (or
  /// were finalized) holding locks.
  uint64_t SynthesizedReleases = 0;
  /// Releases (and cond-wait dances) suppressed because the lock had
  /// no recorded open on the thread's stack.
  uint64_t UnmatchedReleases = 0;
};

/// Streams drained RawRecords into `<OutPath>.tmp` as chunked v3.1 and
/// renames to OutPath on a successful finalize, so a killed recorder
/// never leaves a truncated file at the advertised path (the .tmp
/// corpse is the typed-failure fixture TraceIOCorruptTest loads).
class TraceFlusher {
public:
  /// Opens the temporary output file; on failure ok() is false and
  /// every later call is a no-op until finalize reports the error.
  TraceFlusher(std::string OutPath, size_t ChunkBytes);
  ~TraceFlusher();

  TraceFlusher(const TraceFlusher &) = delete;
  TraceFlusher &operator=(const TraceFlusher &) = delete;

  bool ok() const { return Err.empty(); }

  /// Drains \p TS's ring, translating every record.  \p Locks and
  /// \p Sites are the runtime's registries (new entries are registered
  /// with the writer on first reference).
  void drain(ThreadState &TS, const AddrTable &Locks, const AddrTable &Sites);

  /// Closes every open section, frames every thread, writes the
  /// footer and renames into place.  \p NumThreads is the registry's
  /// final thread count (ids below it that never produced a record
  /// still get an empty ThreadStart/ThreadEnd frame so the dense id
  /// space survives the round trip).  Returns false with \p OutErr set
  /// on any I/O or writer failure (the .tmp file is removed).
  bool finalize(uint32_t NumThreads, const AddrTable &Locks,
                const AddrTable &Sites, std::string &OutErr);

  const FlushStats &stats() const { return Stats; }
  const std::string &outPath() const { return OutPath; }

private:
  /// One open critical section on a thread's translation stack.
  struct OpenSection {
    uint32_t Lock;
    uint32_t Site;
    /// Event kind that re-opens this section after a LIFO fixup.
    EventKind ReopenKind;
  };

  /// Per-thread translation state, indexed by dense thread id.
  struct EmitState {
    bool Started = false;
    bool Ended = false;
    uint64_t LastTs = 0;
    std::vector<OpenSection> Stack;
  };

  void translate(EmitState &ES, const RawRecord &R, const AddrTable &Locks,
                 const AddrTable &Sites);
  /// Appends Compute(Now - LastTs) when positive and advances LastTs.
  void charge(EmitState &ES, uint64_t Now);
  void emit(const Event &E);
  void emitOpen(EmitState &ES, EventKind Kind, uint32_t Lock, uint32_t Site,
                bool Shared = false);
  /// Synthesizes releases for Stack[From..] (top first) and returns
  /// the saved entries for re-opening.
  std::vector<OpenSection> unwindAbove(EmitState &ES, size_t From);
  void reopen(EmitState &ES, const std::vector<OpenSection> &Saved);
  void closeThread(EmitState &ES);
  /// Registers registry ids up to and including \p Id with the writer
  /// (dense writer ids mirror registry ids by construction).
  void ensureLock(uint32_t Id, const AddrTable &Locks);
  void ensureSite(uint32_t Id, const AddrTable &Sites);
  /// Maps a registry site id to the trace site id (InvalidId when the
  /// registry overflowed).
  uint32_t siteOf(uint32_t Id, const AddrTable &Sites);

  std::string OutPath;
  std::string TmpPath;
  std::FILE *File = nullptr;
  std::unique_ptr<TraceV3Writer> Writer;
  std::string Err;

  std::vector<EmitState> PerThread;
  uint32_t WriterLocks = 0;
  uint32_t WriterSites = 0;
  FlushStats Stats;
  bool Finalized = false;
};

/// Best-effort pretty name for a return address: `function` from
/// dladdr when the symbol is exported, otherwise `module+0xoffset`
/// from /proc/self/maps, otherwise the raw address.  \p File receives
/// the containing object's path (or "??").  Exposed for tests.
void describeReturnAddress(uintptr_t Addr, std::string &File,
                           std::string &Function);

} // namespace record
} // namespace perfplay

#endif // PERFPLAY_RECORD_FLUSHER_H
