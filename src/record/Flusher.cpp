//===- record/Flusher.cpp - RawRecord → TraceV3Writer translator ----------===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "record/Flusher.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#endif

namespace perfplay {
namespace record {

namespace {

const char *lockTagName(uint8_t Tag) {
  switch (Tag) {
  case LockTagRwlock:
    return "rwlock";
  case LockTagCond:
    return "cond";
  default:
    return "mutex";
  }
}

std::string hexAddr(uintptr_t A) {
  char Buf[2 + 16 + 1];
  std::snprintf(Buf, sizeof(Buf), "0x%" PRIxPTR, A);
  return Buf;
}

#if defined(__unix__) && !defined(__APPLE__)
/// Scans /proc/self/maps for the executable mapping containing
/// \p Addr.  Returns true with the object path and the offset of
/// \p Addr from the mapping start.
bool moduleOfAddress(uintptr_t Addr, std::string &Path, uintptr_t &Offset) {
  std::FILE *Maps = std::fopen("/proc/self/maps", "r");
  if (!Maps)
    return false;
  char Line[512];
  bool Found = false;
  while (std::fgets(Line, sizeof(Line), Maps)) {
    uintptr_t Lo = 0, Hi = 0;
    char Perms[8] = {};
    int PathPos = -1;
    if (std::sscanf(Line, "%" SCNxPTR "-%" SCNxPTR " %7s %*s %*s %*s %n", &Lo,
                    &Hi, Perms, &PathPos) < 3)
      continue;
    if (Addr < Lo || Addr >= Hi)
      continue;
    if (PathPos > 0) {
      char *P = Line + PathPos;
      size_t Len = std::strcspn(P, "\n");
      Path.assign(P, Len);
    }
    Offset = Addr - Lo;
    Found = true;
    break;
  }
  std::fclose(Maps);
  return Found && !Path.empty();
}
#endif

} // namespace

void describeReturnAddress(uintptr_t Addr, std::string &File,
                           std::string &Function) {
  File = "??";
  Function.clear();
#if defined(__unix__) || defined(__APPLE__)
  Dl_info Info;
  std::memset(&Info, 0, sizeof(Info));
  if (dladdr(reinterpret_cast<void *>(Addr), &Info)) {
    if (Info.dli_fname && *Info.dli_fname)
      File = Info.dli_fname;
    if (Info.dli_sname && *Info.dli_sname) {
      Function = Info.dli_sname;
      return;
    }
  }
#endif
#if defined(__unix__) && !defined(__APPLE__)
  std::string Path;
  uintptr_t Offset = 0;
  if (moduleOfAddress(Addr, Path, Offset)) {
    if (File == "??")
      File = Path;
    Function = Path;
    size_t Slash = Function.rfind('/');
    if (Slash != std::string::npos)
      Function.erase(0, Slash + 1);
    Function += "+" + hexAddr(Offset);
    return;
  }
#endif
  Function = hexAddr(Addr);
}

TraceFlusher::TraceFlusher(std::string Out, size_t ChunkBytes)
    : OutPath(std::move(Out)), TmpPath(OutPath + ".tmp") {
  File = std::fopen(TmpPath.c_str(), "wb");
  if (!File) {
    Err = "cannot open '" + TmpPath + "' for writing";
    return;
  }
  Writer = std::make_unique<TraceV3Writer>(
      [this](const void *Data, size_t Size) {
        return Size == 0 || std::fwrite(Data, 1, Size, File) == Size;
      },
      ChunkBytes);
}

TraceFlusher::~TraceFlusher() {
  if (File) {
    std::fclose(File);
    std::remove(TmpPath.c_str());
  }
}

void TraceFlusher::ensureLock(uint32_t Id, const AddrTable &Locks) {
  while (WriterLocks <= Id) {
    uintptr_t Addr = 0;
    uint8_t Tag = 0;
    Locks.entry(WriterLocks, Addr, Tag);
    Writer->addLock(/*IsSpin=*/false,
                    std::string(lockTagName(Tag)) + "@" + hexAddr(Addr));
    ++WriterLocks;
  }
}

void TraceFlusher::ensureSite(uint32_t Id, const AddrTable &Sites) {
  while (WriterSites <= Id) {
    uintptr_t Addr = 0;
    uint8_t Tag = 0;
    Sites.entry(WriterSites, Addr, Tag);
    std::string SiteFile, SiteFn;
    describeReturnAddress(Addr, SiteFile, SiteFn);
    Writer->addSite(/*BeginLine=*/0, /*EndLine=*/0, SiteFile, SiteFn);
    ++WriterSites;
  }
}

uint32_t TraceFlusher::siteOf(uint32_t Id, const AddrTable &Sites) {
  if (Id == InvalidRecId)
    return InvalidId;
  ensureSite(Id, Sites);
  return Id;
}

void TraceFlusher::emit(const Event &E) {
  Writer->append(E);
  ++Stats.TraceEvents;
}

void TraceFlusher::charge(EmitState &ES, uint64_t Now) {
  if (Now > ES.LastTs)
    emit(Event::compute(Now - ES.LastTs));
  ES.LastTs = std::max(ES.LastTs, Now);
}

void TraceFlusher::emitOpen(EmitState &ES, EventKind Kind, uint32_t Lock,
                            uint32_t Site, bool Shared) {
  switch (Kind) {
  case EventKind::RwAcquireRead:
    emit(Event::rwAcquireRead(Lock, Site));
    break;
  case EventKind::RwAcquireWrite:
    emit(Event::rwAcquireWrite(Lock, Site));
    break;
  case EventKind::TryAcquire:
    emit(Event::tryAcquire(Lock, Site, /*Succeeded=*/true,
                           Shared ? AcquireMode::Shared
                                  : AcquireMode::Exclusive));
    break;
  default:
    emit(Event::lockAcquire(Lock, Site));
    break;
  }
  ++Stats.Sections;
  // Re-opens after a LIFO fixup use the blocking form of the original
  // mode: a successful-try section reopened as TryAcquire would read
  // as a second attempt.
  EventKind Reopen = Kind == EventKind::RwAcquireRead
                         ? EventKind::RwAcquireRead
                         : (Kind == EventKind::RwAcquireWrite
                                ? EventKind::RwAcquireWrite
                                : EventKind::LockAcquire);
  if (Kind == EventKind::TryAcquire && Shared)
    Reopen = EventKind::RwAcquireRead;
  ES.Stack.push_back(OpenSection{Lock, Site, Reopen});
}

std::vector<TraceFlusher::OpenSection>
TraceFlusher::unwindAbove(EmitState &ES, size_t From) {
  std::vector<OpenSection> Saved(ES.Stack.begin() +
                                     static_cast<ptrdiff_t>(From),
                                 ES.Stack.end());
  for (size_t I = ES.Stack.size(); I > From; --I) {
    emit(Event::lockRelease(ES.Stack[I - 1].Lock));
    ++Stats.SynthesizedReleases;
  }
  ES.Stack.resize(From);
  return Saved;
}

void TraceFlusher::reopen(EmitState &ES,
                          const std::vector<OpenSection> &Saved) {
  for (const OpenSection &S : Saved)
    emitOpen(ES, S.ReopenKind, S.Lock, S.Site);
}

void TraceFlusher::closeThread(EmitState &ES) {
  if (ES.Ended)
    return;
  if (!ES.Started)
    emit(Event::threadStart());
  ES.Started = true;
  for (size_t I = ES.Stack.size(); I > 0; --I) {
    emit(Event::lockRelease(ES.Stack[I - 1].Lock));
    ++Stats.SynthesizedReleases;
  }
  ES.Stack.clear();
  emit(Event::threadEnd());
  ES.Ended = true;
}

void TraceFlusher::translate(EmitState &ES, const RawRecord &R,
                             const AddrTable &Locks, const AddrTable &Sites) {
  ++Stats.Records;
  if (ES.Ended) {
    // A TLS destructor that ran after ours took a lock; there is no
    // legal place left in this thread's stream.
    ++Stats.UnmatchedReleases;
    return;
  }
  if (!ES.Started) {
    emit(Event::threadStart());
    ES.Started = true;
    ES.LastTs = R.T0;
  }
  if (R.Op != RecOp::ThreadEnd && R.Lock != InvalidRecId)
    ensureLock(R.Lock, Locks);

  switch (R.Op) {
  case RecOp::MutexAcquire:
  case RecOp::RwAcquireRead:
  case RecOp::RwAcquireWrite: {
    charge(ES, R.T0); // Compute up to wait start; the wait itself
                      // (T0..T1) is never charged.
    EventKind Kind = R.Op == RecOp::MutexAcquire
                         ? EventKind::LockAcquire
                         : (R.Op == RecOp::RwAcquireRead
                                ? EventKind::RwAcquireRead
                                : EventKind::RwAcquireWrite);
    emitOpen(ES, Kind, R.Lock, siteOf(R.Site, Sites));
    ES.LastTs = R.T1;
    break;
  }
  case RecOp::TryAcquire: {
    charge(ES, R.T0);
    bool Ok = (R.Flags & RecFlagTrySucceeded) != 0;
    uint32_t Site = siteOf(R.Site, Sites);
    if (Ok) {
      emitOpen(ES, EventKind::TryAcquire, R.Lock, Site,
               (R.Flags & RecFlagShared) != 0);
    } else {
      Event E = Event::tryAcquire(R.Lock, Site, false,
                                  (R.Flags & RecFlagShared)
                                      ? AcquireMode::Shared
                                      : AcquireMode::Exclusive);
      emit(E);
    }
    ES.LastTs = R.T1;
    break;
  }
  case RecOp::Release: {
    charge(ES, R.T0);
    size_t Pos = ES.Stack.size();
    while (Pos > 0 && ES.Stack[Pos - 1].Lock != R.Lock)
      --Pos;
    if (Pos == 0) {
      ++Stats.UnmatchedReleases;
      break;
    }
    // Pos-1 holds the innermost section of this lock; everything above
    // it must close first (hand-over-hand unlock order) and re-open
    // after, keeping the stream LIFO while the program is not.
    std::vector<OpenSection> Saved = unwindAbove(ES, Pos);
    emit(Event::lockRelease(R.Lock));
    ES.Stack.pop_back();
    reopen(ES, Saved);
    break;
  }
  case RecOp::CondWait: {
    uint32_t Site = siteOf(R.Site, Sites);
    size_t Pos = ES.Stack.size();
    while (Pos > 0 && ES.Stack[Pos - 1].Lock != R.Lock2)
      --Pos;
    charge(ES, R.T0);
    if (Pos == 0) {
      // The protecting mutex has no recorded open: keep the ordering
      // edge, suppress the dance.
      emit(Event::condWait(R.Lock, Site));
      ++Stats.UnmatchedReleases;
      ES.LastTs = R.T1;
      break;
    }
    std::vector<OpenSection> Saved = unwindAbove(ES, Pos);
    // Mirror RecordingCondition::wait: the edge lands inside the
    // section that decided to sleep, the section closes, the sleep is
    // waiting (not compute), and a fresh section opens at wake-up.
    emit(Event::condWait(R.Lock, Site));
    OpenSection M = ES.Stack.back();
    emit(Event::lockRelease(M.Lock));
    ES.Stack.pop_back();
    emitOpen(ES, M.ReopenKind, M.Lock, Site);
    reopen(ES, Saved);
    ES.LastTs = R.T1;
    break;
  }
  case RecOp::CondSignal:
    charge(ES, R.T0);
    emit(Event::condSignal(R.Lock));
    break;
  case RecOp::CondBroadcast:
    charge(ES, R.T0);
    emit(Event::condBroadcast(R.Lock));
    break;
  case RecOp::ThreadEnd:
    charge(ES, R.T0);
    closeThread(ES);
    break;
  }
}

void TraceFlusher::drain(ThreadState &TS, const AddrTable &Locks,
                         const AddrTable &Sites) {
  if (!ok() || Finalized)
    return;
  if (PerThread.size() <= TS.Id)
    PerThread.resize(TS.Id + 1);
  EmitState &ES = PerThread[TS.Id];
  bool Began = false;
  TS.Ring.drain([&](const RawRecord &R) {
    if (!Began) {
      Writer->beginThread(TS.Id);
      Began = true;
    }
    translate(ES, R, Locks, Sites);
  });
}

bool TraceFlusher::finalize(uint32_t NumThreads, const AddrTable &Locks,
                            const AddrTable &Sites, std::string &OutErr) {
  (void)Locks;
  (void)Sites;
  if (Finalized) {
    OutErr = Err;
    return Err.empty();
  }
  Finalized = true;
  if (!ok()) {
    OutErr = Err;
    return false;
  }
  if (PerThread.size() < NumThreads)
    PerThread.resize(NumThreads);
  for (uint32_t T = 0; T != PerThread.size(); ++T) {
    EmitState &ES = PerThread[T];
    if (ES.Ended)
      continue;
    Writer->beginThread(T);
    closeThread(ES);
  }
  Writer->setNumThreads(static_cast<uint32_t>(PerThread.size()));
  std::string WriterErr;
  bool Ok = Writer->finish(WriterErr);
  if (Ok && std::fclose(File) != 0) {
    Ok = false;
    WriterErr = "write to '" + TmpPath + "' failed on close";
  } else if (!Ok) {
    std::fclose(File);
  }
  File = nullptr;
  if (!Ok) {
    std::remove(TmpPath.c_str());
    Err = WriterErr.empty() ? "v3 writer failed" : WriterErr;
    OutErr = Err;
    return false;
  }
  if (std::rename(TmpPath.c_str(), OutPath.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    Err = "cannot rename '" + TmpPath + "' to '" + OutPath + "'";
    OutErr = Err;
    return false;
  }
  return true;
}

} // namespace record
} // namespace perfplay
