//===- record/Preload.cpp - LD_PRELOAD recording runtime ------------------===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//

#include "record/Preload.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <unistd.h>

namespace perfplay {
namespace record {

uint64_t RecordRuntime::nowNs() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(Ts.tv_nsec);
}

RecordRuntime::RecordRuntime(const RecordOptions &O)
    : Opts(O), Locks(O.LockTableCapacity), Sites(O.SiteTableCapacity) {
  pthread_key_create(&TlsKey, &RecordRuntime::tlsDestructor);
  {
    MutexLock L(FlushMu);
    Flusher = std::make_unique<TraceFlusher>(Opts.OutPath, Opts.ChunkBytes);
  }
  startFlusherThread();
}

RecordRuntime::~RecordRuntime() {
  finalize();
  pthread_key_delete(TlsKey);
}

void *RecordRuntime::flusherTrampoline(void *Self) {
  static_cast<RecordRuntime *>(Self)->flusherMain();
  return nullptr;
}

void RecordRuntime::startFlusherThread() {
  FlushThreadRunning =
      pthread_create(&FlushThread, nullptr, &RecordRuntime::flusherTrampoline,
                     this) == 0;
}

void RecordRuntime::flusherMain() {
  if (Opts.FlusherThreadInit)
    Opts.FlusherThreadInit();
  MutexLock L(FlushMu);
  while (!StopFlusher) {
    FlushCv.waitFor(FlushMu, std::chrono::milliseconds(Opts.FlushIntervalMs));
    if (StopFlusher)
      break;
    drainAllLocked();
  }
}

void RecordRuntime::drainAllLocked() {
  if (!Flusher)
    return;
  std::vector<ThreadState *> Snap;
  {
    MutexLock L(RegistryMu);
    Snap.reserve(Threads.size());
    for (const auto &T : Threads)
      Snap.push_back(T.get());
  }
  for (ThreadState *TS : Snap)
    Flusher->drain(*TS, Locks, Sites);
}

void RecordRuntime::tlsDestructor(void *P) {
  // The owning thread is exiting; there may never be another chance to
  // frame its stream, so the end marker rides the ring like any event.
  auto *TS = static_cast<ThreadState *>(P);
  RawRecord R;
  R.Op = RecOp::ThreadEnd;
  R.T0 = R.T1 = nowNs();
  TS->Attempts.fetch_add(1, std::memory_order_relaxed);
  if (!TS->Ring.push(R))
    TS->Drops.fetch_add(1, std::memory_order_relaxed);
}

ThreadState *RecordRuntime::self() {
  if (Finalized.load(std::memory_order_acquire))
    return nullptr;
  auto *TS = static_cast<ThreadState *>(pthread_getspecific(TlsKey));
  if (TS)
    return TS;
  MutexLock L(RegistryMu);
  const uint32_t Id = static_cast<uint32_t>(Threads.size());
  Threads.push_back(
      std::make_unique<ThreadState>(Id, Opts.RingCapacity));
  TS = Threads.back().get();
  pthread_setspecific(TlsKey, TS);
  return TS;
}

void RecordRuntime::push(ThreadState &TS, const RawRecord &R) {
  TS.Attempts.fetch_add(1, std::memory_order_relaxed);
  if (R.Lock == InvalidRecId || !TS.Ring.push(R))
    TS.Drops.fetch_add(1, std::memory_order_relaxed);
}

void RecordRuntime::mutexAcquired(uintptr_t M, void *Site, uint64_t T0,
                                  uint64_t T1) {
  ThreadState *TS = self();
  if (!TS)
    return;
  RawRecord R;
  R.Op = RecOp::MutexAcquire;
  R.Lock = Locks.intern(M, LockTagMutex);
  R.Site = Site ? Sites.intern(reinterpret_cast<uintptr_t>(Site), 0)
                : InvalidRecId;
  R.T0 = T0;
  R.T1 = T1;
  push(*TS, R);
}

void RecordRuntime::rwAcquired(uintptr_t L, bool Shared, void *Site,
                               uint64_t T0, uint64_t T1) {
  ThreadState *TS = self();
  if (!TS)
    return;
  RawRecord R;
  R.Op = Shared ? RecOp::RwAcquireRead : RecOp::RwAcquireWrite;
  R.Lock = Locks.intern(L, LockTagRwlock);
  R.Site = Site ? Sites.intern(reinterpret_cast<uintptr_t>(Site), 0)
                : InvalidRecId;
  R.T0 = T0;
  R.T1 = T1;
  push(*TS, R);
}

void RecordRuntime::tryAcquire(uintptr_t L, bool Shared, bool Succeeded,
                               void *Site, uint64_t T0, uint64_t T1) {
  ThreadState *TS = self();
  if (!TS)
    return;
  RawRecord R;
  R.Op = RecOp::TryAcquire;
  R.Flags = static_cast<uint8_t>((Succeeded ? RecFlagTrySucceeded : 0) |
                                 (Shared ? RecFlagShared : 0));
  R.Lock = Locks.intern(L, Shared ? LockTagRwlock : LockTagMutex);
  R.Site = Site ? Sites.intern(reinterpret_cast<uintptr_t>(Site), 0)
                : InvalidRecId;
  R.T0 = T0;
  R.T1 = T1;
  push(*TS, R);
}

void RecordRuntime::released(uintptr_t L, bool Rwlock, uint64_t Ts) {
  ThreadState *TS = self();
  if (!TS)
    return;
  RawRecord R;
  R.Op = RecOp::Release;
  R.Lock = Locks.intern(L, Rwlock ? LockTagRwlock : LockTagMutex);
  R.T0 = R.T1 = Ts;
  push(*TS, R);
}

void RecordRuntime::condWaited(uintptr_t C, uintptr_t M, void *Site,
                               uint64_t T0, uint64_t T1) {
  ThreadState *TS = self();
  if (!TS)
    return;
  RawRecord R;
  R.Op = RecOp::CondWait;
  R.Lock = Locks.intern(C, LockTagCond);
  R.Lock2 = Locks.intern(M, LockTagMutex);
  R.Site = Site ? Sites.intern(reinterpret_cast<uintptr_t>(Site), 0)
                : InvalidRecId;
  R.T0 = T0;
  R.T1 = T1;
  if (R.Lock2 == InvalidRecId)
    R.Lock = InvalidRecId; // Count the whole dance as one drop.
  push(*TS, R);
}

void RecordRuntime::condSignaled(uintptr_t C, bool Broadcast, uint64_t Ts) {
  ThreadState *TS = self();
  if (!TS)
    return;
  RawRecord R;
  R.Op = Broadcast ? RecOp::CondBroadcast : RecOp::CondSignal;
  R.Lock = Locks.intern(C, LockTagCond);
  R.T0 = R.T1 = Ts;
  push(*TS, R);
}

namespace {

void writeStatsFile(const std::string &Path, const RecordSummary &S) {
  if (Path.empty())
    return;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return;
  std::fprintf(F, "ok %d\n", S.Ok ? 1 : 0);
  std::fprintf(F, "out %s\n", S.OutPath.c_str());
  std::fprintf(F, "threads %" PRIu32 "\n", S.Threads);
  std::fprintf(F, "attempts %" PRIu64 "\n", S.Attempts);
  std::fprintf(F, "records %" PRIu64 "\n", S.Records);
  std::fprintf(F, "drops %" PRIu64 "\n", S.Drops);
  std::fprintf(F, "trace_events %" PRIu64 "\n", S.TraceEvents);
  std::fprintf(F, "sections %" PRIu64 "\n", S.Sections);
  std::fprintf(F, "synth_releases %" PRIu64 "\n", S.SynthesizedReleases);
  std::fprintf(F, "unmatched_releases %" PRIu64 "\n", S.UnmatchedReleases);
  if (!S.Ok)
    std::fprintf(F, "error %s\n", S.Error.c_str());
  std::fclose(F);
}

} // namespace

RecordSummary RecordRuntime::finalize() {
  MutexLock SL(SummaryMu);
  if (Finalized.load(std::memory_order_acquire))
    return Summary;
  // New hook calls become no-ops; threads already inside a hook can
  // still push until the final drain below.
  Finalized.store(true, std::memory_order_release);
  {
    MutexLock L(FlushMu);
    StopFlusher = true;
  }
  FlushCv.notifyAll();
  if (FlushThreadRunning) {
    pthread_join(FlushThread, nullptr);
    FlushThreadRunning = false;
  }
  RecordSummary S;
  S.OutPath = Opts.OutPath;
  {
    MutexLock L(FlushMu);
    drainAllLocked();
    {
      MutexLock RL(RegistryMu);
      S.Threads = static_cast<uint32_t>(Threads.size());
      for (const auto &T : Threads) {
        S.Attempts += T->Attempts.load(std::memory_order_relaxed);
        S.Drops += T->Drops.load(std::memory_order_relaxed);
      }
    }
    std::string Err;
    S.Ok = Flusher && Flusher->finalize(S.Threads, Locks, Sites, Err);
    S.Error = Err;
    if (Flusher) {
      const FlushStats &FS = Flusher->stats();
      S.Records = FS.Records;
      S.TraceEvents = FS.TraceEvents;
      S.Sections = FS.Sections;
      S.SynthesizedReleases = FS.SynthesizedReleases;
      S.UnmatchedReleases = FS.UnmatchedReleases;
    }
  }
  writeStatsFile(Opts.StatsPath, S);
  Summary = S;
  return Summary;
}

void RecordRuntime::prepareFork() {
  FlushMu.lock();
  RegistryMu.lock();
}

void RecordRuntime::parentAfterFork() {
  RegistryMu.unlock();
  FlushMu.unlock();
}

void RecordRuntime::childAfterFork() {
  // Both mutexes were held across fork(), so the child's copies are in
  // a consistent (locked) state; the flusher thread itself did not
  // survive, and its pending work belongs to the parent.
  FlushThreadRunning = false;
  StopFlusher = false;
  Opts.OutPath += ".fork." + std::to_string(getpid());
  Opts.StatsPath.clear(); // Only the root process reports stats.
  Flusher = std::make_unique<TraceFlusher>(Opts.OutPath, Opts.ChunkBytes);
  // Retire the parent's thread states (only this thread exists now);
  // keeping them owned means teardown stays leak-free.
  for (auto &T : Threads)
    Graveyard.push_back(std::move(T));
  Threads.clear();
  pthread_setspecific(TlsKey, nullptr);
  RegistryMu.unlock();
  FlushMu.unlock();
  startFlusherThread();
}

} // namespace record
} // namespace perfplay
