//===- record/RingBuffer.h - Lock-free recorder transport ------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-free transport layer of the LD_PRELOAD recorder: the raw
/// per-operation record, a bounded single-producer/single-consumer
/// ring (one per recorded thread, drained by the background flusher),
/// and a fixed-capacity address-interning table that maps pthread
/// object addresses / call-site return addresses to the dense ids the
/// v3 writer wants.
///
/// Everything here is wait-free on the producer fast path and must
/// stay allocation-free after construction: the producers are
/// interposed pthread calls, which may run inside malloc-hostile
/// contexts (thread teardown, early process init).  A full ring or a
/// full table never blocks — the record is counted as dropped and the
/// program proceeds at native speed.
///
/// Memory-ordering contract: a producer publishes a record with a
/// release store of Tail after all interning stores; the flusher's
/// acquire load of Tail therefore observes every table entry any
/// drained record references (transitively, also entries interned by
/// other threads that the recording thread observed via the table's
/// release/acquire id handshake).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_RECORD_RINGBUFFER_H
#define PERFPLAY_RECORD_RINGBUFFER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace perfplay {
namespace record {

/// Sentinel for "no id" across the recorder's dense 32-bit ids (the
/// trace layer's InvalidId, redeclared here so this header stays
/// freestanding for the shim).
inline constexpr uint32_t InvalidRecId = 0xFFFFFFFFu;

/// What a recorded pthread operation was.  Deliberately coarser than
/// trace/Event.h's EventKind: the flusher re-derives the Event stream
/// (Compute deltas, the cond-wait release/re-acquire dance, synthetic
/// ThreadStart/ThreadEnd framing) from these plus its per-thread
/// translation state.
enum class RecOp : uint8_t {
  /// pthread_mutex_lock returned 0.
  MutexAcquire,
  /// pthread_rwlock_rdlock returned 0 (shared section).
  RwAcquireRead,
  /// pthread_rwlock_wrlock returned 0 (exclusive section).
  RwAcquireWrite,
  /// pthread_mutex_trylock / pthread_rwlock_try{rd,wr}lock attempt;
  /// success and mode live in RawRecord::Flags.
  TryAcquire,
  /// pthread_mutex_unlock / pthread_rwlock_unlock.
  Release,
  /// pthread_cond_wait / pthread_cond_timedwait returned (the mutex is
  /// held again).  Lock is the condvar, Lock2 the protecting mutex.
  CondWait,
  /// pthread_cond_signal.
  CondSignal,
  /// pthread_cond_broadcast.
  CondBroadcast,
  /// The recorded thread is exiting (pushed by the TLS destructor).
  ThreadEnd,
};

/// RawRecord::Flags bits.
inline constexpr uint8_t RecFlagTrySucceeded = 1u << 0;
inline constexpr uint8_t RecFlagShared = 1u << 1;

/// One recorded operation, sized for a cheap struct copy into the
/// ring.  Timestamps are raw CLOCK_MONOTONIC nanoseconds; the flusher
/// turns them into the Event clock's Compute deltas (wait time — the
/// span T0..T1 of a blocking acquire — is excluded, exactly like
/// runtime/Recorder's onAcquireStart/onAcquired split).
struct RawRecord {
  RecOp Op = RecOp::Release;
  uint8_t Flags = 0;
  /// Dense lock-registry id (the condvar for CondWait/CondSignal).
  uint32_t Lock = InvalidRecId;
  /// CondWait only: the protecting mutex's lock-registry id.
  uint32_t Lock2 = InvalidRecId;
  /// Dense site-registry id, or InvalidRecId when unresolved.
  uint32_t Site = InvalidRecId;
  /// Operation start (wait begin for blocking acquires).
  uint64_t T0 = 0;
  /// Operation end (lock acquired / call returned).
  uint64_t T1 = 0;
};

/// Bounded single-producer/single-consumer ring of RawRecords.  The
/// producer is the recorded thread, the consumer the flusher; both
/// sides are lock-free (one atomic load + one store each).  Capacity
/// is fixed at construction and rounded up to a power of two.
class SpscRing {
public:
  explicit SpscRing(size_t Capacity) {
    size_t Cap = 64;
    while (Cap < Capacity)
      Cap <<= 1;
    Slots.resize(Cap);
    Mask = Cap - 1;
  }

  /// Producer side.  Returns false (record dropped) when full.
  bool push(const RawRecord &R) {
    size_t T = Tail.load(std::memory_order_relaxed);
    if (T - Head.load(std::memory_order_acquire) == Slots.size())
      return false;
    Slots[T & Mask] = R;
    Tail.store(T + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: hands every pending record to \p Consume in push
  /// order and returns how many were drained.
  template <typename Fn> size_t drain(Fn &&Consume) {
    size_t H = Head.load(std::memory_order_relaxed);
    const size_t T = Tail.load(std::memory_order_acquire);
    size_t N = 0;
    for (; H != T; ++H, ++N)
      Consume(Slots[H & Mask]);
    Head.store(H, std::memory_order_release);
    return N;
  }

  size_t capacity() const { return Slots.size(); }

private:
  std::vector<RawRecord> Slots;
  size_t Mask = 0;
  alignas(64) std::atomic<size_t> Head{0};
  alignas(64) std::atomic<size_t> Tail{0};
};

/// Lock-free, fixed-capacity open-addressing map from an address (a
/// pthread object or a return address — never 0) to a dense id in
/// interning order, with a small metadata tag per entry.  Writers are
/// the recording threads; the single reader is the flusher, which
/// walks entries by id to register them with the v3 writer.
///
/// Publication protocol: the winner of the slot CAS takes the next id,
/// stores the tag, release-stores the address into the id-indexed
/// metadata array (its "ready" flag — addresses are never 0), and
/// finally release-stores the id into the slot for other producers.
/// The flusher spin-waits on the metadata address of any id it needs,
/// which is at most a few stores behind the count.
class AddrTable {
public:
  explicit AddrTable(size_t Capacity) {
    size_t Cap = 64;
    while (Cap < Capacity)
      Cap <<= 1;
    Slots = std::vector<Slot>(Cap);
    Meta = std::vector<Entry>(Cap);
    Mask = Cap - 1;
  }

  /// Interns \p Addr, returning its dense id, or InvalidRecId when the
  /// table is full (the caller drops the event).  \p Tag is stored on
  /// first interning and ignored afterwards.
  uint32_t intern(uintptr_t Addr, uint8_t Tag) {
    size_t H = hashAddr(Addr) & Mask;
    for (size_t Probe = 0; Probe <= Mask; ++Probe, H = (H + 1) & Mask) {
      Slot &S = Slots[H];
      uintptr_t Cur = S.Key.load(std::memory_order_acquire);
      if (Cur == 0) {
        uintptr_t Expected = 0;
        if (S.Key.compare_exchange_strong(Expected, Addr,
                                          std::memory_order_acq_rel)) {
          const uint32_t Id = Count.fetch_add(1, std::memory_order_relaxed);
          // Claimed slots never exceed the slot count, and Meta is
          // sized to match, so Id is always in range.
          Meta[Id].Tag.store(Tag, std::memory_order_relaxed);
          Meta[Id].Addr.store(Addr, std::memory_order_release);
          S.Id.store(Id, std::memory_order_release);
          return Id;
        }
        Cur = Expected;
      }
      if (Cur == Addr) {
        // Another producer owns the slot; its id store is at most a
        // few instructions behind the CAS.
        uint32_t Id;
        while ((Id = S.Id.load(std::memory_order_acquire)) == InvalidRecId) {
        }
        return Id;
      }
    }
    return InvalidRecId; // Table full.
  }

  /// Ids assigned so far.  An id observed through a drained record is
  /// always ready; intermediate ids may still be publishing — use
  /// entry() which waits for readiness.
  uint32_t count() const { return Count.load(std::memory_order_acquire); }

  /// Flusher side: address + tag of \p Id, spin-waiting the (tiny)
  /// window between the id assignment and the metadata publication.
  void entry(uint32_t Id, uintptr_t &Addr, uint8_t &Tag) const {
    uintptr_t A;
    while ((A = Meta[Id].Addr.load(std::memory_order_acquire)) == 0) {
    }
    Addr = A;
    Tag = Meta[Id].Tag.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return Slots.size(); }

private:
  struct Slot {
    std::atomic<uintptr_t> Key{0};
    std::atomic<uint32_t> Id{InvalidRecId};
  };
  struct Entry {
    std::atomic<uintptr_t> Addr{0};
    std::atomic<uint8_t> Tag{0};
  };

  static size_t hashAddr(uintptr_t A) {
    // Fibonacci scrambling; pthread objects are pointer-aligned so the
    // low bits carry no entropy.
    uint64_t X = static_cast<uint64_t>(A) >> 4;
    X *= 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(X >> 32);
  }

  std::vector<Slot> Slots;
  std::vector<Entry> Meta;
  size_t Mask = 0;
  std::atomic<uint32_t> Count{0};
};

/// Lock-registry tags (AddrTable Tag byte): which pthread object kind
/// an address is, driving the synthesized lock names.
inline constexpr uint8_t LockTagMutex = 0;
inline constexpr uint8_t LockTagRwlock = 1;
inline constexpr uint8_t LockTagCond = 2;

/// Per-recorded-thread state: the ring plus the drop accounting the
/// acceptance gates read back.  Owned by RecordRuntime; the ring is
/// written only by the owning thread and drained only by the flusher.
struct ThreadState {
  ThreadState(uint32_t Id, size_t RingCapacity) : Id(Id), Ring(RingCapacity) {}

  /// Dense trace thread id (registration order).
  const uint32_t Id;
  SpscRing Ring;
  /// Hook invocations that tried to push a record.
  std::atomic<uint64_t> Attempts{0};
  /// Pushes refused (ring full or registry full).  Attempts ==
  /// records drained + Drops, exactly — the property test's invariant.
  std::atomic<uint64_t> Drops{0};
};

} // namespace record
} // namespace perfplay

#endif // PERFPLAY_RECORD_RINGBUFFER_H
