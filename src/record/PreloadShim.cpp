//===- record/PreloadShim.cpp - pthread interposition shim ----------------===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
//
// The LD_PRELOAD half of the recorder: extern "C" definitions of the
// pthread locking API that wrap the real libc implementations
// (resolved with dlsym(RTLD_NEXT); condvar entry points with dlvsym at
// GLIBC_2.3.2, since the unversioned lookup can land on the
// incompatible pre-NPTL symbols) and report each completed operation
// to a process-global RecordRuntime.
//
// Reentrancy is the whole game here.  The runtime's own locking
// (std::mutex, std::condition_variable in libstdc++) funnels back
// through these very interposers, so every path that may touch the
// runtime first sets the thread-local InShim flag; interposed calls
// made while it is set go straight to the real function and are never
// recorded.  The flusher thread sets it permanently at birth.
//
// This file is deliberately not part of perfplay_core: it defines
// global pthread symbols and must only ever exist inside
// libperfplay_preload.so.
//
//===----------------------------------------------------------------------===//

#include "record/Preload.h"

#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dlfcn.h>
#include <pthread.h>
#include <unistd.h>

using perfplay::record::RecordOptions;
using perfplay::record::RecordRuntime;

namespace {

// -- Real-function table --------------------------------------------------

struct RealFns {
  int (*MutexLock)(pthread_mutex_t *);
  int (*MutexTrylock)(pthread_mutex_t *);
  int (*MutexUnlock)(pthread_mutex_t *);
  int (*RwRdlock)(pthread_rwlock_t *);
  int (*RwWrlock)(pthread_rwlock_t *);
  int (*RwTryRdlock)(pthread_rwlock_t *);
  int (*RwTryWrlock)(pthread_rwlock_t *);
  int (*RwTimedRdlock)(pthread_rwlock_t *, const struct timespec *);
  int (*RwTimedWrlock)(pthread_rwlock_t *, const struct timespec *);
  int (*RwUnlock)(pthread_rwlock_t *);
  int (*CondWait)(pthread_cond_t *, pthread_mutex_t *);
  int (*CondTimedwait)(pthread_cond_t *, pthread_mutex_t *,
                       const struct timespec *);
  int (*CondSignal)(pthread_cond_t *);
  int (*CondBroadcast)(pthread_cond_t *);
};

RealFns Real;
pthread_once_t RealOnce = PTHREAD_ONCE_INIT;

void *condSym(const char *Name) {
  // Modern condvars live at GLIBC_2.3.2; the unversioned RTLD_NEXT
  // lookup is the fallback for non-glibc libcs (e.g. musl).
  void *P = dlvsym(RTLD_NEXT, Name, "GLIBC_2.3.2");
  return P ? P : dlsym(RTLD_NEXT, Name);
}

void resolveReal() {
  Real.MutexLock = reinterpret_cast<int (*)(pthread_mutex_t *)>(
      dlsym(RTLD_NEXT, "pthread_mutex_lock"));
  Real.MutexTrylock = reinterpret_cast<int (*)(pthread_mutex_t *)>(
      dlsym(RTLD_NEXT, "pthread_mutex_trylock"));
  Real.MutexUnlock = reinterpret_cast<int (*)(pthread_mutex_t *)>(
      dlsym(RTLD_NEXT, "pthread_mutex_unlock"));
  Real.RwRdlock = reinterpret_cast<int (*)(pthread_rwlock_t *)>(
      dlsym(RTLD_NEXT, "pthread_rwlock_rdlock"));
  Real.RwWrlock = reinterpret_cast<int (*)(pthread_rwlock_t *)>(
      dlsym(RTLD_NEXT, "pthread_rwlock_wrlock"));
  Real.RwTryRdlock = reinterpret_cast<int (*)(pthread_rwlock_t *)>(
      dlsym(RTLD_NEXT, "pthread_rwlock_tryrdlock"));
  Real.RwTryWrlock = reinterpret_cast<int (*)(pthread_rwlock_t *)>(
      dlsym(RTLD_NEXT, "pthread_rwlock_trywrlock"));
  Real.RwTimedRdlock =
      reinterpret_cast<int (*)(pthread_rwlock_t *, const struct timespec *)>(
          dlsym(RTLD_NEXT, "pthread_rwlock_timedrdlock"));
  Real.RwTimedWrlock =
      reinterpret_cast<int (*)(pthread_rwlock_t *, const struct timespec *)>(
          dlsym(RTLD_NEXT, "pthread_rwlock_timedwrlock"));
  Real.RwUnlock = reinterpret_cast<int (*)(pthread_rwlock_t *)>(
      dlsym(RTLD_NEXT, "pthread_rwlock_unlock"));
  Real.CondWait = reinterpret_cast<int (*)(pthread_cond_t *, pthread_mutex_t *)>(
      condSym("pthread_cond_wait"));
  Real.CondTimedwait = reinterpret_cast<int (*)(
      pthread_cond_t *, pthread_mutex_t *, const struct timespec *)>(
      condSym("pthread_cond_timedwait"));
  Real.CondSignal = reinterpret_cast<int (*)(pthread_cond_t *)>(
      condSym("pthread_cond_signal"));
  Real.CondBroadcast = reinterpret_cast<int (*)(pthread_cond_t *)>(
      condSym("pthread_cond_broadcast"));
}

const RealFns &real() {
  pthread_once(&RealOnce, &resolveReal);
  return Real;
}

// -- Runtime singleton ----------------------------------------------------

/// Reentrancy guard: while set, interposers pass straight through.
/// initial-exec keeps the TLS access free of __tls_get_addr, which can
/// malloc (and thus lock) on first touch.
__thread bool InShim __attribute__((tls_model("initial-exec"))) = false;

RecordRuntime *GRuntime = nullptr;
pthread_once_t RuntimeOnce = PTHREAD_ONCE_INIT;

// The prepare/parent/child trio deliberately holds the runtime's
// mutexes across fork(); static analysis cannot see the pairing across
// the three callbacks.
void atforkPrepare() NO_THREAD_SAFETY_ANALYSIS {
  const bool Saved = InShim;
  InShim = true;
  if (GRuntime)
    GRuntime->prepareFork();
  InShim = Saved;
}

void atforkParent() NO_THREAD_SAFETY_ANALYSIS {
  const bool Saved = InShim;
  InShim = true;
  if (GRuntime)
    GRuntime->parentAfterFork();
  InShim = Saved;
}

void atforkChild() NO_THREAD_SAFETY_ANALYSIS {
  const bool Saved = InShim;
  InShim = true;
  if (GRuntime)
    GRuntime->childAfterFork();
  InShim = Saved;
}

size_t envSize(const char *Name, size_t Default) {
  const char *V = getenv(Name);
  if (!V || !*V)
    return Default;
  char *End = nullptr;
  unsigned long long N = strtoull(V, &End, 10);
  return (End && *End == '\0' && N > 0) ? static_cast<size_t>(N) : Default;
}

/// Builds the runtime from PERFPLAY_* env vars.  Callers must hold
/// InShim; runs via pthread_once so nested interposed calls made while
/// the runtime constructs (pthread_create, fopen, ...) pass through
/// instead of re-entering the once.
void initRuntime() {
  const char *Out = getenv("PERFPLAY_TRACE_OUT");
  if (!Out || !*Out)
    return; // Preloaded but not asked to record: pure pass-through.

  RecordOptions Opts;
  Opts.OutPath = Out;

  // `perfplay record` stamps the root pid so exec'd descendants that
  // inherit the environment divert to their own file instead of
  // clobbering (or racing) the root recording.
  char PidBuf[32];
  snprintf(PidBuf, sizeof(PidBuf), "%ld", static_cast<long>(getpid()));
  const char *RootPid = getenv("PERFPLAY_RECORD_PID");
  if (!RootPid || !*RootPid) {
    setenv("PERFPLAY_RECORD_PID", PidBuf, 1);
  } else if (strcmp(RootPid, PidBuf) != 0) {
    Opts.OutPath += ".";
    Opts.OutPath += PidBuf;
  }

  if (const char *Stats = getenv("PERFPLAY_RECORD_STATS")) {
    // Only the root recorder reports stats; a diverted descendant
    // writing the same sidecar would corrupt the wrapper's readback.
    if (*Stats && (!RootPid || !*RootPid || strcmp(RootPid, PidBuf) == 0))
      Opts.StatsPath = Stats;
  }

  Opts.RingCapacity = envSize("PERFPLAY_RING_CAPACITY", Opts.RingCapacity);
  Opts.FlusherThreadInit = [] { InShim = true; };

  GRuntime = new RecordRuntime(Opts);
  pthread_atfork(&atforkPrepare, &atforkParent, &atforkChild);
}

/// The process runtime, or null when recording is disabled.  Callers
/// must already hold InShim.
RecordRuntime *runtime() {
  pthread_once(&RuntimeOnce, &initRuntime);
  return GRuntime;
}

/// RAII for the pass-through guard on the hook path.
struct ShimScope {
  ShimScope() { InShim = true; }
  ~ShimScope() { InShim = false; }
};

__attribute__((constructor)) void shimInit() {
  // Resolve and start recording before main so the program's first
  // lock operation is already covered.
  real();
  const bool Saved = InShim;
  InShim = true;
  runtime();
  InShim = Saved;
}

__attribute__((destructor)) void shimFini() {
  // Process teardown: finalize the trace and free the runtime so the
  // recorded program stays LeakSanitizer-clean.  InShim stays set —
  // nothing after this point should be recorded.
  InShim = true;
  if (GRuntime) {
    RecordRuntime *RT = GRuntime;
    GRuntime = nullptr;
    RT->finalize();
    delete RT;
  }
}

} // namespace

// -- Interposers ----------------------------------------------------------

extern "C" {

int pthread_mutex_lock(pthread_mutex_t *M) {
  int (*Fn)(pthread_mutex_t *) = real().MutexLock;
  if (InShim)
    return Fn(M);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(M);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(M);
  if (Rc == 0)
    RT->mutexAcquired(reinterpret_cast<uintptr_t>(M),
                      __builtin_return_address(0), T0, RecordRuntime::nowNs());
  return Rc;
}

int pthread_mutex_trylock(pthread_mutex_t *M) {
  int (*Fn)(pthread_mutex_t *) = real().MutexTrylock;
  if (InShim)
    return Fn(M);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(M);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(M);
  RT->tryAcquire(reinterpret_cast<uintptr_t>(M), /*Shared=*/false,
                 /*Succeeded=*/Rc == 0, __builtin_return_address(0), T0,
                 RecordRuntime::nowNs());
  return Rc;
}

int pthread_mutex_unlock(pthread_mutex_t *M) {
  int (*Fn)(pthread_mutex_t *) = real().MutexUnlock;
  if (InShim)
    return Fn(M);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(M);
  const int Rc = Fn(M);
  if (Rc == 0)
    RT->released(reinterpret_cast<uintptr_t>(M), /*Rwlock=*/false,
                 RecordRuntime::nowNs());
  return Rc;
}

int pthread_rwlock_rdlock(pthread_rwlock_t *L) {
  int (*Fn)(pthread_rwlock_t *) = real().RwRdlock;
  if (InShim)
    return Fn(L);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(L);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(L);
  if (Rc == 0)
    RT->rwAcquired(reinterpret_cast<uintptr_t>(L), /*Shared=*/true,
                   __builtin_return_address(0), T0, RecordRuntime::nowNs());
  return Rc;
}

int pthread_rwlock_wrlock(pthread_rwlock_t *L) {
  int (*Fn)(pthread_rwlock_t *) = real().RwWrlock;
  if (InShim)
    return Fn(L);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(L);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(L);
  if (Rc == 0)
    RT->rwAcquired(reinterpret_cast<uintptr_t>(L), /*Shared=*/false,
                   __builtin_return_address(0), T0, RecordRuntime::nowNs());
  return Rc;
}

int pthread_rwlock_tryrdlock(pthread_rwlock_t *L) {
  int (*Fn)(pthread_rwlock_t *) = real().RwTryRdlock;
  if (InShim)
    return Fn(L);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(L);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(L);
  RT->tryAcquire(reinterpret_cast<uintptr_t>(L), /*Shared=*/true,
                 /*Succeeded=*/Rc == 0, __builtin_return_address(0), T0,
                 RecordRuntime::nowNs());
  return Rc;
}

int pthread_rwlock_trywrlock(pthread_rwlock_t *L) {
  int (*Fn)(pthread_rwlock_t *) = real().RwTryWrlock;
  if (InShim)
    return Fn(L);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(L);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(L);
  RT->tryAcquire(reinterpret_cast<uintptr_t>(L), /*Shared=*/false,
                 /*Succeeded=*/Rc == 0, __builtin_return_address(0), T0,
                 RecordRuntime::nowNs());
  return Rc;
}

int pthread_rwlock_timedrdlock(pthread_rwlock_t *L,
                               const struct timespec *Abs) {
  int (*Fn)(pthread_rwlock_t *, const struct timespec *) =
      real().RwTimedRdlock;
  if (InShim)
    return Fn(L, Abs);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(L, Abs);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(L, Abs);
  if (Rc == 0)
    RT->rwAcquired(reinterpret_cast<uintptr_t>(L), /*Shared=*/true,
                   __builtin_return_address(0), T0, RecordRuntime::nowNs());
  return Rc;
}

int pthread_rwlock_timedwrlock(pthread_rwlock_t *L,
                               const struct timespec *Abs) {
  int (*Fn)(pthread_rwlock_t *, const struct timespec *) =
      real().RwTimedWrlock;
  if (InShim)
    return Fn(L, Abs);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(L, Abs);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(L, Abs);
  if (Rc == 0)
    RT->rwAcquired(reinterpret_cast<uintptr_t>(L), /*Shared=*/false,
                   __builtin_return_address(0), T0, RecordRuntime::nowNs());
  return Rc;
}

int pthread_rwlock_unlock(pthread_rwlock_t *L) {
  int (*Fn)(pthread_rwlock_t *) = real().RwUnlock;
  if (InShim)
    return Fn(L);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(L);
  const int Rc = Fn(L);
  if (Rc == 0)
    RT->released(reinterpret_cast<uintptr_t>(L), /*Rwlock=*/true,
                 RecordRuntime::nowNs());
  return Rc;
}

int pthread_cond_wait(pthread_cond_t *C, pthread_mutex_t *M) {
  int (*Fn)(pthread_cond_t *, pthread_mutex_t *) = real().CondWait;
  if (InShim)
    return Fn(C, M);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(C, M);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(C, M);
  if (Rc == 0)
    RT->condWaited(reinterpret_cast<uintptr_t>(C),
                   reinterpret_cast<uintptr_t>(M), __builtin_return_address(0),
                   T0, RecordRuntime::nowNs());
  return Rc;
}

int pthread_cond_timedwait(pthread_cond_t *C, pthread_mutex_t *M,
                           const struct timespec *Abs) {
  int (*Fn)(pthread_cond_t *, pthread_mutex_t *, const struct timespec *) =
      real().CondTimedwait;
  if (InShim)
    return Fn(C, M, Abs);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(C, M, Abs);
  const uint64_t T0 = RecordRuntime::nowNs();
  const int Rc = Fn(C, M, Abs);
  // ETIMEDOUT still re-acquired the mutex: the wait dance happened.
  if (Rc == 0 || Rc == ETIMEDOUT)
    RT->condWaited(reinterpret_cast<uintptr_t>(C),
                   reinterpret_cast<uintptr_t>(M), __builtin_return_address(0),
                   T0, RecordRuntime::nowNs());
  return Rc;
}

int pthread_cond_signal(pthread_cond_t *C) {
  int (*Fn)(pthread_cond_t *) = real().CondSignal;
  if (InShim)
    return Fn(C);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(C);
  const int Rc = Fn(C);
  if (Rc == 0)
    RT->condSignaled(reinterpret_cast<uintptr_t>(C), /*Broadcast=*/false,
                     RecordRuntime::nowNs());
  return Rc;
}

int pthread_cond_broadcast(pthread_cond_t *C) {
  int (*Fn)(pthread_cond_t *) = real().CondBroadcast;
  if (InShim)
    return Fn(C);
  ShimScope Guard;
  RecordRuntime *RT = runtime();
  if (!RT)
    return Fn(C);
  const int Rc = Fn(C);
  if (Rc == 0)
    RT->condSignaled(reinterpret_cast<uintptr_t>(C), /*Broadcast=*/true,
                     RecordRuntime::nowNs());
  return Rc;
}

} // extern "C"
