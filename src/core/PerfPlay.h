//===- core/PerfPlay.h - The PERFPLAY pipeline -------------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end PERFPLAY pipeline of Figure 5:
///
///   1. record   — a trace arrives from the live recorder
///                 (runtime/Recorder.h) or a workload generator; if it
///                 lacks a grant schedule, one ORIG-S "recording" run
///                 installs it,
///   2. detect   — identify every ULCP (Algorithm 1 + reversed replay),
///   3. transform— RULE 1-4 produce the ULCP-free trace,
///   4. replay   — both traces replay under ELSC for faithful timing,
///   5. report   — Equation 1 per pair, Algorithm 2 fusion per code
///                 region, Equation 2 ranking.
///
/// This is the library's primary entry point; see examples/quickstart.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_CORE_PERFPLAY_H
#define PERFPLAY_CORE_PERFPLAY_H

#include "debug/Report.h"
#include "detect/Detector.h"
#include "sim/Replayer.h"
#include "trace/Trace.h"
#include "transform/RaceCheck.h"
#include "transform/Transform.h"

#include <string>
#include <vector>

namespace perfplay {

/// Pipeline configuration.
struct PipelineOptions {
  /// Detection options.  The default pairs only sections adjacent in
  /// the per-lock grant order (the contentions that actually serialized
  /// the run); counting studies switch to AllCrossThread.
  DetectOptions Detect = [] {
    DetectOptions D;
    D.PairMode = PairModeKind::AdjacentCrossThread;
    return D;
  }();
  /// Replay options for both timing replays.  ELSC is the default: the
  /// paper shows it is the only scheme that is simultaneously stable
  /// and faithful (Section 6.2).
  ReplayOptions Replay;
  /// Seed for the ORIG-S recording run when the input trace lacks a
  /// grant schedule.
  uint64_t RecordSeed = 42;
  /// Run the Theorem-1 race check over the transformed trace.
  bool CheckRaces = false;
};

/// Everything the pipeline produced.
struct PipelineResult {
  /// Empty on success.
  std::string Error;

  DetectResult Detection;
  TransformResult Transformation;
  ReplayResult Original;
  ReplayResult UlcpFree;
  PerfDebugReport Report;
  std::vector<RaceReport> Races;

  bool ok() const { return Error.empty(); }
};

/// Runs the full pipeline over \p Tr (copied; the recording step may
/// install a grant schedule into the copy).
PipelineResult runPerfPlay(Trace Tr,
                           const PipelineOptions &Opts = PipelineOptions());

} // namespace perfplay

#endif // PERFPLAY_CORE_PERFPLAY_H
