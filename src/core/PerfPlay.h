//===- core/PerfPlay.h - The PERFPLAY pipeline -------------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end PERFPLAY pipeline of Figure 5:
///
///   1. record   — a trace arrives from the live recorder
///                 (runtime/Recorder.h) or a workload generator; if it
///                 lacks a grant schedule, one ORIG-S "recording" run
///                 installs it,
///   2. detect   — identify every ULCP (Algorithm 1 + reversed replay),
///   3. transform— RULE 1-4 produce the ULCP-free trace,
///   4. replay   — both traces replay under ELSC for faithful timing,
///   5. report   — Equation 1 per pair, Algorithm 2 fusion per code
///                 region, Equation 2 ranking.
///
/// runPerfPlay() runs all five stages in one shot.  It is a thin
/// wrapper over the staged API — core/AnalysisSession.h exposes each
/// stage as a lazily-computed, cached step with typed errors, and
/// core/Engine.h adds multi-trace batch analysis; prefer those for new
/// code.  See examples/quickstart.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_CORE_PERFPLAY_H
#define PERFPLAY_CORE_PERFPLAY_H

#include "core/AnalysisSession.h"

namespace perfplay {

/// Runs the full pipeline over \p Tr (copied; the recording step may
/// install a grant schedule into the copy).  Equivalent to opening an
/// AnalysisSession on \p Tr and calling run().
PipelineResult runPerfPlay(Trace Tr,
                           const PipelineOptions &Opts = PipelineOptions());

} // namespace perfplay

#endif // PERFPLAY_CORE_PERFPLAY_H
