//===- core/AnalysisSession.h - Staged pipeline over one trace ---*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged PERFPLAY API.  An AnalysisSession owns one trace and
/// exposes each stage of the Figure 5 pipeline as an explicit,
/// lazily-computed, memoized step:
///
///   ensureRecorded() — validate, index, and install a grant schedule
///                      (one ORIG-S recording run) if the trace lacks
///                      one,
///   detect()         — Algorithm 1 + reversed replay ULCP detection,
///   transform()      — the RULE 1-4 ULCP-free transformation,
///   replay(K, Seed)  — a timing replay of the recorded trace under
///                      scheme K; results are cached per {K, Seed},
///   replayTransformed(K, Seed)
///                    — ditto for the ULCP-free trace,
///   report()         — Equation 1 / Algorithm 2 / Equation 2 ranking,
///   races()          — the Theorem-1 race check.
///
/// Expensive intermediates (the critical-section index, solo arrival
/// times, the recording run, per-{scheme, seed} ReplayResults) are
/// computed once and reused across stages, so e.g. sweeping all four
/// replay schemes over one trace records and detects only once.
/// Every stage returns Expected<T> (support/Expected.h): a reference
/// to the session-owned cached value, or a typed PipelineError.
///
/// The legacy single-shot entry point runPerfPlay() (core/PerfPlay.h)
/// is a thin wrapper over run() and produces identical results.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_CORE_ANALYSISSESSION_H
#define PERFPLAY_CORE_ANALYSISSESSION_H

#include "debug/Report.h"
#include "detect/CriticalSection.h"
#include "detect/Detector.h"
#include "sim/Replayer.h"
#include "support/Expected.h"
#include "trace/Trace.h"
#include "transform/RaceCheck.h"
#include "transform/Transform.h"

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace perfplay {

class MappedFile;

/// Pipeline configuration.
struct PipelineOptions {
  /// Detection options.  The default pairs only sections adjacent in
  /// the per-lock grant order (the contentions that actually serialized
  /// the run); counting studies switch to AllCrossThread.
  DetectOptions Detect = [] {
    DetectOptions D;
    D.PairMode = PairModeKind::AdjacentCrossThread;
    return D;
  }();
  /// Replay options for both timing replays.  ELSC is the default: the
  /// paper shows it is the only scheme that is simultaneously stable
  /// and faithful (Section 6.2).
  ReplayOptions Replay;
  /// Seed for the ORIG-S recording run when the input trace lacks a
  /// grant schedule.
  uint64_t RecordSeed = 42;
  /// Run the Theorem-1 race check over the transformed trace.
  bool CheckRaces = false;
  /// Window size, in events, for out-of-core windowed detection
  /// (Engine::detectWindowed): each decoded v3 chunk is handed to the
  /// WindowedDetector in slices of at most this many events, bounding
  /// the in-flight span independently of the chunk size.  0 = one
  /// whole chunk per window.  Verdicts are identical for every value
  /// (gated by tests/WindowedDetectTest); whole-trace stages ignore
  /// this knob.
  uint64_t WindowEvents = 0;
};

/// Everything the pipeline produced.  Part of the frozen back-compat
/// surface (see README "API stability"): fields may be appended, never
/// changed or removed.
struct PipelineResult {
  /// Empty on success; otherwise the first failing stage's diagnostic
  /// (the staged API returns the same failure as a typed
  /// PipelineError).
  std::string Error;

  /// Stage 2 output: classified ULCP pairs / per-category counts.
  DetectResult Detection;
  /// Stage 3 output: the ULCP-free transformed trace and its topology.
  /// Self-contained — the transformed trace owns all of its storage,
  /// including pooled names, and never references the session's trace
  /// or a backing file mapping.
  TransformResult Transformation;
  /// Stage 4 output: the timing replay of the recorded trace.
  ReplayResult Original;
  /// Stage 4 output: the timing replay of the transformed trace.
  ReplayResult UlcpFree;
  /// Stage 5 output: Equation 1 / Algorithm 2 / Equation 2 ranking.
  PerfDebugReport Report;
  /// Theorem-1 race check findings (empty unless
  /// PipelineOptions::CheckRaces).
  std::vector<RaceReport> Races;

  /// True when every requested stage completed.
  bool ok() const { return Error.empty(); }
};

/// The five pipeline stages of Figure 5 plus the optional Theorem-1
/// race check, for progress reporting.
enum class StageKind : uint8_t {
  Record,
  Detect,
  Transform,
  Replay,
  Report,
  RaceCheck,
};

/// Returns the Figure 5 name of \p Stage ("record", "detect", ...).
const char *stageKindName(StageKind Stage);

/// One progress notification: a stage finished (or was served from the
/// session's cache).
struct StageEvent {
  StageKind Stage = StageKind::Record;
  /// Position of the session's trace in an Engine::analyzeBatch()
  /// call; 0 for standalone sessions.
  size_t TraceIndex = 0;
  /// True when the stage's result was already memoized and no work ran.
  bool FromCache = false;
};

/// Per-stage progress callback.  Engine::analyzeBatch() serializes
/// invocations across its worker threads, so callbacks need no
/// internal locking.
using ProgressCallback = std::function<void(const StageEvent &)>;

/// A staged analysis of one trace.  Construct it (or ask an Engine for
/// one), then call any stage in any order: prerequisites run on
/// demand, every result is cached, and repeated calls — including
/// repeated replay(K, Seed) requests — return references to the same
/// session-owned object.
///
/// Sessions are movable but not copyable; references returned by stage
/// accessors are invalidated by moving the session.
///
/// Threading model: a session is externally synchronized — it takes no
/// locks of its own, and all of its cached intermediates (including
/// the replay LRU cache) are confined to whichever thread is currently
/// driving it.  One thread per session at a time; handing a session to
/// another thread is safe exactly when the handoff itself synchronizes
/// (thread join, mutex, task queue).  Engine::analyzeBatch* follows
/// this rule: each worker owns its session outright and only the
/// finished results cross threads, under the batch mutex.  Detection
/// inside a session may spin up its own ThreadPool; that parallelism
/// is internal to the detect() call and invisible to the caller.
class AnalysisSession {
public:
  explicit AnalysisSession(Trace Tr, PipelineOptions Opts = PipelineOptions(),
                           ProgressCallback Progress = nullptr);

  AnalysisSession(AnalysisSession &&) = default;
  AnalysisSession &operator=(AnalysisSession &&) = default;
  AnalysisSession(const AnalysisSession &) = delete;
  AnalysisSession &operator=(const AnalysisSession &) = delete;

  /// The session's trace.  After a successful ensureRecorded() this
  /// carries the installed grant schedule.
  const Trace &trace() const { return Tr; }

  const PipelineOptions &options() const { return Opts; }

  /// Tags this session's progress events with \p Index (the trace's
  /// position in a batch).
  void setTraceIndex(size_t Index) { TraceIndex = Index; }

  /// Pins \p Mapping (the file view the session's trace was parsed out
  /// of) for the session's lifetime.  Installed by
  /// Engine::openSessionFromFile on the zero-copy load path.  The pin
  /// is load-bearing: binary traces parsed off a real mmap intern
  /// their lock/site names as `string_view`s pointing straight into
  /// the mapping (NameStorage::Borrowed, trace/TraceIO.h), so the
  /// mapping must outlive the Trace.  A clean read-only mapping costs
  /// address space only; the kernel reclaims its pages freely.
  /// Traces that leave the session (e.g. the transformed copy inside a
  /// consumed PipelineResult) re-own their names on copy and carry no
  /// dependency on the mapping.
  void setBackingMapping(std::shared_ptr<const MappedFile> Mapping) {
    Backing = std::move(Mapping);
  }

  /// The pinned file mapping, if any (see setBackingMapping).
  const MappedFile *backingMapping() const { return Backing.get(); }

  /// Stage 1 (record): validates the trace, builds the global
  /// critical-section numbering, and — when the trace has critical
  /// sections but no grant schedule — runs one ORIG-S recording replay
  /// to install Trace::LockSchedule.  Idempotent; the outcome
  /// (including failure) is memoized.
  Expected<void> ensureRecorded();

  /// The ORIG-S recording run's result, when ensureRecorded() had to
  /// perform one; nullptr when the input trace already carried a
  /// schedule (or had no critical sections).
  const ReplayResult *recordingRun() const {
    return RecordingRun ? &*RecordingRun : nullptr;
  }

  /// The per-lock grant schedule the replays enforce (installed by
  /// ensureRecorded() when absent).
  Expected<const std::vector<std::vector<CsRef>> &> grantSchedule();

  /// The memoized critical-section index shared by every stage.
  Expected<const CsIndex &> csIndex();

  /// Per-critical-section no-contention arrival times (the SYNC-S
  /// ordering key), memoized.
  Expected<const std::vector<TimeNs> &> soloArrivals();

  /// Stage 2 (detect): classify every same-lock cross-thread pair.
  Expected<const DetectResult &> detect();

  /// Stage 3 (transform): the RULE 1-4 ULCP-free transformation.
  Expected<const TransformResult &> transform();

  /// Stage 4 (replay): a timing replay of the recorded trace under
  /// \p Kind.  \p Seed defaults to the session's ReplayOptions seed;
  /// results are memoized per {Kind, Seed} and repeated requests
  /// return the same object.  The cache holds at most
  /// ReplayOptions::ReplayCacheCapacity results (LRU eviction), so long
  /// seed sweeps run in bounded memory; a returned reference stays
  /// valid until its entry is evicted.
  Expected<const ReplayResult &> replay(ScheduleKind Kind,
                                        std::optional<uint64_t> Seed = {});

  /// Stage 4 for the ULCP-free trace (runs transform() on demand).
  Expected<const ReplayResult &>
  replayTransformed(ScheduleKind Kind, std::optional<uint64_t> Seed = {});

  /// Stage 5 (report): Equation 1 per pair, Algorithm 2 fusion,
  /// Equation 2 ranking, using the session's configured replay scheme
  /// and seed for both timing replays.
  Expected<const PerfDebugReport &> report();

  /// Theorem-1 race check over the transformed trace.
  Expected<const std::vector<RaceReport> &> races();

  /// Runs every stage (plus races() when options().CheckRaces) and
  /// assembles the legacy PipelineResult, reusing anything already
  /// cached.  On failure the result carries the legacy Error string
  /// and whatever stages completed; when \p ErrOut is non-null it
  /// receives the typed error.  With streaming detection
  /// (DetectOptions::Sink/CountsOnly) the report stage — which needs
  /// the discarded pair list — is skipped and Result.Report stays
  /// default-constructed; all other stages run normally.
  PipelineResult run(PipelineError *ErrOut = nullptr);

  /// Consuming run(): moves the cached intermediates into the result
  /// instead of copying them, emptying the stage caches.  For
  /// sessions about to be discarded (runPerfPlay uses this); prefer
  /// run() when the session lives on.
  PipelineResult takeRun(PipelineError *ErrOut = nullptr);

  /// Typed-result variant of run(): the complete PipelineResult, or
  /// the first stage failure as a PipelineError.
  Expected<PipelineResult> analyze();

  /// Number of ReplayResults currently cached (bounded by the
  /// ReplayCacheCapacity budget).
  size_t cachedReplayCount() const { return Replays.size(); }

private:
  /// Replay-cache key: {transformed?, scheme, seed}.
  using ReplayKey = std::tuple<bool, ScheduleKind, uint64_t>;

  struct ReplayCacheEntry {
    ReplayResult Result;
    /// Position in LruOrder (most-recent at front).
    std::list<ReplayKey>::iterator LruIt;
  };

  /// ensureRecorded() minus the cache-hit progress event — the form
  /// internal prerequisite checks use, so a single detect() call does
  /// not spam Record events for every dependency edge.
  Expected<void> setup();

  /// Shared body of run()/takeRun(); \p Consume moves caches out.
  PipelineResult runImpl(bool Consume, PipelineError *ErrOut);

  /// Runs (or fetches) the {Transformed, Kind, Seed} replay and
  /// returns the cache entry even when the replay failed — run()
  /// needs failed ReplayResults for legacy assembly.
  const ReplayResult &replayEntry(bool Transformed, ScheduleKind Kind,
                                  uint64_t Seed);

  void emit(StageKind Stage, bool FromCache);

  Trace Tr;
  PipelineOptions Opts;
  ProgressCallback Progress;
  size_t TraceIndex = 0;
  /// Keep-alive for the mmap the trace was parsed from (may be null).
  std::shared_ptr<const MappedFile> Backing;

  /// Stage 1 state.
  bool SetupDone = false;
  PipelineError SetupError;
  std::optional<ReplayResult> RecordingRun;

  std::optional<CsIndex> Index;
  std::optional<std::vector<TimeNs>> SoloArrivals;
  std::optional<DetectResult> Detection;
  std::optional<TransformResult> Transformation;
  /// std::map: node-stable, so handed-out references survive cache
  /// growth (they die only with their entry's LRU eviction).
  std::map<ReplayKey, ReplayCacheEntry> Replays;
  /// LRU recency order over Replays' keys; front = most recent.
  std::list<ReplayKey> LruOrder;
  std::optional<PerfDebugReport> Rpt;
  std::optional<std::vector<RaceReport>> Races;
};

} // namespace perfplay

#endif // PERFPLAY_CORE_ANALYSISSESSION_H
