//===- core/Engine.h - Session factory and batch analysis --------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Engine is the front door of the staged API: it holds the
/// default PipelineOptions and the progress callback, mints
/// AnalysisSessions for single traces, and fans a batch of traces out
/// over worker threads — the multi-trace mode Section 6.7 sketches
/// (debug/MultiTrace.h aggregates the per-trace reports).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_CORE_ENGINE_H
#define PERFPLAY_CORE_ENGINE_H

#include "core/AnalysisSession.h"
#include "debug/MultiTrace.h"
#include "trace/TraceIO.h"

#include <functional>
#include <vector>

namespace perfplay {

/// Front door of the staged API.  Engines are cheap; one per
/// configuration.
class Engine {
public:
  explicit Engine(PipelineOptions Defaults = PipelineOptions())
      : Defaults(std::move(Defaults)) {}

  const PipelineOptions &options() const { return Defaults; }
  PipelineOptions &options() { return Defaults; }

  /// Installs a per-stage progress callback inherited by every session
  /// this engine opens.  analyzeBatch() serializes invocations across
  /// its workers and tags events with the trace's batch index.
  void setProgressCallback(ProgressCallback Callback) {
    Progress = std::move(Callback);
  }

  /// Opens a staged session over \p Tr with this engine's options and
  /// progress callback.  No work happens until a stage is called.
  AnalysisSession openSession(Trace Tr) const;

  /// Opens a session over the trace stored at \p Path (format
  /// auto-detected).  Under TraceLoadMode::Auto/Mmap the binary parse
  /// borrows the file mapping directly (zero-copy), and the returned
  /// session keeps that mapping alive for its lifetime
  /// (AnalysisSession::setBackingMapping).  Load failures come back as
  /// ErrorCode::TraceIOFailed.
  Expected<AnalysisSession>
  openSessionFromFile(const std::string &Path,
                      TraceLoadMode Mode = TraceLoadMode::Auto) const;

  /// Runs the full pipeline over an already-parsed \p Tr — the session
  /// reuse hook for callers that hold traces beyond one analysis (the
  /// serve daemon's TraceCache hands out copies of cached parses and
  /// analyzes them through this).  Equivalent to
  /// openSession(Tr).analyze() with the engine's options.
  Expected<PipelineResult> analyzeTrace(Trace Tr) const;

  /// Out-of-core detection over the chunked v3 trace at \p Path:
  /// streams chunks through a WindowedReader into a WindowedDetector
  /// in bounded-memory windows of options().WindowEvents events
  /// (0 = chunk-sized), so peak memory is bounded by the window, the
  /// open-section carry, and the signature representatives — never by
  /// the trace.  The result is bit-identical to detect() over the
  /// fully-loaded trace under the same DetectOptions.  Requires a v3
  /// file (`perfplay convert` upgrades v1/v2 traces); other formats
  /// fail with ErrorCode::TraceIOFailed.  Detection-only: no session
  /// is created and no recording run happens, so the per-lock pairing
  /// order is the file's recorded grant schedule when present, else
  /// global-id order.
  Expected<DetectResult> detectWindowed(const std::string &Path) const;

  /// Analyzes every trace in \p Traces concurrently on up to
  /// \p NumThreads workers (0 = one per hardware thread, capped by the
  /// batch size).  The result vector parallels the input: each element
  /// is the trace's complete PipelineResult or the typed error of its
  /// first failing stage.  One trace's failure never aborts the rest.
  ///
  /// Thread budgets do not multiply: each worker session's detection
  /// runs with options().Detect.NumThreads capped so that
  /// batch-workers x detect-threads never exceeds the machine
  /// (cappedDetectThreads).  With the defaults (Detect.NumThreads = 1)
  /// parallelism is purely across traces.
  std::vector<Expected<PipelineResult>>
  analyzeBatch(std::vector<Trace> Traces, unsigned NumThreads = 0) const;

  /// Streaming consumer for analyzeBatchStreaming: called once per
  /// trace with its batch index and its finished result, in completion
  /// order (NOT trace order).  Invocations are serialized by the
  /// batch, so the consumer needs no locking of its own; the result is
  /// moved in and destroyed after the call returns, which is the whole
  /// point — no batch-sized result vector ever exists.
  ///
  /// The consumer runs with the internal batch mutex held (that is
  /// what serializes it) and therefore must not call back into the
  /// same batch — in particular it must not block waiting on another
  /// item's delivery, which would self-deadlock.  Progress callbacks
  /// share the same mutex and the same rule.
  using BatchResultConsumer =
      std::function<void(size_t TraceIndex, Expected<PipelineResult> Result)>;

  /// Like analyzeBatch, but hands each Expected<PipelineResult> to
  /// \p Consumer as it completes instead of materializing every result:
  /// peak memory holds one in-flight result per worker plus the
  /// lightweight per-trace reports the aggregate needs.  The returned
  /// AggregatedReport is built from the per-trace reports in trace
  /// order, so it is deterministic and identical to
  /// aggregateBatch(analyzeBatch(...)) regardless of completion order.
  AggregatedReport
  analyzeBatchStreaming(std::vector<Trace> Traces,
                        const BatchResultConsumer &Consumer,
                        unsigned NumThreads = 0) const;

  /// Fully streaming batch over trace *files*: each worker loads its
  /// trace on demand (openSessionFromFile semantics — zero-copy mmap
  /// under Auto/Mmap, mapping pinned for the session's lifetime) and
  /// results stream through \p Consumer, so peak memory holds one
  /// trace + one result per worker no matter how large the batch is.
  /// A file that fails to load or parse becomes that index's
  /// ErrorCode::TraceIOFailed result; the rest of the batch is
  /// unaffected.
  AggregatedReport
  analyzeBatchFilesStreaming(const std::vector<std::string> &Paths,
                             const BatchResultConsumer &Consumer,
                             unsigned NumThreads = 0,
                             TraceLoadMode Mode = TraceLoadMode::Auto)
      const;

  /// Detection-thread budget for one of \p BatchWorkers concurrent
  /// sessions when the engine's options request \p Requested
  /// (0 = one per hardware thread): the largest count that keeps
  /// BatchWorkers x result <= hardware threads, floored at 1.
  static unsigned cappedDetectThreads(unsigned Requested,
                                      unsigned BatchWorkers);

private:
  /// Produces item \p Index's session for a batch run, built with the
  /// batch's capped options and shared progress callback — from a
  /// pre-loaded Trace or by loading a file on the worker.
  using SessionSource = std::function<Expected<AnalysisSession>(
      size_t Index, const PipelineOptions &BatchOpts,
      const ProgressCallback &SharedProgress)>;

  /// Shared fan-out of every batch entry point: analyzes \p NumItems
  /// sessions from \p Open on the pool and hands each finished result
  /// to \p Deliver under the batch mutex (serialized, completion
  /// order).
  void runBatch(size_t NumItems, unsigned NumThreads,
                const SessionSource &Open,
                const std::function<void(size_t, Expected<PipelineResult> &&)>
                    &Deliver) const;

  /// Streaming core: runBatch + per-item Consumer + the deterministic
  /// trace-ordered aggregate.
  AggregatedReport streamBatch(size_t NumItems, unsigned NumThreads,
                               const SessionSource &Open,
                               const BatchResultConsumer &Consumer) const;

  PipelineOptions Defaults;
  ProgressCallback Progress;
};

/// Merges the reports of every successful item of an analyzeBatch()
/// result (debug/MultiTrace.h); failed items are counted in
/// AggregatedReport::NumFailed.
AggregatedReport
aggregateBatch(const std::vector<Expected<PipelineResult>> &Batch);

} // namespace perfplay

#endif // PERFPLAY_CORE_ENGINE_H
