//===- core/Engine.h - Session factory and batch analysis --------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Engine is the front door of the staged API: it holds the
/// default PipelineOptions and the progress callback, mints
/// AnalysisSessions for single traces, and fans a batch of traces out
/// over worker threads — the multi-trace mode Section 6.7 sketches
/// (debug/MultiTrace.h aggregates the per-trace reports).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_CORE_ENGINE_H
#define PERFPLAY_CORE_ENGINE_H

#include "core/AnalysisSession.h"
#include "debug/MultiTrace.h"

#include <vector>

namespace perfplay {

/// Front door of the staged API.  Engines are cheap; one per
/// configuration.
class Engine {
public:
  explicit Engine(PipelineOptions Defaults = PipelineOptions())
      : Defaults(std::move(Defaults)) {}

  const PipelineOptions &options() const { return Defaults; }
  PipelineOptions &options() { return Defaults; }

  /// Installs a per-stage progress callback inherited by every session
  /// this engine opens.  analyzeBatch() serializes invocations across
  /// its workers and tags events with the trace's batch index.
  void setProgressCallback(ProgressCallback Callback) {
    Progress = std::move(Callback);
  }

  /// Opens a staged session over \p Tr with this engine's options and
  /// progress callback.  No work happens until a stage is called.
  AnalysisSession openSession(Trace Tr) const;

  /// Analyzes every trace in \p Traces concurrently on up to
  /// \p NumThreads workers (0 = one per hardware thread, capped by the
  /// batch size).  The result vector parallels the input: each element
  /// is the trace's complete PipelineResult or the typed error of its
  /// first failing stage.  One trace's failure never aborts the rest.
  ///
  /// Thread budgets multiply: each worker's session honors
  /// options().Detect.NumThreads for its own detection stage, so a
  /// batch of B workers with N detection threads runs up to B*N busy
  /// threads.  Prefer parallelizing across traces (leave
  /// Detect.NumThreads at 1) unless the batch is smaller than the
  /// machine.
  std::vector<Expected<PipelineResult>>
  analyzeBatch(std::vector<Trace> Traces, unsigned NumThreads = 0) const;

private:
  PipelineOptions Defaults;
  ProgressCallback Progress;
};

/// Merges the reports of every successful item of an analyzeBatch()
/// result (debug/MultiTrace.h); failed items are counted in
/// AggregatedReport::NumFailed.
AggregatedReport
aggregateBatch(const std::vector<Expected<PipelineResult>> &Batch);

} // namespace perfplay

#endif // PERFPLAY_CORE_ENGINE_H
