//===- core/Engine.cpp - Session factory and batch analysis -----------------===//

#include "core/Engine.h"

#include <atomic>
#include <mutex>
#include <thread>

using namespace perfplay;

AnalysisSession Engine::openSession(Trace Tr) const {
  return AnalysisSession(std::move(Tr), Defaults, Progress);
}

std::vector<Expected<PipelineResult>>
Engine::analyzeBatch(std::vector<Trace> Traces, unsigned NumThreads) const {
  std::vector<Expected<PipelineResult>> Results;
  if (Traces.empty())
    return Results;

  if (NumThreads == 0) {
    NumThreads = std::thread::hardware_concurrency();
    if (NumThreads == 0)
      NumThreads = 1;
  }
  NumThreads = static_cast<unsigned>(
      std::min<size_t>(NumThreads, Traces.size()));

  Results.reserve(Traces.size());
  for (size_t I = 0; I != Traces.size(); ++I)
    Results.emplace_back(
        PipelineError(ErrorCode::BatchItemFailed, "not analyzed"));

  // Callbacks from concurrent sessions funnel through one mutex so
  // user callbacks need no locking of their own.
  std::mutex ProgressMu;
  ProgressCallback SharedProgress;
  if (Progress)
    SharedProgress = [this, &ProgressMu](const StageEvent &Event) {
      std::lock_guard<std::mutex> Guard(ProgressMu);
      Progress(Event);
    };

  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1); I < Traces.size();
         I = Next.fetch_add(1)) {
      AnalysisSession Session(std::move(Traces[I]), Defaults,
                              SharedProgress);
      Session.setTraceIndex(I);
      Results[I] = Session.analyze();
    }
  };

  if (NumThreads == 1) {
    Worker();
    return Results;
  }
  std::vector<std::thread> Workers;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back(Worker);
  for (std::thread &W : Workers)
    W.join();
  return Results;
}

AggregatedReport perfplay::aggregateBatch(
    const std::vector<Expected<PipelineResult>> &Batch) {
  std::vector<PerfDebugReport> Reports;
  unsigned NumFailed = 0;
  for (const Expected<PipelineResult> &Item : Batch) {
    if (Item.ok())
      Reports.push_back(Item->Report);
    else
      ++NumFailed;
  }
  AggregatedReport Out = aggregateReports(Reports);
  Out.NumFailed = NumFailed;
  return Out;
}
