//===- core/Engine.cpp - Session factory and batch analysis -----------------===//

#include "core/Engine.h"

#include "detect/WindowedDetect.h"
#include "support/MappedFile.h"
#include "support/ThreadAnnotations.h"
#include "support/ThreadPool.h"
#include "trace/TraceV3.h"

#include <algorithm>
#include <memory>

using namespace perfplay;

AnalysisSession Engine::openSession(Trace Tr) const {
  return AnalysisSession(std::move(Tr), Defaults, Progress);
}

/// Loads \p Path through the shared loadTraceKeepMapping policy and
/// builds a session over \p Opts/\p Progress, pinning the mapping when
/// the zero-copy path served the load.
static Expected<AnalysisSession>
openFileSession(const std::string &Path, TraceLoadMode Mode,
                const PipelineOptions &Opts,
                const ProgressCallback &Progress) {
  auto Mapping = std::make_shared<MappedFile>();
  Trace Tr;
  std::string Err;
  // Borrowed name storage: a binary trace served by a real mmap interns
  // its lock/site names as views into the mapping — zero per-name heap
  // copies — which is safe exactly because the session pins the
  // mapping below.  Loads that close the mapping fall back to owned
  // names inside loadTraceKeepMapping.
  if (!loadTraceKeepMapping(Path, Tr, Err, *Mapping, Mode,
                            NameStorage::Borrowed))
    return PipelineError(ErrorCode::TraceIOFailed, std::move(Err));
  AnalysisSession Session(std::move(Tr), Opts, Progress);
  // Pin only real mmaps: their clean pages cost nothing the kernel
  // cannot reclaim.  A read-fallback buffer would keep a second full
  // copy of the file alive for no benefit, so let it die here.
  if (Mapping->isMapped())
    Session.setBackingMapping(std::move(Mapping));
  return Session;
}

Expected<AnalysisSession>
Engine::openSessionFromFile(const std::string &Path,
                            TraceLoadMode Mode) const {
  return openFileSession(Path, Mode, Defaults, Progress);
}

Expected<PipelineResult> Engine::analyzeTrace(Trace Tr) const {
  return openSession(std::move(Tr)).analyze();
}

Expected<DetectResult>
Engine::detectWindowed(const std::string &Path) const {
  WindowedReader Reader;
  std::string Err;
  if (!Reader.open(Path, Err))
    return PipelineError(ErrorCode::TraceIOFailed, std::move(Err));

  WindowedDetector Detector(Defaults.Detect);
  const uint64_t Window = Defaults.WindowEvents;
  WindowedReader::Chunk Chunk;
  while (Reader.next(Chunk, Err)) {
    const Event *Events = Chunk.Events.data();
    size_t Left = Chunk.Events.size();
    while (Left > 0) {
      size_t Take = Window == 0
                        ? Left
                        : std::min<size_t>(Left, static_cast<size_t>(Window));
      if (!Detector.addEvents(Chunk.Thread, Events, Take, Err))
        return PipelineError(ErrorCode::InvalidTrace, std::move(Err));
      Events += Take;
      Left -= Take;
    }
  }
  // next() returning false is either clean end-of-directory or a decode
  // error; the reader distinguishes them through Err.
  if (!Err.empty())
    return PipelineError(ErrorCode::TraceIOFailed, std::move(Err));

  DetectResult Result;
  if (!Detector.finish(Reader.tables(), Result, Err))
    return PipelineError(ErrorCode::InvalidTrace, std::move(Err));
  return Result;
}

unsigned Engine::cappedDetectThreads(unsigned Requested,
                                     unsigned BatchWorkers) {
  unsigned Hardware =
      ThreadPool::resolveThreadCount(0, static_cast<size_t>(-1));
  unsigned Resolved =
      ThreadPool::resolveThreadCount(Requested, static_cast<size_t>(-1));
  unsigned Budget = std::max(1u, Hardware / std::max(BatchWorkers, 1u));
  return std::min(Resolved, Budget);
}

void Engine::runBatch(
    size_t NumItems, unsigned NumThreads, const SessionSource &Open,
    const std::function<void(size_t, Expected<PipelineResult> &&)> &Deliver)
    const {
  if (NumItems == 0)
    return;

  // Progress callbacks and result delivery funnel through one mutex so
  // user callbacks need no locking of their own.  BatchMu is above the
  // detector's verdict-cache stripes in the lock hierarchy only in the
  // trivial sense that both are never held together: user callbacks
  // run under BatchMu but never re-enter the engine (documented on
  // BatchResultConsumer), and detection runs lock-free with respect to
  // BatchMu.
  Mutex BatchMu;
  ProgressCallback SharedProgress;
  if (Progress)
    SharedProgress = [this, &BatchMu](const StageEvent &Event) {
      MutexLock Guard(BatchMu);
      Progress(Event);
    };

  ThreadPool Pool(ThreadPool::resolveThreadCount(NumThreads, NumItems));
  // Nested-pool guard: each session's detection stage spins up its own
  // pool, so cap its width such that batch-workers x detect-threads
  // stays within the machine instead of oversubscribing to the product.
  PipelineOptions BatchOpts = Defaults;
  BatchOpts.Detect.NumThreads =
      cappedDetectThreads(Defaults.Detect.NumThreads, Pool.size());
  Pool.parallelFor(NumItems, [&](size_t I) {
    Expected<AnalysisSession> SessionOr = Open(I, BatchOpts, SharedProgress);
    Expected<PipelineResult> Item = [&]() -> Expected<PipelineResult> {
      if (!SessionOr)
        return SessionOr.error();
      SessionOr->setTraceIndex(I);
      // The session dies with this iteration: consume its caches into
      // the result instead of copying them.
      PipelineError Err;
      PipelineResult R = SessionOr->takeRun(&Err);
      if (!Err.isSuccess())
        return Err;
      return R;
    }();
    MutexLock Guard(BatchMu);
    Deliver(I, std::move(Item));
  });
}

AggregatedReport Engine::streamBatch(size_t NumItems, unsigned NumThreads,
                                     const SessionSource &Open,
                                     const BatchResultConsumer &Consumer)
    const {
  // Only the lightweight per-trace reports are retained for the
  // aggregate; the full results stream through the consumer and die.
  std::vector<PerfDebugReport> Reports(NumItems);
  std::vector<uint8_t> Succeeded(NumItems, 0);
  runBatch(NumItems, NumThreads, Open,
           [&](size_t I, Expected<PipelineResult> &&Item) {
             if (Item.ok()) {
               Succeeded[I] = 1;
               Reports[I] = Item->Report;
             }
             if (Consumer)
               Consumer(I, std::move(Item));
           });

  // Aggregate in trace order — deterministic no matter which worker
  // finished first, and identical to aggregateBatch(analyzeBatch()).
  std::vector<PerfDebugReport> Ordered;
  unsigned NumFailed = 0;
  for (size_t I = 0; I != NumItems; ++I) {
    if (Succeeded[I])
      Ordered.push_back(std::move(Reports[I]));
    else
      ++NumFailed;
  }
  AggregatedReport Out = aggregateReports(Ordered);
  Out.NumFailed = NumFailed;
  return Out;
}

/// Session source over a pre-loaded trace vector.
static auto traceSource(std::vector<Trace> &Traces) {
  return [&Traces](size_t I, const PipelineOptions &Opts,
                   const ProgressCallback &Progress)
             -> Expected<AnalysisSession> {
    return AnalysisSession(std::move(Traces[I]), Opts, Progress);
  };
}

std::vector<Expected<PipelineResult>>
Engine::analyzeBatch(std::vector<Trace> Traces, unsigned NumThreads) const {
  std::vector<Expected<PipelineResult>> Results;
  Results.reserve(Traces.size());
  for (size_t I = 0; I != Traces.size(); ++I)
    Results.emplace_back(
        PipelineError(ErrorCode::BatchItemFailed, "not analyzed"));
  runBatch(Traces.size(), NumThreads, traceSource(Traces),
           [&](size_t I, Expected<PipelineResult> &&Item) {
             Results[I] = std::move(Item);
           });
  return Results;
}

AggregatedReport
Engine::analyzeBatchStreaming(std::vector<Trace> Traces,
                              const BatchResultConsumer &Consumer,
                              unsigned NumThreads) const {
  return streamBatch(Traces.size(), NumThreads, traceSource(Traces),
                     Consumer);
}

AggregatedReport
Engine::analyzeBatchFilesStreaming(const std::vector<std::string> &Paths,
                                   const BatchResultConsumer &Consumer,
                                   unsigned NumThreads,
                                   TraceLoadMode Mode) const {
  return streamBatch(
      Paths.size(), NumThreads,
      [&Paths, Mode](size_t I, const PipelineOptions &Opts,
                     const ProgressCallback &Progress) {
        // Each worker loads its own file on demand — input memory is
        // one trace (and one pinned mapping) per worker, not the sum
        // of the batch.
        return openFileSession(Paths[I], Mode, Opts, Progress);
      },
      Consumer);
}

AggregatedReport perfplay::aggregateBatch(
    const std::vector<Expected<PipelineResult>> &Batch) {
  std::vector<PerfDebugReport> Reports;
  unsigned NumFailed = 0;
  for (const Expected<PipelineResult> &Item : Batch) {
    if (Item.ok())
      Reports.push_back(Item->Report);
    else
      ++NumFailed;
  }
  AggregatedReport Out = aggregateReports(Reports);
  Out.NumFailed = NumFailed;
  return Out;
}
