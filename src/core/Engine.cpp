//===- core/Engine.cpp - Session factory and batch analysis -----------------===//

#include "core/Engine.h"

#include "support/ThreadPool.h"

#include <mutex>

using namespace perfplay;

AnalysisSession Engine::openSession(Trace Tr) const {
  return AnalysisSession(std::move(Tr), Defaults, Progress);
}

std::vector<Expected<PipelineResult>>
Engine::analyzeBatch(std::vector<Trace> Traces, unsigned NumThreads) const {
  std::vector<Expected<PipelineResult>> Results;
  if (Traces.empty())
    return Results;

  Results.reserve(Traces.size());
  for (size_t I = 0; I != Traces.size(); ++I)
    Results.emplace_back(
        PipelineError(ErrorCode::BatchItemFailed, "not analyzed"));

  // Callbacks from concurrent sessions funnel through one mutex so
  // user callbacks need no locking of their own.
  std::mutex ProgressMu;
  ProgressCallback SharedProgress;
  if (Progress)
    SharedProgress = [this, &ProgressMu](const StageEvent &Event) {
      std::lock_guard<std::mutex> Guard(ProgressMu);
      Progress(Event);
    };

  ThreadPool Pool(
      ThreadPool::resolveThreadCount(NumThreads, Traces.size()));
  Pool.parallelFor(Traces.size(), [&](size_t I) {
    AnalysisSession Session(std::move(Traces[I]), Defaults, SharedProgress);
    Session.setTraceIndex(I);
    Results[I] = Session.analyze();
  });
  return Results;
}

AggregatedReport perfplay::aggregateBatch(
    const std::vector<Expected<PipelineResult>> &Batch) {
  std::vector<PerfDebugReport> Reports;
  unsigned NumFailed = 0;
  for (const Expected<PipelineResult> &Item : Batch) {
    if (Item.ok())
      Reports.push_back(Item->Report);
    else
      ++NumFailed;
  }
  AggregatedReport Out = aggregateReports(Reports);
  Out.NumFailed = NumFailed;
  return Out;
}
