//===- core/PerfPlay.cpp - The PERFPLAY pipeline ----------------------------===//

#include "core/PerfPlay.h"

using namespace perfplay;

PipelineResult perfplay::runPerfPlay(Trace Tr, const PipelineOptions &Opts) {
  AnalysisSession Session(std::move(Tr), Opts);
  // The session dies with this call: move the results out, don't copy.
  return Session.takeRun();
}
