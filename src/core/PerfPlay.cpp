//===- core/PerfPlay.cpp - The PERFPLAY pipeline ----------------------------===//

#include "core/PerfPlay.h"

#include "detect/CriticalSection.h"

using namespace perfplay;

PipelineResult perfplay::runPerfPlay(Trace Tr, const PipelineOptions &Opts) {
  PipelineResult Result;

  std::string Invalid = Tr.validate();
  if (!Invalid.empty()) {
    Result.Error = "invalid input trace: " + Invalid;
    return Result;
  }
  Tr.buildCsIndex();

  // Step 1 (record): install a grant schedule if the trace has none.
  if (Tr.LockSchedule.empty() && Tr.numCriticalSections() != 0) {
    ReplayResult Recording =
        recordGrantSchedule(Tr, Opts.RecordSeed, Opts.Replay.Costs);
    if (!Recording.ok()) {
      Result.Error = "recording run failed: " + Recording.Error;
      return Result;
    }
  }

  // Step 2 (detect).
  CsIndex Index = CsIndex::build(Tr);
  Result.Detection = detectUlcps(Tr, Index, Opts.Detect);

  // Step 3 (transform).
  Result.Transformation = transformTrace(Tr, Index);

  // Step 4 (replay both).
  Result.Original = replayTrace(Tr, Opts.Replay);
  if (!Result.Original.ok()) {
    Result.Error = "original replay failed: " + Result.Original.Error;
    return Result;
  }
  Result.UlcpFree = replayTrace(Result.Transformation.Transformed,
                                Opts.Replay);
  if (!Result.UlcpFree.ok()) {
    Result.Error = "ULCP-free replay failed: " + Result.UlcpFree.Error;
    return Result;
  }

  // Step 5 (report).
  Result.Report = buildReport(Tr, Index, Result.Detection.unnecessaryPairs(),
                              Result.Original, Result.UlcpFree);

  if (Opts.CheckRaces)
    Result.Races = checkRaces(Result.Transformation.Transformed, Index,
                              Result.Transformation.Topology);
  return Result;
}
