//===- core/AnalysisSession.cpp - Staged pipeline over one trace ------------===//

#include "core/AnalysisSession.h"

#include <algorithm>

using namespace perfplay;

const char *perfplay::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Success:
    return "success";
  case ErrorCode::InvalidTrace:
    return "invalid-trace";
  case ErrorCode::RecordingFailed:
    return "recording-failed";
  case ErrorCode::OriginalReplayFailed:
    return "original-replay-failed";
  case ErrorCode::TransformedReplayFailed:
    return "transformed-replay-failed";
  case ErrorCode::BatchItemFailed:
    return "batch-item-failed";
  case ErrorCode::IncompatibleOptions:
    return "incompatible-options";
  case ErrorCode::TraceIOFailed:
    return "trace-io-failed";
  case ErrorCode::ProtocolError:
    return "protocol-error";
  case ErrorCode::ServerOverloaded:
    return "server-overloaded";
  }
  return "?";
}

const char *perfplay::stageKindName(StageKind Stage) {
  switch (Stage) {
  case StageKind::Record:
    return "record";
  case StageKind::Detect:
    return "detect";
  case StageKind::Transform:
    return "transform";
  case StageKind::Replay:
    return "replay";
  case StageKind::Report:
    return "report";
  case StageKind::RaceCheck:
    return "race-check";
  }
  return "?";
}

AnalysisSession::AnalysisSession(Trace Tr, PipelineOptions Opts,
                                 ProgressCallback Progress)
    : Tr(std::move(Tr)), Opts(std::move(Opts)),
      Progress(std::move(Progress)) {}

void AnalysisSession::emit(StageKind Stage, bool FromCache) {
  if (!Progress)
    return;
  StageEvent Event;
  Event.Stage = Stage;
  Event.TraceIndex = TraceIndex;
  Event.FromCache = FromCache;
  Progress(Event);
}

Expected<void> AnalysisSession::ensureRecorded() {
  bool Cached = SetupDone;
  Expected<void> Result = setup();
  if (Cached)
    emit(StageKind::Record, /*FromCache=*/true);
  return Result;
}

Expected<void> AnalysisSession::setup() {
  if (SetupDone) {
    if (!SetupError.isSuccess())
      return SetupError;
    return {};
  }
  SetupDone = true;

  std::string Invalid = Tr.validate();
  if (!Invalid.empty()) {
    SetupError = PipelineError(ErrorCode::InvalidTrace,
                               "invalid input trace: " + Invalid);
    return SetupError;
  }
  Tr.buildCsIndex();

  if (Tr.LockSchedule.empty() && Tr.numCriticalSections() != 0) {
    RecordingRun.emplace(
        recordGrantSchedule(Tr, Opts.RecordSeed, Opts.Replay.Costs));
    if (!RecordingRun->ok()) {
      SetupError = PipelineError(ErrorCode::RecordingFailed,
                                 "recording run failed: " +
                                     RecordingRun->Error);
      return SetupError;
    }
  }
  emit(StageKind::Record, /*FromCache=*/false);
  return {};
}

Expected<const std::vector<std::vector<CsRef>> &>
AnalysisSession::grantSchedule() {
  if (Expected<void> Setup = setup(); !Setup)
    return Setup.error();
  return Tr.LockSchedule;
}

Expected<const CsIndex &> AnalysisSession::csIndex() {
  if (Expected<void> Setup = setup(); !Setup)
    return Setup.error();
  if (!Index)
    Index.emplace(CsIndex::build(Tr));
  return *Index;
}

Expected<const std::vector<TimeNs> &> AnalysisSession::soloArrivals() {
  if (Expected<void> Setup = setup(); !Setup)
    return Setup.error();
  if (!SoloArrivals)
    SoloArrivals.emplace(computeSoloArrivals(Tr, Opts.Replay.Costs));
  return *SoloArrivals;
}

Expected<const DetectResult &> AnalysisSession::detect() {
  if (Detection) {
    emit(StageKind::Detect, /*FromCache=*/true);
    return *Detection;
  }
  Expected<const CsIndex &> Idx = csIndex();
  if (!Idx)
    return Idx.error();
  Detection.emplace(detectUlcps(Tr, *Idx, Opts.Detect));
  emit(StageKind::Detect, /*FromCache=*/false);
  return *Detection;
}

Expected<const TransformResult &> AnalysisSession::transform() {
  if (Transformation) {
    emit(StageKind::Transform, /*FromCache=*/true);
    return *Transformation;
  }
  Expected<const CsIndex &> Idx = csIndex();
  if (!Idx)
    return Idx.error();
  Transformation.emplace(transformTrace(Tr, *Idx));
  emit(StageKind::Transform, /*FromCache=*/false);
  return *Transformation;
}

const ReplayResult &AnalysisSession::replayEntry(bool Transformed,
                                                 ScheduleKind Kind,
                                                 uint64_t Seed) {
  ReplayKey Key{Transformed, Kind, Seed};
  auto It = Replays.find(Key);
  if (It != Replays.end()) {
    // Touch: move to the front of the recency order.
    LruOrder.splice(LruOrder.begin(), LruOrder, It->second.LruIt);
    emit(StageKind::Replay, /*FromCache=*/true);
    return It->second.Result;
  }
  ReplayOptions RO = Opts.Replay;
  RO.Schedule = Kind;
  RO.Seed = Seed;
  const Trace &Target = Transformed ? Transformation->Transformed : Tr;
  It = Replays
           .emplace(Key, ReplayCacheEntry{replayTrace(Target, RO), {}})
           .first;
  LruOrder.push_front(Key);
  It->second.LruIt = LruOrder.begin();
  // Enforce the memory budget: evict least-recently-used results.  The
  // floor of 2 keeps the session's current original + transformed pair
  // (which report() and run() re-find) resident.
  if (size_t Capacity = Opts.Replay.ReplayCacheCapacity) {
    Capacity = std::max<size_t>(Capacity, 2);
    while (Replays.size() > Capacity) {
      Replays.erase(LruOrder.back());
      LruOrder.pop_back();
    }
  }
  emit(StageKind::Replay, /*FromCache=*/false);
  return It->second.Result;
}

Expected<const ReplayResult &>
AnalysisSession::replay(ScheduleKind Kind, std::optional<uint64_t> Seed) {
  if (Expected<void> Setup = setup(); !Setup)
    return Setup.error();
  const ReplayResult &R =
      replayEntry(/*Transformed=*/false, Kind, Seed.value_or(Opts.Replay.Seed));
  if (!R.ok())
    return PipelineError(ErrorCode::OriginalReplayFailed,
                         "original replay failed: " + R.Error);
  return R;
}

Expected<const ReplayResult &>
AnalysisSession::replayTransformed(ScheduleKind Kind,
                                   std::optional<uint64_t> Seed) {
  if (Expected<const TransformResult &> Tx = transform(); !Tx)
    return Tx.error();
  const ReplayResult &R =
      replayEntry(/*Transformed=*/true, Kind, Seed.value_or(Opts.Replay.Seed));
  if (!R.ok())
    return PipelineError(ErrorCode::TransformedReplayFailed,
                         "ULCP-free replay failed: " + R.Error);
  return R;
}

Expected<const PerfDebugReport &> AnalysisSession::report() {
  if (Rpt) {
    emit(StageKind::Report, /*FromCache=*/true);
    return *Rpt;
  }
  // A Sink/CountsOnly detection discards the per-pair list this stage
  // ranks; building a report from it would silently claim "no
  // contention" while Counts says otherwise.
  if (Opts.Detect.CountsOnly || Opts.Detect.Sink)
    return PipelineError(
        ErrorCode::IncompatibleOptions,
        "report() needs materialized detection pairs; the session's "
        "DetectOptions use Sink/CountsOnly");
  Expected<const DetectResult &> Det = detect();
  if (!Det)
    return Det.error();
  Expected<const ReplayResult &> Orig = replay(Opts.Replay.Schedule);
  if (!Orig)
    return Orig.error();
  Expected<const ReplayResult &> Free =
      replayTransformed(Opts.Replay.Schedule);
  if (!Free)
    return Free.error();
  Rpt.emplace(
      buildReport(Tr, *Index, Det->unnecessaryPairs(), *Orig, *Free));
  emit(StageKind::Report, /*FromCache=*/false);
  return *Rpt;
}

Expected<const std::vector<RaceReport> &> AnalysisSession::races() {
  if (Races) {
    emit(StageKind::RaceCheck, /*FromCache=*/true);
    return *Races;
  }
  Expected<const TransformResult &> Tx = transform();
  if (!Tx)
    return Tx.error();
  Races.emplace(checkRaces(Tx->Transformed, *Index, Tx->Topology));
  emit(StageKind::RaceCheck, /*FromCache=*/false);
  return *Races;
}

PipelineResult AnalysisSession::run(PipelineError *ErrOut) {
  return runImpl(/*Consume=*/false, ErrOut);
}

PipelineResult AnalysisSession::takeRun(PipelineError *ErrOut) {
  return runImpl(/*Consume=*/true, ErrOut);
}

PipelineResult AnalysisSession::runImpl(bool Consume,
                                        PipelineError *ErrOut) {
  if (ErrOut)
    *ErrOut = PipelineError();
  PipelineResult Result;

  auto Fail = [&](const PipelineError &Err) {
    Result.Error = Err.Message;
    if (ErrOut)
      *ErrOut = Err;
    return Result;
  };
  // In consume mode the stage caches move into the result (and reset)
  // instead of being copied — run() stays repeatable, takeRun() spares
  // a discarded session the deep copies.
  auto Take = [Consume](auto &Cache, auto &Dest) {
    if (Consume) {
      Dest = std::move(*Cache);
      Cache.reset();
    } else {
      Dest = *Cache;
    }
  };

  if (Expected<void> Setup = setup(); !Setup)
    return Fail(Setup.error());

  Expected<const DetectResult &> Det = detect();
  if (!Det)
    return Fail(Det.error());

  Expected<const TransformResult &> Tx = transform();
  if (!Tx)
    return Fail(Tx.error());

  auto TakeReplay = [&](bool Transformed, ReplayResult &Dest) {
    auto It = Replays.find(
        ReplayKey{Transformed, Opts.Replay.Schedule, Opts.Replay.Seed});
    if (Consume) {
      Dest = std::move(It->second.Result);
      LruOrder.erase(It->second.LruIt);
      Replays.erase(It);
    } else {
      Dest = It->second.Result;
    }
  };
  // Legacy assembly keeps a failed replay's partial result in place,
  // exactly as the monolithic pipeline did.
  auto FailReplay = [&](bool Transformed, const PipelineError &Err) {
    Take(Detection, Result.Detection);
    Take(Transformation, Result.Transformation);
    TakeReplay(/*Transformed=*/false, Result.Original);
    if (Transformed)
      TakeReplay(/*Transformed=*/true, Result.UlcpFree);
    return Fail(Err);
  };

  const ReplayResult &Orig = replayEntry(/*Transformed=*/false,
                                         Opts.Replay.Schedule,
                                         Opts.Replay.Seed);
  if (!Orig.ok())
    return FailReplay(
        /*Transformed=*/false,
        PipelineError(ErrorCode::OriginalReplayFailed,
                      "original replay failed: " + Orig.Error));

  const ReplayResult &Free = replayEntry(/*Transformed=*/true,
                                         Opts.Replay.Schedule,
                                         Opts.Replay.Seed);
  if (!Free.ok())
    return FailReplay(
        /*Transformed=*/true,
        PipelineError(ErrorCode::TransformedReplayFailed,
                      "ULCP-free replay failed: " + Free.Error));

  // Streaming detection (Sink/CountsOnly) deliberately discards the
  // pair list, so the report stage cannot run; every other stage can.
  // run() then delivers counts, transformation, and both replays with
  // a default-constructed Report instead of failing the pipeline.
  const bool Streaming = Opts.Detect.CountsOnly || Opts.Detect.Sink;
  if (!Streaming) {
    Expected<const PerfDebugReport &> Report = report();
    if (!Report)
      return Fail(Report.error());
  }
  if (Opts.CheckRaces)
    if (Expected<const std::vector<RaceReport> &> Rc = races(); !Rc)
      return Fail(Rc.error());

  // Every stage is in cache; assemble (moving in consume mode) last so
  // report()/races() above computed from intact caches.
  Take(Detection, Result.Detection);
  Take(Transformation, Result.Transformation);
  TakeReplay(/*Transformed=*/false, Result.Original);
  TakeReplay(/*Transformed=*/true, Result.UlcpFree);
  if (!Streaming)
    Take(Rpt, Result.Report);
  if (Opts.CheckRaces)
    Take(Races, Result.Races);
  return Result;
}

Expected<PipelineResult> AnalysisSession::analyze() {
  PipelineError Err;
  PipelineResult Result = run(&Err);
  if (!Err.isSuccess())
    return Err;
  return Result;
}
