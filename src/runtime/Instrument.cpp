//===- runtime/Instrument.cpp - Instrumented sync primitives ---------------===//

#include "runtime/Instrument.h"

using namespace perfplay;

AddrId perfplay::allocateShadowAddr() {
  static std::atomic<AddrId> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}
