//===- runtime/Recorder.cpp - Live execution recording ---------------------===//

#include "runtime/Recorder.h"

#include <cassert>

using namespace perfplay;

Recorder::Recorder() = default;

LockId Recorder::registerLock(std::string Name, bool IsSpin) {
  MutexLock Guard(Registry);
  assert(!Finished && "recorder already finished");
  LockInfo Info;
  Info.Name = Result.Names.intern(Name);
  Info.IsSpin = IsSpin;
  Result.Locks.push_back(Info);
  return static_cast<LockId>(Result.Locks.size() - 1);
}

LockId Recorder::registerCondition(std::string Name) {
  return registerLock(std::move(Name));
}

CodeSiteId Recorder::registerSite(std::string File, std::string Function,
                                  uint32_t BeginLine, uint32_t EndLine) {
  MutexLock Guard(Registry);
  assert(!Finished && "recorder already finished");
  // Interning first makes the dedup scan a pure integer compare: equal
  // names share a StringId, so no characters are touched per candidate.
  StringId FileId = Result.Names.intern(File);
  StringId FunctionId = Result.Names.intern(Function);
  for (size_t I = 0; I != Result.Sites.size(); ++I) {
    const CodeSite &S = Result.Sites[I];
    if (S.File == FileId && S.Function == FunctionId &&
        S.BeginLine == BeginLine && S.EndLine == EndLine)
      return static_cast<CodeSiteId>(I);
  }
  CodeSite Site;
  Site.File = FileId;
  Site.Function = FunctionId;
  Site.BeginLine = BeginLine;
  Site.EndLine = EndLine;
  Result.Sites.push_back(Site);
  return static_cast<CodeSiteId>(Result.Sites.size() - 1);
}

ThreadId Recorder::registerThread() {
  MutexLock Guard(Registry);
  assert(!Finished && "recorder already finished");
  auto *Log = new PerThread();
  Log->Events.push_back(Event::threadStart());
  Log->LastStamp = Clock::now();
  ThreadLogs.push_back(Log);
  Result.Threads.emplace_back();
  return static_cast<ThreadId>(ThreadLogs.size() - 1);
}

Recorder::PerThread &Recorder::threadLog(ThreadId T) {
  MutexLock Guard(Registry);
  assert(T < ThreadLogs.size() && "unregistered thread");
  return *ThreadLogs[T];
}

void Recorder::flushCompute(PerThread &Log, Clock::time_point Now) {
  auto Elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     Now - Log.LastStamp)
                     .count();
  if (Elapsed > 0)
    Log.Events.push_back(Event::compute(static_cast<TimeNs>(Elapsed)));
  Log.LastStamp = Now;
}

void Recorder::onAcquireStart(ThreadId T) {
  PerThread &Log = threadLog(T);
  auto Now = Clock::now();
  flushCompute(Log, Now);
  Log.Waiting = true;
  Log.WaitStart = Now;
}

void Recorder::finishAcquire(ThreadId T, LockId Lock, const Event &E) {
  PerThread &Log = threadLog(T);
  auto Now = Clock::now();
  if (Log.Waiting) {
    // Selective recording: the wait is contention, not computation;
    // drop it so the replayer re-derives it from the schedule.
    Log.LastStamp = Now;
    Log.Waiting = false;
  } else {
    flushCompute(Log, Now);
  }
  Log.Events.push_back(E);
  {
    // We already hold the recorded lock here, so this registry lock
    // cannot invert the observed grant order for a given lock.
    MutexLock Guard(Registry);
    GrantLog.push_back({Lock, T});
  }
}

void Recorder::onAcquired(ThreadId T, LockId Lock, CodeSiteId Site) {
  finishAcquire(T, Lock, Event::lockAcquire(Lock, Site));
}

void Recorder::onRwAcquiredRead(ThreadId T, LockId Lock, CodeSiteId Site) {
  finishAcquire(T, Lock, Event::rwAcquireRead(Lock, Site));
}

void Recorder::onRwAcquiredWrite(ThreadId T, LockId Lock,
                                 CodeSiteId Site) {
  finishAcquire(T, Lock, Event::rwAcquireWrite(Lock, Site));
}

void Recorder::onTryAcquire(ThreadId T, LockId Lock, CodeSiteId Site,
                            bool Succeeded, AcquireMode Mode) {
  if (Succeeded) {
    finishAcquire(T, Lock, Event::tryAcquire(Lock, Site, true, Mode));
    return;
  }
  // A failed try never waited and opens nothing: just the witness.
  PerThread &Log = threadLog(T);
  flushCompute(Log, Clock::now());
  Log.Events.push_back(Event::tryAcquire(Lock, Site, false, Mode));
}

void Recorder::onCondWait(ThreadId T, LockId Cond, CodeSiteId Site) {
  PerThread &Log = threadLog(T);
  flushCompute(Log, Clock::now());
  Log.Events.push_back(Event::condWait(Cond, Site));
}

void Recorder::onCondSignal(ThreadId T, LockId Cond) {
  PerThread &Log = threadLog(T);
  flushCompute(Log, Clock::now());
  Log.Events.push_back(Event::condSignal(Cond));
}

void Recorder::onCondBroadcast(ThreadId T, LockId Cond) {
  PerThread &Log = threadLog(T);
  flushCompute(Log, Clock::now());
  Log.Events.push_back(Event::condBroadcast(Cond));
}

void Recorder::onRelease(ThreadId T, LockId Lock) {
  PerThread &Log = threadLog(T);
  auto Now = Clock::now();
  flushCompute(Log, Now);
  Log.Events.push_back(Event::lockRelease(Lock));
}

void Recorder::onRead(ThreadId T, AddrId Addr, uint64_t Value) {
  PerThread &Log = threadLog(T);
  auto Now = Clock::now();
  flushCompute(Log, Now);
  Log.Events.push_back(Event::read(Addr, Value));
}

void Recorder::onWrite(ThreadId T, AddrId Addr, uint64_t Value,
                       WriteOpKind Op) {
  PerThread &Log = threadLog(T);
  auto Now = Clock::now();
  flushCompute(Log, Now);
  Log.Events.push_back(Event::write(Addr, Value, Op));
}

void Recorder::checkpoint(ThreadId T, std::string Name) {
  MutexLock Guard(Registry);
  assert(T < ThreadLogs.size() && "unregistered thread");
  Marks.push_back(
      Checkpoint{T, std::move(Name), ThreadLogs[T]->Events.size()});
}

std::vector<Recorder::Checkpoint> Recorder::checkpoints() const {
  MutexLock Guard(Registry);
  return Marks;
}

Trace Recorder::finish() {
  MutexLock Guard(Registry);
  assert(!Finished && "recorder already finished");
  Finished = true;

  for (ThreadId T = 0; T != ThreadLogs.size(); ++T) {
    ThreadLogs[T]->Events.push_back(Event::threadEnd());
    Result.Threads[T].Events = std::move(ThreadLogs[T]->Events);
    delete ThreadLogs[T];
  }
  ThreadLogs.clear();

  // Rebuild the per-lock grant schedule with per-thread CS indices.
  std::vector<uint32_t> NextCsIndex(Result.Threads.size(), 0);
  // GrantLog entries are in acquisition order per lock; the I-th grant
  // of thread T corresponds to T's I-th critical section.
  Result.LockSchedule.assign(Result.Locks.size(), {});
  for (const auto &[Lock, T] : GrantLog)
    Result.LockSchedule[Lock].push_back(CsRef{T, NextCsIndex[T]++});

  Result.buildCsIndex();
  return std::move(Result);
}
