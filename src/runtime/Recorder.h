//===- runtime/Recorder.h - Live execution recording ------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recording substrate that stands in for the paper's Pin-based
/// instrumentation: applications link against RecordingMutex /
/// SharedVar (runtime/Instrument.h) and every synchronization operation
/// and shared access is logged here, with the computation between
/// events collapsed into Compute(cost) — the paper's selective
/// recording (Section 5.1).  Lock-waiting time is excluded from the
/// recorded computation (the replayer re-derives contention), and the
/// global grant order of every lock is captured as the schedule ELSC
/// enforces on replay.
///
/// Thread safety: per-thread event buffers are touched only by their
/// owning thread; the grant-order log is serialized by an internal
/// mutex (taken while the recorded lock is already held, so it adds no
/// ordering of its own).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_RUNTIME_RECORDER_H
#define PERFPLAY_RUNTIME_RECORDER_H

#include "trace/Trace.h"

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

namespace perfplay {

/// Collects a Trace from a live multi-threaded execution.
///
/// Lifecycle: register locks/sites up front, register each thread from
/// the thread itself, feed events through the on* hooks (normally via
/// runtime/Instrument.h wrappers), then call finish() after all
/// recorded threads have joined.
class Recorder {
public:
  Recorder();

  /// Registers a lock; thread-safe.
  LockId registerLock(std::string Name, bool IsSpin = false);

  /// Registers (or re-finds) a code site; thread-safe, deduplicated.
  CodeSiteId registerSite(std::string File, std::string Function,
                          uint32_t BeginLine, uint32_t EndLine);

  /// Registers the calling thread and returns its id.
  ThreadId registerThread();

  /// Hook: the thread is about to contend for \p Lock.  Computation
  /// since the previous event is captured; waiting starts now.
  void onAcquireStart(ThreadId T);

  /// Hook: the thread now holds \p Lock (call with the lock held).
  /// The wait since onAcquireStart is *not* recorded as computation.
  void onAcquired(ThreadId T, LockId Lock, CodeSiteId Site);

  /// Hook: the thread released \p Lock (call right after unlocking).
  void onRelease(ThreadId T, LockId Lock);

  /// Hook: shared read of \p Addr observing \p Value.
  void onRead(ThreadId T, AddrId Addr, uint64_t Value);

  /// Hook: shared write.
  void onWrite(ThreadId T, AddrId Addr, uint64_t Value, WriteOpKind Op);

  /// Marks a named checkpoint for repeated local debugging
  /// (Section 5.1); checkpoints live beside the trace, not in it.
  void checkpoint(ThreadId T, std::string Name);

  /// A recorded checkpoint.
  struct Checkpoint {
    ThreadId Thread;
    std::string Name;
    /// Index of the next event of that thread at checkpoint time.
    size_t EventIndex;
  };

  const std::vector<Checkpoint> &checkpoints() const { return Marks; }

  /// Finalizes and returns the trace.  All recorded threads must have
  /// finished issuing events.  The recorder must not be reused.
  Trace finish();

private:
  using Clock = std::chrono::steady_clock;

  struct PerThread {
    std::vector<Event> Events;
    Clock::time_point LastStamp;
    Clock::time_point WaitStart;
    bool Waiting = false;
  };

  /// Emits the computation elapsed on \p T since its last event.
  void flushCompute(ThreadId T, Clock::time_point Now);

  std::mutex Registry;
  Trace Result;
  std::vector<PerThread *> ThreadLogs;
  /// Global grant order: (lock, thread) in acquisition order; per-CS
  /// indices are reconstructed in finish().
  std::vector<std::pair<LockId, ThreadId>> GrantLog;
  std::vector<Checkpoint> Marks;
  bool Finished = false;
};

} // namespace perfplay

#endif // PERFPLAY_RUNTIME_RECORDER_H
