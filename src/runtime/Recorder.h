//===- runtime/Recorder.h - Live execution recording ------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recording substrate that stands in for the paper's Pin-based
/// instrumentation: applications link against RecordingMutex /
/// SharedVar (runtime/Instrument.h) and every synchronization operation
/// and shared access is logged here, with the computation between
/// events collapsed into Compute(cost) — the paper's selective
/// recording (Section 5.1).  Lock-waiting time is excluded from the
/// recorded computation (the replayer re-derives contention), and the
/// global grant order of every lock is captured as the schedule ELSC
/// enforces on replay.
///
/// Thread safety: per-thread event buffers are touched only by their
/// owning thread; the registry of threads/locks/sites, the grant-order
/// log and the checkpoint list are serialized by the internal Registry
/// mutex.  Registry is a leaf lock in the hierarchy: it is taken while
/// a recorded application lock may already be held (onAcquired runs
/// with the recorded lock held, so the registry adds no ordering of
/// its own) and nothing is ever acquired under it.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_RUNTIME_RECORDER_H
#define PERFPLAY_RUNTIME_RECORDER_H

#include "support/ThreadAnnotations.h"
#include "trace/Trace.h"

#include <chrono>
#include <string>
#include <vector>

namespace perfplay {

/// Collects a Trace from a live multi-threaded execution.
///
/// Lifecycle: register locks/sites up front, register each thread from
/// the thread itself, feed events through the on* hooks (normally via
/// runtime/Instrument.h wrappers), then call finish() after all
/// recorded threads have joined.
class Recorder {
public:
  Recorder();

  /// Registers a lock; thread-safe.
  LockId registerLock(std::string Name, bool IsSpin = false);

  /// Registers a condition variable; condvars share the lock table
  /// (CondWait/CondSignal events reference them by LockId).
  LockId registerCondition(std::string Name);

  /// Registers (or re-finds) a code site; thread-safe, deduplicated.
  CodeSiteId registerSite(std::string File, std::string Function,
                          uint32_t BeginLine, uint32_t EndLine);

  /// Registers the calling thread and returns its id.
  ThreadId registerThread();

  /// Hook: the thread is about to contend for \p Lock.  Computation
  /// since the previous event is captured; waiting starts now.
  void onAcquireStart(ThreadId T);

  /// Hook: the thread now holds \p Lock (call with the lock held).
  /// The wait since onAcquireStart is *not* recorded as computation.
  void onAcquired(ThreadId T, LockId Lock, CodeSiteId Site);

  /// Hook: the thread now holds \p Lock as an rwlock reader (call with
  /// the lock held); opens an AcquireMode::Shared section.
  void onRwAcquiredRead(ThreadId T, LockId Lock, CodeSiteId Site);

  /// Hook: the thread now holds \p Lock as an rwlock writer.
  void onRwAcquiredWrite(ThreadId T, LockId Lock, CodeSiteId Site);

  /// Hook: a trylock attempt on \p Lock just returned \p Succeeded.
  /// Trylocks never wait, so there is no onAcquireStart counterpart; a
  /// successful try opens a section like the blocking acquire, a
  /// failed one records only the contention witness.
  void onTryAcquire(ThreadId T, LockId Lock, CodeSiteId Site,
                    bool Succeeded,
                    AcquireMode Mode = AcquireMode::Exclusive);

  /// Hook: the thread released \p Lock (call right after unlocking).
  void onRelease(ThreadId T, LockId Lock);

  /// Hook: the thread is about to sleep on condvar \p Cond (emit while
  /// the protecting critical section is still open, so the ordering
  /// edge attaches to the section that decided to sleep).
  void onCondWait(ThreadId T, LockId Cond, CodeSiteId Site);

  /// Hook: the thread signaled / broadcast condvar \p Cond.
  void onCondSignal(ThreadId T, LockId Cond);
  void onCondBroadcast(ThreadId T, LockId Cond);

  /// Hook: shared read of \p Addr observing \p Value.
  void onRead(ThreadId T, AddrId Addr, uint64_t Value);

  /// Hook: shared write.
  void onWrite(ThreadId T, AddrId Addr, uint64_t Value, WriteOpKind Op);

  /// Marks a named checkpoint for repeated local debugging
  /// (Section 5.1); checkpoints live beside the trace, not in it.
  void checkpoint(ThreadId T, std::string Name);

  /// A recorded checkpoint.
  struct Checkpoint {
    ThreadId Thread;
    std::string Name;
    /// Index of the next event of that thread at checkpoint time.
    size_t EventIndex;
  };

  /// Snapshot of the checkpoints recorded so far; thread-safe.
  std::vector<Checkpoint> checkpoints() const EXCLUDES(Registry);

  /// Finalizes and returns the trace.  All recorded threads must have
  /// finished issuing events.  The recorder must not be reused.
  Trace finish() EXCLUDES(Registry);

private:
  using Clock = std::chrono::steady_clock;

  /// One thread's event log.  Owned by the registry but — by design —
  /// written without it: after registerThread hands out the id, every
  /// field is touched only by the owning thread (finish() reads them
  /// after all recorded threads joined, which is a happens-before
  /// edge).  Heap-allocated so the pointers stay stable while
  /// ThreadLogs itself grows under the Registry lock.
  struct PerThread {
    std::vector<Event> Events;
    Clock::time_point LastStamp;
    Clock::time_point WaitStart;
    bool Waiting = false;
  };

  /// Resolves \p T to its stable per-thread log.  Takes the Registry
  /// lock for the vector read only: concurrent registerThread calls
  /// may reallocate ThreadLogs' storage, so an unlocked index would be
  /// a data race on the vector's buffer (the pointed-to PerThread is
  /// the caller's own and needs no lock).
  PerThread &threadLog(ThreadId T) EXCLUDES(Registry);

  /// Emits the computation elapsed on \p Log's thread since its last
  /// event.  Caller must own \p Log (i.e. be its registered thread).
  void flushCompute(PerThread &Log, Clock::time_point Now);

  /// Shared tail of the acquired hooks: closes the wait (or flushes
  /// compute), logs \p E and appends to the grant order.
  void finishAcquire(ThreadId T, LockId Lock, const Event &E)
      EXCLUDES(Registry);

  /// Serializes registration, the grant log, checkpoints and
  /// finish().  Leaf lock; see the file comment for the hierarchy.
  mutable Mutex Registry;
  Trace Result GUARDED_BY(Registry);
  std::vector<PerThread *> ThreadLogs GUARDED_BY(Registry);
  /// Global grant order: (lock, thread) in acquisition order; per-CS
  /// indices are reconstructed in finish().
  std::vector<std::pair<LockId, ThreadId>> GrantLog GUARDED_BY(Registry);
  std::vector<Checkpoint> Marks GUARDED_BY(Registry);
  bool Finished GUARDED_BY(Registry) = false;
};

} // namespace perfplay

#endif // PERFPLAY_RUNTIME_RECORDER_H
