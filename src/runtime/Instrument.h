//===- runtime/Instrument.h - Instrumented sync primitives ------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drop-in synchronization primitives that record themselves: a mutex
/// wrapper, an RAII critical-section guard carrying the code site, and
/// a shared-variable wrapper that logs reads/writes with observed
/// values.  Together with runtime/Recorder.h these replace the paper's
/// Pin instrumentation for applications built against this library.
///
/// \code
///   Recorder R;
///   RecordingMutex Mu(R, "dbmp->mutex");
///   SharedVar<uint64_t> Ref(R, "dbmfp->ref");
///   // In each thread (Tid from R.registerThread()):
///   {
///     RecordedSection Guard(Mu, Tid,
///                           PERFPLAY_CODE_SITE(R, 120, 131));
///     if (Ref.load(Tid) == 1) { ... }
///   }
///   Trace Tr = R.finish();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_RUNTIME_INSTRUMENT_H
#define PERFPLAY_RUNTIME_INSTRUMENT_H

#include "runtime/Recorder.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace perfplay {

/// Registers (once) the code site spanning \p BeginLine-\p EndLine of
/// the current function.
#define PERFPLAY_CODE_SITE(RecorderRef, BeginLine, EndLine)                  \
  (RecorderRef).registerSite(__FILE__, __func__, (BeginLine), (EndLine))

/// A mutex that records its acquisitions and releases.  A full
/// capability to the thread-safety analysis, so application state in
/// recorded programs can be GUARDED_BY a RecordingMutex.
class CAPABILITY("mutex") RecordingMutex {
public:
  RecordingMutex(Recorder &R, std::string Name, bool IsSpin = false)
      : R(R), Id(R.registerLock(std::move(Name), IsSpin)) {}

  RecordingMutex(const RecordingMutex &) = delete;
  RecordingMutex &operator=(const RecordingMutex &) = delete;

  /// Acquires, recording wait separately from computation.
  void lock(ThreadId T, CodeSiteId Site = InvalidId) ACQUIRE() {
    R.onAcquireStart(T);
    Mu.lock();
    R.onAcquired(T, Id, Site);
  }

  /// Trylock: never waits, records the attempt either way (a failed
  /// try is a contention witness, a successful one opens a section).
  bool tryLock(ThreadId T, CodeSiteId Site = InvalidId) TRY_ACQUIRE(true) {
    bool Ok = Mu.try_lock();
    R.onTryAcquire(T, Id, Site, Ok, AcquireMode::Exclusive);
    return Ok;
  }

  /// Releases.
  void unlock(ThreadId T) RELEASE() {
    Mu.unlock();
    R.onRelease(T, Id);
  }

  LockId id() const { return Id; }

private:
  friend class RecordingCondition;
  Recorder &R;
  LockId Id;
  std::mutex Mu;
};

/// A reader/writer lock that records its acquisitions with their mode:
/// writer sections pair like plain mutex sections, reader sections open
/// in AcquireMode::Shared and reader-reader pairs are ULCP-free by the
/// detector's static rule.
class CAPABILITY("shared_mutex") RecordingSharedMutex {
public:
  RecordingSharedMutex(Recorder &R, std::string Name)
      : R(R), Id(R.registerLock(std::move(Name))) {}

  RecordingSharedMutex(const RecordingSharedMutex &) = delete;
  RecordingSharedMutex &operator=(const RecordingSharedMutex &) = delete;

  /// Writer acquire, recording wait separately from computation.
  void lock(ThreadId T, CodeSiteId Site = InvalidId) ACQUIRE() {
    R.onAcquireStart(T);
    Mu.lock();
    R.onRwAcquiredWrite(T, Id, Site);
  }

  void unlock(ThreadId T) RELEASE() {
    Mu.unlock();
    R.onRelease(T, Id);
  }

  /// Reader acquire (concurrent holders allowed).
  void lockShared(ThreadId T, CodeSiteId Site = InvalidId)
      ACQUIRE_SHARED() {
    R.onAcquireStart(T);
    Mu.lock_shared();
    R.onRwAcquiredRead(T, Id, Site);
  }

  void unlockShared(ThreadId T) RELEASE_SHARED() {
    Mu.unlock_shared();
    R.onRelease(T, Id);
  }

  bool tryLock(ThreadId T, CodeSiteId Site = InvalidId) TRY_ACQUIRE(true) {
    bool Ok = Mu.try_lock();
    R.onTryAcquire(T, Id, Site, Ok, AcquireMode::Exclusive);
    return Ok;
  }

  bool tryLockShared(ThreadId T, CodeSiteId Site = InvalidId)
      TRY_ACQUIRE_SHARED(true) {
    bool Ok = Mu.try_lock_shared();
    R.onTryAcquire(T, Id, Site, Ok, AcquireMode::Shared);
    return Ok;
  }

  LockId id() const { return Id; }

private:
  Recorder &R;
  LockId Id;
  std::shared_mutex Mu;
};

/// RAII critical section over a RecordingMutex.
class SCOPED_CAPABILITY RecordedSection {
public:
  RecordedSection(RecordingMutex &Mu, ThreadId T,
                  CodeSiteId Site = InvalidId) ACQUIRE(Mu)
      : Mu(Mu), T(T) {
    Mu.lock(T, Site);
  }
  ~RecordedSection() RELEASE() { Mu.unlock(T); }

  RecordedSection(const RecordedSection &) = delete;
  RecordedSection &operator=(const RecordedSection &) = delete;

private:
  RecordingMutex &Mu;
  ThreadId T;
};

/// RAII reader section over a RecordingSharedMutex.
class SCOPED_CAPABILITY RecordedReadSection {
public:
  RecordedReadSection(RecordingSharedMutex &Mu, ThreadId T,
                      CodeSiteId Site = InvalidId) ACQUIRE_SHARED(Mu)
      : Mu(Mu), T(T) {
    Mu.lockShared(T, Site);
  }
  ~RecordedReadSection() RELEASE_GENERIC() { Mu.unlockShared(T); }

  RecordedReadSection(const RecordedReadSection &) = delete;
  RecordedReadSection &operator=(const RecordedReadSection &) = delete;

private:
  RecordingSharedMutex &Mu;
  ThreadId T;
};

/// RAII writer section over a RecordingSharedMutex.
class SCOPED_CAPABILITY RecordedWriteSection {
public:
  RecordedWriteSection(RecordingSharedMutex &Mu, ThreadId T,
                       CodeSiteId Site = InvalidId) ACQUIRE(Mu)
      : Mu(Mu), T(T) {
    Mu.lock(T, Site);
  }
  ~RecordedWriteSection() RELEASE() { Mu.unlock(T); }

  RecordedWriteSection(const RecordedWriteSection &) = delete;
  RecordedWriteSection &operator=(const RecordedWriteSection &) = delete;

private:
  RecordingSharedMutex &Mu;
  ThreadId T;
};

/// A condition variable that records the lock dance of
/// pthread_cond_wait (Appendix Case 1): the wait releases the lock
/// (closing the critical section), sleeps without charging
/// computation, and re-acquires it (opening a fresh section — often a
/// null-lock, which is exactly the ULCP the paper's Case 1 describes).
class RecordingCondition {
public:
  /// Anonymous condvar: the lock dance is recorded, but no
  /// CondWait/CondSignal ordering events appear in the trace.
  RecordingCondition() = default;

  /// Named condvar registered in \p R's lock table: waits and signals
  /// additionally emit CondWait / CondSignal / CondBroadcast events,
  /// giving the detector the causal wait-signal ordering edge.
  RecordingCondition(Recorder &R, std::string Name)
      : Rec(&R), Id(R.registerCondition(std::move(Name))) {}

  /// Waits until \p Pred holds.  \p Mu must be held by \p T; on return
  /// it is held again and the trace shows release / re-acquire events.
  /// (The analysis models the wait as holding \p Mu throughout, like
  /// std::condition_variable; the transient release is internal.)
  template <typename Pred>
  void wait(RecordingMutex &Mu, ThreadId T, Pred P,
            CodeSiteId ReacquireSite = InvalidId) REQUIRES(Mu);

  void notifyOne() { Cv.notify_one(); }
  void notifyAll() { Cv.notify_all(); }

  /// Recorded variants: emit the signal event, then wake.
  void notifyOne(ThreadId T) {
    if (Rec)
      Rec->onCondSignal(T, Id);
    Cv.notify_one();
  }
  void notifyAll(ThreadId T) {
    if (Rec)
      Rec->onCondBroadcast(T, Id);
    Cv.notify_all();
  }

private:
  Recorder *Rec = nullptr;
  LockId Id = InvalidId;
  std::condition_variable_any Cv;
};

/// Allocates process-unique shadow addresses for shared variables.
AddrId allocateShadowAddr();

/// A shared variable whose accesses are recorded with observed values,
/// feeding the reversed-replay benign analysis.  \p T must be an
/// unsigned integral type convertible to uint64_t.
template <typename T> class SharedVar {
public:
  SharedVar(Recorder &R, std::string Name, T Init = T())
      : R(R), Name(std::move(Name)), Addr(allocateShadowAddr()),
        Value(Init) {}

  /// Recorded read.  Call with the protecting lock held.
  T load(ThreadId Tid) {
    T V = Value.load(std::memory_order_relaxed);
    R.onRead(Tid, Addr, static_cast<uint64_t>(V));
    return V;
  }

  /// Recorded store.  Call with the protecting lock held.
  void store(ThreadId Tid, T V) {
    Value.store(V, std::memory_order_relaxed);
    R.onWrite(Tid, Addr, static_cast<uint64_t>(V), WriteOpKind::Store);
  }

  /// Recorded fetch-add (commutative; reversed replay classifies
  /// add-add pairs as benign).
  T fetchAdd(ThreadId Tid, T Delta) {
    T Old = Value.fetch_add(Delta, std::memory_order_relaxed);
    R.onWrite(Tid, Addr, static_cast<uint64_t>(Delta), WriteOpKind::Add);
    return Old;
  }

  AddrId addr() const { return Addr; }
  const std::string &name() const { return Name; }

private:
  Recorder &R;
  std::string Name;
  AddrId Addr;
  std::atomic<T> Value;
};

template <typename Pred>
void RecordingCondition::wait(RecordingMutex &Mu, ThreadId T, Pred P,
                              CodeSiteId ReacquireSite) {
  // The ordering edge attaches to the section that decided to sleep,
  // so the wait event lands before the section closes.
  if (Rec)
    Rec->onCondWait(T, Id, ReacquireSite);
  // Trace view: the current critical section closes here...
  Mu.R.onRelease(T, Mu.Id);
  Mu.R.onAcquireStart(T); // ...and the sleep is waiting, not compute.
  {
    std::unique_lock<std::mutex> Guard(Mu.Mu, std::adopt_lock);
    Cv.wait(Guard, P);
    Guard.release(); // Keep the native mutex held past this scope.
  }
  // ...and a fresh section opens at wake-up (Case 1's second pair).
  Mu.R.onAcquired(T, Mu.Id, ReacquireSite);
}

} // namespace perfplay

#endif // PERFPLAY_RUNTIME_INSTRUMENT_H
