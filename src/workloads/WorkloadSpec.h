//===- workloads/WorkloadSpec.h - Synthetic workload model ------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized synthetic workload generation.  The paper evaluates
/// five real applications and PARSEC; we stand those in with workload
/// models that reproduce their *lock behavior*: how many locks, how
/// contended, and which ULCP pattern each lock's critical sections
/// exhibit (the Table 1 mixes).  A model is a set of lock groups; each
/// group owns locks whose sections follow one dominant pattern, with a
/// tunable fraction of truly conflicting sessions mixed in (those
/// become TLCPs and keep the causal structure realistic).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_WORKLOADS_WORKLOADSPEC_H
#define PERFPLAY_WORKLOADS_WORKLOADSPEC_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace perfplay {

/// Dominant behavior of a lock group's critical sections.
enum class GroupPatternKind : uint8_t {
  /// Sections touch no shared data (Figure 3's if-branch shape).
  NullLock,
  /// Sections only read the lock's shared pool (Figure 4 shape).
  ReadRead,
  /// Each thread updates its own location under the common lock
  /// (pointer-alias shape).
  DisjointWrite,
  /// Sections perform commutative updates (redundant/accumulating
  /// writes) — conflicting but benign.
  Benign,
  /// Sections read-modify-write the same location: true contention.
  TrueConflict,
  /// Each lock is used by a single thread (no cross-thread pairs);
  /// models thread-local locking that inflates the dynamic lock count
  /// without producing ULCPs.
  Private,
  /// Reader/writer sections on an rwlock: most sessions take the lock
  /// shared and scan the pool (reader-reader pairs are ULCP-free by
  /// the static rule); WriterFrac of them take it exclusive and
  /// update the pool head, truly conflicting with the readers.
  RwLock,
  /// Trylock-based sections: TryFailFrac of the attempts fail — a
  /// contention witness with no section — and the rest open a short
  /// read-only section.
  Trylock,
  /// Condvar hand-off: thread 0's sections publish and signal the
  /// group's per-lock condvar, other threads' sections wait before
  /// consuming — wait/signal pairs are causally ordered, so the
  /// detector must never call them benign.
  CondVar,
};

/// One group of locks sharing a behavior.
struct LockGroup {
  std::string Name;
  GroupPatternKind Pattern = GroupPatternKind::ReadRead;
  unsigned NumLocks = 1;
  /// Critical sections per thread per lock (scaled by InputScale).
  unsigned SessionsPerThread = 4;
  /// Fraction of sessions that truly conflict regardless of Pattern.
  double ConflictFrac = 0.0;
  /// Computation inside a section, uniform in [Min, Max] virtual ns.
  TimeNs CsCostMin = 200;
  TimeNs CsCostMax = 800;
  /// Computation between sections.
  TimeNs GapCostMin = 500;
  TimeNs GapCostMax = 3000;
  /// Shared accesses per section (pattern-dependent shape).
  unsigned AccessesPerCs = 2;
  /// Spin locks burn CPU while waiting (resource wasting).
  bool IsSpin = false;
  /// Distinct code sites the group's sections come from.
  unsigned SitesPerGroup = 2;
  /// RwLock pattern: fraction of sessions that take the lock exclusive.
  double WriterFrac = 0.25;
  /// Trylock pattern: fraction of attempts that fail.
  double TryFailFrac = 0.3;
  /// Fixed-input semantics (PARSEC): the group's total work is divided
  /// across threads, so SessionsPerThread (calibrated at two threads)
  /// scales by 2/NumThreads.  Server-style groups keep it constant
  /// (more threads serve more requests).
  bool DivideAcrossThreads = false;
};

/// A complete application model.
struct WorkloadSpec {
  std::string Name;
  unsigned NumThreads = 2;
  /// Scales every group's SessionsPerThread (PARSEC simsmall = 0.25,
  /// simmedium = 0.5, simlarge = 1.0).
  double InputScale = 1.0;
  /// Per-thread serial startup computation (virtual ns), independent of
  /// the input size — initialization that does not scale with input.
  TimeNs StartupCost = 0;
  uint64_t Seed = 12345;
  std::vector<LockGroup> Groups;
};

/// Generates the trace of one run of \p Spec.  The result has no grant
/// schedule yet; the pipeline's recording step installs one.
Trace generateWorkload(const WorkloadSpec &Spec);

} // namespace perfplay

#endif // PERFPLAY_WORKLOADS_WORKLOADSPEC_H
