//===- workloads/CaseStudies.cpp - Section 6.6 case studies ----------------===//

#include "workloads/CaseStudies.h"

#include "support/Rng.h"
#include "trace/TraceBuilder.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace perfplay;

static unsigned scaledCount(unsigned Base, double Scale) {
  unsigned N =
      static_cast<unsigned>(std::llround(static_cast<double>(Base) * Scale));
  return std::max(N, 1u);
}

//===----------------------------------------------------------------------===//
// #BUG1: openldap spin-wait (Figure 4)
//===----------------------------------------------------------------------===//

namespace {

/// Shared shadow addresses of the openldap model.
enum OpenldapAddr : AddrId { RefAddr = 11 };

} // namespace

Trace perfplay::makeOpenldapSpinWait(const CaseStudyParams &P) {
  assert(P.NumThreads >= 2 && "need workers plus the critical thread");
  TraceBuilder B;
  LockId Mu = B.addLock("dbmp->mutex", /*IsSpin=*/true);
  CodeSiteId SpinSite =
      B.addSite("mp/mp_fopen.c", "mpf_close_busyloop", 120, 131);
  CodeSiteId ReleaseSite =
      B.addSite("mp/mp_fopen.c", "mpf_close_release", 140, 148);

  // The critical thread's slow section is a fixed duration; workers
  // spin roughly that long regardless of thread count, which is why
  // Figure 19(a) shows flat per-thread waste for this bug.
  const TimeNs CriticalWork = 50000;
  const unsigned SpinIters = 24;
  const TimeNs PreWork = static_cast<TimeNs>(20000 * P.InputScale);

  std::vector<ThreadId> Threads;
  for (unsigned T = 0; T != P.NumThreads; ++T)
    Threads.push_back(B.addThread());

  // Workers 0..N-2 spin-poll dbmfp->ref; thread N-1 is the critical
  // reference holder.  The poll holds the mutex only for the check
  // (test-and-test style), so the waste is the polling itself, which
  // is a fixed amount per thread regardless of the thread count.
  for (unsigned T = 0; T + 1 != P.NumThreads; ++T) {
    Rng R(P.Seed ^ (T * 7919));
    B.compute(Threads[T], PreWork + R.nextInRange(0, 400));
    for (unsigned I = 0; I != SpinIters; ++I) {
      B.beginCs(Threads[T], Mu, SpinSite);
      B.read(Threads[T], RefAddr, /*Value=*/0); // ref not yet released
      B.compute(Threads[T], R.nextInRange(30, 60));
      B.endCs(Threads[T]);
      B.compute(Threads[T], R.nextInRange(1800, 2400));
    }
    // Final poll observes the released reference and exits the loop.
    B.beginCs(Threads[T], Mu, SpinSite);
    B.read(Threads[T], RefAddr, /*Value=*/1);
    B.compute(Threads[T], 45);
    B.endCs(Threads[T]);
    B.compute(Threads[T], 500);
  }

  ThreadId Critical = Threads[P.NumThreads - 1];
  B.compute(Critical, PreWork + CriticalWork);
  B.beginCs(Critical, Mu, ReleaseSite);
  B.write(Critical, RefAddr, 1, WriteOpKind::Store);
  B.compute(Critical, 200);
  B.endCs(Critical);
  B.compute(Critical, 500);
  return B.finish();
}

Trace perfplay::makeOpenldapSpinWaitFixed(const CaseStudyParams &P) {
  assert(P.NumThreads >= 2 && "need workers plus the critical thread");
  TraceBuilder B;
  // The fix replaces the polling loop with a barrier-style single
  // blocking wait: modeled as one (non-spin) lock the critical thread
  // holds for the duration of its work, so workers idle instead of
  // burning CPU.
  LockId Barrier = B.addLock("dbmp->barrier", /*IsSpin=*/false);
  CodeSiteId WaitSite =
      B.addSite("mp/mp_fopen.c", "mpf_close_barrier_wait", 120, 126);
  CodeSiteId ReleaseSite =
      B.addSite("mp/mp_fopen.c", "mpf_close_release", 140, 148);

  const TimeNs CriticalWork = 50000;
  const TimeNs PreWork = static_cast<TimeNs>(20000 * P.InputScale);

  std::vector<ThreadId> Threads;
  for (unsigned T = 0; T != P.NumThreads; ++T)
    Threads.push_back(B.addThread());

  // The critical thread grabs the barrier immediately (empty arrival
  // gap) and releases the reference at the end of its work.
  ThreadId Critical = Threads[P.NumThreads - 1];
  B.beginCs(Critical, Barrier, ReleaseSite);
  B.compute(Critical, PreWork + CriticalWork);
  B.write(Critical, RefAddr, 1, WriteOpKind::Store);
  B.endCs(Critical);
  B.compute(Critical, 500);

  for (unsigned T = 0; T + 1 != P.NumThreads; ++T) {
    Rng R(P.Seed ^ (T * 7919));
    B.compute(Threads[T], PreWork + R.nextInRange(100, 400));
    B.beginCs(Threads[T], Barrier, WaitSite);
    B.read(Threads[T], RefAddr, /*Value=*/1);
    B.compute(Threads[T], 180);
    B.endCs(Threads[T]);
    B.compute(Threads[T], 500);
  }
  return B.finish();
}

//===----------------------------------------------------------------------===//
// #BUG2: pbzip2 consumer shutdown polling (Figure 18)
//===----------------------------------------------------------------------===//

namespace {

enum Pbzip2Addr : AddrId {
  FifoEmptyAddr = 21,
  ProducerDoneAddr = 22,
  QueueHeadAddr = 23,
};

} // namespace

Trace perfplay::makePbzip2Consumer(const CaseStudyParams &P) {
  assert(P.NumThreads >= 2 && "need a producer plus consumers");
  TraceBuilder B;
  LockId Mu = B.addLock("mu");
  LockId MuDone = B.addLock("muDone");
  CodeSiteId ConsumerSite = B.addSite("pbzip2.cpp", "consumer", 2109, 2124);
  CodeSiteId SyncSite =
      B.addSite("pbzip2.cpp", "syncGetProducerDone", 533, 538);
  CodeSiteId DequeueSite = B.addSite("pbzip2.cpp", "consumer", 2130, 2140);
  CodeSiteId ProducerSite = B.addSite("pbzip2.cpp", "producer", 1980, 1995);

  const unsigned Blocks = scaledCount(16, P.InputScale);
  const unsigned PollIters = 10; // Fixed shutdown-poll frequency.
  unsigned NumConsumers = P.NumThreads - 1;
  unsigned BlocksPerConsumer = std::max(Blocks / NumConsumers, 1u);

  std::vector<ThreadId> Threads;
  for (unsigned T = 0; T != P.NumThreads; ++T)
    Threads.push_back(B.addThread());

  // Producer: reads the file and enqueues blocks, then flags done.
  ThreadId Producer = Threads[0];
  Rng PR(P.Seed);
  for (unsigned I = 0; I != Blocks; ++I) {
    B.compute(Producer, PR.nextInRange(400, 800)); // Read a block.
    B.beginCs(Producer, Mu, ProducerSite);
    B.write(Producer, FifoEmptyAddr, 0, WriteOpKind::Store);
    B.write(Producer, QueueHeadAddr, I + 1, WriteOpKind::Store);
    B.compute(Producer, 150);
    B.endCs(Producer);
  }
  B.beginCs(Producer, MuDone, ProducerSite);
  B.write(Producer, ProducerDoneAddr, 1, WriteOpKind::Store);
  B.endCs(Producer);
  B.compute(Producer, 500);

  // Consumers: dequeue + compress, then the buggy shutdown poll with
  // nested mu/muDone read-read sections.
  for (unsigned C = 0; C != NumConsumers; ++C) {
    ThreadId T = Threads[C + 1];
    Rng R(P.Seed ^ ((C + 1) * 104729));
    for (unsigned I = 0; I != BlocksPerConsumer; ++I) {
      B.beginCs(T, Mu, DequeueSite);
      B.read(T, QueueHeadAddr, I + 1);
      B.write(T, QueueHeadAddr, I, WriteOpKind::Store);
      B.compute(T, 150);
      B.endCs(T);
      B.compute(T, R.nextInRange(2000, 4000)); // Compress the block.
    }
    for (unsigned I = 0; I != PollIters; ++I) {
      B.beginCs(T, Mu, ConsumerSite);
      B.read(T, FifoEmptyAddr, 1);
      B.beginCs(T, MuDone, SyncSite);
      B.read(T, ProducerDoneAddr, 0);
      B.endCs(T);
      B.compute(T, 120);
      B.endCs(T);
      B.compute(T, R.nextInRange(100, 250));
    }
    // Final poll sees producerDone and joins.
    B.beginCs(T, Mu, ConsumerSite);
    B.read(T, FifoEmptyAddr, 1);
    B.beginCs(T, MuDone, SyncSite);
    B.read(T, ProducerDoneAddr, 1);
    B.endCs(T);
    B.endCs(T);
    B.compute(T, 400);
  }
  return B.finish();
}

Trace perfplay::makePbzip2ConsumerFixed(const CaseStudyParams &P) {
  assert(P.NumThreads >= 2 && "need a producer plus consumers");
  TraceBuilder B;
  LockId Mu = B.addLock("mu");
  LockId MuDone = B.addLock("muDone");
  CodeSiteId WaitSite =
      B.addSite("pbzip2.cpp", "consumer_wait_signal", 2109, 2115);
  CodeSiteId DequeueSite = B.addSite("pbzip2.cpp", "consumer", 2130, 2140);
  CodeSiteId ProducerSite = B.addSite("pbzip2.cpp", "producer", 1980, 1995);

  const unsigned Blocks = scaledCount(16, P.InputScale);
  unsigned NumConsumers = P.NumThreads - 1;
  unsigned BlocksPerConsumer = std::max(Blocks / NumConsumers, 1u);

  std::vector<ThreadId> Threads;
  for (unsigned T = 0; T != P.NumThreads; ++T)
    Threads.push_back(B.addThread());

  ThreadId Producer = Threads[0];
  Rng PR(P.Seed);
  for (unsigned I = 0; I != Blocks; ++I) {
    B.compute(Producer, PR.nextInRange(400, 800));
    B.beginCs(Producer, Mu, ProducerSite);
    B.write(Producer, FifoEmptyAddr, 0, WriteOpKind::Store);
    B.write(Producer, QueueHeadAddr, I + 1, WriteOpKind::Store);
    B.compute(Producer, 150);
    B.endCs(Producer);
  }
  // With the signal/wait fix the producer flags completion once; the
  // consumers never poll.
  B.beginCs(Producer, MuDone, ProducerSite);
  B.write(Producer, ProducerDoneAddr, 1, WriteOpKind::Store);
  B.endCs(Producer);
  B.compute(Producer, 500);

  for (unsigned C = 0; C != NumConsumers; ++C) {
    ThreadId T = Threads[C + 1];
    Rng R(P.Seed ^ ((C + 1) * 104729));
    for (unsigned I = 0; I != BlocksPerConsumer; ++I) {
      B.beginCs(T, Mu, DequeueSite);
      B.read(T, QueueHeadAddr, I + 1);
      B.write(T, QueueHeadAddr, I, WriteOpKind::Store);
      B.compute(T, 150);
      B.endCs(T);
      B.compute(T, R.nextInRange(2000, 4000));
    }
    // One signaled wake-up instead of the polling loop.
    B.beginCs(T, MuDone, WaitSite);
    B.read(T, ProducerDoneAddr, 1);
    B.endCs(T);
    B.compute(T, 400);
  }
  return B.finish();
}

//===----------------------------------------------------------------------===//
// MySQL bug #68573: query-cache timed lock (Figure 17)
//===----------------------------------------------------------------------===//

namespace {

enum MysqlAddr : AddrId { CacheStatusAddr = 31 };

} // namespace

Trace perfplay::makeMysqlQueryCache(const CaseStudyParams &P) {
  assert(P.NumThreads >= 1 && "need at least one session thread");
  TraceBuilder B;
  LockId Guard = B.addLock("structure_guard_mutex");
  CodeSiteId TryLockSite =
      B.addSite("sql_cache.cc", "Query_cache::try_lock", 458, 476);

  // The designed 50ms SELECT timeout, scaled into model units; each
  // session holds the guard across its wait slices, so concurrent
  // sessions serialize and the effective timeout inflates.
  const TimeNs TimeoutSlice = 5000;
  const unsigned Slices = 10;
  const unsigned Sessions = scaledCount(6, P.InputScale);

  for (unsigned T = 0; T != P.NumThreads; ++T) {
    ThreadId Tid = B.addThread();
    Rng R(P.Seed ^ (T * 31337));
    for (unsigned S = 0; S != Sessions; ++S) {
      B.compute(Tid, R.nextInRange(1000, 3000)); // Parse the SELECT.
      B.beginCs(Tid, Guard, TryLockSite);
      for (unsigned I = 0; I != Slices; ++I) {
        B.read(Tid, CacheStatusAddr, 0);
        B.compute(Tid, TimeoutSlice);
      }
      B.endCs(Tid);
      B.compute(Tid, R.nextInRange(2000, 5000)); // Run uncached.
    }
  }
  return B.finish();
}

Trace perfplay::makeMysqlQueryCacheFixed(const CaseStudyParams &P) {
  assert(P.NumThreads >= 1 && "need at least one session thread");
  TraceBuilder B;
  LockId Guard = B.addLock("structure_guard_mutex");
  CodeSiteId TryLockSite =
      B.addSite("sql_cache.cc", "Query_cache::try_lock_fixed", 458, 470);

  const TimeNs TimeoutSlice = 5000;
  const unsigned Slices = 10;
  const unsigned Sessions = scaledCount(6, P.InputScale);

  for (unsigned T = 0; T != P.NumThreads; ++T) {
    ThreadId Tid = B.addThread();
    Rng R(P.Seed ^ (T * 31337));
    for (unsigned S = 0; S != Sessions; ++S) {
      B.compute(Tid, R.nextInRange(1000, 3000));
      // The fixed code waits out the timeout without the guard and
      // takes it only for the status check.
      B.compute(Tid, TimeoutSlice * Slices);
      B.beginCs(Tid, Guard, TryLockSite);
      B.read(Tid, CacheStatusAddr, 0);
      B.compute(Tid, 200);
      B.endCs(Tid);
      B.compute(Tid, R.nextInRange(2000, 5000));
    }
  }
  return B.finish();
}
