//===- workloads/Apps.cpp - The paper's application models -----------------===//
//
// Calibration notes: per-lock all-cross-thread pairs with two threads
// and S sessions/thread are ~S^2, so a group of L locks contributes
// ~L*S^2 pairs of its pattern and 2*S*L dynamic acquisitions.  Targets
// below are Table 1 rows divided by ~8.
//
//===----------------------------------------------------------------------===//

#include "workloads/Apps.h"

using namespace perfplay;

namespace {

/// Shorthand builder for one group.
LockGroup group(const char *Name, GroupPatternKind Pattern,
                unsigned NumLocks, unsigned Sessions, TimeNs CsLo,
                TimeNs CsHi, TimeNs GapLo, TimeNs GapHi,
                double ConflictFrac = 0.0, bool IsSpin = false,
                unsigned Sites = 2) {
  LockGroup G;
  G.Name = Name;
  G.Pattern = Pattern;
  G.NumLocks = NumLocks;
  G.SessionsPerThread = Sessions;
  G.CsCostMin = CsLo;
  G.CsCostMax = CsHi;
  G.GapCostMin = GapLo;
  G.GapCostMax = GapHi;
  G.ConflictFrac = ConflictFrac;
  G.IsSpin = IsSpin;
  G.SitesPerGroup = Sites;
  return G;
}

WorkloadSpec spec(const char *Name, unsigned Threads, double Scale,
                  uint64_t Seed, std::vector<LockGroup> Groups,
                  bool FixedInput = false, TimeNs Startup = 0) {
  WorkloadSpec S;
  S.Name = Name;
  S.NumThreads = Threads;
  S.InputScale = Scale;
  S.Seed = Seed;
  S.Groups = std::move(Groups);
  // Fixed-input applications (PARSEC) divide their data-parallel work
  // across threads; the synchronization code (the ULCP pattern groups)
  // still runs per thread.
  if (FixedInput)
    for (LockGroup &G : S.Groups)
      if (G.Pattern == GroupPatternKind::Private ||
          G.Pattern == GroupPatternKind::TrueConflict)
        G.DivideAcrossThreads = true;
  // Serial initialization (input loading, structure setup) that does
  // not scale with the input size.
  S.StartupCost = Startup;
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Real-world programs
//===----------------------------------------------------------------------===//

// Table 1 row (scaled /8): 231 locks; NL 9, RR 177, DW 59, Benign 2.
// The dbmfp->ref spin-wait of Figure 4 dominates: read-read sections
// on spin locks with short bodies and short gaps (heavy overlap).
WorkloadSpec perfplay::makeOpenldap(unsigned Threads, double Scale) {
  return spec("openldap", Threads, Scale, 1001, {
      group("ref_spinwait", GroupPatternKind::ReadRead, 1, 13, 300, 700,
            80, 240, 0.06, /*IsSpin=*/true),
      group("cache_update", GroupPatternKind::DisjointWrite, 1, 8, 300,
            900, 400, 1200, 0.05),
      group("cfg_nulllock", GroupPatternKind::NullLock, 1, 3, 80, 200,
            1000, 3000),
      group("stat_counter", GroupPatternKind::Benign, 2, 1, 100, 300,
            1500, 4000),
      group("conn_table", GroupPatternKind::TrueConflict, 2, 4, 400,
            1000, 1200, 3500),
      group("worker_local", GroupPatternKind::Private, 12, 4, 200, 600,
            900, 2500),
  });
}

// Table 1 row (scaled /8): 264 locks; NL 16, RR 1228, DW 366, Benign
// 24.  The query-cache / fil_system mutexes of the case studies: many
// read-read lookups per lock (Case 2/8 shapes).
WorkloadSpec perfplay::makeMysql(unsigned Threads, double Scale) {
  return spec("mysql", Threads, Scale, 1002, {
      group("fil_space_lookup", GroupPatternKind::ReadRead, 2, 25, 250,
            700, 100, 300, 0.04, /*IsSpin=*/true),
      group("thd_data", GroupPatternKind::DisjointWrite, 1, 19, 300, 800,
            400, 1100, 0.05),
      group("query_cache_null", GroupPatternKind::NullLock, 1, 4, 100,
            250, 900, 2500),
      group("status_counter", GroupPatternKind::Benign, 1, 5, 150, 400,
            1200, 3000),
      group("trx_sys", GroupPatternKind::TrueConflict, 3, 4, 500, 1400,
            1000, 3000),
      group("session_local", GroupPatternKind::Private, 10, 4, 250, 700,
            900, 2400),
  });
}

// Table 1 row (scaled /8): 160 locks; NL 0, RR 131, DW 105, Benign 6.
// The consumer queue checks of Figure 18 (fifo->empty/producerDone):
// read-read on the queue mutexes, disjoint writes on block slots.
WorkloadSpec perfplay::makePbzip2(unsigned Threads, double Scale) {
  return spec("pbzip2", Threads, Scale, 1003, {
      group("fifo_check", GroupPatternKind::ReadRead, 1, 11, 200, 600,
            60, 200, 0.08, /*IsSpin=*/true),
      group("block_slot", GroupPatternKind::DisjointWrite, 1, 10, 400,
            1200, 400, 1200, 0.05),
      group("progress", GroupPatternKind::Benign, 1, 2, 100, 300, 1500,
            3500),
      group("queue_head", GroupPatternKind::TrueConflict, 1, 6, 300, 900,
            600, 1800),
      group("worker_local", GroupPatternKind::Private, 6, 4, 300, 800,
            800, 2000),
  });
}

// Table 1 row (scaled /8): 44 locks; NL 2, RR 14, DW 15, Benign 4.
WorkloadSpec perfplay::makeTransmissionBT(unsigned Threads, double Scale) {
  return spec("transmissionBT", Threads, Scale, 1004, {
      group("peer_list", GroupPatternKind::ReadRead, 1, 4, 300, 900,
            1500, 4000, 0.05),
      group("piece_state", GroupPatternKind::DisjointWrite, 1, 4, 350,
            1000, 1400, 3800, 0.05),
      group("cfg_nulllock", GroupPatternKind::NullLock, 2, 1, 100, 250,
            2000, 5000),
      group("rate_counter", GroupPatternKind::Benign, 1, 2, 150, 400,
            1800, 4200),
      group("session_local", GroupPatternKind::Private, 4, 3, 250, 700,
            1200, 3000),
  });
}

// Table 1 row (scaled /8): 2290 locks; NL 1, RR 192, DW 143, Benign 24.
// A transcoder: very lock-intensive but mostly thread-local buffers.
WorkloadSpec perfplay::makeHandbrake(unsigned Threads, double Scale) {
  return spec("handbrake", Threads, Scale, 1005, {
      group("frame_meta", GroupPatternKind::ReadRead, 2, 10, 200, 600,
            300, 900, 0.04),
      group("fifo_slot", GroupPatternKind::DisjointWrite, 1, 12, 250, 750,
            350, 1000, 0.04),
      group("eof_flag", GroupPatternKind::NullLock, 1, 1, 80, 200, 2000,
            5000),
      group("fps_counter", GroupPatternKind::Benign, 1, 5, 120, 350,
            1200, 3000),
      group("codec_state", GroupPatternKind::TrueConflict, 3, 4, 400,
            1100, 900, 2600),
      group("work_object", GroupPatternKind::Private, 450, 4, 200, 600,
            500, 1500),
  });
}

//===----------------------------------------------------------------------===//
// PARSEC benchmarks
//===----------------------------------------------------------------------===//

// Table 1 row: 0 locks, 0 ULCPs — pure data-parallel computation.
WorkloadSpec perfplay::makeBlackscholes(unsigned Threads, double Scale) {
  return spec("blackscholes", Threads, Scale, 0xb1a5606, {},
              /*FixedInput=*/true, /*Startup=*/100000);
}

// Table 1 row (scaled /8): 4080 locks; NL 0, RR 165, DW 40, Benign 5.
WorkloadSpec perfplay::makeBodytrack(unsigned Threads, double Scale) {
  return spec("bodytrack", Threads, Scale, 0xb0d7707, {
      group("pool_state", GroupPatternKind::ReadRead, 2, 9, 180, 550,
            250, 800, 0.05),
      group("particle_slot", GroupPatternKind::DisjointWrite, 1, 6, 220,
            650, 300, 900, 0.04),
      group("step_counter", GroupPatternKind::Benign, 1, 2, 100, 300,
            1500, 3500),
      group("tick_queue", GroupPatternKind::TrueConflict, 4, 4, 350, 950,
            800, 2200),
      group("pose_buffer", GroupPatternKind::TrueConflict, 150, 4, 120,
            260, 100, 240),
      group("worker_local", GroupPatternKind::Private, 250, 4, 150, 450,
            400, 1200),
  },
              /*FixedInput=*/true, /*Startup=*/200000);
}

// Table 1 row (scaled /8): 4 locks; no ULCPs — correct exclusive use.
WorkloadSpec perfplay::makeCanneal(unsigned Threads, double Scale) {
  return spec("canneal", Threads, Scale, 0xca9e808, {
      group("element_swap", GroupPatternKind::TrueConflict, 1, 2, 500,
            1400, 2000, 5000),
  },
              /*FixedInput=*/true, /*Startup=*/100000);
}

// Table 1 row (scaled /8): 2419 locks; NL 29, RR 303, DW 244, Benign 21.
WorkloadSpec perfplay::makeDedup(unsigned Threads, double Scale) {
  return spec("dedup", Threads, Scale, 0xdedb909, {
      group("hash_bucket_rd", GroupPatternKind::ReadRead, 2, 12, 200,
            600, 90, 280, 0.05),
      group("chunk_slot", GroupPatternKind::DisjointWrite, 2, 11, 250,
            750, 300, 900, 0.05),
      group("queue_empty", GroupPatternKind::NullLock, 2, 4, 80, 200,
            800, 2200),
      group("dedupe_counter", GroupPatternKind::Benign, 1, 5, 120, 350,
            1000, 2600),
      group("anchor_state", GroupPatternKind::TrueConflict, 4, 4, 350,
            950, 700, 2000),
      group("refcount", GroupPatternKind::TrueConflict, 200, 4, 120,
            260, 100, 240),
      group("stage_local", GroupPatternKind::Private, 200, 4, 180, 550,
            400, 1300),
  },
              /*FixedInput=*/true, /*Startup=*/250000);
}

// Table 1 row (scaled /8): 1818 locks; NL 13, RR 109, DW 102, Benign 2.
// Facesim's ULCPs wrap *large* critical sections (Section 6.3 explains
// its speedup exceeds fluidanimate's despite fewer ULCPs).
WorkloadSpec perfplay::makeFacesim(unsigned Threads, double Scale) {
  return spec("facesim", Threads, Scale, 0xface010, {
      group("mesh_read", GroupPatternKind::ReadRead, 1, 10, 3000, 9000,
            1500, 4500, 0.05),
      group("node_update", GroupPatternKind::DisjointWrite, 1, 10, 2500,
            8000, 1800, 5000, 0.04),
      group("frame_flag", GroupPatternKind::NullLock, 1, 4, 150, 400,
            3000, 8000),
      group("solver_counter", GroupPatternKind::Benign, 2, 1, 300, 800,
            4000, 9000),
      group("boundary_state", GroupPatternKind::TrueConflict, 3, 4, 2000,
            6000, 2500, 7000),
      group("mesh_lock", GroupPatternKind::TrueConflict, 200, 4, 150,
            300, 120, 280),
      group("partition_local", GroupPatternKind::Private, 150, 4, 400,
            1200, 1000, 3000),
  },
              /*FixedInput=*/true, /*Startup=*/350000);
}

// Table 1 row (scaled /8): 779 locks; NL 1, RR 13, DW 29, Benign 43.
// Ferret is the one application where benign pairs dominate.
WorkloadSpec perfplay::makeFerret(unsigned Threads, double Scale) {
  return spec("ferret", Threads, Scale, 0xfe77e011, {
      group("index_read", GroupPatternKind::ReadRead, 1, 4, 250, 700,
            900, 2400, 0.05),
      group("rank_slot", GroupPatternKind::DisjointWrite, 2, 4, 300, 850,
            800, 2200, 0.05),
      group("eof_flag", GroupPatternKind::NullLock, 1, 1, 80, 200, 2000,
            5000),
      group("cand_counter", GroupPatternKind::Benign, 3, 4, 200, 550,
            700, 1900),
      group("queue_state", GroupPatternKind::TrueConflict, 3, 4, 350,
            950, 700, 2000),
      group("queue_lock", GroupPatternKind::TrueConflict, 120, 4, 120,
            260, 100, 240),
      group("stage_local", GroupPatternKind::Private, 50, 4, 200, 600,
            500, 1500),
  },
              /*FixedInput=*/true, /*Startup=*/120000);
}

// Table 1 row (scaled /8): 10268 locks; NL 0, RR 1313, DW 837, Benign
// 25.  The most lock-intensive PARSEC app: tiny per-cell spin locks.
WorkloadSpec perfplay::makeFluidanimate(unsigned Threads, double Scale) {
  return spec("fluidanimate", Threads, Scale, 0xf1d1a012, {
      group("cell_read", GroupPatternKind::ReadRead, 2, 26, 80, 250, 30,
            110, 0.04, /*IsSpin=*/true),
      group("cell_force", GroupPatternKind::DisjointWrite, 2, 20, 90,
            280, 35, 120, 0.04, /*IsSpin=*/true),
      group("density_acc", GroupPatternKind::Benign, 1, 5, 70, 200, 200,
            700, 0.0, /*IsSpin=*/true),
      group("border_cell", GroupPatternKind::TrueConflict, 6, 6, 120,
            350, 200, 800, 0.0, /*IsSpin=*/true),
      group("cell_lock", GroupPatternKind::TrueConflict, 300, 4, 80,
            180, 60, 160, 0.0, /*IsSpin=*/true),
      group("grid_local", GroupPatternKind::Private, 400, 4, 60, 180,
            120, 400),
  },
              /*FixedInput=*/true, /*Startup=*/200000);
}

// Table 1 row (scaled /8): 24 locks; no ULCPs.
WorkloadSpec perfplay::makeStreamcluster(unsigned Threads, double Scale) {
  return spec("streamcluster", Threads, Scale, 0x57c1013, {
      group("center_update", GroupPatternKind::TrueConflict, 2, 3, 600,
            1600, 2500, 6000),
      group("bar_lock", GroupPatternKind::TrueConflict, 8, 2, 200,
            500, 300, 900),
      group("thread_local", GroupPatternKind::Private, 4, 2, 300, 800,
            1500, 4000),
  },
              /*FixedInput=*/true, /*Startup=*/30000);
}

// Table 1 row (scaled /8): 3 locks; no ULCPs.
WorkloadSpec perfplay::makeSwaptions(unsigned Threads, double Scale) {
  return spec("swaptions", Threads, Scale, 0x5a9014, {
      group("result_slot", GroupPatternKind::TrueConflict, 1, 1, 800,
            2000, 4000, 9000),
  },
              /*FixedInput=*/true, /*Startup=*/10000);
}

// Table 1 row (scaled /8): 4198 locks; NL 18, RR 564, DW 143, Benign 3.
WorkloadSpec perfplay::makeVips(unsigned Threads, double Scale) {
  return spec("vips", Threads, Scale, 1015, {
      group("region_read", GroupPatternKind::ReadRead, 2, 17, 180, 550,
            90, 280, 0.04),
      group("tile_slot", GroupPatternKind::DisjointWrite, 1, 12, 220, 650,
            300, 900, 0.04),
      group("eval_flag", GroupPatternKind::NullLock, 1, 4, 80, 200, 900,
            2500),
      group("progress_counter", GroupPatternKind::Benign, 3, 1, 120, 350,
            1500, 3800),
      group("cache_entry", GroupPatternKind::TrueConflict, 4, 4, 300,
            850, 600, 1800),
      group("buf_lock", GroupPatternKind::TrueConflict, 350, 4, 120,
            260, 100, 240),
      group("pipeline_local", GroupPatternKind::Private, 400, 4, 150,
            450, 300, 1000),
  },
              /*FixedInput=*/true, /*Startup=*/400000);
}

// Table 1 row (scaled /8): 2096 locks; NL 118, RR 480, DW 52, Benign
// 10.  x264 has by far the most null-locks (frame-availability checks).
WorkloadSpec perfplay::makeX264(unsigned Threads, double Scale) {
  return spec("x264", Threads, Scale, 0x264016, {
      group("frame_avail", GroupPatternKind::NullLock, 7, 4, 90, 250,
            400, 1300),
      group("ref_row_read", GroupPatternKind::ReadRead, 2, 16, 200, 600,
            90, 280, 0.05),
      group("mb_slot", GroupPatternKind::DisjointWrite, 1, 7, 250, 700,
            300, 900, 0.05),
      group("bitrate_counter", GroupPatternKind::Benign, 2, 2, 120, 350,
            1000, 2600),
      group("dpb_state", GroupPatternKind::TrueConflict, 4, 4, 350, 950,
            700, 2000),
      group("row_lock", GroupPatternKind::TrueConflict, 180, 4, 120,
            260, 100, 240),
      group("slice_local", GroupPatternKind::Private, 200, 4, 180, 550,
            400, 1300),
  },
              /*FixedInput=*/true, /*Startup=*/250000);
}

//===----------------------------------------------------------------------===//
// Synthetic corpora
//===----------------------------------------------------------------------===//

// Not a Table 1 application: a mix dominated by the extended event
// vocabulary.  Reader-heavy rwlock tables (the static shared-shared
// rule fires), trylock-guarded caches (failure edges), a condvar
// hand-off queue (causal wait/signal pairs), plus a plain read-read
// group and a true-conflict group as controls.
WorkloadSpec perfplay::makeRwMix(unsigned Threads, double Scale) {
  return spec("rwmix", Threads, Scale, 1017, {
      group("table_rw", GroupPatternKind::RwLock, 2, 16, 200, 600, 100,
            300, 0.04),
      group("cache_try", GroupPatternKind::Trylock, 2, 12, 150, 450,
            200, 600),
      group("queue_cv", GroupPatternKind::CondVar, 1, 6, 250, 700, 400,
            1200),
      group("meta_read", GroupPatternKind::ReadRead, 1, 8, 200, 600,
            300, 900, 0.05),
      group("state_mutex", GroupPatternKind::TrueConflict, 2, 4, 350,
            950, 700, 2000),
  });
}

//===----------------------------------------------------------------------===//
// Registries
//===----------------------------------------------------------------------===//

const std::vector<AppModel> &perfplay::realWorldApps() {
  static const std::vector<AppModel> Apps = {
      {"openldap", makeOpenldap},       {"mysql", makeMysql},
      {"pbzip2", makePbzip2},           {"transmissionBT",
                                         makeTransmissionBT},
      {"handbrake", makeHandbrake},
  };
  return Apps;
}

const std::vector<AppModel> &perfplay::parsecApps() {
  static const std::vector<AppModel> Apps = {
      {"blackscholes", makeBlackscholes},
      {"bodytrack", makeBodytrack},
      {"canneal", makeCanneal},
      {"dedup", makeDedup},
      {"facesim", makeFacesim},
      {"ferret", makeFerret},
      {"fluidanimate", makeFluidanimate},
      {"streamcluster", makeStreamcluster},
      {"swaptions", makeSwaptions},
      {"vips", makeVips},
      {"x264", makeX264},
  };
  return Apps;
}

const std::vector<AppModel> &perfplay::allApps() {
  static const std::vector<AppModel> Apps = [] {
    std::vector<AppModel> All = realWorldApps();
    const auto &Parsec = parsecApps();
    All.insert(All.end(), Parsec.begin(), Parsec.end());
    return All;
  }();
  return Apps;
}

const std::vector<AppModel> &perfplay::syntheticApps() {
  static const std::vector<AppModel> Apps = {
      {"rwmix", makeRwMix},
  };
  return Apps;
}
