//===- workloads/Generator.cpp - Synthetic workload generation -------------===//

#include "workloads/WorkloadSpec.h"

#include "support/Rng.h"
#include "trace/TraceBuilder.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace perfplay;

namespace {

/// Per-lock shadow address layout: each lock owns a 1 KiB-style block
/// of abstract addresses partitioned by role.
struct AddrLayout {
  static AddrId base(LockId L) { return (static_cast<AddrId>(L) + 1) << 10; }
  static AddrId readPool(LockId L, unsigned I) { return base(L) + I; }
  static AddrId disjointSlot(LockId L, ThreadId T) {
    return base(L) + 64 + T;
  }
  static AddrId benignCounter(LockId L) { return base(L) + 128; }
  static AddrId conflictCell(LockId L) { return base(L) + 192; }
  static AddrId privateCell(LockId L, ThreadId T) {
    return base(L) + 256 + T;
  }
};

/// One planned critical section.
struct Session {
  const LockGroup *Group = nullptr;
  LockId Lock = InvalidId;
  CodeSiteId Site = InvalidId;
  /// Per-lock condvar (CondVar pattern only).
  LockId Cond = InvalidId;
  bool Conflicting = false;
  /// RwLock pattern: this session takes the lock exclusive.
  bool Writer = false;
  /// Trylock pattern: this attempt fails.
  bool TryFail = false;
};

} // namespace

static unsigned scaledSessions(const LockGroup &G, double Scale,
                               unsigned NumThreads) {
  if (G.SessionsPerThread == 0 || Scale <= 0.0)
    return 0;
  double Scaled = static_cast<double>(G.SessionsPerThread) * Scale;
  if (G.DivideAcrossThreads && NumThreads > 0)
    Scaled = Scaled * 2.0 / static_cast<double>(NumThreads);
  unsigned N = static_cast<unsigned>(std::llround(Scaled));
  return std::max(N, 1u);
}

static TimeNs uniformCost(Rng &R, TimeNs Min, TimeNs Max) {
  if (Min >= Max)
    return Min;
  return R.nextInRange(Min, Max);
}

static void emitBody(TraceBuilder &B, Rng &R, ThreadId T,
                     const Session &S) {
  const LockGroup &G = *S.Group;
  unsigned Accesses = std::max(G.AccessesPerCs, 1u);
  if (S.Conflicting) {
    // Read-modify-write of the lock's conflict cell with a
    // thread-dependent value: a real data conflict in any pairing.
    B.read(T, AddrLayout::conflictCell(S.Lock), 7);
    B.write(T, AddrLayout::conflictCell(S.Lock), R.next() % 1000 + T,
            WriteOpKind::Store);
    return;
  }
  switch (G.Pattern) {
  case GroupPatternKind::NullLock:
    break; // No shared access at all.
  case GroupPatternKind::ReadRead:
    for (unsigned I = 0; I != Accesses; ++I)
      B.read(T, AddrLayout::readPool(S.Lock, I % 8), 7);
    break;
  case GroupPatternKind::DisjointWrite:
    // Each thread updates its own slot (and re-reads it), so any
    // cross-thread pairing touches disjoint locations.
    B.read(T, AddrLayout::disjointSlot(S.Lock, T), 0);
    for (unsigned I = 1; I != Accesses; ++I)
      B.write(T, AddrLayout::disjointSlot(S.Lock, T), R.next() % 1000,
              WriteOpKind::Store);
    if (Accesses == 1)
      B.write(T, AddrLayout::disjointSlot(S.Lock, T), R.next() % 1000,
              WriteOpKind::Store);
    break;
  case GroupPatternKind::Benign:
    // Commutative accumulation: conflicting by the set test, identical
    // outcome in either order — the reversed replay marks it benign.
    for (unsigned I = 0; I != Accesses; ++I)
      B.write(T, AddrLayout::benignCounter(S.Lock), 1, WriteOpKind::Add);
    break;
  case GroupPatternKind::TrueConflict:
    B.read(T, AddrLayout::conflictCell(S.Lock), 7);
    B.write(T, AddrLayout::conflictCell(S.Lock), R.next() % 1000 + T,
            WriteOpKind::Store);
    break;
  case GroupPatternKind::Private:
    B.read(T, AddrLayout::privateCell(S.Lock, T), 0);
    B.write(T, AddrLayout::privateCell(S.Lock, T), R.next() % 1000,
            WriteOpKind::Store);
    break;
  case GroupPatternKind::RwLock:
    if (S.Writer) {
      // Writers update the pool head the readers scan, so
      // reader-writer pairs truly conflict; reader-reader pairs share
      // only reads and fall to the static shared-shared rule.
      B.write(T, AddrLayout::readPool(S.Lock, 0), R.next() % 1000 + T,
              WriteOpKind::Store);
    } else {
      for (unsigned I = 0; I != Accesses; ++I)
        B.read(T, AddrLayout::readPool(S.Lock, I % 8), 7);
    }
    break;
  case GroupPatternKind::Trylock:
    // Only successful attempts reach here: a short read-only lookup.
    for (unsigned I = 0; I != Accesses; ++I)
      B.read(T, AddrLayout::readPool(S.Lock, I % 8), 7);
    break;
  case GroupPatternKind::CondVar:
    if (T == 0) {
      // Producer: publish, then signal the waiters.
      B.write(T, AddrLayout::conflictCell(S.Lock), R.next() % 1000,
              WriteOpKind::Store);
      B.condSignal(T, S.Cond);
    } else {
      // Consumer: the wait marks the ordering edge, then consume.
      B.condWait(T, S.Cond, S.Site);
      B.read(T, AddrLayout::conflictCell(S.Lock), 7);
    }
    break;
  }
}

Trace perfplay::generateWorkload(const WorkloadSpec &Spec) {
  assert(Spec.NumThreads >= 1 && "workload needs at least one thread");
  TraceBuilder B;

  // Register locks and code sites per group; CondVar groups get one
  // condvar per lock (condvars share the lock table).
  std::vector<std::vector<LockId>> GroupLocks(Spec.Groups.size());
  std::vector<std::vector<LockId>> GroupConds(Spec.Groups.size());
  std::vector<std::vector<CodeSiteId>> GroupSites(Spec.Groups.size());
  uint32_t NextLine = 100;
  for (size_t GI = 0; GI != Spec.Groups.size(); ++GI) {
    const LockGroup &G = Spec.Groups[GI];
    for (unsigned L = 0; L != G.NumLocks; ++L) {
      GroupLocks[GI].push_back(
          B.addLock(Spec.Name + "." + G.Name + "#" + std::to_string(L),
                    G.IsSpin));
      if (G.Pattern == GroupPatternKind::CondVar)
        GroupConds[GI].push_back(B.addLock(
            Spec.Name + "." + G.Name + "#" + std::to_string(L) + ".cv"));
    }
    unsigned NumSites = std::max(G.SitesPerGroup, 1u);
    for (unsigned S = 0; S != NumSites; ++S) {
      GroupSites[GI].push_back(B.addSite(Spec.Name + ".cc", G.Name,
                                         NextLine, NextLine + 19));
      NextLine += 40;
    }
  }

  std::vector<ThreadId> Threads;
  for (unsigned T = 0; T != Spec.NumThreads; ++T)
    Threads.push_back(B.addThread());

  for (ThreadId T : Threads) {
    Rng R(splitMix64(Spec.Seed) ^
          (static_cast<uint64_t>(T) * 0x9e3779b97f4a7c15ULL));

    if (Spec.StartupCost != 0)
      B.compute(T, Spec.StartupCost + R.nextBelow(Spec.StartupCost / 8 + 1));

    // Threads execute the groups as aligned phases (real applications
    // contend because every thread runs the same code region at the
    // same time); within a phase, each thread visits the group's locks
    // in its own shuffled order.
    for (size_t GI = 0; GI != Spec.Groups.size(); ++GI) {
      const LockGroup &G = Spec.Groups[GI];
      unsigned NumSessions =
          scaledSessions(G, Spec.InputScale, Spec.NumThreads);
      std::vector<Session> Plan;
      for (unsigned LI = 0; LI != GroupLocks[GI].size(); ++LI) {
        // Private locks are partitioned round-robin across threads.
        if (G.Pattern == GroupPatternKind::Private &&
            LI % Spec.NumThreads != T)
          continue;
        for (unsigned S = 0; S != NumSessions; ++S) {
          Session Sess;
          Sess.Group = &G;
          Sess.Lock = GroupLocks[GI][LI];
          Sess.Site = GroupSites[GI][(LI + S) % GroupSites[GI].size()];
          Sess.Conflicting = R.nextBool(G.ConflictFrac);
          if (G.Pattern == GroupPatternKind::RwLock)
            // Injected conflicts write, so they must hold the lock
            // exclusive — reader sections stay read-only by
            // construction.
            Sess.Writer = Sess.Conflicting || R.nextBool(G.WriterFrac);
          else if (G.Pattern == GroupPatternKind::Trylock)
            Sess.TryFail = R.nextBool(G.TryFailFrac);
          else if (G.Pattern == GroupPatternKind::CondVar)
            Sess.Cond = GroupConds[GI][LI];
          Plan.push_back(Sess);
        }
      }
      // Deterministic Fisher-Yates shuffle within the phase.
      for (size_t I = Plan.size(); I > 1; --I)
        std::swap(Plan[I - 1], Plan[R.nextBelow(I)]);

      for (const Session &S : Plan) {
        B.compute(T, uniformCost(R, G.GapCostMin, G.GapCostMax));
        switch (G.Pattern) {
        case GroupPatternKind::RwLock:
          if (S.Writer)
            B.beginCsWrite(T, S.Lock, S.Site);
          else
            B.beginCsShared(T, S.Lock, S.Site);
          break;
        case GroupPatternKind::Trylock:
          if (!B.tryCs(T, S.Lock, S.Site, !S.TryFail))
            continue; // Failed attempt: witness only, no section.
          break;
        default:
          B.beginCs(T, S.Lock, S.Site);
          break;
        }
        emitBody(B, R, T, S);
        B.compute(T, uniformCost(R, G.CsCostMin, G.CsCostMax));
        B.endCs(T);
      }
    }
    // Trailing computation so the last successor segment is nonempty.
    B.compute(T, uniformCost(R, 500, 1500));
  }

  return B.finish();
}
