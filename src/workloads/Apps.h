//===- workloads/Apps.h - The paper's application models --------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Workload models for the sixteen applications of the paper's
/// evaluation: five real-world programs (openldap, mysql, pbzip2,
/// transmissionBT, handbrake) and eleven PARSEC benchmarks (freqmine is
/// excluded as in the paper, which cannot instrument OpenMP).
///
/// Each model's lock-group mix is calibrated against Table 1 at ~1/8
/// dynamic scale (documented per factory); the *shape* — which pattern
/// dominates, which applications have no ULCPs at all, relative
/// critical-section sizes — follows the paper's characterization.
/// Factories take the thread count and an input-scale factor (PARSEC:
/// simsmall 0.25, simmedium 0.5, simlarge 1.0).
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_WORKLOADS_APPS_H
#define PERFPLAY_WORKLOADS_APPS_H

#include "workloads/WorkloadSpec.h"

#include <string>
#include <vector>

namespace perfplay {

// Real-world programs (Section 6.1 test configuration).
WorkloadSpec makeOpenldap(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeMysql(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makePbzip2(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeTransmissionBT(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeHandbrake(unsigned Threads = 2, double Scale = 1.0);

// PARSEC benchmarks.
WorkloadSpec makeBlackscholes(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeBodytrack(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeCanneal(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeDedup(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeFacesim(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeFerret(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeFluidanimate(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeStreamcluster(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeSwaptions(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeVips(unsigned Threads = 2, double Scale = 1.0);
WorkloadSpec makeX264(unsigned Threads = 2, double Scale = 1.0);

/// Synthetic rwlock / trylock / condvar mix: not one of the paper's
/// sixteen applications, but the corpus that exercises the extended
/// event vocabulary (shared sections, failed tries, wait/signal
/// ordering) end-to-end.
WorkloadSpec makeRwMix(unsigned Threads = 2, double Scale = 1.0);

/// A named application model.
struct AppModel {
  std::string Name;
  WorkloadSpec (*Factory)(unsigned Threads, double Scale);
};

/// The five real-world programs, in Table 1 order.
const std::vector<AppModel> &realWorldApps();

/// The eleven PARSEC benchmarks, in Table 1 order.
const std::vector<AppModel> &parsecApps();

/// All sixteen applications, in Table 1 order.
const std::vector<AppModel> &allApps();

/// Synthetic corpora outside the paper's evaluation set (kept out of
/// allApps() so Table 1-shaped iterations stay sixteen-wide).
const std::vector<AppModel> &syntheticApps();

} // namespace perfplay

#endif // PERFPLAY_WORKLOADS_APPS_H
