//===- workloads/CaseStudies.h - Section 6.6 case studies -------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace models of the paper's verified ULCP bugs, each with the fixed
/// variant the paper re-implements and re-quantifies (Section 6.6):
///
///  - #BUG1 (openldap, Figure 4): worker threads spin-poll dbmfp->ref
///    under dbmp->mutex until a slow critical thread drops its
///    reference.  Fix: a barrier-style single blocking wait.
///  - #BUG2 (pbzip2, Figure 18): consumers re-check fifo->empty and
///    producerDone under nested mu/muDone locks at shutdown, creating
///    read-read ULCPs with nested-lock overhead.  Fix: the producer
///    signals consumers once, removing the polling sections.
///  - MySQL bug #68573 (Figure 17): Query_cache::try_lock holds
///    structure_guard_mutex across a timed condition loop; concurrent
///    SELECTs inflate the intended 50ms timeout.
///
/// The buggy/fixed pairs let benches compare PerfPlay's predicted gain
/// (replay of transformed trace) against the measured gain of the real
/// fix (trace of the fixed program), per Figure 19.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_WORKLOADS_CASESTUDIES_H
#define PERFPLAY_WORKLOADS_CASESTUDIES_H

#include "trace/Trace.h"

namespace perfplay {

/// Parameters shared by the case-study models.
struct CaseStudyParams {
  /// Worker/consumer thread count (the critical thread or producer is
  /// one of them).
  unsigned NumThreads = 4;
  /// Input-size proxy: spin iterations (#BUG1), blocks to compress
  /// (#BUG2), or SELECT statements (#68573) scale with it.
  double InputScale = 1.0;
  uint64_t Seed = 99;
};

/// #BUG1 (Figure 4), buggy variant: NumThreads-1 workers spin-poll
/// dbmfp->ref; the last thread holds the reference for a long critical
/// computation before dropping it.
Trace makeOpenldapSpinWait(const CaseStudyParams &P);

/// #BUG1 fixed with a barrier: each worker checks once, blocks
/// (idle, not spinning) until the reference drops, then proceeds.
Trace makeOpenldapSpinWaitFixed(const CaseStudyParams &P);

/// #BUG2 (Figure 18), buggy variant: consumers poll fifo->empty and
/// (nested) producerDone while draining the queue.
Trace makePbzip2Consumer(const CaseStudyParams &P);

/// #BUG2 fixed with signal/wait: the producer tracks completion and
/// signals consumers, whose drain loop carries no check sections.
Trace makePbzip2ConsumerFixed(const CaseStudyParams &P);

/// MySQL #68573 (Figure 17), buggy variant: each SELECT session takes
/// structure_guard_mutex and holds it across timed-wait slices.
Trace makeMysqlQueryCache(const CaseStudyParams &P);

/// MySQL #68573 fixed: the timeout check runs without holding the
/// guard across the wait slices.
Trace makeMysqlQueryCacheFixed(const CaseStudyParams &P);

} // namespace perfplay

#endif // PERFPLAY_WORKLOADS_CASESTUDIES_H
