//===- bench/fig2_ulcp_growth.cpp - regenerate Figure 2 ---------------------===//
//
// Figure 2: number of ULCPs as the thread count grows (openldap,
// pbzip2, bodytrack; 2..32 threads).  The paper observes near-linear
// growth: ULCPs are produced by common code repeated in every thread.
// We count serializing (adjacent-in-schedule) pairs, which grow with
// the number of threads executing the shared code.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "detect/CriticalSection.h"
#include "detect/Detector.h"
#include "sim/Replayer.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Figure 2: #ULCPs vs thread count (serializing pairs).\n"
              "Expected shape: roughly proportional growth for all three "
              "applications.\n\n");

  const char *Apps[] = {"openldap", "pbzip2", "bodytrack"};
  Table T;
  T.addRow({"threads", "openldap", "pbzip2", "bodytrack"});
  for (unsigned Threads : {2u, 4u, 8u, 16u, 32u}) {
    std::vector<std::string> Row = {std::to_string(Threads)};
    for (const char *Name : Apps) {
      const AppModel *App = findApp(Name);
      Trace Tr = generateWorkload(App->Factory(Threads, 1.0));
      ReplayResult Rec = recordGrantSchedule(Tr, 42);
      if (!Rec.ok()) {
        std::fprintf(stderr, "%s@%u: %s\n", Name, Threads,
                     Rec.Error.c_str());
        return 1;
      }
      CsIndex Index = CsIndex::build(Tr);
      DetectOptions Opts;
      Opts.PairMode = PairModeKind::AdjacentCrossThread;
      UlcpCounts C = detectUlcps(Tr, Index, Opts).Counts;
      Row.push_back(std::to_string(C.totalUnnecessary()));
    }
    T.addRow(Row);
  }
  std::printf("%s", T.render().c_str());
  return 0;
}
