//===- bench/micro_serve_throughput.cpp - serve daemon throughput -----------===//
//
// Benchmarks the `perfplay serve` daemon (src/serve/) end to end over a
// real unix-domain socket: an in-process daemon, a corpus of small
// traces, and clients speaking the wire protocol.  Three gated
// measurements:
//
//  * warm vs cold latency — a --no-cache request pays parse + pipeline
//    every time; a warm request is a result-cache hit.  The run fails
//    unless warm is at least --min-warm-speedup (default 5x) faster.
//  * sustained throughput — --clients concurrent connections issue
//    --requests mixed requests over the corpus; the run fails below
//    --min-rps (default 100 req/sec) or on any failed response.
//  * parity — every daemon verdict summary is compared field-for-field
//    against Engine::analyzeTrace on the same file; any divergence is
//    fatal.
//
// Emits BENCH_serve.json (schema in docs/PERFORMANCE.md).
//
// Usage:
//   bench_micro_serve_throughput [--traces N] [--requests N] [--clients N]
//                                [--repeat K] [--out FILE]
//                                [--min-warm-speedup X] [--min-rps X]
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "serve/Server.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace perfplay;
using namespace perfplay::serve;

namespace {

uint64_t nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One small-corpus entry: a contended two-lock trace whose verdict
/// mix varies with \p Salt (so corpus entries are genuinely distinct
/// content hashes with distinct answers).
Trace corpusTrace(unsigned Salt) {
  TraceBuilder B;
  LockId Hot = B.addLock("hot");
  LockId Cold = B.addLock("cold");
  CodeSiteId Site = B.addSite("serve_bench.cc", "worker", 1, 9);
  std::vector<ThreadId> Ids;
  for (unsigned T = 0; T != 3; ++T)
    Ids.push_back(B.addThread());
  for (unsigned Round = 0; Round != 8 + Salt % 4; ++Round)
    for (ThreadId Id : Ids) {
      B.compute(Id, 2 + Salt % 3);
      B.beginCs(Id, Round % 3 ? Hot : Cold, Site);
      switch ((Round + Salt) % 4) {
      case 0:
        B.write(Id, 1, 7); // redundant store
        break;
      case 1:
        B.read(Id, 2, 0); // read-read
        break;
      case 2:
        B.write(Id, 100 + Id, Salt); // disjoint per-thread slot
        break;
      default:
        B.write(Id, 3, Round + Salt); // true contention
        break;
      }
      B.endCs(Id);
    }
  return B.finish();
}

std::string option(int Argc, char **Argv, const char *Name,
                   const char *Default) {
  std::string Prefix = std::string(Name) + "=";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], Name) == 0 && I + 1 < Argc)
      return Argv[I + 1];
    if (std::strncmp(Argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return Argv[I] + Prefix.size();
  }
  return Default;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned NumTraces = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--traces", "6").c_str()));
  unsigned Requests = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--requests", "300").c_str()));
  unsigned Clients = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--clients", "4").c_str()));
  unsigned Repeat = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--repeat", "3").c_str()));
  std::string Out = option(Argc, Argv, "--out", "BENCH_serve.json");
  double MinWarmSpeedup =
      std::atof(option(Argc, Argv, "--min-warm-speedup", "5.0").c_str());
  double MinRps = std::atof(option(Argc, Argv, "--min-rps", "100").c_str());
  if (NumTraces == 0)
    NumTraces = 1;
  if (Repeat == 0)
    Repeat = 1;
  if (Clients == 0)
    Clients = 1;

  // -- Corpus + direct-engine parity reference ------------------------------
  std::string Dir = "/tmp";
  if (const char *Env = std::getenv("TMPDIR"))
    Dir = Env;
  std::vector<std::string> Paths;
  std::vector<ResultSummary> Direct;
  Engine E;
  for (unsigned I = 0; I != NumTraces; ++I) {
    Trace Tr = corpusTrace(I);
    std::string Path = Dir + "/pp_bench_serve_" +
                       std::to_string(::getpid()) + "_" +
                       std::to_string(I) + ".btrace";
    std::string Err;
    if (!saveTrace(Tr, Path, Err, TraceFormat::Binary)) {
      std::fprintf(stderr, "FATAL: cannot write corpus: %s\n", Err.c_str());
      return 1;
    }
    Paths.push_back(Path);
    Expected<PipelineResult> R = E.analyzeTrace(std::move(Tr));
    if (!R.ok()) {
      std::fprintf(stderr, "FATAL: direct analysis failed: %s\n",
                   R.message().c_str());
      return 1;
    }
    Direct.push_back(summarizeResult(*R));
  }

  // -- Daemon ---------------------------------------------------------------
  ServerOptions Opts;
  Opts.SocketPath =
      Dir + "/pp_bench_serve_" + std::to_string(::getpid()) + ".sock";
  Opts.NumWorkers = Clients < 4 ? Clients : 4;
  Server Daemon(Opts);
  {
    Expected<void> Ok = Daemon.start();
    if (!Ok.ok()) {
      std::fprintf(stderr, "FATAL: daemon start failed: %s\n",
                   Ok.message().c_str());
      return 1;
    }
  }

  // -- Cold vs warm + parity ------------------------------------------------
  // Cold: --no-cache requests pay parse + full pipeline every time.
  // Warm: after one caching request, every repeat is a result-cache
  // hit.  Both paths' verdicts must match the direct engine run.
  double ColdSum = 0, WarmSum = 0;
  unsigned ColdN = 0, WarmN = 0;
  {
    ServeClient Client;
    Expected<void> Conn = Client.connect(Opts.SocketPath);
    if (!Conn.ok()) {
      std::fprintf(stderr, "FATAL: connect: %s\n", Conn.message().c_str());
      return 1;
    }
    for (unsigned I = 0; I != NumTraces; ++I) {
      for (unsigned K = 0; K != Repeat; ++K) {
        AnalyzeRequest Req;
        Req.Path = Paths[I];
        Req.NoCache = 1;
        uint64_t T0 = nowMicros();
        Expected<ResultSummary> Sum = Client.analyze(Req);
        uint64_t Micros = nowMicros() - T0;
        if (!Sum.ok()) {
          std::fprintf(stderr, "FATAL: cold analyze failed: %s\n",
                       Sum.message().c_str());
          return 1;
        }
        if (!Sum->sameVerdicts(Direct[I])) {
          std::fprintf(stderr,
                       "FATAL: daemon verdicts diverged from "
                       "Engine::analyzeTrace on corpus entry %u\n",
                       I);
          return 1;
        }
        ColdSum += static_cast<double>(Micros);
        ++ColdN;
      }
      // Populate the caches, then measure warm hits.
      AnalyzeRequest Req;
      Req.Path = Paths[I];
      (void)Client.analyze(Req);
      for (unsigned K = 0; K != Repeat; ++K) {
        uint64_t T0 = nowMicros();
        Expected<ResultSummary> Sum = Client.analyze(Req);
        uint64_t Micros = nowMicros() - T0;
        if (!Sum.ok() || !Sum->FromResultCache) {
          std::fprintf(stderr, "FATAL: warm request missed the cache\n");
          return 1;
        }
        if (!Sum->sameVerdicts(Direct[I])) {
          std::fprintf(stderr, "FATAL: warm verdicts diverged on entry "
                               "%u\n",
                       I);
          return 1;
        }
        WarmSum += static_cast<double>(Micros);
        ++WarmN;
      }
    }
  }
  double ColdMean = ColdSum / ColdN;
  double WarmMean = WarmSum / WarmN;
  double WarmSpeedup = WarmMean > 0 ? ColdMean / WarmMean : 0;

  // -- Sustained throughput -------------------------------------------------
  std::atomic<unsigned> Errors{0};
  std::atomic<unsigned> Issued{0};
  std::vector<std::thread> Threads;
  uint64_t SustainedT0 = nowMicros();
  for (unsigned C = 0; C != Clients; ++C)
    Threads.emplace_back([&, C] {
      ServeClient Client;
      if (!Client.connect(Opts.SocketPath).ok()) {
        Errors.fetch_add(1);
        return;
      }
      for (;;) {
        unsigned I = Issued.fetch_add(1);
        if (I >= Requests)
          return;
        AnalyzeRequest Req;
        Req.Path = Paths[(I + C) % Paths.size()];
        Expected<ResultSummary> Sum = Client.analyze(Req);
        if (!Sum.ok() ||
            !Sum->sameVerdicts(Direct[(I + C) % Paths.size()]))
          Errors.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  double SustainedSecs =
      static_cast<double>(nowMicros() - SustainedT0) / 1e6;
  double Rps = SustainedSecs > 0 ? Requests / SustainedSecs : 0;

  ServeStats Final = Daemon.stats();
  Daemon.stop();
  for (const std::string &P : Paths)
    std::remove(P.c_str());

  // -- Report + gates -------------------------------------------------------
  std::printf("serve bench: %u traces, %u clients, %u requests\n",
              NumTraces, Clients, Requests);
  std::printf("  cold  : %.0f us mean (parse + pipeline, --no-cache)\n",
              ColdMean);
  std::printf("  warm  : %.0f us mean (result-cache hit), speedup %.1fx\n",
              WarmMean, WarmSpeedup);
  std::printf("  burst : %.0f req/sec sustained, %u errors, p50 %llu us, "
              "p99 %llu us\n",
              Rps, Errors.load(),
              static_cast<unsigned long long>(Final.P50Micros),
              static_cast<unsigned long long>(Final.P99Micros));

  FILE *F = std::fopen(Out.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", Out.c_str());
    return 1;
  }
  std::fprintf(F, "{\n");
  std::fprintf(F, "  \"bench\": \"serve_throughput\",\n");
  std::fprintf(F, "  \"traces\": %u,\n", NumTraces);
  std::fprintf(F, "  \"clients\": %u,\n", Clients);
  std::fprintf(F, "  \"requests\": %u,\n", Requests);
  std::fprintf(F, "  \"cold_micros_mean\": %.1f,\n", ColdMean);
  std::fprintf(F, "  \"warm_micros_mean\": %.1f,\n", WarmMean);
  std::fprintf(F, "  \"warm_speedup\": %.2f,\n", WarmSpeedup);
  std::fprintf(F, "  \"sustained_rps\": %.1f,\n", Rps);
  std::fprintf(F, "  \"errors\": %u,\n", Errors.load());
  std::fprintf(F, "  \"p50_micros\": %llu,\n",
               static_cast<unsigned long long>(Final.P50Micros));
  std::fprintf(F, "  \"p99_micros\": %llu,\n",
               static_cast<unsigned long long>(Final.P99Micros));
  std::fprintf(F, "  \"trace_cache_hits\": %llu,\n",
               static_cast<unsigned long long>(Final.TraceCacheHits));
  std::fprintf(F, "  \"trace_cache_misses\": %llu,\n",
               static_cast<unsigned long long>(Final.TraceCacheMisses));
  std::fprintf(F, "  \"result_cache_hits\": %llu,\n",
               static_cast<unsigned long long>(Final.ResultCacheHits));
  std::fprintf(F, "  \"result_cache_misses\": %llu,\n",
               static_cast<unsigned long long>(Final.ResultCacheMisses));
  std::fprintf(F, "  \"parity\": \"ok\"\n");
  std::fprintf(F, "}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Out.c_str());

  // Exit gates (CI smoke): warm speedup, sustained rate, zero errors.
  if (Errors.load() != 0) {
    std::fprintf(stderr, "FATAL: %u failed responses in the sustained "
                         "burst\n",
                 Errors.load());
    return 1;
  }
  if (WarmSpeedup < MinWarmSpeedup) {
    std::fprintf(stderr,
                 "FATAL: warm-cache speedup %.2fx below the %.1fx gate\n",
                 WarmSpeedup, MinWarmSpeedup);
    return 1;
  }
  if (Rps < MinRps) {
    std::fprintf(stderr,
                 "FATAL: sustained %.1f req/sec below the %.1f gate\n",
                 Rps, MinRps);
    return 1;
  }
  return 0;
}
