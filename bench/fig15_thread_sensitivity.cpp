//===- bench/fig15_thread_sensitivity.cpp - regenerate Figure 15 ------------===//
//
// Figure 15: ULCP impact vs thread count (canneal, bodytrack,
// fluidanimate; 2..8 threads).  Expected shape: performance loss
// grows with threads while CPU wasting per thread stays ~flat; canneal
// stays at zero throughout.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "detect/CriticalSection.h"
#include "sim/LockElision.h"
#include "sim/Replayer.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

/// Speculation total over the lock replay's total ("x0.94" = 6%
/// faster than locks at that thread count).
static std::string formatRatio(TimeNs Spec, TimeNs Orig) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "x%.3f",
                Orig ? static_cast<double>(Spec) /
                           static_cast<double>(Orig)
                     : 0.0);
  return Buf;
}

int main() {
  std::printf("Figure 15: ULCP impact vs thread count.\n\n");
  const char *Apps[] = {"canneal", "bodytrack", "fluidanimate"};

  Table Loss;
  Loss.addRow({"threads", "canneal", "bodytrack", "fluidanimate"});
  Table Waste;
  Waste.addRow({"threads", "canneal", "bodytrack", "fluidanimate"});
  Table Spec;
  Spec.addRow({"threads", "canneal", "bodytrack", "fluidanimate"});

  for (unsigned Threads : {2u, 4u, 6u, 8u}) {
    std::vector<std::string> LossRow = {std::to_string(Threads)};
    std::vector<std::string> WasteRow = {std::to_string(Threads)};
    std::vector<std::string> SpecRow = {std::to_string(Threads)};
    for (const char *Name : Apps) {
      const AppModel *App = findApp(Name);
      PipelineResult R = runAppPipeline(*App, Threads, 1.0,
                                        PairModeKind::AllCrossThread);
      if (!R.ok()) {
        std::fprintf(stderr, "%s@%u: %s\n", Name, Threads,
                     R.Error.c_str());
        return 1;
      }
      LossRow.push_back(formatPercent(R.Report.normalizedDegradation()));
      WasteRow.push_back(
          formatPercent(R.Report.normalizedCpuWastePerThread()));

      // HTM baseline at the same thread count: conflict aborts scale
      // with contention, so the ratio degrades where loss grows.
      Trace Tr = generateWorkload(App->Factory(Threads, 1.0));
      ReplayResult Rec = recordGrantSchedule(Tr, 42);
      if (!Rec.ok()) {
        std::fprintf(stderr, "%s@%u: %s\n", Name, Threads,
                     Rec.Error.c_str());
        return 1;
      }
      CsIndex Index = CsIndex::build(Tr);
      ReplayResult Orig = replayTrace(Tr, ReplayOptions());
      HtmResult Htm = simulateHtm(Tr, Index);
      SpecRow.push_back(formatRatio(Htm.TotalTime, Orig.TotalTime));
    }
    Loss.addRow(LossRow);
    Waste.addRow(WasteRow);
    Spec.addRow(SpecRow);
  }
  std::printf("(a) performance loss vs threads\n%s\n",
              Loss.render().c_str());
  std::printf("(b) CPU wasting per thread vs threads\n%s\n",
              Waste.render().c_str());
  std::printf("(c) HTM speculation time / lock replay vs threads\n%s",
              Spec.render().c_str());
  return 0;
}
