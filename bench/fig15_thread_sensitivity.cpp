//===- bench/fig15_thread_sensitivity.cpp - regenerate Figure 15 ------------===//
//
// Figure 15: ULCP impact vs thread count (canneal, bodytrack,
// fluidanimate; 2..8 threads).  Expected shape: performance loss
// grows with threads while CPU wasting per thread stays ~flat; canneal
// stays at zero throughout.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Figure 15: ULCP impact vs thread count.\n\n");
  const char *Apps[] = {"canneal", "bodytrack", "fluidanimate"};

  Table Loss;
  Loss.addRow({"threads", "canneal", "bodytrack", "fluidanimate"});
  Table Waste;
  Waste.addRow({"threads", "canneal", "bodytrack", "fluidanimate"});

  for (unsigned Threads : {2u, 4u, 6u, 8u}) {
    std::vector<std::string> LossRow = {std::to_string(Threads)};
    std::vector<std::string> WasteRow = {std::to_string(Threads)};
    for (const char *Name : Apps) {
      const AppModel *App = findApp(Name);
      PipelineResult R = runAppPipeline(*App, Threads, 1.0,
                                        PairModeKind::AllCrossThread);
      if (!R.ok()) {
        std::fprintf(stderr, "%s@%u: %s\n", Name, Threads,
                     R.Error.c_str());
        return 1;
      }
      LossRow.push_back(formatPercent(R.Report.normalizedDegradation()));
      WasteRow.push_back(
          formatPercent(R.Report.normalizedCpuWastePerThread()));
    }
    Loss.addRow(LossRow);
    Waste.addRow(WasteRow);
  }
  std::printf("(a) performance loss vs threads\n%s\n",
              Loss.render().c_str());
  std::printf("(b) CPU wasting per thread vs threads\n%s",
              Waste.render().c_str());
  return 0;
}
