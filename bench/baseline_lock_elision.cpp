//===- bench/baseline_lock_elision.cpp - LE baseline comparison -------------===//
//
// Executable version of the paper's Section 7.1 argument: lock elision
// removes ULCP serialization at runtime, but (a) aborts and rollbacks
// reintroduce overhead — especially false aborts and conflict-heavy
// locks — and (b) it produces no debugging output, whereas PERFPLAY's
// fix-the-source approach removes the ULCPs for good.
//
// Compares, per application: the original replay (locks), the lock
// elision simulation (speculation + aborts), and the replay of
// PERFPLAY's transformed trace, plus LE's abort/fallback counts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "detect/CriticalSection.h"
#include "sim/LockElision.h"
#include "sim/Replayer.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Transform.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Baseline: speculative lock elision vs PERFPLAY "
              "transformation (2 threads).\n\n");
  Table T;
  T.addRow({"application", "locks (orig)", "lock elision", "PERFPLAY",
            "LE aborts", "false", "fallbacks"});
  for (const char *Name :
       {"openldap", "mysql", "pbzip2", "facesim", "fluidanimate",
        "canneal", "streamcluster"}) {
    const AppModel *App = findApp(Name);
    Trace Tr = generateWorkload(App->Factory(2, 1.0));
    ReplayResult Rec = recordGrantSchedule(Tr, 42);
    if (!Rec.ok()) {
      std::fprintf(stderr, "%s: %s\n", Name, Rec.Error.c_str());
      return 1;
    }
    CsIndex Index = CsIndex::build(Tr);

    ReplayResult Orig = replayTrace(Tr, ReplayOptions());
    LockElisionResult Le = simulateLockElision(Tr, Index);
    TransformResult TR = transformTrace(Tr, Index);
    ReplayResult Free = replayTrace(TR.Transformed, ReplayOptions());
    if (!Orig.ok() || !Free.ok()) {
      std::fprintf(stderr, "%s: replay failed\n", Name);
      return 1;
    }
    T.addRow({Name, formatNs(Orig.TotalTime), formatNs(Le.TotalTime),
              formatNs(Free.TotalTime),
              std::to_string(Le.ConflictAborts),
              std::to_string(Le.FalseAborts),
              std::to_string(Le.Fallbacks)});
  }
  std::printf("%s", T.render().c_str());
  std::printf(
      "\nexpected: LE matches PERFPLAY on ULCP-dominated apps (it elides "
      "the same\nserialization) but pays aborts/rollbacks on "
      "conflict-heavy locks — and unlike\nPERFPLAY it reports nothing "
      "for the programmer to fix.\n");
  return 0;
}
