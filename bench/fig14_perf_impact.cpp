//===- bench/fig14_perf_impact.cpp - regenerate Figure 14 -------------------===//
//
// Figure 14: normalized execution time through replaying the traces
// with and without ULCPs, for all sixteen applications (2 threads):
// performance degradation Tpd/Tut and CPU-time wasting per thread
// (Trw/Nthread)/Tut.  Expected shape: openldap/mysql/pbzip2 improve by
// ~1.6-11%; blackscholes/canneal/streamcluster/swaptions ~0; facesim
// outgains fluidanimate despite fewer ULCPs (larger sections).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Figure 14: normalized performance impact of ULCPs "
              "(2 threads).\n\n");

  Table T;
  T.addRow({"application", "Tut", "Tuft", "degradation",
            "CPU waste/thread"});
  double SumDeg = 0.0, SumWaste = 0.0;
  unsigned Counted = 0;
  for (const AppModel &App : allApps()) {
    PipelineResult R =
        runAppPipeline(App, 2, 1.0, PairModeKind::AllCrossThread);
    if (!R.ok()) {
      std::fprintf(stderr, "%s: %s\n", App.Name.c_str(),
                   R.Error.c_str());
      return 1;
    }
    double Deg = R.Report.normalizedDegradation();
    double Waste = R.Report.normalizedCpuWastePerThread();
    SumDeg += Deg;
    SumWaste += Waste;
    ++Counted;
    T.addRow({App.Name, formatNs(R.Report.OriginalTime),
              formatNs(R.Report.UlcpFreeTime), formatPercent(Deg),
              formatPercent(Waste)});
  }
  T.addRow({"average", "", "",
            formatPercent(Counted ? SumDeg / Counted : 0.0),
            formatPercent(Counted ? SumWaste / Counted : 0.0)});
  std::printf("%s", T.render().c_str());
  std::printf("\npaper: improvements of 1.6%%-11%% for lock-heavy apps, "
              "~0 for blackscholes/\ncanneal/streamcluster/swaptions; "
              "average 5.1%% performance, 7.85%% CPU/thread.\n");
  return 0;
}
