//===- bench/fig14_perf_impact.cpp - regenerate Figure 14 -------------------===//
//
// Figure 14: normalized execution time through replaying the traces
// with and without ULCPs, for all sixteen applications (2 threads):
// performance degradation Tpd/Tut and CPU-time wasting per thread
// (Trw/Nthread)/Tut.  Expected shape: openldap/mysql/pbzip2 improve by
// ~1.6-11%; blackscholes/canneal/streamcluster/swaptions ~0; facesim
// outgains fluidanimate despite fewer ULCPs (larger sections).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "detect/CriticalSection.h"
#include "sim/LockElision.h"
#include "sim/Replayer.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

/// Formats a speculation total as a ratio over the original replay
/// ("x0.94" = 6% faster than locks).
static std::string formatRatio(TimeNs Spec, TimeNs Orig) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "x%.3f",
                Orig ? static_cast<double>(Spec) /
                           static_cast<double>(Orig)
                     : 0.0);
  return Buf;
}

int main() {
  std::printf("Figure 14: normalized performance impact of ULCPs "
              "(2 threads),\nwith the runtime-speculation baselines "
              "(SLE, HTM) for comparison.\n\n");

  Table T;
  T.addRow({"application", "Tut", "Tuft", "degradation",
            "CPU waste/thread", "SLE/Tut", "HTM/Tut"});
  double SumDeg = 0.0, SumWaste = 0.0;
  unsigned Counted = 0;
  for (const AppModel &App : allApps()) {
    PipelineResult R =
        runAppPipeline(App, 2, 1.0, PairModeKind::AllCrossThread);
    if (!R.ok()) {
      std::fprintf(stderr, "%s: %s\n", App.Name.c_str(),
                   R.Error.c_str());
      return 1;
    }
    double Deg = R.Report.normalizedDegradation();
    double Waste = R.Report.normalizedCpuWastePerThread();
    SumDeg += Deg;
    SumWaste += Waste;
    ++Counted;

    // Speculation baselines over the same workload: both elide the
    // ULCP serialization at runtime, paying aborts instead of fixes.
    Trace Tr = generateWorkload(App.Factory(2, 1.0));
    ReplayResult Rec = recordGrantSchedule(Tr, 42);
    if (!Rec.ok()) {
      std::fprintf(stderr, "%s: %s\n", App.Name.c_str(),
                   Rec.Error.c_str());
      return 1;
    }
    CsIndex Index = CsIndex::build(Tr);
    ReplayResult Orig = replayTrace(Tr, ReplayOptions());
    LockElisionResult Le = simulateLockElision(Tr, Index);
    HtmResult Htm = simulateHtm(Tr, Index);

    T.addRow({App.Name, formatNs(R.Report.OriginalTime),
              formatNs(R.Report.UlcpFreeTime), formatPercent(Deg),
              formatPercent(Waste),
              formatRatio(Le.TotalTime, Orig.TotalTime),
              formatRatio(Htm.TotalTime, Orig.TotalTime)});
  }
  T.addRow({"average", "", "",
            formatPercent(Counted ? SumDeg / Counted : 0.0),
            formatPercent(Counted ? SumWaste / Counted : 0.0), "", ""});
  std::printf("%s", T.render().c_str());
  std::printf("\npaper: improvements of 1.6%%-11%% for lock-heavy apps, "
              "~0 for blackscholes/\ncanneal/streamcluster/swaptions; "
              "average 5.1%% performance, 7.85%% CPU/thread.\n"
              "SLE/HTM elide the same serialization at runtime but pay "
              "aborts on\nconflict-heavy locks and report nothing to "
              "fix.\n");
  return 0;
}
