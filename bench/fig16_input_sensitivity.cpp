//===- bench/fig16_input_sensitivity.cpp - regenerate Figure 16 -------------===//
//
// Figure 16: ULCP impact vs input size (simsmall / simmedium /
// simlarge) for canneal, bodytrack, fluidanimate.  Expected shape:
// both performance loss and CPU wasting grow with the input size
// (threads reuse the same code; a larger input executes the ULCP
// sites more often); canneal stays at zero.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Figure 16: ULCP impact vs input size (2 threads).\n\n");
  const char *Apps[] = {"canneal", "bodytrack", "fluidanimate"};
  const struct {
    const char *Name;
    double Scale;
  } Inputs[] = {{"simsmall", 0.25}, {"simmedium", 0.5}, {"simlarge", 1.0}};

  Table Loss;
  Loss.addRow({"input", "canneal", "bodytrack", "fluidanimate"});
  Table Waste;
  Waste.addRow({"input", "canneal", "bodytrack", "fluidanimate"});

  for (const auto &Input : Inputs) {
    std::vector<std::string> LossRow = {Input.Name};
    std::vector<std::string> WasteRow = {Input.Name};
    for (const char *Name : Apps) {
      const AppModel *App = findApp(Name);
      PipelineResult R = runAppPipeline(*App, 2, Input.Scale,
                                        PairModeKind::AllCrossThread);
      if (!R.ok()) {
        std::fprintf(stderr, "%s/%s: %s\n", Name, Input.Name,
                     R.Error.c_str());
        return 1;
      }
      LossRow.push_back(formatPercent(R.Report.normalizedDegradation()));
      WasteRow.push_back(
          formatPercent(R.Report.normalizedCpuWastePerThread()));
    }
    Loss.addRow(LossRow);
    Waste.addRow(WasteRow);
  }
  std::printf("(a) performance loss vs input size\n%s\n",
              Loss.render().c_str());
  std::printf("(b) CPU wasting per thread vs input size\n%s",
              Waste.render().c_str());
  return 0;
}
