//===- bench/table1_ulcp_breakdown.cpp - regenerate Table 1 -----------------===//
//
// Table 1: breakdown of ULCPs (null-lock / read-read / disjoint-write
// / benign) in the five real-world programs and PARSEC, two threads.
// Our workload models are calibrated at ~1/8 of the paper's dynamic
// scale; the paper's absolute numbers are printed alongside for shape
// comparison (who has many ULCPs, which pattern dominates, who has
// none).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "detect/CriticalSection.h"
#include "detect/Detector.h"
#include "sim/Replayer.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Table 1: Breakdown of ULCPs (2 threads).  'ours' columns "
              "are measured on the\n~1/8-scale workload models; 'paper' "
              "columns are the published values.\n\n");

  Table T;
  T.addRow({"application", "locks", "NL", "RR", "DW", "Benign",
            "| paper:locks", "NL", "RR", "DW", "Benign"});
  for (const Table1Row &Ref : PaperTable1) {
    const AppModel *App = findApp(Ref.Name);
    if (!App) {
      std::fprintf(stderr, "unknown app %s\n", Ref.Name);
      return 1;
    }
    Trace Tr = generateWorkload(App->Factory(2, 1.0));
    ReplayResult Rec = recordGrantSchedule(Tr, 42);
    if (!Rec.ok()) {
      std::fprintf(stderr, "%s: recording failed: %s\n", Ref.Name,
                   Rec.Error.c_str());
      return 1;
    }
    CsIndex Index = CsIndex::build(Tr);
    DetectOptions Opts;
    Opts.PairMode = PairModeKind::AllCrossThread;
    UlcpCounts C = detectUlcps(Tr, Index, Opts).Counts;
    T.addRow({Ref.Name, std::to_string(Tr.numCriticalSections()),
              std::to_string(C.NullLock), std::to_string(C.ReadRead),
              std::to_string(C.DisjointWrite), std::to_string(C.Benign),
              "| " + std::to_string(Ref.Locks), std::to_string(Ref.NL),
              std::to_string(Ref.RR), std::to_string(Ref.DW),
              std::to_string(Ref.Benign)});
  }
  std::printf("%s", T.render().c_str());
  return 0;
}
