//===- bench/micro_replay_throughput.cpp - engine micro-benchmarks ----------===//
//
// Google-benchmark microbenchmarks of the replay engine and detector:
// events replayed per second under each scheme, detection throughput,
// and transformation cost.  Supports the Section 6.7 discussion of
// replay-based analysis cost.
//
//===----------------------------------------------------------------------===//

#include "detect/CriticalSection.h"
#include "detect/Detector.h"
#include "sim/Replayer.h"
#include "transform/Transform.h"
#include "workloads/Apps.h"
#include "workloads/WorkloadSpec.h"

#include <benchmark/benchmark.h>

using namespace perfplay;

namespace {

Trace &benchTrace() {
  static Trace Tr = [] {
    Trace T = generateWorkload(makeDedup(4, 1.0));
    recordGrantSchedule(T, 42);
    return T;
  }();
  return Tr;
}

void replayScheme(benchmark::State &State, ScheduleKind Kind) {
  Trace &Tr = benchTrace();
  ReplayOptions Opts;
  Opts.Schedule = Kind;
  size_t Events = Tr.numEvents();
  for (auto _ : State) {
    ReplayResult R = replayTrace(Tr, Opts);
    benchmark::DoNotOptimize(R.TotalTime);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Events));
}

} // namespace

static void BM_ReplayOrigS(benchmark::State &State) {
  replayScheme(State, ScheduleKind::OrigS);
}
BENCHMARK(BM_ReplayOrigS);

static void BM_ReplayElscS(benchmark::State &State) {
  replayScheme(State, ScheduleKind::ElscS);
}
BENCHMARK(BM_ReplayElscS);

static void BM_ReplaySyncS(benchmark::State &State) {
  replayScheme(State, ScheduleKind::SyncS);
}
BENCHMARK(BM_ReplaySyncS);

static void BM_ReplayMemS(benchmark::State &State) {
  replayScheme(State, ScheduleKind::MemS);
}
BENCHMARK(BM_ReplayMemS);

static void BM_CsExtraction(benchmark::State &State) {
  Trace &Tr = benchTrace();
  for (auto _ : State) {
    CsIndex Index = CsIndex::build(Tr);
    benchmark::DoNotOptimize(Index.size());
  }
}
BENCHMARK(BM_CsExtraction);

static void BM_DetectAdjacent(benchmark::State &State) {
  Trace &Tr = benchTrace();
  CsIndex Index = CsIndex::build(Tr);
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AdjacentCrossThread;
  for (auto _ : State) {
    DetectResult R = detectUlcps(Tr, Index, Opts);
    benchmark::DoNotOptimize(R.Counts.total());
  }
}
BENCHMARK(BM_DetectAdjacent);

static void BM_Transform(benchmark::State &State) {
  Trace &Tr = benchTrace();
  CsIndex Index = CsIndex::build(Tr);
  for (auto _ : State) {
    TransformResult R = transformTrace(Tr, Index);
    benchmark::DoNotOptimize(R.NumAuxLocks);
  }
}
BENCHMARK(BM_Transform);

static void BM_GenerateWorkload(benchmark::State &State) {
  for (auto _ : State) {
    Trace Tr = generateWorkload(makeFerret(2, 1.0));
    benchmark::DoNotOptimize(Tr.numEvents());
  }
}
BENCHMARK(BM_GenerateWorkload);

BENCHMARK_MAIN();
