//===- bench/BenchUtil.h - Shared bench helpers ------------------*- C++ -*-===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure regeneration binaries: paper
/// reference values (for side-by-side printing), app lookup, and the
/// common detect/transform/replay pipeline invocation.
///
//===----------------------------------------------------------------------===//

#ifndef PERFPLAY_BENCH_BENCHUTIL_H
#define PERFPLAY_BENCH_BENCHUTIL_H

#include "core/PerfPlay.h"
#include "workloads/Apps.h"
#include "workloads/WorkloadSpec.h"

#include <cstdio>
#include <string>

namespace perfplay {
namespace bench {

/// Table 1 reference row from the paper (unscaled).
struct Table1Row {
  const char *Name;
  uint64_t Locks;
  uint64_t NL;
  uint64_t RR;
  uint64_t DW;
  uint64_t Benign;
};

/// The paper's Table 1, in order.
inline const Table1Row PaperTable1[16] = {
    {"openldap", 1851, 75, 1414, 473, 15},
    {"mysql", 2109, 125, 9822, 2924, 194},
    {"pbzip2", 1281, 2, 1047, 838, 51},
    {"transmissionBT", 352, 15, 111, 123, 29},
    {"handbrake", 18316, 10, 1536, 1143, 189},
    {"blackscholes", 0, 0, 0, 0, 0},
    {"bodytrack", 32642, 0, 1322, 321, 43},
    {"canneal", 34, 0, 0, 0, 0},
    {"dedup", 19352, 231, 2421, 1952, 164},
    {"facesim", 14541, 102, 871, 819, 12},
    {"ferret", 6231, 11, 101, 231, 343},
    {"fluidanimate", 82142, 2, 10501, 6694, 197},
    {"streamcluster", 191, 0, 0, 0, 0},
    {"swaptions", 23, 0, 0, 0, 0},
    {"vips", 33586, 142, 4512, 1142, 26},
    {"x264", 16767, 941, 3841, 412, 84},
};

/// Table 2 reference (grouped ULCPs and best-group share).
struct Table2Row {
  const char *Name;
  unsigned GroupedUlcps;
  double BestP; // ULCP_1.P
};

inline const Table2Row PaperTable2[10] = {
    {"openldap", 18, 0.301},   {"mysql", 57, 0.125},
    {"pbzip2", 4, 0.594},      {"transmissionBT", 2, 0.535},
    {"handbrake", 29, 0.154},  {"blackscholes", 0, 0.0},
    {"bodytrack", 5, 0.209},   {"facesim", 11, 0.312},
    {"fluidanimate", 3, 0.265}, {"swaptions", 0, 0.0},
};

/// Table 3 reference (lockset overhead w/o and w/ DLS).
struct Table3Row {
  const char *Name;
  double WithoutDls;
  double WithDls;
};

inline const Table3Row PaperTable3[11] = {
    {"blackscholes", 0.0, 0.0}, {"bodytrack", 0.053, 0.005},
    {"canneal", 0.002, 0.002},  {"dedup", 0.046, 0.007},
    {"facesim", 0.078, 0.012},  {"ferret", 0.107, 0.036},
    {"fluidanimate", 0.141, 0.043}, {"streamcluster", 0.029, 0.006},
    {"swaptions", 0.004, 0.004}, {"vips", 0.076, 0.024},
    {"x264", 0.050, 0.019},
};

/// Finds an application model by name (the paper's sixteen plus the
/// synthetic corpora); returns nullptr if unknown.
inline const AppModel *findApp(const std::string &Name) {
  for (const AppModel &App : allApps())
    if (App.Name == Name)
      return &App;
  for (const AppModel &App : syntheticApps())
    if (App.Name == Name)
      return &App;
  return nullptr;
}

/// Runs the full pipeline over an app model.
inline PipelineResult runAppPipeline(const AppModel &App, unsigned Threads,
                                     double Scale,
                                     PairModeKind Mode =
                                         PairModeKind::AdjacentCrossThread) {
  Trace Tr = generateWorkload(App.Factory(Threads, Scale));
  PipelineOptions Opts;
  Opts.Detect.PairMode = Mode;
  return runPerfPlay(std::move(Tr), Opts);
}

} // namespace bench
} // namespace perfplay

#endif // PERFPLAY_BENCH_BENCHUTIL_H
