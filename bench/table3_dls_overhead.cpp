//===- bench/table3_dls_overhead.cpp - regenerate Table 3 -------------------===//
//
// Table 3: runtime overhead of lockset maintenance when replaying the
// transformed (ULCP-free) PARSEC traces, with and without the dynamic
// locking strategy.  Overhead is measured as the replay-time increase
// relative to a zero-maintenance-cost replay of the same trace.
// Expected shape: w/o DLS up to ~14% (fluidanimate), DLS cuts it to a
// few percent everywhere (<= ~4.3%).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "detect/CriticalSection.h"
#include "sim/Replayer.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Transform.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

namespace {

double overheadVsFree(const Trace &Transformed, bool UseDls) {
  ReplayOptions Base;
  Base.UseDynamicLocking = UseDls;
  ReplayOptions Free = Base;
  Free.Costs.LocksetMaintain = 0;
  Free.Costs.LocksetMaintainDls = 0;
  Free.Costs.LocksetEndCheck = 0;
  ReplayResult RBase = replayTrace(Transformed, Base);
  ReplayResult RFree = replayTrace(Transformed, Free);
  if (!RBase.ok() || !RFree.ok() || RFree.TotalTime == 0)
    return -1.0;
  return static_cast<double>(RBase.TotalTime) /
             static_cast<double>(RFree.TotalTime) -
         1.0;
}

} // namespace

int main() {
  std::printf("Table 3: lockset runtime overhead with/without the "
              "dynamic locking strategy.\n\n");

  Table T;
  T.addRow({"application", "w/o DLS", "w/ DLS", "locks w/o", "locks w/",
            "| paper w/o", "w/"});
  for (const Table3Row &Ref : PaperTable3) {
    const AppModel *App = findApp(Ref.Name);
    if (!App) {
      std::fprintf(stderr, "unknown app %s\n", Ref.Name);
      return 1;
    }
    Trace Tr = generateWorkload(App->Factory(2, 1.0));
    ReplayResult Rec = recordGrantSchedule(Tr, 42);
    if (!Rec.ok()) {
      std::fprintf(stderr, "%s: %s\n", Ref.Name, Rec.Error.c_str());
      return 1;
    }
    CsIndex Index = CsIndex::build(Tr);
    TransformResult TR = transformTrace(Tr, Index);

    double Without = overheadVsFree(TR.Transformed, /*UseDls=*/false);
    double With = overheadVsFree(TR.Transformed, /*UseDls=*/true);
    ReplayOptions CountOpts;
    CountOpts.UseDynamicLocking = false;
    uint64_t LocksFull =
        replayTrace(TR.Transformed, CountOpts).LocksetLocksAcquired;
    CountOpts.UseDynamicLocking = true;
    uint64_t LocksDls =
        replayTrace(TR.Transformed, CountOpts).LocksetLocksAcquired;

    T.addRow({Ref.Name, formatPercent(Without < 0 ? 0 : Without),
              formatPercent(With < 0 ? 0 : With),
              std::to_string(LocksFull), std::to_string(LocksDls),
              "| " + formatPercent(Ref.WithoutDls),
              formatPercent(Ref.WithDls)});
  }
  std::printf("%s", T.render().c_str());
  return 0;
}
