//===- bench/fig19_case_study.cpp - regenerate Figure 19 --------------------===//
//
// Figure 19: sensitivity of the two re-implemented ULCP bugs.
//  (a) vs thread count: #BUG1 (openldap spin-wait) wastes a stable
//      amount of CPU per thread; #BUG2 (pbzip2 polling) loses more
//      performance as threads grow.
//  (b) vs input size: both bugs execute a *fixed* number of times, so
//      their normalized impact declines as the input grows.
// Impact is measured directly as buggy-vs-fixed trace replays (the
// paper's re-quantification), normalized by the buggy time.
//
//===----------------------------------------------------------------------===//

#include "core/PerfPlay.h"
#include "sim/Replayer.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/CaseStudies.h"

#include <cstdio>

using namespace perfplay;

namespace {

struct BugImpact {
  double Bug1CpuWaste;  // Spin waste per thread / total (BUG1).
  double Bug2PerfLoss;  // (buggy - fixed) / buggy (BUG2).
};

BugImpact measure(unsigned Threads, double Scale) {
  BugImpact Impact{0.0, 0.0};

  CaseStudyParams P;
  P.NumThreads = Threads;
  P.InputScale = Scale;

  // #BUG1: CPU wasting per thread — the spin waits plus the useless
  // polling computation inside the workers' critical sections (the
  // paper's "useless ULCP computation on the non-critical path").
  Trace Bug1 = makeOpenldapSpinWait(P);
  recordGrantSchedule(Bug1, 42);
  ReplayResult R1 = replayTrace(Bug1, ReplayOptions());
  if (R1.ok() && R1.TotalTime > 0 && Threads > 1) {
    TimeNs PollBusy = 0;
    for (uint32_t Cs = 0; Cs != R1.Sections.size(); ++Cs) {
      // The last thread is the critical reference holder; the rest
      // are polling workers.
      if (Bug1.csRefOf(Cs).Thread + 1 == Threads)
        continue;
      const CsTiming &T = R1.Sections[Cs];
      if (T.Granted != NeverNs && T.Released != NeverNs)
        PollBusy += T.Released - T.Granted;
    }
    double PerThread =
        static_cast<double>(R1.SpinWaitNs + PollBusy) /
        static_cast<double>(Threads - 1);
    Impact.Bug1CpuWaste = PerThread / static_cast<double>(R1.TotalTime);
  }

  // #BUG2: performance loss of the buggy variant vs the fix.
  Trace Bug2 = makePbzip2Consumer(P);
  Trace Bug2Fixed = makePbzip2ConsumerFixed(P);
  recordGrantSchedule(Bug2, 42);
  recordGrantSchedule(Bug2Fixed, 42);
  ReplayResult R2 = replayTrace(Bug2, ReplayOptions());
  ReplayResult R2F = replayTrace(Bug2Fixed, ReplayOptions());
  if (R2.ok() && R2F.ok() && R2.TotalTime > 0) {
    double Loss = static_cast<double>(R2.TotalTime) -
                  static_cast<double>(R2F.TotalTime);
    Impact.Bug2PerfLoss =
        Loss > 0 ? Loss / static_cast<double>(R2.TotalTime) : 0.0;
  }
  return Impact;
}

} // namespace

int main() {
  std::printf("Figure 19: #BUG1 / #BUG2 sensitivity (buggy vs fixed "
              "replays).\n\n");

  Table A;
  A.addRow({"threads", "BUG1 CPU waste/thread", "BUG2 perf loss"});
  for (unsigned Threads : {2u, 4u, 6u, 8u}) {
    BugImpact I = measure(Threads, 1.0);
    A.addRow({std::to_string(Threads), formatPercent(I.Bug1CpuWaste),
              formatPercent(I.Bug2PerfLoss)});
  }
  std::printf("(a) vs thread count (input scale 1.0)\n%s\n",
              A.render().c_str());

  Table B;
  B.addRow({"input scale", "BUG1 CPU waste/thread", "BUG2 perf loss"});
  for (double Scale : {1.0, 2.0, 3.0, 4.0}) {
    BugImpact I = measure(4, Scale);
    B.addRow({formatDouble(Scale, 1), formatPercent(I.Bug1CpuWaste),
              formatPercent(I.Bug2PerfLoss)});
  }
  std::printf("(b) vs input size (4 threads)\n%s", B.render().c_str());
  std::printf("\nexpected: (a) BUG1 ~flat, BUG2 rising; (b) both "
              "declining with input size.\n");
  return 0;
}
