//===- bench/ablation_detection.cpp - detection design ablations ------------===//
//
// Ablations for two detection design choices:
//
//  1. Reversed replay (Section 3.1): without it, every statically
//     conflicting pair must be treated as true contention — benign
//     ULCPs (redundant/commutative updates) are lost, understating the
//     optimization opportunity exactly where the paper says ferret's
//     ULCPs live.
//
//  2. Pair enumeration: all cross-thread pairs (the paper's counting
//     basis, quadratic) vs only pairs adjacent in the grant order (the
//     contentions that serialized the run).  The adjacent set is the
//     one Equation 1 attributes time to; the full set shows scale.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "detect/CriticalSection.h"
#include "detect/Detector.h"
#include "sim/Replayer.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Ablation 1: reversed replay on/off (2 threads, "
              "all-pairs counting).\n\n");
  Table A;
  A.addRow({"application", "benign w/", "TLCP w/", "benign w/o",
            "TLCP w/o"});
  for (const char *Name : {"openldap", "mysql", "ferret", "fluidanimate"}) {
    const AppModel *App = findApp(Name);
    Trace Tr = generateWorkload(App->Factory(2, 1.0));
    recordGrantSchedule(Tr, 42);
    CsIndex Index = CsIndex::build(Tr);

    DetectOptions With;
    With.PairMode = PairModeKind::AllCrossThread;
    With.UseReversedReplay = true;
    DetectOptions Without = With;
    Without.UseReversedReplay = false;

    UlcpCounts CW = detectUlcps(Tr, Index, With).Counts;
    UlcpCounts CO = detectUlcps(Tr, Index, Without).Counts;
    A.addRow({Name, std::to_string(CW.Benign),
              std::to_string(CW.TrueContention),
              std::to_string(CO.Benign),
              std::to_string(CO.TrueContention)});
  }
  std::printf("%s", A.render().c_str());
  std::printf("\nexpected: w/o reversed replay, benign collapses to 0 and "
              "the same pairs inflate TLCP.\n\n");

  std::printf("Ablation 2: pair enumeration mode (2 threads).\n\n");
  Table B;
  B.addRow({"application", "all pairs", "adjacent pairs",
            "distance<=4"});
  for (const char *Name : {"openldap", "mysql", "pbzip2", "x264"}) {
    const AppModel *App = findApp(Name);
    Trace Tr = generateWorkload(App->Factory(2, 1.0));
    recordGrantSchedule(Tr, 42);
    CsIndex Index = CsIndex::build(Tr);

    DetectOptions All;
    All.PairMode = PairModeKind::AllCrossThread;
    DetectOptions Adjacent;
    Adjacent.PairMode = PairModeKind::AdjacentCrossThread;
    DetectOptions Near;
    Near.PairMode = PairModeKind::AllCrossThread;
    Near.MaxPairDistance = 4;

    B.addRow({Name,
              std::to_string(
                  detectUlcps(Tr, Index, All).Counts.totalUnnecessary()),
              std::to_string(detectUlcps(Tr, Index, Adjacent)
                                 .Counts.totalUnnecessary()),
              std::to_string(
                  detectUlcps(Tr, Index, Near).Counts.totalUnnecessary())});
  }
  std::printf("%s", B.render().c_str());
  std::printf("\nexpected: adjacent <= distance-bounded <= all; the "
              "quadratic blow-up is visible\nin the all-pairs column.\n");
  return 0;
}
