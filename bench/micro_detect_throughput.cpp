//===- bench/micro_detect_throughput.cpp - detection throughput -------------===//
//
// Measures ULCP detection throughput (classified pairs per second) on a
// lock-heavy workload under the detector's performance knobs: serial
// baseline, parallel classification, key-pair dedup, and both combined.
// All configurations produce bit-identical Counts (asserted here), so
// the comparison is pure speed.  Emits BENCH_detect.json for CI
// tracking alongside a human-readable table.
//
// A second corpus — wide-set sections touching 10k..1M addresses,
// dense (interleaved, bitmap blocks) and sparse (strided, small
// blocks) — times Algorithm 1's read/write-set intersection under
// SetRepr::Sorted vs SetRepr::Bitset (support/AddrSet.h) and records
// bitset_intersect_speedup.  Verdict parity across representations is
// asserted per entry, and the run exits non-zero if the dense corpus
// falls below --min-speedup (default 4x), so CI smoke gates the
// word-parallel path.
//
// A third corpus — the synthetic rwmix application (shared rwlock
// sections, failed trylocks, condvar hand-offs) — times detection over
// the extended event vocabulary and records the per-kind verdict split
// in an "rwlock" block: reader-reader pairs must classify as ReadRead
// by the static shared-shared rule (never reaching replay), failed
// tries must surface as try_fail_edges, and condvar-ordered pairs as
// TrueContention.
//
// Usage:
//   bench_micro_detect_throughput [--app NAME] [--threads N] [--scale S]
//                                 [--detect-threads N] [--repeat K]
//                                 [--out FILE] [--no-wide] [--no-rwlock]
//                                 [--min-speedup X]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "detect/CriticalSection.h"
#include "detect/Detector.h"
#include "sim/Replayer.h"
#include "trace/TraceBuilder.h"
#include "workloads/WorkloadSpec.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace perfplay;

namespace {

/// The default bench workload: one hot lock hammered by every thread,
/// with section bodies drawn from a small set of code-site patterns —
/// the structure Table 2 reports for real applications, where a few
/// static ULCP groups cover thousands of dynamic pairs (e.g. pbzip2:
/// 4 groups, ULCP_1 at 59%).  Pattern pairs span every classification:
/// redundant flag stores and commutative adds/ors (Benign, replayed),
/// store-vs-read (TrueContention, replayed), read-only stats (RR),
/// and per-thread slots (DisjointWrite).
Trace makeLockHeavyTrace(unsigned Threads, unsigned PerThread) {
  enum : AddrId { Flag = 1, Bits = 2, Counter = 3, Stats = 4, Slots = 100 };
  TraceBuilder B;
  LockId Mu = B.addLock("hot_mu");
  std::vector<CodeSiteId> Sites;
  for (unsigned P = 0; P != 8; ++P)
    Sites.push_back(B.addSite("hot.cc", "pattern" + std::to_string(P),
                              10 * P, 10 * P + 9));
  std::vector<ThreadId> Ids;
  for (unsigned T = 0; T != Threads; ++T)
    Ids.push_back(B.addThread());

  auto Body = [&](ThreadId T, unsigned Pattern) {
    switch (Pattern) {
    case 0: // Redundant flag publication.
      for (unsigned K = 0; K != 4; ++K)
        B.write(T, Flag + 10 * K, 1);
      break;
    case 1: // Flag polling: conflicts with pattern 0.
      for (unsigned K = 0; K != 4; ++K)
        B.read(T, Flag + 10 * K, 0);
      B.read(T, Stats, 0);
      break;
    case 2: // Disjoint bit manipulation (benign vs 2 and 3).
      for (unsigned K = 0; K != 4; ++K)
        B.write(T, Bits + K, 0x01, WriteOpKind::Or);
      break;
    case 3:
      for (unsigned K = 0; K != 4; ++K)
        B.write(T, Bits + K, 0x10, WriteOpKind::Or);
      break;
    case 4: // Blind commutative counters (benign vs 4 and 5).
      for (unsigned K = 0; K != 4; ++K)
        B.write(T, Counter + K, 7, WriteOpKind::Add);
      break;
    case 5:
      for (unsigned K = 0; K != 4; ++K)
        B.write(T, Counter + K, 9, WriteOpKind::Add);
      break;
    case 6: // Read-only statistics (RR).
      for (unsigned K = 0; K != 6; ++K)
        B.read(T, Stats + K, 0);
      break;
    default: // Per-thread slot (DisjointWrite across threads).
      B.write(T, Slots + 8 * T, T + 1);
      B.write(T, Slots + 8 * T + 1, T + 1, WriteOpKind::Add);
      break;
    }
  };

  for (unsigned I = 0; I != PerThread; ++I)
    for (unsigned T = 0; T != Threads; ++T) {
      B.compute(Ids[T], 50);
      B.beginCs(Ids[T], Mu, Sites[I % 8]);
      Body(Ids[T], I % 8);
      B.endCs(Ids[T]);
    }
  return B.finish();
}

struct ConfigResult {
  const char *Name;
  unsigned Threads;
  bool Dedup;
  double Seconds = 0.0;
  double PairsPerSec = 0.0;
  UlcpCounts Counts;
  DetectStats Stats;
};

double runConfig(const Trace &Tr, const CsIndex &Index, ConfigResult &Cfg,
                 unsigned Repeat) {
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  Opts.NumThreads = Cfg.Threads;
  Opts.DedupPairs = Cfg.Dedup;
  // Counts-only keeps the O(n^2) pair vector out of the measurement:
  // the bench times classification, not vector growth.
  Opts.CountsOnly = true;

  auto Start = std::chrono::steady_clock::now();
  DetectResult R;
  for (unsigned I = 0; I != Repeat; ++I)
    R = detectUlcps(Tr, Index, Opts);
  auto End = std::chrono::steady_clock::now();
  Cfg.Seconds =
      std::chrono::duration<double>(End - Start).count() / Repeat;
  Cfg.Counts = R.Counts;
  Cfg.Stats = R.Stats;
  Cfg.PairsPerSec = Cfg.Seconds > 0.0
                        ? static_cast<double>(R.Counts.total()) / Cfg.Seconds
                        : 0.0;
  return Cfg.Seconds;
}

//===----------------------------------------------------------------------===//
// Wide-set corpus: SetRepr::Sorted vs SetRepr::Bitset intersection.
//===----------------------------------------------------------------------===//

/// Two threads, one lock, one section each, every section touching
/// \p Addrs addresses.  Dense entries interleave even/odd addresses
/// over one contiguous range, so every 1024-address chunk holds 512
/// members per section (bitmap blocks, word-parallel AND); sparse
/// entries stride by 128 with a half-stride offset, so chunks hold 8
/// members per section (small sorted-array blocks).  Both shapes make
/// the pair DisjointWrite: overlapping value ranges, no shared
/// address — the worst case for the sorted merge (no early exit, full
/// O(n) walk) and the case the chunked bitmap is built for.
Trace makeWideSetTrace(size_t Addrs, bool Dense) {
  const uint64_t Stride = Dense ? 2 : 128;
  TraceBuilder B;
  LockId Mu = B.addLock("wide_mu");
  CodeSiteId S0 = B.addSite("wide.cc", "writer_lo", 1, 9);
  CodeSiteId S1 = B.addSite("wide.cc", "writer_hi", 11, 19);
  ThreadId T0 = B.addThread();
  ThreadId T1 = B.addThread();
  B.beginCs(T0, Mu, S0);
  for (size_t I = 0; I != Addrs; ++I)
    B.write(T0, static_cast<AddrId>(I * Stride), 1);
  B.endCs(T0);
  B.beginCs(T1, Mu, S1);
  for (size_t I = 0; I != Addrs; ++I)
    B.write(T1, static_cast<AddrId>(I * Stride + Stride / 2), 1);
  B.endCs(T1);
  return B.finish();
}

struct WideResult {
  const char *Name;
  size_t Addrs;
  bool Dense;
  double SortedSec = 0.0;
  double BitsetSec = 0.0;
  double AutoSec = 0.0;
  double Speedup = 0.0;
  const char *Verdict = "";
  bool Parity = true;
};

/// Times \p Iters static classifications of the corpus pair under
/// \p Repr.  classifyPairStatic is intersection-bound here: the
/// sections are write-only, so the one live intersection is
/// writes-vs-writes over the full wide sets.
double timeStaticClassification(const CriticalSection &C1,
                                const CriticalSection &C2, SetRepr Repr,
                                unsigned Iters, UlcpKind &VerdictOut) {
  auto Start = std::chrono::steady_clock::now();
  unsigned Acc = 0;
  for (unsigned I = 0; I != Iters; ++I)
    Acc += static_cast<unsigned>(classifyPairStatic(C1, C2, Repr));
  auto End = std::chrono::steady_clock::now();
  VerdictOut = static_cast<UlcpKind>(Acc / Iters);
  return std::chrono::duration<double>(End - Start).count() / Iters;
}

/// Runs one corpus entry: builds the trace, asserts end-to-end verdict
/// parity (full detectUlcps counts identical across representations),
/// then times the static classification under both pinned
/// representations.
WideResult runWideEntry(const char *Name, size_t Addrs, bool Dense) {
  WideResult R;
  R.Name = Name;
  R.Addrs = Addrs;
  R.Dense = Dense;

  Trace Tr = makeWideSetTrace(Addrs, Dense);
  CsIndex Index = CsIndex::build(Tr);
  const CriticalSection &C1 = Index.byGlobalId(0);
  const CriticalSection &C2 = Index.byGlobalId(1);

  // Per-entry iteration budget: ~30M touched addresses per timing leg
  // keeps every entry in the tens of milliseconds.
  unsigned Iters = static_cast<unsigned>(
      std::max<size_t>(3, 30 * 1000 * 1000 / std::max<size_t>(1, Addrs)));

  UlcpKind SortedVerdict, BitsetVerdict, AutoVerdict;
  R.SortedSec = timeStaticClassification(C1, C2, SetRepr::Sorted, Iters,
                                         SortedVerdict);
  R.BitsetSec = timeStaticClassification(C1, C2, SetRepr::Bitset, Iters,
                                         BitsetVerdict);
  R.AutoSec = timeStaticClassification(C1, C2, SetRepr::Auto, Iters,
                                       AutoVerdict);
  R.Speedup = R.BitsetSec > 0.0 ? R.SortedSec / R.BitsetSec : 0.0;
  R.Verdict = ulcpKindName(SortedVerdict);
  R.Parity = SortedVerdict == BitsetVerdict && SortedVerdict == AutoVerdict;

  // End-to-end parity: the whole detector, not just the static path.
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  Opts.CountsOnly = true;
  Opts.Repr = SetRepr::Sorted;
  DetectResult Sorted = detectUlcps(Tr, Index, Opts);
  Opts.Repr = SetRepr::Bitset;
  DetectResult Bitset = detectUlcps(Tr, Index, Opts);
  R.Parity = R.Parity &&
             Sorted.Counts.NullLock == Bitset.Counts.NullLock &&
             Sorted.Counts.ReadRead == Bitset.Counts.ReadRead &&
             Sorted.Counts.DisjointWrite == Bitset.Counts.DisjointWrite &&
             Sorted.Counts.Benign == Bitset.Counts.Benign &&
             Sorted.Counts.TrueContention == Bitset.Counts.TrueContention;
  return R;
}

std::string option(int Argc, char **Argv, const char *Name,
                   const char *Default) {
  std::string Prefix = std::string(Name) + "=";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], Name) == 0 && I + 1 < Argc)
      return Argv[I + 1];
    if (std::strncmp(Argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return Argv[I] + Prefix.size();
  }
  return Default;
}

bool flag(int Argc, char **Argv, const char *Name) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Name) == 0)
      return true;
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string AppName = option(Argc, Argv, "--app", "lockheavy");
  unsigned Threads = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--threads", "4").c_str()));
  double Scale = std::atof(option(Argc, Argv, "--scale", "1.0").c_str());
  unsigned DetectThreads = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--detect-threads", "4").c_str()));
  unsigned Repeat = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--repeat", "3").c_str()));
  std::string Out = option(Argc, Argv, "--out", "BENCH_detect.json");
  bool NoWide = flag(Argc, Argv, "--no-wide");
  bool NoRwlock = flag(Argc, Argv, "--no-rwlock");
  double MinSpeedup =
      std::atof(option(Argc, Argv, "--min-speedup", "4.0").c_str());
  if (Repeat == 0)
    Repeat = 1;

  Trace Tr;
  if (AppName == "lockheavy") {
    Tr = makeLockHeavyTrace(
        Threads, static_cast<unsigned>(250 * Scale));
  } else {
    const AppModel *App = bench::findApp(AppName);
    if (!App) {
      std::fprintf(stderr, "unknown app '%s'\n", AppName.c_str());
      return 1;
    }
    Tr = generateWorkload(App->Factory(Threads, Scale));
  }
  recordGrantSchedule(Tr, 42);
  CsIndex Index = CsIndex::build(Tr);

  ConfigResult Configs[] = {
      {"serial", 1, false, 0, 0, {}, {}},
      {"parallel", DetectThreads, false, 0, 0, {}, {}},
      {"dedup", 1, true, 0, 0, {}, {}},
      {"parallel_dedup", DetectThreads, true, 0, 0, {}, {}},
  };
  for (ConfigResult &Cfg : Configs)
    runConfig(Tr, Index, Cfg, Repeat);

  // Every configuration must agree with the serial baseline; a
  // mismatch means the optimization changed results, not just speed.
  const UlcpCounts &Base = Configs[0].Counts;
  for (const ConfigResult &Cfg : Configs)
    if (Cfg.Counts.NullLock != Base.NullLock ||
        Cfg.Counts.ReadRead != Base.ReadRead ||
        Cfg.Counts.DisjointWrite != Base.DisjointWrite ||
        Cfg.Counts.Benign != Base.Benign ||
        Cfg.Counts.TrueContention != Base.TrueContention) {
      std::fprintf(stderr, "FATAL: config '%s' diverged from serial\n",
                   Cfg.Name);
      return 1;
    }

  std::printf("detect throughput: %s @%u threads, scale %.2f — %zu "
              "sections, %llu pairs, %llu distinct keys\n",
              AppName.c_str(), Threads, Scale, Index.size(),
              static_cast<unsigned long long>(Base.total()),
              static_cast<unsigned long long>(
                  Configs[3].Stats.NumSectionKeys));
  for (const ConfigResult &Cfg : Configs)
    std::printf("  %-14s %8.3f ms  %12.0f pairs/s  (%.2fx)\n", Cfg.Name,
                Cfg.Seconds * 1e3, Cfg.PairsPerSec,
                Cfg.PairsPerSec / Configs[0].PairsPerSec);

  // Wide-set intersection corpus (sorted-vector vs chunked-bitmap).
  std::vector<WideResult> Wide;
  bool WideParityOk = true;
  double DenseMinSpeedup = 0.0;
  if (!NoWide) {
    Wide.push_back(runWideEntry("dense_10k", 10 * 1000, true));
    Wide.push_back(runWideEntry("dense_100k", 100 * 1000, true));
    Wide.push_back(runWideEntry("dense_1m", 1000 * 1000, true));
    Wide.push_back(runWideEntry("sparse_10k", 10 * 1000, false));
    Wide.push_back(runWideEntry("sparse_100k", 100 * 1000, false));

    std::printf("wide-set intersection: sorted vs bitset "
                "(DisjointWrite pairs)\n");
    for (const WideResult &W : Wide) {
      std::printf("  %-12s %7zu addrs  sorted %9.3f us  bitset %9.3f us"
                  "  auto %9.3f us  %7.1fx  %s%s\n",
                  W.Name, W.Addrs, W.SortedSec * 1e6, W.BitsetSec * 1e6,
                  W.AutoSec * 1e6, W.Speedup, W.Verdict,
                  W.Parity ? "" : "  PARITY FAIL");
      WideParityOk = WideParityOk && W.Parity;
      if (W.Dense)
        DenseMinSpeedup = DenseMinSpeedup == 0.0
                              ? W.Speedup
                              : std::min(DenseMinSpeedup, W.Speedup);
    }
  }

  // Rwlock-heavy corpus: the extended vocabulary (shared sections,
  // failed trylocks, condvar ordering) through the same detector.
  struct {
    bool Ran = false;
    size_t Sections = 0;
    double Seconds = 0.0;
    double PairsPerSec = 0.0;
    UlcpCounts Counts;
    uint64_t TryFailEdges = 0;
  } Rw;
  if (!NoRwlock) {
    const AppModel *RwApp = bench::findApp("rwmix");
    if (!RwApp) {
      std::fprintf(stderr, "FATAL: synthetic app 'rwmix' not registered\n");
      return 1;
    }
    Trace RwTr = generateWorkload(RwApp->Factory(4, Scale));
    recordGrantSchedule(RwTr, 42);
    CsIndex RwIndex = CsIndex::build(RwTr);
    DetectOptions RwOpts;
    RwOpts.PairMode = PairModeKind::AllCrossThread;
    RwOpts.CountsOnly = true;
    auto Start = std::chrono::steady_clock::now();
    DetectResult RwR;
    for (unsigned I = 0; I != Repeat; ++I)
      RwR = detectUlcps(RwTr, RwIndex, RwOpts);
    auto End = std::chrono::steady_clock::now();
    Rw.Ran = true;
    Rw.Sections = RwIndex.size();
    Rw.Seconds =
        std::chrono::duration<double>(End - Start).count() / Repeat;
    Rw.Counts = RwR.Counts;
    Rw.TryFailEdges = RwR.TryFailEdges;
    Rw.PairsPerSec =
        Rw.Seconds > 0.0
            ? static_cast<double>(RwR.Counts.total()) / Rw.Seconds
            : 0.0;
    std::printf("rwlock corpus: rwmix @4 threads — %zu sections, %llu "
                "pairs (RR=%llu true=%llu), %llu failed tries, "
                "%.3f ms\n",
                Rw.Sections,
                static_cast<unsigned long long>(Rw.Counts.total()),
                static_cast<unsigned long long>(Rw.Counts.ReadRead),
                static_cast<unsigned long long>(Rw.Counts.TrueContention),
                static_cast<unsigned long long>(Rw.TryFailEdges),
                Rw.Seconds * 1e3);
    // The corpus exists to exercise the extended kinds; a run with no
    // shared-section pairs or no trylock witnesses means the generator
    // regressed, not that detection got faster.
    if (Rw.Counts.ReadRead == 0 || Rw.TryFailEdges == 0) {
      std::fprintf(stderr, "FATAL: rwmix corpus produced no "
                           "reader-reader pairs or no failed tries\n");
      return 1;
    }
  }

  FILE *F = std::fopen(Out.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Out.c_str());
    return 1;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"micro_detect_throughput\",\n"
               "  \"workload\": {\"app\": \"%s\", \"threads\": %u, "
               "\"scale\": %.3f},\n"
               "  \"sections\": %zu,\n"
               "  \"pairs\": %llu,\n"
               "  \"distinct_section_keys\": %llu,\n"
               "  \"detect_threads\": %u,\n"
               "  \"repeat\": %u,\n"
               "  \"configs\": [\n",
               AppName.c_str(), Threads, Scale, Index.size(),
               static_cast<unsigned long long>(Base.total()),
               static_cast<unsigned long long>(
                   Configs[3].Stats.NumSectionKeys),
               DetectThreads, Repeat);
  for (size_t I = 0; I != 4; ++I) {
    const ConfigResult &Cfg = Configs[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"threads\": %u, \"dedup\": %s, "
                 "\"seconds\": %.6f, \"pairs_per_sec\": %.1f, "
                 "\"classified\": %llu, \"speedup\": %.3f}%s\n",
                 Cfg.Name, Cfg.Threads, Cfg.Dedup ? "true" : "false",
                 Cfg.Seconds, Cfg.PairsPerSec,
                 static_cast<unsigned long long>(Cfg.Stats.NumClassified),
                 Cfg.PairsPerSec / Configs[0].PairsPerSec,
                 I + 1 != 4 ? "," : "");
  }
  std::fprintf(F, "  ]");
  if (!Wide.empty()) {
    std::fprintf(F, ",\n  \"wide_set\": [\n");
    for (size_t I = 0; I != Wide.size(); ++I) {
      const WideResult &W = Wide[I];
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"addrs_per_section\": %zu, "
                   "\"density\": \"%s\", \"verdict\": \"%s\", "
                   "\"sorted_seconds\": %.9f, \"bitset_seconds\": %.9f, "
                   "\"auto_seconds\": %.9f, "
                   "\"bitset_intersect_speedup\": %.3f, "
                   "\"parity\": %s}%s\n",
                   W.Name, W.Addrs, W.Dense ? "dense" : "sparse",
                   W.Verdict, W.SortedSec, W.BitsetSec, W.AutoSec,
                   W.Speedup, W.Parity ? "true" : "false",
                   I + 1 != Wide.size() ? "," : "");
    }
    // The headline number: the worst dense-corpus speedup, i.e. the
    // conservative answer to "what does the word-parallel path buy on
    // wide dense sets".
    std::fprintf(F,
                 "  ],\n  \"bitset_intersect_speedup\": %.3f",
                 DenseMinSpeedup);
  }
  if (Rw.Ran)
    std::fprintf(F,
                 ",\n  \"rwlock\": {\"app\": \"rwmix\", \"threads\": 4, "
                 "\"sections\": %zu, \"seconds\": %.6f, "
                 "\"pairs_per_sec\": %.1f, \"pairs\": %llu, "
                 "\"read_read\": %llu, \"true_contention\": %llu, "
                 "\"try_fail_edges\": %llu}",
                 Rw.Sections, Rw.Seconds, Rw.PairsPerSec,
                 static_cast<unsigned long long>(Rw.Counts.total()),
                 static_cast<unsigned long long>(Rw.Counts.ReadRead),
                 static_cast<unsigned long long>(Rw.Counts.TrueContention),
                 static_cast<unsigned long long>(Rw.TryFailEdges));
  std::fprintf(F, "\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Out.c_str());

  if (!Wide.empty()) {
    if (!WideParityOk) {
      std::fprintf(stderr, "FATAL: wide-set corpus verdicts diverged "
                           "between SetRepr::Sorted and SetRepr::Bitset\n");
      return 1;
    }
    if (DenseMinSpeedup < MinSpeedup) {
      std::fprintf(stderr,
                   "FATAL: dense wide-set bitset speedup %.2fx below "
                   "the %.2fx floor\n",
                   DenseMinSpeedup, MinSpeedup);
      return 1;
    }
  }
  return 0;
}
