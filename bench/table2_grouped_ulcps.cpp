//===- bench/table2_grouped_ulcps.cpp - regenerate Table 2 ------------------===//
//
// Table 2: number of fused (per-code-region) ULCP groups and the
// relative optimization share P of the most beneficial one, for the
// ten applications the paper lists.  Expected shape: apps with few
// distinct sites concentrate benefit (pbzip2 ~59%, transmissionBT
// ~54%); apps with many sites dilute it (mysql ~12%); the clean apps
// have zero groups.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Table 2: grouped ULCP code regions and the most "
              "beneficial group's share.\n\n");

  Table T;
  T.addRow({"application", "#grouped", "ULCP1.P", "| paper:#grouped",
            "ULCP1.P"});
  for (const Table2Row &Ref : PaperTable2) {
    const AppModel *App = findApp(Ref.Name);
    if (!App) {
      std::fprintf(stderr, "unknown app %s\n", Ref.Name);
      return 1;
    }
    PipelineResult R = runAppPipeline(*App, 2, 1.0);
    if (!R.ok()) {
      std::fprintf(stderr, "%s: %s\n", Ref.Name, R.Error.c_str());
      return 1;
    }
    double BestP =
        R.Report.Groups.empty() ? 0.0 : R.Report.Groups.front().P;
    T.addRow({Ref.Name, std::to_string(R.Report.Groups.size()),
              formatPercent(BestP), "| " + std::to_string(Ref.GroupedUlcps),
              formatPercent(Ref.BestP)});
  }
  std::printf("%s", T.render().c_str());
  return 0;
}
