//===- bench/ablation_transform.cpp - transformation design ablations -------===//
//
// Ablations for two transformation/replay design choices:
//
//  1. RULE 2 partial-order constraints: dropping them leaves the
//     transformed trace's causal grants to arrival order.  The replay
//     stays correct w.r.t. mutual exclusion (locksets still enforce
//     RULE 4) but successive replays of transformed traces would no
//     longer be pinned to the original order — the paper introduces
//     RULE 2 precisely for stable performance analysis.
//
//  2. Replaying the ULCP-free trace under each enforcement scheme:
//     ELSC-style replay is the default; MEM-S shows how much the
//     PinPlay-style enforcement would distort the after-optimization
//     measurement.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "detect/CriticalSection.h"
#include "sim/Replayer.h"
#include "support/Format.h"
#include "support/Table.h"
#include "transform/Transform.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Ablation 1: RULE 2 constraints on/off (transformed-trace "
              "replay).\n\n");
  Table A;
  A.addRow({"application", "with RULE 2", "without", "order violations"});
  for (const char *Name : {"openldap", "mysql", "fluidanimate"}) {
    const AppModel *App = findApp(Name);
    Trace Tr = generateWorkload(App->Factory(2, 1.0));
    recordGrantSchedule(Tr, 42);
    CsIndex Index = CsIndex::build(Tr);
    TransformResult TR = transformTrace(Tr, Index);

    ReplayResult With = replayTrace(TR.Transformed, ReplayOptions());
    Trace Stripped = TR.Transformed;
    Stripped.Constraints.clear();
    ReplayResult Without = replayTrace(Stripped, ReplayOptions());
    if (!With.ok() || !Without.ok()) {
      std::fprintf(stderr, "%s: replay failed\n", Name);
      return 1;
    }
    // Count causal edges whose grant order inverted without RULE 2.
    uint64_t Violations = 0;
    for (const TopologyEdge &E : TR.Topology.edges())
      if (Without.Sections[E.To].Granted <
          Without.Sections[E.From].Granted)
        ++Violations;
    A.addRow({Name, formatNs(With.TotalTime), formatNs(Without.TotalTime),
              std::to_string(Violations)});
  }
  std::printf("%s", A.render().c_str());
  std::printf("\nexpected: similar times, but without RULE 2 the original "
              "partial order is no\nlonger guaranteed (violations may "
              "appear), undermining replay-to-replay stability.\n\n");

  std::printf("Ablation 2: ULCP-free trace under each scheme.\n\n");
  Table B;
  B.addRow({"application", "default", "ORIG-S", "MEM-S"});
  for (const char *Name : {"openldap", "mysql", "fluidanimate"}) {
    const AppModel *App = findApp(Name);
    Trace Tr = generateWorkload(App->Factory(2, 1.0));
    recordGrantSchedule(Tr, 42);
    CsIndex Index = CsIndex::build(Tr);
    TransformResult TR = transformTrace(Tr, Index);

    ReplayOptions Orig;
    Orig.Schedule = ScheduleKind::OrigS;
    ReplayOptions Mem;
    Mem.Schedule = ScheduleKind::MemS;
    ReplayResult RD = replayTrace(TR.Transformed, ReplayOptions());
    ReplayResult RO = replayTrace(TR.Transformed, Orig);
    ReplayResult RM = replayTrace(TR.Transformed, Mem);
    if (!RD.ok() || !RO.ok() || !RM.ok()) {
      std::fprintf(stderr, "%s: replay failed\n", Name);
      return 1;
    }
    B.addRow({Name, formatNs(RD.TotalTime), formatNs(RO.TotalTime),
              formatNs(RM.TotalTime)});
  }
  std::printf("%s", B.render().c_str());
  std::printf("\nexpected: MEM-S inflates the after-optimization time, "
              "which would overstate\nthe remaining contention; the "
              "default (ELSC-style) measurement does not.\n");
  return 0;
}
