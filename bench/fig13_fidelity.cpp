//===- bench/fig13_fidelity.cpp - regenerate Figure 13 ----------------------===//
//
// Figure 13: performance fidelity of the four replay schemes over the
// PARSEC models (simlarge), ten replays each.  Expected shape:
//  - ORIG-S: mean close to ELSC-S but wide spread (nondeterminism),
//  - ELSC-S: zero spread, time ~= ORIG-S (stable AND precise),
//  - SYNC-S: zero spread, time >= ELSC-S (input-driven waiting),
//  - MEM-S:  zero spread, much slower (global access serialization).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "sim/Replayer.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cstdio>

using namespace perfplay;
using namespace perfplay::bench;

int main() {
  std::printf("Figure 13: replayed execution time (mean over 10 replays; "
              "spread = max-min).\n\n");

  Table T;
  T.addRow({"application", "MEM-S", "SYNC-S", "ELSC-S", "ORIG-S",
            "ORIG-S spread", "ELSC-S spread"});

  for (const AppModel &App : parsecApps()) {
    Trace Tr = generateWorkload(App.Factory(2, 1.0));
    ReplayResult Rec = recordGrantSchedule(Tr, 42);
    if (!Rec.ok()) {
      std::fprintf(stderr, "%s: %s\n", App.Name.c_str(),
                   Rec.Error.c_str());
      return 1;
    }

    RunningStats Stats[4]; // MemS, SyncS, ElscS, OrigS.
    const ScheduleKind Kinds[4] = {ScheduleKind::MemS,
                                   ScheduleKind::SyncS,
                                   ScheduleKind::ElscS,
                                   ScheduleKind::OrigS};
    for (unsigned Replay = 0; Replay != 10; ++Replay)
      for (unsigned K = 0; K != 4; ++K) {
        ReplayOptions Opts;
        Opts.Schedule = Kinds[K];
        Opts.Seed = 1000 + Replay; // Varies the ORIG-S schedule only.
        ReplayResult R = replayTrace(Tr, Opts);
        if (!R.ok()) {
          std::fprintf(stderr, "%s/%s: %s\n", App.Name.c_str(),
                       scheduleKindName(Kinds[K]), R.Error.c_str());
          return 1;
        }
        Stats[K].add(static_cast<double>(R.TotalTime));
      }

    T.addRow({App.Name,
              formatNs(static_cast<TimeNs>(Stats[0].mean())),
              formatNs(static_cast<TimeNs>(Stats[1].mean())),
              formatNs(static_cast<TimeNs>(Stats[2].mean())),
              formatNs(static_cast<TimeNs>(Stats[3].mean())),
              formatNs(static_cast<TimeNs>(Stats[3].range())),
              formatNs(static_cast<TimeNs>(Stats[2].range()))});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nchecks: ELSC-S spread must be 0; ORIG-S spread > 0 for "
              "lock-active apps;\nMEM-S slowest; ELSC-S within ORIG-S "
              "noise.\n");
  return 0;
}
