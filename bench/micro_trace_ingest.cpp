//===- bench/micro_trace_ingest.cpp - trace ingestion throughput ------------===//
//
// Measures binary-trace ingestion under the two loader paths:
//
//   stream — the legacy copying path: stdio-read the whole file into a
//            byte vector, then parse out of the copy,
//   mmap   — the zero-copy path: map the file and parse straight out
//            of the page cache (support/MappedFile.h).
//
// Two phases are timed per path.  "ingest" is the cost of making the
// file's bytes addressable (the read-and-copy that mmap eliminates —
// this is where the >= 2x zero-copy win lives, and it grows with the
// file); "end-to-end" is the full loadTrace including the parse, whose
// event decoding dominates and is common to both paths.  The stream
// path additionally holds a transient whole-file copy, so its peak
// memory is file-size bytes higher — reported as peak_extra_bytes.
//
// Both paths must produce byte-identical traces (asserted).  Emits
// BENCH_traceio.json for CI tracking alongside a human-readable table.
//
// A second, name-heavy corpus (thousands of locks and call sites with
// long symbol names — the shape of the paper's Table 1/Table 2
// workloads) measures the string-pool tentpole:
//
//   copy elimination — parsing the mapped file with borrowed name
//       storage (NameStorage::Borrowed: string_views into the mapping)
//       vs. owned interning; the borrowed parse must report ZERO owned
//       name bytes (StringPool::stats), which this driver asserts,
//   dedup compare    — name equality as pooled-id integer compares vs.
//       materialized std::string compares (the detector/recorder dedup
//       paths run the former since the pool migration).
//
// Usage:
//   bench_micro_trace_ingest [--size-mb N] [--repeat K] [--out FILE]
//                            [--file SCRATCH] [--names N]
//
//===----------------------------------------------------------------------===//

#include "support/MappedFile.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace perfplay;

namespace {

/// A synthetic production-shaped recording: a few threads hammering
/// shared counters under a handful of locks, with long compute-heavy
/// stretches — event-dense, so the serialized size is dominated by the
/// event stream exactly like a real large recording.
Trace makeSyntheticTrace(size_t TargetBytes) {
  const unsigned Threads = 4;
  // One loop iteration per thread emits, on disk:
  //   compute(9) + acquire(13) + read(17) + write(18) + release(5)
  //   + compute(9) = 71 bytes.
  const size_t BytesPerIteration = 71;
  const size_t Iterations =
      TargetBytes / (BytesPerIteration * Threads) + 1;

  TraceBuilder B;
  LockId Mu[4];
  for (unsigned L = 0; L != 4; ++L)
    Mu[L] = B.addLock("ingest_mu" + std::to_string(L));
  CodeSiteId Site = B.addSite("ingest.cc", "producer", 10, 42);
  std::vector<ThreadId> Ids;
  for (unsigned T = 0; T != Threads; ++T)
    Ids.push_back(B.addThread());

  for (size_t I = 0; I != Iterations; ++I)
    for (unsigned T = 0; T != Threads; ++T) {
      B.compute(Ids[T], 100 + (I & 0xff));
      B.beginCs(Ids[T], Mu[I & 3], Site);
      B.read(Ids[T], /*Addr=*/1 + (I & 7), /*Value=*/I);
      B.write(Ids[T], /*Addr=*/16 + T, /*Value=*/I, WriteOpKind::Add);
      B.endCs(Ids[T]);
      B.compute(Ids[T], 50);
    }
  return B.finish();
}

/// The name-heavy corpus: NumNames locks and NumNames call sites whose
/// fixed-width symbol names share a long common prefix (real symbol
/// tables do: long namespace/path prefixes, distinct tails), and a
/// minimal event stream — the serialized size is dominated by the
/// string tables, isolating the cost the string pool removes.
Trace makeNameHeavyTrace(size_t NumNames) {
  char Buf[96];
  TraceBuilder B;
  for (size_t I = 0; I != NumNames; ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "com/perfplay/workload/liblock/instance/lock_%06zu", I);
    B.addLock(Buf, (I & 7) == 0);
  }
  for (size_t I = 0; I != NumNames; ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "com/perfplay/workload/src/module/storage_engine_%06zu.cc",
                  I);
    std::string File = Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "perfplay::workload::Engine::criticalSection_%06zu", I);
    B.addSite(File, Buf, 100, 140);
  }
  ThreadId T = B.addThread();
  B.beginCs(T, 0, 0);
  B.endCs(T);
  return B.finish();
}

struct PhaseTimes {
  double IngestSeconds = 0.0;
  double TotalSeconds = 0.0;
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The stream path's bytes-ready phase: stdio-read the file into an
/// owned vector, mirroring loadTrace(TraceLoadMode::Stream).
size_t streamIngest(const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return 0;
  std::vector<uint8_t> Bytes;
  char Buf[1 << 16];
  for (;;) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Bytes.insert(Bytes.end(), Buf, Buf + N);
    if (N < sizeof(Buf))
      break;
  }
  std::fclose(F);
  return Bytes.size();
}

std::string option(int Argc, char **Argv, const char *Name,
                   const char *Default) {
  std::string Prefix = std::string(Name) + "=";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], Name) == 0 && I + 1 < Argc)
      return Argv[I + 1];
    if (std::strncmp(Argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return Argv[I] + Prefix.size();
  }
  return Default;
}

} // namespace

int main(int Argc, char **Argv) {
  double SizeMb = std::atof(option(Argc, Argv, "--size-mb", "100").c_str());
  unsigned Repeat = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--repeat", "3").c_str()));
  std::string Out = option(Argc, Argv, "--out", "BENCH_traceio.json");
  std::string Scratch =
      option(Argc, Argv, "--file", "BENCH_traceio.scratch.btrace");
  long NamesArg = std::atol(option(Argc, Argv, "--names", "20000").c_str());
  if (Repeat == 0)
    Repeat = 1;
  if (SizeMb <= 0)
    SizeMb = 1;
  // Clamp before the size_t cast: a negative --names must not wrap to
  // an effectively unbounded generation loop.
  size_t NumNames = NamesArg < 16 ? 16 : static_cast<size_t>(NamesArg);

  std::printf("building ~%.0f MB synthetic binary trace...\n", SizeMb);
  Trace Tr = makeSyntheticTrace(static_cast<size_t>(SizeMb * 1e6));
  const size_t NumEvents = Tr.numEvents();
  std::string Err;
  if (!saveTrace(Tr, Scratch, Err, TraceFormat::Binary)) {
    std::fprintf(stderr, "cannot write scratch trace: %s\n", Err.c_str());
    return 1;
  }
  Tr = Trace(); // The generator copy is done; keep peak memory low.

  // Warm the page cache so both paths read memory-resident bytes; the
  // comparison is copy-vs-no-copy, not disk speed.
  size_t FileBytes = streamIngest(Scratch);
  std::printf("scratch file: %s (%zu bytes, %zu events)\n", Scratch.c_str(),
              FileBytes, NumEvents);

  PhaseTimes Stream, Mapped;
  Trace StreamTrace, MmapTrace;
  for (unsigned I = 0; I != Repeat; ++I) {
    double T0 = now();
    if (streamIngest(Scratch) != FileBytes) {
      std::fprintf(stderr, "stream ingest failed\n");
      return 1;
    }
    double T1 = now();
    Stream.IngestSeconds += T1 - T0;

    T0 = now();
    MappedFile File;
    if (!File.open(Scratch, Err) || File.size() != FileBytes) {
      std::fprintf(stderr, "mmap ingest failed: %s\n", Err.c_str());
      return 1;
    }
    // mmap is lazy: fault every page into the address space so the
    // timed window measures actual data readiness, not just the
    // syscall — otherwise a regression that re-introduced a copy
    // somewhere could never move this metric.
    uint64_t Checksum = 0;
    for (size_t Off = 0; Off < File.size(); Off += 4096)
      Checksum += File.data()[Off];
    T1 = now();
    Mapped.IngestSeconds += T1 - T0;
    if (Checksum == uint64_t(-1)) // Defeat dead-code elimination.
      std::fprintf(stderr, "impossible checksum\n");
    File.close();

    T0 = now();
    if (!loadTrace(Scratch, StreamTrace, Err, TraceLoadMode::Stream)) {
      std::fprintf(stderr, "stream load failed: %s\n", Err.c_str());
      return 1;
    }
    T1 = now();
    Stream.TotalSeconds += T1 - T0;

    T0 = now();
    if (!loadTrace(Scratch, MmapTrace, Err, TraceLoadMode::Mmap)) {
      std::fprintf(stderr, "mmap load failed: %s\n", Err.c_str());
      return 1;
    }
    T1 = now();
    Mapped.TotalSeconds += T1 - T0;
  }
  Stream.IngestSeconds /= Repeat;
  Stream.TotalSeconds /= Repeat;
  Mapped.IngestSeconds /= Repeat;
  Mapped.TotalSeconds /= Repeat;

  // Both loaders must parse the same trace; speed with different
  // results would be meaningless.
  if (writeTraceBinary(StreamTrace) != writeTraceBinary(MmapTrace)) {
    std::fprintf(stderr, "FATAL: mmap and stream loads diverged\n");
    return 1;
  }

  const double Mb = static_cast<double>(FileBytes) / 1e6;
  double IngestSpeedup = Mapped.IngestSeconds > 0.0
                             ? Stream.IngestSeconds / Mapped.IngestSeconds
                             : 0.0;
  double TotalSpeedup = Mapped.TotalSeconds > 0.0
                            ? Stream.TotalSeconds / Mapped.TotalSeconds
                            : 0.0;
  std::printf("trace ingest: %.1f MB binary, %u repeat(s), mmap %s\n", Mb,
              Repeat, MappedFile::supportsMapping() ? "native" : "fallback");
  std::printf("  %-8s ingest %9.3f ms (%8.0f MB/s)   end-to-end %9.3f ms\n",
              "stream", Stream.IngestSeconds * 1e3,
              Mb / std::max(Stream.IngestSeconds, 1e-9),
              Stream.TotalSeconds * 1e3);
  std::printf("  %-8s ingest %9.3f ms (%8.0f MB/s)   end-to-end %9.3f ms\n",
              "mmap", Mapped.IngestSeconds * 1e3,
              Mb / std::max(Mapped.IngestSeconds, 1e-9),
              Mapped.TotalSeconds * 1e3);
  std::printf("  zero-copy bytes-ready speedup: %.1fx, end-to-end: %.2fx, "
              "peak memory saved: %.1f MB\n",
              IngestSpeedup, TotalSpeedup, Mb);

  //===--------------------------------------------------------------------===//
  // Name-heavy corpus: borrowed vs owned name storage + dedup compares.
  //===--------------------------------------------------------------------===//

  std::string NamePath = Scratch + ".names";
  {
    Trace NameTrace = makeNameHeavyTrace(NumNames);
    std::string E;
    if (!saveTrace(NameTrace, NamePath, E, TraceFormat::Binary)) {
      std::fprintf(stderr, "cannot write name-heavy trace: %s\n", E.c_str());
      return 1;
    }
  }
  MappedFile NameFile;
  if (!NameFile.open(NamePath, Err)) {
    std::fprintf(stderr, "cannot map name-heavy trace: %s\n", Err.c_str());
    return 1;
  }

  double OwnedSeconds = 0.0, BorrowedSeconds = 0.0;
  size_t NameBytes = 0, BorrowedOwnedNameBytes = 0;
  Trace OwnedTrace, BorrowedTrace;
  for (unsigned I = 0; I != Repeat; ++I) {
    double T0 = now();
    if (!parseTraceBinary(NameFile.data(), NameFile.size(), OwnedTrace, Err,
                          NameStorage::Owned)) {
      std::fprintf(stderr, "owned name parse failed: %s\n", Err.c_str());
      return 1;
    }
    double T1 = now();
    OwnedSeconds += T1 - T0;

    T0 = now();
    if (!parseTraceBinary(NameFile.data(), NameFile.size(), BorrowedTrace,
                          Err, NameStorage::Borrowed)) {
      std::fprintf(stderr, "borrowed name parse failed: %s\n", Err.c_str());
      return 1;
    }
    T1 = now();
    BorrowedSeconds += T1 - T0;
  }
  OwnedSeconds /= Repeat;
  BorrowedSeconds /= Repeat;
  {
    StringPool::Stats OwnedStats = OwnedTrace.Names.stats();
    StringPool::Stats BorrowedStats = BorrowedTrace.Names.stats();
    NameBytes = OwnedStats.OwnedBytes;
    BorrowedOwnedNameBytes = BorrowedStats.OwnedBytes;
  }
  // Both storage modes must resolve identical bytes when re-serialized.
  if (writeTraceBinary(OwnedTrace) != writeTraceBinary(BorrowedTrace)) {
    std::fprintf(stderr, "FATAL: owned and borrowed name parses diverged\n");
    return 1;
  }

  // Dedup-compare microbenchmark: the detector/recorder dedup paths
  // used to compare names as strings; with the pool they compare ids.
  // Fixed-width names with a long shared prefix force the string
  // compare to walk ~40 bytes before differing — exactly the symbol-
  // table shape the pool was built for.
  const size_t NumLocks = BorrowedTrace.Locks.size();
  std::vector<std::string> Materialized;
  Materialized.reserve(NumLocks);
  for (size_t I = 0; I != NumLocks; ++I)
    Materialized.push_back(
        std::string(BorrowedTrace.lockName(static_cast<LockId>(I))));
  const size_t CompareIters = 4u * 1000u * 1000u;
  uint64_t StringMatches = 0, IdMatches = 0;
  uint64_t X = 0x9e3779b97f4a7c15ULL;
  auto nextPair = [&X, NumLocks]() {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    return std::pair<size_t, size_t>(static_cast<size_t>(X % NumLocks),
                                     static_cast<size_t>((X >> 24) %
                                                         NumLocks));
  };
  double T0 = now();
  for (size_t I = 0; I != CompareIters; ++I) {
    auto [A, B] = nextPair();
    StringMatches += Materialized[A] == Materialized[B];
  }
  double StringCompareSeconds = now() - T0;
  X = 0x9e3779b97f4a7c15ULL; // Same pair sequence for both sides.
  T0 = now();
  for (size_t I = 0; I != CompareIters; ++I) {
    auto [A, B] = nextPair();
    IdMatches +=
        BorrowedTrace.Locks[A].Name == BorrowedTrace.Locks[B].Name;
  }
  double IdCompareSeconds = now() - T0;
  if (StringMatches != IdMatches) {
    std::fprintf(stderr, "FATAL: string and id compares disagreed\n");
    return 1;
  }

  double CopyElimSpeedup =
      BorrowedSeconds > 0.0 ? OwnedSeconds / BorrowedSeconds : 0.0;
  double CompareSpeedup =
      IdCompareSeconds > 0.0 ? StringCompareSeconds / IdCompareSeconds : 0.0;
  std::printf("name-heavy corpus: %zu locks + %zu sites, %zu name bytes, "
              "%zu byte file\n",
              NumLocks, BorrowedTrace.Sites.size(), NameBytes,
              NameFile.size());
  std::printf("  parse owned %9.3f ms   borrowed %9.3f ms   "
              "copy-elimination %.2fx   borrowed owned-name bytes: %zu\n",
              OwnedSeconds * 1e3, BorrowedSeconds * 1e3, CopyElimSpeedup,
              BorrowedOwnedNameBytes);
  std::printf("  name equality: string %9.3f ms   pooled-id %9.3f ms   "
              "(%.1fx, %zuM compares)\n",
              StringCompareSeconds * 1e3, IdCompareSeconds * 1e3,
              CompareSpeedup, CompareIters / 1000000);

  FILE *F = std::fopen(Out.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Out.c_str());
    return 1;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"micro_trace_ingest\",\n"
               "  \"file_bytes\": %zu,\n"
               "  \"events\": %zu,\n"
               "  \"repeat\": %u,\n"
               "  \"mmap_native\": %s,\n"
               "  \"configs\": [\n",
               FileBytes, NumEvents, Repeat,
               MappedFile::supportsMapping() ? "true" : "false");
  std::fprintf(F,
               "    {\"name\": \"stream\", \"ingest_seconds\": %.6f, "
               "\"end_to_end_seconds\": %.6f, \"peak_extra_bytes\": %zu},\n",
               Stream.IngestSeconds, Stream.TotalSeconds, FileBytes);
  std::fprintf(F,
               "    {\"name\": \"mmap\", \"ingest_seconds\": %.6f, "
               "\"end_to_end_seconds\": %.6f, \"peak_extra_bytes\": 0, "
               "\"ingest_speedup\": %.3f, \"end_to_end_speedup\": %.3f}\n",
               Mapped.IngestSeconds, Mapped.TotalSeconds, IngestSpeedup,
               TotalSpeedup);
  std::fprintf(F, "  ],\n");
  std::fprintf(F,
               "  \"name_heavy\": {\n"
               "    \"locks\": %zu,\n"
               "    \"sites\": %zu,\n"
               "    \"name_bytes\": %zu,\n"
               "    \"file_bytes\": %zu,\n"
               "    \"owned_parse_seconds\": %.6f,\n"
               "    \"borrowed_parse_seconds\": %.6f,\n"
               "    \"copy_elimination_speedup\": %.3f,\n"
               "    \"borrowed_owned_name_bytes\": %zu,\n"
               "    \"string_compare_seconds\": %.6f,\n"
               "    \"id_compare_seconds\": %.6f,\n"
               "    \"dedup_compare_speedup\": %.3f\n"
               "  }\n}\n",
               NumLocks, BorrowedTrace.Sites.size(), NameBytes,
               NameFile.size(), OwnedSeconds, BorrowedSeconds,
               CopyElimSpeedup, BorrowedOwnedNameBytes,
               StringCompareSeconds, IdCompareSeconds, CompareSpeedup);
  std::fclose(F);
  std::printf("wrote %s\n", Out.c_str());

  NameFile.close();
  std::remove(Scratch.c_str());
  std::remove(NamePath.c_str());
  // Gates: the mmap bytes-ready win must hold, and — the tentpole's
  // acceptance criterion — a borrowed-storage parse must copy zero
  // name bytes onto the heap.
  if (BorrowedOwnedNameBytes != 0) {
    std::fprintf(stderr,
                 "FAIL: borrowed-mode parse copied %zu name bytes\n",
                 BorrowedOwnedNameBytes);
    return 1;
  }
  return IngestSpeedup >= 2.0 || !MappedFile::supportsMapping() ? 0 : 1;
}
