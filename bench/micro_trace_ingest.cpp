//===- bench/micro_trace_ingest.cpp - trace ingestion throughput ------------===//
//
// Measures binary-trace ingestion under the two loader paths:
//
//   stream — the legacy copying path: stdio-read the whole file into a
//            byte vector, then parse out of the copy,
//   mmap   — the zero-copy path: map the file and parse straight out
//            of the page cache (support/MappedFile.h).
//
// Two phases are timed per path.  "ingest" is the cost of making the
// file's bytes addressable (the read-and-copy that mmap eliminates —
// this is where the >= 2x zero-copy win lives, and it grows with the
// file); "end-to-end" is the full loadTrace including the parse, whose
// event decoding dominates and is common to both paths.  The stream
// path additionally holds a transient whole-file copy, so its peak
// memory is file-size bytes higher — reported as peak_extra_bytes.
//
// Both paths must produce byte-identical traces (asserted).  Emits
// BENCH_traceio.json for CI tracking alongside a human-readable table.
//
// Usage:
//   bench_micro_trace_ingest [--size-mb N] [--repeat K] [--out FILE]
//                            [--file SCRATCH]
//
//===----------------------------------------------------------------------===//

#include "support/MappedFile.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace perfplay;

namespace {

/// A synthetic production-shaped recording: a few threads hammering
/// shared counters under a handful of locks, with long compute-heavy
/// stretches — event-dense, so the serialized size is dominated by the
/// event stream exactly like a real large recording.
Trace makeSyntheticTrace(size_t TargetBytes) {
  const unsigned Threads = 4;
  // One loop iteration per thread emits, on disk:
  //   compute(9) + acquire(13) + read(17) + write(18) + release(5)
  //   + compute(9) = 71 bytes.
  const size_t BytesPerIteration = 71;
  const size_t Iterations =
      TargetBytes / (BytesPerIteration * Threads) + 1;

  TraceBuilder B;
  LockId Mu[4];
  for (unsigned L = 0; L != 4; ++L)
    Mu[L] = B.addLock("ingest_mu" + std::to_string(L));
  CodeSiteId Site = B.addSite("ingest.cc", "producer", 10, 42);
  std::vector<ThreadId> Ids;
  for (unsigned T = 0; T != Threads; ++T)
    Ids.push_back(B.addThread());

  for (size_t I = 0; I != Iterations; ++I)
    for (unsigned T = 0; T != Threads; ++T) {
      B.compute(Ids[T], 100 + (I & 0xff));
      B.beginCs(Ids[T], Mu[I & 3], Site);
      B.read(Ids[T], /*Addr=*/1 + (I & 7), /*Value=*/I);
      B.write(Ids[T], /*Addr=*/16 + T, /*Value=*/I, WriteOpKind::Add);
      B.endCs(Ids[T]);
      B.compute(Ids[T], 50);
    }
  return B.finish();
}

struct PhaseTimes {
  double IngestSeconds = 0.0;
  double TotalSeconds = 0.0;
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The stream path's bytes-ready phase: stdio-read the file into an
/// owned vector, mirroring loadTrace(TraceLoadMode::Stream).
size_t streamIngest(const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return 0;
  std::vector<uint8_t> Bytes;
  char Buf[1 << 16];
  for (;;) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Bytes.insert(Bytes.end(), Buf, Buf + N);
    if (N < sizeof(Buf))
      break;
  }
  std::fclose(F);
  return Bytes.size();
}

std::string option(int Argc, char **Argv, const char *Name,
                   const char *Default) {
  std::string Prefix = std::string(Name) + "=";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], Name) == 0 && I + 1 < Argc)
      return Argv[I + 1];
    if (std::strncmp(Argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return Argv[I] + Prefix.size();
  }
  return Default;
}

} // namespace

int main(int Argc, char **Argv) {
  double SizeMb = std::atof(option(Argc, Argv, "--size-mb", "100").c_str());
  unsigned Repeat = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--repeat", "3").c_str()));
  std::string Out = option(Argc, Argv, "--out", "BENCH_traceio.json");
  std::string Scratch =
      option(Argc, Argv, "--file", "BENCH_traceio.scratch.btrace");
  if (Repeat == 0)
    Repeat = 1;
  if (SizeMb <= 0)
    SizeMb = 1;

  std::printf("building ~%.0f MB synthetic binary trace...\n", SizeMb);
  Trace Tr = makeSyntheticTrace(static_cast<size_t>(SizeMb * 1e6));
  const size_t NumEvents = Tr.numEvents();
  std::string Err;
  if (!saveTrace(Tr, Scratch, Err, TraceFormat::Binary)) {
    std::fprintf(stderr, "cannot write scratch trace: %s\n", Err.c_str());
    return 1;
  }
  Tr = Trace(); // The generator copy is done; keep peak memory low.

  // Warm the page cache so both paths read memory-resident bytes; the
  // comparison is copy-vs-no-copy, not disk speed.
  size_t FileBytes = streamIngest(Scratch);
  std::printf("scratch file: %s (%zu bytes, %zu events)\n", Scratch.c_str(),
              FileBytes, NumEvents);

  PhaseTimes Stream, Mapped;
  Trace StreamTrace, MmapTrace;
  for (unsigned I = 0; I != Repeat; ++I) {
    double T0 = now();
    if (streamIngest(Scratch) != FileBytes) {
      std::fprintf(stderr, "stream ingest failed\n");
      return 1;
    }
    double T1 = now();
    Stream.IngestSeconds += T1 - T0;

    T0 = now();
    MappedFile File;
    if (!File.open(Scratch, Err) || File.size() != FileBytes) {
      std::fprintf(stderr, "mmap ingest failed: %s\n", Err.c_str());
      return 1;
    }
    // mmap is lazy: fault every page into the address space so the
    // timed window measures actual data readiness, not just the
    // syscall — otherwise a regression that re-introduced a copy
    // somewhere could never move this metric.
    uint64_t Checksum = 0;
    for (size_t Off = 0; Off < File.size(); Off += 4096)
      Checksum += File.data()[Off];
    T1 = now();
    Mapped.IngestSeconds += T1 - T0;
    if (Checksum == uint64_t(-1)) // Defeat dead-code elimination.
      std::fprintf(stderr, "impossible checksum\n");
    File.close();

    T0 = now();
    if (!loadTrace(Scratch, StreamTrace, Err, TraceLoadMode::Stream)) {
      std::fprintf(stderr, "stream load failed: %s\n", Err.c_str());
      return 1;
    }
    T1 = now();
    Stream.TotalSeconds += T1 - T0;

    T0 = now();
    if (!loadTrace(Scratch, MmapTrace, Err, TraceLoadMode::Mmap)) {
      std::fprintf(stderr, "mmap load failed: %s\n", Err.c_str());
      return 1;
    }
    T1 = now();
    Mapped.TotalSeconds += T1 - T0;
  }
  Stream.IngestSeconds /= Repeat;
  Stream.TotalSeconds /= Repeat;
  Mapped.IngestSeconds /= Repeat;
  Mapped.TotalSeconds /= Repeat;

  // Both loaders must parse the same trace; speed with different
  // results would be meaningless.
  if (writeTraceBinary(StreamTrace) != writeTraceBinary(MmapTrace)) {
    std::fprintf(stderr, "FATAL: mmap and stream loads diverged\n");
    return 1;
  }

  const double Mb = static_cast<double>(FileBytes) / 1e6;
  double IngestSpeedup = Mapped.IngestSeconds > 0.0
                             ? Stream.IngestSeconds / Mapped.IngestSeconds
                             : 0.0;
  double TotalSpeedup = Mapped.TotalSeconds > 0.0
                            ? Stream.TotalSeconds / Mapped.TotalSeconds
                            : 0.0;
  std::printf("trace ingest: %.1f MB binary, %u repeat(s), mmap %s\n", Mb,
              Repeat, MappedFile::supportsMapping() ? "native" : "fallback");
  std::printf("  %-8s ingest %9.3f ms (%8.0f MB/s)   end-to-end %9.3f ms\n",
              "stream", Stream.IngestSeconds * 1e3,
              Mb / std::max(Stream.IngestSeconds, 1e-9),
              Stream.TotalSeconds * 1e3);
  std::printf("  %-8s ingest %9.3f ms (%8.0f MB/s)   end-to-end %9.3f ms\n",
              "mmap", Mapped.IngestSeconds * 1e3,
              Mb / std::max(Mapped.IngestSeconds, 1e-9),
              Mapped.TotalSeconds * 1e3);
  std::printf("  zero-copy bytes-ready speedup: %.1fx, end-to-end: %.2fx, "
              "peak memory saved: %.1f MB\n",
              IngestSpeedup, TotalSpeedup, Mb);

  FILE *F = std::fopen(Out.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Out.c_str());
    return 1;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"micro_trace_ingest\",\n"
               "  \"file_bytes\": %zu,\n"
               "  \"events\": %zu,\n"
               "  \"repeat\": %u,\n"
               "  \"mmap_native\": %s,\n"
               "  \"configs\": [\n",
               FileBytes, NumEvents, Repeat,
               MappedFile::supportsMapping() ? "true" : "false");
  std::fprintf(F,
               "    {\"name\": \"stream\", \"ingest_seconds\": %.6f, "
               "\"end_to_end_seconds\": %.6f, \"peak_extra_bytes\": %zu},\n",
               Stream.IngestSeconds, Stream.TotalSeconds, FileBytes);
  std::fprintf(F,
               "    {\"name\": \"mmap\", \"ingest_seconds\": %.6f, "
               "\"end_to_end_seconds\": %.6f, \"peak_extra_bytes\": 0, "
               "\"ingest_speedup\": %.3f, \"end_to_end_speedup\": %.3f}\n",
               Mapped.IngestSeconds, Mapped.TotalSeconds, IngestSpeedup,
               TotalSpeedup);
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Out.c_str());

  std::remove(Scratch.c_str());
  return IngestSpeedup >= 2.0 || !MappedFile::supportsMapping() ? 0 : 1;
}
