//===- bench/micro_trace_ingest.cpp - trace ingestion throughput ------------===//
//
// Measures binary-trace ingestion under the two loader paths:
//
//   stream — the legacy copying path: stdio-read the whole file into a
//            byte vector, then parse out of the copy,
//   mmap   — the zero-copy path: map the file and parse straight out
//            of the page cache (support/MappedFile.h).
//
// Two phases are timed per path.  "ingest" is the cost of making the
// file's bytes addressable (the read-and-copy that mmap eliminates —
// this is where the >= 2x zero-copy win lives, and it grows with the
// file); "end-to-end" is the full loadTrace including the parse, whose
// event decoding dominates and is common to both paths.  The stream
// path additionally holds a transient whole-file copy, so its peak
// memory is file-size bytes higher — reported as peak_extra_bytes.
//
// Both paths must produce byte-identical traces (asserted).  Emits
// BENCH_traceio.json for CI tracking alongside a human-readable table.
//
// A second, name-heavy corpus (thousands of locks and call sites with
// long symbol names — the shape of the paper's Table 1/Table 2
// workloads) measures the string-pool tentpole:
//
//   copy elimination — parsing the mapped file with borrowed name
//       storage (NameStorage::Borrowed: string_views into the mapping)
//       vs. owned interning; the borrowed parse must report ZERO owned
//       name bytes (StringPool::stats), which this driver asserts,
//   dedup compare    — name equality as pooled-id integer compares vs.
//       materialized std::string compares (the detector/recorder dedup
//       paths run the former since the pool migration).
//
// A third section measures the chunked v3 format's parallel full
// load: the same synthetic corpus re-encoded as v3 and parsed with 1
// worker vs. 4 (parseTraceV3 decodes chunks concurrently into
// disjoint spans).  parallel_parse_speedup is exit-gated at >= 3.0,
// but only on machines with >= 4 hardware threads — on smaller boxes
// the number is reported and the gate prints a skip note.
//
// With --out-of-core a fourth section runs FIRST (getrusage peak RSS
// is a process-lifetime high-water mark, so it must precede anything
// that materializes a trace): a corpus is stream-written through
// TraceV3Writer without ever building a Trace, then streamed back
// through WindowedReader + WindowedDetector (detect/WindowedDetect.h)
// in bounded memory.  windowed_peak_rss_ratio — peak RSS over file
// size — is exit-gated at <= 0.25, and windowed verdicts are asserted
// bit-identical to whole-trace detectUlcps on a materializable corpus
// from the same generator.
//
// Usage:
//   bench_micro_trace_ingest [--size-mb N] [--repeat K] [--out FILE]
//                            [--file SCRATCH] [--names N] [--out-of-core]
//
//===----------------------------------------------------------------------===//

#include "detect/CriticalSection.h"
#include "detect/Detector.h"
#include "detect/WindowedDetect.h"
#include "support/MappedFile.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "trace/TraceV3.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

using namespace perfplay;

namespace {

/// A synthetic production-shaped recording: a few threads hammering
/// shared counters under a handful of locks, with long compute-heavy
/// stretches — event-dense, so the serialized size is dominated by the
/// event stream exactly like a real large recording.
Trace makeSyntheticTrace(size_t TargetBytes) {
  const unsigned Threads = 4;
  // One loop iteration per thread emits, on disk:
  //   compute(9) + acquire(13) + read(17) + write(18) + release(5)
  //   + compute(9) = 71 bytes.
  const size_t BytesPerIteration = 71;
  const size_t Iterations =
      TargetBytes / (BytesPerIteration * Threads) + 1;

  TraceBuilder B;
  LockId Mu[4];
  for (unsigned L = 0; L != 4; ++L)
    Mu[L] = B.addLock("ingest_mu" + std::to_string(L));
  CodeSiteId Site = B.addSite("ingest.cc", "producer", 10, 42);
  std::vector<ThreadId> Ids;
  for (unsigned T = 0; T != Threads; ++T)
    Ids.push_back(B.addThread());

  for (size_t I = 0; I != Iterations; ++I)
    for (unsigned T = 0; T != Threads; ++T) {
      B.compute(Ids[T], 100 + (I & 0xff));
      B.beginCs(Ids[T], Mu[I & 3], Site);
      B.read(Ids[T], /*Addr=*/1 + (I & 7), /*Value=*/I);
      B.write(Ids[T], /*Addr=*/16 + T, /*Value=*/I, WriteOpKind::Add);
      B.endCs(Ids[T]);
      B.compute(Ids[T], 50);
    }
  return B.finish();
}

/// The name-heavy corpus: NumNames locks and NumNames call sites whose
/// fixed-width symbol names share a long common prefix (real symbol
/// tables do: long namespace/path prefixes, distinct tails), and a
/// minimal event stream — the serialized size is dominated by the
/// string tables, isolating the cost the string pool removes.
Trace makeNameHeavyTrace(size_t NumNames) {
  char Buf[96];
  TraceBuilder B;
  for (size_t I = 0; I != NumNames; ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "com/perfplay/workload/liblock/instance/lock_%06zu", I);
    B.addLock(Buf, (I & 7) == 0);
  }
  for (size_t I = 0; I != NumNames; ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "com/perfplay/workload/src/module/storage_engine_%06zu.cc",
                  I);
    std::string File = Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "perfplay::workload::Engine::criticalSection_%06zu", I);
    B.addSite(File, Buf, 100, 140);
  }
  ThreadId T = B.addThread();
  B.beginCs(T, 0, 0);
  B.endCs(T);
  return B.finish();
}

struct PhaseTimes {
  double IngestSeconds = 0.0;
  double TotalSeconds = 0.0;
};

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The stream path's bytes-ready phase: stdio-read the file into an
/// owned vector, mirroring loadTrace(TraceLoadMode::Stream).
size_t streamIngest(const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return 0;
  std::vector<uint8_t> Bytes;
  char Buf[1 << 16];
  for (;;) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Bytes.insert(Bytes.end(), Buf, Buf + N);
    if (N < sizeof(Buf))
      break;
  }
  std::fclose(F);
  return Bytes.size();
}

std::string option(int Argc, char **Argv, const char *Name,
                   const char *Default) {
  std::string Prefix = std::string(Name) + "=";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], Name) == 0 && I + 1 < Argc)
      return Argv[I + 1];
    if (std::strncmp(Argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return Argv[I] + Prefix.size();
  }
  return Default;
}

bool hasFlag(int Argc, char **Argv, const char *Name) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Name) == 0)
      return true;
  return false;
}

/// Process-lifetime peak resident set in bytes; 0 when the platform
/// offers no getrusage (the RSS gate is then reported but not
/// enforced).
uint64_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(RU.ru_maxrss); // bytes
#else
  return static_cast<uint64_t>(RU.ru_maxrss) * 1024; // KiB
#endif
#else
  return 0;
#endif
}

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Bytes;
  char Buf[1 << 16];
  for (;;) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), F);
    Bytes.insert(Bytes.end(), Buf, Buf + N);
    if (N < sizeof(Buf))
      break;
  }
  std::fclose(F);
  return Bytes;
}

struct CorpusInfo {
  uint64_t FileBytes = 0;
  uint64_t Events = 0;
  uint64_t Sections = 0;
};

/// Stream-writes the out-of-core corpus straight to disk through
/// TraceV3Writer — no Trace is ever materialized, so writer memory is
/// one chunk regardless of \p TargetBytes.  Four threads alternate
/// compute-heavy stretches with critical sections whose lock, access
/// addresses, and write operands all derive from a 64-cycle counter:
/// dynamic sections (and the file) grow without bound while the
/// detector's signature arena holds at most 64 representatives — the
/// shape that makes bounded-memory windowed detection possible.  The
/// out-of-section compute runs mirror real recordings (most of a
/// production trace is not inside a lock) and keep the bytes-per-
/// section high enough that the detector's ~12 bytes of per-section
/// metadata stay a small fraction of the file.
bool streamOutOfCoreCorpus(const std::string &Path, size_t TargetBytes,
                           CorpusInfo &Info, std::string &Err) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Err = "cannot open " + Path + " for writing";
    return false;
  }
  TraceV3Writer W([F](const void *Data, size_t Size) {
    return std::fwrite(Data, 1, Size, F) == Size;
  });
  LockId Mu[4];
  for (unsigned L = 0; L != 4; ++L)
    Mu[L] = W.addLock(false, "ooc_mu" + std::to_string(L));
  uint32_t Site = W.addSite(10, 42, "ooc.cc", "worker");
  const unsigned Threads = 4;
  const unsigned ComputeRun = 14; // out-of-section events per side
  // 38 events per section (10 inside, 28 outside), delta-varint
  // encoded; the estimate only sizes the loop — the real byte count
  // is bytesWritten().
  const size_t BytesPerSection = 140;
  const uint64_t Iterations =
      TargetBytes / (BytesPerSection * Threads) + 1;
  for (unsigned T = 0; T != Threads; ++T) {
    W.beginThread(T);
    W.append(Event::threadStart());
    for (uint64_t I = 0; I != Iterations; ++I) {
      const uint64_t S = I & 63;
      for (unsigned K = 0; K != ComputeRun; ++K)
        W.append(Event::compute(100000 + ((I * 7 + K) & 0xFFF)));
      W.append(Event::lockAcquire(Mu[S & 3], Site));
      W.append(Event::read(1 + (S & 7), I));
      W.append(Event::read(9 + (S & 7), I >> 1));
      W.append(Event::read(17 + ((S >> 3) & 7), I >> 2));
      W.append(Event::read(25 + ((S >> 3) & 7), I >> 3));
      W.append(Event::write(64 + (S & 3), S & 3, WriteOpKind::Add));
      W.append(Event::write(80 + ((S >> 2) & 3), (S >> 2) & 3));
      W.append(Event::lockRelease(Mu[S & 3]));
      for (unsigned K = 0; K != ComputeRun; ++K)
        W.append(Event::compute(200000 + ((I * 13 + K) & 0xFFF)));
      ++Info.Sections;
    }
    W.append(Event::threadEnd());
    Info.Events += (10 + 2 * ComputeRun) * Iterations + 2;
  }
  W.setNumThreads(Threads);
  bool Ok = W.finish(Err);
  std::fclose(F);
  Info.FileBytes = W.bytesWritten();
  return Ok;
}

struct WindowedRun {
  DetectResult Result;
  uint64_t Sections = 0;
  uint32_t Signatures = 0;
  uint64_t PeakOpenEvents = 0;
};

/// Streams the v3 file at \p Path chunk-by-chunk through a
/// WindowedDetector — the bench-side mirror of Engine::detectWindowed.
bool runWindowedDetect(const std::string &Path, const DetectOptions &Opts,
                       WindowedRun &Out, std::string &Err) {
  WindowedReader Reader;
  if (!Reader.open(Path, Err))
    return false;
  WindowedDetector D(Opts);
  WindowedReader::Chunk Chunk;
  while (Reader.next(Chunk, Err))
    if (!D.addEvents(Chunk.Thread, Chunk.Events.data(),
                     Chunk.Events.size(), Err))
      return false;
  if (!Err.empty())
    return false;
  if (!D.finish(Reader.tables(), Out.Result, Err))
    return false;
  Out.Sections = D.numSections();
  Out.Signatures = D.numSignatures();
  Out.PeakOpenEvents = D.peakOpenEvents();
  return true;
}

bool sameDetectResult(const DetectResult &A, const DetectResult &B) {
  if (A.Counts.NullLock != B.Counts.NullLock ||
      A.Counts.ReadRead != B.Counts.ReadRead ||
      A.Counts.DisjointWrite != B.Counts.DisjointWrite ||
      A.Counts.Benign != B.Counts.Benign ||
      A.Counts.TrueContention != B.Counts.TrueContention)
    return false;
  if (A.Stats.NumSectionKeys != B.Stats.NumSectionKeys ||
      A.Stats.NumClassified != B.Stats.NumClassified)
    return false;
  if (A.Pairs.size() != B.Pairs.size())
    return false;
  for (size_t I = 0; I != A.Pairs.size(); ++I)
    if (A.Pairs[I].First != B.Pairs[I].First ||
        A.Pairs[I].Second != B.Pairs[I].Second ||
        A.Pairs[I].Kind != B.Pairs[I].Kind)
      return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  double SizeMb = std::atof(option(Argc, Argv, "--size-mb", "100").c_str());
  unsigned Repeat = static_cast<unsigned>(
      std::atoi(option(Argc, Argv, "--repeat", "3").c_str()));
  std::string Out = option(Argc, Argv, "--out", "BENCH_traceio.json");
  std::string Scratch =
      option(Argc, Argv, "--file", "BENCH_traceio.scratch.btrace");
  long NamesArg = std::atol(option(Argc, Argv, "--names", "20000").c_str());
  if (Repeat == 0)
    Repeat = 1;
  if (SizeMb <= 0)
    SizeMb = 1;
  // Clamp before the size_t cast: a negative --names must not wrap to
  // an effectively unbounded generation loop.
  size_t NumNames = NamesArg < 16 ? 16 : static_cast<size_t>(NamesArg);
  bool OutOfCore = hasFlag(Argc, Argv, "--out-of-core");

  //===--------------------------------------------------------------------===//
  // Out-of-core windowed detection (--out-of-core).  Runs before any
  // whole-trace materialization: ru_maxrss is a process-lifetime
  // high-water mark, so the RSS measured here is genuinely the
  // streaming pipeline's — stream-write the corpus, stream it back
  // through windowed detection, snapshot RSS, and only then allow the
  // rest of the bench to build in-memory traces.
  //===--------------------------------------------------------------------===//

  CorpusInfo Ooc;
  WindowedRun OocRun;
  double OocDetectSeconds = 0.0;
  uint64_t OocPeakRss = 0;
  double OocRssRatio = 0.0;
  bool OocParityOk = true;
  std::string Err;
  if (OutOfCore) {
    std::string OocPath = Scratch + ".ooc.v3trace";
    // The RSS ratio is only meaningful when the streamed file dwarfs
    // the process' fixed footprint (binary + libraries + detector
    // arenas, ~10-15 MB), so the out-of-core corpus gets a 100 MB
    // floor independent of --size-mb — an 8 MB smoke corpus would
    // fail the 0.25 gate on baseline RSS alone.
    size_t OocTarget = std::max<size_t>(
        static_cast<size_t>(SizeMb * 1e6), 100000000u);
    std::printf("stream-writing ~%.0f MB out-of-core v3 corpus...\n",
                static_cast<double>(OocTarget) / 1e6);
    if (!streamOutOfCoreCorpus(OocPath, OocTarget, Ooc, Err)) {
      std::fprintf(stderr, "out-of-core corpus write failed: %s\n",
                   Err.c_str());
      return 1;
    }
    DetectOptions OocOpts;
    OocOpts.CountsOnly = true;
    OocOpts.PairMode = PairModeKind::AdjacentCrossThread;
    double T0 = now();
    if (!runWindowedDetect(OocPath, OocOpts, OocRun, Err)) {
      std::fprintf(stderr, "out-of-core windowed detection failed: %s\n",
                   Err.c_str());
      return 1;
    }
    OocDetectSeconds = now() - T0;
    OocPeakRss = peakRssBytes();
    OocRssRatio = Ooc.FileBytes
                      ? static_cast<double>(OocPeakRss) /
                            static_cast<double>(Ooc.FileBytes)
                      : 0.0;
    std::printf("out-of-core: %llu byte file, %llu sections, "
                "%u signatures, detect %.3f s\n",
                static_cast<unsigned long long>(Ooc.FileBytes),
                static_cast<unsigned long long>(Ooc.Sections),
                OocRun.Signatures, OocDetectSeconds);
    std::printf("  ULCPs %llu, true contention %llu, peak open events "
                "%llu\n",
                static_cast<unsigned long long>(
                    OocRun.Result.Counts.totalUnnecessary()),
                static_cast<unsigned long long>(
                    OocRun.Result.Counts.TrueContention),
                static_cast<unsigned long long>(OocRun.PeakOpenEvents));
    std::printf("  peak RSS %.1f MB / %.1f MB file = ratio %.3f "
                "(gate <= 0.25%s)\n",
                static_cast<double>(OocPeakRss) / 1e6,
                static_cast<double>(Ooc.FileBytes) / 1e6, OocRssRatio,
                OocPeakRss ? "" : ", unmeasurable: not enforced");

    // Verdict parity: a corpus from the same generator, small enough
    // to materialize, analyzed both ways — the whole-trace detectUlcps
    // result and the windowed result must match field for field
    // (pairs, counts, stats).  tests/WindowedDetectTest gates the same
    // invariant across window sizes and option sets.
    std::string ParityPath = Scratch + ".oocparity.v3trace";
    CorpusInfo ParityInfo;
    if (!streamOutOfCoreCorpus(ParityPath, 4u << 20, ParityInfo, Err)) {
      std::fprintf(stderr, "parity corpus write failed: %s\n", Err.c_str());
      return 1;
    }
    Trace ParityTr;
    if (!loadTrace(ParityPath, ParityTr, Err)) {
      std::fprintf(stderr, "parity corpus load failed: %s\n", Err.c_str());
      return 1;
    }
    DetectOptions ParityOpts;
    ParityOpts.PairMode = PairModeKind::AdjacentCrossThread;
    DetectResult Whole =
        detectUlcps(ParityTr, CsIndex::build(ParityTr), ParityOpts);
    WindowedRun Windowed;
    if (!runWindowedDetect(ParityPath, ParityOpts, Windowed, Err)) {
      std::fprintf(stderr, "parity windowed detection failed: %s\n",
                   Err.c_str());
      return 1;
    }
    OocParityOk = sameDetectResult(Whole, Windowed.Result);
    std::printf("  verdict parity vs whole-trace (%llu-section corpus): "
                "%s\n",
                static_cast<unsigned long long>(ParityInfo.Sections),
                OocParityOk ? "ok" : "MISMATCH");
    std::remove(OocPath.c_str());
    std::remove(ParityPath.c_str());
  }

  std::printf("building ~%.0f MB synthetic binary trace...\n", SizeMb);
  Trace Tr = makeSyntheticTrace(static_cast<size_t>(SizeMb * 1e6));
  const size_t NumEvents = Tr.numEvents();
  if (!saveTrace(Tr, Scratch, Err, TraceFormat::Binary)) {
    std::fprintf(stderr, "cannot write scratch trace: %s\n", Err.c_str());
    return 1;
  }
  Tr = Trace(); // The generator copy is done; keep peak memory low.

  // Warm the page cache so both paths read memory-resident bytes; the
  // comparison is copy-vs-no-copy, not disk speed.
  size_t FileBytes = streamIngest(Scratch);
  std::printf("scratch file: %s (%zu bytes, %zu events)\n", Scratch.c_str(),
              FileBytes, NumEvents);

  PhaseTimes Stream, Mapped;
  Trace StreamTrace, MmapTrace;
  for (unsigned I = 0; I != Repeat; ++I) {
    double T0 = now();
    if (streamIngest(Scratch) != FileBytes) {
      std::fprintf(stderr, "stream ingest failed\n");
      return 1;
    }
    double T1 = now();
    Stream.IngestSeconds += T1 - T0;

    T0 = now();
    MappedFile File;
    if (!File.open(Scratch, Err) || File.size() != FileBytes) {
      std::fprintf(stderr, "mmap ingest failed: %s\n", Err.c_str());
      return 1;
    }
    // mmap is lazy: fault every page into the address space so the
    // timed window measures actual data readiness, not just the
    // syscall — otherwise a regression that re-introduced a copy
    // somewhere could never move this metric.
    uint64_t Checksum = 0;
    for (size_t Off = 0; Off < File.size(); Off += 4096)
      Checksum += File.data()[Off];
    T1 = now();
    Mapped.IngestSeconds += T1 - T0;
    if (Checksum == uint64_t(-1)) // Defeat dead-code elimination.
      std::fprintf(stderr, "impossible checksum\n");
    File.close();

    T0 = now();
    if (!loadTrace(Scratch, StreamTrace, Err, TraceLoadMode::Stream)) {
      std::fprintf(stderr, "stream load failed: %s\n", Err.c_str());
      return 1;
    }
    T1 = now();
    Stream.TotalSeconds += T1 - T0;

    T0 = now();
    if (!loadTrace(Scratch, MmapTrace, Err, TraceLoadMode::Mmap)) {
      std::fprintf(stderr, "mmap load failed: %s\n", Err.c_str());
      return 1;
    }
    T1 = now();
    Mapped.TotalSeconds += T1 - T0;
  }
  Stream.IngestSeconds /= Repeat;
  Stream.TotalSeconds /= Repeat;
  Mapped.IngestSeconds /= Repeat;
  Mapped.TotalSeconds /= Repeat;

  // Both loaders must parse the same trace; speed with different
  // results would be meaningless.
  if (writeTraceBinary(StreamTrace) != writeTraceBinary(MmapTrace)) {
    std::fprintf(stderr, "FATAL: mmap and stream loads diverged\n");
    return 1;
  }

  const double Mb = static_cast<double>(FileBytes) / 1e6;
  double IngestSpeedup = Mapped.IngestSeconds > 0.0
                             ? Stream.IngestSeconds / Mapped.IngestSeconds
                             : 0.0;
  double TotalSpeedup = Mapped.TotalSeconds > 0.0
                            ? Stream.TotalSeconds / Mapped.TotalSeconds
                            : 0.0;
  std::printf("trace ingest: %.1f MB binary, %u repeat(s), mmap %s\n", Mb,
              Repeat, MappedFile::supportsMapping() ? "native" : "fallback");
  std::printf("  %-8s ingest %9.3f ms (%8.0f MB/s)   end-to-end %9.3f ms\n",
              "stream", Stream.IngestSeconds * 1e3,
              Mb / std::max(Stream.IngestSeconds, 1e-9),
              Stream.TotalSeconds * 1e3);
  std::printf("  %-8s ingest %9.3f ms (%8.0f MB/s)   end-to-end %9.3f ms\n",
              "mmap", Mapped.IngestSeconds * 1e3,
              Mb / std::max(Mapped.IngestSeconds, 1e-9),
              Mapped.TotalSeconds * 1e3);
  std::printf("  zero-copy bytes-ready speedup: %.1fx, end-to-end: %.2fx, "
              "peak memory saved: %.1f MB\n",
              IngestSpeedup, TotalSpeedup, Mb);

  //===--------------------------------------------------------------------===//
  // Chunked v3 parallel full load: the same corpus re-encoded as v3,
  // parsed fully serially vs. with 4 chunk-decode workers.  Best-of-
  // repeat timings gate the speedup (>= 3.0) — but only on machines
  // that actually have 4 hardware threads to decode on.
  //===--------------------------------------------------------------------===//

  const unsigned ParallelWorkers = 4;
  std::string ScratchV3 = Scratch + ".v3";
  if (!saveTrace(MmapTrace, ScratchV3, Err, TraceFormat::V3)) {
    std::fprintf(stderr, "cannot write v3 scratch trace: %s\n", Err.c_str());
    return 1;
  }
  std::vector<uint8_t> V3Bytes = readFileBytes(ScratchV3);
  if (V3Bytes.empty()) {
    std::fprintf(stderr, "cannot read back %s\n", ScratchV3.c_str());
    return 1;
  }
  double SerialParse = 1e30, ParallelParse = 1e30;
  Trace SerialTrace, ParallelTrace;
  for (unsigned I = 0; I != Repeat; ++I) {
    V3ParseOptions SerialOpts;
    SerialOpts.NumThreads = 1;
    double T0 = now();
    if (!parseTraceV3(V3Bytes.data(), V3Bytes.size(), SerialTrace, Err,
                      SerialOpts)) {
      std::fprintf(stderr, "serial v3 parse failed: %s\n", Err.c_str());
      return 1;
    }
    SerialParse = std::min(SerialParse, now() - T0);

    V3ParseOptions ParOpts;
    ParOpts.NumThreads = ParallelWorkers;
    T0 = now();
    if (!parseTraceV3(V3Bytes.data(), V3Bytes.size(), ParallelTrace, Err,
                      ParOpts)) {
      std::fprintf(stderr, "parallel v3 parse failed: %s\n", Err.c_str());
      return 1;
    }
    ParallelParse = std::min(ParallelParse, now() - T0);
  }
  // All three decodes of the corpus — binary, serial v3, parallel v3 —
  // must agree byte for byte.
  if (writeTraceBinary(SerialTrace) != writeTraceBinary(MmapTrace) ||
      writeTraceBinary(ParallelTrace) != writeTraceBinary(MmapTrace)) {
    std::fprintf(stderr, "FATAL: v3 parses diverged from the binary load\n");
    return 1;
  }
  SerialTrace = Trace();
  ParallelTrace = Trace();
  double ParallelParseSpeedup =
      ParallelParse > 0.0 ? SerialParse / ParallelParse : 0.0;
  const unsigned HardwareThreads = std::thread::hardware_concurrency();
  const bool ParallelGateEnforced = HardwareThreads >= ParallelWorkers;
  std::printf("v3 parallel load: %zu byte v3 file (%.2fx of binary)\n",
              V3Bytes.size(),
              static_cast<double>(V3Bytes.size()) /
                  static_cast<double>(FileBytes));
  std::printf("  parse serial %9.3f ms   %u-worker %9.3f ms   "
              "speedup %.2fx",
              SerialParse * 1e3, ParallelWorkers, ParallelParse * 1e3,
              ParallelParseSpeedup);
  if (ParallelGateEnforced)
    std::printf("   (gate >= 3.0)\n");
  else
    std::printf("   (gate SKIPPED: %u hardware thread(s) < %u workers)\n",
                HardwareThreads, ParallelWorkers);
  std::remove(ScratchV3.c_str());
  const size_t V3FileBytes = V3Bytes.size();
  V3Bytes.clear();
  V3Bytes.shrink_to_fit();

  //===--------------------------------------------------------------------===//
  // Name-heavy corpus: borrowed vs owned name storage + dedup compares.
  //===--------------------------------------------------------------------===//

  std::string NamePath = Scratch + ".names";
  {
    Trace NameTrace = makeNameHeavyTrace(NumNames);
    std::string E;
    if (!saveTrace(NameTrace, NamePath, E, TraceFormat::Binary)) {
      std::fprintf(stderr, "cannot write name-heavy trace: %s\n", E.c_str());
      return 1;
    }
  }
  MappedFile NameFile;
  if (!NameFile.open(NamePath, Err)) {
    std::fprintf(stderr, "cannot map name-heavy trace: %s\n", Err.c_str());
    return 1;
  }

  double OwnedSeconds = 0.0, BorrowedSeconds = 0.0;
  size_t NameBytes = 0, BorrowedOwnedNameBytes = 0;
  Trace OwnedTrace, BorrowedTrace;
  for (unsigned I = 0; I != Repeat; ++I) {
    double T0 = now();
    if (!parseTraceBinary(NameFile.data(), NameFile.size(), OwnedTrace, Err,
                          NameStorage::Owned)) {
      std::fprintf(stderr, "owned name parse failed: %s\n", Err.c_str());
      return 1;
    }
    double T1 = now();
    OwnedSeconds += T1 - T0;

    T0 = now();
    if (!parseTraceBinary(NameFile.data(), NameFile.size(), BorrowedTrace,
                          Err, NameStorage::Borrowed)) {
      std::fprintf(stderr, "borrowed name parse failed: %s\n", Err.c_str());
      return 1;
    }
    T1 = now();
    BorrowedSeconds += T1 - T0;
  }
  OwnedSeconds /= Repeat;
  BorrowedSeconds /= Repeat;
  {
    StringPool::Stats OwnedStats = OwnedTrace.Names.stats();
    StringPool::Stats BorrowedStats = BorrowedTrace.Names.stats();
    NameBytes = OwnedStats.OwnedBytes;
    BorrowedOwnedNameBytes = BorrowedStats.OwnedBytes;
  }
  // Both storage modes must resolve identical bytes when re-serialized.
  if (writeTraceBinary(OwnedTrace) != writeTraceBinary(BorrowedTrace)) {
    std::fprintf(stderr, "FATAL: owned and borrowed name parses diverged\n");
    return 1;
  }

  // Dedup-compare microbenchmark: the detector/recorder dedup paths
  // used to compare names as strings; with the pool they compare ids.
  // Fixed-width names with a long shared prefix force the string
  // compare to walk ~40 bytes before differing — exactly the symbol-
  // table shape the pool was built for.
  const size_t NumLocks = BorrowedTrace.Locks.size();
  std::vector<std::string> Materialized;
  Materialized.reserve(NumLocks);
  for (size_t I = 0; I != NumLocks; ++I)
    Materialized.push_back(
        std::string(BorrowedTrace.lockName(static_cast<LockId>(I))));
  const size_t CompareIters = 4u * 1000u * 1000u;
  uint64_t StringMatches = 0, IdMatches = 0;
  uint64_t X = 0x9e3779b97f4a7c15ULL;
  auto nextPair = [&X, NumLocks]() {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    return std::pair<size_t, size_t>(static_cast<size_t>(X % NumLocks),
                                     static_cast<size_t>((X >> 24) %
                                                         NumLocks));
  };
  double T0 = now();
  for (size_t I = 0; I != CompareIters; ++I) {
    auto [A, B] = nextPair();
    StringMatches += Materialized[A] == Materialized[B];
  }
  double StringCompareSeconds = now() - T0;
  X = 0x9e3779b97f4a7c15ULL; // Same pair sequence for both sides.
  T0 = now();
  for (size_t I = 0; I != CompareIters; ++I) {
    auto [A, B] = nextPair();
    IdMatches +=
        BorrowedTrace.Locks[A].Name == BorrowedTrace.Locks[B].Name;
  }
  double IdCompareSeconds = now() - T0;
  if (StringMatches != IdMatches) {
    std::fprintf(stderr, "FATAL: string and id compares disagreed\n");
    return 1;
  }

  double CopyElimSpeedup =
      BorrowedSeconds > 0.0 ? OwnedSeconds / BorrowedSeconds : 0.0;
  double CompareSpeedup =
      IdCompareSeconds > 0.0 ? StringCompareSeconds / IdCompareSeconds : 0.0;
  std::printf("name-heavy corpus: %zu locks + %zu sites, %zu name bytes, "
              "%zu byte file\n",
              NumLocks, BorrowedTrace.Sites.size(), NameBytes,
              NameFile.size());
  std::printf("  parse owned %9.3f ms   borrowed %9.3f ms   "
              "copy-elimination %.2fx   borrowed owned-name bytes: %zu\n",
              OwnedSeconds * 1e3, BorrowedSeconds * 1e3, CopyElimSpeedup,
              BorrowedOwnedNameBytes);
  std::printf("  name equality: string %9.3f ms   pooled-id %9.3f ms   "
              "(%.1fx, %zuM compares)\n",
              StringCompareSeconds * 1e3, IdCompareSeconds * 1e3,
              CompareSpeedup, CompareIters / 1000000);

  FILE *F = std::fopen(Out.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Out.c_str());
    return 1;
  }
  std::fprintf(F,
               "{\n"
               "  \"bench\": \"micro_trace_ingest\",\n"
               "  \"file_bytes\": %zu,\n"
               "  \"events\": %zu,\n"
               "  \"repeat\": %u,\n"
               "  \"mmap_native\": %s,\n"
               "  \"configs\": [\n",
               FileBytes, NumEvents, Repeat,
               MappedFile::supportsMapping() ? "true" : "false");
  std::fprintf(F,
               "    {\"name\": \"stream\", \"ingest_seconds\": %.6f, "
               "\"end_to_end_seconds\": %.6f, \"peak_extra_bytes\": %zu},\n",
               Stream.IngestSeconds, Stream.TotalSeconds, FileBytes);
  std::fprintf(F,
               "    {\"name\": \"mmap\", \"ingest_seconds\": %.6f, "
               "\"end_to_end_seconds\": %.6f, \"peak_extra_bytes\": 0, "
               "\"ingest_speedup\": %.3f, \"end_to_end_speedup\": %.3f}\n",
               Mapped.IngestSeconds, Mapped.TotalSeconds, IngestSpeedup,
               TotalSpeedup);
  std::fprintf(F, "  ],\n");
  std::fprintf(F,
               "  \"v3_parallel\": {\n"
               "    \"file_bytes\": %zu,\n"
               "    \"workers\": %u,\n"
               "    \"hardware_threads\": %u,\n"
               "    \"serial_parse_seconds\": %.6f,\n"
               "    \"parallel_parse_seconds\": %.6f,\n"
               "    \"parallel_parse_speedup\": %.3f,\n"
               "    \"gate_enforced\": %s\n"
               "  },\n",
               V3FileBytes, ParallelWorkers, HardwareThreads, SerialParse,
               ParallelParse, ParallelParseSpeedup,
               ParallelGateEnforced ? "true" : "false");
  std::fprintf(F,
               "  \"out_of_core\": {\n"
               "    \"ran\": %s,\n"
               "    \"file_bytes\": %llu,\n"
               "    \"sections\": %llu,\n"
               "    \"signatures\": %u,\n"
               "    \"detect_seconds\": %.6f,\n"
               "    \"windowed_peak_rss_bytes\": %llu,\n"
               "    \"windowed_peak_rss_ratio\": %.4f,\n"
               "    \"parity_ok\": %s\n"
               "  },\n",
               OutOfCore ? "true" : "false",
               static_cast<unsigned long long>(Ooc.FileBytes),
               static_cast<unsigned long long>(Ooc.Sections),
               OocRun.Signatures, OocDetectSeconds,
               static_cast<unsigned long long>(OocPeakRss), OocRssRatio,
               OocParityOk ? "true" : "false");
  std::fprintf(F,
               "  \"name_heavy\": {\n"
               "    \"locks\": %zu,\n"
               "    \"sites\": %zu,\n"
               "    \"name_bytes\": %zu,\n"
               "    \"file_bytes\": %zu,\n"
               "    \"owned_parse_seconds\": %.6f,\n"
               "    \"borrowed_parse_seconds\": %.6f,\n"
               "    \"copy_elimination_speedup\": %.3f,\n"
               "    \"borrowed_owned_name_bytes\": %zu,\n"
               "    \"string_compare_seconds\": %.6f,\n"
               "    \"id_compare_seconds\": %.6f,\n"
               "    \"dedup_compare_speedup\": %.3f\n"
               "  }\n}\n",
               NumLocks, BorrowedTrace.Sites.size(), NameBytes,
               NameFile.size(), OwnedSeconds, BorrowedSeconds,
               CopyElimSpeedup, BorrowedOwnedNameBytes,
               StringCompareSeconds, IdCompareSeconds, CompareSpeedup);
  std::fclose(F);
  std::printf("wrote %s\n", Out.c_str());

  NameFile.close();
  std::remove(Scratch.c_str());
  std::remove(NamePath.c_str());
  // Gates: the mmap bytes-ready win and the v3 parallel-load win must
  // hold, a borrowed-storage parse must copy zero name bytes onto the
  // heap, and the out-of-core run (when requested) must stay under a
  // quarter of the file's size with whole-trace-identical verdicts.
  int Status = 0;
  if (BorrowedOwnedNameBytes != 0) {
    std::fprintf(stderr,
                 "FAIL: borrowed-mode parse copied %zu name bytes\n",
                 BorrowedOwnedNameBytes);
    Status = 1;
  }
  if (IngestSpeedup < 2.0 && MappedFile::supportsMapping()) {
    std::fprintf(stderr, "FAIL: mmap ingest speedup %.2fx < 2.0x\n",
                 IngestSpeedup);
    Status = 1;
  }
  if (ParallelGateEnforced && ParallelParseSpeedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: v3 parallel parse speedup %.2fx < 3.0x "
                 "(%u workers, %u hardware threads)\n",
                 ParallelParseSpeedup, ParallelWorkers, HardwareThreads);
    Status = 1;
  }
  if (OutOfCore) {
    if (!OocParityOk) {
      std::fprintf(stderr, "FAIL: windowed verdicts diverged from "
                           "whole-trace detection\n");
      Status = 1;
    }
    if (OocPeakRss != 0 && OocRssRatio > 0.25) {
      std::fprintf(stderr,
                   "FAIL: windowed peak RSS ratio %.3f > 0.25 "
                   "(%llu bytes over a %llu byte file)\n",
                   OocRssRatio,
                   static_cast<unsigned long long>(OocPeakRss),
                   static_cast<unsigned long long>(Ooc.FileBytes));
      Status = 1;
    }
  }
  return Status;
}
