#!/usr/bin/env python3
"""Completeness check for docs/PERFORMANCE.md.

The performance catalog must mention:

  * every bench binary (``bench_<stem>`` for each ``bench/<stem>.cpp``),
  * every ``BENCH_*.json`` name appearing anywhere in the repository
    (bench sources, CI workflow, committed result files).

Exits non-zero listing each omission, so the CI docs job fails when a
new bench or tracked JSON lands without documentation.  Run from
anywhere:

    python3 tools/check_bench_docs.py
"""

import os
import re
import sys

BENCH_JSON_RE = re.compile(r"\bBENCH_[A-Za-z0-9_]+\.json\b")
SCAN_SUFFIXES = (".cpp", ".h", ".py", ".md", ".yml", ".yaml", ".json")
SKIP_DIRS = {".git", "CMakeFiles", "Testing"}


def collect_bench_json_names(root: str):
    names = set()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if BENCH_JSON_RE.match(name):
                names.add(name)
            if not name.endswith(SCAN_SUFFIXES):
                continue
            path = os.path.join(dirpath, name)
            if os.path.abspath(path) == os.path.abspath(
                    os.path.join(root, "docs", "PERFORMANCE.md")):
                continue  # The catalog itself is not a source of truth.
            try:
                with open(path, encoding="utf-8", errors="ignore") as f:
                    names.update(BENCH_JSON_RE.findall(f.read()))
            except OSError:
                continue
    return names


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    doc_path = os.path.join(root, "docs", "PERFORMANCE.md")
    if not os.path.isfile(doc_path):
        print("BROKEN: docs/PERFORMANCE.md does not exist", file=sys.stderr)
        return 1
    with open(doc_path, encoding="utf-8") as f:
        doc = f.read()

    errors = []

    def documented(name: str) -> bool:
        # Word-boundary match: 'bench_micro_detect' must not ride on a
        # documented 'bench_micro_detect_throughput' (nor a JSON name
        # on a longer sibling).
        return re.search(
            r"(?<![A-Za-z0-9_.])" + re.escape(name) + r"(?![A-Za-z0-9_])",
            doc) is not None

    bench_dir = os.path.join(root, "bench")
    binaries = sorted(
        "bench_" + os.path.splitext(name)[0]
        for name in os.listdir(bench_dir)
        if name.endswith(".cpp"))
    for binary in binaries:
        if not documented(binary):
            errors.append(
                f"bench binary '{binary}' missing from docs/PERFORMANCE.md")

    for json_name in sorted(collect_bench_json_names(root)):
        if not documented(json_name):
            errors.append(
                f"tracked file '{json_name}' missing from "
                "docs/PERFORMANCE.md")

    if errors:
        for e in errors:
            print(f"BROKEN: {e}", file=sys.stderr)
        print(f"{len(errors)} omission(s) in docs/PERFORMANCE.md",
              file=sys.stderr)
        return 1
    print(f"ok: {len(binaries)} bench binaries and all BENCH_*.json "
          "names documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
