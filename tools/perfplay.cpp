//===- tools/perfplay.cpp - PerfPlay command-line driver --------------------===//
//
// Part of the PerfPlay reproduction of "On Performance Debugging of
// Unnecessary Lock Contentions on Multicore Processors" (CGO 2015).
//
// Subcommands:
//   perfplay list-apps
//   perfplay generate <app> [--threads N] [--scale S] [--seed N]
//                     [--out FILE] [--format text|binary|v3]
//   perfplay analyze <trace> [<trace> ...] [--pairs adjacent|all]
//                    [--races] [--threads N] [--detect-threads N]
//                    [--no-dedup] [--set-repr auto|sorted|bitset]
//                    [--window-events N]
//   perfplay replay <trace> [--scheme orig|elsc|sync|mem|sle|htm]
//                   [--seed N] [--replays K] [--htm-capacity N]
//                   [--htm-retries N] [--abort-penalty NS]
//                   [--abort-rate R]
//   perfplay record [-o FILE] [--stats FILE] [--ring N]
//                   [--preload-lib PATH] [--fail-on-drops]
//                   [--require-sections] [--quiet] -- <program> [args...]
//   perfplay casestudy <bug1|bug2|mysql> [--threads N] [--scale S]
//   perfplay convert <trace> [--out FILE]
//   perfplay stats <trace> [--verbose]
//   perfplay serve --socket PATH [--workers N] [--cache-budget BYTES]
//                  [--max-queue N] [--idle-timeout MS]
//   perfplay client --socket PATH analyze <trace> [--pairs adjacent|all]
//                   [--no-cache]
//   perfplay client --socket PATH stats|shutdown
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "core/PerfPlay.h"
#include "serve/Server.h"
#include "detect/CriticalSection.h"
#include "sim/LockElision.h"
#include "sim/Timeline.h"
#include "support/Format.h"
#include "support/MappedFile.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "debug/CsvExport.h"
#include "trace/Summary.h"
#include "trace/TraceIO.h"
#include "trace/TraceV3.h"
#include "workloads/Apps.h"
#include "workloads/CaseStudies.h"

#include <cctype>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstddef>
#include <cstring>
#include <map>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <utility>
#include <vector>

using namespace perfplay;

namespace {

/// Minimal flag cursor over argv.  Commands consume their options
/// (option()/flag()) before positionals so option values — including
/// negative numbers like "--seed -1" — are never mistaken for
/// positional arguments.
class ArgList {
public:
  ArgList(int Argc, char **Argv) : Args(Argv + 1, Argv + Argc) {}

  /// True when \p Arg is a flag ("-x", "--name"), as opposed to a
  /// positional or a negative numeric value ("-1", "-0.5").
  static bool isFlag(const std::string &Arg) {
    if (Arg.size() < 2 || Arg[0] != '-')
      return false;
    return !(std::isdigit(static_cast<unsigned char>(Arg[1])) ||
             Arg[1] == '.');
  }

  /// Pops the next positional argument; empty when exhausted.
  std::string positional() {
    for (size_t I = 0; I != Args.size(); ++I)
      if (!isFlag(Args[I])) {
        std::string Out = Args[I];
        Args.erase(Args.begin() + static_cast<ptrdiff_t>(I));
        return Out;
      }
    return std::string();
  }

  /// Returns the value of --name VALUE or --name=VALUE, or Default.
  std::string option(const char *Name, std::string Default) {
    std::string Prefix = std::string(Name) + "=";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (Args[I] == Name && I + 1 < Args.size()) {
        std::string Out = Args[I + 1];
        Args.erase(Args.begin() + static_cast<ptrdiff_t>(I),
                   Args.begin() + static_cast<ptrdiff_t>(I) + 2);
        return Out;
      }
      if (Args[I].compare(0, Prefix.size(), Prefix) == 0) {
        std::string Out = Args[I].substr(Prefix.size());
        Args.erase(Args.begin() + static_cast<ptrdiff_t>(I));
        return Out;
      }
    }
    return Default;
  }

  /// Returns true if --name is present (and consumes it).
  bool flag(const char *Name) {
    for (size_t I = 0; I != Args.size(); ++I)
      if (Args[I] == Name) {
        Args.erase(Args.begin() + static_cast<ptrdiff_t>(I));
        return true;
      }
    return false;
  }

private:
  std::vector<std::string> Args;
};

/// Parses a non-negative thread-count option value; rejects negatives
/// and garbage instead of letting them wrap to huge unsigned values.
bool parseThreadCount(const std::string &S, const char *Name,
                      unsigned &Out) {
  errno = 0;
  char *End = nullptr;
  long long V = std::strtoll(S.c_str(), &End, 10);
  if (End == S.c_str() || *End != '\0' || errno == ERANGE || V < 0 ||
      V > 1 << 16) {
    std::fprintf(stderr, "error: %s expects a non-negative thread count, "
                         "got '%s'\n",
                 Name, S.c_str());
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  perfplay list-apps\n"
      "  perfplay generate <app> [--threads N] [--scale S] [--seed N]"
      " [--out FILE]\n"
      "                   [--format text|binary|v3]\n"
      "  perfplay analyze <trace> [<trace> ...] [--pairs adjacent|all]"
      " [--races]\n"
      "                  [--timeline] [--csv] [--progress] [--threads N]\n"
      "                  [--detect-threads N] [--no-dedup]"
      " [--mmap|--no-mmap]\n"
      "                  [--set-repr auto|sorted|bitset]"
      " [--window-events N]\n"
      "  perfplay replay <trace> [--scheme orig|elsc|sync|mem|sle|htm]"
      " [--seed N]\n"
      "                 [--replays K] [--mmap|--no-mmap]\n"
      "                 [--htm-capacity N] [--htm-retries N]"
      " [--abort-penalty NS]\n"
      "                 [--abort-rate R]\n"
      "  perfplay record [-o FILE] [--stats FILE] [--ring N]"
      " [--preload-lib PATH]\n"
      "                 [--fail-on-drops] [--require-sections] [--quiet]"
      " --\n"
      "                 <program> [args...]\n"
      "  perfplay casestudy <bug1|bug2|mysql> [--threads N] [--scale S]\n"
      "  perfplay convert <trace> [--out FILE] [--mmap|--no-mmap]\n"
      "  perfplay stats <trace> [--verbose] [--mmap|--no-mmap]\n"
      "  perfplay serve --socket PATH [--workers N]"
      " [--cache-budget BYTES]\n"
      "                [--max-queue N] [--idle-timeout MS]\n"
      "  perfplay client --socket PATH analyze <trace>"
      " [--pairs adjacent|all]\n"
      "                 [--no-cache]\n"
      "  perfplay client --socket PATH stats|shutdown\n"
      "options accept both '--name value' and '--name=value';\n"
      "trace files are memory-mapped by default (zero-copy for binary"
      " traces),\n"
      "--no-mmap streams them through stdio instead;\n"
      "analyze --window-events streams a chunked v3 trace through"
      " bounded-memory\n"
      "windowed detection (detection only; 0 = one chunk per window);\n"
      "convert rewrites any trace as chunked v3, in place unless --out"
      " is given;\n"
      "replay --scheme sle/htm run the speculation baselines instead of"
      " a lock\n"
      "replay (sle: flat --abort-rate false aborts; htm: deterministic\n"
      "capacity aborts above --htm-capacity addresses, straight to lock"
      " fallback)\n");
  return 2;
}

/// Parses the --set-repr value: which read/write-set representation
/// detection intersects (detect/Classify.h).  All three produce
/// identical verdicts; sorted/bitset pin one path for parity or
/// benchmarking runs.
bool parseSetRepr(const std::string &S, SetRepr &Out) {
  if (S == "auto")
    Out = SetRepr::Auto;
  else if (S == "sorted")
    Out = SetRepr::Sorted;
  else if (S == "bitset")
    Out = SetRepr::Bitset;
  else {
    std::fprintf(stderr, "error: --set-repr expects auto|sorted|bitset, "
                         "got '%s'\n",
                 S.c_str());
    return false;
  }
  return true;
}

const char *formatName(TraceFormat F) {
  switch (F) {
  case TraceFormat::Text:
    return "text";
  case TraceFormat::Binary:
    return "binary";
  case TraceFormat::V3:
    return "v3";
  }
  return "unknown";
}

/// Parses the --format value of `generate`.  --binary is kept as a
/// deprecated alias for --format binary.
bool parseTraceFormat(const std::string &S, TraceFormat &Out) {
  if (S == "text")
    Out = TraceFormat::Text;
  else if (S == "binary")
    Out = TraceFormat::Binary;
  else if (S == "v3")
    Out = TraceFormat::V3;
  else {
    std::fprintf(stderr, "error: --format expects text|binary|v3, "
                         "got '%s'\n",
                 S.c_str());
    return false;
  }
  return true;
}

/// Consumes the loader-mode flags: the default memory-maps trace files
/// (zero-copy for binary traces), --no-mmap forces the stdio streaming
/// path, --mmap forces mapping even where Auto would not help.
TraceLoadMode loadModeFromArgs(ArgList &Args) {
  bool ForceMmap = Args.flag("--mmap");
  if (Args.flag("--no-mmap"))
    return TraceLoadMode::Stream;
  return ForceMmap ? TraceLoadMode::Mmap : TraceLoadMode::Auto;
}

int cmdListApps() {
  Table T;
  T.addRow({"application", "kind"});
  for (const AppModel &App : realWorldApps())
    T.addRow({App.Name, "real-world"});
  for (const AppModel &App : parsecApps())
    T.addRow({App.Name, "PARSEC"});
  for (const AppModel &App : syntheticApps())
    T.addRow({App.Name, "synthetic"});
  std::printf("%s", T.render().c_str());
  return 0;
}

int cmdGenerate(ArgList &Args) {
  unsigned Threads =
      static_cast<unsigned>(std::atoi(Args.option("--threads", "2").c_str()));
  double Scale = std::atof(Args.option("--scale", "1.0").c_str());
  uint64_t Seed = std::strtoull(Args.option("--seed", "42").c_str(),
                                nullptr, 10);
  std::string Out = Args.option("--out", "");
  TraceFormat Format =
      Args.flag("--binary") ? TraceFormat::Binary : TraceFormat::Text;
  std::string FormatStr = Args.option("--format", "");
  if (!FormatStr.empty() && !parseTraceFormat(FormatStr, Format))
    return 2;
  std::string Name = Args.positional();
  if (Name.empty())
    return usage();
  const AppModel *App = nullptr;
  for (const AppModel &A : allApps())
    if (A.Name == Name)
      App = &A;
  for (const AppModel &A : syntheticApps())
    if (A.Name == Name)
      App = &A;
  if (!App) {
    std::fprintf(stderr, "error: unknown application '%s' "
                         "(see 'perfplay list-apps')\n",
                 Name.c_str());
    return 1;
  }
  if (Out.empty())
    Out = Name + ".trace";

  Trace Tr = generateWorkload(App->Factory(Threads, Scale));
  ReplayResult Rec = recordGrantSchedule(Tr, Seed);
  if (!Rec.ok()) {
    std::fprintf(stderr, "error: recording replay failed: %s\n",
                 Rec.Error.c_str());
    return 1;
  }
  std::string Err;
  if (!saveTrace(Tr, Out, Err, Format)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  std::printf("wrote %s (%s): %u threads, %zu events, "
              "%zu critical sections\n",
              Out.c_str(), formatName(Format), Tr.numThreads(),
              Tr.numEvents(), Tr.numCriticalSections());
  return 0;
}

/// Batch mode of `perfplay analyze`: several traces analyzed
/// concurrently via Engine::analyzeBatchFilesStreaming — each worker
/// loads its own file on demand (zero-copy mmap by default) and each
/// result is formatted and discarded as it completes, so the batch
/// never holds every trace or every PipelineResult at once.  A small
/// reorder buffer of formatted lines flushes them in trace order,
/// keeping the output deterministic across runs and thread counts.
/// An unreadable or corrupt file fails only its own line.
int analyzeBatchMode(Engine &Eng, const std::vector<std::string> &Paths,
                     unsigned Threads, bool Races, TraceLoadMode Mode) {
  struct PendingLine {
    bool Ready = false;
    bool IsError = false;
    std::string Text;
  };
  std::vector<PendingLine> Pending(Paths.size());
  size_t NextToFlush = 0;
  int Status = 0;

  // Serialized by the batch: format, then flush every line whose
  // predecessors have all arrived.  Paths and diagnostics are appended
  // as strings (arbitrary length); only the numeric tails go through
  // the fixed snprintf buffer.
  auto Consumer = [&](size_t I, Expected<PipelineResult> Item) {
    char Buf[192];
    PendingLine &P = Pending[I];
    if (!Item.ok()) {
      P.Text = Paths[I] + ": error: " + Item.message() + " [" +
               errorCodeName(Item.code()) + "]\n";
      P.IsError = true;
      Status = 1;
    } else {
      const UlcpCounts &C = Item->Detection.Counts;
      std::snprintf(Buf, sizeof(Buf),
                    ": %llu ULCPs (NL=%llu RR=%llu DW=%llu "
                    "benign=%llu), true contention %llu\n",
                    static_cast<unsigned long long>(C.totalUnnecessary()),
                    static_cast<unsigned long long>(C.NullLock),
                    static_cast<unsigned long long>(C.ReadRead),
                    static_cast<unsigned long long>(C.DisjointWrite),
                    static_cast<unsigned long long>(C.Benign),
                    static_cast<unsigned long long>(C.TrueContention));
      P.Text = Paths[I] + Buf;
      if (Races)
        for (const RaceReport &Race : Item->Races) {
          std::snprintf(Buf, sizeof(Buf),
                        "  race: addr %llu threads %u vs %u\n",
                        static_cast<unsigned long long>(Race.Addr),
                        Race.ThreadA, Race.ThreadB);
          P.Text += Buf;
        }
    }
    P.Ready = true;
    while (NextToFlush != Pending.size() && Pending[NextToFlush].Ready) {
      PendingLine &Out = Pending[NextToFlush];
      std::fputs(Out.Text.c_str(), Out.IsError ? stderr : stdout);
      Out.Text.clear();
      Out.Text.shrink_to_fit();
      ++NextToFlush;
    }
  };

  AggregatedReport Agg =
      Eng.analyzeBatchFilesStreaming(Paths, Consumer, Threads, Mode);
  std::printf("\n%s", renderAggregatedReport(Agg).c_str());
  return Status;
}

int cmdAnalyze(ArgList &Args) {
  std::string PairMode = Args.option("--pairs", "adjacent");
  bool Races = Args.flag("--races");
  bool Timeline = Args.flag("--timeline");
  bool Csv = Args.flag("--csv");
  bool Progress = Args.flag("--progress");
  unsigned Threads, DetectThreads;
  if (!parseThreadCount(Args.option("--threads", "0"), "--threads",
                        Threads) ||
      !parseThreadCount(Args.option("--detect-threads", "1"),
                        "--detect-threads", DetectThreads))
    return 2;
  bool NoDedup = Args.flag("--no-dedup");
  SetRepr Repr;
  if (!parseSetRepr(Args.option("--set-repr", "auto"), Repr))
    return 2;
  std::string WindowStr = Args.option("--window-events", "");
  bool Windowed = !WindowStr.empty();
  uint64_t WindowEvents = 0;
  if (Windowed) {
    errno = 0;
    char *End = nullptr;
    unsigned long long V = std::strtoull(WindowStr.c_str(), &End, 10);
    if (End == WindowStr.c_str() || *End != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "error: --window-events expects a non-negative "
                           "event count, got '%s'\n",
                   WindowStr.c_str());
      return 2;
    }
    WindowEvents = V;
  }
  TraceLoadMode Mode = loadModeFromArgs(Args);
  std::vector<std::string> Paths;
  for (std::string P = Args.positional(); !P.empty();
       P = Args.positional())
    Paths.push_back(P);
  if (Paths.empty())
    return usage();

  Engine Eng;
  Eng.options().Detect.PairMode = PairMode == "all"
                                      ? PairModeKind::AllCrossThread
                                      : PairModeKind::AdjacentCrossThread;
  Eng.options().Detect.NumThreads = DetectThreads;
  Eng.options().Detect.DedupPairs = !NoDedup;
  Eng.options().Detect.Repr = Repr;
  Eng.options().CheckRaces = Races;
  if (Progress)
    Eng.setProgressCallback([](const StageEvent &Event) {
      if (!Event.FromCache)
        std::fprintf(stderr, "[stage] #%zu %s\n", Event.TraceIndex,
                     stageKindName(Event.Stage));
    });

  // Out-of-core mode: stream the v3 trace through bounded-memory
  // windowed detection (Engine::detectWindowed).  Detection only — the
  // transform/replay stages need the materialized trace, which is the
  // point of not having one.
  if (Windowed) {
    if (Paths.size() > 1) {
      std::fprintf(stderr, "error: --window-events analyzes a single "
                           "trace\n");
      return 2;
    }
    if (Timeline || Csv || Races)
      std::fprintf(stderr, "warning: --window-events runs detection "
                           "only; --timeline/--csv/--races ignored\n");
    Eng.options().WindowEvents = WindowEvents;
    Expected<DetectResult> ROr = Eng.detectWindowed(Paths[0]);
    if (!ROr) {
      std::fprintf(stderr, "error: %s [%s]\n", ROr.message().c_str(),
                   errorCodeName(ROr.code()));
      return 1;
    }
    const UlcpCounts &C = ROr->Counts;
    std::printf("ULCPs: %llu (NL=%llu RR=%llu DW=%llu benign=%llu), "
                "true contention: %llu\n",
                static_cast<unsigned long long>(C.totalUnnecessary()),
                static_cast<unsigned long long>(C.NullLock),
                static_cast<unsigned long long>(C.ReadRead),
                static_cast<unsigned long long>(C.DisjointWrite),
                static_cast<unsigned long long>(C.Benign),
                static_cast<unsigned long long>(C.TrueContention));
    return 0;
  }

  if (Paths.size() > 1) {
    if (Timeline || Csv)
      std::fprintf(stderr, "warning: --timeline/--csv apply only to "
                           "single-trace analyze; ignored\n");
    return analyzeBatchMode(Eng, Paths, Threads, Races, Mode);
  }
  if (Threads != 0)
    std::fprintf(stderr, "warning: --threads parallelizes across traces "
                         "and is ignored for a single trace; use "
                         "--detect-threads to parallelize detection\n");

  // The session pins the file mapping (zero-copy binary loads) for as
  // long as it analyzes the trace.
  Expected<AnalysisSession> SessionOr =
      Eng.openSessionFromFile(Paths[0], Mode);
  if (!SessionOr) {
    std::fprintf(stderr, "error: %s\n", SessionOr.message().c_str());
    return 1;
  }
  AnalysisSession Session = std::move(*SessionOr);
  PipelineError TypedErr;
  PipelineResult R = Session.run(&TypedErr);
  if (!R.ok()) {
    std::fprintf(stderr, "error: %s [%s]\n", R.Error.c_str(),
                 errorCodeName(TypedErr.Code));
    return 1;
  }

  const UlcpCounts &C = R.Detection.Counts;
  std::printf("ULCPs: %llu (NL=%llu RR=%llu DW=%llu benign=%llu), "
              "true contention: %llu\n",
              static_cast<unsigned long long>(C.totalUnnecessary()),
              static_cast<unsigned long long>(C.NullLock),
              static_cast<unsigned long long>(C.ReadRead),
              static_cast<unsigned long long>(C.DisjointWrite),
              static_cast<unsigned long long>(C.Benign),
              static_cast<unsigned long long>(C.TrueContention));
  std::printf("transform: %llu causal edges, %llu auxiliary locks, "
              "%llu standalone sections removed\n",
              static_cast<unsigned long long>(
                  R.Transformation.Topology.numEdges()),
              static_cast<unsigned long long>(
                  R.Transformation.NumAuxLocks),
              static_cast<unsigned long long>(
                  R.Transformation.NumStandalone));
  if (Csv) {
    std::printf("\n-- detection.csv --\n%s",
                detectionToCsv(R.Detection).c_str());
    std::printf("\n-- report.csv --\n%s", reportToCsv(R.Report).c_str());
  }
  std::printf("\n%s", renderReport(R.Report).c_str());
  if (Timeline) {
    std::printf("\noriginal replay:\n%s",
                renderTimeline(R.Transformation.Transformed, R.Original)
                    .c_str());
    std::printf("\nULCP-free replay:\n%s",
                renderTimeline(R.Transformation.Transformed, R.UlcpFree)
                    .c_str());
  }
  if (Races) {
    std::printf("\nTheorem-1 race check: %zu potential race(s)\n",
                R.Races.size());
    for (const RaceReport &Race : R.Races)
      std::printf("  addr %llu: threads %u vs %u\n",
                  static_cast<unsigned long long>(Race.Addr),
                  Race.ThreadA, Race.ThreadB);
  }
  return 0;
}

/// The sle/htm arms of `perfplay replay`: speculation baselines that
/// run over the loaded trace's critical-section index rather than
/// through the schedule-kind replayer.  Empty knob strings keep each
/// model's own default (sle and htm differ on every one).
int replaySpeculation(const std::string &SchemeName, const std::string &Path,
                      TraceLoadMode Mode, uint64_t Seed, unsigned Replays,
                      const std::string &Capacity, const std::string &Retries,
                      const std::string &Penalty, const std::string &Rate) {
  Trace Tr;
  std::string Err;
  if (!loadTrace(Path, Tr, Err, Mode)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  CsIndex Index = CsIndex::build(Tr);

  RunningStats Stats;
  if (SchemeName == "htm") {
    HtmOptions Opts;
    if (!Capacity.empty())
      Opts.Capacity =
          static_cast<unsigned>(std::strtoul(Capacity.c_str(), nullptr, 10));
    if (!Retries.empty())
      Opts.MaxRetries =
          static_cast<unsigned>(std::strtoul(Retries.c_str(), nullptr, 10));
    if (!Penalty.empty())
      Opts.AbortPenalty = std::strtoull(Penalty.c_str(), nullptr, 10);
    if (!Rate.empty())
      Opts.InterruptAbortRate = std::atof(Rate.c_str());
    HtmResult Last;
    for (unsigned I = 0; I != std::max(Replays, 1u); ++I) {
      Opts.Seed = Seed + I;
      Last = simulateHtm(Tr, Index, Opts);
      Stats.add(static_cast<double>(Last.TotalTime));
    }
    std::printf("htm: %s mean over %llu replay(s), spread %s\n",
                formatNs(static_cast<TimeNs>(Stats.mean())).c_str(),
                static_cast<unsigned long long>(Stats.count()),
                formatNs(static_cast<TimeNs>(Stats.range())).c_str());
    std::printf("aborts: %llu conflict, %llu capacity, %llu interrupt; "
                "%llu lock fallbacks, wasted %s\n",
                static_cast<unsigned long long>(Last.ConflictAborts),
                static_cast<unsigned long long>(Last.CapacityAborts),
                static_cast<unsigned long long>(Last.InterruptAborts),
                static_cast<unsigned long long>(Last.Fallbacks),
                formatNs(Last.WastedNs).c_str());
    return 0;
  }

  LockElisionOptions Opts;
  if (!Retries.empty())
    Opts.MaxRetries =
        static_cast<unsigned>(std::strtoul(Retries.c_str(), nullptr, 10));
  if (!Penalty.empty())
    Opts.AbortPenalty = std::strtoull(Penalty.c_str(), nullptr, 10);
  if (!Rate.empty())
    Opts.FalseAbortRate = std::atof(Rate.c_str());
  LockElisionResult Last;
  for (unsigned I = 0; I != std::max(Replays, 1u); ++I) {
    Opts.Seed = Seed + I;
    Last = simulateLockElision(Tr, Index, Opts);
    Stats.add(static_cast<double>(Last.TotalTime));
  }
  std::printf("sle: %s mean over %llu replay(s), spread %s\n",
              formatNs(static_cast<TimeNs>(Stats.mean())).c_str(),
              static_cast<unsigned long long>(Stats.count()),
              formatNs(static_cast<TimeNs>(Stats.range())).c_str());
  std::printf("aborts: %llu conflict, %llu false; %llu lock fallbacks, "
              "wasted %s\n",
              static_cast<unsigned long long>(Last.ConflictAborts),
              static_cast<unsigned long long>(Last.FalseAborts),
              static_cast<unsigned long long>(Last.Fallbacks),
              formatNs(Last.WastedNs).c_str());
  return 0;
}

int cmdReplay(ArgList &Args) {
  std::string SchemeName = Args.option("--scheme", "elsc");
  uint64_t Seed =
      std::strtoull(Args.option("--seed", "1").c_str(), nullptr, 10);
  unsigned Replays =
      static_cast<unsigned>(std::atoi(Args.option("--replays", "1").c_str()));
  std::string Capacity = Args.option("--htm-capacity", "");
  std::string Retries = Args.option("--htm-retries", "");
  std::string Penalty = Args.option("--abort-penalty", "");
  std::string Rate = Args.option("--abort-rate", "");
  TraceLoadMode Mode = loadModeFromArgs(Args);
  std::string Path = Args.positional();
  if (Path.empty())
    return usage();

  if (SchemeName == "sle" || SchemeName == "htm")
    return replaySpeculation(SchemeName, Path, Mode, Seed, Replays,
                             Capacity, Retries, Penalty, Rate);

  ScheduleKind Scheme;
  if (!parseScheduleKind(SchemeName, Scheme)) {
    std::fprintf(stderr, "error: unknown scheme '%s'\n",
                 SchemeName.c_str());
    return 1;
  }

  Trace Tr;
  std::string Err;
  if (!loadTrace(Path, Tr, Err, Mode)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }

  PipelineOptions Opts;
  Opts.RecordSeed = Seed;
  AnalysisSession Session(std::move(Tr), Opts);

  RunningStats Stats;
  const ReplayResult *Last = nullptr;
  for (unsigned I = 0; I != std::max(Replays, 1u); ++I) {
    Expected<const ReplayResult &> R = Session.replay(Scheme, Seed + I);
    if (!R) {
      std::fprintf(stderr, "error: %s [%s]\n", R.message().c_str(),
                   errorCodeName(R.code()));
      return 1;
    }
    Last = &*R;
    Stats.add(static_cast<double>(R->TotalTime));
  }
  std::printf("%s: %s mean over %llu replay(s), spread %s\n",
              scheduleKindName(Scheme),
              formatNs(static_cast<TimeNs>(Stats.mean())).c_str(),
              static_cast<unsigned long long>(Stats.count()),
              formatNs(static_cast<TimeNs>(Stats.range())).c_str());
  std::printf("spin-wait %s, idle-wait %s, lockset overhead %s\n",
              formatNs(Last->SpinWaitNs).c_str(),
              formatNs(Last->IdleWaitNs).c_str(),
              formatNs(Last->LocksetOverheadNs).c_str());
  return 0;
}

int cmdStats(ArgList &Args) {
  bool Verbose = Args.flag("--verbose");
  TraceLoadMode Mode = loadModeFromArgs(Args);
  std::string Path = Args.positional();
  if (Path.empty())
    return usage();
  MappedFile File;
  Trace Tr;
  std::string Err;
  TraceLoadInfo Info;
  if (!loadTraceKeepMapping(Path, Tr, Err, File, Mode,
                            NameStorage::Owned, &Info)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (Verbose) {
    std::printf("load: format %s, served by %s\n", formatName(Info.Format),
                Info.UsedMmap ? "mmap (zero-copy)" : "stream loader");
    if (!Info.MmapDowngradeReason.empty())
      std::printf("load: mmap downgraded: %s\n",
                  Info.MmapDowngradeReason.c_str());
  }
  TraceSummary S = summarizeTrace(Tr);
  std::printf("%s", renderSummary(Tr, S).c_str());
  return 0;
}

/// `perfplay convert`: rewrites any readable trace (text, binary, or
/// v3) as chunked v3.  Without --out the file is replaced atomically —
/// the v3 bytes land in <path>.tmp first and rename() swaps them in,
/// so a crash mid-write never clobbers the original.
int cmdConvert(ArgList &Args) {
  TraceLoadMode Mode = loadModeFromArgs(Args);
  std::string Out = Args.option("--out", "");
  std::string Path = Args.positional();
  if (Path.empty())
    return usage();
  bool InPlace = Out.empty();

  MappedFile File;
  Trace Tr;
  std::string Err;
  TraceLoadInfo Info;
  // Owned names: the source mapping dies before the rename replaces
  // the file, so nothing may borrow from it.
  if (!loadTraceKeepMapping(Path, Tr, Err, File, Mode,
                            NameStorage::Owned, &Info)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (InPlace && Info.Format == TraceFormat::V3) {
    std::printf("%s is already chunked v3; nothing to do\n", Path.c_str());
    return 0;
  }

  std::string Dest = InPlace ? Path + ".tmp" : Out;
  if (!saveTrace(Tr, Dest, Err, TraceFormat::V3)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    if (InPlace)
      std::remove(Dest.c_str());
    return 1;
  }
  if (InPlace) {
    if (std::rename(Dest.c_str(), Path.c_str()) != 0) {
      std::fprintf(stderr, "error: cannot replace %s: %s\n", Path.c_str(),
                   std::strerror(errno));
      std::remove(Dest.c_str());
      return 1;
    }
    Dest = Path;
  }
  std::printf("converted %s (%s) -> %s (v3): %u threads, %zu events, "
              "%zu critical sections\n",
              Path.c_str(), formatName(Info.Format), Dest.c_str(),
              Tr.numThreads(), Tr.numEvents(), Tr.numCriticalSections());
  return 0;
}

/// Absolute form of \p Path (the recorded child may chdir, and the
/// shim resolves its output relative to its own cwd).
std::string absolutePath(const std::string &Path) {
  if (!Path.empty() && Path[0] == '/')
    return Path;
  char Cwd[PATH_MAX];
  if (!getcwd(Cwd, sizeof(Cwd)))
    return Path;
  return std::string(Cwd) + "/" + Path;
}

/// Locates libperfplay_preload.so: --preload-lib flag, then the
/// PERFPLAY_PRELOAD_LIB env var, then next to this executable (the
/// build tree layout).
std::string findPreloadLib(const std::string &FlagValue) {
  if (!FlagValue.empty())
    return FlagValue;
  if (const char *Env = getenv("PERFPLAY_PRELOAD_LIB"))
    if (*Env)
      return Env;
  char Exe[PATH_MAX];
  ssize_t N = readlink("/proc/self/exe", Exe, sizeof(Exe) - 1);
  if (N > 0) {
    Exe[N] = '\0';
    std::string Dir(Exe);
    size_t Slash = Dir.rfind('/');
    if (Slash != std::string::npos)
      return Dir.substr(0, Slash + 1) + "libperfplay_preload.so";
  }
  return "libperfplay_preload.so";
}

/// Reads the recorder's key/value stats sidecar back.
bool readStatsFile(const std::string &Path,
                   std::map<std::string, std::string> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  char Line[4096];
  while (std::fgets(Line, sizeof(Line), F)) {
    std::string S(Line);
    while (!S.empty() && (S.back() == '\n' || S.back() == '\r'))
      S.pop_back();
    size_t Space = S.find(' ');
    if (Space == std::string::npos || Space == 0)
      continue;
    Out[S.substr(0, Space)] = S.substr(Space + 1);
  }
  std::fclose(F);
  return true;
}

uint64_t statValue(const std::map<std::string, std::string> &Stats,
                   const char *Key) {
  auto It = Stats.find(Key);
  return It == Stats.end() ? 0 : std::strtoull(It->second.c_str(), nullptr, 10);
}

/// `perfplay record`: runs a program under the LD_PRELOAD pthread
/// recorder and reports what the shim captured.  Parses raw argv
/// because everything after `--` belongs to the recorded program
/// (ArgList would treat it as a flag).
int cmdRecord(int Argc, char **Argv) {
  std::string Out = "trace.v3";
  std::string StatsPath;
  std::string Lib;
  std::string Ring;
  bool FailOnDrops = false, RequireSections = false, Quiet = false;
  int I = 2; // Argv[1] == "record".
  for (; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Name) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s expects a value\n", Name);
        return nullptr;
      }
      return Argv[++I];
    };
    if (A == "--")
      break;
    if (A == "-o" || A == "--out") {
      const char *V = Value(A.c_str());
      if (!V)
        return 2;
      Out = V;
    } else if (A.rfind("--out=", 0) == 0) {
      Out = A.substr(6);
    } else if (A == "--stats") {
      const char *V = Value("--stats");
      if (!V)
        return 2;
      StatsPath = V;
    } else if (A.rfind("--stats=", 0) == 0) {
      StatsPath = A.substr(8);
    } else if (A == "--ring") {
      const char *V = Value("--ring");
      if (!V)
        return 2;
      Ring = V;
    } else if (A.rfind("--ring=", 0) == 0) {
      Ring = A.substr(7);
    } else if (A == "--preload-lib") {
      const char *V = Value("--preload-lib");
      if (!V)
        return 2;
      Lib = V;
    } else if (A.rfind("--preload-lib=", 0) == 0) {
      Lib = A.substr(14);
    } else if (A == "--fail-on-drops") {
      FailOnDrops = true;
    } else if (A == "--require-sections") {
      RequireSections = true;
    } else if (A == "--quiet") {
      Quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown record option '%s'\n", A.c_str());
      return usage();
    }
  }
  if (I >= Argc || ++I >= Argc) {
    std::fprintf(stderr, "error: record needs '-- <program> [args...]'\n");
    return usage();
  }

  Out = absolutePath(Out);
  if (StatsPath.empty())
    StatsPath = Out + ".stats";
  StatsPath = absolutePath(StatsPath);
  Lib = absolutePath(findPreloadLib(Lib));
  if (access(Lib.c_str(), R_OK) != 0) {
    std::fprintf(stderr,
                 "error: preload library not found at %s "
                 "(use --preload-lib or PERFPLAY_PRELOAD_LIB)\n",
                 Lib.c_str());
    return 1;
  }
  // A stale sidecar would masquerade as this run's result if the child
  // dies before the shim finalizes.
  std::remove(StatsPath.c_str());

  pid_t Pid = fork();
  if (Pid < 0) {
    std::fprintf(stderr, "error: fork: %s\n", std::strerror(errno));
    return 1;
  }
  if (Pid == 0) {
    setenv("PERFPLAY_TRACE_OUT", Out.c_str(), 1);
    setenv("PERFPLAY_RECORD_STATS", StatsPath.c_str(), 1);
    if (!Ring.empty())
      setenv("PERFPLAY_RING_CAPACITY", Ring.c_str(), 1);
    unsetenv("PERFPLAY_RECORD_PID"); // The child is the root recorder.
    std::string Preload = Lib;
    if (const char *Existing = getenv("LD_PRELOAD"))
      if (*Existing)
        Preload += std::string(":") + Existing;
    setenv("LD_PRELOAD", Preload.c_str(), 1);
    execvp(Argv[I], &Argv[I]);
    std::fprintf(stderr, "error: exec %s: %s\n", Argv[I],
                 std::strerror(errno));
    _exit(127);
  }

  int Status = 0;
  if (waitpid(Pid, &Status, 0) < 0) {
    std::fprintf(stderr, "error: waitpid: %s\n", std::strerror(errno));
    return 1;
  }
  int ChildRc = 0;
  if (WIFSIGNALED(Status)) {
    ChildRc = 128 + WTERMSIG(Status);
    std::fprintf(stderr, "record: %s killed by signal %d\n", Argv[I],
                 WTERMSIG(Status));
  } else if (WIFEXITED(Status)) {
    ChildRc = WEXITSTATUS(Status);
  }

  std::map<std::string, std::string> Stats;
  if (!readStatsFile(StatsPath, Stats)) {
    std::fprintf(stderr,
                 "error: recorder wrote no stats (%s); did the shim "
                 "initialize?\n",
                 StatsPath.c_str());
    return ChildRc != 0 ? ChildRc : 1;
  }
  if (statValue(Stats, "ok") != 1) {
    auto It = Stats.find("error");
    std::fprintf(stderr, "error: recording failed: %s\n",
                 It == Stats.end() ? "unknown" : It->second.c_str());
    return ChildRc != 0 ? ChildRc : 1;
  }

  // The shim renamed the trace into place; prove it loads before
  // advertising it.
  {
    WindowedReader Reader;
    std::string Err;
    if (!Reader.open(Out, Err)) {
      std::fprintf(stderr, "error: recorded trace is unreadable: %s\n",
                   Err.c_str());
      return 1;
    }
  }

  const uint64_t Drops = statValue(Stats, "drops");
  const uint64_t Sections = statValue(Stats, "sections");
  if (!Quiet) {
    std::printf("recorded %s: %llu threads, %llu events, %llu critical "
                "sections\n",
                Out.c_str(),
                static_cast<unsigned long long>(statValue(Stats, "threads")),
                static_cast<unsigned long long>(
                    statValue(Stats, "trace_events")),
                static_cast<unsigned long long>(Sections));
    std::printf("recorder: %llu attempts, %llu records, %llu drops, "
                "%llu synthesized releases, %llu unmatched releases\n",
                static_cast<unsigned long long>(statValue(Stats, "attempts")),
                static_cast<unsigned long long>(statValue(Stats, "records")),
                static_cast<unsigned long long>(Drops),
                static_cast<unsigned long long>(
                    statValue(Stats, "synth_releases")),
                static_cast<unsigned long long>(
                    statValue(Stats, "unmatched_releases")));
  }
  if (FailOnDrops && Drops > 0) {
    std::fprintf(stderr, "error: recorder dropped %llu records "
                         "(--fail-on-drops); raise --ring\n",
                 static_cast<unsigned long long>(Drops));
    return 1;
  }
  if (RequireSections && Sections == 0) {
    std::fprintf(stderr,
                 "error: recording contains no critical sections "
                 "(--require-sections)\n");
    return 1;
  }
  return ChildRc;
}

int cmdCaseStudy(ArgList &Args) {
  CaseStudyParams P;
  P.NumThreads =
      static_cast<unsigned>(std::atoi(Args.option("--threads", "4").c_str()));
  P.InputScale = std::atof(Args.option("--scale", "1.0").c_str());
  std::string Which = Args.positional();
  if (Which.empty())
    return usage();

  Trace Buggy, Fixed;
  if (Which == "bug1") {
    Buggy = makeOpenldapSpinWait(P);
    Fixed = makeOpenldapSpinWaitFixed(P);
  } else if (Which == "bug2") {
    Buggy = makePbzip2Consumer(P);
    Fixed = makePbzip2ConsumerFixed(P);
  } else if (Which == "mysql") {
    Buggy = makeMysqlQueryCache(P);
    Fixed = makeMysqlQueryCacheFixed(P);
  } else {
    std::fprintf(stderr, "error: unknown case study '%s'\n",
                 Which.c_str());
    return 1;
  }

  // Buggy and fixed variants are independent: analyze them in parallel.
  Engine Eng;
  std::vector<Trace> Pair;
  Pair.push_back(std::move(Buggy));
  Pair.push_back(std::move(Fixed));
  std::vector<Expected<PipelineResult>> Batch =
      Eng.analyzeBatch(std::move(Pair), 2);
  if (!Batch[0].ok() || !Batch[1].ok()) {
    const PipelineError &E =
        Batch[0].ok() ? Batch[1].error() : Batch[0].error();
    std::fprintf(stderr, "error: %s [%s]\n", E.Message.c_str(),
                 errorCodeName(E.Code));
    return 1;
  }
  const PipelineResult &RBuggy = *Batch[0];
  const PipelineResult &RFixed = *Batch[1];
  std::printf("%s @%u threads, scale %.2f\n", Which.c_str(), P.NumThreads,
              P.InputScale);
  std::printf("  buggy : %s (%llu ULCPs, spin waste %s)\n",
              formatNs(RBuggy.Original.TotalTime).c_str(),
              static_cast<unsigned long long>(
                  RBuggy.Detection.Counts.totalUnnecessary()),
              formatNs(RBuggy.Original.SpinWaitNs).c_str());
  std::printf("  fixed : %s (%llu ULCPs, spin waste %s)\n",
              formatNs(RFixed.Original.TotalTime).c_str(),
              static_cast<unsigned long long>(
                  RFixed.Detection.Counts.totalUnnecessary()),
              formatNs(RFixed.Original.SpinWaitNs).c_str());
  std::printf("\n%s", renderReport(RBuggy.Report).c_str());
  return 0;
}

/// `perfplay serve`: run the resident analysis daemon until a client
/// sends shutdown (perfplay client --socket PATH shutdown).
int cmdServe(ArgList &Args) {
  serve::ServerOptions Opts;
  Opts.SocketPath = Args.option("--socket", "");
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "error: serve requires --socket PATH\n");
    return 2;
  }
  if (!parseThreadCount(Args.option("--workers", "0"), "--workers",
                        Opts.NumWorkers))
    return 2;
  Opts.CacheBudgetBytes = static_cast<size_t>(std::strtoull(
      Args.option("--cache-budget", "67108864").c_str(), nullptr, 10));
  unsigned MaxQueue;
  if (!parseThreadCount(Args.option("--max-queue", "64"), "--max-queue",
                        MaxQueue))
    return 2;
  Opts.MaxQueueDepth = MaxQueue;
  Opts.IdleTimeoutMs =
      std::atoi(Args.option("--idle-timeout", "0").c_str());

  serve::Server Daemon(Opts);
  Expected<void> StartOr = Daemon.start();
  if (!StartOr) {
    std::fprintf(stderr, "error: %s [%s]\n", StartOr.message().c_str(),
                 errorCodeName(StartOr.code()));
    return 1;
  }
  std::printf("serving on %s: %u worker(s), %u detect thread(s)/request, "
              "cache budget %zu bytes\n",
              Opts.SocketPath.c_str(), Daemon.workers(),
              Daemon.detectThreadsPerRequest(), Opts.CacheBudgetBytes);
  std::fflush(stdout);
  Daemon.wait();
  Daemon.stop();
  std::printf("daemon stopped\n");
  return 0;
}

void printServeStats(const serve::ServeStats &S) {
  std::printf("requests: %llu served, %llu failed, %llu protocol errors, "
              "%llu rejected\n",
              static_cast<unsigned long long>(S.RequestsServed),
              static_cast<unsigned long long>(S.RequestsFailed),
              static_cast<unsigned long long>(S.ProtocolErrors),
              static_cast<unsigned long long>(S.RequestsRejected));
  std::printf("trace cache: %llu hits, %llu misses; result cache: "
              "%llu hits, %llu misses; %llu evictions\n",
              static_cast<unsigned long long>(S.TraceCacheHits),
              static_cast<unsigned long long>(S.TraceCacheMisses),
              static_cast<unsigned long long>(S.ResultCacheHits),
              static_cast<unsigned long long>(S.ResultCacheMisses),
              static_cast<unsigned long long>(S.CacheEvictions));
  std::printf("resident: %llu traces + %llu results (%llu bytes), queue "
              "depth %llu\n",
              static_cast<unsigned long long>(S.CachedTraces),
              static_cast<unsigned long long>(S.CachedResults),
              static_cast<unsigned long long>(S.CacheBytes),
              static_cast<unsigned long long>(S.QueueDepth));
  std::printf("latency: p50 %llu us, p99 %llu us\n",
              static_cast<unsigned long long>(S.P50Micros),
              static_cast<unsigned long long>(S.P99Micros));
}

/// `perfplay client`: one request against a running daemon.
int cmdClient(ArgList &Args) {
  std::string Socket = Args.option("--socket", "");
  std::string PairMode = Args.option("--pairs", "adjacent");
  bool NoCache = Args.flag("--no-cache");
  std::string Action = Args.positional();
  if (Socket.empty() || Action.empty()) {
    std::fprintf(stderr, "error: client requires --socket PATH and an "
                         "action (analyze|stats|shutdown)\n");
    return 2;
  }

  serve::ServeClient Client;
  Expected<void> ConnOr = Client.connect(Socket);
  if (!ConnOr) {
    std::fprintf(stderr, "error: %s [%s]\n", ConnOr.message().c_str(),
                 errorCodeName(ConnOr.code()));
    return 1;
  }

  if (Action == "analyze") {
    serve::AnalyzeRequest Req;
    Req.Path = Args.positional();
    if (Req.Path.empty())
      return usage();
    Req.PairMode = PairMode == "all" ? 1 : 0;
    Req.NoCache = NoCache ? 1 : 0;
    Expected<serve::ResultSummary> SumOr = Client.analyze(Req);
    if (!SumOr) {
      std::fprintf(stderr, "error: %s [%s]\n", SumOr.message().c_str(),
                   errorCodeName(SumOr.code()));
      return 1;
    }
    const serve::ResultSummary &S = *SumOr;
    uint64_t Total = S.NullLock + S.ReadRead + S.DisjointWrite + S.Benign;
    std::printf("ULCPs: %llu (NL=%llu RR=%llu DW=%llu benign=%llu), "
                "true contention: %llu%s\n",
                static_cast<unsigned long long>(Total),
                static_cast<unsigned long long>(S.NullLock),
                static_cast<unsigned long long>(S.ReadRead),
                static_cast<unsigned long long>(S.DisjointWrite),
                static_cast<unsigned long long>(S.Benign),
                static_cast<unsigned long long>(S.TrueContention),
                S.FromResultCache ? " [cached]"
                : S.FromTraceCache ? " [trace cached]"
                                   : "");
    std::printf("transform: %llu causal edges, %llu auxiliary locks, "
                "%llu standalone sections removed\n",
                static_cast<unsigned long long>(S.TopologyEdges),
                static_cast<unsigned long long>(S.NumAuxLocks),
                static_cast<unsigned long long>(S.NumStandalone));
    return 0;
  }
  if (Action == "stats" || Action == "shutdown") {
    Expected<serve::ServeStats> StatsOr =
        Action == "stats" ? Client.stats() : Client.shutdown();
    if (!StatsOr) {
      std::fprintf(stderr, "error: %s [%s]\n", StatsOr.message().c_str(),
                   errorCodeName(StatsOr.code()));
      return 1;
    }
    printServeStats(*StatsOr);
    return 0;
  }
  std::fprintf(stderr, "error: unknown client action '%s'\n",
               Action.c_str());
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  ArgList Args(Argc, Argv);
  std::string Cmd = Args.positional();
  if (Cmd == "list-apps")
    return cmdListApps();
  if (Cmd == "generate")
    return cmdGenerate(Args);
  if (Cmd == "analyze")
    return cmdAnalyze(Args);
  if (Cmd == "replay")
    return cmdReplay(Args);
  if (Cmd == "record")
    return cmdRecord(Argc, Argv);
  if (Cmd == "casestudy")
    return cmdCaseStudy(Args);
  if (Cmd == "stats")
    return cmdStats(Args);
  if (Cmd == "convert")
    return cmdConvert(Args);
  if (Cmd == "serve")
    return cmdServe(Args);
  if (Cmd == "client")
    return cmdClient(Args);
  return usage();
}
