#!/usr/bin/env python3
"""Run clang-tidy over the compilation database and gate on a baseline.

The repo's .clang-tidy selects the checks; this wrapper adds the
ratchet: every finding is reduced to a stable key ("<relpath> <check>")
and compared against tools/clang_tidy_baseline.txt.

  * A finding whose key is NOT in the baseline fails the gate (CI
    exits non-zero and prints the full diagnostics).
  * A baseline key with no remaining findings is reported as stale so
    it can be ratcheted out — the baseline only ever shrinks.
  * --update-baseline rewrites the file from the current findings.

Keys are file+check (not line numbers) so unrelated edits above a
baselined finding do not churn the file.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [--jobs N]
                          [--update-baseline] [--clang-tidy BINARY]
                          [paths...]

With no paths, gates src/ and tools/ (tests and benches lean on gtest
and benchmark macro expansions that the bugprone family dislikes; they
are covered by -Werror builds and the sanitizer lanes instead).
"""

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys
from multiprocessing.pool import ThreadPool

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "tools", "clang_tidy_baseline.txt")
DEFAULT_GATED_DIRS = ("src", "tools")

# clang-tidy diagnostic: /abs/path.cpp:12:3: warning: text [check-name]
DIAG_RE = re.compile(
    r"^(?P<file>/[^:]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<kind>warning|error): .* \[(?P<check>[a-zA-Z0-9.,_-]+)\]$"
)


def find_compile_db(build_dir):
    candidates = [
        os.path.join(build_dir, "compile_commands.json"),
        os.path.join(REPO_ROOT, "compile_commands.json"),
    ]
    for path in candidates:
        if os.path.exists(path):
            return os.path.dirname(os.path.realpath(path))
    sys.exit(
        "error: compile_commands.json not found (configure with "
        "`cmake -B build -S .`; CMAKE_EXPORT_COMPILE_COMMANDS is on by "
        "default and symlinks the database to the repo root)"
    )


def gated_sources(db_dir, paths):
    """Translation units from the compile DB under the gated paths."""
    with open(os.path.join(db_dir, "compile_commands.json")) as fh:
        entries = json.load(fh)
    roots = [os.path.join(REPO_ROOT, p) for p in paths]
    sources = set()
    for entry in entries:
        src = os.path.realpath(
            os.path.join(entry.get("directory", db_dir), entry["file"])
        )
        if any(src.startswith(root + os.sep) or src == root
               for root in roots):
            sources.add(src)
    return sorted(sources)


def run_tidy(binary, db_dir, sources, jobs):
    """Runs clang-tidy over sources, returns (findings, raw_output).

    findings maps "relpath check" keys to lists of diagnostic lines.
    """
    findings = {}
    raw = []

    def one(src):
        proc = subprocess.run(
            [binary, "-p", db_dir, "--quiet", src],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        return proc.stdout

    with ThreadPool(jobs) as pool:
        outputs = pool.map(one, sources)
    for out in outputs:
        for line in out.splitlines():
            match = DIAG_RE.match(line)
            if not match:
                continue
            rel = os.path.relpath(os.path.realpath(match["file"]), REPO_ROOT)
            if rel.startswith(".."):
                continue  # system or third-party header
            for check in match["check"].split(","):
                key = f"{rel} {check}"
                findings.setdefault(key, []).append(line)
        raw.append(out)
    return findings, raw


def load_baseline():
    if not os.path.exists(BASELINE):
        return set()
    keys = set()
    with open(BASELINE) as fh:
        for line in fh:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.add(line)
    return keys


def write_baseline(keys):
    with open(BASELINE, "w") as fh:
        fh.write(
            "# clang-tidy suppression baseline (tools/run_clang_tidy.py).\n"
            "# One `<relpath> <check>` per line.  Entries may only be\n"
            "# removed (the gate ratchets down); new findings must be\n"
            "# fixed, not baselined, unless a reviewer signs off.\n"
        )
        for key in sorted(keys):
            fh.write(key + "\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count()))
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: from PATH)")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("paths", nargs="*", default=None,
                        help="repo-relative dirs to gate (default: src tools)")
    args = parser.parse_args()

    binary = args.clang_tidy or shutil.which("clang-tidy")
    if not binary:
        sys.exit("error: clang-tidy not found on PATH "
                 "(apt-get install clang-tidy)")

    db_dir = find_compile_db(args.build_dir)
    paths = args.paths or list(DEFAULT_GATED_DIRS)
    sources = gated_sources(db_dir, paths)
    if not sources:
        sys.exit(f"error: no translation units under {paths} in the "
                 "compilation database")

    print(f"clang-tidy gate: {len(sources)} translation units, "
          f"{args.jobs} jobs")
    findings, _ = run_tidy(binary, db_dir, sources, args.jobs)

    if args.update_baseline:
        write_baseline(findings.keys())
        print(f"baseline updated: {len(findings)} keys -> {BASELINE}")
        return 0

    baseline = load_baseline()
    new = {k: v for k, v in findings.items() if k not in baseline}
    stale = baseline - findings.keys()

    for key in sorted(stale):
        print(f"note: stale baseline entry (fixed — ratchet it out): {key}")
    if new:
        print(f"\nFAIL: {len(new)} non-baselined finding key(s):\n")
        for key in sorted(new):
            print(f"== {key} ==")
            for line in new[key]:
                print(f"  {line}")
        print("\nFix the findings (preferred), or — with reviewer "
              "sign-off — rerun with --update-baseline.")
        return 1

    print(f"OK: no new findings ({len(findings)} baselined, "
          f"{len(stale)} stale)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
