#!/usr/bin/env python3
"""Link-checker for the repository's Markdown documentation.

Verifies that every relative link target in README.md and docs/*.md
exists on disk (anchors are stripped; external URLs are skipped), and
that every heading anchor referenced within the checked set resolves.
Exits non-zero listing each broken link.  Run from anywhere:

    python3 tools/check_doc_links.py
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, drop punctuation."""
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def collect_files(root: str):
    files = [os.path.join(root, "README.md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return [f for f in files if os.path.isfile(f)]


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    errors = []
    anchors = {}  # abs path -> set of anchors

    files = collect_files(root)
    for path in files:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        anchors[path] = {anchor_of(h) for h in HEADING_RE.findall(text)}

    for path in files:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        base = os.path.dirname(path)
        rel = os.path.relpath(path, root)
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            target_path, _, fragment = target.partition("#")
            if not target_path:  # same-file anchor
                if fragment and anchor_of(fragment) not in anchors[path]:
                    errors.append(f"{rel}: broken anchor '#{fragment}'")
                continue
            resolved = os.path.normpath(os.path.join(base, target_path))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link '{target}'")
                continue
            if fragment and resolved in anchors:
                if anchor_of(fragment) not in anchors[resolved]:
                    errors.append(
                        f"{rel}: broken anchor '{target_path}#{fragment}'")

    if errors:
        for e in errors:
            print(f"BROKEN: {e}", file=sys.stderr)
        print(f"{len(errors)} broken link(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"ok: {len(files)} file(s) checked, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
