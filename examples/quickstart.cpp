//===- examples/quickstart.cpp - PerfPlay in 60 lines -----------------------===//
//
// Builds the paper's Figure 1 scenario (two mysql threads serializing
// on fil_system->mutex although they never truly conflict), runs the
// full PERFPLAY pipeline, and prints the per-code-region report.
//
// Run: ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "support/Format.h"
#include "trace/TraceBuilder.h"

#include <cstdio>

using namespace perfplay;

int main() {
  // 1. Build (or record) a trace.  Thread 1 reads the unflushed-spaces
  //    list length; thread 2 looks up a space by id and, with
  //    buffering disabled, returns without updating anything.  Both
  //    hold fil_system->mutex: a read-read ULCP, repeated per call.
  TraceBuilder B;
  LockId Mu = B.addLock("fil_system->mutex");
  CodeSiteId FlushSpaces = B.addSite("storage/innobase/fil/fil0fil.cc",
                                     "fil_flush_file_spaces", 5609, 5614);
  CodeSiteId FilFlush = B.addSite("storage/innobase/fil/fil0fil.cc",
                                  "fil_flush", 5473, 5503);
  ThreadId T1 = B.addThread();
  ThreadId T2 = B.addThread();
  for (int I = 0; I != 8; ++I) {
    B.compute(T1, 300);
    B.beginCs(T1, Mu, FlushSpaces);
    B.read(T1, /*n_space_ids*/ 1, 3);
    B.compute(T1, 1200); // UT_LIST_GET_LEN and bookkeeping.
    B.endCs(T1);

    B.compute(T2, 350);
    B.beginCs(T2, Mu, FilFlush);
    B.read(T2, /*space*/ 2, 9); // fil_buffering_disabled(space) = true.
    B.compute(T2, 1200);        // Hash lookup + state checks.
    B.endCs(T2);
  }
  Trace Tr = B.finish();

  // 2-5. Open a staged session.  Every stage is lazy and memoized:
  //    detect() triggers the recording run on demand, report() reuses
  //    the replays, and a failure anywhere surfaces as a typed error.
  Engine Eng;
  AnalysisSession Session = Eng.openSession(std::move(Tr));
  PipelineError Err;
  PipelineResult Result = Session.run(&Err);
  if (!Result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s [%s]\n",
                 Result.Error.c_str(), errorCodeName(Err.Code));
    return 1;
  }

  std::printf("ULCP pairs: %llu (RR=%llu NL=%llu DW=%llu benign=%llu), "
              "true contention: %llu\n",
              static_cast<unsigned long long>(
                  Result.Detection.Counts.totalUnnecessary()),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.ReadRead),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.NullLock),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.DisjointWrite),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.Benign),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.TrueContention));
  std::printf("replayed time: original %s -> ULCP-free %s\n\n",
              formatNs(Result.Original.TotalTime).c_str(),
              formatNs(Result.UlcpFree.TotalTime).c_str());
  std::printf("%s", renderReport(Result.Report).c_str());
  return 0;
}
