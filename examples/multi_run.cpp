//===- examples/multi_run.cpp - Section 6.7 multi-trace extension -----------===//
//
// PERFPLAY debugs one recorded trace at a time; the paper notes it
// "can be extended to multiple traces" so recommendations hold beyond
// a single input/schedule.  This example records several runs of the
// same application under different schedules, aggregates the per-run
// reports, and prints the stability-annotated recommendation list.
//
// Run: ./multi_run [app] [runs]
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "debug/MultiTrace.h"
#include "workloads/Apps.h"
#include "workloads/WorkloadSpec.h"

#include <cstdio>
#include <cstdlib>

using namespace perfplay;

int main(int Argc, char **Argv) {
  std::string Name = Argc > 1 ? Argv[1] : "openldap";
  unsigned Runs = Argc > 2 ? static_cast<unsigned>(std::atoi(Argv[2])) : 4;

  const AppModel *App = nullptr;
  for (const AppModel &A : allApps())
    if (A.Name == Name)
      App = &A;
  if (!App) {
    std::fprintf(stderr, "unknown app '%s'\n", Name.c_str());
    return 1;
  }

  // Record each run up front with its own recording seed (an Engine
  // applies one option set to every batch item), then fan the set out
  // over an Engine batch: one staged session per trace, one worker
  // thread per run.
  std::vector<Trace> Traces;
  for (unsigned Run = 0; Run != Runs; ++Run) {
    WorkloadSpec Spec = App->Factory(2, 0.75);
    Spec.Seed ^= 0x9e3779b97f4a7c15ULL * (Run + 1); // New schedule/run.
    Trace Tr = generateWorkload(Spec);
    ReplayResult Rec = recordGrantSchedule(Tr, 1000 + Run);
    if (!Rec.ok()) {
      std::fprintf(stderr, "run %u recording failed: %s\n", Run,
                   Rec.Error.c_str());
      return 1;
    }
    Traces.push_back(std::move(Tr));
  }

  Engine Eng;
  std::vector<Expected<PipelineResult>> Batch =
      Eng.analyzeBatch(std::move(Traces), Runs);
  for (unsigned Run = 0; Run != Runs; ++Run) {
    const Expected<PipelineResult> &R = Batch[Run];
    if (!R.ok()) {
      std::fprintf(stderr, "run %u failed: %s [%s]\n", Run,
                   R.message().c_str(), errorCodeName(R.code()));
      return 1;
    }
    std::printf("run %u: degradation %.1f%%, %zu groups, top P %.1f%%\n",
                Run, 100.0 * R->Report.normalizedDegradation(),
                R->Report.Groups.size(),
                R->Report.Groups.empty()
                    ? 0.0
                    : 100.0 * R->Report.Groups.front().P);
  }

  AggregatedReport Aggregate = aggregateBatch(Batch);
  std::printf("\n%s", renderAggregatedReport(Aggregate).c_str());
  std::printf("\nregions seen in every run are schedule-stable "
              "recommendations; the rest are\ninput- or "
              "schedule-specific (the paper's input-sensitivity "
              "caveat, Section 6.7).\n");
  return 0;
}
