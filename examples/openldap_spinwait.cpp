//===- examples/openldap_spinwait.cpp - #BUG1 (Figure 4) --------------------===//
//
// The openldap resource-wasting bug: worker threads spin-poll
// dbmfp->ref under dbmp->mutex until a slow critical thread drops its
// reference.  PerfPlay (a) detects the read-read ULCPs, (b) predicts
// the gain of removing them, and (c) we cross-check against the real
// barrier-based fix re-recorded as its own trace (Section 6.6).
//
// Run: ./openldap_spinwait [threads]
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "support/Format.h"
#include "workloads/CaseStudies.h"

#include <cstdio>
#include <cstdlib>

using namespace perfplay;

int main(int Argc, char **Argv) {
  CaseStudyParams P;
  P.NumThreads = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 4;
  if (P.NumThreads < 2) {
    std::fprintf(stderr, "need at least 2 threads\n");
    return 1;
  }

  Trace Buggy = makeOpenldapSpinWait(P);
  AnalysisSession Session{Buggy};
  PipelineError Err;
  PipelineResult Result = Session.run(&Err);
  if (!Result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s [%s]\n",
                 Result.Error.c_str(), errorCodeName(Err.Code));
    return 1;
  }

  std::printf("== #BUG1: openldap spin-wait (%u threads) ==\n",
              P.NumThreads);
  std::printf("read-read ULCPs detected: %llu\n",
              static_cast<unsigned long long>(
                  Result.Detection.Counts.ReadRead));
  std::printf("CPU burned spinning (original replay): %s\n",
              formatNs(Result.Original.SpinWaitNs).c_str());
  std::printf("%s\n", renderReport(Result.Report).c_str());

  // Cross-check with the real fix: a barrier instead of the poll loop.
  Trace Fixed = makeOpenldapSpinWaitFixed(P);
  AnalysisSession FixedSession{Fixed};
  PipelineResult FixedResult = FixedSession.run(&Err);
  if (!FixedResult.ok()) {
    std::fprintf(stderr, "fixed-run pipeline failed: %s [%s]\n",
                 FixedResult.Error.c_str(), errorCodeName(Err.Code));
    return 1;
  }
  std::printf("re-quantified with the pthread-barrier fix:\n");
  std::printf("  spin waste  : %s -> %s\n",
              formatNs(Result.Original.SpinWaitNs).c_str(),
              formatNs(FixedResult.Original.SpinWaitNs).c_str());
  std::printf("  lock events : %zu -> %zu critical sections\n",
              Buggy.numCriticalSections(), Fixed.numCriticalSections());
  std::printf("  remaining ULCPs after the fix: %llu\n",
              static_cast<unsigned long long>(
                  FixedResult.Detection.Counts.totalUnnecessary()));
  return 0;
}
