//===- examples/compare_schemes.cpp - ELSC vs Kendo vs PinPlay --------------===//
//
// The paper's Figures 11 and 12 in executable form: why performance
// replay needs the *enforced locking serialization constraint* rather
// than input-driven (Kendo / SYNC-S) or memory-order (PinPlay / MEM-S)
// determinism.  Replays the same recorded mysql-model trace ten times
// under each scheme and prints the Figure 13-style summary plus the
// per-thread timelines of one replay.
//
// Run: ./compare_schemes [app] [scale]
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "sim/Timeline.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "workloads/Apps.h"
#include "workloads/WorkloadSpec.h"

#include <cstdio>
#include <cstdlib>

using namespace perfplay;

int main(int Argc, char **Argv) {
  std::string Name = Argc > 1 ? Argv[1] : "mysql";
  double Scale = Argc > 2 ? std::atof(Argv[2]) : 0.5;

  const AppModel *App = nullptr;
  for (const AppModel &A : allApps())
    if (A.Name == Name)
      App = &A;
  if (!App) {
    std::fprintf(stderr, "unknown app '%s'\n", Name.c_str());
    return 1;
  }

  // One session serves all forty replays: the recording run happens
  // once inside ensureRecorded(), and each {scheme, seed} replay is
  // computed once and memoized.
  Engine Eng;
  AnalysisSession Session =
      Eng.openSession(generateWorkload(App->Factory(2, Scale)));
  if (Expected<void> Rec = Session.ensureRecorded(); !Rec) {
    std::fprintf(stderr, "recording failed: %s [%s]\n",
                 Rec.message().c_str(), errorCodeName(Rec.code()));
    return 1;
  }
  std::printf("recorded %s (%zu events, %zu critical sections)\n\n",
              Name.c_str(), Session.trace().numEvents(),
              Session.trace().numCriticalSections());

  Table T;
  T.addRow({"scheme", "mean", "spread over 10 replays", "stable?",
            "faithful?"});
  const ScheduleKind Kinds[] = {ScheduleKind::OrigS, ScheduleKind::ElscS,
                                ScheduleKind::SyncS, ScheduleKind::MemS};
  double OrigMean = 0.0;
  for (ScheduleKind Kind : Kinds) {
    RunningStats Stats;
    for (unsigned I = 0; I != 10; ++I) {
      Expected<const ReplayResult &> R = Session.replay(Kind, 100 + I);
      if (!R) {
        std::fprintf(stderr, "%s failed: %s\n", scheduleKindName(Kind),
                     R.message().c_str());
        return 1;
      }
      Stats.add(static_cast<double>(R->TotalTime));
    }
    if (Kind == ScheduleKind::OrigS)
      OrigMean = Stats.mean();
    bool Stable = Stats.range() == 0.0;
    bool Faithful =
        OrigMean > 0.0 &&
        std::abs(Stats.mean() - OrigMean) / OrigMean < 0.02;
    T.addRow({scheduleKindName(Kind),
              formatNs(static_cast<TimeNs>(Stats.mean())),
              formatNs(static_cast<TimeNs>(Stats.range())),
              Stable ? "yes" : "no", Faithful ? "yes" : "no"});
  }
  std::printf("%s", T.render().c_str());
  std::printf("\nonly ELSC-S is both stable (identical replays) and "
              "faithful (no added waiting):\nKendo-style SYNC-S enforces "
              "an input-derived order regardless of the schedule,\n"
              "PinPlay-style MEM-S serializes every shared access.\n\n");

  // A fresh cache entry ({ELSC-S, default seed}), but ELSC-S is
  // deterministic so the timing equals the sweep's replays.
  Expected<const ReplayResult &> Elsc =
      Session.replay(ScheduleKind::ElscS);
  if (!Elsc) {
    std::fprintf(stderr, "ELSC-S replay failed: %s\n",
                 Elsc.message().c_str());
    return 1;
  }
  std::printf("ELSC-S replay timeline:\n%s",
              renderTimeline(Session.trace(), *Elsc).c_str());
  return 0;
}
