//===- examples/live_recording.cpp - record real threads, then debug --------===//
//
// End-to-end demonstration of the recording substrate (the repo's
// stand-in for the paper's Pin instrumentation): real std::threads run
// a producer/consumer-style workload through RecordingMutex/SharedVar,
// the recorder emits a trace (saved to disk in the text format), and
// the PERFPLAY pipeline analyzes it.
//
// Run: ./live_recording [threads] [iters]
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "runtime/Instrument.h"
#include "support/Format.h"
#include "trace/TraceIO.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace perfplay;

namespace {

/// Burn a little real CPU so selective recording has computation to
/// collapse into Compute events.
void busyWork(unsigned Amount) {
  volatile uint64_t Sink = 0;
  for (unsigned I = 0; I != Amount * 1000; ++I)
    Sink += I;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned NumThreads =
      Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 4;
  unsigned Iters = Argc > 2 ? static_cast<unsigned>(std::atoi(Argv[2])) : 16;

  Recorder R;
  RecordingMutex StatsMu(R, "stats_mutex");
  SharedVar<uint64_t> Done(R, "done_flag");
  SharedVar<uint64_t> Total(R, "total_bytes");
  CodeSiteId PollSite = PERFPLAY_CODE_SITE(R, 58, 66);
  CodeSiteId UpdateSite = PERFPLAY_CODE_SITE(R, 68, 74);

  std::vector<std::thread> Threads;
  for (unsigned I = 0; I != NumThreads; ++I)
    Threads.emplace_back([&, I] {
      ThreadId T = R.registerThread();
      for (unsigned K = 0; K != Iters; ++K) {
        busyWork(20 + I);
        {
          // The "bug": every iteration polls the done flag under the
          // stats lock although it only reads.
          RecordedSection Guard(StatsMu, T, PollSite);
          Done.load(T);
        }
        busyWork(10);
        {
          // Commutative accumulation: benign even though it writes.
          RecordedSection Guard(StatsMu, T, UpdateSite);
          Total.fetchAdd(T, 4096);
        }
      }
    });
  for (auto &Th : Threads)
    Th.join();

  Trace Tr = R.finish();
  std::string Err;
  const char *Path = "live_recording.trace";
  if (!saveTrace(Tr, Path, Err)) {
    std::fprintf(stderr, "cannot save trace: %s\n", Err.c_str());
    return 1;
  }
  std::printf("recorded %zu events from %u threads -> %s\n",
              Tr.numEvents(), NumThreads, Path);

  // Staged analysis: each stage runs on first request and is cached;
  // the report() call reuses the detect results and both replays.
  AnalysisSession Session{Tr};
  Expected<const DetectResult &> Det = Session.detect();
  if (!Det) {
    std::fprintf(stderr, "pipeline failed: %s [%s]\n",
                 Det.message().c_str(), errorCodeName(Det.code()));
    return 1;
  }
  std::printf("detected ULCPs: RR=%llu benign=%llu (TLCP=%llu)\n",
              static_cast<unsigned long long>(Det->Counts.ReadRead),
              static_cast<unsigned long long>(Det->Counts.Benign),
              static_cast<unsigned long long>(
                  Det->Counts.TrueContention));
  Expected<const ReplayResult &> Orig =
      Session.replay(ScheduleKind::ElscS);
  Expected<const ReplayResult &> Free =
      Session.replayTransformed(ScheduleKind::ElscS);
  Expected<const PerfDebugReport &> Report = Session.report();
  if (!Orig || !Free || !Report) {
    const PipelineError &E = !Orig    ? Orig.error()
                             : !Free ? Free.error()
                                     : Report.error();
    std::fprintf(stderr, "pipeline failed: %s [%s]\n",
                 E.Message.c_str(), errorCodeName(E.Code));
    return 1;
  }
  std::printf("replayed: original %s -> ULCP-free %s\n\n",
              formatNs(Orig->TotalTime).c_str(),
              formatNs(Free->TotalTime).c_str());
  std::printf("%s", renderReport(*Report).c_str());
  return 0;
}
