//===- examples/mysql_query_cache.cpp - MySQL bug #68573 (Figure 17) --------===//
//
// Query_cache::try_lock holds structure_guard_mutex across a timed
// condition-wait loop, so concurrent SELECT sessions serialize and the
// designed 50ms timeout inflates with the thread count.  PerfPlay
// quantifies the inflation and points at the try_lock code region.
//
// Run: ./mysql_query_cache [threads]
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "support/Format.h"
#include "workloads/CaseStudies.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace perfplay;

int main(int Argc, char **Argv) {
  int Requested = Argc > 1 ? std::atoi(Argv[1]) : 8;
  unsigned MaxThreads =
      Requested < 1 ? 1 : static_cast<unsigned>(Requested);

  // Build every configuration's buggy/fixed pair up front and analyze
  // the whole sweep as one engine batch (one session per trace, fanned
  // out over the hardware threads).
  std::vector<unsigned> ThreadCounts;
  for (unsigned Threads = 1; Threads <= MaxThreads; Threads *= 2)
    ThreadCounts.push_back(Threads);
  // Power-of-two sweep, but always include MaxThreads itself — the
  // final recommendation is rendered for exactly that configuration.
  if (ThreadCounts.back() != MaxThreads)
    ThreadCounts.push_back(MaxThreads);
  std::vector<Trace> Traces;
  for (unsigned Threads : ThreadCounts) {
    CaseStudyParams P;
    P.NumThreads = Threads;
    Traces.push_back(makeMysqlQueryCache(P));
    Traces.push_back(makeMysqlQueryCacheFixed(P));
  }
  Engine Eng;
  std::vector<Expected<PipelineResult>> Batch =
      Eng.analyzeBatch(std::move(Traces));

  std::printf("== MySQL #68573: query-cache timed lock ==\n");
  std::printf("%-8s  %-14s  %-14s  %s\n", "threads", "buggy", "fixed",
              "inflation");
  for (size_t I = 0; I != ThreadCounts.size(); ++I) {
    const Expected<PipelineResult> &RBuggy = Batch[2 * I];
    const Expected<PipelineResult> &RFixed = Batch[2 * I + 1];
    if (!RBuggy.ok() || !RFixed.ok()) {
      std::fprintf(stderr, "pipeline failed\n");
      return 1;
    }
    double Inflation = RFixed->Original.TotalTime == 0
                           ? 0.0
                           : static_cast<double>(
                                 RBuggy->Original.TotalTime) /
                                 static_cast<double>(
                                     RFixed->Original.TotalTime);
    std::printf("%-8u  %-14s  %-14s  %.2fx\n", ThreadCounts[I],
                formatNs(RBuggy->Original.TotalTime).c_str(),
                formatNs(RFixed->Original.TotalTime).c_str(), Inflation);
  }

  // The recommendation for the largest configuration (its buggy trace
  // is the second-to-last batch item).
  std::printf("\n%s",
              renderReport(Batch[Batch.size() - 2]->Report).c_str());
  return 0;
}
