//===- examples/mysql_query_cache.cpp - MySQL bug #68573 (Figure 17) --------===//
//
// Query_cache::try_lock holds structure_guard_mutex across a timed
// condition-wait loop, so concurrent SELECT sessions serialize and the
// designed 50ms timeout inflates with the thread count.  PerfPlay
// quantifies the inflation and points at the try_lock code region.
//
// Run: ./mysql_query_cache [threads]
//
//===----------------------------------------------------------------------===//

#include "core/PerfPlay.h"
#include "support/Format.h"
#include "workloads/CaseStudies.h"

#include <cstdio>
#include <cstdlib>

using namespace perfplay;

int main(int Argc, char **Argv) {
  unsigned MaxThreads =
      Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 8;

  std::printf("== MySQL #68573: query-cache timed lock ==\n");
  std::printf("%-8s  %-14s  %-14s  %s\n", "threads", "buggy", "fixed",
              "inflation");
  for (unsigned Threads = 1; Threads <= MaxThreads; Threads *= 2) {
    CaseStudyParams P;
    P.NumThreads = Threads;
    Trace Buggy = makeMysqlQueryCache(P);
    Trace Fixed = makeMysqlQueryCacheFixed(P);
    PipelineResult RBuggy = runPerfPlay(Buggy);
    PipelineResult RFixed = runPerfPlay(Fixed);
    if (!RBuggy.ok() || !RFixed.ok()) {
      std::fprintf(stderr, "pipeline failed\n");
      return 1;
    }
    double Inflation = RFixed.Original.TotalTime == 0
                           ? 0.0
                           : static_cast<double>(
                                 RBuggy.Original.TotalTime) /
                                 static_cast<double>(
                                     RFixed.Original.TotalTime);
    std::printf("%-8u  %-14s  %-14s  %.2fx\n", Threads,
                formatNs(RBuggy.Original.TotalTime).c_str(),
                formatNs(RFixed.Original.TotalTime).c_str(), Inflation);
  }

  // Show the recommendation for the largest configuration.
  CaseStudyParams P;
  P.NumThreads = MaxThreads;
  PipelineResult R = runPerfPlay(makeMysqlQueryCache(P));
  if (R.ok())
    std::printf("\n%s", renderReport(R.Report).c_str());
  return 0;
}
