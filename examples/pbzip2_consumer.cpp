//===- examples/pbzip2_consumer.cpp - #BUG2 (Figure 18) ---------------------===//
//
// The pbzip2 shutdown bug: consumers re-check fifo->empty and (under a
// nested lock) producerDone while the queue drains, serializing the
// join phase with read-read ULCPs.  PerfPlay detects and ranks them;
// the signal/wait fix is re-quantified for comparison.
//
// Run: ./pbzip2_consumer [threads] [scale]
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "support/Format.h"
#include "workloads/CaseStudies.h"

#include <cstdio>
#include <cstdlib>

using namespace perfplay;

int main(int Argc, char **Argv) {
  CaseStudyParams P;
  P.NumThreads = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 4;
  P.InputScale = Argc > 2 ? std::atof(Argv[2]) : 1.0;
  if (P.NumThreads < 2) {
    std::fprintf(stderr, "need a producer plus at least one consumer\n");
    return 1;
  }

  // The buggy and fixed variants are independent traces: hand both to
  // the engine and let it analyze them on two worker threads.
  Trace Buggy = makePbzip2Consumer(P);
  Trace Fixed = makePbzip2ConsumerFixed(P);
  size_t BuggyCs = Buggy.numCriticalSections();
  size_t FixedCs = Fixed.numCriticalSections();
  Engine Eng;
  std::vector<Trace> Pair;
  Pair.push_back(std::move(Buggy));
  Pair.push_back(std::move(Fixed));
  std::vector<Expected<PipelineResult>> Batch =
      Eng.analyzeBatch(std::move(Pair), 2);
  if (!Batch[0].ok() || !Batch[1].ok()) {
    const PipelineError &E =
        Batch[0].ok() ? Batch[1].error() : Batch[0].error();
    std::fprintf(stderr, "pipeline failed: %s [%s]\n",
                 E.Message.c_str(), errorCodeName(E.Code));
    return 1;
  }
  const PipelineResult &Result = *Batch[0];
  const PipelineResult &FixedResult = *Batch[1];

  std::printf("== #BUG2: pbzip2 consumer polling (%u threads, scale "
              "%.2f) ==\n",
              P.NumThreads, P.InputScale);
  std::printf("ULCPs: RR=%llu DW=%llu NL=%llu benign=%llu\n",
              static_cast<unsigned long long>(
                  Result.Detection.Counts.ReadRead),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.DisjointWrite),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.NullLock),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.Benign));
  std::printf("%s\n", renderReport(Result.Report).c_str());

  std::printf("re-quantified with the signal/wait fix:\n");
  std::printf("  end-to-end replay: %s -> %s\n",
              formatNs(Result.Original.TotalTime).c_str(),
              formatNs(FixedResult.Original.TotalTime).c_str());
  std::printf("  critical sections: %zu -> %zu\n", BuggyCs, FixedCs);
  std::printf("  remaining ULCPs: %llu\n",
              static_cast<unsigned long long>(
                  FixedResult.Detection.Counts.totalUnnecessary()));
  return 0;
}
