//===- examples/pbzip2_consumer.cpp - #BUG2 (Figure 18) ---------------------===//
//
// The pbzip2 shutdown bug: consumers re-check fifo->empty and (under a
// nested lock) producerDone while the queue drains, serializing the
// join phase with read-read ULCPs.  PerfPlay detects and ranks them;
// the signal/wait fix is re-quantified for comparison.
//
// Run: ./pbzip2_consumer [threads] [scale]
//
//===----------------------------------------------------------------------===//

#include "core/PerfPlay.h"
#include "support/Format.h"
#include "workloads/CaseStudies.h"

#include <cstdio>
#include <cstdlib>

using namespace perfplay;

int main(int Argc, char **Argv) {
  CaseStudyParams P;
  P.NumThreads = Argc > 1 ? static_cast<unsigned>(std::atoi(Argv[1])) : 4;
  P.InputScale = Argc > 2 ? std::atof(Argv[2]) : 1.0;
  if (P.NumThreads < 2) {
    std::fprintf(stderr, "need a producer plus at least one consumer\n");
    return 1;
  }

  Trace Buggy = makePbzip2Consumer(P);
  PipelineResult Result = runPerfPlay(Buggy);
  if (!Result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n", Result.Error.c_str());
    return 1;
  }

  std::printf("== #BUG2: pbzip2 consumer polling (%u threads, scale "
              "%.2f) ==\n",
              P.NumThreads, P.InputScale);
  std::printf("ULCPs: RR=%llu DW=%llu NL=%llu benign=%llu\n",
              static_cast<unsigned long long>(
                  Result.Detection.Counts.ReadRead),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.DisjointWrite),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.NullLock),
              static_cast<unsigned long long>(
                  Result.Detection.Counts.Benign));
  std::printf("%s\n", renderReport(Result.Report).c_str());

  Trace Fixed = makePbzip2ConsumerFixed(P);
  PipelineResult FixedResult = runPerfPlay(Fixed);
  if (!FixedResult.ok()) {
    std::fprintf(stderr, "fixed-run pipeline failed: %s\n",
                 FixedResult.Error.c_str());
    return 1;
  }
  std::printf("re-quantified with the signal/wait fix:\n");
  std::printf("  end-to-end replay: %s -> %s\n",
              formatNs(Result.Original.TotalTime).c_str(),
              formatNs(FixedResult.Original.TotalTime).c_str());
  std::printf("  critical sections: %zu -> %zu\n",
              Buggy.numCriticalSections(), Fixed.numCriticalSections());
  std::printf("  remaining ULCPs: %llu\n",
              static_cast<unsigned long long>(
                  FixedResult.Detection.Counts.totalUnnecessary()));
  return 0;
}
