//===- tests/ReversedReplayTest.cpp - abstract memory machine tests ---------===//

#include "detect/ReversedReplay.h"

#include "detect/CriticalSection.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace perfplay;

//===----------------------------------------------------------------------===//
// MemoryImage
//===----------------------------------------------------------------------===//

TEST(MemoryImageTest, UnknownAddressReadsZero) {
  MemoryImage M;
  EXPECT_EQ(M.load(42), 0u);
}

TEST(MemoryImageTest, ApplyOps) {
  MemoryImage M;
  M.apply(1, 10, WriteOpKind::Store);
  EXPECT_EQ(M.load(1), 10u);
  M.apply(1, 5, WriteOpKind::Add);
  EXPECT_EQ(M.load(1), 15u);
  M.apply(1, 0xF0, WriteOpKind::Or);
  EXPECT_EQ(M.load(1), 15u | 0xF0);
  M.apply(1, 0x0F, WriteOpKind::And);
  EXPECT_EQ(M.load(1), (15u | 0xF0) & 0x0F);
  M.apply(1, 0xFF, WriteOpKind::Xor);
  EXPECT_EQ(M.load(1), (((15u | 0xF0) & 0x0F)) ^ 0xFF);
}

TEST(MemoryImageTest, InitialSeedsFirstReadValues) {
  TraceBuilder B;
  LockId Mu = B.addLock("mu");
  ThreadId T = B.addThread();
  B.beginCs(T, Mu);
  B.read(T, 7, 99);   // First access to 7 is a read: seeded.
  B.write(T, 8, 5);   // First access to 8 is a write: unseeded.
  B.read(T, 8, 5);    // Later read of 8 does not seed.
  B.endCs(T);
  Trace Tr = B.finish();
  MemoryImage M = MemoryImage::initialOf(Tr);
  EXPECT_EQ(M.load(7), 99u);
  EXPECT_EQ(M.load(8), 0u);
}

TEST(MemoryImageTest, EqualityComparesCells) {
  MemoryImage A, B;
  EXPECT_TRUE(A == B);
  A.apply(1, 2, WriteOpKind::Store);
  EXPECT_FALSE(A == B);
  B.apply(1, 2, WriteOpKind::Store);
  EXPECT_TRUE(A == B);
}

//===----------------------------------------------------------------------===//
// replaySections
//===----------------------------------------------------------------------===//

namespace {

struct SectionFixture {
  Trace Tr;
  CsIndex Index = CsIndex::build(Trace());

  SectionFixture() {
    TraceBuilder B;
    LockId Mu = B.addLock("mu");
    ThreadId T0 = B.addThread();
    ThreadId T1 = B.addThread();
    // Section 0: x += 3.
    B.beginCs(T0, Mu);
    B.write(T0, 1, 3, WriteOpKind::Add);
    B.endCs(T0);
    // Section 1: read x then store y = 9.
    B.beginCs(T1, Mu);
    B.read(T1, 1, 0);
    B.write(T1, 2, 9);
    B.endCs(T1);
    Tr = B.finish();
    Index = CsIndex::build(Tr);
  }
};

} // namespace

TEST(ReplaySectionsTest, ExecutesInOrder) {
  SectionFixture F;
  MemoryImage Init = MemoryImage::initialOf(F.Tr);
  ReplayOutcome Out = replaySections(
      F.Tr, Init, {&F.Index.byGlobalId(0), &F.Index.byGlobalId(1)});
  EXPECT_EQ(Out.Final.load(1), 3u);
  EXPECT_EQ(Out.Final.load(2), 9u);
  ASSERT_EQ(Out.ReadValues.size(), 1u);
  EXPECT_EQ(Out.ReadValues[0], 3u); // Read sees the add.
}

TEST(ReplaySectionsTest, ReversedOrderDiffers) {
  SectionFixture F;
  MemoryImage Init = MemoryImage::initialOf(F.Tr);
  ReplayOutcome Out = replaySections(
      F.Tr, Init, {&F.Index.byGlobalId(1), &F.Index.byGlobalId(0)});
  ASSERT_EQ(Out.ReadValues.size(), 1u);
  EXPECT_EQ(Out.ReadValues[0], 0u); // Read precedes the add.
}

TEST(ReplaySectionsTest, EmptySectionListIsIdentity) {
  SectionFixture F;
  MemoryImage Init = MemoryImage::initialOf(F.Tr);
  ReplayOutcome Out = replaySections(F.Tr, Init, {});
  EXPECT_TRUE(Out.Final == Init);
  EXPECT_TRUE(Out.ReadValues.empty());
}

//===----------------------------------------------------------------------===//
// isBenignPair
//===----------------------------------------------------------------------===//

namespace {

Trace twoSectionTrace(void (*Body0)(TraceBuilder &, ThreadId),
                      void (*Body1)(TraceBuilder &, ThreadId)) {
  TraceBuilder B;
  LockId Mu = B.addLock("mu");
  ThreadId T0 = B.addThread();
  ThreadId T1 = B.addThread();
  B.beginCs(T0, Mu);
  Body0(B, T0);
  B.endCs(T0);
  B.beginCs(T1, Mu);
  Body1(B, T1);
  B.endCs(T1);
  return B.finish();
}

bool benignOfTrace(const Trace &Tr) {
  CsIndex Index = CsIndex::build(Tr);
  MemoryImage Init = MemoryImage::initialOf(Tr);
  return isBenignPair(Tr, Init, Index.byGlobalId(0), Index.byGlobalId(1));
}

} // namespace

TEST(IsBenignTest, XorPairsCommute) {
  Trace Tr = twoSectionTrace(
      [](TraceBuilder &B, ThreadId T) {
        B.write(T, 1, 0xA, WriteOpKind::Xor);
      },
      [](TraceBuilder &B, ThreadId T) {
        B.write(T, 1, 0x5, WriteOpKind::Xor);
      });
  EXPECT_TRUE(benignOfTrace(Tr));
}

TEST(IsBenignTest, AndOrMixDoesNotCommute) {
  Trace Tr = twoSectionTrace(
      [](TraceBuilder &B, ThreadId T) {
        B.write(T, 1, 0x0, WriteOpKind::And);
      },
      [](TraceBuilder &B, ThreadId T) {
        B.write(T, 1, 0x1, WriteOpKind::Or);
      });
  EXPECT_FALSE(benignOfTrace(Tr));
}

TEST(IsBenignTest, StoreThenDependentReadConflicts) {
  Trace Tr = twoSectionTrace(
      [](TraceBuilder &B, ThreadId T) { B.write(T, 1, 42); },
      [](TraceBuilder &B, ThreadId T) { B.read(T, 1, 42); });
  EXPECT_FALSE(benignOfTrace(Tr));
}

TEST(IsBenignTest, IdenticalStoresBenign) {
  Trace Tr = twoSectionTrace(
      [](TraceBuilder &B, ThreadId T) { B.write(T, 1, 42); },
      [](TraceBuilder &B, ThreadId T) { B.write(T, 1, 42); });
  EXPECT_TRUE(benignOfTrace(Tr));
}

TEST(IsBenignTest, MultiAddressBenign) {
  // Each section stores the same values to two cells.
  Trace Tr = twoSectionTrace(
      [](TraceBuilder &B, ThreadId T) {
        B.write(T, 1, 7);
        B.write(T, 2, 8);
      },
      [](TraceBuilder &B, ThreadId T) {
        B.write(T, 2, 8);
        B.write(T, 1, 7);
      });
  EXPECT_TRUE(benignOfTrace(Tr));
}

TEST(IsBenignTest, PartialConflictDetected) {
  // Same store on one address, different on another.
  Trace Tr = twoSectionTrace(
      [](TraceBuilder &B, ThreadId T) {
        B.write(T, 1, 7);
        B.write(T, 2, 100);
      },
      [](TraceBuilder &B, ThreadId T) {
        B.write(T, 1, 7);
        B.write(T, 2, 200);
      });
  EXPECT_FALSE(benignOfTrace(Tr));
}
