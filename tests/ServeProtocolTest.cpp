//===- tests/ServeProtocolTest.cpp - hostile wire-protocol corpus -----------===//
//
// The serve daemon's analogue of TraceIOCorruptTest: the codec is
// fuzzed with truncations and bad embedded lengths, and a live daemon
// is attacked with the full hostile corpus — truncated frames,
// oversized length prefixes (which must never drive an allocation past
// the frame budget), unknown request types, and mid-stream
// disconnects.  After every attack the daemon must still be serving.
// Runs under the plain, ASan, and TSan lanes.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

using namespace perfplay;
using namespace perfplay::serve;

namespace {

std::string socketPath(const char *Name) {
  return testing::TempDir() + "pp_proto_" + Name + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// A valid little analysis target for "daemon still works" probes.
std::string probeTracePath() {
  TraceBuilder B;
  LockId L = B.addLock("l");
  ThreadId A = B.addThread();
  ThreadId C = B.addThread();
  for (ThreadId Id : {A, C}) {
    B.compute(Id, 2);
    B.beginCs(Id, L);
    B.write(Id, 1, 7);
    B.endCs(Id);
  }
  Trace Tr = B.finish();
  std::string Path = testing::TempDir() + "pp_proto_probe_" +
                     std::to_string(::getpid()) + ".btrace";
  std::string Err;
  EXPECT_TRUE(saveTrace(Tr, Path, Err, TraceFormat::Binary)) << Err;
  return Path;
}

/// Asserts the daemon still answers a well-formed request — the "kept
/// serving" invariant every hostile case must leave intact.
void expectStillServing(const std::string &Socket,
                        const std::string &TracePath) {
  ServeClient Client;
  ASSERT_TRUE(Client.connect(Socket).ok()) << "daemon stopped accepting";
  AnalyzeRequest Req;
  Req.Path = TracePath;
  Expected<ResultSummary> Sum = Client.analyze(Req);
  EXPECT_TRUE(Sum.ok()) << Sum.message();
  Expected<ServeStats> Stats = Client.stats();
  EXPECT_TRUE(Stats.ok()) << Stats.message();
}

/// Raw frame bytes: u32 LE length + u8 type + payload.
std::vector<uint8_t> rawFrame(uint32_t Len, uint8_t Type,
                              const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Out;
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(Len >> (8 * I)));
  Out.push_back(Type);
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Codec round-trips and decoder hostility (no daemon needed)
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, AnalyzeRequestRoundTrip) {
  AnalyzeRequest In;
  In.PairMode = 1;
  In.NoCache = 1;
  In.Path = "/some/path with spaces/trace.btrace";
  std::vector<uint8_t> Bytes = encodeAnalyzeRequest(In);
  AnalyzeRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeAnalyzeRequest(Bytes.data(), Bytes.size(), Out, Err))
      << Err;
  EXPECT_EQ(Out.PairMode, In.PairMode);
  EXPECT_EQ(Out.NoCache, In.NoCache);
  EXPECT_EQ(Out.Path, In.Path);
}

TEST(ServeProtocolTest, ResultSummaryRoundTrip) {
  ResultSummary In;
  In.NullLock = 1;
  In.ReadRead = 2;
  In.DisjointWrite = 3;
  In.Benign = 4;
  In.TrueContention = 5;
  In.TryFailEdges = 6;
  In.TopologyEdges = 7;
  In.NumAuxLocks = 8;
  In.NumStandalone = 9;
  In.OriginalTotalTime = ~0ull;
  In.UlcpFreeTotalTime = 11;
  In.FromResultCache = 1;
  std::vector<uint8_t> Bytes = encodeResultSummary(In);
  ResultSummary Out;
  std::string Err;
  ASSERT_TRUE(decodeResultSummary(Bytes.data(), Bytes.size(), Out, Err))
      << Err;
  EXPECT_TRUE(Out.sameVerdicts(In));
  EXPECT_EQ(Out.FromResultCache, 1);
  EXPECT_EQ(Out.FromTraceCache, 0);
}

TEST(ServeProtocolTest, ServeStatsRoundTrip) {
  ServeStats In;
  In.RequestsServed = 100;
  In.TraceCacheHits = 42;
  In.CacheBytes = 1 << 20;
  In.P99Micros = 12345;
  std::vector<uint8_t> Bytes = encodeServeStats(In);
  ServeStats Out;
  std::string Err;
  ASSERT_TRUE(decodeServeStats(Bytes.data(), Bytes.size(), Out, Err))
      << Err;
  EXPECT_EQ(Out.RequestsServed, 100u);
  EXPECT_EQ(Out.TraceCacheHits, 42u);
  EXPECT_EQ(Out.CacheBytes, 1u << 20);
  EXPECT_EQ(Out.P99Micros, 12345u);
}

TEST(ServeProtocolTest, ErrorRoundTrip) {
  std::vector<uint8_t> Bytes =
      encodeError(ErrorCode::ServerOverloaded, "queue full");
  ErrorCode Code;
  std::string Msg, Err;
  ASSERT_TRUE(decodeError(Bytes.data(), Bytes.size(), Code, Msg, Err));
  EXPECT_EQ(Code, ErrorCode::ServerOverloaded);
  EXPECT_EQ(Msg, "queue full");
}

// Every strict prefix of a valid payload must fail to decode — no
// partial reads, no over-reads past the buffer (ASan proves the
// latter).
TEST(ServeProtocolTest, TruncationSweep) {
  AnalyzeRequest Req;
  Req.Path = "trace.btrace";
  std::vector<uint8_t> A = encodeAnalyzeRequest(Req);
  for (size_t Len = 0; Len != A.size(); ++Len) {
    AnalyzeRequest Out;
    std::string Err;
    EXPECT_FALSE(decodeAnalyzeRequest(A.data(), Len, Out, Err)) << Len;
  }
  ResultSummary Sum;
  std::vector<uint8_t> S = encodeResultSummary(Sum);
  for (size_t Len = 0; Len != S.size(); ++Len) {
    ResultSummary Out;
    std::string Err;
    EXPECT_FALSE(decodeResultSummary(S.data(), Len, Out, Err)) << Len;
  }
  std::vector<uint8_t> E = encodeError(ErrorCode::ProtocolError, "boom");
  for (size_t Len = 0; Len != E.size(); ++Len) {
    ErrorCode Code;
    std::string Msg, Err;
    EXPECT_FALSE(decodeError(E.data(), Len, Code, Msg, Err)) << Len;
  }
}

// A hostile embedded path length must be rejected against the bytes
// actually present — never trusted as an allocation size.
TEST(ServeProtocolTest, EmbeddedLengthExceedsPayload) {
  AnalyzeRequest Req;
  Req.Path = "x";
  std::vector<uint8_t> Bytes = encodeAnalyzeRequest(Req);
  // Patch the u32 path length (offset 2) to a huge value.
  Bytes[2] = 0xFF;
  Bytes[3] = 0xFF;
  Bytes[4] = 0xFF;
  Bytes[5] = 0x7F;
  AnalyzeRequest Out;
  std::string Err;
  EXPECT_FALSE(decodeAnalyzeRequest(Bytes.data(), Bytes.size(), Out, Err));
  EXPECT_NE(Err.find("exceeds payload"), std::string::npos) << Err;
}

// Trailing bytes after a well-formed payload are a protocol error, not
// silently ignored (they would mask framing bugs).
TEST(ServeProtocolTest, TrailingBytesRejected) {
  AnalyzeRequest Req;
  Req.Path = "t";
  std::vector<uint8_t> Bytes = encodeAnalyzeRequest(Req);
  Bytes.push_back(0);
  AnalyzeRequest Out;
  std::string Err;
  EXPECT_FALSE(decodeAnalyzeRequest(Bytes.data(), Bytes.size(), Out, Err));
}

//===----------------------------------------------------------------------===//
// Live-daemon hostile corpus
//===----------------------------------------------------------------------===//

class ServeHostileTest : public ::testing::Test {
protected:
  void SetUp() override {
    Socket = socketPath("hostile");
    Probe = probeTracePath();
    ServerOptions Opts;
    Opts.SocketPath = Socket;
    Opts.NumWorkers = 2;
    Opts.MaxFrameBytes = 4096; // Tight budget: easy to overflow on purpose.
    Daemon = std::make_unique<Server>(Opts);
    Expected<void> Ok = Daemon->start();
    ASSERT_TRUE(Ok.ok()) << Ok.message();
  }

  void TearDown() override {
    Daemon->stop();
    std::remove(Probe.c_str());
  }

  std::string Socket;
  std::string Probe;
  std::unique_ptr<Server> Daemon;
};

// An oversized length prefix must be rejected before any payload
// allocation (the daemon drops the connection) and must not take the
// daemon down.
TEST_F(ServeHostileTest, OversizedLengthPrefix) {
  for (uint32_t Len : {uint32_t(4097), uint32_t(1) << 24, ~uint32_t(0)}) {
    ServeClient Client;
    ASSERT_TRUE(Client.connect(Socket).ok());
    ASSERT_TRUE(Client.sendRaw(rawFrame(Len, 1, {})));
    Frame Response;
    std::string Err;
    // The daemon drops the connection without an answer — readRaw sees
    // EOF (0) or a reset (-1), never a frame.
    EXPECT_NE(Client.readRaw(Response, Err, 5000), 1) << "len " << Len;
  }
  expectStillServing(Socket, Probe);
  Expected<ServeStats> Stats = [&] {
    ServeClient C;
    EXPECT_TRUE(C.connect(Socket).ok());
    return C.stats();
  }();
  ASSERT_TRUE(Stats.ok());
  EXPECT_EQ(Stats->ProtocolErrors, 3u);
}

// A frame whose header promises more payload than the client ever
// sends: the daemon must not hang on the missing bytes forever once
// the client disconnects.
TEST_F(ServeHostileTest, TruncatedFrameThenDisconnect) {
  {
    ServeClient Client;
    ASSERT_TRUE(Client.connect(Socket).ok());
    std::vector<uint8_t> Partial = rawFrame(100, 1, {1, 2, 3});
    ASSERT_TRUE(Client.sendRaw(Partial));
    Client.close(); // Mid-frame disconnect.
  }
  {
    // Mid-header disconnect: fewer bytes than the 5-byte header.
    ServeClient Client;
    ASSERT_TRUE(Client.connect(Socket).ok());
    ASSERT_TRUE(Client.sendRaw({0x01, 0x02}));
    Client.close();
  }
  expectStillServing(Socket, Probe);
}

// Unknown request types get a typed error and the connection stays
// usable — the stream is still framable.
TEST_F(ServeHostileTest, UnknownRequestType) {
  ServeClient Client;
  ASSERT_TRUE(Client.connect(Socket).ok());
  for (uint8_t Type : {uint8_t(0), uint8_t(99), uint8_t(255)}) {
    ASSERT_TRUE(Client.sendRaw(rawFrame(0, Type, {})));
    Frame Response;
    std::string Err;
    ASSERT_EQ(Client.readRaw(Response, Err, 5000), 1) << Err;
    EXPECT_EQ(Response.Type, FrameType::ErrorResponse);
    ErrorCode Code;
    std::string Msg;
    ASSERT_TRUE(decodeError(Response.Payload.data(),
                            Response.Payload.size(), Code, Msg, Err));
    EXPECT_EQ(Code, ErrorCode::ProtocolError);
  }
  // Same connection still serves a real request afterwards.
  AnalyzeRequest Req;
  Req.Path = Probe;
  Expected<ResultSummary> Sum = Client.analyze(Req);
  EXPECT_TRUE(Sum.ok()) << Sum.message();
}

// A well-framed AnalyzeRequest with a malformed payload: typed error,
// connection survives.
TEST_F(ServeHostileTest, MalformedAnalyzePayload) {
  ServeClient Client;
  ASSERT_TRUE(Client.connect(Socket).ok());
  const std::vector<std::vector<uint8_t>> Bad = {
      {},                          // empty
      {0},                         // truncated after PairMode
      {0, 0, 0xFF, 0xFF, 0xFF, 0x7F}, // path length >> payload
      {7, 0, 1, 0, 0, 0, 'x'},     // bad pair mode
  };
  for (const std::vector<uint8_t> &Payload : Bad) {
    ASSERT_TRUE(Client.sendRaw(
        rawFrame(static_cast<uint32_t>(Payload.size()), 1, Payload)));
    Frame Response;
    std::string Err;
    ASSERT_EQ(Client.readRaw(Response, Err, 5000), 1) << Err;
    EXPECT_EQ(Response.Type, FrameType::ErrorResponse);
  }
  expectStillServing(Socket, Probe);
}

// Random-garbage flood: bytes that never form a valid header.  The
// daemon sheds the connections and keeps serving.
TEST_F(ServeHostileTest, GarbageFlood) {
  uint32_t State = 0x2545F491;
  for (int Round = 0; Round != 8; ++Round) {
    ServeClient Client;
    ASSERT_TRUE(Client.connect(Socket).ok());
    std::vector<uint8_t> Garbage(64 + Round * 17);
    for (uint8_t &B : Garbage) {
      State ^= State << 13;
      State ^= State >> 17;
      State ^= State << 5;
      B = static_cast<uint8_t>(State);
    }
    Client.sendRaw(Garbage);
    Client.close();
  }
  expectStillServing(Socket, Probe);
}

// A client that connects and immediately disappears — the cheapest
// denial attempt — must cost the daemon nothing but an accept.
TEST_F(ServeHostileTest, ConnectAndVanish) {
  for (int I = 0; I != 16; ++I) {
    ServeClient Client;
    ASSERT_TRUE(Client.connect(Socket).ok());
    Client.close();
  }
  expectStillServing(Socket, Probe);
}
