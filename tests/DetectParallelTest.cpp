//===- tests/DetectParallelTest.cpp - parallel/dedup detection parity -------===//
//
// The detector's performance modes (worker threads, key-pair dedup,
// streaming sinks, counts-only) must be invisible in the results:
// Pairs and Counts bit-identical to the serial baseline on every
// workload shape — nested locks, MaxPairDistance, AdjacentCrossThread,
// generated applications.
//
//===----------------------------------------------------------------------===//

#include "detect/Detector.h"
#include "detect/SectionKey.h"
#include "sim/Replayer.h"
#include "trace/TraceBuilder.h"
#include "workloads/Apps.h"
#include "workloads/WorkloadSpec.h"

#include <gtest/gtest.h>

using namespace perfplay;

namespace {

void expectSameResult(const DetectResult &Base, const DetectResult &Got,
                      const char *Config) {
  EXPECT_EQ(Base.Counts.NullLock, Got.Counts.NullLock) << Config;
  EXPECT_EQ(Base.Counts.ReadRead, Got.Counts.ReadRead) << Config;
  EXPECT_EQ(Base.Counts.DisjointWrite, Got.Counts.DisjointWrite) << Config;
  EXPECT_EQ(Base.Counts.Benign, Got.Counts.Benign) << Config;
  EXPECT_EQ(Base.Counts.TrueContention, Got.Counts.TrueContention)
      << Config;
  ASSERT_EQ(Base.Pairs.size(), Got.Pairs.size()) << Config;
  for (size_t I = 0; I != Base.Pairs.size(); ++I) {
    EXPECT_EQ(Base.Pairs[I].First, Got.Pairs[I].First)
        << Config << " pair " << I;
    EXPECT_EQ(Base.Pairs[I].Second, Got.Pairs[I].Second)
        << Config << " pair " << I;
    EXPECT_EQ(Base.Pairs[I].Kind, Got.Pairs[I].Kind)
        << Config << " pair " << I;
  }
}

/// A mixed workload: three threads, an outer/inner nested lock pair
/// plus a hot lock whose sections cycle through every classification
/// (redundant stores, commutative adds, read-only, disjoint writes,
/// store-vs-read conflicts).
Trace mixedTrace() {
  TraceBuilder B;
  LockId Hot = B.addLock("hot");
  LockId Outer = B.addLock("outer");
  LockId Inner = B.addLock("inner");
  CodeSiteId Site = B.addSite("m.cc", "mixed", 1, 99);
  std::vector<ThreadId> Ids = {B.addThread(), B.addThread(),
                               B.addThread()};

  for (unsigned Round = 0; Round != 4; ++Round)
    for (unsigned T = 0; T != Ids.size(); ++T) {
      ThreadId Id = Ids[T];
      B.compute(Id, 10 + Round);
      B.beginCs(Id, Hot, Site);
      switch ((Round + T) % 5) {
      case 0:
        B.write(Id, 1, 42); // Redundant store.
        break;
      case 1:
        B.write(Id, 2, 3, WriteOpKind::Add); // Commutative.
        break;
      case 2:
        B.read(Id, 3, 0); // Read-only.
        break;
      case 3:
        B.write(Id, 100 + T, 7); // Disjoint per-thread.
        break;
      default:
        B.write(Id, 1, 50 + T); // Conflicting stores.
        B.read(Id, 2, 0);
        break;
      }
      B.endCs(Id);
      // Nested sections: accesses belong to outer and inner.
      B.beginCs(Id, Outer, Site);
      B.write(Id, 5, 1, WriteOpKind::Or);
      B.beginCs(Id, Inner);
      B.read(Id, 6, 9);
      B.endCs(Id);
      B.endCs(Id);
    }
  return B.finish();
}

Trace generatedTrace() {
  Trace Tr = generateWorkload(makeMysql(4, 0.3));
  recordGrantSchedule(Tr, 42);
  return Tr;
}

DetectResult detectWith(const Trace &Tr, const CsIndex &Index,
                        DetectOptions Opts, unsigned Threads,
                        bool Dedup) {
  Opts.NumThreads = Threads;
  Opts.DedupPairs = Dedup;
  return detectUlcps(Tr, Index, Opts);
}

void checkAllConfigs(const Trace &Tr, const DetectOptions &Base) {
  CsIndex Index = CsIndex::build(Tr);
  DetectResult Serial = detectWith(Tr, Index, Base, 1, false);
  ASSERT_GT(Serial.Counts.total(), 0u);
  expectSameResult(Serial, detectWith(Tr, Index, Base, 4, false),
                   "parallel");
  expectSameResult(Serial, detectWith(Tr, Index, Base, 1, true), "dedup");
  expectSameResult(Serial, detectWith(Tr, Index, Base, 4, true),
                   "parallel+dedup");
  expectSameResult(Serial, detectWith(Tr, Index, Base, 0, true),
                   "hw-threads+dedup");
}

} // namespace

TEST(DetectParallelTest, MixedTraceAllCrossThread) {
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  checkAllConfigs(mixedTrace(), Opts);
}

TEST(DetectParallelTest, MixedTraceAdjacent) {
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AdjacentCrossThread;
  checkAllConfigs(mixedTrace(), Opts);
}

TEST(DetectParallelTest, MixedTraceMaxPairDistance) {
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  Opts.MaxPairDistance = 2;
  checkAllConfigs(mixedTrace(), Opts);
}

TEST(DetectParallelTest, MixedTraceStaticOnly) {
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  Opts.UseReversedReplay = false;
  checkAllConfigs(mixedTrace(), Opts);
}

TEST(DetectParallelTest, GeneratedWorkloadParity) {
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  checkAllConfigs(generatedTrace(), Opts);
}

TEST(DetectParallelTest, TinySectionsSkipBitmapMirrors) {
  // Sections at or below TinySetMax in both dimensions never derive
  // AddrSets (Auto routes them to the sorted merge anyway); the
  // pinned Bitset representation falls back per pair and stays
  // correct, which the SetReprBitsetMatchesSorted parity runs over
  // mixedTrace() — all-tiny sections — rely on.
  CsIndex Index = CsIndex::build(mixedTrace());
  size_t WithMirrors = 0;
  for (uint32_t I = 0; I != Index.size(); ++I) {
    const CriticalSection &Cs = Index.byGlobalId(I);
    ASSERT_LE(Cs.Reads.size(), CriticalSection::TinySetMax);
    ASSERT_LE(Cs.Writes.size(), CriticalSection::TinySetMax);
    if (Cs.ReadSet.size() + Cs.WriteSet.size() != 0)
      ++WithMirrors;
  }
  EXPECT_EQ(WithMirrors, 0u);
}

TEST(DetectParallelTest, SetReprBitsetMatchesSorted) {
  // The word-parallel AddrSet intersection path must be invisible in
  // the results: identical Pairs and Counts for Sorted, Bitset and
  // Auto on the lock-heavy mixed workload, with and without the other
  // performance knobs stacked on top.
  for (const Trace &Tr : {mixedTrace(), generatedTrace()}) {
    CsIndex Index = CsIndex::build(Tr);
    DetectOptions Base;
    Base.PairMode = PairModeKind::AllCrossThread;
    Base.Repr = SetRepr::Sorted;
    DetectResult Sorted = detectWith(Tr, Index, Base, 1, false);
    ASSERT_GT(Sorted.Counts.total(), 0u);

    DetectOptions Bitset = Base;
    Bitset.Repr = SetRepr::Bitset;
    expectSameResult(Sorted, detectWith(Tr, Index, Bitset, 1, false),
                     "bitset");
    expectSameResult(Sorted, detectWith(Tr, Index, Bitset, 4, true),
                     "bitset+parallel+dedup");

    DetectOptions Auto = Base;
    Auto.Repr = SetRepr::Auto;
    expectSameResult(Sorted, detectWith(Tr, Index, Auto, 1, false),
                     "auto");
    expectSameResult(Sorted, detectWith(Tr, Index, Auto, 4, true),
                     "auto+parallel+dedup");
  }
}

TEST(DetectParallelTest, SetReprBitsetOnWideSections) {
  // Wide sections (past any small-block threshold) with every static
  // verdict represented: interleaved disjoint writes, overlapping
  // writes, read-only scans.  Bitset and Sorted must agree per pair.
  TraceBuilder B;
  LockId Mu = B.addLock("wide");
  CodeSiteId Site = B.addSite("w.cc", "wide", 1, 9);
  ThreadId T0 = B.addThread();
  ThreadId T1 = B.addThread();

  // Pairwise-disjoint interleaved writes over one dense range.
  B.beginCs(T0, Mu, Site);
  for (AddrId A = 0; A != 4000; A += 2)
    B.write(T0, A, 1);
  B.endCs(T0);
  B.beginCs(T1, Mu, Site);
  for (AddrId A = 1; A != 4001; A += 2)
    B.write(T1, A, 1);
  B.endCs(T1);
  // A conflicting wide pair: same range, one shared address.
  B.beginCs(T0, Mu, Site);
  for (AddrId A = 10000; A != 12000; ++A)
    B.write(T0, A, 2);
  B.endCs(T0);
  B.beginCs(T1, Mu, Site);
  B.write(T1, 11500, 3);
  for (AddrId A = 20000; A != 22000; ++A)
    B.read(T1, A, 0);
  B.endCs(T1);
  Trace Tr = B.finish();
  CsIndex Index = CsIndex::build(Tr);

  // Every section here is wider than TinySetMax in reads or writes,
  // so all of them carry bitmap mirrors.
  for (uint32_t I = 0; I != Index.size(); ++I)
    EXPECT_TRUE(Index.byGlobalId(I).setsBuilt()) << I;

  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  Opts.Repr = SetRepr::Sorted;
  DetectResult Sorted = detectUlcps(Tr, Index, Opts);
  Opts.Repr = SetRepr::Bitset;
  expectSameResult(Sorted, detectUlcps(Tr, Index, Opts), "wide-bitset");
  Opts.Repr = SetRepr::Auto;
  expectSameResult(Sorted, detectUlcps(Tr, Index, Opts), "wide-auto");
  // The corpus really exercises both outcomes.
  EXPECT_GT(Sorted.Counts.DisjointWrite, 0u);
  EXPECT_GT(Sorted.Counts.TrueContention, 0u);
}

TEST(DetectParallelTest, SinkStreamsPairsInSerialOrder) {
  Trace Tr = mixedTrace();
  CsIndex Index = CsIndex::build(Tr);
  DetectOptions Base;
  Base.PairMode = PairModeKind::AllCrossThread;
  DetectResult Serial = detectUlcps(Tr, Index, Base);

  for (unsigned Threads : {1u, 4u}) {
    DetectOptions Opts = Base;
    Opts.NumThreads = Threads;
    std::vector<UlcpPair> Streamed;
    Opts.Sink = [&](const UlcpPair &P) { Streamed.push_back(P); };
    DetectResult R = detectUlcps(Tr, Index, Opts);
    EXPECT_TRUE(R.Pairs.empty()) << "sink mode must not materialize";
    ASSERT_EQ(Streamed.size(), Serial.Pairs.size());
    for (size_t I = 0; I != Streamed.size(); ++I) {
      EXPECT_EQ(Streamed[I].First, Serial.Pairs[I].First) << I;
      EXPECT_EQ(Streamed[I].Second, Serial.Pairs[I].Second) << I;
      EXPECT_EQ(Streamed[I].Kind, Serial.Pairs[I].Kind) << I;
    }
    EXPECT_EQ(R.Counts.total(), Serial.Counts.total());
  }
}

TEST(DetectParallelTest, CountsOnlySkipsPairVector) {
  Trace Tr = mixedTrace();
  CsIndex Index = CsIndex::build(Tr);
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  DetectResult Full = detectUlcps(Tr, Index, Opts);
  Opts.CountsOnly = true;
  DetectResult Counted = detectUlcps(Tr, Index, Opts);
  EXPECT_TRUE(Counted.Pairs.empty());
  EXPECT_EQ(Counted.Counts.total(), Full.Counts.total());
  EXPECT_EQ(Counted.Counts.TrueContention, Full.Counts.TrueContention);
}

TEST(DetectParallelTest, DedupClassifiesEachKeyPairOnce) {
  // 2 threads x 6 identical sections: one key, one classification,
  // many dynamic pairs.
  TraceBuilder B;
  LockId Mu = B.addLock("mu");
  CodeSiteId Site = B.addSite("k.cc", "inc", 1, 5);
  std::vector<ThreadId> Ids = {B.addThread(), B.addThread()};
  for (unsigned I = 0; I != 6; ++I)
    for (ThreadId T : Ids) {
      B.beginCs(T, Mu, Site);
      B.write(T, 9, 1, WriteOpKind::Add);
      B.endCs(T);
    }
  Trace Tr = B.finish();
  CsIndex Index = CsIndex::build(Tr);

  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  Opts.DedupPairs = true;
  DetectResult R = detectUlcps(Tr, Index, Opts);
  EXPECT_EQ(R.Stats.NumSectionKeys, 1u);
  EXPECT_EQ(R.Stats.NumClassified, 1u);
  EXPECT_GT(R.Counts.total(), 1u);
  EXPECT_EQ(R.Counts.Benign, R.Counts.total()); // Adds commute.
}

TEST(DetectParallelTest, SectionKeysSeparateDistinctBodies) {
  TraceBuilder B;
  LockId Mu = B.addLock("mu");
  CodeSiteId Site = B.addSite("k.cc", "f", 1, 5);
  ThreadId T0 = B.addThread();
  ThreadId T1 = B.addThread();
  B.beginCs(T0, Mu, Site);
  B.write(T0, 1, 5);
  B.endCs(T0);
  B.beginCs(T0, Mu, Site);
  B.write(T0, 1, 6); // Different operand: different key.
  B.endCs(T0);
  B.beginCs(T1, Mu, Site);
  B.read(T1, 1, 5); // Read value excluded: same key as next.
  B.endCs(T1);
  B.beginCs(T1, Mu, Site);
  B.read(T1, 1, 99);
  B.endCs(T1);
  Trace Tr = B.finish();
  CsIndex Index = CsIndex::build(Tr);
  SectionKeyTable Keys = internSectionKeys(Tr, Index);
  EXPECT_EQ(Keys.NumKeys, 3u);
  EXPECT_NE(Keys.KeyOf[0], Keys.KeyOf[1]);
  EXPECT_EQ(Keys.KeyOf[2], Keys.KeyOf[3]);
}
