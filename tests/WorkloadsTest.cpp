//===- tests/WorkloadsTest.cpp - workload model tests ------------------------===//

#include "workloads/Apps.h"
#include "workloads/CaseStudies.h"
#include "workloads/WorkloadSpec.h"

#include "detect/CriticalSection.h"
#include "detect/Detector.h"
#include "sim/Replayer.h"

#include <gtest/gtest.h>

#include <set>

using namespace perfplay;

//===----------------------------------------------------------------------===//
// Generator mechanics
//===----------------------------------------------------------------------===//

namespace {

WorkloadSpec tinySpec(GroupPatternKind Pattern) {
  WorkloadSpec S;
  S.Name = "tiny";
  S.NumThreads = 2;
  S.Seed = 7;
  LockGroup G;
  G.Name = "g";
  G.Pattern = Pattern;
  G.NumLocks = 2;
  G.SessionsPerThread = 3;
  S.Groups.push_back(G);
  return S;
}

} // namespace

TEST(GeneratorTest, ProducesValidTraces) {
  for (auto Pattern :
       {GroupPatternKind::NullLock, GroupPatternKind::ReadRead,
        GroupPatternKind::DisjointWrite, GroupPatternKind::Benign,
        GroupPatternKind::TrueConflict, GroupPatternKind::Private}) {
    Trace Tr = generateWorkload(tinySpec(Pattern));
    EXPECT_EQ(Tr.validate(), "") << "pattern "
                                 << static_cast<int>(Pattern);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  Trace A = generateWorkload(tinySpec(GroupPatternKind::ReadRead));
  Trace B = generateWorkload(tinySpec(GroupPatternKind::ReadRead));
  ASSERT_EQ(A.numEvents(), B.numEvents());
  for (size_t T = 0; T != A.Threads.size(); ++T)
    for (size_t I = 0; I != A.Threads[T].Events.size(); ++I) {
      EXPECT_EQ(A.Threads[T].Events[I].Kind, B.Threads[T].Events[I].Kind);
      EXPECT_EQ(A.Threads[T].Events[I].Cost, B.Threads[T].Events[I].Cost);
    }
}

TEST(GeneratorTest, SeedChangesTrace) {
  WorkloadSpec S1 = tinySpec(GroupPatternKind::ReadRead);
  WorkloadSpec S2 = S1;
  S2.Seed = 8;
  Trace A = generateWorkload(S1);
  Trace B = generateWorkload(S2);
  bool AnyDifference = A.numEvents() != B.numEvents();
  if (!AnyDifference)
    for (size_t T = 0; T != A.Threads.size() && !AnyDifference; ++T)
      for (size_t I = 0; I != A.Threads[T].Events.size(); ++I)
        if (A.Threads[T].Events[I].Cost != B.Threads[T].Events[I].Cost) {
          AnyDifference = true;
          break;
        }
  EXPECT_TRUE(AnyDifference);
}

TEST(GeneratorTest, InputScaleGrowsSessions) {
  WorkloadSpec S = tinySpec(GroupPatternKind::ReadRead);
  Trace Small = generateWorkload(S);
  S.InputScale = 3.0;
  Trace Large = generateWorkload(S);
  EXPECT_GT(Large.numCriticalSections(), Small.numCriticalSections());
}

TEST(GeneratorTest, ThreadCountRespected) {
  WorkloadSpec S = tinySpec(GroupPatternKind::ReadRead);
  S.NumThreads = 5;
  Trace Tr = generateWorkload(S);
  EXPECT_EQ(Tr.numThreads(), 5u);
}

TEST(GeneratorTest, PrivateLocksNeverShared) {
  WorkloadSpec S = tinySpec(GroupPatternKind::Private);
  Trace Tr = generateWorkload(S);
  // Each lock is used by at most one thread.
  std::vector<std::set<ThreadId>> Users(Tr.Locks.size());
  for (ThreadId T = 0; T != Tr.Threads.size(); ++T)
    for (const Event &E : Tr.Threads[T].Events)
      if (E.Kind == EventKind::LockAcquire)
        Users[E.Lock].insert(T);
  for (const auto &U : Users)
    EXPECT_LE(U.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Pattern mixes produce the intended classifications
//===----------------------------------------------------------------------===//

namespace {

UlcpCounts countsOf(const WorkloadSpec &S) {
  Trace Tr = generateWorkload(S);
  recordGrantSchedule(Tr, S.Seed);
  CsIndex Index = CsIndex::build(Tr);
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  return detectUlcps(Tr, Index, Opts).Counts;
}

} // namespace

TEST(GeneratorPatternTest, ReadReadGroupYieldsReadReadPairs) {
  UlcpCounts C = countsOf(tinySpec(GroupPatternKind::ReadRead));
  EXPECT_GT(C.ReadRead, 0u);
  EXPECT_EQ(C.DisjointWrite, 0u);
  EXPECT_EQ(C.NullLock, 0u);
}

TEST(GeneratorPatternTest, DisjointWriteGroupYieldsDisjointWrites) {
  UlcpCounts C = countsOf(tinySpec(GroupPatternKind::DisjointWrite));
  EXPECT_GT(C.DisjointWrite, 0u);
  EXPECT_EQ(C.ReadRead, 0u);
}

TEST(GeneratorPatternTest, NullLockGroupYieldsNullLocks) {
  UlcpCounts C = countsOf(tinySpec(GroupPatternKind::NullLock));
  EXPECT_GT(C.NullLock, 0u);
  EXPECT_EQ(C.total(), C.NullLock);
}

TEST(GeneratorPatternTest, BenignGroupYieldsBenign) {
  UlcpCounts C = countsOf(tinySpec(GroupPatternKind::Benign));
  EXPECT_GT(C.Benign, 0u);
  EXPECT_EQ(C.TrueContention, 0u);
}

TEST(GeneratorPatternTest, ConflictGroupYieldsContention) {
  UlcpCounts C = countsOf(tinySpec(GroupPatternKind::TrueConflict));
  EXPECT_GT(C.TrueContention, 0u);
  EXPECT_EQ(C.totalUnnecessary(), 0u);
}

TEST(GeneratorPatternTest, PrivateGroupYieldsNothing) {
  UlcpCounts C = countsOf(tinySpec(GroupPatternKind::Private));
  EXPECT_EQ(C.total(), 0u);
}

TEST(GeneratorPatternTest, ConflictFracInjectsContention) {
  WorkloadSpec S = tinySpec(GroupPatternKind::ReadRead);
  S.Groups[0].ConflictFrac = 0.5;
  S.Groups[0].SessionsPerThread = 8;
  UlcpCounts C = countsOf(S);
  EXPECT_GT(C.TrueContention, 0u);
  EXPECT_GT(C.ReadRead, 0u);
}

//===----------------------------------------------------------------------===//
// Application models
//===----------------------------------------------------------------------===//

namespace {

class AppModelTest : public testing::TestWithParam<size_t> {};

} // namespace

TEST_P(AppModelTest, GeneratesValidTwoThreadTrace) {
  const AppModel &App = allApps()[GetParam()];
  WorkloadSpec Spec = App.Factory(2, 1.0);
  EXPECT_EQ(Spec.Name, App.Name);
  Trace Tr = generateWorkload(Spec);
  EXPECT_EQ(Tr.validate(), "") << App.Name;
  EXPECT_EQ(Tr.numThreads(), 2u);
}

TEST_P(AppModelTest, ReplaysWithoutDeadlock) {
  const AppModel &App = allApps()[GetParam()];
  Trace Tr = generateWorkload(App.Factory(2, 0.5));
  ReplayResult Rec = recordGrantSchedule(Tr, 5);
  ASSERT_TRUE(Rec.ok()) << App.Name << ": " << Rec.Error;
  ReplayResult R = replayTrace(Tr, ReplayOptions());
  ASSERT_TRUE(R.ok()) << App.Name << ": " << R.Error;
  EXPECT_GT(R.TotalTime, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppModelTest,
                         testing::Range<size_t>(0, 16));

TEST(AppRegistryTest, SixteenAppsInTableOneOrder) {
  ASSERT_EQ(allApps().size(), 16u);
  EXPECT_EQ(allApps().front().Name, "openldap");
  EXPECT_EQ(allApps()[5].Name, "blackscholes");
  EXPECT_EQ(allApps().back().Name, "x264");
  EXPECT_EQ(realWorldApps().size(), 5u);
  EXPECT_EQ(parsecApps().size(), 11u);
}

TEST(AppShapeTest, CleanAppsHaveNoUlcps) {
  for (const char *Name :
       {"blackscholes", "canneal", "streamcluster", "swaptions"}) {
    const AppModel *App = nullptr;
    for (const AppModel &A : allApps())
      if (A.Name == Name)
        App = &A;
    ASSERT_NE(App, nullptr);
    Trace Tr = generateWorkload(App->Factory(2, 1.0));
    recordGrantSchedule(Tr, 3);
    CsIndex Index = CsIndex::build(Tr);
    DetectOptions Opts;
    Opts.PairMode = PairModeKind::AllCrossThread;
    UlcpCounts C = detectUlcps(Tr, Index, Opts).Counts;
    EXPECT_EQ(C.totalUnnecessary(), 0u) << Name;
  }
}

TEST(AppShapeTest, UlcpRichAppsDetectManyPairs) {
  for (const char *Name : {"mysql", "fluidanimate"}) {
    const AppModel *App = nullptr;
    for (const AppModel &A : allApps())
      if (A.Name == Name)
        App = &A;
    ASSERT_NE(App, nullptr);
    Trace Tr = generateWorkload(App->Factory(2, 1.0));
    recordGrantSchedule(Tr, 3);
    CsIndex Index = CsIndex::build(Tr);
    DetectOptions Opts;
    Opts.PairMode = PairModeKind::AllCrossThread;
    UlcpCounts C = detectUlcps(Tr, Index, Opts).Counts;
    EXPECT_GT(C.ReadRead, 100u) << Name;
    EXPECT_GT(C.DisjointWrite, 50u) << Name;
  }
}

//===----------------------------------------------------------------------===//
// Case studies
//===----------------------------------------------------------------------===//

TEST(CaseStudyTest, Bug1TracesValidate) {
  CaseStudyParams P;
  EXPECT_EQ(makeOpenldapSpinWait(P).validate(), "");
  EXPECT_EQ(makeOpenldapSpinWaitFixed(P).validate(), "");
}

TEST(CaseStudyTest, Bug2TracesValidate) {
  CaseStudyParams P;
  EXPECT_EQ(makePbzip2Consumer(P).validate(), "");
  EXPECT_EQ(makePbzip2ConsumerFixed(P).validate(), "");
}

TEST(CaseStudyTest, MysqlTracesValidate) {
  CaseStudyParams P;
  EXPECT_EQ(makeMysqlQueryCache(P).validate(), "");
  EXPECT_EQ(makeMysqlQueryCacheFixed(P).validate(), "");
}

TEST(CaseStudyTest, Bug1FixRemovesSpinWaste) {
  CaseStudyParams P;
  P.NumThreads = 4;
  Trace Buggy = makeOpenldapSpinWait(P);
  Trace Fixed = makeOpenldapSpinWaitFixed(P);
  recordGrantSchedule(Buggy, 3);
  recordGrantSchedule(Fixed, 3);
  ReplayResult RBuggy = replayTrace(Buggy, ReplayOptions());
  ReplayResult RFixed = replayTrace(Fixed, ReplayOptions());
  ASSERT_TRUE(RBuggy.ok() && RFixed.ok());
  // The buggy run burns CPU in the spin polls; the fixed run blocks
  // idly on the barrier lock instead and has far fewer sections.
  EXPECT_EQ(RFixed.SpinWaitNs, 0u);
  EXPECT_GT(RFixed.IdleWaitNs, 0u);
  EXPECT_GT(Buggy.numCriticalSections(), Fixed.numCriticalSections());
}

TEST(CaseStudyTest, Bug2FixReducesCriticalSections) {
  CaseStudyParams P;
  P.NumThreads = 4;
  Trace Buggy = makePbzip2Consumer(P);
  Trace Fixed = makePbzip2ConsumerFixed(P);
  EXPECT_GT(Buggy.numCriticalSections(), Fixed.numCriticalSections());
}

TEST(CaseStudyTest, Bug2PollingCreatesReadReadUlcps) {
  CaseStudyParams P;
  P.NumThreads = 4;
  Trace Buggy = makePbzip2Consumer(P);
  recordGrantSchedule(Buggy, 3);
  CsIndex Index = CsIndex::build(Buggy);
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  UlcpCounts C = detectUlcps(Buggy, Index, Opts).Counts;
  EXPECT_GT(C.ReadRead, 0u);
}

TEST(CaseStudyTest, MysqlBugSerializesSessions) {
  CaseStudyParams P;
  P.NumThreads = 4;
  Trace Buggy = makeMysqlQueryCache(P);
  Trace Fixed = makeMysqlQueryCacheFixed(P);
  recordGrantSchedule(Buggy, 3);
  recordGrantSchedule(Fixed, 3);
  ReplayResult RBuggy = replayTrace(Buggy, ReplayOptions());
  ReplayResult RFixed = replayTrace(Fixed, ReplayOptions());
  ASSERT_TRUE(RBuggy.ok() && RFixed.ok());
  // Holding the guard across the timed wait serializes the sessions:
  // the buggy variant is materially slower end-to-end.
  EXPECT_GT(RBuggy.TotalTime, RFixed.TotalTime * 3 / 2);
}

TEST(CaseStudyTest, InputScaleGrowsWork) {
  CaseStudyParams Small;
  CaseStudyParams Large;
  Large.InputScale = 4.0;
  EXPECT_GT(makePbzip2Consumer(Large).numEvents(),
            makePbzip2Consumer(Small).numEvents());
}

//===----------------------------------------------------------------------===//
// Synthetic (non-Table-1) apps: the rwlock/trylock/condvar corpus
//===----------------------------------------------------------------------===//

TEST(SyntheticAppTest, RegistryHoldsRwMixBesideTableOne) {
  // rwmix lives in its own registry so the Table-1 roster stays 16.
  ASSERT_GE(syntheticApps().size(), 1u);
  bool Found = false;
  for (const AppModel &App : syntheticApps())
    Found |= App.Name == "rwmix";
  EXPECT_TRUE(Found);
  for (const AppModel &App : allApps())
    EXPECT_NE(App.Name, "rwmix");
}

TEST(SyntheticAppTest, RwMixGeneratesExtendedVocabulary) {
  Trace Tr = generateWorkload(makeRwMix(4, 1.0));
  ASSERT_EQ(Tr.validate(), "");
  EXPECT_EQ(Tr.numThreads(), 4u);
  uint64_t RwReads = 0, RwWrites = 0, TryOk = 0, TryFail = 0, Waits = 0,
           Signals = 0;
  for (const ThreadTrace &T : Tr.Threads)
    for (const Event &E : T.Events)
      switch (E.Kind) {
      case EventKind::RwAcquireRead:
        ++RwReads;
        break;
      case EventKind::RwAcquireWrite:
        ++RwWrites;
        break;
      case EventKind::TryAcquire:
        ++(E.TrySucceeded ? TryOk : TryFail);
        break;
      case EventKind::CondWait:
        ++Waits;
        break;
      case EventKind::CondSignal:
      case EventKind::CondBroadcast:
        ++Signals;
        break;
      default:
        break;
      }
  // The corpus must exercise every new kind, including failed tries.
  EXPECT_GT(RwReads, 0u);
  EXPECT_GT(RwWrites, 0u);
  EXPECT_GT(TryOk, 0u);
  EXPECT_GT(TryFail, 0u);
  EXPECT_GT(Waits, 0u);
  EXPECT_GT(Signals, 0u);
}

TEST(SyntheticAppTest, RwMixReplaysAndDetects) {
  Trace Tr = generateWorkload(makeRwMix(4, 0.5));
  ReplayResult Rec = recordGrantSchedule(Tr, 5);
  ASSERT_TRUE(Rec.ok()) << Rec.Error;
  ReplayResult R = replayTrace(Tr, ReplayOptions());
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_GT(R.TotalTime, 0u);

  CsIndex Index = CsIndex::build(Tr);
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  DetectResult D = detectUlcps(Tr, Index, Opts);
  // Reader-reader pairs and trylock-failure edges both surface.
  EXPECT_GT(D.Counts.ReadRead, 0u);
  EXPECT_GT(D.TryFailEdges, 0u);
}
