// Lock-free control fixture: threads compute without any pthread
// locking, so a recording must finalize into a structurally valid
// trace with zero lock events and zero critical sections.

#include <cstdio>
#include <pthread.h>

namespace {

long Results[2];

void *worker(void *Arg) {
  long *Out = static_cast<long *>(Arg);
  long Acc = 1;
  for (int I = 1; I < 50000; ++I)
    Acc = (Acc * 31 + I) % 1000003;
  *Out = Acc;
  return nullptr;
}

} // namespace

int main() {
  pthread_t T[2];
  for (int I = 0; I < 2; ++I)
    pthread_create(&T[I], nullptr, &worker, &Results[I]);
  long Total = 0;
  for (int I = 0; I < 2; ++I) {
    pthread_join(T[I], nullptr);
    Total += Results[I];
  }
  std::printf("nolocks done (%ld)\n", Total);
  return 0;
}
