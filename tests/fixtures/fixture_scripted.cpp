// Deterministic two-thread pthread workload for the recorder's
// differential test.  Semaphores (not interposed) sequence every lock
// operation, so each run produces the exact same operation schedule:
//
//   T1: lock M1 --------- post S1, wait S2 ---- unlock M1
//       wrlock RW / unlock; rdlock RW / unlock
//       wait S4; trylock M1 (succeeds, M1 free) / unlock
//       wait S3; lock MC; Ready = 1; signal CV; unlock MC
//       lock M1 { lock MC / unlock MC } unlock M1        (nesting = 2)
//   T2: wait S1; trylock M1 (fails, T1 holds it); post S2
//       lock M1 / unlock; rdlock RW / unlock; post S4
//       lock MC; post S3; while (!Ready) cond_wait(CV, MC); unlock MC
//
// tests/RecordPreloadTest.cpp mirrors this script on the in-process
// recording runtime and requires the two traces to agree profile for
// profile; keep both sides in sync when editing.

#include <cstdio>
#include <pthread.h>
#include <semaphore.h>

namespace {

pthread_mutex_t M1 = PTHREAD_MUTEX_INITIALIZER;
pthread_mutex_t MC = PTHREAD_MUTEX_INITIALIZER;
pthread_rwlock_t RW = PTHREAD_RWLOCK_INITIALIZER;
pthread_cond_t CV = PTHREAD_COND_INITIALIZER;
sem_t S1, S2, S3, S4;
int Ready = 0;
volatile int Sink = 0;

void *thread1(void *) {
  pthread_mutex_lock(&M1);
  sem_post(&S1);
  sem_wait(&S2); // T2's trylock has failed against us by now.
  Sink += 1;
  pthread_mutex_unlock(&M1);

  pthread_rwlock_wrlock(&RW);
  Sink += 1;
  pthread_rwlock_unlock(&RW);
  pthread_rwlock_rdlock(&RW);
  Sink += 1;
  pthread_rwlock_unlock(&RW);

  sem_wait(&S4); // M1 is free again: this trylock must succeed.
  if (pthread_mutex_trylock(&M1) == 0) {
    Sink += 1;
    pthread_mutex_unlock(&M1);
  }

  sem_wait(&S3); // T2 holds MC; blocks until its cond_wait releases it.
  pthread_mutex_lock(&MC);
  Ready = 1;
  pthread_cond_signal(&CV);
  pthread_mutex_unlock(&MC);

  pthread_mutex_lock(&M1);
  pthread_mutex_lock(&MC);
  Sink += 1;
  pthread_mutex_unlock(&MC);
  pthread_mutex_unlock(&M1);
  return nullptr;
}

void *thread2(void *) {
  sem_wait(&S1); // T1 holds M1: this trylock must fail.
  if (pthread_mutex_trylock(&M1) == 0) {
    std::fprintf(stderr, "fixture_scripted: unexpected trylock success\n");
    pthread_mutex_unlock(&M1);
  }
  sem_post(&S2);

  pthread_mutex_lock(&M1);
  Sink += 1;
  pthread_mutex_unlock(&M1);

  pthread_rwlock_rdlock(&RW);
  Sink += 1;
  pthread_rwlock_unlock(&RW);
  sem_post(&S4);

  pthread_mutex_lock(&MC);
  sem_post(&S3);
  while (!Ready)
    pthread_cond_wait(&CV, &MC);
  pthread_mutex_unlock(&MC);
  return nullptr;
}

} // namespace

int main() {
  sem_init(&S1, 0, 0);
  sem_init(&S2, 0, 0);
  sem_init(&S3, 0, 0);
  sem_init(&S4, 0, 0);
  pthread_t T1, T2;
  pthread_create(&T1, nullptr, &thread1, nullptr);
  pthread_create(&T2, nullptr, &thread2, nullptr);
  pthread_join(T1, nullptr);
  pthread_join(T2, nullptr);
  std::printf("scripted done (%d)\n", Sink);
  return 0;
}
