// Reader-heavy rwlock cache: four readers hammer a table under
// rdlock while one writer occasionally refreshes entries under
// wrlock, with a trylock fast path.  Recording this program must
// yield overlapping shared sections — the ReadRead verdict shape —
// plus genuine writer contention.

#include <cstdio>
#include <pthread.h>

namespace {

constexpr int NumReaders = 4;
constexpr int Lookups = 400;
constexpr int Refreshes = 25;

pthread_rwlock_t CacheLock = PTHREAD_RWLOCK_INITIALIZER;
long Cache[64];
long ReadSum[NumReaders];

void *reader(void *Arg) {
  long *Sum = static_cast<long *>(Arg);
  for (int I = 0; I < Lookups; ++I) {
    if (I % 2 == 0) {
      pthread_rwlock_rdlock(&CacheLock);
    } else {
      // Opportunistic read; fall back to blocking when a writer is in.
      if (pthread_rwlock_tryrdlock(&CacheLock) != 0)
        pthread_rwlock_rdlock(&CacheLock);
    }
    *Sum += Cache[I % 64];
    pthread_rwlock_unlock(&CacheLock);
  }
  return nullptr;
}

void *writer(void *) {
  for (int I = 0; I < Refreshes; ++I) {
    pthread_rwlock_wrlock(&CacheLock);
    for (int K = 0; K < 64; ++K)
      Cache[K] += I + K;
    pthread_rwlock_unlock(&CacheLock);
    // Leave the readers a window between refreshes.
    for (volatile int Spin = 0; Spin < 5000; ++Spin) {
    }
  }
  return nullptr;
}

} // namespace

int main() {
  pthread_t Readers[NumReaders], Writer;
  pthread_create(&Writer, nullptr, &writer, nullptr);
  for (int I = 0; I < NumReaders; ++I)
    pthread_create(&Readers[I], nullptr, &reader, &ReadSum[I]);
  long Total = 0;
  for (int I = 0; I < NumReaders; ++I) {
    pthread_join(Readers[I], nullptr);
    Total += ReadSum[I];
  }
  pthread_join(Writer, nullptr);
  std::printf("rwcache done (%ld)\n", Total);
  return 0;
}
