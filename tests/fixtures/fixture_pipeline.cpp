// pbzip2-style producer/consumer pipeline: one producer feeds a
// bounded queue guarded by a single mutex + condvars, three consumers
// drain it.  The queue mutex protects disjoint slots most of the time
// — the shape the paper's pbzip2 case study flags as unnecessary
// contention — so analyzing a recording of this program must surface
// NullLock pairs on the queue mutex.

#include <cstdio>
#include <pthread.h>

namespace {

constexpr int NumConsumers = 3;
constexpr int NumItems = 120;
constexpr int QueueCap = 8;

pthread_mutex_t QueueMu = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t NotEmpty = PTHREAD_COND_INITIALIZER;
pthread_cond_t NotFull = PTHREAD_COND_INITIALIZER;
int Queue[QueueCap];
int Head = 0, Count = 0;
bool Done = false;
long Consumed[NumConsumers];

void *producer(void *) {
  for (int I = 1; I <= NumItems; ++I) {
    pthread_mutex_lock(&QueueMu);
    while (Count == QueueCap)
      pthread_cond_wait(&NotFull, &QueueMu);
    Queue[(Head + Count) % QueueCap] = I;
    ++Count;
    pthread_cond_signal(&NotEmpty);
    pthread_mutex_unlock(&QueueMu);
  }
  pthread_mutex_lock(&QueueMu);
  Done = true;
  pthread_cond_broadcast(&NotEmpty);
  pthread_mutex_unlock(&QueueMu);
  return nullptr;
}

void *consumer(void *Arg) {
  long *Total = static_cast<long *>(Arg);
  for (;;) {
    pthread_mutex_lock(&QueueMu);
    while (Count == 0 && !Done)
      pthread_cond_wait(&NotEmpty, &QueueMu);
    if (Count == 0) {
      pthread_mutex_unlock(&QueueMu);
      return nullptr;
    }
    const int Item = Queue[Head];
    Head = (Head + 1) % QueueCap;
    --Count;
    pthread_cond_signal(&NotFull);
    pthread_mutex_unlock(&QueueMu);
    // "Compress" the block outside the lock.
    long Acc = Item;
    for (int K = 0; K < 2000; ++K)
      Acc = Acc * 1103515245 + 12345;
    *Total += Acc & 0xff;
  }
}

} // namespace

int main() {
  pthread_t Prod, Cons[NumConsumers];
  pthread_create(&Prod, nullptr, &producer, nullptr);
  for (int I = 0; I < NumConsumers; ++I)
    pthread_create(&Cons[I], nullptr, &consumer, &Consumed[I]);
  pthread_join(Prod, nullptr);
  long Total = 0;
  for (int I = 0; I < NumConsumers; ++I) {
    pthread_join(Cons[I], nullptr);
    Total += Consumed[I];
  }
  std::printf("pipeline done (%ld)\n", Total);
  return 0;
}
