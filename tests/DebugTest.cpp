//===- tests/DebugTest.cpp - Equation 1/2 and Algorithm 2 tests -------------===//

#include "debug/Fusion.h"
#include "debug/Report.h"
#include "debug/UlcpDelta.h"

#include "detect/Detector.h"
#include "sim/Replayer.h"
#include "trace/TraceBuilder.h"
#include "transform/Transform.h"

#include <gtest/gtest.h>

using namespace perfplay;

//===----------------------------------------------------------------------===//
// Equation 1
//===----------------------------------------------------------------------===//

namespace {

ReplayResult resultWithSections(std::vector<CsTiming> Sections) {
  ReplayResult R;
  R.Sections = std::move(Sections);
  return R;
}

CsTiming timing(TimeNs Pre, TimeNs Arr, TimeNs Grant, TimeNs Rel,
                TimeNs Succ) {
  CsTiming T;
  T.PrecursorStart = Pre;
  T.Arrival = Arr;
  T.Granted = Grant;
  T.Released = Rel;
  T.SuccessorEnd = Succ;
  return T;
}

} // namespace

TEST(UlcpDeltaTest, TimestampsExtracted) {
  ReplayResult R = resultWithSections({
      timing(100, 150, 200, 300, 400),
      timing(120, 160, 300, 500, 600),
  });
  UlcpPair P{0, 1, UlcpKind::ReadRead};
  UlcpTimestamps TS = ulcpTimestamps(R, P);
  EXPECT_EQ(TS.Time1, 100u);
  EXPECT_EQ(TS.Time2, 400u);
  EXPECT_EQ(TS.Time3, 600u);
}

TEST(UlcpDeltaTest, Figure10CaseB) {
  // Case (b): both successor segments shrink; improvement comes from
  // dMAX{Time2,Time3} with Time3 the max in both runs.
  ReplayResult Before = resultWithSections({
      timing(0, 10, 20, 30, 100),
      timing(0, 10, 30, 60, 200),
  });
  ReplayResult After = resultWithSections({
      timing(0, 10, 20, 30, 100),
      timing(0, 10, 15, 35, 140),
  });
  UlcpPair P{0, 1, UlcpKind::ReadRead};
  EXPECT_EQ(ulcpImprovement(Before, After, P), 60);
}

TEST(UlcpDeltaTest, Figure10CaseC) {
  // Case (c): after optimization the first section's successor ends
  // last; the improvement is dTime2 - dTime1.
  ReplayResult Before = resultWithSections({
      timing(0, 10, 20, 40, 300),
      timing(0, 30, 40, 65, 250),
  });
  ReplayResult After = resultWithSections({
      timing(0, 10, 12, 32, 260),
      timing(0, 11, 11, 31, 200),
  });
  UlcpPair P{0, 1, UlcpKind::ReadRead};
  EXPECT_EQ(ulcpImprovement(Before, After, P), 40);
}

TEST(UlcpDeltaTest, NonContendingPairContributesNothing) {
  // B ran long after A released: no serialization to attribute even if
  // the program as a whole got faster.
  ReplayResult Before = resultWithSections({
      timing(0, 10, 20, 30, 100),
      timing(0, 500, 500, 520, 600),
  });
  ReplayResult After = resultWithSections({
      timing(0, 10, 10, 20, 80),
      timing(0, 400, 400, 420, 480),
  });
  UlcpPair P{0, 1, UlcpKind::ReadRead};
  EXPECT_EQ(ulcpImprovement(Before, After, P), 0);
}

TEST(UlcpDeltaTest, PrecursorShiftSubtracted) {
  // Everything shifted 100 earlier, including Time1: net zero.
  ReplayResult Before = resultWithSections({
      timing(200, 210, 220, 230, 400),
      timing(200, 210, 230, 260, 420),
  });
  ReplayResult After = resultWithSections({
      timing(100, 110, 120, 130, 300),
      timing(100, 110, 130, 160, 320),
  });
  UlcpPair P{0, 1, UlcpKind::ReadRead};
  EXPECT_EQ(ulcpImprovement(Before, After, P), 0);
}

TEST(UlcpDeltaTest, NegativeClampedToZero) {
  ReplayResult Before = resultWithSections({
      timing(0, 0, 0, 10, 50),
      timing(0, 0, 10, 20, 60),
  });
  ReplayResult After = resultWithSections({
      timing(0, 0, 0, 10, 90),
      timing(0, 0, 10, 20, 100),
  });
  UlcpPair P{0, 1, UlcpKind::ReadRead};
  EXPECT_EQ(ulcpImprovement(Before, After, P), 0);
}

TEST(UlcpDeltaTest, BatchMatchesSingle) {
  ReplayResult Before = resultWithSections({
      timing(0, 10, 20, 30, 100),
      timing(0, 10, 30, 60, 200),
  });
  ReplayResult After = resultWithSections({
      timing(0, 10, 20, 30, 100),
      timing(0, 10, 15, 35, 140),
  });
  std::vector<UlcpPair> Pairs = {{0, 1, UlcpKind::ReadRead}};
  std::vector<int64_t> Deltas = ulcpImprovements(Before, After, Pairs);
  ASSERT_EQ(Deltas.size(), 1u);
  EXPECT_EQ(Deltas[0], ulcpImprovement(Before, After, Pairs[0]));
}

//===----------------------------------------------------------------------===//
// Algorithm 2: fusion
//===----------------------------------------------------------------------===//

namespace {

CodeRegion region(const char *File, uint32_t Begin, uint32_t End) {
  CodeRegion R;
  R.File = File;
  R.Lines = LineInterval(Begin, End);
  return R;
}

FusedUlcp fused(CodeRegion CR1, CodeRegion CR2, int64_t Delta) {
  FusedUlcp F;
  F.CR1 = std::move(CR1);
  F.CR2 = std::move(CR2);
  F.DeltaNs = Delta;
  F.PairCount = 1;
  return F;
}

} // namespace

TEST(FusionTest, RegionOverlapRules) {
  EXPECT_TRUE(regionsOverlap(region("a.cc", 1, 10), region("a.cc", 5, 20)));
  EXPECT_FALSE(regionsOverlap(region("a.cc", 1, 10), region("b.cc", 5, 20)));
  EXPECT_FALSE(
      regionsOverlap(region("a.cc", 1, 10), region("a.cc", 11, 20)));
}

TEST(FusionTest, ConflateUnitesLines) {
  CodeRegion C =
      conflateRegions(region("a.cc", 1, 10), region("a.cc", 5, 20));
  EXPECT_EQ(C.File, "a.cc");
  EXPECT_EQ(C.Lines, LineInterval(1, 20));
}

TEST(FusionTest, MatchingOrientationMerges) {
  FusedUlcp A = fused(region("a.cc", 1, 10), region("b.cc", 1, 10), 100);
  FusedUlcp B = fused(region("a.cc", 5, 15), region("b.cc", 2, 8), 50);
  ASSERT_TRUE(fuseUlcpGroups(A, B));
  EXPECT_EQ(A.DeltaNs, 150);
  EXPECT_EQ(A.PairCount, 2u);
  EXPECT_EQ(A.CR1.Lines, LineInterval(1, 15));
  EXPECT_EQ(A.CR2.Lines, LineInterval(1, 10));
}

TEST(FusionTest, SwappedOrientationMerges) {
  // Algorithm 2 lines 5-8: CR1 matches the other pair's CR2.
  FusedUlcp A = fused(region("a.cc", 1, 10), region("b.cc", 1, 10), 100);
  FusedUlcp B = fused(region("b.cc", 5, 12), region("a.cc", 3, 9), 25);
  ASSERT_TRUE(fuseUlcpGroups(A, B));
  EXPECT_EQ(A.DeltaNs, 125);
  EXPECT_EQ(A.CR1.Lines, LineInterval(1, 10));
  EXPECT_EQ(A.CR2.Lines, LineInterval(1, 12));
}

TEST(FusionTest, DisjointRegionsDoNotMerge) {
  FusedUlcp A = fused(region("a.cc", 1, 10), region("b.cc", 1, 10), 100);
  FusedUlcp B = fused(region("a.cc", 50, 60), region("b.cc", 1, 10), 25);
  EXPECT_FALSE(fuseUlcpGroups(A, B));
  EXPECT_EQ(A.DeltaNs, 100);
}

TEST(FusionTest, FixpointMergesTransitively) {
  // G1 [1,10] and G3 [20,30] only merge after G2 [8,22] widens G1.
  Trace Tr; // Unused by fuseUlcps beyond region lookup: build manually.
  TraceBuilder B;
  LockId Mu = B.addLock("mu");
  CodeSiteId S1 = B.addSite("a.cc", "f", 1, 10);
  CodeSiteId S2 = B.addSite("a.cc", "f", 8, 22);
  CodeSiteId S3 = B.addSite("a.cc", "f", 20, 30);
  CodeSiteId SB = B.addSite("b.cc", "g", 1, 10);
  ThreadId T0 = B.addThread();
  ThreadId T1 = B.addThread();
  auto cs = [&](ThreadId T, CodeSiteId Site) {
    B.beginCs(T, Mu, Site);
    B.read(T, 1, 0);
    B.endCs(T);
  };
  cs(T0, S1);
  cs(T0, S2);
  cs(T0, S3);
  cs(T1, SB);
  Tr = B.finish();
  CsIndex Index = CsIndex::build(Tr);
  // Pairs: (S1,SB), (S3,SB), (S2,SB) — the S2 pair arrives last and
  // bridges the other two.
  std::vector<UlcpPair> Pairs = {{0, 3, UlcpKind::ReadRead},
                                 {2, 3, UlcpKind::ReadRead},
                                 {1, 3, UlcpKind::ReadRead}};
  std::vector<int64_t> Deltas = {10, 20, 30};
  std::vector<FusedUlcp> Groups = fuseUlcps(Tr, Index, Pairs, Deltas);
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_EQ(Groups[0].DeltaNs, 60);
  EXPECT_EQ(Groups[0].PairCount, 3u);
  EXPECT_EQ(Groups[0].CR1.Lines, LineInterval(1, 30));
}

TEST(FusionTest, UnknownSitesStayPerLock) {
  TraceBuilder B;
  LockId MuA = B.addLock("a");
  LockId MuB = B.addLock("b");
  ThreadId T0 = B.addThread();
  ThreadId T1 = B.addThread();
  auto cs = [&](ThreadId T, LockId L) {
    B.beginCs(T, L);
    B.read(T, 1, 0);
    B.endCs(T);
  };
  cs(T0, MuA);
  cs(T1, MuA);
  cs(T0, MuB);
  cs(T1, MuB);
  Trace Tr = B.finish();
  CsIndex Index = CsIndex::build(Tr);
  // Pair on lock a (global ids 0, 2) and pair on lock b (1, 3).
  std::vector<UlcpPair> Pairs = {{0, 2, UlcpKind::ReadRead},
                                 {1, 3, UlcpKind::ReadRead}};
  std::vector<int64_t> Deltas = {5, 5};
  std::vector<FusedUlcp> Groups = fuseUlcps(Tr, Index, Pairs, Deltas);
  EXPECT_EQ(Groups.size(), 2u) << "different locks must not fuse";
}

//===----------------------------------------------------------------------===//
// Equation 2: ranking
//===----------------------------------------------------------------------===//

TEST(RankTest, PSumsToOneAndSorted) {
  std::vector<FusedUlcp> Groups = {
      fused(region("a.cc", 1, 10), region("a.cc", 1, 10), 100),
      fused(region("b.cc", 1, 10), region("b.cc", 1, 10), 300),
      fused(region("c.cc", 1, 10), region("c.cc", 1, 10), 600),
  };
  rankUlcpGroups(Groups);
  double Sum = 0;
  for (const FusedUlcp &G : Groups)
    Sum += G.P;
  EXPECT_NEAR(Sum, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Groups[0].P, 0.6);
  EXPECT_EQ(Groups[0].CR1.File, "c.cc");
  EXPECT_GE(Groups[0].P, Groups[1].P);
  EXPECT_GE(Groups[1].P, Groups[2].P);
}

TEST(RankTest, ZeroTotalGivesZeroP) {
  std::vector<FusedUlcp> Groups = {
      fused(region("a.cc", 1, 10), region("a.cc", 1, 10), 0),
      fused(region("b.cc", 1, 10), region("b.cc", 1, 10), 0),
  };
  rankUlcpGroups(Groups);
  EXPECT_DOUBLE_EQ(Groups[0].P, 0.0);
  EXPECT_DOUBLE_EQ(Groups[1].P, 0.0);
}

//===----------------------------------------------------------------------===//
// Report
//===----------------------------------------------------------------------===//

namespace {

/// Two threads contending on read-only sections: a clear ULCP whose
/// removal speeds up the replay.
Trace contendedReaders() {
  TraceBuilder B;
  LockId Mu = B.addLock("mu");
  CodeSiteId Site = B.addSite("srv.cc", "lookup", 10, 30);
  ThreadId T0 = B.addThread();
  ThreadId T1 = B.addThread();
  for (int I = 0; I != 4; ++I) {
    B.compute(T0, 100);
    B.beginCs(T0, Mu, Site);
    B.read(T0, 1, 7);
    B.compute(T0, 900);
    B.endCs(T0);
    B.compute(T1, 120);
    B.beginCs(T1, Mu, Site);
    B.read(T1, 1, 7);
    B.compute(T1, 900);
    B.endCs(T1);
  }
  Trace Tr = B.finish();
  recordGrantSchedule(Tr, 17);
  return Tr;
}

} // namespace

TEST(ReportTest, EndToEndReportShowsImprovement) {
  Trace Tr = contendedReaders();
  CsIndex Index = CsIndex::build(Tr);
  DetectOptions DOpts;
  DOpts.PairMode = PairModeKind::AdjacentCrossThread;
  DetectResult Detection = detectUlcps(Tr, Index, DOpts);
  ASSERT_GT(Detection.Counts.ReadRead, 0u);

  TransformResult TR = transformTrace(Tr, Index);
  ReplayOptions ROpts;
  ReplayResult Orig = replayTrace(Tr, ROpts);
  ReplayResult Free = replayTrace(TR.Transformed, ROpts);
  ASSERT_TRUE(Orig.ok() && Free.ok());

  PerfDebugReport Report = buildReport(
      Tr, Index, Detection.unnecessaryPairs(), Orig, Free);
  EXPECT_GT(Report.Tpd, 0) << "removing contention must help";
  // Per-pair Equation-1 deltas cover the whole-program degradation up
  // to segment-boundary effects; they must account for the bulk of it.
  EXPECT_GE(Report.SumDelta, Report.Tpd * 3 / 4);
  EXPECT_GE(Report.Trw, 0);
  ASSERT_EQ(Report.Groups.size(), 1u) << "one code region pair";
  EXPECT_DOUBLE_EQ(Report.Groups[0].P, 1.0);
  EXPECT_GT(Report.normalizedDegradation(), 0.0);

  std::string Text = renderReport(Report);
  EXPECT_NE(Text.find("srv.cc:10-30"), std::string::npos);
  EXPECT_NE(Text.find("recommendation"), std::string::npos);
}

TEST(ReportTest, NoUlcpsNoGroups) {
  TraceBuilder B;
  LockId Mu = B.addLock("mu");
  ThreadId T0 = B.addThread();
  ThreadId T1 = B.addThread();
  B.beginCs(T0, Mu);
  B.write(T0, 1, 1);
  B.endCs(T0);
  B.beginCs(T1, Mu);
  B.read(T1, 1, 1);
  B.write(T1, 1, 2);
  B.endCs(T1);
  Trace Tr = B.finish();
  recordGrantSchedule(Tr, 3);
  CsIndex Index = CsIndex::build(Tr);
  DetectResult Detection = detectUlcps(Tr, Index);
  TransformResult TR = transformTrace(Tr, Index);
  ReplayResult Orig = replayTrace(Tr, ReplayOptions());
  ReplayResult Free = replayTrace(TR.Transformed, ReplayOptions());
  PerfDebugReport Report = buildReport(
      Tr, Index, Detection.unnecessaryPairs(), Orig, Free);
  EXPECT_TRUE(Report.Groups.empty());
  EXPECT_EQ(Report.SumDelta, 0);
}
