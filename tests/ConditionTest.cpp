//===- tests/ConditionTest.cpp - recorded condition variables ---------------===//
//
// Appendix Case 1: pthread_cond_wait's unlock/sleep/relock dance
// produces extra lock/unlock pairs — frequently null-locks.  The
// RecordingCondition wrapper must reproduce that trace shape from real
// threads.
//
//===----------------------------------------------------------------------===//

#include "runtime/Instrument.h"

#include "core/PerfPlay.h"
#include "detect/CriticalSection.h"
#include "detect/Detector.h"

#include <gtest/gtest.h>

#include <thread>

using namespace perfplay;

namespace {

/// One waiter parked on a condition; one setter flips the flag.
Trace recordCondWait() {
  Recorder R;
  RecordingMutex Mu(R, "L");
  RecordingCondition Cond;
  SharedVar<uint64_t> Flag(R, "cond_flag");
  std::atomic<bool> Ready{false};

  std::thread Waiter([&] {
    ThreadId T = R.registerThread();
    Mu.lock(T, PERFPLAY_CODE_SITE(R, 30, 40));
    Cond.wait(Mu, T, [&] { return Ready.load(); },
              PERFPLAY_CODE_SITE(R, 35, 40));
    Flag.load(T);
    Mu.unlock(T);
  });
  std::thread Setter([&] {
    ThreadId T = R.registerThread();
    // Give the waiter a chance to park first (timing is best-effort;
    // the trace shape below holds either way).
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Mu.lock(T, PERFPLAY_CODE_SITE(R, 50, 55));
    Flag.store(T, 1);
    Ready.store(true);
    Mu.unlock(T);
    Cond.notifyAll();
  });
  Waiter.join();
  Setter.join();
  return R.finish();
}

} // namespace

TEST(ConditionTest, WaitSplitsCriticalSection) {
  Trace Tr = recordCondWait();
  ASSERT_EQ(Tr.validate(), "");
  // The waiter (thread 0) shows two critical sections: before the wait
  // and after the wake-up — Case 1's extra lock/unlock pair.
  EXPECT_EQ(Tr.numCriticalSections(0), 2u);
  EXPECT_EQ(Tr.numCriticalSections(1), 1u);
}

TEST(ConditionTest, FirstSectionIsNullLock) {
  Trace Tr = recordCondWait();
  CsIndex Index = CsIndex::build(Tr);
  // The waiter's pre-wait section touches no shared data: a null-lock
  // half of the Case 1 pattern.
  const CriticalSection &PreWait = Index.byGlobalId(0);
  EXPECT_TRUE(PreWait.readsEmpty());
  EXPECT_TRUE(PreWait.writesEmpty());
}

TEST(ConditionTest, SleepNotChargedAsComputation) {
  Trace Tr = recordCondWait();
  // The waiter slept ~5ms; selective recording must not have turned
  // that into Compute cost (its total compute stays well under 5ms).
  TimeNs WaiterCompute = 0;
  for (const Event &E : Tr.Threads[0].Events)
    if (E.Kind == EventKind::Compute)
      WaiterCompute += E.Cost;
  EXPECT_LT(WaiterCompute, 5000000u);
}

TEST(ConditionTest, TraceFeedsPipeline) {
  Trace Tr = recordCondWait();
  PipelineResult R = runPerfPlay(Tr);
  ASSERT_TRUE(R.ok()) << R.Error;
  // The null-lock half is detectable when paired cross-thread.
  DetectOptions Opts;
  Opts.PairMode = PairModeKind::AllCrossThread;
  Tr.buildCsIndex();
  CsIndex Index = CsIndex::build(Tr);
  UlcpCounts C = detectUlcps(Tr, Index, Opts).Counts;
  EXPECT_GT(C.NullLock, 0u);
}

//===----------------------------------------------------------------------===//
// Named (recorded) condvars
//===----------------------------------------------------------------------===//

namespace {

/// recordCondWait with a named condvar: waits and wakes additionally
/// emit the ordering events.
Trace recordNamedCondWait() {
  Recorder R;
  RecordingMutex Mu(R, "L");
  RecordingCondition Cond(R, "cv");
  SharedVar<uint64_t> Flag(R, "named_cond_flag");
  std::atomic<bool> Ready{false};

  std::thread Waiter([&] {
    ThreadId T = R.registerThread();
    Mu.lock(T, PERFPLAY_CODE_SITE(R, 30, 40));
    Cond.wait(Mu, T, [&] { return Ready.load(); },
              PERFPLAY_CODE_SITE(R, 35, 40));
    Flag.load(T);
    Mu.unlock(T);
  });
  std::thread Setter([&] {
    ThreadId T = R.registerThread();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Mu.lock(T, PERFPLAY_CODE_SITE(R, 50, 55));
    Flag.store(T, 1);
    Ready.store(true);
    Mu.unlock(T);
    Cond.notifyAll(T);
  });
  Waiter.join();
  Setter.join();
  return R.finish();
}

} // namespace

TEST(ConditionTest, NamedCondvarEmitsOrderingEvents) {
  Trace Tr = recordNamedCondWait();
  ASSERT_EQ(Tr.validate(), "");

  // The condvar is registered in the lock table.
  bool HasCv = false;
  for (LockId L = 0; L != Tr.Locks.size(); ++L)
    HasCv |= Tr.lockName(L) == "cv";
  EXPECT_TRUE(HasCv);

  unsigned Waits = 0, Broadcasts = 0, Signals = 0;
  for (const ThreadTrace &T : Tr.Threads)
    for (const Event &E : T.Events) {
      Waits += E.Kind == EventKind::CondWait;
      Broadcasts += E.Kind == EventKind::CondBroadcast;
      Signals += E.Kind == EventKind::CondSignal;
    }
  EXPECT_EQ(Waits, 1u);
  EXPECT_EQ(Broadcasts, 1u);
  EXPECT_EQ(Signals, 0u);
}

TEST(ConditionTest, NotifyOneEmitsSignal) {
  Recorder R;
  RecordingCondition Cond(R, "cv");
  ThreadId T = R.registerThread();
  Cond.notifyOne(T);
  Trace Tr = R.finish();
  ASSERT_EQ(Tr.validate(), "");
  unsigned Signals = 0;
  for (const Event &E : Tr.Threads[0].Events)
    Signals += E.Kind == EventKind::CondSignal;
  EXPECT_EQ(Signals, 1u);
}

TEST(ConditionTest, NamedCondvarTraceFeedsPipeline) {
  Trace Tr = recordNamedCondWait();
  PipelineResult R = runPerfPlay(Tr);
  ASSERT_TRUE(R.ok()) << R.Error;
}
